// Package experiments regenerates every quantitative claim and figure of
// the paper's evaluation (see DESIGN.md §4 and EXPERIMENTS.md). Each
// experiment builds its own inputs from the synthetic corpus generator,
// runs the relevant pipeline stages, and returns a Table whose rows mirror
// what the paper reports. cmd/shoal-bench prints these tables; the root
// bench_test.go wraps them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"shoal/internal/core"
	"shoal/internal/model"
	"shoal/internal/synth"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Header     []string
	Rows       [][]string
	Notes      []string
}

// Render pretty-prints the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.PaperClaim != "" {
		if _, err := fmt.Fprintf(w, "paper: %s\n", t.PaperClaim); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	dashes := make([]string, len(t.Header))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(dashes)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Scale selects experiment input sizes. Small keeps unit tests fast;
// Medium is the shoal-bench default; Large stresses the scaling runs.
type Scale int

const (
	// Small: ~2k items, seconds per experiment.
	Small Scale = iota
	// Medium: ~8k items.
	Medium
	// Large: ~30k items.
	Large
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	default:
		return Small, fmt.Errorf("experiments: unknown scale %q (small|medium|large)", s)
	}
}

// corpusConfig returns the generator settings for a scale.
func corpusConfig(sc Scale, seed uint64) synth.Config {
	cfg := synth.DefaultConfig()
	cfg.Seed = seed
	switch sc {
	case Small:
		cfg.Scenarios = 12
		cfg.ItemsPerScenario = 80
		cfg.QueriesPerScenario = 20
		cfg.NoiseItems = 60
		cfg.HeadQueries = 10
	case Medium:
		cfg.Scenarios = 40
		cfg.ItemsPerScenario = 200
		cfg.QueriesPerScenario = 40
		cfg.NoiseItems = 200
		cfg.HeadQueries = 30
	case Large:
		cfg.Scenarios = 120
		cfg.ItemsPerScenario = 250
		cfg.QueriesPerScenario = 50
		cfg.NoiseItems = 600
		cfg.HeadQueries = 60
	}
	return cfg
}

// stopTh is the clustering stop threshold shared by every experiment. It
// sits well below the graph-construction filter (0.25): Eq. 4 treats
// absent edges as zeros, so merged-cluster similarities dilute as clusters
// grow, and clustering must keep merging below the initial edge weights to
// assemble whole scenarios.
const stopTh = 0.10

// pipelineConfig returns pipeline settings tuned for synthetic corpora.
func pipelineConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Word2Vec.Epochs = 2
	cfg.Word2Vec.Dim = 24
	cfg.Word2Vec.MinCount = 2
	cfg.Graph.MinSimilarity = 0.25
	// Head queries ("dress") click broadly across scenarios; capping
	// candidate generation at a fanout of 50 entities keeps them from
	// wiring unrelated items together (§2.1 sparsification).
	cfg.Graph.MaxQueryFanout = 50
	cfg.HAC.StopThreshold = stopTh
	cfg.Taxonomy.Levels = []float64{stopTh, 0.3, 0.5}
	return cfg
}

// buildSystem generates a corpus and runs the full pipeline.
func buildSystem(sc Scale, seed uint64) (*model.Corpus, *core.Build, error) {
	corpus, err := synth.Generate(corpusConfig(sc, seed))
	if err != nil {
		return nil, nil, err
	}
	b, err := core.Run(corpus, pipelineConfig())
	if err != nil {
		return nil, nil, err
	}
	return corpus, b, nil
}

func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string   { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string  { return fmt.Sprintf("%.1f%%", 100*v) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func i64toa(v int64) string { return fmt.Sprintf("%d", v) }
