package benchjson

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"os"
	"sync"

	"shoal/internal/bipartite"
	"shoal/internal/core"
	"shoal/internal/dendrogram"
	"shoal/internal/entitygraph"
	"shoal/internal/model"
	"shoal/internal/phac"
	"shoal/internal/shard"
	"shoal/internal/synth"
	"shoal/internal/taxonomy"
	"shoal/internal/wgraph"
	"shoal/internal/word2vec"
)

// FixtureEnv names the environment variable holding the on-disk fixture
// cache path. When set, FixedWorld loads the corpus+pipeline fixture
// from that file instead of rebuilding it, and saves it there after a
// fresh build — so CI's `-benchtime 1x` smoke pass (which constructs the
// fixture through the root bench suite) and the runner-side gated
// benchjson re-run share one fixture build instead of paying for it
// twice.
const FixtureEnv = "SHOAL_BENCH_FIXTURE"

var (
	fwOnce   sync.Once
	fwBuild  *core.Build
	fwClicks *bipartite.Graph
	fwSizes  []int
	fwErr    error
)

// fixedWorldConfig is the fixed benchmark pipeline configuration —
// shared by the fresh build and the fixture loader (which needs the
// search-doc cap and catcorr settings to reconstruct derived state).
func fixedWorldConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Word2Vec.Epochs = 2
	cfg.Word2Vec.Dim = 24
	cfg.Graph.MinSimilarity = 0.25
	cfg.Graph.MaxQueryFanout = 50
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3, 0.5}
	return cfg
}

// FixedWorld returns the shared benchmark fixture: a synthetic corpus
// roughly 4x the unit-test scale plus a full pipeline build over it,
// built (or loaded from the FixtureEnv cache) once per process. The
// scale is fixed — not flag-tunable — so BENCH_*.json files from
// different PRs are comparable. The returned values are shared;
// treat them as read-only.
func FixedWorld() (*core.Build, *bipartite.Graph, []int, error) {
	fwOnce.Do(func() {
		path := os.Getenv(FixtureEnv)
		if path != "" {
			if b, err := loadFixture(path); err == nil {
				fwBuild = b
				fwClicks, fwSizes, fwErr = deriveWorld(b)
				return
			}
			// Missing or stale cache: fall through to a fresh build.
		}
		b, err := buildFixedWorld()
		if err != nil {
			fwErr = err
			return
		}
		fwBuild = b
		fwClicks, fwSizes, fwErr = deriveWorld(b)
		if path != "" && fwErr == nil {
			fwErr = saveFixture(path, b)
		}
	})
	return fwBuild, fwClicks, fwSizes, fwErr
}

func buildFixedWorld() (*core.Build, error) {
	gen := synth.DefaultConfig()
	gen.Scenarios = 32
	gen.ItemsPerScenario = 150
	gen.QueriesPerScenario = 30
	gen.NoiseItems = 160
	gen.HeadQueries = 20
	corpus, err := synth.Generate(gen)
	if err != nil {
		return nil, err
	}
	return core.Run(corpus, fixedWorldConfig())
}

// deriveWorld rebuilds the cheap per-process companions of the fixture:
// the click window and the entity size vector.
func deriveWorld(b *core.Build) (*bipartite.Graph, []int, error) {
	clicks := bipartite.New(7)
	if err := clicks.AddAll(b.Corpus.Clicks); err != nil {
		return nil, nil, err
	}
	sizes := make([]int, len(b.Entities.Entities))
	for i := range sizes {
		sizes[i] = b.Entities.Entities[i].Size()
	}
	return clicks, sizes, nil
}

// slideWorld is the precomputed input of the daily-rebuild /
// incremental-rebuild pair: one one-day slide of a seven-day window,
// with the pre-slide entity-graph state and clustering memo already
// captured. Both benchmarks rebuild the SAME post-slide window from the
// same inputs — one from scratch, one delta-driven — so their ratio
// (incremental-vs-full) isolates what the delta path saves.
type slideWorld struct {
	window *bipartite.Graph // the post-slide window
	dirty  []model.ItemID   // items the slide changed
	st     *entitygraph.IncState
	memo   *phac.Memo
	gcfg   entitygraph.Config
	hcfg   phac.Config
	// post is the post-slide entity graph with postDirty as the rows the
	// slide touched — the clustering-only warm-vs-cold pair's shared
	// input, so its ratio isolates what the memo (round-0 seed plus
	// trajectory replay) saves with the graph build factored out.
	post      *shard.CSR
	postDirty []int32
}

// buildSlideWorld replays the fixture corpus's clicks as a
// production-shaped stream: recurring head demand plus a small rotating
// tail (the shape examples/daily streams, at lower churn so the dirty
// neighborhood stays well under the patch density gate at this corpus
// scale). It fills a seven-day window, captures the incremental state,
// then slides one day.
func buildSlideWorld(b *core.Build, sizes []int) (*slideWorld, error) {
	const days, tail = 8, 400
	byDay := make([][]model.ClickEvent, days)
	for i, ev := range b.Corpus.Clicks {
		if i%tail == 0 { // churning tail: one day each
			ev.Day = int32(i/tail) % days
			byDay[ev.Day] = append(byDay[ev.Day], ev)
			continue
		}
		for d := int32(0); d < days; d++ { // recurring head
			ev.Day = d
			byDay[d] = append(byDay[d], ev)
		}
	}
	sw := &slideWorld{
		window: bipartite.New(days - 1),
		gcfg:   fixedWorldConfig().Graph,
		hcfg:   phac.Config{StopThreshold: 0.12, DiffusionRounds: 2},
	}
	ctx := context.Background()
	for d := 0; d < days-1; d++ {
		if err := sw.window.AddAll(byDay[d]); err != nil {
			return nil, err
		}
	}
	sw.window.TakeChangedItems() // first build is always cold
	resA, stA, err := entitygraph.BuildWithState(ctx, b.Entities, sw.window, b.Embeddings, sw.gcfg)
	if err != nil {
		return nil, err
	}
	_, memo, err := phac.ClusterWarm(ctx, resA.Graph, sizes, sw.hcfg, nil, nil)
	if err != nil {
		return nil, err
	}
	sw.st, sw.memo = stA, memo
	if err := sw.window.AddAll(byDay[days-1]); err != nil {
		return nil, err
	}
	sw.dirty = sw.window.TakeChangedItems()
	// The pair's contract is that the delta path actually runs: a slide
	// dense enough to trip the patch gate would make both benchmarks
	// measure the same full build and the ratio meaningless. The same
	// validation build yields the post-slide graph and dirty rows the
	// clustering-only warm-vs-cold pair clusters.
	resB, _, d, err := entitygraph.BuildIncremental(ctx, b.Entities, sw.window, b.Embeddings, sw.gcfg, sw.st, sw.dirty)
	if err != nil {
		return nil, err
	}
	if d.DenseFallback {
		return nil, fmt.Errorf("benchjson: slide fixture tripped the dense fallback (dirty items %d)", d.DirtyItems)
	}
	sw.post, sw.postDirty = resB.Graph, d.DirtyRows
	return sw, nil
}

// fixtureFile is the gob wire form of the fixture: the corpus and every
// expensive pipeline product the benchmarks read. The graph ships as its
// canonical edge list and is rebuilt with shard.FromEdges — byte-
// identical to the original arrays by the construction determinism
// contract. Descriptions, correlations and stage timings are derived or
// unread by the benchmarks and are not cached.
type fixtureFile struct {
	Corpus            *model.Corpus
	Entities          *entitygraph.EntitySet
	QuerySets         [][]model.QueryID
	Shards            int
	NumNodes          int
	Edges             []wgraph.Edge
	Dendrogram        *dendrogram.Dendrogram
	Rounds            []phac.RoundStat
	Taxonomy          []byte // taxonomy.Save encoding
	Embeddings        []byte // word2vec Save encoding; empty when disabled
	SearchDocTokenCap int
}

// saveFixture writes the fixture cache for b.
func saveFixture(path string, b *core.Build) error {
	f := fixtureFile{
		Corpus:            b.Corpus,
		Entities:          b.Entities,
		QuerySets:         b.QuerySets,
		Shards:            b.Shards,
		NumNodes:          b.Graph.NumNodes(),
		Edges:             b.Graph.Edges(),
		Dendrogram:        b.Dendrogram,
		Rounds:            b.Rounds,
		SearchDocTokenCap: fixedWorldConfig().SearchDocTokenCap,
	}
	var tx bytes.Buffer
	if err := b.Taxonomy.Save(&tx); err != nil {
		return fmt.Errorf("benchjson: fixture taxonomy: %w", err)
	}
	f.Taxonomy = tx.Bytes()
	if b.Embeddings != nil {
		var em bytes.Buffer
		if err := b.Embeddings.Save(&em); err != nil {
			return fmt.Errorf("benchjson: fixture embeddings: %w", err)
		}
		f.Embeddings = em.Bytes()
	}
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&f); err != nil {
		return fmt.Errorf("benchjson: encoding fixture: %w", err)
	}
	return os.WriteFile(path, out.Bytes(), 0o644)
}

// loadFixture reads a fixture cache and reassembles the build: the
// sharded CSR from the canonical edge list, the searcher from the same
// search documents the pipeline indexes. Any error means "rebuild".
func loadFixture(path string) (*core.Build, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f fixtureFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		return nil, fmt.Errorf("benchjson: decoding fixture: %w", err)
	}
	if err := f.Corpus.Validate(); err != nil {
		return nil, fmt.Errorf("benchjson: fixture corpus: %w", err)
	}
	g, err := shard.FromEdges(f.NumNodes, f.Edges, f.Shards)
	if err != nil {
		return nil, fmt.Errorf("benchjson: fixture graph: %w", err)
	}
	tx, err := taxonomy.Load(bytes.NewReader(f.Taxonomy))
	if err != nil {
		return nil, fmt.Errorf("benchjson: fixture taxonomy: %w", err)
	}
	b := &core.Build{
		Corpus:     f.Corpus,
		Entities:   f.Entities,
		Graph:      g,
		QuerySets:  f.QuerySets,
		Shards:     g.NumShards(),
		Dendrogram: f.Dendrogram,
		Rounds:     f.Rounds,
		Taxonomy:   tx,
	}
	if len(f.Embeddings) > 0 {
		m, err := word2vec.Load(bytes.NewReader(f.Embeddings))
		if err != nil {
			return nil, fmt.Errorf("benchjson: fixture embeddings: %w", err)
		}
		b.Embeddings = m
	}
	if len(tx.Topics) > 0 {
		s, err := taxonomy.NewSearcher(context.Background(), tx, b.SearchDocs(f.SearchDocTokenCap))
		if err != nil {
			return nil, fmt.Errorf("benchjson: fixture searcher: %w", err)
		}
		b.Searcher = s
	}
	return b, nil
}
