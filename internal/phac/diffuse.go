package phac

import (
	"fmt"
	"sort"
	"sync"

	"shoal/internal/bsp"
	"shoal/internal/shard"
	"shoal/internal/wgraph"
)

// Edge is a selected locally-maximal edge (U < V).
type Edge struct {
	U, V int32
	Sim  float64
}

// Diffuse runs one diffusion+selection pass over a static graph and
// returns the locally-maximal matching, sorted by (U,V). This is the
// standalone form of Parallel HAC's step 1–2, exposed for experiment E5
// (iterations vs. parallelism) and the BSP equivalence check (E9).
// Edges below threshold do not participate. The graph is scanned in its
// CSR form (a mutable graph is frozen once up front), so the exchange
// iterations allocate nothing. With workers <= 0 ("pick for me") a
// *shard.CSR input takes the partition-parallel path — one worker per
// shard, with a selection merge that is byte-identical to the
// single-shard result for any shard count; an explicit workers count is
// always honored (workers == 1 stays serial even on sharded input).
func Diffuse(g wgraph.View, rounds int, threshold float64, workers int) ([]Edge, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("phac: empty graph")
	}
	if rounds < 0 {
		return nil, fmt.Errorf("phac: negative diffusion rounds %d", rounds)
	}
	if sc, ok := g.(*shard.CSR); ok && sc.NumShards() > 1 && workers <= 0 {
		return diffuseSharded(sc, rounds, threshold), nil
	}
	if workers <= 0 {
		workers = 1
	}
	c := wgraph.AsCSR(g)
	offsets, nbrs, wts := c.Adj()
	n := int32(c.NumNodes())
	know := make([]edgeRef, n)
	next := make([]edgeRef, n)
	nodes := make([]int32, n)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	parallelOver(nodes, workers, func(u int32) {
		best := noEdge
		for j := offsets[u]; j < offsets[u+1]; j++ {
			v, w := nbrs[j], wts[j]
			if w < threshold {
				continue
			}
			cand := mkEdgeRef(u, v, w)
			if better(cand, best) {
				best = cand
			}
		}
		know[u] = best
	})
	for it := 0; it < rounds; it++ {
		parallelOver(nodes, workers, func(u int32) {
			best := know[u]
			for j := offsets[u]; j < offsets[u+1]; j++ {
				if v := nbrs[j]; better(know[v], best) {
					best = know[v]
				}
			}
			next[u] = best
		})
		know, next = next, know
	}
	return collectSelected(know, threshold), nil
}

// diffuseSharded is the partition-parallel Diffuse: every phase — the
// init scan, each exchange iteration, and the selection — runs one
// worker per shard over that shard's row range. know/next entries are
// written only by the owner of their row, and per-shard selection lists
// (ascending u within a shard) concatenate in shard order into the
// globally sorted matching, so the merged output is byte-identical to
// the serial path for any shard count.
func diffuseSharded(sc *shard.CSR, rounds int, threshold float64) []Edge {
	c := sc.BaseCSR()
	offsets, nbrs, wts := c.Adj()
	n := c.NumNodes()
	know := make([]edgeRef, n)
	next := make([]edgeRef, n)
	plan := sc.Plan()

	perShard := func(fn func(lo, hi int32)) {
		var wg sync.WaitGroup
		for i := 0; i < plan.NumShards(); i++ {
			lo, hi := plan.Bounds(i)
			if lo == hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int32) {
				defer wg.Done()
				fn(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	perShard(func(lo, hi int32) {
		for u := lo; u < hi; u++ {
			best := noEdge
			for j := offsets[u]; j < offsets[u+1]; j++ {
				v, w := nbrs[j], wts[j]
				if w < threshold {
					continue
				}
				cand := mkEdgeRef(u, v, w)
				if better(cand, best) {
					best = cand
				}
			}
			know[u] = best
		}
	})
	for it := 0; it < rounds; it++ {
		k, nx := know, next
		perShard(func(lo, hi int32) {
			for u := lo; u < hi; u++ {
				best := k[u]
				for j := offsets[u]; j < offsets[u+1]; j++ {
					if v := nbrs[j]; better(k[v], best) {
						best = k[v]
					}
				}
				nx[u] = best
			}
		})
		know, next = next, know
	}

	// Per-shard selection, merged in shard order. A node contributes at
	// most one edge (its know entry, evaluated at the smaller endpoint),
	// so each shard's list is strictly ascending in U and the
	// concatenation needs no sort.
	parts := make([][]Edge, plan.NumShards())
	var wg sync.WaitGroup
	for i := 0; i < plan.NumShards(); i++ {
		lo, hi := plan.Bounds(i)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(i int, lo, hi int32) {
			defer wg.Done()
			var out []Edge
			for u := lo; u < hi; u++ {
				e := know[u]
				if e.U() != u || e.sim < threshold {
					continue
				}
				if know[e.V()] == e {
					out = append(out, Edge{U: e.U(), V: e.V(), Sim: e.sim})
				}
			}
			parts[i] = out
		}(i, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil // match the serial path's nil for an empty matching
	}
	out := make([]Edge, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// DiffuseBSP computes the same matching as Diffuse but runs the exchange
// protocol on the Pregel-style BSP engine (internal/bsp) — the execution
// model the paper deploys on ODPS. chaos may be nil.
func DiffuseBSP(g wgraph.View, rounds int, threshold float64, cfg bsp.Config) ([]Edge, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("phac: empty graph")
	}
	if rounds < 0 {
		return nil, fmt.Errorf("phac: negative diffusion rounds %d", rounds)
	}
	prog := &diffusionProgram{
		g:         wgraph.AsCSR(g),
		rounds:    rounds,
		threshold: threshold,
		know:      make([]edgeRef, g.NumNodes()),
	}
	eng, err := bsp.New[edgeRef](g.NumNodes(), prog, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	return collectSelected(prog.know, threshold), nil
}

// diffusionProgram is the vertex-centric formulation: superstep 0
// initializes each vertex with its best incident edge and broadcasts it;
// supersteps 1..rounds fold the inbox maximum and re-broadcast. The fold is
// order-independent, so the program is correct under chaotic delivery.
type diffusionProgram struct {
	g         *wgraph.CSR
	rounds    int
	threshold float64
	know      []edgeRef
}

func (p *diffusionProgram) Compute(step int, v bsp.VertexID, inbox []edgeRef, send func(bsp.VertexID, edgeRef)) bool {
	u := int32(v)
	nbrs, wts := p.g.Row(u)
	if step == 0 {
		best := noEdge
		for i, nb := range nbrs {
			w := wts[i]
			if w < p.threshold {
				continue
			}
			cand := mkEdgeRef(u, nb, w)
			if better(cand, best) {
				best = cand
			}
		}
		p.know[u] = best
	} else {
		for _, m := range inbox {
			if better(m, p.know[u]) {
				p.know[u] = m
			}
		}
	}
	if step < p.rounds {
		for _, nb := range nbrs {
			send(bsp.VertexID(nb), p.know[u])
		}
		return false
	}
	return true
}

// collectSelected extracts the mutual locally-maximal edges from know.
func collectSelected(know []edgeRef, threshold float64) []Edge {
	var out []Edge
	for u := int32(0); int(u) < len(know); u++ {
		e := know[u]
		if e.U() != u || e.sim < threshold {
			continue
		}
		if int(e.V()) < len(know) && know[e.V()] == e {
			out = append(out, Edge{U: e.U(), V: e.V(), Sim: e.sim})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
