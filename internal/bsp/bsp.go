// Package bsp implements a Pregel-style vertex-centric bulk-synchronous
// parallel engine. The paper runs Parallel HAC "on the Alibaba distributed
// graph platform (ODPS)"; this engine is the in-process stand-in
// (DESIGN.md §1.3) and the distributed twin of the shared-memory
// diffusion path: vertices are partitioned into contiguous row-range
// shards (shard.Plan is the unit of placement), compute proceeds in
// supersteps separated by barriers, and messages produced in superstep s
// are delivered at superstep s+1.
//
// Execution model:
//
//   - Lifecycle: an engine is persistent. New → Run → (Rebind → Run)* →
//     Close: workers, channels, transport, inbox accumulators and
//     combiner scratch survive across Runs, and Rebind swaps in a new
//     vertex count and program — growing or shrinking the row ranges in
//     place — without discarding any of them. Callers that run one BSP
//     job per clustering round (phac.Cluster) therefore pay for engine
//     construction exactly once per clustering, not once per round.
//   - Placement: Config.Plan (or a uniform split into Config.Workers
//     ranges) assigns each shard's contiguous vertex rows to one worker.
//     One persistent goroutine per shard, spawned on the first Run and
//     retired by Close; workers are driven over channels, so steady-state
//     supersteps (and steady-state Runs) spawn nothing.
//   - Worklists: each worker tracks the vertices that declined to halt
//     and each inbox tracks the rows that received messages, both as
//     sorted generation-stamped lists, so a superstep visits only the
//     union of the two frontiers — O(frontier), not O(rows). When the
//     frontier covers most of a shard the fill skips the worklist sort
//     and the next compute scans the row range by generation stamp
//     instead (same ascending visit order, cheaper than sorting).
//     Run's superstep 0 visits every row (all vertices start active);
//     RunFrom seeds superstep 0 with a caller-supplied frontier instead,
//     and vote-to-halt reactivation handles the ripple exactly as it
//     does mid-run — the partial-activation hook for iterated jobs whose
//     cross-run changes touch few rows.
//   - Message layout: for combining programs the inbox is a per-row
//     accumulator — messages fold into acc[row] on arrival and Compute
//     receives the single folded message — double-buffered across
//     supersteps with epoch stamps instead of clears. Non-combining
//     programs get the CSR-style flat layout (contiguous message array
//     plus per-row segments) rebuilt per superstep from the touched rows
//     only. Either way steady-state supersteps allocate no message-buffer
//     memory at all (locked by TestSteadyStateAllocFree).
//   - Transport: each worker batches its outgoing messages per
//     (source shard, dest shard) pair and hands them to a Transport at
//     the superstep barrier. The in-process Loopback transport moves the
//     batches by reference; a network transport plugs into the same seam
//     by serializing them (see transport.go). A single-shard engine
//     running a combining program skips envelopes and transport entirely:
//     sends fold straight into the next superstep's accumulator, which is
//     the same fold the two-stage path computes.
//   - Determinism: each worker owns an ascending contiguous vertex range
//     and emits messages in (vertex, send order); destination shards fold
//     or fill their inboxes from source batches in ascending source-shard
//     order. The result is the canonical (sender, seq) order — no
//     per-vertex sort anywhere. Chaos mode deliberately breaks this order
//     instead; programs whose results must not depend on delivery order
//     (like Parallel HAC's max-diffusion) are tested under chaos.
//   - Combining: a Program that also implements Combiner[M] opts into
//     message folding — at the sender, messages addressed to the same
//     destination vertex within one shard's superstep fold into a single
//     envelope (tracked by an epoch-stamped sparse index sized to the
//     destinations actually touched, not O(n)); at the receiver, the
//     per-source envelopes fold into the row accumulator. Both folds are
//     left folds in canonical order, so an associative combiner keeps the
//     engine deterministic.
//   - Vote-to-halt: a vertex that returns halt stops being scheduled
//     until a message arrives for it; the run ends when every vertex has
//     halted and no messages are in flight. Converged regions therefore
//     stop computing and sending entirely — the BSP mirror of the
//     shared-memory path's frontier pruning.
package bsp

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"slices"
	"unsafe"

	"shoal/internal/obs"
	"shoal/internal/shard"
)

// VertexID identifies a vertex; ids are dense 0..N-1.
type VertexID int32

// denseTouchedDiv: a fill phase leaves its touched worklist unsorted
// ("dense mode") when more than 1/denseTouchedDiv of the shard's rows
// received messages — past that point an O(rows) generation-stamp scan
// in the next compute phase is cheaper than the O(t log t) worklist
// sort, and both visit rows in the same ascending (canonical) order.
const denseTouchedDiv = 8

// Program is the vertex computation. Compute runs once per eligible
// vertex per superstep. A vertex is eligible at superstep 0, and
// thereafter iff it received messages or declined to halt last time it
// ran.
type Program[M any] interface {
	// Compute processes vertex v at the given superstep. inbox holds the
	// messages sent to v during the previous superstep; the slice aliases
	// the engine's reused message buffers and is only valid for the
	// duration of the call — copy any payloads that must outlive it.
	// out.Send enqueues a message for delivery next superstep. Returning
	// true votes to halt; an incoming message reactivates the vertex.
	Compute(superstep int, v VertexID, inbox []M, out *Outbox[M]) (halt bool)
}

// Combiner is an optional Program upgrade: when the program implements
// it, the engine folds messages addressed to the same destination vertex
// — at the sender side (one folded envelope per source shard per
// destination) and again on arrival, so Compute sees a single combined
// message. Combine must be associative, and the program must not depend
// on message multiplicity — the engine may deliver one combined message
// where n were sent.
type Combiner[M any] interface {
	Combine(acc, m M) M
}

// Config controls engine execution.
type Config struct {
	// Workers is the number of shards (= worker goroutines) when no Plan
	// is given; 0 means GOMAXPROCS. Clamped to the vertex count.
	Workers int
	// Plan, when non-empty, is the row-range placement: shard i's worker
	// owns vertices [Plan.Bounds(i)). The plan must cover [0, n) exactly.
	// Workers is ignored when a plan is supplied.
	Plan shard.Plan
	// MaxSupersteps aborts runs that fail to converge; 0 means 1<<20.
	MaxSupersteps int
	// Chaos, when non-nil, enables failure injection.
	Chaos *Chaos
}

// Chaos injects distribution pathologies that a correct BSP program must
// tolerate: shuffled message delivery order and stalled (but eventually
// delivered) batches within a superstep boundary.
type Chaos struct {
	// Seed drives the shuffling.
	Seed uint64
	// ShuffleInbox randomizes per-vertex message order instead of the
	// canonical (sender, seq) order. Combining programs receive a single
	// folded message, so their delivery-order chaos comes from
	// StallBatches scrambling the arrival fold order instead.
	ShuffleInbox bool
	// StallBatches delivers each destination's source-shard batches in a
	// random order within the barrier — emulating cross-host batches
	// arriving late — instead of ascending source order.
	StallBatches bool
}

// Stats reports one run's execution profile plus the engine's lifetime
// reuse counters as of that run.
type Stats struct {
	Supersteps int
	// Messages is the total number of envelopes delivered (after any
	// sender-side combining).
	Messages int64
	// Sends is the total number of send() calls programs issued.
	Sends int64
	// CombinerHits counts sends folded into an existing envelope by the
	// sender-side combiner (Sends - CombinerHits envelopes were shipped).
	CombinerHits int64
	// ActivePerStep is the number of vertices computed per superstep.
	ActivePerStep []int
	// RunsServed is how many Runs this engine has completed over its
	// lifetime, counting this one — >1 means the engine was reused.
	RunsServed int
	// SeededRuns is how many of those runs were RunFrom (partial
	// activation) runs.
	SeededRuns int
	// Rebinds is how many times Rebind swapped a new topology into this
	// engine over its lifetime.
	Rebinds int
	// PeakRetainedBytes is the high-water mark of buffer memory the
	// engine keeps alive between Runs (inboxes, batches, worklists,
	// combiner scratch).
	PeakRetainedBytes int64
}

// CombinerHitRate is the fraction of sends absorbed by the combiner.
func (s *Stats) CombinerHitRate() float64 {
	if s.Sends == 0 {
		return 0
	}
	return float64(s.CombinerHits) / float64(s.Sends)
}

// Add accumulates another run's profile (used by callers that run one
// BSP job per clustering round and report the aggregate). Per-run
// counters sum; the engine-lifetime reuse counters keep the maximum, so
// aggregating a reused engine's rounds reports its final totals.
func (s *Stats) Add(o *Stats) {
	if o == nil {
		return
	}
	s.Supersteps += o.Supersteps
	s.Messages += o.Messages
	s.Sends += o.Sends
	s.CombinerHits += o.CombinerHits
	s.ActivePerStep = append(s.ActivePerStep, o.ActivePerStep...)
	s.RunsServed = max(s.RunsServed, o.RunsServed)
	s.SeededRuns = max(s.SeededRuns, o.SeededRuns)
	s.Rebinds = max(s.Rebinds, o.Rebinds)
	s.PeakRetainedBytes = max(s.PeakRetainedBytes, o.PeakRetainedBytes)
}

// inboxBuf is one shard's inbox for one superstep generation. rowGen
// stamps replace clears: row r holds messages iff rowGen[r] == gen, and
// touched lists those rows (ascending once sealed by the fill phase).
// Combining programs use the folded layout (acc[r] is the single
// combined message); others the CSR layout (msgs[start[r]:start[r]+
// cnt[r]] in canonical order). Two generations per shard alternate
// across supersteps.
type inboxBuf[M any] struct {
	gen     uint32   // engine generation this buffer was filled for; 0 = empty
	dense   bool     // touched covers most rows: left unsorted, compute scans the range
	touched []int32  // global row ids with messages, ascending after seal
	rowGen  []uint32 // local row -> generation it last received messages
	acc     []M      // folded layout: one combined message per local row
	// CSR layout (non-combining programs):
	start []int32
	cnt   []int32
	cur   []int32
	msgs  []M
}

// workerState is one shard worker's mutable state.
type workerState[M any] struct {
	ob Outbox[M]
	// actCur lists the shard's vertices that declined to halt last
	// superstep, ascending; actNext is the swap buffer being built.
	actCur  []int32
	actNext []int32

	computed  int
	delivered int64
}

// Outbox is the per-worker send surface handed to Program.Compute:
// destination validation, sender-side combining, and either direct
// accumulator folding (single shard + combiner) or per-(source, dest)
// envelope batching.
type Outbox[M any] struct {
	n    int32
	comb Combiner[M]

	// Fast path (single-shard engine running a combining program): sends
	// fold straight into the next superstep's inbox accumulator — no
	// envelopes, no transport. Emission order is the canonical delivery
	// order when there is only one source shard, so the fold is
	// byte-identical to the batch path's two-stage fold.
	acc     []M
	rowGen  []uint32
	touched []int32
	gen     uint32

	// Batch path: owner routes destinations to shards (nil means a
	// single shard), ci is the epoch-stamped sparse combiner index.
	owner []int32
	out   [][]Envelope[M]
	ci    combIndex

	err         error
	sends, hits int64
}

// Send enqueues a message for delivery to vertex `to` next superstep.
func (o *Outbox[M]) Send(to VertexID, m M) {
	t := int32(to)
	if uint32(t) >= uint32(o.n) {
		if o.err == nil {
			o.err = fmt.Errorf("bsp: sent to out-of-range vertex %d", to)
		}
		return
	}
	o.sends++
	if o.acc != nil {
		if o.rowGen[t] == o.gen {
			o.acc[t] = o.comb.Combine(o.acc[t], m)
			o.hits++
			return
		}
		o.rowGen[t] = o.gen
		o.acc[t] = m
		o.touched = append(o.touched, t)
		return
	}
	var d int32
	if o.owner != nil {
		d = o.owner[t]
	}
	if o.comb != nil {
		if i, ok := o.ci.slot(t, int32(len(o.out[d]))); ok {
			b := o.out[d]
			b[i].Msg = o.comb.Combine(b[i].Msg, m)
			o.hits++
			return
		}
	}
	o.out[d] = append(o.out[d], Envelope[M]{To: to, Msg: m})
}

// SendMany sends m to every vertex id in to, in order — the broadcast
// form of Send for fan-out programs (one call per vertex instead of one
// per edge). Semantically identical to calling Send(id, m) for each id;
// on the single-shard fast path the per-send bookkeeping is hoisted out
// of the loop, which is a measurable win at one send per adjacency
// entry.
func (o *Outbox[M]) SendMany(to []int32, m M) {
	if o.acc == nil {
		for _, t := range to {
			o.Send(VertexID(t), m)
		}
		return
	}
	gen, acc, rowGen, comb := o.gen, o.acc, o.rowGen, o.comb
	n, touched := o.n, o.touched
	var sends, hits int64
	for _, t := range to {
		if uint32(t) >= uint32(n) {
			if o.err == nil {
				o.err = fmt.Errorf("bsp: sent to out-of-range vertex %d", t)
			}
			continue
		}
		sends++
		if rowGen[t] == gen {
			acc[t] = comb.Combine(acc[t], m)
			hits++
			continue
		}
		rowGen[t] = gen
		acc[t] = m
		touched = append(touched, t)
	}
	o.touched = touched
	o.sends += sends
	o.hits += hits
}

// combIndex is the sender-side combiner's destination index: open
// addressing with epoch stamps, so a superstep boundary is one counter
// bump instead of an O(n) clear, and capacity tracks the destinations a
// superstep actually touches instead of the vertex count. Doubles by
// rehashing the live epoch's entries when half full; steady-state
// supersteps allocate nothing once capacity has grown.
type combIndex struct {
	keys  []int32
	idxs  []int32
	eps   []uint32
	epoch uint32
	shift uint32
	live  int
}

func (c *combIndex) init(pow uint32) {
	c.keys = make([]int32, 1<<pow)
	c.idxs = make([]int32, 1<<pow)
	c.eps = make([]uint32, 1<<pow)
	c.shift = 32 - pow
}

func (c *combIndex) nextEpoch() {
	c.epoch++
	c.live = 0
}

// slot probes for key. Found: returns its stored batch index and true.
// Absent: records ins as key's batch index and returns false.
func (c *combIndex) slot(key, ins int32) (int32, bool) {
	mask := uint32(len(c.keys) - 1)
	h := (uint32(key) * 2654435769) >> c.shift
	for {
		if c.eps[h] != c.epoch {
			c.eps[h] = c.epoch
			c.keys[h] = key
			c.idxs[h] = ins
			c.live++
			if c.live*2 >= len(c.keys) {
				c.grow()
			}
			return 0, false
		}
		if c.keys[h] == key {
			return c.idxs[h], true
		}
		h = (h + 1) & mask
	}
}

// grow doubles the table, reinserting only the current epoch's entries.
func (c *combIndex) grow() {
	keys, idxs, eps, epoch := c.keys, c.idxs, c.eps, c.epoch
	c.init(33 - c.shift)
	// Fresh stamps are zero and the live epoch is >= 1 (nextEpoch runs
	// before any slot call), so the new table reads as empty.
	mask := uint32(len(c.keys) - 1)
	for i := range keys {
		if eps[i] != epoch {
			continue
		}
		h := (uint32(keys[i]) * 2654435769) >> c.shift
		for c.eps[h] == epoch {
			h = (h + 1) & mask
		}
		c.eps[h] = epoch
		c.keys[h] = keys[i]
		c.idxs[h] = idxs[i]
	}
}

// Engine executes a Program over a fixed set of vertices. It is
// persistent: Run may be called repeatedly, Rebind swaps in a new vertex
// count and program between Runs, and Close retires the workers.
type Engine[M any] struct {
	n    int
	prog Program[M]
	comb Combiner[M]
	cfg  Config
	tr   Transport[M]

	bounds []int32 // shard row bounds, len S+1
	S      int
	owner  []int32 // vertex -> owning shard; nil when single-sharded

	initialized bool
	closed      bool
	fast        bool // single shard + combiner: fold sends directly
	seeded      bool // current run was seeded (RunFrom): no full step-0 scan
	ws          []workerState[M]
	in, nxt     []inboxBuf[M]
	cmds        []chan wcmd
	done        chan struct{}
	gen         uint32 // inbox generation, monotonic across Runs and Rebinds

	runs         int
	seededRuns   int
	rebinds      int
	peakRetained int64

	// span, when set, parents one child span per Run/RunFrom carrying the
	// run's superstep and message totals — how BSP runs hang beneath each
	// clustering merge round in the build trace.
	span *obs.Span
}

// wcmd drives a persistent shard worker through one phase.
type wcmd struct {
	step int32
	kind int8 // 0 compute+send, 1 recv+fill
}

// New creates an engine over n vertices. The topology lives inside the
// program (vertices send to whichever ids they know); the engine only
// validates destinations and owns placement, transport and delivery.
func New[M any](n int, prog Program[M], cfg Config) (*Engine[M], error) {
	if n <= 0 {
		return nil, errors.New("bsp: vertex count must be positive")
	}
	if prog == nil {
		return nil, errors.New("bsp: nil program")
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 1 << 20
	}
	var bounds []int32
	if cfg.Plan.NumShards() > 0 {
		p := cfg.Plan
		S := p.NumShards()
		bounds = make([]int32, S+1)
		for i := 0; i < S; i++ {
			lo, hi := p.Bounds(i)
			if lo > hi {
				return nil, fmt.Errorf("bsp: plan shard %d has inverted bounds [%d,%d)", i, lo, hi)
			}
			bounds[i] = lo
			bounds[i+1] = hi
		}
		if bounds[0] != 0 || int(bounds[S]) != n {
			return nil, fmt.Errorf("bsp: plan covers [%d,%d), want [0,%d)", bounds[0], bounds[S], n)
		}
	} else {
		w := cfg.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > n {
			w = n
		}
		bounds = make([]int32, w+1)
		for i := 0; i <= w; i++ {
			bounds[i] = int32(i * n / w)
		}
	}
	e := &Engine[M]{n: n, prog: prog, cfg: cfg, bounds: bounds, S: len(bounds) - 1}
	e.comb, _ = prog.(Combiner[M])
	return e, nil
}

// Shards returns the number of worker shards the engine runs with.
func (e *Engine[M]) Shards() int { return e.S }

// SetTransport replaces the default in-process Loopback with a custom
// transport (the multi-host seam). Must be called before the first Run.
// The batches handed to Send are owned by the engine and reused after
// the next superstep's barrier — a remote transport must copy or
// serialize them inside Send. A single-shard engine running a combining
// program delivers locally and bypasses the transport entirely (a
// one-host deployment has no wire to cross).
func (e *Engine[M]) SetTransport(t Transport[M]) { e.tr = t }

// Rebind swaps a new vertex count and program into the engine between
// Runs, repartitioning the rows uniformly across the same workers.
// Everything expensive survives: worker goroutines, channels, transport,
// inbox buffers, worklists and combiner scratch are kept and re-sliced
// (growing amortized when n grows, shrink-only otherwise). This is the
// per-round hook for iterated jobs like phac's merge rounds, where each
// round's contracted topology replaces the last. The program's
// combiner-ness must not change across rebinds (the two message layouts
// are incompatible).
func (e *Engine[M]) Rebind(n int, prog Program[M]) error {
	if e.closed {
		return errors.New("bsp: engine is closed")
	}
	if n <= 0 {
		return errors.New("bsp: vertex count must be positive")
	}
	if prog == nil {
		return errors.New("bsp: nil program")
	}
	comb, _ := prog.(Combiner[M])
	if e.initialized && (comb == nil) != (e.comb == nil) {
		return errors.New("bsp: Rebind cannot change whether the program combines")
	}
	e.n, e.prog, e.comb = n, prog, comb
	for i := 0; i <= e.S; i++ {
		e.bounds[i] = int32(i * n / e.S)
	}
	e.rebinds++
	if !e.initialized {
		return nil
	}
	if e.S > 1 {
		if cap(e.owner) < n {
			e.owner = make([]int32, n)
		} else {
			e.owner = e.owner[:n]
		}
		for s := 0; s < e.S; s++ {
			for v := e.bounds[s]; v < e.bounds[s+1]; v++ {
				e.owner[v] = int32(s)
			}
		}
	}
	for s := 0; s < e.S; s++ {
		e.sizeShard(s)
		ob := &e.ws[s].ob
		ob.n = int32(n)
		ob.comb = comb
		ob.owner = e.owner
	}
	return nil
}

// Close retires the persistent shard workers. The engine cannot Run or
// Rebind afterwards. Safe to call more than once; single-shard engines
// have no goroutines and Close is then a pure marker.
func (e *Engine[M]) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, c := range e.cmds {
		close(c)
	}
	e.cmds = nil
}

// init allocates the reusable engine state and spawns the persistent
// workers on first Run.
func (e *Engine[M]) init() {
	if e.initialized {
		return
	}
	e.initialized = true
	if e.tr == nil {
		e.tr = NewLoopback[M](e.S)
	}
	e.fast = e.comb != nil && e.S == 1
	if e.S > 1 {
		e.owner = make([]int32, e.n)
		for s := 0; s < e.S; s++ {
			for v := e.bounds[s]; v < e.bounds[s+1]; v++ {
				e.owner[v] = int32(s)
			}
		}
	}
	e.ws = make([]workerState[M], e.S)
	e.in = make([]inboxBuf[M], e.S)
	e.nxt = make([]inboxBuf[M], e.S)
	for s := 0; s < e.S; s++ {
		e.sizeShard(s)
		ob := &e.ws[s].ob
		ob.n = int32(e.n)
		ob.comb = e.comb
		ob.owner = e.owner
		ob.out = make([][]Envelope[M], e.S)
		if e.comb != nil && !e.fast {
			ob.ci.init(8)
		}
	}
	if e.S > 1 {
		e.cmds = make([]chan wcmd, e.S)
		e.done = make(chan struct{}, e.S)
		for s := 0; s < e.S; s++ {
			e.cmds[s] = make(chan wcmd, 1)
			go e.worker(s, e.cmds[s])
		}
	}
}

// sizeShard (re)sizes shard s's per-row inbox arrays to its current row
// range. Growth appends zeroed tails (stale generation stamps can never
// match: generations are monotonic and never reset), shrink re-slices;
// capacities are amortized across rebinds either way.
func (e *Engine[M]) sizeShard(s int) {
	rows := int(e.bounds[s+1] - e.bounds[s])
	for _, b := range [2]*inboxBuf[M]{&e.in[s], &e.nxt[s]} {
		b.rowGen = growN(b.rowGen, rows)
		if e.comb != nil {
			b.acc = growN(b.acc, rows)
		} else {
			b.start = growN(b.start, rows)
			b.cnt = growN(b.cnt, rows)
			b.cur = growN(b.cur, rows)
		}
	}
}

// growN re-slices b to length n, allocating only when capacity is short;
// preserved prefixes keep their (stale, harmless) contents. Growth takes
// at least 3/2 headroom so iterated jobs whose vertex count creeps up a
// little every Rebind (phac mints merge ids each round) reallocate
// O(log n) times per engine lifetime, not once per round.
func growN[T any](b []T, n int) []T {
	if cap(b) >= n {
		return b[:n]
	}
	nb := make([]T, n, max(n, 3*cap(b)/2))
	copy(nb, b)
	return nb
}

// Run executes supersteps until every vertex halts with no messages in
// flight, or MaxSupersteps is exceeded (an error). Run may be called
// repeatedly; the engine reuses its buffers, so steady-state supersteps
// — message layout, worklists and combiner scratch included — are
// allocation-free once capacities have grown.
func (e *Engine[M]) Run() (*Stats, error) {
	return e.run(nil, false)
}

// RunFrom is Run with partial activation: superstep 0 computes only the
// given vertices (deduplicated; any order) instead of all n, and
// vote-to-halt reactivation carries the ripple outward exactly as it
// does mid-run. It is the seeded-run hook for iterated jobs that
// memoize state across runs — a caller whose cross-run changes touched
// only `active` rows restarts the cascade from those rows and pays
// O(frontier), not O(n), per superstep. An empty seed is a zero-
// superstep no-op. Like Run, steady-state seeded runs are allocation-
// free once the seed-routing worklists have grown.
func (e *Engine[M]) RunFrom(active []VertexID) (*Stats, error) {
	return e.run(active, true)
}

// SetSpan installs the trace span under which subsequent Runs record
// themselves; nil detaches. Callers re-point it per merge round.
func (e *Engine[M]) SetSpan(s *obs.Span) { e.span = s }

// run wraps runSteps with the engine's per-run trace span when one is
// installed; without one it adds nothing to the steady-state path.
func (e *Engine[M]) run(seed []VertexID, seeded bool) (*Stats, error) {
	if e.span == nil {
		return e.runSteps(seed, seeded)
	}
	name := "bsp-run"
	if seeded {
		name = "bsp-run-seeded"
	}
	rs := e.span.Child(name)
	stats, err := e.runSteps(seed, seeded)
	if stats != nil {
		rs.SetAttr("supersteps", stats.Supersteps)
		rs.SetAttr("messages", stats.Messages)
		rs.SetAttr("sends", stats.Sends)
	}
	rs.End()
	return stats, err
}

func (e *Engine[M]) runSteps(seed []VertexID, seeded bool) (*Stats, error) {
	if e.closed {
		return nil, errors.New("bsp: engine is closed")
	}
	e.init()
	e.seeded = seeded
	for s := 0; s < e.S; s++ {
		ws := &e.ws[s]
		ws.ob.err, ws.ob.sends, ws.ob.hits = nil, 0, 0
		ws.actCur = ws.actCur[:0]
		// Mark both inbox generations empty (gen 0 never matches a
		// stamp: the engine generation is bumped before first use).
		e.in[s].gen, e.nxt[s].gen = 0, 0
		// A previous Run that aborted between its send and fill phases
		// may have left undelivered batches in the transport; drain them
		// so they cannot surface as phantom superstep-0 messages.
		if _, err := e.tr.Recv(0, s); err != nil {
			return nil, err
		}
	}
	activeCnt := e.n // Run's superstep 0 computes every vertex
	if seeded {
		// Route the seed into the per-shard active worklists; superstep 0
		// then runs the ordinary worklist branch (with no inbox) over
		// exactly these rows. Each shard's list is sorted and deduped so
		// the compute order stays canonical regardless of seed order.
		for _, v := range seed {
			t := int32(v)
			if uint32(t) >= uint32(e.n) {
				return nil, fmt.Errorf("bsp: seed vertex %d out of range [0,%d)", v, e.n)
			}
			s := 0
			if e.owner != nil {
				s = int(e.owner[t])
			}
			e.ws[s].actCur = append(e.ws[s].actCur, t)
		}
		activeCnt = 0
		for s := 0; s < e.S; s++ {
			ws := &e.ws[s]
			slices.Sort(ws.actCur)
			ws.actCur = slices.Compact(ws.actCur)
			activeCnt += len(ws.actCur)
		}
		e.seededRuns++
	}
	pending := int64(0)

	stats := &Stats{}
	for step := 0; ; step++ {
		if activeCnt == 0 && pending == 0 {
			break
		}
		if step >= e.cfg.MaxSupersteps {
			return stats, fmt.Errorf("bsp: exceeded %d supersteps without converging", e.cfg.MaxSupersteps)
		}
		e.gen++
		e.phase(wcmd{step: int32(step), kind: 0})
		for s := 0; s < e.S; s++ {
			if err := e.ws[s].ob.err; err != nil {
				return stats, err
			}
		}
		e.phase(wcmd{step: int32(step), kind: 1})
		var delivered int64
		computed := 0
		activeCnt = 0
		for s := 0; s < e.S; s++ {
			ws := &e.ws[s]
			if ws.ob.err != nil {
				return stats, ws.ob.err
			}
			delivered += ws.delivered
			computed += ws.computed
			activeCnt += len(ws.actCur)
		}
		e.in, e.nxt = e.nxt, e.in
		pending = delivered
		stats.Messages += delivered
		stats.ActivePerStep = append(stats.ActivePerStep, computed)
		stats.Supersteps++
	}
	for s := 0; s < e.S; s++ {
		stats.Sends += e.ws[s].ob.sends
		stats.CombinerHits += e.ws[s].ob.hits
	}
	e.runs++
	if rb := e.retainedBytes(); rb > e.peakRetained {
		e.peakRetained = rb
	}
	stats.RunsServed = e.runs
	stats.SeededRuns = e.seededRuns
	stats.Rebinds = e.rebinds
	stats.PeakRetainedBytes = e.peakRetained
	return stats, nil
}

// retainedBytes sums the buffer memory the engine keeps alive between
// Runs — the price of persistence, surfaced in Stats.
func (e *Engine[M]) retainedBytes() int64 {
	esz := int64(unsafe.Sizeof(Envelope[M]{}))
	msz := int64(unsafe.Sizeof(*new(M)))
	total := int64(cap(e.owner))*4 + int64(cap(e.bounds))*4
	for s := range e.ws {
		ws := &e.ws[s]
		total += int64(cap(ws.actCur)+cap(ws.actNext)) * 4
		for d := range ws.ob.out {
			total += int64(cap(ws.ob.out[d])) * esz
		}
		total += int64(len(ws.ob.ci.keys)) * 12
		for _, b := range [2]*inboxBuf[M]{&e.in[s], &e.nxt[s]} {
			total += int64(cap(b.rowGen)+cap(b.touched)+cap(b.start)+cap(b.cnt)+cap(b.cur)) * 4
			total += int64(cap(b.acc)+cap(b.msgs)) * msz
		}
	}
	return total
}

// phase runs one barrier-delimited phase on every shard — inline when
// single-sharded, via the persistent workers otherwise.
func (e *Engine[M]) phase(c wcmd) {
	if e.S == 1 {
		e.runPhase(0, c)
		return
	}
	for s := 0; s < e.S; s++ {
		e.cmds[s] <- c
	}
	for s := 0; s < e.S; s++ {
		<-e.done
	}
}

// worker is the persistent goroutine driving shard s, one phase per
// command. It is spawned once on the first Run and exits when Close
// closes the command channel. The channel is passed in rather than read
// from e.cmds, which Close nils out — possibly before a worker spawned
// by a run that never reached a phase gets scheduled at all.
func (e *Engine[M]) worker(s int, cmds <-chan wcmd) {
	for c := range cmds {
		e.runPhase(s, c)
		e.done <- struct{}{}
	}
}

func (e *Engine[M]) runPhase(s int, c wcmd) {
	if c.kind == 0 {
		e.computeShard(s, int(c.step))
	} else {
		e.fillShard(s, int(c.step))
	}
}

// computeShard runs the superstep's compute over shard s's eligible rows
// and hands the resulting per-destination batches to the transport (the
// fast path folded its sends directly and ships nothing). An unseeded
// run's superstep 0 visits every row; a seeded run's superstep 0 and all
// later supersteps visit the sorted merge of the active worklist and the
// inbox's touched rows — O(frontier) — still in ascending row order, so
// the shard's emission stream stays in canonical (sender, seq) order by
// construction.
func (e *Engine[M]) computeShard(s, step int) {
	ws := &e.ws[s]
	ob := &ws.ob
	if e.fast {
		nb := &e.nxt[s]
		nb.gen = e.gen
		ob.gen = e.gen
		ob.acc = nb.acc
		ob.rowGen = nb.rowGen
		ob.touched = nb.touched[:0]
	} else {
		for d := range ob.out {
			ob.out[d] = ob.out[d][:0]
		}
		if ob.comb != nil {
			ob.ci.nextEpoch()
		}
	}
	in := &e.in[s]
	lo, hi := e.bounds[s], e.bounds[s+1]
	chaos := e.cfg.Chaos
	nextAct := ws.actNext[:0]
	folded := ob.comb != nil
	if step == 0 && !e.seeded {
		for v := lo; v < hi; v++ {
			if halt := e.prog.Compute(step, VertexID(v), nil, ob); !halt {
				nextAct = append(nextAct, v)
			}
			if ob.err != nil {
				break
			}
		}
		ws.computed = int(hi - lo)
	} else if in.gen != 0 && in.dense {
		// Dense frontier: the fill phase left touched unsorted because
		// most rows received messages; an ascending range scan over the
		// generation stamps (with a pointer walking the sorted active
		// list) recovers the canonical visit order cheaper than sorting.
		act := ws.actCur
		ai, n := 0, 0
		for v := lo; v < hi; v++ {
			for ai < len(act) && act[ai] < v {
				ai++
			}
			hasMsg := in.rowGen[v-lo] == in.gen
			if !hasMsg && !(ai < len(act) && act[ai] == v) {
				continue
			}
			var inbox []M
			if hasMsg {
				if r := v - lo; folded {
					inbox = in.acc[r : r+1 : r+1]
				} else {
					m0 := in.start[r]
					m1 := m0 + in.cnt[r]
					inbox = in.msgs[m0:m1:m1]
				}
			}
			if chaos != nil && chaos.ShuffleInbox && len(inbox) > 1 {
				rng := rand.New(rand.NewPCG(chaos.Seed, uint64(step)<<32|uint64(uint32(v))))
				rng.Shuffle(len(inbox), func(i, j int) { inbox[i], inbox[j] = inbox[j], inbox[i] })
			}
			halt := e.prog.Compute(step, VertexID(v), inbox, ob)
			n++
			if !halt {
				nextAct = append(nextAct, v)
			}
			if ob.err != nil {
				break
			}
		}
		ws.computed = n
	} else {
		act, tch := ws.actCur, in.touched
		if in.gen == 0 {
			tch = nil
		}
		i, j, n := 0, 0, 0
		for i < len(act) || j < len(tch) {
			var v int32
			switch {
			case j >= len(tch):
				v = act[i]
				i++
			case i >= len(act):
				v = tch[j]
				j++
			case act[i] < tch[j]:
				v = act[i]
				i++
			case act[i] > tch[j]:
				v = tch[j]
				j++
			default:
				v = act[i]
				i++
				j++
			}
			var inbox []M
			if r := v - lo; in.gen != 0 && in.rowGen[r] == in.gen {
				if folded {
					inbox = in.acc[r : r+1 : r+1]
				} else {
					m0 := in.start[r]
					m1 := m0 + in.cnt[r]
					inbox = in.msgs[m0:m1:m1]
				}
			}
			if chaos != nil && chaos.ShuffleInbox && len(inbox) > 1 {
				rng := rand.New(rand.NewPCG(chaos.Seed, uint64(step)<<32|uint64(uint32(v))))
				rng.Shuffle(len(inbox), func(i, j int) { inbox[i], inbox[j] = inbox[j], inbox[i] })
			}
			halt := e.prog.Compute(step, VertexID(v), inbox, ob)
			n++
			if !halt {
				nextAct = append(nextAct, v)
			}
			if ob.err != nil {
				break
			}
		}
		ws.computed = n
	}
	ws.actNext = ws.actCur
	ws.actCur = nextAct
	if e.fast {
		e.nxt[s].touched = ob.touched
		return
	}
	for d := 0; d < e.S; d++ {
		if len(ob.out[d]) == 0 {
			continue
		}
		if err := e.tr.Send(step, s, d, ob.out[d]); err != nil {
			ob.err = err
			return
		}
	}
}

// fillShard builds shard d's next-superstep inbox from the transport's
// batches — folding them into the row accumulator for combining
// programs, or laying them out CSR-style otherwise. Batches arrive in
// ascending source-shard order and envelopes in emission order, so the
// fold (or concatenation) is the canonical (sender, seq) delivery order
// without any sort; only the touched-row worklist is sorted, O(t log t)
// in the rows that actually received messages. All buffers are reused;
// steady-state supersteps allocate nothing here. On the fast path the
// compute phase already folded everything, and sealing is just the
// worklist sort.
func (e *Engine[M]) fillShard(d, step int) {
	ws := &e.ws[d]
	ws.delivered = 0
	nb := &e.nxt[d]
	rows := int(e.bounds[d+1] - e.bounds[d])
	if e.fast {
		nb.dense = len(nb.touched)*denseTouchedDiv > rows
		if !nb.dense {
			slices.Sort(nb.touched)
		}
		ws.delivered = int64(len(nb.touched))
		return
	}
	batches, err := e.tr.Recv(step, d)
	if err != nil {
		ws.ob.err = err
		return
	}
	chaos := e.cfg.Chaos
	if chaos != nil && chaos.StallBatches && len(batches) > 1 {
		rng := rand.New(rand.NewPCG(chaos.Seed^0x57A11ED, uint64(step)<<32|uint64(uint32(d))))
		rng.Shuffle(len(batches), func(i, j int) { batches[i], batches[j] = batches[j], batches[i] })
	}
	gen := e.gen
	nb.gen = gen
	lo := e.bounds[d]
	touched := nb.touched[:0]
	if e.comb != nil {
		var total int64
		for _, bt := range batches {
			total += int64(len(bt))
			for i := range bt {
				r := int32(bt[i].To) - lo
				if nb.rowGen[r] != gen {
					nb.rowGen[r] = gen
					nb.acc[r] = bt[i].Msg
					touched = append(touched, lo+r)
				} else {
					nb.acc[r] = e.comb.Combine(nb.acc[r], bt[i].Msg)
				}
			}
		}
		nb.dense = len(touched)*denseTouchedDiv > rows
		if !nb.dense {
			slices.Sort(touched)
		}
		nb.touched = touched
		ws.delivered = total
		return
	}
	nb.dense = false // CSR layout needs the sorted order below
	total := int32(0)
	for _, bt := range batches {
		total += int32(len(bt))
		for i := range bt {
			r := int32(bt[i].To) - lo
			if nb.rowGen[r] != gen {
				nb.rowGen[r] = gen
				nb.cnt[r] = 0
				touched = append(touched, lo+r)
			}
			nb.cnt[r]++
		}
	}
	slices.Sort(touched)
	pos := int32(0)
	for _, v := range touched {
		r := v - lo
		nb.start[r] = pos
		nb.cur[r] = pos
		pos += nb.cnt[r]
	}
	if cap(nb.msgs) < int(total) {
		nb.msgs = make([]M, total)
	} else {
		nb.msgs = nb.msgs[:total]
	}
	for _, bt := range batches {
		for i := range bt {
			r := int32(bt[i].To) - lo
			nb.msgs[nb.cur[r]] = bt[i].Msg
			nb.cur[r]++
		}
	}
	nb.touched = touched
	ws.delivered = int64(total)
}
