package bipartite

import (
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"shoal/internal/model"
)

func randEvents(rng *rand.Rand, n int) []model.ClickEvent {
	evs := make([]model.ClickEvent, 0, n)
	day := int32(0)
	for i := 0; i < n; i++ {
		if rng.IntN(3) == 0 {
			day += int32(rng.IntN(3))
		}
		d := day - int32(rng.IntN(9)) // sometimes far enough back to be stale
		if d < 0 {
			d = 0
		}
		evs = append(evs, model.ClickEvent{
			Query: model.QueryID(rng.IntN(9)),
			Item:  model.ItemID(rng.IntN(9)),
			Day:   d,
			Count: int32(rng.IntN(3) + 1),
		})
	}
	return evs
}

// Property: the batched AddAll fast path leaves the graph in exactly the
// state a sequential Add replay would — same aggregates, same retained raw
// days, same max day — for any interleaving of in-order, out-of-order, and
// stale events.
func TestAddAllMatchesSequential(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		evs := randEvents(rng, int(n)%150+1)

		seq := New(7)
		for _, ev := range evs {
			if err := seq.Add(ev); err != nil {
				return false
			}
		}
		bat := New(7)
		if err := bat.AddAll(evs); err != nil {
			return false
		}
		return bat.maxDay == seq.maxDay &&
			reflect.DeepEqual(bat.queryItems, seq.queryItems) &&
			reflect.DeepEqual(bat.itemQuery, seq.itemQuery) &&
			reflect.DeepEqual(bat.byDay, seq.byDay)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any ingestion sequence, the drained changed-item set is
// exactly the set of items whose sorted QuerySet differs from a snapshot
// taken at the previous drain.
func TestChangedItemsTracksQuerySetMembership(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		g := New(5)
		// Warm phase, then snapshot.
		if err := g.AddAll(randEvents(rng, 60)); err != nil {
			return false
		}
		g.TakeChangedItems()
		before := make(map[model.ItemID][]model.QueryID)
		for it := model.ItemID(0); it < 9; it++ {
			before[it] = g.QuerySet(it)
		}
		// Perturb phase.
		if err := g.AddAll(randEvents(rng, 60)); err != nil {
			return false
		}
		changed := make(map[model.ItemID]bool)
		for _, it := range g.TakeChangedItems() {
			changed[it] = true
		}
		for it := model.ItemID(0); it < 9; it++ {
			if moved := !reflect.DeepEqual(before[it], g.QuerySet(it)); moved && !changed[it] {
				return false // a real membership change was missed
			}
		}
		// Second drain must be empty.
		return g.TakeChangedItems() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestChangedItemsCountOnlyChangeNotTracked(t *testing.T) {
	g := New(7)
	ev := model.ClickEvent{Query: 1, Item: 2, Day: 0, Count: 1}
	if err := g.Add(ev); err != nil {
		t.Fatal(err)
	}
	if got := g.TakeChangedItems(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("initial add should mark item 2, got %v", got)
	}
	// Same pair again: count 1 -> 2, membership unchanged.
	if err := g.Add(ev); err != nil {
		t.Fatal(err)
	}
	if got := g.TakeChangedItems(); got != nil {
		t.Fatalf("count-only change must not mark items, got %v", got)
	}
}

func TestChangedItemsMarksEvictions(t *testing.T) {
	g := New(3)
	if err := g.Add(model.ClickEvent{Query: 1, Item: 5, Day: 0, Count: 1}); err != nil {
		t.Fatal(err)
	}
	g.TakeChangedItems()
	// Day 10 evicts day 0 entirely: item 5 loses query 1.
	if err := g.Add(model.ClickEvent{Query: 2, Item: 6, Day: 10, Count: 1}); err != nil {
		t.Fatal(err)
	}
	changed := g.TakeChangedItems()
	want := []model.ItemID{5, 6}
	if !reflect.DeepEqual(changed, want) {
		t.Fatalf("eviction must mark item 5 alongside new item 6: got %v want %v", changed, want)
	}
}

func TestDroppedStaleCounting(t *testing.T) {
	g := New(3)
	if err := g.Add(model.ClickEvent{Query: 1, Item: 1, Day: 10, Count: 1}); err != nil {
		t.Fatal(err)
	}
	// Day 7 is exactly at the cutoff (10 - 3): dropped.
	if err := g.Add(model.ClickEvent{Query: 1, Item: 1, Day: 7, Count: 1}); err != nil {
		t.Fatal(err)
	}
	// Day 8 is in-window: kept.
	if err := g.Add(model.ClickEvent{Query: 2, Item: 2, Day: 8, Count: 1}); err != nil {
		t.Fatal(err)
	}
	st := g.Stats()
	if st.DroppedStale != 1 {
		t.Fatalf("DroppedStale = %d, want 1", st.DroppedStale)
	}
	if st.Queries != 2 || st.Items != 2 || st.MaxDay != 10 {
		t.Fatalf("unexpected stats %+v", st)
	}

	// Batch path counts stale drops the same way.
	b := New(3)
	if err := b.AddAll([]model.ClickEvent{
		{Query: 1, Item: 1, Day: 10, Count: 1},
		{Query: 1, Item: 1, Day: 7, Count: 1},
		{Query: 2, Item: 2, Day: 8, Count: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if got := b.Stats().DroppedStale; got != 1 {
		t.Fatalf("batch DroppedStale = %d, want 1", got)
	}
}

func TestAddAllRejectsInvalidWithoutMutating(t *testing.T) {
	g := New(7)
	err := g.AddAll([]model.ClickEvent{
		{Query: 1, Item: 1, Day: 0, Count: 1},
		{Query: 1, Item: 2, Day: 0, Count: 0}, // invalid
	})
	if err == nil {
		t.Fatal("want error for non-positive count")
	}
	if g.Queries() != 0 || g.Items() != 0 || g.MaxDay() != -1 {
		t.Fatalf("failed batch must not mutate the graph: %+v", g.Stats())
	}
}

// benchDay synthesizes one day's worth of click events.
func benchDay(day int32, events int) []model.ClickEvent {
	rng := rand.New(rand.NewPCG(uint64(day)+1, 5))
	evs := make([]model.ClickEvent, events)
	for i := range evs {
		evs[i] = model.ClickEvent{
			Query: model.QueryID(rng.IntN(400)),
			Item:  model.ItemID(rng.IntN(600)),
			Day:   day,
			Count: int32(rng.IntN(3) + 1),
		}
	}
	return evs
}

// BenchmarkIngestDaySequential is the old per-event path: every event that
// bumps the max day re-runs the eviction scan.
func BenchmarkIngestDaySequential(b *testing.B) {
	days := make([][]model.ClickEvent, 30)
	for d := range days {
		days[d] = benchDay(int32(d), 2000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(7)
		for _, evs := range days {
			for _, ev := range evs {
				if err := g.Add(ev); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkIngestDayBatch is the AddAll fast path: one eviction pass per
// ingested day.
func BenchmarkIngestDayBatch(b *testing.B) {
	days := make([][]model.ClickEvent, 30)
	for d := range days {
		days[d] = benchDay(int32(d), 2000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(7)
		for _, evs := range days {
			if err := g.AddAll(evs); err != nil {
				b.Fatal(err)
			}
		}
	}
}
