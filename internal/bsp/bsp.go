// Package bsp implements a Pregel-style vertex-centric bulk-synchronous
// parallel engine. The paper runs Parallel HAC "on the Alibaba distributed
// graph platform (ODPS)"; this engine is the in-process stand-in
// (DESIGN.md §1.3): vertices are hash-partitioned across workers, compute
// proceeds in supersteps separated by barriers, and messages produced in
// superstep s are delivered at superstep s+1.
//
// Determinism: each vertex's inbox is sorted by (sender, send order) before
// delivery, so a program observes a canonical message order regardless of
// scheduling. A chaos mode deliberately shuffles inboxes instead — programs
// whose results must not depend on delivery order (like Parallel HAC's
// max-diffusion) are tested under chaos.
package bsp

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
)

// VertexID identifies a vertex; ids are dense 0..N-1.
type VertexID int32

// Program is the vertex computation. Compute runs once per active vertex
// per superstep. A vertex is active at superstep 0, and thereafter iff it
// received messages or declined to halt last time it ran.
type Program[M any] interface {
	// Compute processes vertex v at the given superstep. inbox holds the
	// messages sent to v during the previous superstep. send enqueues a
	// message for delivery next superstep. Returning true votes to halt;
	// an incoming message reactivates the vertex.
	Compute(superstep int, v VertexID, inbox []M, send func(to VertexID, m M)) (halt bool)
}

// Config controls engine execution.
type Config struct {
	// Workers is the number of partitions/goroutines; 0 means GOMAXPROCS.
	Workers int
	// MaxSupersteps aborts runs that fail to converge; 0 means 1<<20.
	MaxSupersteps int
	// Chaos, when non-nil, enables failure injection.
	Chaos *Chaos
}

// Chaos injects distribution pathologies that a correct BSP program must
// tolerate: shuffled message delivery order and stalled (but eventually
// delivered) messages within a superstep boundary.
type Chaos struct {
	// Seed drives the shuffling.
	Seed uint64
	// ShuffleInbox randomizes per-vertex message order instead of the
	// canonical (sender, seq) order.
	ShuffleInbox bool
}

// Stats reports one run's execution profile.
type Stats struct {
	Supersteps int
	// Messages is the total number of messages delivered.
	Messages int64
	// ActivePerStep is the number of vertices computed per superstep.
	ActivePerStep []int
}

type message[M any] struct {
	from VertexID
	seq  int32
	to   VertexID
	m    M
}

// Engine executes a Program over a fixed set of vertices.
type Engine[M any] struct {
	n       int
	prog    Program[M]
	cfg     Config
	workers int
}

// New creates an engine over n vertices. The topology lives inside the
// program (vertices send to whichever ids they know); the engine only
// validates destinations.
func New[M any](n int, prog Program[M], cfg Config) (*Engine[M], error) {
	if n <= 0 {
		return nil, errors.New("bsp: vertex count must be positive")
	}
	if prog == nil {
		return nil, errors.New("bsp: nil program")
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 1 << 20
	}
	return &Engine[M]{n: n, prog: prog, cfg: cfg, workers: w}, nil
}

// Run executes supersteps until every vertex halts with no messages in
// flight, or MaxSupersteps is exceeded (an error).
func (e *Engine[M]) Run() (*Stats, error) {
	// Partition: vertex v belongs to worker v % workers (hash
	// partitioning on dense ids), implemented by the strided loops below.
	active := make([]bool, e.n)
	for i := range active {
		active[i] = true
	}
	inboxes := make([][]message[M], e.n)

	stats := &Stats{}
	for step := 0; ; step++ {
		if step >= e.cfg.MaxSupersteps {
			return stats, fmt.Errorf("bsp: exceeded %d supersteps without converging", e.cfg.MaxSupersteps)
		}
		// Determine the compute set.
		var anyActive bool
		for v := 0; v < e.n; v++ {
			if len(inboxes[v]) > 0 {
				active[v] = true
			}
			if active[v] {
				anyActive = true
			}
		}
		if !anyActive {
			break
		}

		// outPer[w] collects messages produced by worker w, in send
		// order — deterministic because each worker owns fixed vertices
		// scanned in id order.
		outPer := make([][]message[M], e.workers)
		errs := make([]error, e.workers)
		computed := make([]int, e.workers)
		var wg sync.WaitGroup
		for w := 0; w < e.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var seq int32
				for v := w; v < e.n; v += e.workers {
					if !active[v] {
						continue
					}
					inbox := e.deliverOrder(inboxes[v], step)
					vid := VertexID(v)
					var sendErr error
					halt := e.prog.Compute(step, vid, inbox, func(to VertexID, m M) {
						if to < 0 || int(to) >= e.n {
							sendErr = fmt.Errorf("bsp: vertex %d sent to out-of-range vertex %d", vid, to)
							return
						}
						outPer[w] = append(outPer[w], message[M]{from: vid, seq: seq, to: to, m: m})
						seq++
					})
					if sendErr != nil {
						errs[w] = sendErr
						return
					}
					active[v] = !halt
					computed[w]++
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return stats, err
			}
		}

		// Route messages into next-superstep inboxes.
		for v := range inboxes {
			inboxes[v] = nil
		}
		var delivered int64
		for w := 0; w < e.workers; w++ {
			for _, msg := range outPer[w] {
				inboxes[msg.to] = append(inboxes[msg.to], msg)
				delivered++
			}
		}
		stats.Messages += delivered
		totalComputed := 0
		for _, c := range computed {
			totalComputed += c
		}
		stats.ActivePerStep = append(stats.ActivePerStep, totalComputed)
		stats.Supersteps++
	}
	return stats, nil
}

// deliverOrder produces the inbox payloads in canonical (sender, seq) order,
// or shuffled when chaos is enabled.
func (e *Engine[M]) deliverOrder(msgs []message[M], step int) []M {
	if len(msgs) == 0 {
		return nil
	}
	sorted := make([]message[M], len(msgs))
	copy(sorted, msgs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].from != sorted[j].from {
			return sorted[i].from < sorted[j].from
		}
		return sorted[i].seq < sorted[j].seq
	})
	if e.cfg.Chaos != nil && e.cfg.Chaos.ShuffleInbox {
		rng := rand.New(rand.NewPCG(e.cfg.Chaos.Seed, uint64(step)<<32|uint64(sorted[0].to)))
		rng.Shuffle(len(sorted), func(i, j int) { sorted[i], sorted[j] = sorted[j], sorted[i] })
	}
	out := make([]M, len(sorted))
	for i, m := range sorted {
		out[i] = m.m
	}
	return out
}
