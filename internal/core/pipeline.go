// Package core orchestrates the SHOAL framework end to end (paper §2):
// click logs → item entity graph → Parallel HAC → hierarchical topics →
// topic descriptions → category correlations. Each stage is an internal
// package; this package owns sequencing, configuration and timing.
package core

import (
	"fmt"
	"time"

	"shoal/internal/bipartite"
	"shoal/internal/catcorr"
	"shoal/internal/dendrogram"
	"shoal/internal/describe"
	"shoal/internal/entitygraph"
	"shoal/internal/model"
	"shoal/internal/phac"
	"shoal/internal/taxonomy"
	"shoal/internal/textutil"
	"shoal/internal/wgraph"
	"shoal/internal/word2vec"
)

// Config bundles per-stage configuration.
type Config struct {
	// WindowDays is the click-log sliding window (paper: 7). <= 0 keeps
	// every click.
	WindowDays int
	// TrainEmbeddings enables the word2vec content signal. When false,
	// similarity is query-driven only (entitygraph handles the blend).
	TrainEmbeddings bool
	Word2Vec        word2vec.Config
	Graph           entitygraph.Config
	HAC             phac.Config
	Taxonomy        taxonomy.Config
	Describe        describe.Config
	CatCorr         catcorr.Config
	// SearchDocTokenCap bounds tokens contributed per topic to the
	// search index.
	SearchDocTokenCap int
}

// DefaultConfig mirrors the paper's demonstration settings (α=0.7, r=2,
// 7-day window, correlation threshold 10).
func DefaultConfig() Config {
	return Config{
		WindowDays:        7,
		TrainEmbeddings:   true,
		Word2Vec:          word2vec.DefaultConfig(),
		Graph:             entitygraph.DefaultConfig(),
		HAC:               phac.DefaultConfig(),
		Taxonomy:          taxonomy.DefaultConfig(),
		Describe:          describe.DefaultConfig(),
		CatCorr:           catcorr.DefaultConfig(),
		SearchDocTokenCap: 256,
	}
}

// Build is the fully assembled SHOAL system for one corpus.
type Build struct {
	Corpus       *model.Corpus
	Clicks       *bipartite.Graph
	Entities     *entitygraph.EntitySet
	Graph        *wgraph.Graph
	QuerySets    [][]model.QueryID
	Embeddings   *word2vec.Model
	Dendrogram   *dendrogram.Dendrogram
	Rounds       []phac.RoundStat
	Taxonomy     *taxonomy.Taxonomy
	Descriptions []describe.Description
	Correlations *catcorr.Graph
	Searcher     *taxonomy.Searcher
	// StageTimings records wall time per pipeline stage, in order.
	StageTimings []StageTiming
}

// StageTiming is one stage's wall-clock cost.
type StageTiming struct {
	Stage   string
	Elapsed time.Duration
}

// Run executes the full pipeline over the corpus, ingesting the corpus's
// click log into a fresh sliding-window graph.
func Run(corpus *model.Corpus, cfg Config) (*Build, error) {
	return run(corpus, nil, cfg)
}

// RunWithClicks executes the pipeline over an externally maintained click
// graph (e.g. the daily sliding-window pipeline); corpus.Clicks is ignored.
func RunWithClicks(corpus *model.Corpus, clicks *bipartite.Graph, cfg Config) (*Build, error) {
	if clicks == nil {
		return nil, fmt.Errorf("core: nil click graph")
	}
	return run(corpus, clicks, cfg)
}

func run(corpus *model.Corpus, clicks *bipartite.Graph, cfg Config) (*Build, error) {
	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	b := &Build{Corpus: corpus, Clicks: clicks}
	timed := func(stage string, fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("core: stage %s: %w", stage, err)
		}
		b.StageTimings = append(b.StageTimings, StageTiming{Stage: stage, Elapsed: time.Since(start)})
		return nil
	}

	if b.Clicks == nil {
		if err := timed("click-graph", func() error {
			b.Clicks = bipartite.New(cfg.WindowDays)
			return b.Clicks.AddAll(corpus.Clicks)
		}); err != nil {
			return nil, err
		}
	}

	if err := timed("entities", func() error {
		es, err := entitygraph.BuildEntities(corpus)
		b.Entities = es
		return err
	}); err != nil {
		return nil, err
	}

	if cfg.TrainEmbeddings {
		if err := timed("word2vec", func() error {
			sentences := make([][]string, 0, len(corpus.Items))
			for i := range corpus.Items {
				sentences = append(sentences, textutil.Tokenize(corpus.Items[i].Title))
			}
			m, err := word2vec.Train(sentences, cfg.Word2Vec)
			b.Embeddings = m
			return err
		}); err != nil {
			return nil, err
		}
	}

	if err := timed("entity-graph", func() error {
		res, err := entitygraph.Build(b.Entities, b.Clicks, b.Embeddings, cfg.Graph)
		if err != nil {
			return err
		}
		b.Graph = res.Graph
		b.QuerySets = res.QuerySets
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("parallel-hac", func() error {
		sizes := make([]int, len(b.Entities.Entities))
		for i := range sizes {
			sizes[i] = b.Entities.Entities[i].Size()
		}
		res, err := phac.Cluster(b.Graph, sizes, cfg.HAC)
		if err != nil {
			return err
		}
		b.Dendrogram = res.Dendrogram
		b.Rounds = res.Rounds
		return nil
	}); err != nil {
		return nil, err
	}

	if err := timed("taxonomy", func() error {
		tx, err := taxonomy.Build(b.Dendrogram, b.Entities, corpus, cfg.Taxonomy)
		b.Taxonomy = tx
		return err
	}); err != nil {
		return nil, err
	}

	if err := timed("describe", func() error {
		descs, err := describe.Describe(b.Taxonomy, corpus, b.Clicks, cfg.Describe)
		b.Descriptions = descs
		return err
	}); err != nil {
		return nil, err
	}

	if err := timed("category-correlation", func() error {
		g, err := catcorr.Mine(b.Taxonomy, cfg.CatCorr)
		b.Correlations = g
		return err
	}); err != nil {
		return nil, err
	}

	if len(b.Taxonomy.Topics) > 0 {
		if err := timed("search-index", func() error {
			s, err := taxonomy.NewSearcher(b.Taxonomy, b.searchDocs(cfg.SearchDocTokenCap))
			b.Searcher = s
			return err
		}); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// searchDocs builds the per-topic search documents: description queries,
// member query texts, category names, and member title tokens up to cap.
func (b *Build) searchDocs(cap int) [][]string {
	if cap <= 0 {
		cap = 256
	}
	docs := make([][]string, len(b.Taxonomy.Topics))
	for i := range b.Taxonomy.Topics {
		t := &b.Taxonomy.Topics[i]
		var doc []string
		for _, q := range t.DescQueries {
			doc = append(doc, textutil.TokenizeFiltered(q)...)
		}
		for _, c := range t.Categories {
			doc = append(doc, textutil.Tokenize(b.Corpus.Categories[c].Name)...)
		}
		for _, e := range t.Entities {
			if len(doc) >= cap {
				break
			}
			for _, q := range b.QuerySets[e] {
				doc = append(doc, textutil.TokenizeFiltered(b.Corpus.Queries[q].Text)...)
				if len(doc) >= cap {
					break
				}
			}
		}
		for _, it := range t.Items {
			if len(doc) >= cap {
				break
			}
			doc = append(doc, textutil.Tokenize(b.Corpus.Items[it].Title)...)
		}
		if len(doc) > cap {
			doc = doc[:cap]
		}
		docs[i] = doc
	}
	return docs
}
