package phac

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"testing"

	"shoal/internal/shard"
	"shoal/internal/wgraph"
)

// frontier density extremes: -1 disables pruning entirely (every
// iteration dense), 2 prunes every iteration after the mandatory dense
// first one (the changed fraction can never exceed 2).
var densities = []float64{-1, 0, 2}

// TestFrontierMatchesDense is the frontier half of the determinism
// contract at the Diffuse level: pruned and dense exchange must produce
// byte-identical matchings for every rounds × workers × shards
// combination, including shard counts past GOMAXPROCS.
func TestFrontierMatchesDense(t *testing.T) {
	shardCounts := []int{1, 2, 3, runtime.GOMAXPROCS(0) + 3}
	for seed := uint64(1); seed <= 6; seed++ {
		g := randomGraph(90, 220, seed)
		base := g.Freeze()
		for _, r := range []int{0, 1, 2, 4, 7} {
			want, err := diffuse(base, r, 0.1, 1, -1) // dense reference
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range densities {
				for _, w := range []int{1, 3} {
					got, err := diffuse(base, r, 0.1, w, d)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d r=%d density=%v workers=%d: differs from dense", seed, r, d, w)
					}
				}
				for _, s := range shardCounts {
					got, err := diffuse(shard.Partition(base, s), r, 0.1, 0, d)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed %d r=%d density=%v shards=%d: sharded differs from dense", seed, r, d, s)
					}
				}
			}
		}
	}
}

// TestClusterFrontierMatchesDense pins Cluster byte-identical for
// pruning on/off/forced across worker × shard combinations — the
// memoized cross-round diffusion must reproduce the dense recomputation
// exactly.
func TestClusterFrontierMatchesDense(t *testing.T) {
	wide := runtime.GOMAXPROCS(0) + 3
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomGraph(120, 320, seed)
		base := g.Freeze()
		ref, err := Cluster(context.Background(), base, nil,
			Config{StopThreshold: 0.12, DiffusionRounds: 2, Workers: 1, Shards: 1, FrontierDensity: -1})
		if err != nil {
			t.Fatal(err)
		}
		refBytes := gobBytes(t, ref)
		for _, d := range densities {
			for _, cw := range [][2]int{{1, 1}, {4, 3}, {4, wide}} {
				res, err := Cluster(context.Background(), base, nil,
					Config{StopThreshold: 0.12, DiffusionRounds: 2, Workers: cw[0], Shards: cw[1], FrontierDensity: d})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gobBytes(t, res), refBytes) {
					t.Fatalf("seed %d density=%v workers=%d shards=%d: Cluster differs from dense single-shard", seed, d, cw[0], cw[1])
				}
			}
		}
	}
}

// TestFrontierCollapseMidRound drives diffusion on graphs whose
// exchange converges long before the round budget — a perfect matching
// (frontier collapses to zero after the first iteration) and a short
// chain (collapse mid-loop) — and checks the early-exit path against
// the dense reference.
func TestFrontierCollapseMidRound(t *testing.T) {
	// Perfect matching: node 2i — 2i+1 only. Every node knows its own
	// edge after init; no exchange ever changes anything.
	match := wgraph.New(20)
	for i := int32(0); i < 20; i += 2 {
		if err := match.SetEdge(i, i+1, 0.5+float64(i)/100); err != nil {
			t.Fatal(err)
		}
	}
	// Chain: values stop propagating after a few hops.
	chain := wgraph.New(9)
	for i := int32(0); i+1 < 9; i++ {
		if err := chain.SetEdge(i, i+1, 0.3+float64(i)/20); err != nil {
			t.Fatal(err)
		}
	}
	for name, g := range map[string]*wgraph.Graph{"matching": match, "chain": chain} {
		base := g.Freeze()
		for _, r := range []int{1, 2, 6, 12} {
			want, err := diffuse(base, r, 0.1, 1, -1)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range []float64{0, 2} {
				got, err := diffuse(base, r, 0.1, 1, d)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s r=%d density=%v: early-exit result differs from dense", name, r, d)
				}
			}
		}
		// Cluster on the same shapes: the memoized rounds must survive a
		// zero frontier mid-run at every density.
		ref, err := Cluster(context.Background(), base, nil,
			Config{StopThreshold: 0.1, DiffusionRounds: 6, Workers: 1, Shards: 1, FrontierDensity: -1})
		if err != nil {
			t.Fatal(err)
		}
		refBytes := gobBytes(t, ref)
		for _, d := range []float64{0, 2} {
			res, err := Cluster(context.Background(), base, nil,
				Config{StopThreshold: 0.1, DiffusionRounds: 6, Workers: 2, Shards: 2, FrontierDensity: d})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gobBytes(t, res), refBytes) {
				t.Fatalf("%s density=%v: Cluster differs after frontier collapse", name, d)
			}
		}
	}
}
