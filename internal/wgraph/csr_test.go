package wgraph

import (
	"math/rand/v2"
	"reflect"
	"testing"
)

// randomGraph builds a connected-ish random weighted graph.
func randomGraph(n, extraEdges int, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 17))
	g := New(n)
	for v := 1; v < n; v++ {
		u := rng.IntN(v)
		_ = g.SetEdge(int32(u), int32(v), 0.05+0.9*rng.Float64())
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		_ = g.SetEdge(int32(u), int32(v), 0.05+0.9*rng.Float64())
	}
	return g
}

// TestCSRObservationallyIdentical is the substrate property test: a
// frozen CSR must be indistinguishable from its source builder through
// every View observation — including byte-equal floats for the cached
// aggregates.
func TestCSRObservationallyIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		g := randomGraph(60, int(seed*13%120), seed)
		c := g.Freeze()

		if c.NumNodes() != g.NumNodes() {
			t.Fatalf("seed %d: NumNodes %d != %d", seed, c.NumNodes(), g.NumNodes())
		}
		if c.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: NumEdges %d != %d", seed, c.NumEdges(), g.NumEdges())
		}
		if c.TotalWeight() != g.TotalWeight() {
			t.Fatalf("seed %d: TotalWeight %v != %v", seed, c.TotalWeight(), g.TotalWeight())
		}
		if !reflect.DeepEqual(c.Components(), g.Components()) {
			t.Fatalf("seed %d: Components differ", seed)
		}
		if !reflect.DeepEqual(c.Edges(), g.Edges()) {
			t.Fatalf("seed %d: Edges differ", seed)
		}
		for u := int32(0); int(u) < g.NumNodes(); u++ {
			gn, cn := g.Neighbors(u), c.Neighbors(u)
			if len(gn) != len(cn) {
				t.Fatalf("seed %d node %d: Neighbors len %d != %d", seed, u, len(cn), len(gn))
			}
			for i := range gn {
				if gn[i] != cn[i] {
					t.Fatalf("seed %d node %d: Neighbors[%d] %d != %d", seed, u, i, cn[i], gn[i])
				}
			}
			if g.Degree(u) != c.Degree(u) {
				t.Fatalf("seed %d node %d: Degree differs", seed, u)
			}
			if g.WeightedDegree(u) != c.WeightedDegree(u) {
				t.Fatalf("seed %d node %d: WeightedDegree %v != %v",
					seed, u, c.WeightedDegree(u), g.WeightedDegree(u))
			}
			for _, v := range gn {
				gw, gok := g.Weight(u, v)
				cw, cok := c.Weight(u, v)
				if gok != cok || gw != cw {
					t.Fatalf("seed %d: Weight(%d,%d) = %v,%v vs %v,%v", seed, u, v, cw, cok, gw, gok)
				}
			}
			// A non-neighbor probe must miss on both.
			if _, ok := c.Weight(u, u); ok {
				t.Fatalf("seed %d: self-loop reported on node %d", seed, u)
			}
		}
		// ForEachNeighbor visits the same (v, w) sequence.
		for u := int32(0); int(u) < g.NumNodes(); u++ {
			type vw struct {
				v int32
				w float64
			}
			var a, b []vw
			g.ForEachNeighbor(u, func(v int32, w float64) { a = append(a, vw{v, w}) })
			c.ForEachNeighbor(u, func(v int32, w float64) { b = append(b, vw{v, w}) })
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d node %d: ForEachNeighbor sequences differ", seed, u)
			}
		}
	}
}

func TestFromEdgesMatchesFreeze(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := randomGraph(40, 80, seed)
		viaFreeze := g.Freeze()
		viaEdges, err := FromEdges(g.NumNodes(), g.Edges())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(viaFreeze, viaEdges) {
			t.Fatalf("seed %d: FromEdges CSR differs from Freeze CSR", seed)
		}
		if viaFreeze.TotalWeight() != viaEdges.TotalWeight() {
			t.Fatalf("seed %d: totals differ", seed)
		}
	}
}

func TestFromEdgesRejectsBadInput(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []Edge
		want  string // deterministic error text
	}{
		{"non-canonical", 3, []Edge{{U: 2, V: 1, W: 0.5}},
			"wgraph: FromEdges edge 0 (2,1) not canonical"},
		{"self-loop", 3, []Edge{{U: 1, V: 1, W: 0.5}},
			"wgraph: FromEdges edge 0 (1,1) not canonical"},
		{"negative", 3, []Edge{{U: -2, V: 1, W: 0.5}},
			"wgraph: FromEdges edge 0 (-2,1) out of range [0,3)"},
		{"out-of-range", 3, []Edge{{U: 0, V: 3, W: 0.5}},
			"wgraph: FromEdges edge 0 (0,3) out of range [0,3)"},
		{"unsorted", 4, []Edge{{U: 1, V: 2, W: 0.5}, {U: 0, V: 3, W: 0.5}},
			"wgraph: FromEdges edges not sorted at 1"},
		{"unsorted-within-row", 4, []Edge{{U: 0, V: 3, W: 0.5}, {U: 0, V: 1, W: 0.5}},
			"wgraph: FromEdges edges not sorted at 1"},
		{"duplicate", 4, []Edge{{U: 0, V: 1, W: 0.5}, {U: 0, V: 1, W: 0.6}},
			"wgraph: FromEdges edges not sorted at 1"},
		{"duplicate-after-valid-prefix", 5,
			[]Edge{{U: 0, V: 1, W: 0.5}, {U: 1, V: 4, W: 0.2}, {U: 1, V: 4, W: 0.2}},
			"wgraph: FromEdges edges not sorted at 2"},
		{"self-loop-after-valid-prefix", 5,
			[]Edge{{U: 0, V: 1, W: 0.5}, {U: 3, V: 3, W: 0.2}},
			"wgraph: FromEdges edge 1 (3,3) not canonical"},
	}
	for _, tc := range cases {
		// The rejection must be deterministic: same input, same error,
		// always reporting the first offending index.
		for try := 0; try < 3; try++ {
			_, err := FromEdges(tc.n, tc.edges)
			if err == nil {
				t.Errorf("%s: FromEdges accepted invalid input", tc.name)
				break
			}
			if err.Error() != tc.want {
				t.Errorf("%s: error = %q, want %q", tc.name, err, tc.want)
				break
			}
			if vErr := ValidateEdges(tc.n, tc.edges); vErr == nil || vErr.Error() != tc.want {
				t.Errorf("%s: ValidateEdges = %v, want %q", tc.name, vErr, tc.want)
				break
			}
		}
	}
}

// TestFromEdgesAcceptsCanonicalizedAdversarialInput is the positive
// half: an adversarial edge soup (unsorted, duplicated, self-looped)
// canonicalized through the mutable builder must round-trip into the
// same CSR as the directly constructed graph.
func TestFromEdgesAcceptsCanonicalizedAdversarialInput(t *testing.T) {
	soup := []Edge{
		{U: 3, V: 1, W: 0.9}, // non-canonical order
		{U: 1, V: 3, W: 0.4}, // duplicate of the above (last write wins)
		{U: 2, V: 2, W: 0.7}, // self-loop: dropped by the builder
		{U: 0, V: 4, W: 0.6},
		{U: 0, V: 1, W: 0.3},
	}
	g := New(5)
	for _, e := range soup {
		if e.U == e.V {
			if err := g.SetEdge(e.U, e.V, e.W); err == nil {
				t.Fatal("builder accepted a self-loop")
			}
			continue
		}
		if err := g.SetEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	canonical := g.Edges()
	c, err := FromEdges(5, canonical)
	if err != nil {
		t.Fatalf("canonicalized edges rejected: %v", err)
	}
	if !reflect.DeepEqual(c, g.Freeze()) {
		t.Fatal("canonicalized FromEdges CSR differs from Freeze")
	}
	if w, ok := c.Weight(1, 3); !ok || w != 0.4 {
		t.Fatalf("duplicate edge did not keep the last write: %v %v", w, ok)
	}
}

func TestFreezeMemoizedAndInvalidated(t *testing.T) {
	g := randomGraph(20, 30, 7)
	c1 := g.Freeze()
	if c2 := g.Freeze(); c1 != c2 {
		t.Fatal("Freeze not memoized between mutations")
	}
	if err := g.SetEdge(0, 19, 0.42); err != nil {
		t.Fatal(err)
	}
	c3 := g.Freeze()
	if c3 == c1 {
		t.Fatal("Freeze memo not invalidated by SetEdge")
	}
	if w, ok := c3.Weight(0, 19); !ok || w != 0.42 {
		t.Fatalf("new edge missing from refrozen CSR: %v %v", w, ok)
	}
	g.RemoveEdge(0, 19)
	if _, ok := g.Freeze().Weight(0, 19); ok {
		t.Fatal("Freeze memo not invalidated by RemoveEdge")
	}
}

func TestNumEdgesIncremental(t *testing.T) {
	g := New(5)
	if g.NumEdges() != 0 {
		t.Fatal("fresh graph has edges")
	}
	if err := g.SetEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge(0, 1, 0.9); err != nil { // overwrite, not a new edge
		t.Fatal(err)
	}
	if err := g.SetEdge(1, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	g.RemoveEdge(0, 1)
	g.RemoveEdge(0, 1) // absent: no-op
	g.RemoveEdge(3, 4) // absent: no-op
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

// TestSortedAdjacencyCacheAfterMutation ensures the cached sorted
// neighbor lists used by ForEachNeighbor are invalidated correctly.
func TestSortedAdjacencyCacheAfterMutation(t *testing.T) {
	g := New(4)
	mustSet := func(u, v int32, w float64) {
		t.Helper()
		if err := g.SetEdge(u, v, w); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(0, 2, 0.5)
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int32{2}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	mustSet(0, 1, 0.4) // mutate after the cache was built
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("Neighbors(0) after insert = %v", got)
	}
	var seen []int32
	g.ForEachNeighbor(0, func(v int32, _ float64) { seen = append(seen, v) })
	if !reflect.DeepEqual(seen, []int32{1, 2}) {
		t.Fatalf("ForEachNeighbor order = %v", seen)
	}
	g.RemoveEdge(0, 2)
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int32{1}) {
		t.Fatalf("Neighbors(0) after remove = %v", got)
	}
	// Callers may mutate the Neighbors copy without corrupting the cache.
	n := g.Neighbors(1)
	if len(n) > 0 {
		n[0] = 99
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []int32{0}) {
		t.Fatalf("Neighbors(1) corrupted by caller mutation: %v", got)
	}
}

// TestCanonicalBlockedTotal pins the canonical-summation contract: the
// builder, its frozen CSR, FromEdges, and the exported SumEdgeWeights
// helper (the reduction parallel builders replicate) must all produce
// the same float64 bit pattern for the total edge weight.
func TestCanonicalBlockedTotal(t *testing.T) {
	g := randomGraph(200, 700, 11)
	edges := g.Edges()
	want := SumEdgeWeights(edges)
	if got := g.TotalWeight(); got != want {
		t.Fatalf("builder total %v != SumEdgeWeights %v", got, want)
	}
	if got := g.Freeze().TotalWeight(); got != want {
		t.Fatalf("frozen total %v != SumEdgeWeights %v", got, want)
	}
	c, err := FromEdges(g.NumNodes(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TotalWeight(); got != want {
		t.Fatalf("FromEdges total %v != SumEdgeWeights %v", got, want)
	}
}
