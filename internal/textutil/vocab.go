package textutil

import (
	"fmt"
	"sort"
)

// Vocab maps word strings to dense integer ids and records corpus
// frequencies. Downstream stages (word2vec, BM25) operate on ids only.
type Vocab struct {
	ids    map[string]int
	words  []string
	counts []int64
	total  int64
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: make(map[string]int)}
}

// Add inserts tok (or bumps its count) and returns its id.
func (v *Vocab) Add(tok string) int {
	if id, ok := v.ids[tok]; ok {
		v.counts[id]++
		v.total++
		return id
	}
	id := len(v.words)
	v.ids[tok] = id
	v.words = append(v.words, tok)
	v.counts = append(v.counts, 1)
	v.total++
	return id
}

// AddAll inserts every token and returns their ids.
func (v *Vocab) AddAll(toks []string) []int {
	out := make([]int, len(toks))
	for i, t := range toks {
		out[i] = v.Add(t)
	}
	return out
}

// ID returns the id of tok and whether it is known. It does not modify
// counts.
func (v *Vocab) ID(tok string) (int, bool) {
	id, ok := v.ids[tok]
	return id, ok
}

// Word returns the token for id. It panics on out-of-range ids, which always
// indicates a programming error.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		panic(fmt.Sprintf("textutil: word id %d out of range [0,%d)", id, len(v.words)))
	}
	return v.words[id]
}

// Count returns the corpus frequency of id.
func (v *Vocab) Count(id int) int64 {
	if id < 0 || id >= len(v.counts) {
		return 0
	}
	return v.counts[id]
}

// Size returns the number of distinct tokens.
func (v *Vocab) Size() int { return len(v.words) }

// Total returns the number of token occurrences added.
func (v *Vocab) Total() int64 { return v.total }

// TopK returns the k most frequent tokens, most frequent first; ties break
// alphabetically so output is deterministic.
func (v *Vocab) TopK(k int) []string {
	idx := make([]int, len(v.words))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if v.counts[ia] != v.counts[ib] {
			return v.counts[ia] > v.counts[ib]
		}
		return v.words[ia] < v.words[ib]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = v.words[idx[i]]
	}
	return out
}
