// Package modularity computes Newman–Girvan modularity for weighted
// graphs. The paper uses it as the benchmarking metric for Parallel HAC
// (§2.2, reference [2]) and reports that clusters consistently exceed 0.3.
//
// For a partition C of a weighted graph with total edge weight m:
//
//	Q = Σ_c ( w_in(c)/m − (w_tot(c)/(2m))² )
//
// where w_in(c) is the weight of intra-cluster edges and w_tot(c) the sum
// of weighted degrees of c's nodes. Q ∈ [−1/2, 1); values above ~0.3
// conventionally indicate significant community structure.
package modularity

import (
	"fmt"

	"shoal/internal/wgraph"
)

// WeightedGraph is the read-only view modularity needs. *wgraph.Graph
// and *wgraph.CSR both satisfy it.
type WeightedGraph interface {
	NumNodes() int
	TotalWeight() float64
	WeightedDegree(u int32) float64
	ForEachNeighbor(u int32, fn func(v int32, w float64))
}

// Compute returns the modularity of the partition labels over g.
// labels[i] is the cluster of node i; label values are arbitrary.
// Graphs with no edges have undefined modularity and return an error.
//
// Accumulation is deterministic: labels are remapped to dense ids in
// first-appearance order and every sum runs in ascending node/neighbor
// order, so a mutable graph and its frozen CSR produce byte-identical
// results. A *wgraph.CSR input is scanned through its flat arrays;
// CSR-backed wrappers (shard.CSR) are unwrapped onto the same path.
func Compute(g WeightedGraph, labels []int32) (float64, error) {
	if b, ok := g.(wgraph.CSRBacked); ok {
		g = b.BaseCSR()
	}
	n := g.NumNodes()
	if len(labels) != n {
		return 0, fmt.Errorf("modularity: labels length %d != nodes %d", len(labels), n)
	}
	m := g.TotalWeight()
	if m <= 0 {
		return 0, fmt.Errorf("modularity: graph has no edge weight")
	}

	// Dense remap in first-appearance order.
	dense := make(map[int32]int32, 64)
	id := make([]int32, n)
	for u, l := range labels {
		d, ok := dense[l]
		if !ok {
			d = int32(len(dense))
			dense[l] = d
		}
		id[u] = d
	}
	within := make([]float64, len(dense))
	degree := make([]float64, len(dense))

	if c, ok := g.(*wgraph.CSR); ok {
		offsets, nbrs, wts := c.Adj()
		for u := 0; u < n; u++ {
			lu := id[u]
			degree[lu] += c.WeightedDegree(int32(u))
			for j := offsets[u]; j < offsets[u+1]; j++ {
				if v := nbrs[j]; id[v] == lu && int32(u) < v {
					within[lu] += wts[j]
				}
			}
		}
	} else {
		for u := 0; u < n; u++ {
			lu := id[u]
			degree[lu] += g.WeightedDegree(int32(u))
			g.ForEachNeighbor(int32(u), func(v int32, w float64) {
				if id[v] == lu && int32(u) < v {
					within[lu] += w
				}
			})
		}
	}
	var q float64
	for l := range degree {
		q += within[l]/m - (degree[l]/(2*m))*(degree[l]/(2*m))
	}
	return q, nil
}
