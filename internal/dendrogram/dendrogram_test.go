package dendrogram

import (
	"reflect"
	"testing"
	"testing/quick"
)

// sample builds: leaves 0..4; merges (0,1)->5 @0.9, (2,3)->6 @0.8,
// (5,6)->7 @0.4. Leaf 4 stays isolated.
func sample() *Dendrogram {
	return &Dendrogram{
		Leaves: 5,
		Merges: []Merge{
			{A: 0, B: 1, New: 5, Sim: 0.9, Round: 0},
			{A: 2, B: 3, New: 6, Sim: 0.8, Round: 0},
			{A: 5, B: 6, New: 7, Sim: 0.4, Round: 1},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	empty := &Dendrogram{Leaves: 3}
	if err := empty.Validate(); err != nil {
		t.Fatalf("empty dendrogram invalid: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		d    *Dendrogram
	}{
		{"negative leaves", &Dendrogram{Leaves: -1}},
		{"wrong new id", &Dendrogram{Leaves: 2, Merges: []Merge{{A: 0, B: 1, New: 5, Sim: 1}}}},
		{"self merge", &Dendrogram{Leaves: 2, Merges: []Merge{{A: 0, B: 0, New: 2, Sim: 1}}}},
		{"future cluster", &Dendrogram{Leaves: 2, Merges: []Merge{{A: 0, B: 3, New: 2, Sim: 1}}}},
		{"negative round", &Dendrogram{Leaves: 2, Merges: []Merge{{A: 0, B: 1, New: 2, Sim: 1, Round: -1}}}},
		{"reuse", &Dendrogram{Leaves: 3, Merges: []Merge{
			{A: 0, B: 1, New: 3, Sim: 1},
			{A: 0, B: 2, New: 4, Sim: 1},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.d.Validate(); err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
		})
	}
}

func TestSizeAndMembers(t *testing.T) {
	d := sample()
	if d.Size(0) != 1 {
		t.Fatalf("Size(leaf) = %d, want 1", d.Size(0))
	}
	if d.Size(5) != 2 || d.Size(7) != 4 {
		t.Fatalf("Size(5)=%d Size(7)=%d, want 2,4", d.Size(5), d.Size(7))
	}
	if got := d.Members(7); !reflect.DeepEqual(got, []int32{0, 1, 2, 3}) {
		t.Fatalf("Members(7) = %v, want [0 1 2 3]", got)
	}
	if got := d.Members(4); !reflect.DeepEqual(got, []int32{4}) {
		t.Fatalf("Members(4) = %v, want [4]", got)
	}
}

func TestCutAt(t *testing.T) {
	d := sample()
	// threshold 0.85: only the 0.9 merge applies -> {0,1},{2},{3},{4}.
	got := d.CutAt(0.85)
	want := []int32{0, 0, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CutAt(0.85) = %v, want %v", got, want)
	}
	// threshold 0.5: merges 0.9 and 0.8 -> {0,1},{2,3},{4}.
	got = d.CutAt(0.5)
	want = []int32{0, 0, 2, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CutAt(0.5) = %v, want %v", got, want)
	}
	// threshold 0.1: all merges -> {0,1,2,3},{4}.
	got = d.CutAt(0.1)
	want = []int32{0, 0, 0, 0, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CutAt(0.1) = %v, want %v", got, want)
	}
}

func TestRoots(t *testing.T) {
	d := sample()
	if got := d.Roots(); !reflect.DeepEqual(got, []int32{4, 7}) {
		t.Fatalf("Roots() = %v, want [4 7]", got)
	}
}

func TestChildrenAndSim(t *testing.T) {
	d := sample()
	if d.Children(0) != nil {
		t.Fatal("leaf has children")
	}
	if got := d.Children(7); !reflect.DeepEqual(got, []int32{5, 6}) {
		t.Fatalf("Children(7) = %v, want [5 6]", got)
	}
	if d.Sim(0) != 1 {
		t.Fatalf("Sim(leaf) = %f, want 1", d.Sim(0))
	}
	if d.Sim(6) != 0.8 {
		t.Fatalf("Sim(6) = %f, want 0.8", d.Sim(6))
	}
}

// Property: for random valid dendrograms, CutAt partitions are
// well-defined (labels are leaf ids, label classes are unions of merges)
// and coarser thresholds only ever merge classes, never split them.
func TestCutAtMonotoneProperty(t *testing.T) {
	f := func(simsRaw []uint8) bool {
		// Build a random valid dendrogram over 8 leaves by merging a
		// queue of available clusters left-to-right.
		d := &Dendrogram{Leaves: 8}
		avail := []int32{0, 1, 2, 3, 4, 5, 6, 7}
		next := int32(8)
		for i := 0; len(avail) >= 2 && i < len(simsRaw); i++ {
			a, b := avail[0], avail[1]
			avail = avail[2:]
			sim := float64(simsRaw[i]) / 255
			d.Merges = append(d.Merges, Merge{A: a, B: b, New: next, Sim: sim, Round: int32(i)})
			avail = append(avail, next)
			next++
		}
		if err := d.Validate(); err != nil {
			return false
		}
		fine := d.CutAt(0.7)
		coarse := d.CutAt(0.2)
		// Same fine label => same coarse label.
		for i := 0; i < d.Leaves; i++ {
			for j := i + 1; j < d.Leaves; j++ {
				if fine[i] == fine[j] && coarse[i] != coarse[j] {
					return false
				}
			}
		}
		// Labels are representatives: label of leaf i is a leaf with the
		// same label.
		for i := 0; i < d.Leaves; i++ {
			l := fine[i]
			if l < 0 || int(l) >= d.Leaves || fine[l] != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
