package bsp

import (
	"sync/atomic"
	"testing"
)

// maxProg propagates the maximum seen value along a ring of n vertices.
// After enough supersteps every vertex knows the global max.
type maxProg struct {
	n    int
	best []int64 // per-vertex current max; indexed by vertex id
}

func (p *maxProg) Compute(step int, v VertexID, inbox []int64, send func(VertexID, int64)) bool {
	changed := step == 0
	for _, m := range inbox {
		if m > p.best[v] {
			p.best[v] = m
			changed = true
		}
	}
	if changed {
		next := VertexID((int(v) + 1) % p.n)
		prev := VertexID((int(v) - 1 + p.n) % p.n)
		send(next, p.best[v])
		send(prev, p.best[v])
		return false
	}
	return true
}

func ringMax(t *testing.T, n, workers int, chaos *Chaos) (*maxProg, *Stats) {
	t.Helper()
	p := &maxProg{n: n, best: make([]int64, n)}
	for i := range p.best {
		p.best[i] = int64((i * 7919) % 104729) // deterministic pseudo-random values
	}
	eng, err := New[int64](n, p, Config{Workers: workers, Chaos: chaos})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return p, stats
}

func globalMax(vals []int64) int64 {
	m := vals[0]
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

func TestRingMaxConverges(t *testing.T) {
	p, stats := ringMax(t, 50, 4, nil)
	want := globalMax(p.best)
	for v, got := range p.best {
		if got != want {
			t.Fatalf("vertex %d converged to %d, want %d", v, got, want)
		}
	}
	if stats.Supersteps == 0 || stats.Messages == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	p1, _ := ringMax(t, 37, 1, nil)
	p8, _ := ringMax(t, 37, 8, nil)
	for v := range p1.best {
		if p1.best[v] != p8.best[v] {
			t.Fatalf("vertex %d: workers=1 gives %d, workers=8 gives %d", v, p1.best[v], p8.best[v])
		}
	}
}

func TestChaosInvariance(t *testing.T) {
	// Max-propagation is order-independent, so chaotic delivery must not
	// change the fixed point.
	plain, _ := ringMax(t, 41, 4, nil)
	for seed := uint64(1); seed <= 3; seed++ {
		chaotic, _ := ringMax(t, 41, 4, &Chaos{Seed: seed, ShuffleInbox: true})
		for v := range plain.best {
			if plain.best[v] != chaotic.best[v] {
				t.Fatalf("seed %d vertex %d: chaos changed result %d -> %d",
					seed, v, plain.best[v], chaotic.best[v])
			}
		}
	}
}

// echoProg checks the inbox delivery order is canonical (sorted by sender).
type echoProg struct {
	n        int
	violated atomic.Bool
}

func (p *echoProg) Compute(step int, v VertexID, inbox []int64, send func(VertexID, int64)) bool {
	switch step {
	case 0:
		// Everyone messages vertex 0, twice, payload = sender*10+seq.
		send(0, int64(v)*10)
		send(0, int64(v)*10+1)
		return true
	case 1:
		if v == 0 {
			for i := 1; i < len(inbox); i++ {
				if inbox[i] <= inbox[i-1] {
					p.violated.Store(true)
				}
			}
		}
		return true
	}
	return true
}

func TestCanonicalDeliveryOrder(t *testing.T) {
	p := &echoProg{n: 9}
	eng, err := New[int64](9, p, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if p.violated.Load() {
		t.Fatal("inbox was not sorted by (sender, seq)")
	}
}

// haltProg halts immediately; the engine must terminate after one step.
type haltProg struct{}

func (haltProg) Compute(step int, v VertexID, inbox []struct{}, send func(VertexID, struct{})) bool {
	return true
}

func TestImmediateHalt(t *testing.T) {
	eng, err := New[struct{}](10, haltProg{}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 1 {
		t.Fatalf("supersteps = %d, want 1", stats.Supersteps)
	}
	if len(stats.ActivePerStep) != 1 || stats.ActivePerStep[0] != 10 {
		t.Fatalf("ActivePerStep = %v, want [10]", stats.ActivePerStep)
	}
}

// reactivateProg: vertex 0 halts but is reactivated by a message from 1.
type reactivateProg struct {
	wokeAt int32
}

func (p *reactivateProg) Compute(step int, v VertexID, inbox []int64, send func(VertexID, int64)) bool {
	if v == 0 {
		if step > 0 && len(inbox) > 0 {
			atomic.StoreInt32(&p.wokeAt, int32(step))
		}
		return true // always votes to halt
	}
	if v == 1 && step == 2 {
		send(0, 99)
	}
	return step >= 3
}

func TestMessageReactivatesHaltedVertex(t *testing.T) {
	p := &reactivateProg{}
	eng, err := New[int64](2, p, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if p.wokeAt != 3 {
		t.Fatalf("vertex 0 woke at step %d, want 3", p.wokeAt)
	}
}

// badProg sends to an out-of-range vertex.
type badProg struct{}

func (badProg) Compute(step int, v VertexID, inbox []int64, send func(VertexID, int64)) bool {
	send(10_000, 1)
	return true
}

func TestOutOfRangeSendFails(t *testing.T) {
	eng, err := New[int64](3, badProg{}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("Run() = nil error, want out-of-range send error")
	}
}

// spinProg never halts; MaxSupersteps must abort it.
type spinProg struct{}

func (spinProg) Compute(step int, v VertexID, inbox []int64, send func(VertexID, int64)) bool {
	return false
}

func TestMaxSuperstepsAborts(t *testing.T) {
	eng, err := New[int64](3, spinProg{}, Config{Workers: 1, MaxSupersteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("Run() = nil error, want max-supersteps error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int64](0, spinProg{}, Config{}); err == nil {
		t.Fatal("New(n=0) accepted")
	}
	if _, err := New[int64](3, nil, Config{}); err == nil {
		t.Fatal("New(nil program) accepted")
	}
	// Workers > n is clamped, not an error.
	eng, err := New[int64](2, spinProg{}, Config{Workers: 64, MaxSupersteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eng.workers != 2 {
		t.Fatalf("workers = %d, want clamped to 2", eng.workers)
	}
}
