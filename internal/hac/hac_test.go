package hac

import (
	"math"
	"reflect"
	"testing"

	"shoal/internal/wgraph"
)

// twoClusters builds a graph with two tight triangles joined by one weak
// edge: {0,1,2} at 0.9, {3,4,5} at 0.8, bridge (2,3) at 0.2.
func twoClusters(t *testing.T) *wgraph.Graph {
	t.Helper()
	g := wgraph.New(6)
	edges := []wgraph.Edge{
		{U: 0, V: 1, W: 0.9}, {U: 1, V: 2, W: 0.9}, {U: 0, V: 2, W: 0.9},
		{U: 3, V: 4, W: 0.8}, {U: 4, V: 5, W: 0.8}, {U: 3, V: 5, W: 0.8},
		{U: 2, V: 3, W: 0.2},
	}
	for _, e := range edges {
		if err := g.SetEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestClusterTwoCommunities(t *testing.T) {
	g := twoClusters(t)
	d, err := Cluster(g, nil, Config{StopThreshold: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid dendrogram: %v", err)
	}
	labels := d.CutAt(0.35)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("left triangle split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatalf("right triangle split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Fatalf("bridge merged across threshold: %v", labels)
	}
}

func TestClusterStopsAtThreshold(t *testing.T) {
	g := twoClusters(t)
	d, err := Cluster(g, nil, Config{StopThreshold: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 0 {
		t.Fatalf("merges above threshold 0.95: %v", d.Merges)
	}
}

func TestClusterMergesHighestFirst(t *testing.T) {
	g := twoClusters(t)
	d, err := Cluster(g, nil, Config{StopThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) == 0 {
		t.Fatal("no merges")
	}
	first := d.Merges[0]
	if first.Sim != 0.9 {
		t.Fatalf("first merge sim = %f, want 0.9", first.Sim)
	}
	// Deterministic tie-break: (0,1) is the canonical smallest 0.9 edge.
	a, b := first.A, first.B
	if a > b {
		a, b = b, a
	}
	if a != 0 || b != 1 {
		t.Fatalf("first merge = (%d,%d), want (0,1)", first.A, first.B)
	}
}

// TestEq4Update verifies the √-normalized similarity update on the paper's
// own scenario: merge A,B and check S(AB,C).
func TestEq4Update(t *testing.T) {
	g := wgraph.New(3)
	// A=0, B=1, C=2. S(A,B)=0.9, S(A,C)=0.6, S(B,C) missing (=0).
	if err := g.SetEdge(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge(0, 2, 0.6); err != nil {
		t.Fatal(err)
	}
	d, err := Cluster(g, nil, Config{StopThreshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) < 1 {
		t.Fatal("no merges")
	}
	m0 := d.Merges[0]
	if m0.Sim != 0.9 {
		t.Fatalf("first merge sim %f, want 0.9", m0.Sim)
	}
	// With nA=nB=1: S(AB,C) = (1/2)(0.6) + (1/2)(0) = 0.3.
	if len(d.Merges) != 2 {
		t.Fatalf("merges = %d, want 2 (AB then AB+C at 0.3)", len(d.Merges))
	}
	if math.Abs(d.Merges[1].Sim-0.3) > 1e-12 {
		t.Fatalf("S(AB,C) = %f, want 0.3", d.Merges[1].Sim)
	}
}

// TestEq4UpdateWeighted checks the size weighting with unequal sizes:
// nA=4, nB=1 -> weights 2/3, 1/3.
func TestEq4UpdateWeighted(t *testing.T) {
	g := wgraph.New(3)
	if err := g.SetEdge(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge(0, 2, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge(1, 2, 0.3); err != nil {
		t.Fatal(err)
	}
	d, err := Cluster(g, []int{4, 1, 1}, Config{StopThreshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// First merge: (0,1) at 0.9. S(01,2) = (2/3)(0.6)+(1/3)(0.3) = 0.5.
	if len(d.Merges) != 2 {
		t.Fatalf("merges = %d, want 2", len(d.Merges))
	}
	if math.Abs(d.Merges[1].Sim-0.5) > 1e-12 {
		t.Fatalf("S(01,2) = %f, want 0.5", d.Merges[1].Sim)
	}
}

func TestClusterMaxMerges(t *testing.T) {
	g := twoClusters(t)
	d, err := Cluster(g, nil, Config{StopThreshold: 0.1, MaxMerges: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 2 {
		t.Fatalf("merges = %d, want 2", len(d.Merges))
	}
}

func TestClusterErrors(t *testing.T) {
	g := twoClusters(t)
	if _, err := Cluster(wgraph.New(0), nil, DefaultConfig()); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := Cluster(g, nil, Config{StopThreshold: -0.5}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	if _, err := Cluster(g, nil, Config{StopThreshold: 1.5}); err == nil {
		t.Fatal("threshold > 1 accepted")
	}
	if _, err := Cluster(g, []int{1, 2}, DefaultConfig()); err == nil {
		t.Fatal("wrong sizes length accepted")
	}
	if _, err := Cluster(g, []int{1, 1, 1, 1, 1, 0}, DefaultConfig()); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestClusterDoesNotModifyInput(t *testing.T) {
	g := twoClusters(t)
	before := g.Edges()
	if _, err := Cluster(g, nil, Config{StopThreshold: 0.1}); err != nil {
		t.Fatal(err)
	}
	after := g.Edges()
	if !reflect.DeepEqual(before, after) {
		t.Fatal("Cluster modified the input graph")
	}
}

func TestClusterDeterministic(t *testing.T) {
	g := twoClusters(t)
	d1, err := Cluster(g, nil, Config{StopThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Cluster(g, nil, Config{StopThreshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("sequential HAC not deterministic")
	}
}

// Merge similarities along a sequential HAC run are non-increasing iff the
// linkage cannot create a similarity above the merged pair's. Eq. 4 is an
// average, so S(AB,C) <= max(S(A,C), S(B,C)); the global max therefore
// never increases.
func TestClusterMonotoneMergeSims(t *testing.T) {
	g := twoClusters(t)
	d, err := Cluster(g, nil, Config{StopThreshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d.Merges); i++ {
		if d.Merges[i].Sim > d.Merges[i-1].Sim+1e-12 {
			t.Fatalf("merge sims increased: %f then %f", d.Merges[i-1].Sim, d.Merges[i].Sim)
		}
	}
}
