package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
)

func TestTraceHierarchy(t *testing.T) {
	tr := NewTrace("build")
	a := tr.StartSpan("stage-a")
	r0 := a.Child("round-0")
	r0.SetAttr("aliveRows", 10)
	r0.End()
	r1 := a.Child("round-1")
	r1.SetAttr("aliveRows", int64(4))
	r1.SetAttr("bestSim", 0.5)
	r1.End()
	a.End()
	b := tr.StartSpan("stage-b")
	b.End()
	if tr.SpanCount() != 4 {
		t.Fatalf("span count = %d, want 4", tr.SpanCount())
	}

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(f.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(f.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range f.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 1 || ev.Dur < 0 || ev.Ts < 0 {
			t.Fatalf("malformed event %+v", ev)
		}
		byName[ev.Name] = i
	}
	stageA, round0 := f.TraceEvents[byName["stage-a"]], f.TraceEvents[byName["round-0"]]
	stageB := f.TraceEvents[byName["stage-b"]]
	// Children share the parent's lane and nest within its window.
	if round0.Tid != stageA.Tid {
		t.Fatalf("child lane %d != parent lane %d", round0.Tid, stageA.Tid)
	}
	if stageB.Tid == stageA.Tid {
		t.Fatal("concurrent roots share a lane")
	}
	if round0.Ts < stageA.Ts || round0.Ts+round0.Dur > stageA.Ts+stageA.Dur+1 {
		t.Fatalf("child [%f,%f] escapes parent [%f,%f]",
			round0.Ts, round0.Ts+round0.Dur, stageA.Ts, stageA.Ts+stageA.Dur)
	}
	if round0.Args["parent"] != "stage-a" {
		t.Fatalf("round-0 parent arg = %v", round0.Args["parent"])
	}
	if round0.Args["aliveRows"] != float64(10) {
		t.Fatalf("round-0 aliveRows = %v", round0.Args["aliveRows"])
	}
	r1ev := f.TraceEvents[byName["round-1"]]
	if r1ev.Args["bestSim"] != 0.5 {
		t.Fatalf("round-1 bestSim = %v", r1ev.Args["bestSim"])
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Fatal("nil trace produced a span")
	}
	// All of these must be no-ops, not panics.
	sp.SetAttr("k", 1)
	child := sp.Child("y")
	child.End()
	sp.End()
	if err := tr.WriteChrome(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if tr.SpanCount() != 0 {
		t.Fatal("nil trace has spans")
	}

	ctx := context.Background()
	if got := SpanFromContext(ctx); got != nil {
		t.Fatal("empty context produced a span")
	}
	real := NewTrace("t").StartSpan("s")
	ctx = ContextWithSpan(ctx, real)
	if got := SpanFromContext(ctx); got != real {
		t.Fatal("context round-trip lost the span")
	}
}
