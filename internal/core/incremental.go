package core

import (
	"context"
	"fmt"

	"shoal/internal/bipartite"
	"shoal/internal/entitygraph"
	"shoal/internal/model"
	"shoal/internal/obs"
	"shoal/internal/phac"
	"shoal/internal/textutil"
	"shoal/internal/word2vec"
)

// DeltaStats summarizes what an incremental rebuild actually recomputed
// — the numbers that explain why the rebuild was (or was not) cheap.
type DeltaStats struct {
	// Incremental is true when the rebuild ran the delta-driven path at
	// all (Config.Incremental via DailyPipeline).
	Incremental bool
	// DirtyItems is the number of window items whose query-set
	// membership changed since the previous rebuild (ingested plus
	// evicted days); DirtyEntities the entities those items map to.
	DirtyItems    int
	DirtyEntities int
	// ChangedEdges is the number of kept entity-graph edges that
	// appeared, disappeared or changed weight; DirtyRows the graph rows
	// those changes touch — the rows the CSR patch rewrote and the
	// clustering warm start re-seeded.
	ChangedEdges int
	DirtyRows    int
	// SeededRows is the number of rows handed to the clustering warm
	// start; 0 when clustering ran cold (first build, dense fallback, or
	// an incompatible memo).
	SeededRows int
	// ReplayedRounds and ReplayedMerges count the merge rounds (and the
	// merges within them) the clustering warm start replayed from the
	// previous build's trajectory instead of recomputing; zero on a cold
	// clustering.
	ReplayedRounds int
	ReplayedMerges int
	// ClusterCold names why clustering ignored the cross-build memo and
	// ran cold — "dense-fallback" when the entity-graph delta forced a
	// from-scratch graph, otherwise phac's incompatibility reason
	// ("no-memo", "node-count", "diffusion-rounds", "stop-threshold").
	// Empty when the warm start engaged.
	ClusterCold string
	// DenseFallback is true when the entity-graph delta exceeded the
	// patch density gate (or no previous state existed) and the graph
	// was rebuilt from scratch.
	DenseFallback bool
}

// rebuildCache is the cross-build state one incremental rebuild hands
// to the next: the static per-corpus artifacts (entities, embeddings)
// plus the delta-merge state of the entity graph and the clustering
// diffusion memo. Owned by DailyPipeline; zero value means cold.
type rebuildCache struct {
	entities   *entitygraph.EntitySet
	embeddings *word2vec.Model
	haveEmb    bool
	graphState *entitygraph.IncState
	memo       *phac.Memo
}

// invalidate drops the window-dependent state — after a failed rebuild
// the drained item delta is lost, so the cached graph state and memo no
// longer describe any window the next rebuild could diff against. The
// corpus-static artifacts (entities, embeddings) survive.
func (c *rebuildCache) invalidate() {
	c.graphState, c.memo = nil, nil
}

// runIncremental executes the delta-driven rebuild over the current
// window: the entity graph is patched from dirtyItems against the
// cached previous build and clustering warm-starts from the cached
// diffusion memo, with every downstream stage (taxonomy, describe,
// correlations, search) identical to the from-scratch pipeline. The
// stage graph runs through the same Engine, so StageTimings and the
// build Trace keep their shape. cache is updated in place as stages
// succeed; on error the caller must invalidate it.
func runIncremental(ctx context.Context, corpus *model.Corpus, clicks *bipartite.Graph, cfg Config, cache *rebuildCache, dirtyItems []model.ItemID) (*Build, error) {
	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg = resolveConfig(cfg)
	density := cfg.HAC.FrontierDensity
	if density == 0 {
		density = phac.DefaultFrontierDensity
	}
	b := &Build{
		Corpus: corpus, Clicks: clicks,
		Workers:         cfg.HAC.Workers,
		FrontierDensity: density,
		BSPEnabled:      cfg.HAC.UseBSP,
		Trace:           obs.NewTrace("shoal-build"),
	}
	eng, err := NewEngine(incrementalStages(cfg, cache, dirtyItems)...)
	if err != nil {
		return nil, err
	}
	maxConcurrent := 0
	if cfg.Sequential {
		maxConcurrent = 1
	}
	timings, err := eng.Execute(ctx, b, maxConcurrent)
	if err != nil {
		return nil, err
	}
	b.StageTimings = timings
	return b, nil
}

// incrementalStages declares the delta-driven build graph. Same shape
// as pipelineStages with an external click graph, but the three
// expensive stages consult the cross-build cache: entities and
// embeddings are corpus-static and computed once, the entity graph is
// delta-merged, and clustering is seeded with the previous build's
// diffusion state.
func incrementalStages(cfg Config, cache *rebuildCache, dirtyItems []model.ItemID) []Stage {
	graphDeps := []string{"entities"}
	var stages []Stage
	// delta carries the entity-graph stage's result to the clustering
	// stage; safe without locks because parallel-hac depends on
	// entity-graph-delta.
	var delta *entitygraph.Delta

	stages = append(stages, StageFunc("entities", nil, func(ctx context.Context, b *Build) error {
		if cache.entities == nil {
			es, err := entitygraph.BuildEntities(ctx, b.Corpus)
			if err != nil {
				return err
			}
			cache.entities = es
		}
		b.Entities = cache.entities
		return nil
	}))

	if cfg.TrainEmbeddings {
		stages = append(stages, StageFunc("word2vec", nil, func(ctx context.Context, b *Build) error {
			if !cache.haveEmb {
				sentences := make([][]string, 0, len(b.Corpus.Items))
				for i := range b.Corpus.Items {
					sentences = append(sentences, textutil.Tokenize(b.Corpus.Items[i].Title))
				}
				m, err := word2vec.Train(ctx, sentences, cfg.Word2Vec)
				if err != nil {
					return err
				}
				cache.embeddings, cache.haveEmb = m, true
			}
			b.Embeddings = cache.embeddings
			return nil
		}))
		graphDeps = append(graphDeps, "word2vec")
	}

	stages = append(stages,
		StageFunc("entity-graph-delta", graphDeps, func(ctx context.Context, b *Build) error {
			res, nst, d, err := entitygraph.BuildIncremental(ctx, b.Entities, b.Clicks, b.Embeddings, cfg.Graph, cache.graphState, dirtyItems)
			if err != nil {
				return err
			}
			cache.graphState = nst
			delta = d
			b.Graph = res.Graph
			b.QuerySets = res.QuerySets
			b.Shards = res.Graph.NumShards()
			b.Delta = &DeltaStats{
				Incremental:   true,
				DirtyItems:    d.DirtyItems,
				DirtyEntities: d.DirtyEntities,
				ChangedEdges:  d.ChangedEdges,
				DirtyRows:     len(d.DirtyRows),
				DenseFallback: d.DenseFallback,
			}
			sp := obs.SpanFromContext(ctx)
			sp.SetAttr("dirtyItems", d.DirtyItems)
			sp.SetAttr("dirtyEntities", d.DirtyEntities)
			sp.SetAttr("changedEdges", d.ChangedEdges)
			sp.SetAttr("dirtyRows", len(d.DirtyRows))
			sp.SetAttr("denseFallback", d.DenseFallback)
			return nil
		}),
		StageFunc("parallel-hac", []string{"entity-graph-delta"}, func(ctx context.Context, b *Build) error {
			sizes := make([]int, len(b.Entities.Entities))
			for i := range sizes {
				sizes[i] = b.Entities.Entities[i].Size()
			}
			prev := cache.memo
			var dirtyRows []int32
			coldReason := ""
			if delta.DenseFallback {
				// A dense fallback rebuilt the graph without tracking
				// which rows moved, so the memo's dirty-rows contract
				// cannot be met: run cold (and capture a fresh memo).
				prev = nil
				coldReason = "dense-fallback"
			} else {
				dirtyRows = delta.DirtyRows
				if r := prev.IncompatibleReason(b.Graph.NumNodes(), cfg.HAC); r != "" {
					coldReason = r
				}
			}
			seeded := 0
			if coldReason == "" {
				seeded = len(dirtyRows)
			}
			res, memo, err := phac.ClusterWarm(ctx, b.Graph, sizes, cfg.HAC, prev, dirtyRows)
			if err != nil {
				return err
			}
			cache.memo = memo
			b.Dendrogram = res.Dendrogram
			b.Rounds = res.Rounds
			b.BSPStats = res.BSP
			b.Delta.SeededRows = seeded
			b.Delta.ReplayedRounds = res.ReplayedRounds
			b.Delta.ReplayedMerges = res.ReplayedMerges
			b.Delta.ClusterCold = coldReason
			sp := obs.SpanFromContext(ctx)
			sp.SetAttr("seededRows", seeded)
			sp.SetAttr("replayedRounds", res.ReplayedRounds)
			sp.SetAttr("replayedMerges", res.ReplayedMerges)
			if coldReason != "" {
				sp.SetAttr("clusterCold", coldReason)
			}
			return nil
		}),
	)
	return append(stages, downstreamStages(cfg)...)
}
