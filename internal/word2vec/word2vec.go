// Package word2vec trains word embeddings with the skip-gram
// negative-sampling model. SHOAL's content-driven similarity (paper §2.1,
// Eq. 2) consumes word vectors of item-title tokens; the production system
// uses a pre-trained model, this package trains one in-process from the
// corpus titles so the repository has no external dependency.
//
// The trainer is deterministic for a fixed seed and worker count: the
// sentence stream is sharded per worker with worker-local RNGs, and updates
// are applied Hogwild-style (racy float updates are benign for SGD and the
// tests only rely on statistical properties, never on exact weights).
package word2vec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync"
)

// Config controls training.
type Config struct {
	// Dim is the embedding dimensionality.
	Dim int
	// Window is the maximum one-sided context window.
	Window int
	// Negative is the number of negative samples per positive pair.
	Negative int
	// Epochs is the number of passes over the corpus.
	Epochs int
	// LR is the initial learning rate, decayed linearly to LR/10.
	LR float64
	// MinCount drops words rarer than this from training.
	MinCount int
	// Subsample is the subsampling threshold t of frequent words
	// (probability of keeping w is min(1, sqrt(t/f(w)) + t/f(w))).
	// Zero disables subsampling.
	Subsample float64
	// Workers is the number of training goroutines; 0 means GOMAXPROCS.
	Workers int
	// Seed makes runs reproducible.
	Seed uint64
}

// DefaultConfig returns sensible smalls-corpus defaults.
func DefaultConfig() Config {
	return Config{
		Dim:       32,
		Window:    4,
		Negative:  5,
		Epochs:    3,
		LR:        0.05,
		MinCount:  2,
		Subsample: 1e-3,
		Workers:   0,
		Seed:      1,
	}
}

func (c *Config) validate() error {
	switch {
	case c.Dim <= 0:
		return errors.New("word2vec: Dim must be positive")
	case c.Window <= 0:
		return errors.New("word2vec: Window must be positive")
	case c.Negative < 0:
		return errors.New("word2vec: Negative must be non-negative")
	case c.Epochs <= 0:
		return errors.New("word2vec: Epochs must be positive")
	case c.LR <= 0:
		return errors.New("word2vec: LR must be positive")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if raceEnabled {
		// Hogwild updates are benign data races; under the race detector
		// they would be flagged, so train single-threaded there.
		c.Workers = 1
	}
	return nil
}

// Model holds trained embeddings.
type Model struct {
	dim   int
	ids   map[string]int
	words []string
	// vecs is the input-embedding matrix, row per word, flattened.
	vecs []float32
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// Words returns the number of embedded words.
func (m *Model) Words() int { return len(m.words) }

// Vector returns the raw embedding of word and whether the word is known.
// The returned slice aliases model memory; callers must not modify it.
func (m *Model) Vector(word string) ([]float32, bool) {
	id, ok := m.ids[word]
	if !ok {
		return nil, false
	}
	return m.vecs[id*m.dim : (id+1)*m.dim], true
}

// NormVector returns the L2-normalized embedding of word as a fresh slice.
func (m *Model) NormVector(word string) ([]float32, bool) {
	v, ok := m.Vector(word)
	if !ok {
		return nil, false
	}
	out := make([]float32, len(v))
	var n float64
	for _, x := range v {
		n += float64(x) * float64(x)
	}
	n = math.Sqrt(n)
	if n == 0 {
		return out, true
	}
	for i, x := range v {
		out[i] = float32(float64(x) / n)
	}
	return out, true
}

// Cosine returns the cosine similarity of two known words, or an error if
// either is out of vocabulary.
func (m *Model) Cosine(a, b string) (float64, error) {
	va, ok := m.Vector(a)
	if !ok {
		return 0, fmt.Errorf("word2vec: unknown word %q", a)
	}
	vb, ok := m.Vector(b)
	if !ok {
		return 0, fmt.Errorf("word2vec: unknown word %q", b)
	}
	return cosine(va, vb), nil
}

func cosine(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Neighbor is a word with its cosine similarity to a probe.
type Neighbor struct {
	Word string
	Cos  float64
}

// Nearest returns the k nearest words to the probe word by cosine
// similarity, excluding the probe itself, best first.
func (m *Model) Nearest(word string, k int) ([]Neighbor, error) {
	v, ok := m.Vector(word)
	if !ok {
		return nil, fmt.Errorf("word2vec: unknown word %q", word)
	}
	out := make([]Neighbor, 0, len(m.words))
	for id, w := range m.words {
		if w == word {
			continue
		}
		out = append(out, Neighbor{Word: w, Cos: cosine(v, m.vecs[id*m.dim:(id+1)*m.dim])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cos != out[j].Cos {
			return out[i].Cos > out[j].Cos
		}
		return out[i].Word < out[j].Word
	})
	if k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// Train learns embeddings from sentences (token slices). Tokens rarer than
// cfg.MinCount are ignored. It returns an error on empty effective input.
// Cancellation is checked between worker sentence batches; a canceled ctx
// aborts training and returns the context error.
func Train(ctx context.Context, sentences [][]string, cfg Config) (*Model, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Build vocabulary with counts.
	counts := make(map[string]int64)
	for _, s := range sentences {
		for _, w := range s {
			counts[w]++
		}
	}
	words := make([]string, 0, len(counts))
	for w, c := range counts {
		if int(c) >= cfg.MinCount {
			words = append(words, w)
		}
	}
	if len(words) == 0 {
		return nil, errors.New("word2vec: no words above MinCount")
	}
	sort.Strings(words) // deterministic ids
	ids := make(map[string]int, len(words))
	for i, w := range words {
		ids[w] = i
	}

	// Encode sentences to ids, dropping OOV words.
	var encoded [][]int32
	var totalTokens int64
	for _, s := range sentences {
		enc := make([]int32, 0, len(s))
		for _, w := range s {
			if id, ok := ids[w]; ok {
				enc = append(enc, int32(id))
			}
		}
		if len(enc) >= 2 {
			encoded = append(encoded, enc)
			totalTokens += int64(len(enc))
		}
	}
	if len(encoded) == 0 {
		return nil, errors.New("word2vec: no trainable sentences (need >=2 in-vocab tokens)")
	}

	// Unigram table for negative sampling (frequency^0.75).
	table := buildUnigramTable(words, counts, 1<<17)

	// Keep-probabilities for subsampling.
	keep := make([]float64, len(words))
	for i, w := range words {
		keep[i] = 1
		if cfg.Subsample > 0 {
			f := float64(counts[w]) / float64(totalTokens)
			if f > 0 {
				p := math.Sqrt(cfg.Subsample/f) + cfg.Subsample/f
				if p < 1 {
					keep[i] = p
				}
			}
		}
	}

	dim := cfg.Dim
	vecs := make([]float32, len(words)*dim) // input vectors
	ctxs := make([]float32, len(words)*dim) // output (context) vectors
	initRng := rand.New(rand.NewPCG(cfg.Seed, 0x9E3779B97F4A7C15))
	for i := range vecs {
		vecs[i] = (initRng.Float32() - 0.5) / float32(dim)
	}

	sigm := newSigmoidTable()

	totalSteps := int64(cfg.Epochs) * totalTokens
	var wg sync.WaitGroup
	for wk := 0; wk < cfg.Workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(wk)+1))
			grad := make([]float32, dim)
			var done int64
			var sinceCheck int
			for ep := 0; ep < cfg.Epochs; ep++ {
				for si := wk; si < len(encoded); si += cfg.Workers {
					if sinceCheck++; sinceCheck >= 256 {
						sinceCheck = 0
						if ctx.Err() != nil {
							return
						}
					}
					sent := encoded[si]
					// Subsample this sentence.
					kept := make([]int32, 0, len(sent))
					for _, w := range sent {
						if keep[w] >= 1 || rng.Float64() < keep[w] {
							kept = append(kept, w)
						}
					}
					for pos, w := range kept {
						win := 1 + rng.IntN(cfg.Window)
						lo, hi := pos-win, pos+win
						if lo < 0 {
							lo = 0
						}
						if hi >= len(kept) {
							hi = len(kept) - 1
						}
						lr := cfg.LR * (1 - 0.9*float64(done)/float64(max64(totalSteps/int64(cfg.Workers), 1)))
						if lr < cfg.LR*0.1 {
							lr = cfg.LR * 0.1
						}
						for cp := lo; cp <= hi; cp++ {
							if cp == pos {
								continue
							}
							trainPair(vecs, ctxs, int(kept[cp]), int(w), dim, lr, cfg.Negative, table, rng, grad, sigm)
						}
						done++
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	return &Model{dim: dim, ids: ids, words: words, vecs: vecs}, nil
}

// trainPair applies one skip-gram SGD step: center word `in`, positive
// context `out`, plus negative samples.
func trainPair(vecs, ctxs []float32, in, out, dim int, lr float64, negative int, table []int32, rng *rand.Rand, grad []float32, sigm *sigmoidTable) {
	vi := vecs[in*dim : (in+1)*dim]
	for i := range grad {
		grad[i] = 0
	}
	for n := 0; n <= negative; n++ {
		var target int
		var label float32
		if n == 0 {
			target, label = out, 1
		} else {
			target = int(table[rng.IntN(len(table))])
			if target == out {
				continue
			}
			label = 0
		}
		vo := ctxs[target*dim : (target+1)*dim]
		var dot float64
		for i := range vi {
			dot += float64(vi[i]) * float64(vo[i])
		}
		g := float32(lr) * (label - sigm.at(dot))
		for i := range vi {
			grad[i] += g * vo[i]
			vo[i] += g * vi[i]
		}
	}
	for i := range vi {
		vi[i] += grad[i]
	}
}

// buildUnigramTable builds the standard f^0.75 negative-sampling table.
func buildUnigramTable(words []string, counts map[string]int64, size int) []int32 {
	table := make([]int32, size)
	var z float64
	pows := make([]float64, len(words))
	for i, w := range words {
		pows[i] = math.Pow(float64(counts[w]), 0.75)
		z += pows[i]
	}
	var cum float64
	wi := 0
	cum = pows[0] / z
	for i := range table {
		table[i] = int32(wi)
		if float64(i+1)/float64(size) > cum && wi < len(words)-1 {
			wi++
			cum += pows[wi] / z
		}
	}
	return table
}

// sigmoidTable precomputes sigmoid on [-6,6] for speed.
type sigmoidTable struct {
	vals []float32
}

const sigmoidRange = 6.0

func newSigmoidTable() *sigmoidTable {
	const n = 1024
	t := &sigmoidTable{vals: make([]float32, n)}
	for i := 0; i < n; i++ {
		x := (float64(i)/n*2 - 1) * sigmoidRange
		t.vals[i] = float32(1 / (1 + math.Exp(-x)))
	}
	return t
}

func (t *sigmoidTable) at(x float64) float32 {
	if x <= -sigmoidRange {
		return 0
	}
	if x >= sigmoidRange {
		return 1
	}
	i := int((x/sigmoidRange + 1) / 2 * float64(len(t.vals)))
	if i >= len(t.vals) {
		i = len(t.vals) - 1
	}
	return t.vals[i]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
