package phac

import (
	"reflect"
	"testing"

	"shoal/internal/bsp"
	"shoal/internal/dendrogram"
	"shoal/internal/wgraph"
)

// TestClusterBSPMemoizedMatchesCold drives the UseBSP selection round by
// round against a twin whose cross-round cache is wiped before every
// round — level arrays back to noEdge, haveCache cleared — so the twin's
// engine runs a cold, full-activation recompute each round exactly like
// the pre-memoization program did. The memoized state (seeded runs,
// incremental edge totals, lazy-deletion global-best heap, changed-rows
// selection) must stay byte-identical to that cold recompute at every
// round: same matching, same edge count, same best similarity.
func TestClusterBSPMemoizedMatchesCold(t *testing.T) {
	const rounds, threshold = 2, 0.25
	cfg := Config{StopThreshold: threshold, DiffusionRounds: rounds}
	for seed := uint64(1); seed <= 3; seed++ {
		g := randomGraph(60, 160, seed)
		mem := newState(wgraph.AsCSR(g), nil, cfg)
		cold := newState(wgraph.AsCSR(g), nil, cfg)
		var aggM, aggC bsp.Stats
		dM := &dendrogram.Dendrogram{Leaves: 60}
		dC := &dendrogram.Dendrogram{Leaves: 60}
		for round := 0; round < 100; round++ {
			selM, edgesM, bestM, err := mem.selectLocalMaximaBSP(rounds, threshold, &aggM, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Wipe the twin's memoized cascade: the run that follows must
			// rebuild every level of every row from the current CSR alone.
			cold.haveCache = false
			for _, lvl := range cold.exStates {
				for i := range lvl {
					lvl[i] = noEdge
				}
			}
			selC, edgesC, bestC, err := cold.selectLocalMaximaBSP(rounds, threshold, &aggC, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(selM, selC) {
				t.Fatalf("seed %d round %d: memoized selection diverged from cold recompute:\n%v\nvs\n%v",
					seed, round, selM, selC)
			}
			if edgesM != edgesC || bestM != bestC {
				t.Fatalf("seed %d round %d: round stats diverged: (%d, %v) vs (%d, %v)",
					seed, round, edgesM, bestM, edgesC, bestC)
			}
			if edgesM == 0 || bestM < threshold {
				break
			}
			mem.mergeSelected(selM, round, cfg, dM)
			cold.mergeSelected(selC, round, cfg, dC)
		}
		if !reflect.DeepEqual(dM, dC) {
			t.Fatalf("seed %d: dendrograms diverged", seed)
		}
		if aggM.SeededRuns == 0 {
			t.Fatalf("seed %d: memoized twin never ran seeded", seed)
		}
		if aggC.SeededRuns != 0 {
			t.Fatalf("seed %d: cold twin ran %d seeded runs, want none", seed, aggC.SeededRuns)
		}
		mem.release()
		cold.release()
	}
}
