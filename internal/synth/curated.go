package synth

import (
	"math/rand/v2"

	"shoal/internal/model"
)

// Curated builds the small Fig. 1(b)-style corpus used by examples and
// golden tests: two overlapping outdoor scenarios ("trip to the beach",
// "mountaineering") plus a disjoint "home office" scenario, over a
// realistic mini ontology. It exercises exactly the motivating case of the
// paper's introduction: the query "beach dress" should lead to a topic that
// spans Dress, Swimwear and Sunblock — categories an ontology keeps apart.
func Curated() *model.Corpus {
	c := &model.Corpus{}

	addCat := func(name string, parent model.CategoryID) model.CategoryID {
		id := model.CategoryID(len(c.Categories))
		c.Categories = append(c.Categories, model.Category{ID: id, Name: name, Parent: parent})
		return id
	}

	ladies := addCat("Ladies' wear", model.RootCategory)
	outdoor := addCat("Outdoor", model.RootCategory)
	beauty := addCat("Beauty care", model.RootCategory)
	electronics := addCat("Electronics", model.RootCategory)

	dress := addCat("Dress", ladies)
	swimwear := addCat("Swimwear", ladies)
	beachPants := addCat("Beach pants", ladies)
	sunglassesCat := addCat("Sunglasses", ladies)
	sunblock := addCat("Sunblock", beauty)
	backpackCat := addCat("Backpack", outdoor)
	alpenstockCat := addCat("Alpenstock", outdoor)
	hikingShoes := addCat("Hiking shoes", outdoor)
	sportsBottle := addCat("Sports bottle", outdoor)
	jackets := addCat("Waterproof jackets", outdoor)
	keyboards := addCat("Keyboards", electronics)
	monitors := addCat("Monitors", electronics)

	type itemSpec struct {
		title string
		cat   model.CategoryID
		scen  model.ScenarioID
	}
	const (
		beachTrip model.ScenarioID = 0
		mountain  model.ScenarioID = 1
		homeOff   model.ScenarioID = 2
	)
	c.Scenarios = []string{"trip to the beach", "mountaineering", "home office"}

	specs := []itemSpec{
		// Trip to the beach: spans Dress/Swimwear/Beach pants/Sunblock/Sunglasses.
		{"beach dress floral summer", dress, beachTrip},
		{"beach dress long chiffon seaside", dress, beachTrip},
		{"beach swimwear bikini sunny", swimwear, beachTrip},
		{"beach swimwear one piece resort", swimwear, beachTrip},
		{"beach pants quick dry surf", beachPants, beachTrip},
		{"beach pants boardshorts holiday", beachPants, beachTrip},
		{"beach sunblock spf50 waterproof lotion", sunblock, beachTrip},
		{"beach sunblock spray coconut", sunblock, beachTrip},
		{"beach sunglasses polarized seaside", sunglassesCat, beachTrip},
		{"beach sunglasses uv400 summer", sunglassesCat, beachTrip},
		// Mountaineering: spans Backpack/Alpenstock/Hiking shoes/Bottle/Jackets.
		{"mountain backpack 40l trekking", backpackCat, mountain},
		{"mountain backpack frame hiking", backpackCat, mountain},
		{"mountain alpenstock carbon trekking pole", alpenstockCat, mountain},
		{"mountain alpenstock folding hiking stick", alpenstockCat, mountain},
		{"mountain hiking shoes waterproof trail", hikingShoes, mountain},
		{"mountain hiking shoes grip boots", hikingShoes, mountain},
		{"mountain sports bottle insulated trekking", sportsBottle, mountain},
		{"mountain sports bottle flask hiking", sportsBottle, mountain},
		{"mountain waterproof jacket shell trekking", jackets, mountain},
		{"mountain waterproof jacket windproof alpine", jackets, mountain},
		// Home office (disjoint control cluster).
		{"office mechanical keyboard rgb quiet", keyboards, homeOff},
		{"office keyboard wireless compact", keyboards, homeOff},
		{"office monitor 27 inch ips", monitors, homeOff},
		{"office monitor 4k ergonomic stand", monitors, homeOff},
	}
	for i, s := range specs {
		c.Items = append(c.Items, model.Item{
			ID: model.ItemID(i), Title: s.title, Category: s.cat,
			PriceCents: int64(1000 + 137*i), Scenario: s.scen,
		})
	}

	type querySpec struct {
		text string
		scen model.ScenarioID
	}
	queries := []querySpec{
		{"beach dress", beachTrip},
		{"beach swimwear", beachTrip},
		{"beach pants", beachTrip},
		{"beach sunblock", beachTrip},
		{"beach sunglasses", beachTrip},
		{"trip to the beach", beachTrip},
		{"seaside holiday outfit", beachTrip},
		{"mountain backpack", mountain},
		{"alpenstock trekking", mountain},
		{"hiking shoes", mountain},
		{"mountaineering gear", mountain},
		{"waterproof jacket", mountain},
		{"sports bottle", mountain},
		{"mechanical keyboard", homeOff},
		{"office monitor", homeOff},
	}
	for i, q := range queries {
		c.Queries = append(c.Queries, model.Query{ID: model.QueryID(i), Text: q.text, Scenario: q.scen})
	}

	// Clicks: each query clicks every item of its scenario a few times,
	// with deterministic pseudo-random counts and days; a pinch of cross
	// noise keeps the graph from being trivially disconnected.
	rng := rand.New(rand.NewPCG(42, 0))
	for qi := range c.Queries {
		scen := c.Queries[qi].Scenario
		for ii := range c.Items {
			if c.Items[ii].Scenario != scen {
				continue
			}
			// Queries click most — not all — items of their scenario.
			if rng.Float64() < 0.25 {
				continue
			}
			c.Clicks = append(c.Clicks, model.ClickEvent{
				Query: model.QueryID(qi), Item: model.ItemID(ii),
				Day: int32(rng.IntN(7)), Count: 1 + int32(rng.IntN(4)),
			})
		}
	}
	// Noise: the "beach dress" query occasionally clicks a mountain item.
	c.Clicks = append(c.Clicks,
		model.ClickEvent{Query: 0, Item: 14, Day: 2, Count: 1},
		model.ClickEvent{Query: 9, Item: 3, Day: 4, Count: 1},
	)
	return c
}
