package obs

import (
	"net/http"
	"sort"
	"sync"
	"time"
)

// statusClasses are the response status classes counted per route.
var statusClasses = [...]string{"2xx", "3xx", "4xx", "5xx"}

// UnmatchedRoute is the synthetic route label under which responses the
// mux produced itself — 404s for unknown paths, 405s for wrong methods —
// are counted. They never reach a registered route handler, so the
// outer middleware owns them.
const UnmatchedRoute = "unmatched"

// routeMetrics is one route's instrument set, resolved once at
// registration so the per-request path never looks anything up.
type routeMetrics struct {
	route    string
	latency  *Histogram
	requests *Counter
	byClass  [len(statusClasses)]*Counter
}

// HTTPMetrics instruments an HTTP mux: per-route latency histograms,
// per-route status-class counters, an in-flight gauge, and the build
// snapshot generation observed at request completion. The per-request
// path is allocation-free in steady state (the status-capturing writer
// is pooled) and every metric update is a lock-free atomic.
//
// Wiring is two layers: WrapMux goes around the whole mux and owns
// timing, in-flight accounting and observation; Route wraps each
// registered handler and only tags the request with its route's
// instrument set. Responses the mux answers itself (404/405) carry no
// tag and are observed under UnmatchedRoute — so error traffic is
// counted even when no handler ran.
type HTTPMetrics struct {
	reg      *Registry
	InFlight *Gauge
	// Generation is read at each observation (nil: generation 0) — the
	// serving layer supplies the current snapshot swap count, so the
	// gauge always names the build the just-completed request was
	// served from.
	Generation func() int64
	generation *Gauge

	mu        sync.Mutex
	routes    []*routeMetrics
	unmatched *routeMetrics
	pool      sync.Pool
}

// NewHTTPMetrics registers the serving instrument families in reg.
func NewHTTPMetrics(reg *Registry) *HTTPMetrics {
	m := &HTTPMetrics{
		reg:        reg,
		InFlight:   reg.Gauge("shoal_http_in_flight", "", "requests currently being served"),
		generation: reg.Gauge("shoal_build_generation", "", "snapshot swap count at the last observation"),
	}
	m.pool.New = func() any { return &statusWriter{} }
	m.unmatched = m.routeMetrics(UnmatchedRoute)
	return m
}

// routeMetrics registers (or returns) the instrument set for a route.
func (m *HTTPMetrics) routeMetrics(route string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rm := range m.routes {
		if rm.route == route {
			return rm
		}
	}
	labels := `route="` + route + `"`
	rm := &routeMetrics{
		route: route,
		latency: m.reg.Histogram("shoal_http_request_duration_seconds", labels,
			"request latency by route", LatencyBuckets()),
		requests: m.reg.Counter("shoal_http_requests_total", labels, "requests served by route"),
	}
	for i, class := range statusClasses {
		rm.byClass[i] = m.reg.Counter("shoal_http_responses_total",
			labels+`,class="`+class+`"`, "responses by route and status class")
	}
	m.routes = append(m.routes, rm)
	return rm
}

// statusWriter captures the response status and carries the matched
// route's instrument set from the inner wrapper out to the observer.
type statusWriter struct {
	http.ResponseWriter
	status int
	rm     *routeMetrics
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Route wraps one registered handler: it tags the in-flight request
// with the route's pre-resolved instrument set and runs the handler.
// All timing and counting happens in WrapMux, so per-route latency
// includes mux dispatch and the tag is the only per-request work here.
func (m *HTTPMetrics) Route(route string, h http.HandlerFunc) http.HandlerFunc {
	rm := m.routeMetrics(route)
	return func(w http.ResponseWriter, r *http.Request) {
		if sw, ok := w.(*statusWriter); ok {
			sw.rm = rm
		}
		h(w, r)
	}
}

// WrapMux instruments the whole mux. Every response is observed exactly
// once: under its route when a Route-wrapped handler ran, under
// UnmatchedRoute when the mux answered itself.
func (m *HTTPMetrics) WrapMux(mux http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := m.pool.Get().(*statusWriter)
		sw.ResponseWriter, sw.status, sw.rm = w, 0, nil

		m.InFlight.Add(1)
		start := time.Now()
		mux.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		m.InFlight.Add(-1)

		rm := sw.rm
		if rm == nil {
			rm = m.unmatched
		}
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		rm.latency.Observe(elapsed.Seconds())
		rm.requests.Inc()
		if ci := status/100 - 2; ci >= 0 && ci < len(statusClasses) {
			rm.byClass[ci].Inc()
		}
		if m.Generation != nil {
			m.generation.Set(m.Generation())
		}

		sw.ResponseWriter, sw.rm = nil, nil
		m.pool.Put(sw)
	})
}

// RouteSummary is one route's latency digest in the JSON stats payload.
type RouteSummary struct {
	Route    string  `json:"route"`
	Requests uint64  `json:"requests"`
	P50Ms    float64 `json:"p50Ms"`
	P90Ms    float64 `json:"p90Ms"`
	P99Ms    float64 `json:"p99Ms"`
	// ByClass counts responses per status class ("2xx".."5xx"); classes
	// with zero responses are omitted.
	ByClass map[string]uint64 `json:"byClass,omitempty"`
}

// HTTPSummary is the serving-telemetry section of /api/stats.
type HTTPSummary struct {
	InFlight int64 `json:"inFlight"`
	// Generation is the snapshot swap count at the most recent request
	// observation.
	Generation int64          `json:"generation"`
	Routes     []RouteSummary `json:"routes"`
}

// Summary digests the current per-route state: request totals, status
// classes and interpolated latency quantiles, routes sorted by name.
// Routes that have served nothing are omitted.
func (m *HTTPMetrics) Summary() HTTPSummary {
	m.mu.Lock()
	routes := make([]*routeMetrics, len(m.routes))
	copy(routes, m.routes)
	m.mu.Unlock()

	out := HTTPSummary{
		InFlight:   m.InFlight.Value(),
		Generation: m.generation.Value(),
	}
	for _, rm := range routes {
		snap := rm.latency.Snapshot()
		if snap.Count == 0 {
			continue
		}
		rs := RouteSummary{
			Route:    rm.route,
			Requests: rm.requests.Value(),
			P50Ms:    snap.Quantile(0.50) * 1e3,
			P90Ms:    snap.Quantile(0.90) * 1e3,
			P99Ms:    snap.Quantile(0.99) * 1e3,
		}
		for i, class := range statusClasses {
			if n := rm.byClass[i].Value(); n > 0 {
				if rs.ByClass == nil {
					rs.ByClass = make(map[string]uint64, len(statusClasses))
				}
				rs.ByClass[class] = n
			}
		}
		out.Routes = append(out.Routes, rs)
	}
	sort.Slice(out.Routes, func(i, j int) bool { return out.Routes[i].Route < out.Routes[j].Route })
	return out
}
