package wgraph

// Canonical edge-weight summation.
//
// Every holder of the "total edge weight" aggregate — the mutable
// builder, Freeze, FromEdges, and the partition-parallel shard builder —
// must produce byte-identical float64 values, or the observational-
// equivalence contracts break. Float addition is not associative, so the
// summation *shape* is part of the contract: addends are the canonical
// (U,V)-sorted edge weights, left-folded within fixed blocks of
// WeightSumBlockSize addends, and the block partials are left-folded in
// block order. The shape depends only on the addend sequence — never on
// worker or shard count — so a parallel builder that computes block
// partials concurrently and folds them in order reproduces the serial
// value exactly (the deterministic tree reduction behind
// shard.FromEdges).

// WeightSumBlockSize is the fixed addend-block width of the canonical
// total-weight summation.
const WeightSumBlockSize = 4096

// weightSummer streams addends through the canonical blocked summation.
type weightSummer struct {
	partial float64
	count   int
	sums    []float64
}

func (s *weightSummer) add(w float64) {
	s.partial += w
	if s.count++; s.count == WeightSumBlockSize {
		s.sums = append(s.sums, s.partial)
		s.partial, s.count = 0, 0
	}
}

func (s *weightSummer) total() float64 {
	t := FoldWeightBlocks(s.sums)
	if s.count > 0 {
		t += s.partial
	}
	return t
}

// SumEdgeWeights returns the canonical blocked sum of the edge weights
// in input order. The input must already be in canonical (U,V) order for
// the result to match the cached CSR total.
func SumEdgeWeights(edges []Edge) float64 {
	var s weightSummer
	for i := range edges {
		s.add(edges[i].W)
	}
	return s.total()
}

// FoldWeightBlocks left-folds per-block partial sums in block order —
// the reduction half of the canonical summation, exposed for builders
// that compute the block partials concurrently (each block a left fold
// over its WeightSumBlockSize addends, the final block possibly short).
func FoldWeightBlocks(sums []float64) float64 {
	var t float64
	for _, b := range sums {
		t += b
	}
	return t
}
