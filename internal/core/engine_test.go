package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"shoal/internal/synth"
)

func noop(ctx context.Context, b *Build) error { return nil }

func TestEngineValidation(t *testing.T) {
	cases := []struct {
		name   string
		stages []Stage
		want   string
	}{
		{"empty", nil, "at least one stage"},
		{"unnamed", []Stage{StageFunc("", nil, noop)}, "empty name"},
		{"duplicate", []Stage{StageFunc("a", nil, noop), StageFunc("a", nil, noop)}, "duplicate"},
		{"unknown-dep", []Stage{StageFunc("a", []string{"ghost"}, noop)}, "unknown stage"},
		{"self-dep", []Stage{StageFunc("a", []string{"a"}, noop)}, "depends on itself"},
		{"cycle", []Stage{
			StageFunc("a", []string{"b"}, noop),
			StageFunc("b", []string{"a"}, noop),
		}, "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewEngine(tc.stages...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("NewEngine = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestEngineSequentialOrder verifies that maxConcurrent=1 yields the
// deterministic topological order with registration order as tiebreak.
func TestEngineSequentialOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	rec := func(name string) func(context.Context, *Build) error {
		return func(ctx context.Context, b *Build) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	eng, err := NewEngine(
		StageFunc("c", []string{"a", "b"}, rec("c")),
		StageFunc("a", nil, rec("a")),
		StageFunc("b", []string{"a"}, rec("b")),
		StageFunc("d", []string{"c"}, rec("d")),
	)
	if err != nil {
		t.Fatal(err)
	}
	timings, err := eng.Execute(context.Background(), &Build{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c", "d"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("execution order = %v, want %v", order, want)
	}
	// Timings come back in registration order regardless.
	var names []string
	for _, st := range timings {
		names = append(names, st.Stage)
	}
	if want := []string{"c", "a", "b", "d"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("timing order = %v, want %v", names, want)
	}
}

// TestEngineConcurrentExecution checks that independent stages genuinely
// overlap: two root stages blocked on each other's arrival can only finish
// if they run at the same time.
func TestEngineConcurrentExecution(t *testing.T) {
	gate := make(chan struct{}, 2)
	rendezvous := func(ctx context.Context, b *Build) error {
		gate <- struct{}{}
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			if len(gate) == 2 {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
	}
	eng, err := NewEngine(
		StageFunc("left", nil, rendezvous),
		StageFunc("right", nil, rendezvous),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := eng.Execute(ctx, &Build{}, 0); err != nil {
		t.Fatalf("concurrent rendezvous failed: %v", err)
	}
}

func TestEngineStageError(t *testing.T) {
	boom := errors.New("boom")
	var ran sync.Map
	eng, err := NewEngine(
		StageFunc("ok", nil, func(ctx context.Context, b *Build) error {
			ran.Store("ok", true)
			return nil
		}),
		StageFunc("fail", []string{"ok"}, func(ctx context.Context, b *Build) error {
			return boom
		}),
		StageFunc("after", []string{"fail"}, func(ctx context.Context, b *Build) error {
			ran.Store("after", true)
			return nil
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Execute(context.Background(), &Build{}, 1)
	if !errors.Is(err, boom) {
		t.Fatalf("Execute = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "stage fail") {
		t.Fatalf("error %q does not name the failing stage", err)
	}
	if _, ok := ran.Load("after"); ok {
		t.Fatal("stage after the failure still ran")
	}
}

func TestEngineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	eng, err := NewEngine(
		StageFunc("block", nil, func(ctx context.Context, b *Build) error {
			<-ctx.Done()
			return ctx.Err()
		}),
		StageFunc("next", []string{"block"}, noop),
	)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := eng.Execute(ctx, &Build{}, 0)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Execute = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Execute did not return after cancellation")
	}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, synth.Curated(), engineTestConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx = %v, want context.Canceled", err)
	}
}

func engineTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Word2Vec.Epochs = 1
	cfg.Word2Vec.MinCount = 1
	cfg.Graph.MinSimilarity = 0.2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.4}
	cfg.CatCorr.MinStrength = 0
	return cfg
}

// TestConcurrentMatchesSequential is the engine's determinism guarantee:
// the concurrent schedule must produce a byte-identical taxonomy (same
// topics, same order) and identical descriptions and correlations to the
// sequential schedule. Word2vec is pinned to one worker because its
// Hogwild updates are racy by design; the comparison isolates engine-level
// scheduling effects.
func TestConcurrentMatchesSequential(t *testing.T) {
	gen := synth.DefaultConfig()
	gen.Scenarios = 8
	gen.ItemsPerScenario = 40
	gen.QueriesPerScenario = 10
	gen.NoiseItems = 20
	gen.HeadQueries = 5
	corpus, err := synth.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engineTestConfig()
	cfg.Word2Vec.Workers = 1

	cfg.Sequential = true
	seq, err := Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sequential = false
	conc, err := Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var seqBytes, concBytes bytes.Buffer
	if err := seq.Taxonomy.Save(&seqBytes); err != nil {
		t.Fatal(err)
	}
	if err := conc.Taxonomy.Save(&concBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqBytes.Bytes(), concBytes.Bytes()) {
		t.Fatalf("taxonomies differ: sequential %d topics, concurrent %d topics",
			len(seq.Taxonomy.Topics), len(conc.Taxonomy.Topics))
	}
	if !reflect.DeepEqual(seq.Descriptions, conc.Descriptions) {
		t.Fatal("descriptions differ between sequential and concurrent runs")
	}
	if !reflect.DeepEqual(seq.Correlations.Pairs(), conc.Correlations.Pairs()) {
		t.Fatal("correlations differ between sequential and concurrent runs")
	}
	if seq.Searcher == nil || conc.Searcher == nil {
		t.Fatal("missing searcher")
	}
	for _, probe := range []string{"beach dress", "laptop stand", corpus.Queries[0].Text} {
		if !reflect.DeepEqual(seq.Searcher.Search(probe, 5), conc.Searcher.Search(probe, 5)) {
			t.Fatalf("search results differ for %q", probe)
		}
	}
	// Both runs report one timing per executed stage, same stage set.
	if len(seq.StageTimings) != len(conc.StageTimings) {
		t.Fatalf("timing count differs: %d vs %d", len(seq.StageTimings), len(conc.StageTimings))
	}
	for i := range seq.StageTimings {
		if seq.StageTimings[i].Stage != conc.StageTimings[i].Stage {
			t.Fatalf("stage %d: %q vs %q", i, seq.StageTimings[i].Stage, conc.StageTimings[i].Stage)
		}
	}
}

// TestEngineSchedulerStress runs the full pipeline stage graph shape with
// stub stages many times to shake out scheduling races (meaningful under
// -race).
func TestEngineSchedulerStress(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		var mu sync.Mutex
		seen := make(map[string]bool)
		requires := func(name string, deps ...string) Stage {
			return StageFunc(name, deps, func(ctx context.Context, b *Build) error {
				mu.Lock()
				defer mu.Unlock()
				for _, d := range deps {
					if !seen[d] {
						return fmt.Errorf("stage %s ran before dependency %s", name, d)
					}
				}
				seen[name] = true
				return nil
			})
		}
		eng, err := NewEngine(
			requires("click-graph"),
			requires("entities"),
			requires("word2vec"),
			requires("entity-graph", "entities", "click-graph", "word2vec"),
			requires("parallel-hac", "entity-graph"),
			requires("taxonomy", "parallel-hac"),
			requires("describe", "taxonomy"),
			requires("category-correlation", "taxonomy"),
			requires("search-index", "describe"),
		)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Execute(context.Background(), &Build{}, 0); err != nil {
			t.Fatal(err)
		}
		if len(seen) != 9 {
			t.Fatalf("ran %d stages, want 9", len(seen))
		}
	}
}
