// Command shoal-build runs the full SHOAL pipeline over a corpus and saves
// the resulting taxonomy.
//
// Usage:
//
//	shoal-build -corpus corpus.json.gz -out taxonomy.gob
//	shoal-build -corpus corpus.json.gz -alpha 0.7 -stop 0.12 -r 2 -v
//	shoal-build -corpus corpus.json.gz -trace build-trace.json
//	shoal-build -corpus corpus.json.gz -incremental -v    # day-by-day delta rebuilds
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shoal/internal/core"
	"shoal/internal/model"
	"shoal/internal/obs"
	"shoal/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoal-build: ")

	var (
		corpusPath = flag.String("corpus", "corpus.json.gz", "input corpus path")
		out        = flag.String("out", "taxonomy.gob", "output taxonomy path (gob)")
		alpha      = flag.Float64("alpha", 0.7, "Eq. 3 blend weight of query-driven similarity")
		stop       = flag.Float64("stop", 0.12, "clustering stop threshold")
		diffusion  = flag.Int("r", 2, "diffusion iterations per Parallel HAC round")
		minSim     = flag.Float64("minsim", 0.25, "entity-graph edge filter")
		noEmbed    = flag.Bool("no-embeddings", false, "skip word2vec (query-driven similarity only)")
		sequential = flag.Bool("sequential", false, "run pipeline stages one at a time instead of concurrently")
		shards     = flag.Int("shards", 0, "row-range shards of the graph substrate (0: GOMAXPROCS); output is identical for any value")
		frontier   = flag.Float64("frontier", 0, "frontier density of pruned diffusion (0: default 0.25, negative: dense); output is identical for any value")
		bspMode    = flag.Bool("bsp", false, "route clustering diffusion through the shard-native BSP engine; output is identical, engine stats are reported")
		increment  = flag.Bool("incremental", false, "replay the corpus click log day by day through the sliding-window pipeline, rebuilding each day with the delta-driven path; the final day's taxonomy is saved (per-day delta stats with -v)")
		tracePath  = flag.String("trace", "", "write the build's execution trace as Chrome trace-event JSON (open in chrome://tracing or Perfetto)")
		pprofAddr  = flag.String("pprof", "", "side listener address exposing net/http/pprof during the build (e.g. localhost:6060; empty disables)")
		verbose    = flag.Bool("v", false, "print stage timings, resolved configuration and statistics")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on %s (try /debug/pprof/)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, obs.PprofMux()); err != nil {
				log.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	// Ctrl-C / SIGTERM cancels the in-flight stages instead of killing the
	// process mid-write.
	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	corpus, err := store.LoadCorpus(*corpusPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Graph.Alpha = *alpha
	cfg.Graph.MinSimilarity = *minSim
	cfg.HAC.StopThreshold = *stop
	cfg.HAC.DiffusionRounds = *diffusion
	cfg.TrainEmbeddings = !*noEmbed
	cfg.Sequential = *sequential
	cfg.Shards = *shards
	cfg.HAC.FrontierDensity = *frontier
	cfg.BSP = *bspMode
	cfg.Word2Vec.Epochs = 2
	cfg.Word2Vec.Dim = 24
	if *stop < cfg.Taxonomy.Levels[0] {
		cfg.Taxonomy.Levels = []float64{*stop, 0.3, 0.5}
	}

	var b *core.Build
	if *increment {
		cfg.Incremental = true
		b, err = buildIncremental(ctx, corpus, cfg, *verbose)
	} else {
		b, err = core.RunContext(ctx, corpus, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "config: shards=%d workers=%d frontier-density=%g bsp=%v\n",
			b.Shards, b.Workers, b.FrontierDensity, b.BSPEnabled)
		for _, st := range b.StageTimings {
			fmt.Fprintf(os.Stderr, "%-22s start=%-12v elapsed=%v\n", st.Stage, st.Start, st.Elapsed)
		}
		if b.BSPStats != nil {
			fmt.Fprintf(os.Stderr, "bsp: supersteps=%d messages=%d sends=%d combiner-hit-rate=%.3f\n",
				b.BSPStats.Supersteps, b.BSPStats.Messages, b.BSPStats.Sends, b.BSPStats.CombinerHitRate())
			fmt.Fprintf(os.Stderr, "bsp: runs-served=%d seeded-runs=%d rebinds=%d peak-retained=%dB\n",
				b.BSPStats.RunsServed, b.BSPStats.SeededRuns, b.BSPStats.Rebinds, b.BSPStats.PeakRetainedBytes)
		}
	}
	if *tracePath != "" {
		tf, err := os.Create(*tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.Trace.WriteChrome(tf); err != nil {
			log.Fatal(err)
		}
		if err := tf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d spans -> %s\n", b.Trace.SpanCount(), *tracePath)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := b.Taxonomy.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s\n", corpus.Stats())
	fmt.Printf("taxonomy: topics=%d roots=%d entities=%d correlations=%d -> %s\n",
		len(b.Taxonomy.Topics), len(b.Taxonomy.Roots()),
		len(b.Entities.Entities), len(b.Correlations.Pairs()), *out)
}

// buildIncremental replays the corpus click log day by day through the
// sliding-window pipeline: every day is ingested and rebuilt with the
// delta-driven path, so each rebuild recomputes only what that day's
// slide changed. Returns the final day's build — byte-identical to a
// from-scratch build over the final window.
func buildIncremental(ctx context.Context, corpus *model.Corpus, cfg core.Config, verbose bool) (*core.Build, error) {
	var maxDay int32
	for _, ev := range corpus.Clicks {
		if ev.Day > maxDay {
			maxDay = ev.Day
		}
	}
	byDay := make([][]model.ClickEvent, maxDay+1)
	for _, ev := range corpus.Clicks {
		byDay[ev.Day] = append(byDay[ev.Day], ev)
	}

	pipe, err := core.NewDailyPipeline(corpus, cfg)
	if err != nil {
		return nil, err
	}
	var b *core.Build
	for day, events := range byDay {
		if err := pipe.IngestDay(events); err != nil {
			return nil, err
		}
		start := time.Now()
		b, err = pipe.RebuildContext(ctx)
		if err != nil {
			return nil, err
		}
		if verbose {
			line := fmt.Sprintf("day %-3d rebuilt in %-10v topics=%d", day,
				time.Since(start).Round(time.Millisecond), len(b.Taxonomy.Topics))
			if d := b.Delta; d != nil {
				line += fmt.Sprintf(" dirty-items=%d dirty-rows=%d changed-edges=%d seeded-rows=%d replayed-rounds=%d replayed-merges=%d dense-fallback=%v",
					d.DirtyItems, d.DirtyRows, d.ChangedEdges, d.SeededRows, d.ReplayedRounds, d.ReplayedMerges, d.DenseFallback)
				if d.ClusterCold != "" {
					line += " cluster-cold=" + d.ClusterCold
				}
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if b == nil {
		return nil, fmt.Errorf("corpus has no click events to replay")
	}
	return b, nil
}
