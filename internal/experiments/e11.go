package experiments

import (
	"fmt"

	"shoal/internal/core"
	"shoal/internal/eval"
	"shoal/internal/model"
	"shoal/internal/synth"
)

// E11Daily reproduces the production operating mode (§3): SHOAL is built
// from a sliding window over the last seven days of queries and refreshed
// as days arrive. The table tracks per-day placement precision and
// day-over-day structural stability — the two signals a production owner
// watches before publishing a daily build.
func E11Daily(sc Scale, seed uint64, totalDays int) (*Table, error) {
	gen := corpusConfig(sc, seed)
	gen.Days = totalDays
	corpus, err := synth.Generate(gen)
	if err != nil {
		return nil, err
	}
	byDay := make([][]model.ClickEvent, totalDays)
	for _, ev := range corpus.Clicks {
		byDay[ev.Day] = append(byDay[ev.Day], ev)
	}

	cfg := pipelineConfig()
	cfg.WindowDays = 7
	p, err := core.NewDailyPipeline(corpus, cfg)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:         "E11",
		Title:      "Daily sliding-window rebuild (7-day window)",
		PaperClaim: "constructed from a sliding window containing search queries in the last seven days",
		Header:     []string{"day", "window-queries", "topics", "precision", "stability-vs-prev"},
	}
	var prev *core.Build
	for day := 0; day < totalDays; day++ {
		if err := p.IngestDay(byDay[day]); err != nil {
			return nil, err
		}
		if day < 6 {
			continue // wait for a full window
		}
		b, err := p.Rebuild()
		if err != nil {
			return nil, err
		}
		res, err := eval.Precision(b.Taxonomy, corpus, eval.PrecisionConfig{
			SampleTopics: 1000, ItemsPerTopic: 100, MinTopicItems: 3,
			RootTopicsOnly: true, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		stab := "n/a"
		if prev != nil {
			s, err := core.Stability(prev, b)
			if err != nil {
				return nil, err
			}
			stab = f3(s)
		}
		q, _, _ := p.WindowStats()
		t.Rows = append(t.Rows, []string{
			itoa(day), itoa(q), itoa(len(b.Taxonomy.Topics)), pct(res.Precision), stab,
		})
		prev = b
	}
	t.Notes = append(t.Notes,
		"stability: fraction of root-topic item pairs preserved by the next day's build",
		fmt.Sprintf("catalog fixed at %d items; clicks stream day by day with 7-day eviction", len(corpus.Items)),
		"extension: the paper states the operating mode without metrics; see DESIGN.md 4")
	return t, nil
}
