package kmeans

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// blobs generates n points around k well-separated unit directions.
func blobs(n, k, dim int, seed uint64) ([][]float32, []int) {
	rng := rand.New(rand.NewPCG(seed, 0))
	centers := make([][]float32, k)
	for c := range centers {
		v := make([]float32, dim)
		v[c%dim] = 1
		v[(c+3)%dim] = float32(c%2)*0.5 - 0.25
		centers[c] = normalize(v)
	}
	points := make([][]float32, n)
	truth := make([]int, n)
	for i := range points {
		c := i % k
		truth[i] = c
		p := make([]float32, dim)
		for d := range p {
			p[d] = centers[c][d] + 0.05*float32(rng.NormFloat64())
		}
		points[i] = p
	}
	return points, truth
}

func TestClusterRecoversBlobs(t *testing.T) {
	points, truth := blobs(300, 3, 8, 1)
	res, err := Cluster(points, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Majority mapping: each predicted cluster maps to its dominant
	// ground-truth blob; accuracy must be near-perfect on separated
	// blobs.
	counts := map[[2]int]int{}
	for i := range points {
		counts[[2]int{int(res.Assign[i]), truth[i]}]++
	}
	best := map[int]int{}
	bestN := map[int]int{}
	for key, n := range counts {
		if n > bestN[key[0]] {
			bestN[key[0]] = n
			best[key[0]] = key[1]
		}
	}
	correct := 0
	for i := range points {
		if best[int(res.Assign[i])] == truth[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(points)); acc < 0.95 {
		t.Fatalf("blob accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestClusterValidation(t *testing.T) {
	points, _ := blobs(10, 2, 4, 1)
	cases := []Config{
		{K: 0, MaxIters: 5},
		{K: 11, MaxIters: 5},
		{K: 2, MaxIters: 0},
	}
	for i, cfg := range cases {
		if _, err := Cluster(points, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := Cluster(nil, DefaultConfig(1)); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := Cluster([][]float32{nil, nil}, DefaultConfig(1)); err == nil {
		t.Error("all-nil points accepted")
	}
	if _, err := Cluster([][]float32{{1, 0}, {1}}, DefaultConfig(1)); err == nil {
		t.Error("ragged dimensions accepted")
	}
}

func TestClusterHandlesNilPoints(t *testing.T) {
	points, _ := blobs(20, 2, 4, 1)
	points[3] = nil
	points[7] = nil
	res, err := Cluster(points, DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[3] != 0 || res.Assign[7] != 0 {
		t.Fatal("nil points must land in cluster 0")
	}
}

func TestClusterDeterministic(t *testing.T) {
	points, _ := blobs(100, 4, 8, 2)
	a, err := Cluster(points, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(points, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestCentroidsAreUnit(t *testing.T) {
	points, _ := blobs(60, 3, 6, 3)
	res, err := Cluster(points, DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for c, cent := range res.Centroids {
		var n float64
		for _, v := range cent {
			n += float64(v) * float64(v)
		}
		if math.Abs(math.Sqrt(n)-1) > 1e-4 {
			t.Fatalf("centroid %d norm = %f, want 1", c, math.Sqrt(n))
		}
	}
}

// Property: assignments are always in [0, K) and every cluster id is
// representable.
func TestAssignmentsInRangeProperty(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		points, _ := blobs(50, k, 6, seed)
		res, err := Cluster(points, DefaultConfig(k))
		if err != nil {
			return false
		}
		for _, a := range res.Assign {
			if a < 0 || int(a) >= k {
				return false
			}
		}
		return res.Iters >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestKEqualsN(t *testing.T) {
	points, _ := blobs(5, 5, 6, 1)
	res, err := Cluster(points, DefaultConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 5 {
		t.Fatalf("centroids = %d, want 5", len(res.Centroids))
	}
}
