package core

import (
	"runtime"
	"testing"
)

// TestShardedObservationallyIdentical is the taxonomy-level half of the
// shard determinism contract: the full pipeline must produce
// byte-identical graphs, dendrograms, taxonomies and descriptions for
// every shard count, from a single shard up past GOMAXPROCS.
func TestShardedObservationallyIdentical(t *testing.T) {
	corpus := smallCorpus(t)
	baseCfg := testConfig()
	// Word2vec's Hogwild updates are racy by design; pin to one worker
	// so cross-run comparisons isolate the sharding effect.
	baseCfg.Word2Vec.Workers = 1
	baseCfg.Shards = 1
	ref, err := Run(corpus, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 3, runtime.GOMAXPROCS(0) + 3} {
		cfg := testConfig()
		cfg.Word2Vec.Workers = 1
		cfg.Shards = s
		b, err := Run(corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if b.Shards != s {
			t.Fatalf("shards=%d: build records %d", s, b.Shards)
		}
		if !gobEqual(t, b.Graph.Edges(), ref.Graph.Edges()) {
			t.Fatalf("shards=%d: entity graph differs from single-shard", s)
		}
		if !gobEqual(t, b.Dendrogram, ref.Dendrogram) {
			t.Fatalf("shards=%d: dendrogram differs from single-shard", s)
		}
		if !gobEqual(t, b.Taxonomy, ref.Taxonomy) {
			t.Fatalf("shards=%d: taxonomy differs from single-shard", s)
		}
		if !gobEqual(t, b.Descriptions, ref.Descriptions) {
			t.Fatalf("shards=%d: descriptions differ from single-shard", s)
		}
	}
}

// TestFrontierObservationallyIdentical is the taxonomy-level half of the
// frontier determinism contract: the full pipeline must produce
// byte-identical dendrograms, taxonomies and descriptions with frontier
// pruning disabled (-1), default, and forced on every iteration (2),
// across shard widths.
func TestFrontierObservationallyIdentical(t *testing.T) {
	corpus := smallCorpus(t)
	baseCfg := testConfig()
	baseCfg.Word2Vec.Workers = 1
	baseCfg.HAC.FrontierDensity = -1 // dense reference
	ref, err := Run(corpus, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{0, 2} {
		for _, s := range []int{1, 3} {
			cfg := testConfig()
			cfg.Word2Vec.Workers = 1
			cfg.HAC.FrontierDensity = d
			cfg.Shards = s
			b, err := Run(corpus, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !gobEqual(t, b.Dendrogram, ref.Dendrogram) {
				t.Fatalf("density=%v shards=%d: dendrogram differs from dense", d, s)
			}
			if !gobEqual(t, b.Taxonomy, ref.Taxonomy) {
				t.Fatalf("density=%v shards=%d: taxonomy differs from dense", d, s)
			}
			if !gobEqual(t, b.Descriptions, ref.Descriptions) {
				t.Fatalf("density=%v shards=%d: descriptions differ from dense", d, s)
			}
		}
	}
}
