package core

import (
	"runtime"
	"testing"
)

// TestShardedObservationallyIdentical is the taxonomy-level half of the
// shard determinism contract: the full pipeline must produce
// byte-identical graphs, dendrograms, taxonomies and descriptions for
// every shard count, from a single shard up past GOMAXPROCS.
func TestShardedObservationallyIdentical(t *testing.T) {
	corpus := smallCorpus(t)
	baseCfg := testConfig()
	// Word2vec's Hogwild updates are racy by design; pin to one worker
	// so cross-run comparisons isolate the sharding effect.
	baseCfg.Word2Vec.Workers = 1
	baseCfg.Shards = 1
	ref, err := Run(corpus, baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{2, 3, runtime.GOMAXPROCS(0) + 3} {
		cfg := testConfig()
		cfg.Word2Vec.Workers = 1
		cfg.Shards = s
		b, err := Run(corpus, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if b.Shards != s {
			t.Fatalf("shards=%d: build records %d", s, b.Shards)
		}
		if !gobEqual(t, b.Graph.Edges(), ref.Graph.Edges()) {
			t.Fatalf("shards=%d: entity graph differs from single-shard", s)
		}
		if !gobEqual(t, b.Dendrogram, ref.Dendrogram) {
			t.Fatalf("shards=%d: dendrogram differs from single-shard", s)
		}
		if !gobEqual(t, b.Taxonomy, ref.Taxonomy) {
			t.Fatalf("shards=%d: taxonomy differs from single-shard", s)
		}
		if !gobEqual(t, b.Descriptions, ref.Descriptions) {
			t.Fatalf("shards=%d: descriptions differ from single-shard", s)
		}
	}
}
