// Package wgraph provides the sparse weighted undirected graph shared by
// the clustering stages (sequential HAC, Parallel HAC, modularity). Nodes
// are dense int32 ids; each edge carries a float64 similarity weight.
//
// Graph is the ingest-side builder: cheap to mutate, map-backed. Freeze
// snapshots it into the immutable CSR form that every hot consumer scans
// allocation-free. The two representations are observationally identical
// (see TestCSRObservationallyIdentical).
package wgraph

import (
	"fmt"
	"sort"
)

// Graph is a sparse weighted undirected graph builder. The zero value is
// not usable; call New. It is not safe for concurrent mutation; Freeze
// for the concurrent read side.
type Graph struct {
	adj      []map[int32]float64
	numEdges int
	// sorted caches each node's ascending neighbor list; a nil entry is
	// recomputed on demand and invalidated by mutation of that node.
	sorted [][]int32
	// frozen memoizes the CSR snapshot; any mutation clears it.
	frozen *CSR
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	g := &Graph{adj: make([]map[int32]float64, n), sorted: make([][]int32, n)}
	return g
}

// NumNodes returns the number of nodes (including isolated ones).
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges, maintained
// incrementally (no adjacency scan).
func (g *Graph) NumEdges() int { return g.numEdges }

// SetEdge sets the weight of undirected edge (u,v), inserting it if absent.
// Self-loops and out-of-range nodes are errors.
func (g *Graph) SetEdge(u, v int32, w float64) error {
	if u == v {
		return fmt.Errorf("wgraph: self-loop on node %d", u)
	}
	if err := g.check(u); err != nil {
		return err
	}
	if err := g.check(v); err != nil {
		return err
	}
	if g.adj[u] == nil {
		g.adj[u] = make(map[int32]float64)
	}
	if g.adj[v] == nil {
		g.adj[v] = make(map[int32]float64)
	}
	if _, exists := g.adj[u][v]; !exists {
		g.numEdges++
		g.sorted[u] = nil
		g.sorted[v] = nil
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
	g.frozen = nil
	return nil
}

// RemoveEdge deletes edge (u,v) if present.
func (g *Graph) RemoveEdge(u, v int32) {
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) || u < 0 || v < 0 {
		return
	}
	if _, exists := g.adj[u][v]; !exists {
		return
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.numEdges--
	g.sorted[u] = nil
	g.sorted[v] = nil
	g.frozen = nil
}

// Weight returns the weight of edge (u,v) and whether it exists.
func (g *Graph) Weight(u, v int32) (float64, bool) {
	if u < 0 || int(u) >= len(g.adj) {
		return 0, false
	}
	w, ok := g.adj[u][v]
	return w, ok
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int32) int {
	if u < 0 || int(u) >= len(g.adj) {
		return 0
	}
	return len(g.adj[u])
}

// WeightedDegree returns the sum of incident edge weights of u, summed
// in ascending neighbor order (matching the CSR cache exactly).
func (g *Graph) WeightedDegree(u int32) float64 {
	if u < 0 || int(u) >= len(g.adj) {
		return 0
	}
	var s float64
	for _, v := range g.sortedNeighbors(u) {
		s += g.adj[u][v]
	}
	return s
}

// sortedNeighbors returns u's cached ascending neighbor list, rebuilding
// it after a mutation. The returned slice is owned by the graph.
func (g *Graph) sortedNeighbors(u int32) []int32 {
	if s := g.sorted[u]; s != nil || len(g.adj[u]) == 0 {
		return s
	}
	out := make([]int32, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	g.sorted[u] = out
	return out
}

// Neighbors returns the neighbor ids of u in ascending order. The
// result is a fresh copy the caller may modify.
func (g *Graph) Neighbors(u int32) []int32 {
	if u < 0 || int(u) >= len(g.adj) {
		return nil
	}
	s := g.sortedNeighbors(u)
	if s == nil {
		return nil
	}
	out := make([]int32, len(s))
	copy(out, s)
	return out
}

// Edge is a canonical undirected edge (U < V).
type Edge struct {
	U, V int32
	W    float64
}

// Edges returns every edge once, sorted by (U,V).
func (g *Graph) Edges() []Edge {
	if g.frozen != nil {
		return g.frozen.Edges()
	}
	out := make([]Edge, 0, g.numEdges)
	for u := range g.adj {
		for _, v := range g.sortedNeighbors(int32(u)) {
			if int32(u) < v {
				out = append(out, Edge{U: int32(u), V: v, W: g.adj[u][v]})
			}
		}
	}
	return out
}

// ForEachNeighbor calls fn for every neighbor of u in ascending id order,
// iterating the cached sorted adjacency (no per-call sort).
func (g *Graph) ForEachNeighbor(u int32, fn func(v int32, w float64)) {
	if u < 0 || int(u) >= len(g.adj) {
		return
	}
	for _, v := range g.sortedNeighbors(u) {
		fn(v, g.adj[u][v])
	}
}

// TotalWeight returns the sum of all edge weights (each edge once),
// accumulated over the canonical (U,V) order through the blocked
// summation (see sum.go) so the value is byte-identical to the frozen
// CSR's cached total.
func (g *Graph) TotalWeight() float64 {
	if g.frozen != nil {
		return g.frozen.TotalWeight()
	}
	var s weightSummer
	for u := range g.adj {
		for _, v := range g.sortedNeighbors(int32(u)) {
			if int32(u) < v {
				s.add(g.adj[u][v])
			}
		}
	}
	return s.total()
}

// Clone returns a deep copy of the builder (caches are not shared).
func (g *Graph) Clone() *Graph {
	c := New(len(g.adj))
	c.numEdges = g.numEdges
	for u := range g.adj {
		if g.adj[u] == nil {
			continue
		}
		c.adj[u] = make(map[int32]float64, len(g.adj[u]))
		for v, w := range g.adj[u] {
			c.adj[u][v] = w
		}
	}
	return c
}

// Components returns a partition id per node, labeling connected
// components; labels are the smallest node id in each component.
func (g *Graph) Components() []int32 {
	if g.frozen != nil {
		return g.frozen.Components()
	}
	comp := make([]int32, len(g.adj))
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	for s := range g.adj {
		if comp[s] != -1 {
			continue
		}
		root := int32(s)
		stack = append(stack[:0], root)
		comp[s] = root
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for v := range g.adj[u] {
				if comp[v] == -1 {
					comp[v] = root
					stack = append(stack, v)
				}
			}
		}
	}
	return comp
}

func (g *Graph) check(u int32) error {
	if u < 0 || int(u) >= len(g.adj) {
		return fmt.Errorf("wgraph: node %d out of range [0,%d)", u, len(g.adj))
	}
	return nil
}
