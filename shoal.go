// Package shoal is the public API of the SHOAL reproduction: a large-scale
// hierarchical taxonomy built from search queries via graph-based query
// coalition (Li et al., PVLDB 12(12), 2019).
//
// SHOAL organizes items into a hierarchy of *topics* — conceptual shopping
// scenarios such as "trip to the beach" — instead of (and alongside) the
// rigid ontology category tree. Topics are mined from the query-item click
// graph with Parallel Hierarchical Agglomerative Clustering, tagged with
// representative queries, and used to correlate ontology categories.
//
// Quickstart:
//
//	corpus, _ := shoal.GenerateCorpus(shoal.DefaultCorpusConfig())
//	sys, _ := shoal.Build(corpus, shoal.DefaultConfig())
//	for _, hit := range sys.SearchTopics("beach trip", 3) {
//	    topic, _ := sys.Topic(hit.Topic)
//	    fmt.Println(topic.Description)
//	}
//
// The heavy lifting lives in internal packages; this package re-exports
// the domain types and wraps the pipeline with navigation helpers that
// mirror the paper's demo scenarios A–D (Fig. 5).
package shoal

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"

	"shoal/internal/abtest"
	"shoal/internal/catcorr"
	"shoal/internal/core"
	"shoal/internal/model"
	"shoal/internal/phac"
	"shoal/internal/recommend"
	"shoal/internal/synth"
	"shoal/internal/taxonomy"
)

// Re-exported domain types. External importers use these through the
// facade; the internal packages are not importable directly.
type (
	// Corpus is the pipeline input: items, queries, categories, clicks.
	Corpus = model.Corpus
	// Item is a product listing.
	Item = model.Item
	// Query is a distinct normalized search query.
	Query = model.Query
	// Category is an ontology node.
	Category = model.Category
	// ClickEvent is one (query, item) click observation.
	ClickEvent = model.ClickEvent
	// ItemID identifies an Item.
	ItemID = model.ItemID
	// QueryID identifies a Query.
	QueryID = model.QueryID
	// CategoryID identifies a Category.
	CategoryID = model.CategoryID
	// TopicID identifies a Topic in the built taxonomy.
	TopicID = model.TopicID
	// ScenarioID is a ground-truth label in synthetic corpora.
	ScenarioID = model.ScenarioID

	// Config bundles per-stage pipeline configuration.
	Config = core.Config
	// Topic is a node of the hierarchical topic taxonomy.
	Topic = taxonomy.Topic
	// Taxonomy is the topic tree with item placement.
	Taxonomy = taxonomy.Taxonomy
	// TopicHit is a scored topic returned by SearchTopics.
	TopicHit = taxonomy.Hit
	// CategoryCorrelation is a correlated category pair (Eq. 5).
	CategoryCorrelation = catcorr.Correlation
	// CorpusConfig parameterizes synthetic corpus generation.
	CorpusConfig = synth.Config
	// ABConfig parameterizes the A/B test simulation.
	ABConfig = abtest.Config
	// ABResult is the outcome of an A/B simulation.
	ABResult = abtest.Result
	// Recommender produces item recommendations for a seed item.
	Recommender = recommend.Recommender
	// RoundStat profiles one Parallel HAC round.
	RoundStat = phac.RoundStat
	// StageTiming is one pipeline stage's wall-clock cost; Start offsets
	// reveal which stages the engine overlapped.
	StageTiming = core.StageTiming
	// DailyPipeline maintains SHOAL over a streaming click log with a
	// sliding day window (the production refresh mode, §3).
	DailyPipeline = core.DailyPipeline
	// DailyBuild is the output of one DailyPipeline rebuild.
	DailyBuild = core.Build
	// DeltaStats summarizes what an incremental rebuild recomputed
	// (Config.Incremental); nil on from-scratch builds.
	DeltaStats = core.DeltaStats
)

// NoTopic marks items not placed under any topic.
const NoTopic = taxonomy.NoTopic

// NoScenario marks items/queries without ground-truth labels.
const NoScenario = model.NoScenario

// RootCategory is the Parent of ontology root categories.
const RootCategory = model.RootCategory

// DefaultConfig returns the paper's demonstration settings (α = 0.7,
// diffusion iterations r = 2, 7-day window, correlation threshold 10).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultCorpusConfig returns a laptop-scale synthetic corpus
// configuration with ground-truth scenario labels.
func DefaultCorpusConfig() CorpusConfig { return synth.DefaultConfig() }

// GenerateCorpus builds a synthetic Taobao-like corpus (the stand-in for
// the paper's closed dataset; see DESIGN.md).
func GenerateCorpus(cfg CorpusConfig) (*Corpus, error) { return synth.Generate(cfg) }

// CuratedCorpus returns the small Fig. 1(b)-style corpus ("trip to the
// beach" / "mountaineering" / "home office") used by examples and tests.
func CuratedCorpus() *Corpus { return synth.Curated() }

// System is a fully built SHOAL taxonomy with its navigation services.
type System struct {
	build *core.Build
}

// Build runs the full SHOAL pipeline over the corpus. Stages execute
// concurrently where the stage graph allows (set cfg.Sequential for the
// one-at-a-time baseline); output is identical either way.
func Build(corpus *Corpus, cfg Config) (*System, error) {
	return BuildContext(context.Background(), corpus, cfg)
}

// BuildContext is Build with cancellation: canceling ctx aborts in-flight
// pipeline stages and returns the context error.
func BuildContext(ctx context.Context, corpus *Corpus, cfg Config) (*System, error) {
	b, err := core.RunContext(ctx, corpus, cfg)
	if err != nil {
		return nil, err
	}
	return &System{build: b}, nil
}

// Corpus returns the corpus the system was built from.
func (s *System) Corpus() *Corpus { return s.build.Corpus }

// Taxonomy returns the built topic taxonomy.
func (s *System) Taxonomy() *Taxonomy { return s.build.Taxonomy }

// Topics returns the number of topics.
func (s *System) Topics() int { return len(s.build.Taxonomy.Topics) }

// Topic returns a topic by id.
func (s *System) Topic(id TopicID) (*Topic, error) { return s.build.Taxonomy.Topic(id) }

// RootTopics returns the root topic ids (conceptual shopping scenarios).
func (s *System) RootTopics() []TopicID { return s.build.Taxonomy.Roots() }

// Rounds returns the Parallel HAC round profile: how many clusters, edges
// and locally-maximal merges each round saw.
func (s *System) Rounds() []RoundStat { return append([]RoundStat(nil), s.build.Rounds...) }

// StageTimings returns per-stage wall-clock instrumentation from the build,
// in stage declaration order.
func (s *System) StageTimings() []StageTiming {
	return append([]StageTiming(nil), s.build.StageTimings...)
}

// SearchTopics implements demo scenario A (Query→Topic): free-text search
// over topic descriptions and member queries.
func (s *System) SearchTopics(query string, k int) []TopicHit {
	if s.build.Searcher == nil {
		return nil
	}
	return s.build.Searcher.Search(query, k)
}

// SubTopics implements demo scenario B (Topic→Sub-topic).
func (s *System) SubTopics(id TopicID) ([]TopicID, error) {
	t, err := s.build.Taxonomy.Topic(id)
	if err != nil {
		return nil, err
	}
	return append([]TopicID(nil), t.Children...), nil
}

// TopicItems implements demo scenario C (Topic→Category→Item): member
// items of a topic, optionally restricted to one category (pass
// cat = RootCategory for all).
func (s *System) TopicItems(id TopicID, cat CategoryID) ([]ItemID, error) {
	if cat == RootCategory {
		t, err := s.build.Taxonomy.Topic(id)
		if err != nil {
			return nil, err
		}
		return append([]ItemID(nil), t.Items...), nil
	}
	return s.build.Taxonomy.ItemsInCategory(id, cat, s.build.Corpus)
}

// RelatedCategories implements demo scenario D (Category→Category): the
// categories correlated with c via root-topic co-occurrence, strongest
// first.
func (s *System) RelatedCategories(c CategoryID) []CategoryCorrelation {
	return s.build.Correlations.Related(c)
}

// CategoryCorrelations returns every correlated category pair.
func (s *System) CategoryCorrelations() []CategoryCorrelation {
	return s.build.Correlations.Pairs()
}

// ItemTopic returns the deepest topic holding the item, or NoTopic.
func (s *System) ItemTopic(it ItemID) TopicID {
	if int(it) < 0 || int(it) >= len(s.build.Taxonomy.ItemTopic) {
		return NoTopic
	}
	return s.build.Taxonomy.ItemTopic[it]
}

// TopicRecommender returns the experiment-arm recommender backed by this
// taxonomy.
func (s *System) TopicRecommender() (Recommender, error) {
	return recommend.NewTopicRecommender(s.build.Corpus, s.build.Taxonomy)
}

// CategoryRecommender returns the control-arm recommender backed by the
// ontology alone.
func (s *System) CategoryRecommender() (Recommender, error) {
	return recommend.NewCategoryRecommender(s.build.Corpus)
}

// RunABTest simulates the paper's online A/B test: category matching
// (control) vs topic matching (experiment), reporting CTRs and lift.
func (s *System) RunABTest(cfg ABConfig) (*ABResult, error) {
	ctl, err := s.CategoryRecommender()
	if err != nil {
		return nil, err
	}
	exp, err := s.TopicRecommender()
	if err != nil {
		return nil, err
	}
	return abtest.Run(s.build.Corpus, ctl, exp, cfg)
}

// DefaultABConfig returns the default A/B simulation parameters.
func DefaultABConfig() ABConfig { return abtest.DefaultConfig() }

// NewDailyPipeline prepares a sliding-window pipeline over a static
// catalog; clicks arrive through IngestDay, and Rebuild produces a fresh
// taxonomy from the current window.
func NewDailyPipeline(corpus *Corpus, cfg Config) (*DailyPipeline, error) {
	return core.NewDailyPipeline(corpus, cfg)
}

// BuildStability reports the fraction of root-topic item pairs of prev
// that next preserves — the signal to watch before publishing a daily
// rebuild.
func BuildStability(prev, next *DailyBuild) (float64, error) {
	return core.Stability(prev, next)
}

// Recommend draws k recommendations from an arbitrary recommender with a
// seeded RNG (convenience for examples and the explorer).
func Recommend(r Recommender, seed ItemID, k int, rngSeed uint64) []ItemID {
	return r.Recommend(seed, k, rand.New(rand.NewPCG(rngSeed, 0)))
}

// SaveTaxonomy writes the taxonomy in gob encoding.
func (s *System) SaveTaxonomy(w io.Writer) error { return s.build.Taxonomy.Save(w) }

// LoadTaxonomy reads a gob-encoded taxonomy written by SaveTaxonomy.
func LoadTaxonomy(r io.Reader) (*Taxonomy, error) { return taxonomy.Load(r) }

// Stats summarizes the build for logs and reports.
func (s *System) Stats() string {
	b := s.build
	return fmt.Sprintf("entities=%d edges=%d merges=%d rounds=%d topics=%d roots=%d correlations=%d",
		len(b.Entities.Entities), b.Graph.NumEdges(), len(b.Dendrogram.Merges),
		len(b.Rounds), len(b.Taxonomy.Topics), len(b.Taxonomy.Roots()),
		len(b.Correlations.Pairs()))
}
