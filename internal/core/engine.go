package core

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"time"

	"shoal/internal/obs"
)

// Stage is one node of the build graph: a named unit of pipeline work with
// declared dependencies on other stages. A stage reads the Build fields its
// dependencies populated and writes its own; stages with no dependency
// relation run concurrently, so they must touch disjoint fields.
type Stage interface {
	// Name identifies the stage in timings, errors and /api/stats.
	Name() string
	// Deps names the stages that must complete before this one starts.
	Deps() []string
	// Run performs the stage's work. It must honor ctx cancellation.
	Run(ctx context.Context, b *Build) error
}

// StageFunc adapts a closure to a Stage.
func StageFunc(name string, deps []string, run func(ctx context.Context, b *Build) error) Stage {
	return &funcStage{name: name, deps: deps, run: run}
}

type funcStage struct {
	name string
	deps []string
	run  func(ctx context.Context, b *Build) error
}

func (s *funcStage) Name() string                            { return s.name }
func (s *funcStage) Deps() []string                          { return s.deps }
func (s *funcStage) Run(ctx context.Context, b *Build) error { return s.run(ctx, b) }

// Engine executes a validated stage graph: stages run as soon as their
// dependencies complete, concurrently when independent. Execution is
// deterministic in its *outputs* regardless of parallelism because the
// dependency edges encode every read-after-write relation; only wall-clock
// interleaving varies.
type Engine struct {
	stages []Stage
	// deps[i] holds the stage indices stage i waits on; dependents is the
	// reverse adjacency. indegree0 is the initial indegree per stage,
	// copied at the start of every Execute.
	deps       [][]int
	dependents [][]int
	indegree0  []int
}

// NewEngine validates the stage graph: unique names, known dependencies,
// and no cycles. Stage registration order is the deterministic tiebreak
// wherever the engine must pick among ready stages.
func NewEngine(stages ...Stage) (*Engine, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("core: engine needs at least one stage")
	}
	byName := make(map[string]int, len(stages))
	for i, st := range stages {
		if st.Name() == "" {
			return nil, fmt.Errorf("core: stage %d has an empty name", i)
		}
		if _, dup := byName[st.Name()]; dup {
			return nil, fmt.Errorf("core: duplicate stage %q", st.Name())
		}
		byName[st.Name()] = i
	}
	e := &Engine{stages: stages, deps: make([][]int, len(stages))}
	for i, st := range stages {
		for _, d := range st.Deps() {
			j, ok := byName[d]
			if !ok {
				return nil, fmt.Errorf("core: stage %q depends on unknown stage %q", st.Name(), d)
			}
			if j == i {
				return nil, fmt.Errorf("core: stage %q depends on itself", st.Name())
			}
			e.deps[i] = append(e.deps[i], j)
		}
	}
	e.indegree0 = make([]int, len(stages))
	e.dependents = make([][]int, len(stages))
	for i, di := range e.deps {
		e.indegree0[i] = len(di)
		for _, j := range di {
			e.dependents[j] = append(e.dependents[j], i)
		}
	}
	// Cycle check via Kahn's algorithm.
	indegree := slices.Clone(e.indegree0)
	var queue []int
	for i, d := range indegree {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		seen++
		for _, j := range e.dependents[i] {
			if indegree[j]--; indegree[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if seen != len(stages) {
		var stuck []string
		for i, d := range indegree {
			if d > 0 {
				stuck = append(stuck, stages[i].Name())
			}
		}
		return nil, fmt.Errorf("core: stage graph has a dependency cycle through %v", stuck)
	}
	return e, nil
}

// Execute runs the graph over b. maxConcurrent bounds simultaneously
// running stages; <= 0 means unbounded (full graph parallelism), 1 yields
// the deterministic sequential topological order. Returned timings are in
// registration order. On the first stage error the context handed to still
// running stages is canceled, the engine drains them, and the error is
// returned wrapped with the failing stage's name.
func (e *Engine) Execute(ctx context.Context, b *Build, maxConcurrent int) ([]StageTiming, error) {
	if maxConcurrent <= 0 {
		maxConcurrent = len(e.stages)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	indegree := slices.Clone(e.indegree0)

	var ready []int // ascending stage indices
	for i, d := range indegree {
		if d == 0 {
			ready = append(ready, i)
		}
	}

	type outcome struct {
		idx        int
		err        error
		start, end time.Time
	}
	done := make(chan outcome)
	started := time.Now()
	timingAt := make(map[int]StageTiming, len(e.stages))
	running, completed := 0, 0
	var firstErr error

	launch := func(i int) {
		running++
		go func() {
			st := e.stages[i]
			// One trace span per stage; downstream packages hang their
			// own spans (merge rounds, BSP runs) off it via the context.
			sp := b.Trace.StartSpan(st.Name())
			s := time.Now()
			err := ctx.Err()
			if err == nil {
				err = st.Run(obs.ContextWithSpan(ctx, sp), b)
			}
			sp.End()
			done <- outcome{idx: i, err: err, start: s, end: time.Now()}
		}()
	}

	for {
		for firstErr == nil && running < maxConcurrent && len(ready) > 0 {
			i := ready[0]
			ready = ready[1:]
			launch(i)
		}
		if running == 0 {
			break
		}
		o := <-done
		running--
		completed++
		if o.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: stage %s: %w", e.stages[o.idx].Name(), o.err)
				cancel()
			}
			continue
		}
		timingAt[o.idx] = StageTiming{
			Stage:   e.stages[o.idx].Name(),
			Start:   o.start.Sub(started),
			Elapsed: o.end.Sub(o.start),
		}
		for _, j := range e.dependents[o.idx] {
			if indegree[j]--; indegree[j] == 0 {
				ready = slices.Insert(ready, sort.SearchInts(ready, j), j)
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if completed != len(e.stages) {
		// Unreachable after NewEngine's cycle check; guard regardless.
		return nil, fmt.Errorf("core: engine stalled with %d/%d stages complete", completed, len(e.stages))
	}
	timings := make([]StageTiming, 0, len(e.stages))
	for i := range e.stages {
		timings = append(timings, timingAt[i])
	}
	return timings, nil
}
