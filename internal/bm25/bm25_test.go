package bm25

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func testDocs() [][]string {
	return [][]string{
		{"beach", "dress", "swimwear", "sunblock", "beach"},     // 0: beach topic
		{"hiking", "boots", "alpenstock", "backpack", "jacket"}, // 1: mountain topic
		{"beach", "pants", "swimwear", "sunglasses"},            // 2: beach topic
		{"router", "tshirt", "balloon", "chopsticks", "tripod"}, // 3: misc
		{}, // 4: empty
	}
}

func buildIdx(t *testing.T) *Index {
	t.Helper()
	idx, err := Build(testDocs(), DefaultConfig())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, DefaultConfig()); err == nil {
		t.Fatal("Build(nil) = nil error, want error")
	}
	if _, err := Build(testDocs(), Config{K1: -1, B: 0.5}); err == nil {
		t.Fatal("Build with K1<0 = nil error")
	}
	if _, err := Build(testDocs(), Config{K1: 1, B: 1.5}); err == nil {
		t.Fatal("Build with B>1 = nil error")
	}
}

func TestScoreRanksRelevantDocFirst(t *testing.T) {
	idx := buildIdx(t)
	q := []string{"beach", "swimwear"}
	s0, err := idx.Score(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := idx.Score(q, 1)
	s3, _ := idx.Score(q, 3)
	if s0 <= s1 || s0 <= s3 {
		t.Fatalf("Score(beach swimwear): doc0=%.3f doc1=%.3f doc3=%.3f, want doc0 highest", s0, s1, s3)
	}
	if s1 != 0 {
		t.Fatalf("doc1 shares no terms, score = %.3f, want 0", s1)
	}
}

func TestScoreOutOfRange(t *testing.T) {
	idx := buildIdx(t)
	if _, err := idx.Score([]string{"beach"}, -1); err == nil {
		t.Fatal("Score(doc=-1) = nil error")
	}
	if _, err := idx.Score([]string{"beach"}, 99); err == nil {
		t.Fatal("Score(doc=99) = nil error")
	}
}

func TestScoreUnknownTermIsZero(t *testing.T) {
	idx := buildIdx(t)
	s, err := idx.Score([]string{"zebra"}, 0)
	if err != nil || s != 0 {
		t.Fatalf("Score(zebra) = %f,%v want 0,nil", s, err)
	}
}

func TestScoreAllSparse(t *testing.T) {
	idx := buildIdx(t)
	hits := idx.ScoreAll([]string{"beach"})
	if len(hits) != 2 {
		t.Fatalf("ScoreAll(beach) touched %d docs, want 2", len(hits))
	}
	for i, h := range hits {
		if h.Doc == 1 {
			t.Fatal("ScoreAll(beach) includes doc 1 which lacks the term")
		}
		if i > 0 && hits[i-1].Doc >= h.Doc {
			t.Fatalf("ScoreAll hits not in ascending doc order: %v", hits)
		}
		// ScoreAll must agree with Score exactly: both accumulate per
		// document in first-occurrence term order.
		want, err := idx.Score([]string{"beach"}, h.Doc)
		if err != nil {
			t.Fatal(err)
		}
		if h.Score != want {
			t.Fatalf("ScoreAll[%d]=%v disagrees with Score=%v", h.Doc, h.Score, want)
		}
	}
}

// TestScoreAllPooledScratch locks in the satellite win: repeated
// ScoreAll calls must reuse the pooled dense scratch, allocating only
// the returned hit slice.
func TestScoreAllPooledScratch(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool caching is disabled under the race detector")
	}
	idx := buildIdx(t)
	q := []string{"beach", "swimwear", "boots"}
	idx.ScoreAll(q) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		idx.ScoreAll(q)
	})
	if allocs > 1 {
		t.Fatalf("ScoreAll allocated %.1f objects per call, want <= 1 (the result slice)", allocs)
	}
	// Scratch reuse must not leak scores across calls.
	first := idx.ScoreAll(q)
	second := idx.ScoreAll(q)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("ScoreAll not idempotent: %v vs %v", first[i], second[i])
		}
	}
}

func TestScoreDedupsQueryTerms(t *testing.T) {
	idx := buildIdx(t)
	s1, _ := idx.Score([]string{"beach"}, 0)
	s2, _ := idx.Score([]string{"beach", "beach", "beach"}, 0)
	if s1 != s2 {
		t.Fatalf("repeated query terms changed score: %f vs %f", s1, s2)
	}
}

func TestTopK(t *testing.T) {
	idx := buildIdx(t)
	hits := idx.TopK([]string{"beach", "swimwear"}, 2)
	if len(hits) != 2 {
		t.Fatalf("TopK returned %d hits, want 2", len(hits))
	}
	if hits[0].Doc != 0 {
		t.Fatalf("TopK best = doc %d, want 0", hits[0].Doc)
	}
	if hits[0].Score < hits[1].Score {
		t.Fatal("TopK not sorted descending")
	}
	if got := idx.TopK([]string{"zebra"}, 5); len(got) != 0 {
		t.Fatalf("TopK(zebra) = %v, want empty", got)
	}
}

func TestTermFrequencySaturation(t *testing.T) {
	// More occurrences should score higher, but sub-linearly.
	docs := [][]string{
		{"x"},
		{"x", "x"},
		{"x", "x", "x", "x", "x", "x", "x", "x"},
		{"y"},
	}
	idx, err := Build(docs, Config{K1: 1.2, B: 0}) // disable length norm
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := idx.Score([]string{"x"}, 0)
	s2, _ := idx.Score([]string{"x"}, 1)
	s8, _ := idx.Score([]string{"x"}, 2)
	if !(s1 < s2 && s2 < s8) {
		t.Fatalf("scores not increasing with tf: %f %f %f", s1, s2, s8)
	}
	if s2/s1 > 2 {
		t.Fatalf("tf=2 gain %f not saturated (>2x)", s2/s1)
	}
}

func TestLengthNormalizationPrefersShortDocs(t *testing.T) {
	docs := [][]string{
		{"x", "a", "b", "c", "d", "e", "f", "g"},
		{"x", "a"},
	}
	idx, err := Build(docs, Config{K1: 1.2, B: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	long, _ := idx.Score([]string{"x"}, 0)
	short, _ := idx.Score([]string{"x"}, 1)
	if short <= long {
		t.Fatalf("length normalization failed: short=%f long=%f", short, long)
	}
}

// Property: scores are non-negative and finite for arbitrary query shapes.
func TestScoreNonNegativeProperty(t *testing.T) {
	idx := buildIdx(t)
	vocabs := []string{"beach", "dress", "swimwear", "hiking", "zebra", "router", ""}
	f := func(picks []uint8, doc uint8) bool {
		q := make([]string, 0, len(picks))
		for _, p := range picks {
			q = append(q, vocabs[int(p)%len(vocabs)])
		}
		d := int(doc) % idx.N()
		s, err := idx.Score(q, d)
		return err == nil && s >= 0 && !math.IsInf(s, 0) && !math.IsNaN(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyDocNeverMatches(t *testing.T) {
	idx := buildIdx(t)
	s, err := idx.Score([]string{"beach", "hiking", "router"}, 4)
	if err != nil || s != 0 {
		t.Fatalf("empty doc score = %f,%v want 0,nil", s, err)
	}
}

// TestScorerMatchesScoreAll pins the batch Scorer byte-identical to
// per-call ScoreAll across many queries in one session, including
// repeated terms (served from the idf cache) and sessions resumed after
// Close returned a scratch to the pool.
func TestScorerMatchesScoreAll(t *testing.T) {
	docs := [][]string{
		{"red", "shoes", "leather", "red"},
		{"blue", "shoes", "canvas"},
		{"red", "hat", "wool"},
		{},
		{"hat", "hat", "leather", "belt"},
	}
	idx, err := Build(docs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	queries := [][]string{
		{"red", "shoes"},
		{"red", "red", "hat"}, // dup terms
		{"unknown"},
		{"leather", "belt", "shoes"},
		{"red", "shoes"}, // repeated query: cached idf path
		nil,
	}
	for round := 0; round < 3; round++ {
		sc := idx.NewScorer()
		for _, q := range queries {
			want := idx.ScoreAll(q)
			got := sc.ScoreAll(q)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d query %v: scorer %v, want %v", round, q, got, want)
			}
		}
		sc.Close()
	}
}
