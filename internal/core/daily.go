package core

import (
	"context"
	"fmt"
	"sort"

	"shoal/internal/bipartite"
	"shoal/internal/model"
)

// DailyPipeline maintains SHOAL over a live click stream. The production
// system (§3) builds from "a sliding window containing search queries in
// the last seven days" and refreshes continuously; this type models that
// operation: ingest each day's click events, then rebuild the taxonomy
// from whatever the window currently holds.
type DailyPipeline struct {
	cfg    Config
	corpus *model.Corpus
	clicks *bipartite.Graph
	days   int
	last   *Build
	// cache is the cross-build state of the incremental rebuild path
	// (Config.Incremental): corpus-static artifacts plus the previous
	// build's entity-graph state and clustering diffusion memo.
	cache rebuildCache
}

// NewDailyPipeline prepares a pipeline over a static catalog (the corpus's
// own click log is ignored; clicks arrive through IngestDay).
func NewDailyPipeline(corpus *model.Corpus, cfg Config) (*DailyPipeline, error) {
	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &DailyPipeline{
		cfg:    cfg,
		corpus: corpus,
		clicks: bipartite.New(cfg.WindowDays),
	}, nil
}

// IngestDay feeds one day's click events into the sliding window via
// the batched fast path (one eviction pass per call). Events must carry
// non-decreasing Day values across calls (the window evicts by the
// newest day seen); a rejected batch leaves the window untouched.
func (p *DailyPipeline) IngestDay(events []model.ClickEvent) error {
	for _, ev := range events {
		if int(ev.Query) < 0 || int(ev.Query) >= len(p.corpus.Queries) {
			return fmt.Errorf("core: click references unknown query %d", ev.Query)
		}
		if int(ev.Item) < 0 || int(ev.Item) >= len(p.corpus.Items) {
			return fmt.Errorf("core: click references unknown item %d", ev.Item)
		}
	}
	if err := p.clicks.AddAll(events); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	p.days++
	return nil
}

// Days returns the number of ingested days.
func (p *DailyPipeline) Days() int { return p.days }

// WindowStats reports the current window's query and item coverage.
func (p *DailyPipeline) WindowStats() (queries, items int, maxDay int32) {
	return p.clicks.Queries(), p.clicks.Items(), p.clicks.MaxDay()
}

// Window reports the full window statistics, including the count of
// stale (already-evicted-day) events dropped at ingestion.
func (p *DailyPipeline) Window() bipartite.WindowStats {
	return p.clicks.Stats()
}

// Rebuild runs the full pipeline over the current window and remembers the
// result for Stability comparisons.
func (p *DailyPipeline) Rebuild() (*Build, error) {
	return p.RebuildContext(context.Background())
}

// RebuildContext is Rebuild with cancellation: a canceled ctx aborts the
// in-flight build without touching the last published one. With
// Config.Incremental set it runs the delta-driven path: the window's
// changed items are drained and only their downstream effects — entity
// graph rows, clustering diffusion, and everything the taxonomy stages
// derive from them — are recomputed, byte-identical to a from-scratch
// rebuild.
func (p *DailyPipeline) RebuildContext(ctx context.Context) (*Build, error) {
	if !p.cfg.Incremental {
		b, err := RunWithClicksContext(ctx, p.corpus, p.clicks, p.cfg)
		if err != nil {
			return nil, err
		}
		p.last = b
		return b, nil
	}
	dirty := p.clicks.TakeChangedItems()
	b, err := runIncremental(ctx, p.corpus, p.clicks, p.cfg, &p.cache, dirty)
	if err != nil {
		// The drained delta is lost with the failed build: the cached
		// graph state and memo no longer describe any window the next
		// rebuild could diff against, so cold-start it.
		p.cache.invalidate()
		return nil, err
	}
	p.last = b
	return b, nil
}

// Last returns the most recent build, or nil before the first Rebuild.
func (p *DailyPipeline) Last() *Build { return p.last }

// Stability measures how much of the previous build's topic structure the
// new build preserves: the fraction of item pairs that were topic-mates in
// prev and are still topic-mates in next, sampled over prev's root topics.
// 1 means the taxonomy is unchanged at the pair level; values near 0 mean
// a reshuffle. Production systems watch exactly this signal before
// publishing a daily build.
func Stability(prev, next *Build) (float64, error) {
	if prev == nil || next == nil {
		return 0, fmt.Errorf("core: Stability requires two builds")
	}
	if len(prev.Taxonomy.ItemTopic) != len(next.Taxonomy.ItemTopic) {
		return 0, fmt.Errorf("core: builds cover different catalogs")
	}
	rootOf := func(b *Build, it int) int32 {
		tid := b.Taxonomy.ItemTopic[it]
		if tid < 0 {
			return -1
		}
		root, err := b.Taxonomy.RootOf(tid)
		if err != nil {
			return -1
		}
		return int32(root)
	}
	// Group items by prev root topic.
	groups := make(map[int32][]int)
	for it := range prev.Taxonomy.ItemTopic {
		r := rootOf(prev, it)
		if r >= 0 {
			groups[r] = append(groups[r], it)
		}
	}
	keys := make([]int32, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var pairs, kept int
	for _, k := range keys {
		members := groups[k]
		// Cap per-group pair enumeration: adjacent pairs plus a stride,
		// enough signal without O(n²) blowup on big topics.
		for i := 1; i < len(members); i++ {
			pairs++
			if rootOf(next, members[i-1]) == rootOf(next, members[i]) && rootOf(next, members[i]) >= 0 {
				kept++
			}
		}
	}
	if pairs == 0 {
		return 0, fmt.Errorf("core: previous build has no topic pairs")
	}
	return float64(kept) / float64(pairs), nil
}
