package shard

import (
	"math/rand/v2"
	"reflect"
	"runtime"
	"testing"

	"shoal/internal/wgraph"
)

// randomEdges builds a canonical (sorted, U<V, deduped) edge list over n
// nodes.
func randomEdges(n, extra int, seed uint64) []wgraph.Edge {
	rng := rand.New(rand.NewPCG(seed, 23))
	g := wgraph.New(n)
	for v := 1; v < n; v++ {
		_ = g.SetEdge(int32(rng.IntN(v)), int32(v), 0.05+0.9*rng.Float64())
	}
	for i := 0; i < extra; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		_ = g.SetEdge(int32(u), int32(v), 0.05+0.9*rng.Float64())
	}
	return g.Edges()
}

var shardCounts = []int{1, 2, 3, 5, 8, 16, runtime.GOMAXPROCS(0) + 3}

// TestShardedObservationallyIdentical is the wgraph-level half of the
// shard determinism contract: a sharded CSR must be indistinguishable
// from its base through every View observation, and shard.FromEdges
// must produce a base CSR byte-identical to the serial wgraph.FromEdges
// for any shard count.
func TestShardedObservationallyIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		n := 40 + int(seed)*11
		edges := randomEdges(n, n*3, seed)
		base, err := wgraph.FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range shardCounts {
			sc, err := FromEdges(n, edges, s)
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, s, err)
			}
			// The concurrently filled base must match the serial build
			// byte for byte (arrays, cached degrees, total).
			if !reflect.DeepEqual(sc.BaseCSR(), base) {
				t.Fatalf("seed %d shards %d: FromEdges base differs from wgraph.FromEdges", seed, s)
			}
			p := Partition(base, s)
			if p.BaseCSR() != base {
				t.Fatalf("seed %d shards %d: Partition does not share the base", seed, s)
			}
			// Every View observation delegates to the base.
			if p.NumNodes() != base.NumNodes() || p.NumEdges() != base.NumEdges() {
				t.Fatalf("seed %d shards %d: node/edge counts differ", seed, s)
			}
			if p.TotalWeight() != base.TotalWeight() {
				t.Fatalf("seed %d shards %d: TotalWeight differs", seed, s)
			}
			if !reflect.DeepEqual(p.Edges(), base.Edges()) {
				t.Fatalf("seed %d shards %d: Edges differ", seed, s)
			}
			if !reflect.DeepEqual(p.Components(), base.Components()) {
				t.Fatalf("seed %d shards %d: Components differ", seed, s)
			}
			for u := int32(0); int(u) < n; u++ {
				if p.Degree(u) != base.Degree(u) || p.WeightedDegree(u) != base.WeightedDegree(u) {
					t.Fatalf("seed %d shards %d node %d: degree observations differ", seed, s, u)
				}
				if !reflect.DeepEqual(p.Neighbors(u), base.Neighbors(u)) {
					t.Fatalf("seed %d shards %d node %d: Neighbors differ", seed, s, u)
				}
			}
		}
	}
}

// TestPlanInvariants checks the structural contract of every plan: the
// bounds are monotone, cover the whole row space, Find agrees with the
// ranges, and the cached per-shard aggregates sum to the graph totals.
func TestPlanInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		n := 30 + int(seed)*17
		edges := randomEdges(n, n*4, seed)
		base, err := wgraph.FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		offsets, _, _ := base.Adj()
		totalEntries := int(offsets[n])
		for _, s := range shardCounts {
			p := Partition(base, s)
			plan := p.Plan()
			if plan.NumShards() != p.NumShards() {
				t.Fatalf("plan/shard count mismatch")
			}
			prev := int32(0)
			entries, edgeCount := 0, 0
			var weight, degTotal float64
			for i := 0; i < p.NumShards(); i++ {
				lo, hi := plan.Bounds(i)
				if lo != prev || hi < lo {
					t.Fatalf("seed %d shards %d: bounds not contiguous at %d: [%d,%d)", seed, s, i, lo, hi)
				}
				prev = hi
				sh := p.Shard(i)
				if sh.Lo != lo || sh.Hi != hi {
					t.Fatalf("shard range mismatch")
				}
				if sh.Entries != len(sh.Nbrs) || len(sh.Nbrs) != len(sh.Wts) {
					t.Fatalf("seed %d shards %d: entry cache inconsistent", seed, s)
				}
				if len(sh.Offsets) != int(hi-lo)+1 {
					t.Fatalf("seed %d shards %d: offsets view length %d want %d", seed, s, len(sh.Offsets), hi-lo+1)
				}
				entries += sh.Entries
				edgeCount += sh.Edges
				weight += sh.Weight
				degTotal += sh.DegTotal
				for u := lo; u < hi; u++ {
					if plan.Find(u) != i {
						t.Fatalf("seed %d shards %d: Find(%d) = %d want %d", seed, s, u, plan.Find(u), i)
					}
				}
			}
			if prev != int32(n) {
				t.Fatalf("seed %d shards %d: bounds end at %d want %d", seed, s, prev, n)
			}
			if entries != totalEntries {
				t.Fatalf("seed %d shards %d: entries sum %d want %d", seed, s, entries, totalEntries)
			}
			if edgeCount != base.NumEdges() {
				t.Fatalf("seed %d shards %d: owned edges sum %d want %d", seed, s, edgeCount, base.NumEdges())
			}
			if diff := weight - base.TotalWeight(); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("seed %d shards %d: weight sum %f want %f", seed, s, weight, base.TotalWeight())
			}
			if diff := degTotal - 2*base.TotalWeight(); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("seed %d shards %d: degree total %f want %f", seed, s, degTotal, 2*base.TotalWeight())
			}
		}
	}
}

// TestPlanEdgeBalance locks in the reason the plan exists: on a skewed
// graph (one hub touching everything), edge-balanced bounds must not
// put all entries in one shard the way node-balanced splitting would.
func TestPlanEdgeBalance(t *testing.T) {
	const n = 400
	g := wgraph.New(n)
	// Hub 0 connects to everyone; the rest form a sparse chain.
	for v := int32(1); v < n; v++ {
		_ = g.SetEdge(0, v, 0.5)
	}
	base := g.Freeze()
	p := Partition(base, 4)
	offsets, _, _ := base.Adj()
	total := int(offsets[n])
	for i := 0; i < p.NumShards(); i++ {
		if e := p.Shard(i).Entries; e > total*3/4 {
			t.Fatalf("shard %d holds %d of %d entries — plan is not edge-balanced", i, e, total)
		}
	}
	// The hub row alone holds half of all entries, so the first shard
	// must end right after it.
	if lo, hi := p.Plan().Bounds(0); lo != 0 || hi != 1 {
		t.Fatalf("hub shard = [%d,%d), want [0,1)", lo, hi)
	}
}

// TestFromEdgesRejectsAdversarialInput mirrors the wgraph contract on
// the sharded builder: unsorted, duplicate, self-loop and out-of-range
// edge lists are rejected with the same deterministic error as
// wgraph.FromEdges.
func TestFromEdgesRejectsAdversarialInput(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []wgraph.Edge
	}{
		{"non-canonical", 3, []wgraph.Edge{{U: 2, V: 1, W: 0.5}}},
		{"self-loop", 3, []wgraph.Edge{{U: 1, V: 1, W: 0.5}}},
		{"negative", 3, []wgraph.Edge{{U: -1, V: 1, W: 0.5}}},
		{"out-of-range", 3, []wgraph.Edge{{U: 0, V: 3, W: 0.5}}},
		{"unsorted", 4, []wgraph.Edge{{U: 1, V: 2, W: 0.5}, {U: 0, V: 3, W: 0.5}}},
		{"unsorted-within-row", 4, []wgraph.Edge{{U: 0, V: 3, W: 0.5}, {U: 0, V: 1, W: 0.5}}},
		{"duplicate", 4, []wgraph.Edge{{U: 0, V: 1, W: 0.5}, {U: 0, V: 1, W: 0.6}}},
	}
	for _, tc := range cases {
		_, shardErr := FromEdges(tc.n, tc.edges, 4)
		if shardErr == nil {
			t.Errorf("%s: shard.FromEdges accepted invalid input", tc.name)
			continue
		}
		_, wgErr := wgraph.FromEdges(tc.n, tc.edges)
		if wgErr == nil || wgErr.Error() != shardErr.Error() {
			t.Errorf("%s: error mismatch: shard=%q wgraph=%v", tc.name, shardErr, wgErr)
		}
	}
}

// TestChunkedFromEdgesIdentical forces the multi-worker chunked
// construction path (which a 1-CPU machine would otherwise never take)
// and pins its output — arrays, cached aggregates, plan — byte-identical
// to both the serial wgraph.FromEdges build and the auto-worker
// FromEdges result, for every worker × shard combination.
func TestChunkedFromEdgesIdentical(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		n := 60 + int(seed)*13
		edges := randomEdges(n, n*4, seed)
		base, err := wgraph.FromEdges(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []int{1, 3, 8} {
			auto, err := FromEdges(n, edges, s)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 3, 5, 8} {
				sc, err := fromEdges(n, edges, s, w)
				if err != nil {
					t.Fatalf("seed %d shards %d workers %d: %v", seed, s, w, err)
				}
				if !reflect.DeepEqual(sc.BaseCSR(), base) {
					t.Fatalf("seed %d shards %d workers %d: chunked base differs from serial", seed, s, w)
				}
				if !reflect.DeepEqual(sc.Plan(), auto.Plan()) {
					t.Fatalf("seed %d shards %d workers %d: plan differs from auto-worker build", seed, s, w)
				}
				if !reflect.DeepEqual(sc.Shards(), auto.Shards()) {
					t.Fatalf("seed %d shards %d workers %d: shard aggregates differ", seed, s, w)
				}
			}
		}
	}
}

// TestChunkedFromEdgesRejectsAdversarialInput runs the adversarial
// inputs through the forced-chunked path: the parallel validators must
// report the exact first-offender error the serial scan would.
func TestChunkedFromEdgesRejectsAdversarialInput(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges []wgraph.Edge
	}{
		{"non-canonical", 3, []wgraph.Edge{{U: 2, V: 1, W: 0.5}}},
		{"out-of-range", 3, []wgraph.Edge{{U: 0, V: 3, W: 0.5}}},
		{"unsorted", 4, []wgraph.Edge{{U: 1, V: 2, W: 0.5}, {U: 0, V: 3, W: 0.5}}},
		{"duplicate", 4, []wgraph.Edge{{U: 0, V: 1, W: 0.5}, {U: 0, V: 1, W: 0.6}}},
		{"late-offender", 5, []wgraph.Edge{
			{U: 0, V: 1, W: 0.5}, {U: 0, V: 2, W: 0.5}, {U: 1, V: 2, W: 0.5},
			{U: 1, V: 3, W: 0.5}, {U: 3, V: 3, W: 0.5},
		}},
	}
	for _, tc := range cases {
		_, wgErr := wgraph.FromEdges(tc.n, tc.edges)
		if wgErr == nil {
			t.Fatalf("%s: wgraph.FromEdges accepted invalid input", tc.name)
		}
		for _, w := range []int{2, 4} {
			_, err := fromEdges(tc.n, tc.edges, 4, w)
			if err == nil {
				t.Errorf("%s workers %d: chunked FromEdges accepted invalid input", tc.name, w)
				continue
			}
			if err.Error() != wgErr.Error() {
				t.Errorf("%s workers %d: error %q, want serial error %q", tc.name, w, err, wgErr)
			}
		}
	}
}

// TestAsCSRUnwrapsShardedView checks the wgraph.CSRBacked fast path:
// consumers calling wgraph.AsCSR on a sharded view must get the base
// back without any copying.
func TestAsCSRUnwrapsShardedView(t *testing.T) {
	edges := randomEdges(50, 100, 3)
	sc, err := FromEdges(50, edges, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := wgraph.AsCSR(sc); got != sc.BaseCSR() {
		t.Fatal("AsCSR did not unwrap the sharded view to its base")
	}
}

// TestEmptyAndTinyGraphs exercises the degenerate shapes: isolated
// nodes, zero edges, more shards than rows.
func TestEmptyAndTinyGraphs(t *testing.T) {
	sc, err := FromEdges(3, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumNodes() != 3 || sc.NumEdges() != 0 {
		t.Fatalf("empty graph: nodes=%d edges=%d", sc.NumNodes(), sc.NumEdges())
	}
	if sc.NumShards() > 3 {
		t.Fatalf("plan has %d shards for 3 rows", sc.NumShards())
	}
	one, err := FromEdges(1, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if one.NumShards() != 1 {
		t.Fatalf("single row got %d shards", one.NumShards())
	}
}
