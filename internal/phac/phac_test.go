package phac

import (
	"context"
	"math/rand/v2"
	"reflect"
	"testing"

	"shoal/internal/bsp"
	"shoal/internal/shard"
	"shoal/internal/wgraph"
)

// figure3 reconstructs the 13-node example of paper Fig. 3. The figure's
// exact adjacency is not published machine-readably; this reconstruction
// uses the figure's node names (A..M) and weight vocabulary and reproduces
// the described outcome: after two diffusion iterations the edges (A,B)
// and (E,F) are the locally-maximal edges.
//
// Node ids: A=0 B=1 C=2 D=3 E=4 F=5 G=6 H=7 I=8 J=9 K=10 L=11 M=12.
func figure3(t testing.TB) *wgraph.Graph {
	g := wgraph.New(13)
	edges := []wgraph.Edge{
		{U: 0, V: 1, W: 0.90},   // A-B
		{U: 4, V: 5, W: 0.91},   // E-F
		{U: 10, V: 1, W: 0.74},  // K-B
		{U: 0, V: 2, W: 0.70},   // A-C
		{U: 0, V: 3, W: 0.67},   // A-D
		{U: 2, V: 3, W: 0.62},   // C-D
		{U: 7, V: 1, W: 0.65},   // H-B
		{U: 7, V: 8, W: 0.61},   // H-I
		{U: 3, V: 8, W: 0.58},   // D-I
		{U: 2, V: 9, W: 0.64},   // C-J
		{U: 4, V: 6, W: 0.68},   // E-G
		{U: 5, V: 6, W: 0.65},   // F-G
		{U: 5, V: 9, W: 0.61},   // F-J
		{U: 6, V: 11, W: 0.68},  // G-L
		{U: 11, V: 12, W: 0.63}, // L-M
		{U: 9, V: 11, W: 0.58},  // J-L
		{U: 9, V: 6, W: 0.53},   // J-G
	}
	for _, e := range edges {
		if err := g.SetEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestFigure3LocalMaximaAfterTwoIterations(t *testing.T) {
	g := figure3(t)
	sel, err := Diffuse(g, 2, 0.3, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Edge{{U: 0, V: 1, Sim: 0.90}, {U: 4, V: 5, Sim: 0.91}}
	if !reflect.DeepEqual(sel, want) {
		t.Fatalf("Diffuse(r=2) = %v, want AB and EF only: %v", sel, want)
	}
}

func TestFigure3FirstRoundMergesABAndEF(t *testing.T) {
	g := figure3(t)
	res, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.3, DiffusionRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 || res.Rounds[0].Selected != 2 {
		t.Fatalf("round 0 selected %d merges, want 2", res.Rounds[0].Selected)
	}
	m0, m1 := res.Dendrogram.Merges[0], res.Dendrogram.Merges[1]
	if m0.A != 0 || m0.B != 1 || m0.Sim != 0.90 {
		t.Fatalf("first merge = %+v, want A,B @0.90", m0)
	}
	if m1.A != 4 || m1.B != 5 || m1.Sim != 0.91 {
		t.Fatalf("second merge = %+v, want E,F @0.91", m1)
	}
}

// randomGraph builds a connected-ish random weighted graph.
func randomGraph(n, extraEdges int, seed uint64) *wgraph.Graph {
	rng := rand.New(rand.NewPCG(seed, 17))
	g := wgraph.New(n)
	for v := 1; v < n; v++ {
		u := rng.IntN(v)
		_ = g.SetEdge(int32(u), int32(v), 0.05+0.9*rng.Float64())
	}
	for i := 0; i < extraEdges; i++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		_ = g.SetEdge(int32(u), int32(v), 0.05+0.9*rng.Float64())
	}
	return g
}

func TestDiffuseMatchingIsNodeDisjoint(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := randomGraph(80, 160, seed)
		for _, r := range []int{0, 1, 2, 4} {
			sel, err := Diffuse(g, r, 0.1, 4)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[int32]bool)
			for _, e := range sel {
				if e.U >= e.V {
					t.Fatalf("non-canonical edge %v", e)
				}
				if seen[e.U] || seen[e.V] {
					t.Fatalf("seed %d r=%d: matching not node-disjoint at %v", seed, r, e)
				}
				seen[e.U] = true
				seen[e.V] = true
			}
		}
	}
}

// The paper: fewer diffusion iterations => more local maximal edges. The
// strong form is a subset relation, which we assert exactly.
func TestDiffuseSelectionShrinksWithIterations(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := randomGraph(100, 250, seed)
		prev := map[[2]int32]bool{}
		for r := 0; r <= 4; r++ {
			sel, err := Diffuse(g, r, 0.1, 3)
			if err != nil {
				t.Fatal(err)
			}
			cur := make(map[[2]int32]bool, len(sel))
			for _, e := range sel {
				cur[[2]int32{e.U, e.V}] = true
			}
			if r > 0 {
				for k := range cur {
					if !prev[k] {
						t.Fatalf("seed %d: edge %v selected at r=%d but not at r=%d", seed, k, r, r-1)
					}
				}
			}
			prev = cur
		}
	}
}

// The globally maximal edge is always locally maximal, so diffusion always
// selects at least one edge while any edge meets the threshold.
func TestDiffuseAlwaysSelectsGlobalMax(t *testing.T) {
	for seed := uint64(1); seed <= 15; seed++ {
		g := randomGraph(60, 120, seed)
		best := wgraph.Edge{W: -1}
		for _, e := range g.Edges() {
			if e.W > best.W {
				best = e
			}
		}
		for _, r := range []int{0, 2, 6} {
			sel, err := Diffuse(g, r, 0.1, 2)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, e := range sel {
				if e.U == best.U && e.V == best.V {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed %d r=%d: global max %v not selected", seed, r, best)
			}
		}
	}
}

func TestDiffuseBSPEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := randomGraph(70, 140, seed)
		for _, r := range []int{0, 1, 2, 3} {
			direct, err := Diffuse(g, r, 0.2, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3, 8} {
				viaBSP, err := DiffuseBSP(g, r, 0.2, bsp.Config{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(direct, viaBSP) {
					t.Fatalf("seed %d r=%d workers=%d: Diffuse=%v DiffuseBSP=%v", seed, r, workers, direct, viaBSP)
				}
			}
		}
	}
}

// The shard-partitioned engine must be byte-identical to Diffuse when
// the input is a sharded CSR: placement follows the shard.Plan and the
// topology is consumed through the per-shard Segments.
func TestDiffuseBSPShardedEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := randomGraph(80, 200, seed)
		base := g.Freeze()
		for _, r := range []int{0, 2, 6} {
			direct, err := Diffuse(base, r, 0.2, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 3, 7} {
				sc := shard.Partition(base, shards)
				viaBSP, stats, err := DiffuseBSPStats(sc, r, 0.2, bsp.Config{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(direct, viaBSP) {
					t.Fatalf("seed %d r=%d shards=%d: Diffuse=%v DiffuseBSP=%v", seed, r, shards, direct, viaBSP)
				}
				if stats == nil || stats.Supersteps == 0 {
					t.Fatalf("seed %d r=%d shards=%d: stats not populated", seed, r, shards)
				}
				if r >= 2 && shards > 1 && stats.CombinerHits == 0 {
					t.Fatalf("seed %d r=%d shards=%d: max-combiner absorbed nothing", seed, r, shards)
				}
			}
		}
	}
}
