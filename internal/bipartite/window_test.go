package bipartite

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"shoal/internal/model"
)

// windowMass recomputes the total in-window click mass from scratch.
func windowMass(g *Graph) int64 {
	var mass int64
	for day, evs := range g.byDay {
		if g.windowDays > 0 && day <= g.maxDay-g.windowDays {
			continue
		}
		for _, ev := range evs {
			mass += int64(ev.Count)
		}
	}
	return mass
}

// aggregateMass sums the aggregated query->item counters.
func aggregateMass(g *Graph) int64 {
	var mass int64
	for _, items := range g.queryItems {
		for _, c := range items {
			mass += int64(c)
		}
	}
	return mass
}

// Property: after any interleaving of in-order and out-of-order (but
// in-window) events, the aggregated counters equal the sum of retained raw
// events — eviction never double-removes or leaks.
func TestWindowMassConservation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		g := New(7)
		events := int(n)%120 + 1
		day := int32(0)
		for i := 0; i < events; i++ {
			// Days wander forward with occasional jitter backwards.
			if rng.IntN(3) == 0 {
				day += int32(rng.IntN(3))
			}
			d := day - int32(rng.IntN(4)) // sometimes late-arriving
			if d < 0 {
				d = 0
			}
			ev := model.ClickEvent{
				Query: model.QueryID(rng.IntN(9)),
				Item:  model.ItemID(rng.IntN(9)),
				Day:   d,
				Count: int32(rng.IntN(3) + 1),
			}
			if err := g.Add(ev); err != nil {
				return false
			}
		}
		return windowMass(g) == aggregateMass(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the two directions of the bipartite index always agree.
func TestIndexSymmetryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		g := New(5)
		for i := 0; i < 80; i++ {
			ev := model.ClickEvent{
				Query: model.QueryID(rng.IntN(6)),
				Item:  model.ItemID(rng.IntN(6)),
				Day:   int32(rng.IntN(12)),
				Count: 1,
			}
			if ev.Day <= g.MaxDay()-5 {
				continue // stale adds are no-ops; skip to keep the check simple
			}
			if err := g.Add(ev); err != nil {
				return false
			}
		}
		for q, items := range g.queryItems {
			for it, c := range items {
				if g.itemQuery[it][q] != c {
					return false
				}
			}
		}
		for it, queries := range g.itemQuery {
			for q, c := range queries {
				if g.queryItems[q][it] != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
