package recommend

import (
	"context"
	"math/rand/v2"
	"testing"

	"shoal/internal/dendrogram"
	"shoal/internal/entitygraph"
	"shoal/internal/model"
	"shoal/internal/taxonomy"
)

// world builds a corpus with two leaf categories under one parent plus an
// unrelated category, and a taxonomy with one cross-category topic.
func world(t *testing.T) (*model.Corpus, *taxonomy.Taxonomy) {
	t.Helper()
	corpus := &model.Corpus{
		Categories: []model.Category{
			{ID: 0, Name: "Ladies' wear", Parent: model.RootCategory},
			{ID: 1, Name: "Dress", Parent: 0},
			{ID: 2, Name: "Swimwear", Parent: 0},
			{ID: 3, Name: "Routers", Parent: model.RootCategory},
		},
		Items: []model.Item{
			{ID: 0, Title: "beach dress a", Category: 1, PriceCents: 100, Attrs: []string{"c=red"}, Scenario: 0},
			{ID: 1, Title: "beach dress b", Category: 1, PriceCents: 110, Attrs: []string{"c=blue"}, Scenario: 0},
			{ID: 2, Title: "beach bikini", Category: 2, PriceCents: 100, Scenario: 0},
			{ID: 3, Title: "office dress", Category: 1, PriceCents: 50000, Attrs: []string{"c=gray"}, Scenario: 1},
			{ID: 4, Title: "router x", Category: 3, PriceCents: 100, Scenario: model.NoScenario},
		},
	}
	es, err := entitygraph.BuildEntities(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	// Entities are singletons here (distinct attrs/prices/categories);
	// find entity ids for items 0,1,2 and merge them into one topic.
	e0, e1, e2 := es.ItemEntity[0], es.ItemEntity[1], es.ItemEntity[2]
	n := int32(len(es.Entities))
	d := &dendrogram.Dendrogram{
		Leaves: int(n),
		Merges: []dendrogram.Merge{
			{A: int32(e0), B: int32(e1), New: n, Sim: 0.9, Round: 0},
			{A: n, B: int32(e2), New: n + 1, Sim: 0.8, Round: 1},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	tx, err := taxonomy.Build(context.Background(), d, es, corpus, taxonomy.Config{Levels: []float64{0.5}, MinTopicSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	return corpus, tx
}

func TestCategoryRecommenderStaysInOntology(t *testing.T) {
	corpus, _ := world(t)
	r, err := NewCategoryRecommender(corpus)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 0))
	recs := r.Recommend(0, 10, rng)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	for _, it := range recs {
		if it == 0 {
			t.Fatal("seed recommended")
		}
		cat := corpus.Items[it].Category
		if cat != 1 && cat != 2 {
			t.Fatalf("item %d from category %d, want Dress or sibling Swimwear", it, cat)
		}
	}
	// The router (unrelated root) must never appear.
	for _, it := range recs {
		if it == 4 {
			t.Fatal("unrelated category recommended")
		}
	}
}

func TestTopicRecommenderCoversScenario(t *testing.T) {
	corpus, tx := world(t)
	r, err := NewTopicRecommender(corpus, tx)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 0))
	recs := r.Recommend(0, 10, rng)
	want := map[model.ItemID]bool{1: true, 2: true}
	if len(recs) != 2 {
		t.Fatalf("recs = %v, want items 1 and 2", recs)
	}
	for _, it := range recs {
		if !want[it] {
			t.Fatalf("unexpected rec %d", it)
		}
	}
}

func TestTopicRecommenderUnassignedSeed(t *testing.T) {
	corpus, tx := world(t)
	r, err := NewTopicRecommender(corpus, tx)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 0))
	if recs := r.Recommend(4, 5, rng); recs != nil {
		t.Fatalf("recs for unassigned seed = %v, want nil", recs)
	}
}

func TestRecommendersHandleBadInput(t *testing.T) {
	corpus, tx := world(t)
	cr, err := NewCategoryRecommender(corpus)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTopicRecommender(corpus, tx)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 0))
	for _, r := range []Recommender{cr, tr} {
		if got := r.Recommend(-1, 5, rng); got != nil {
			t.Fatalf("%s accepted negative seed", r.Name())
		}
		if got := r.Recommend(999, 5, rng); got != nil {
			t.Fatalf("%s accepted out-of-range seed", r.Name())
		}
		if got := r.Recommend(0, 0, rng); got != nil {
			t.Fatalf("%s accepted k=0", r.Name())
		}
	}
}

func TestNewRecommenderValidation(t *testing.T) {
	corpus, tx := world(t)
	if _, err := NewCategoryRecommender(&model.Corpus{Items: []model.Item{{ID: 9}}}); err == nil {
		t.Fatal("invalid corpus accepted")
	}
	if _, err := NewTopicRecommender(corpus, nil); err == nil {
		t.Fatal("nil taxonomy accepted")
	}
	short := &taxonomy.Taxonomy{ItemTopic: []model.TopicID{0}}
	if _, err := NewTopicRecommender(corpus, short); err == nil {
		t.Fatal("mismatched taxonomy accepted")
	}
	_ = tx
}

func TestSampleWithoutReplacement(t *testing.T) {
	pool := []model.ItemID{1, 2, 3, 4, 5, 6, 7, 8}
	rng := rand.New(rand.NewPCG(7, 0))
	got := sample(pool, 5, rng)
	if len(got) != 5 {
		t.Fatalf("sample returned %d, want 5", len(got))
	}
	seen := map[model.ItemID]bool{}
	for _, it := range got {
		if seen[it] {
			t.Fatalf("duplicate %d in sample", it)
		}
		seen[it] = true
	}
	// Small pool returned whole.
	all := sample(pool[:3], 5, rng)
	if len(all) != 3 {
		t.Fatalf("sample of small pool = %d items, want 3", len(all))
	}
}

func TestCategoryRecommenderName(t *testing.T) {
	corpus, tx := world(t)
	cr, _ := NewCategoryRecommender(corpus)
	tr, _ := NewTopicRecommender(corpus, tx)
	if cr.Name() == tr.Name() {
		t.Fatal("arms share a name")
	}
}
