// Package serve exposes a built SHOAL system over HTTP/JSON. The deployed
// system "supports millions of searches for online shopping per day" (§1);
// this handler is that serving surface: read-only, safe for concurrent
// use, one endpoint per demo scenario (Fig. 5).
//
//	GET /api/search?q=beach+dress&k=5      scenario A: query → topics
//	GET /api/topics/{id}                   scenario B: topic + sub-topics
//	GET /api/topics/{id}/items?category=3  scenario C: topic → category → items
//	GET /api/categories/{id}/related       scenario D: category correlations
//	GET /api/stats                         build statistics + stage timings + serving telemetry
//	                                       (+ a delta section for incremental rebuilds:
//	                                       dirty items/rows, seeded rows, dense fallback,
//	                                       dropped stale events)
//	GET /api/trace                         build execution trace (Chrome trace-event JSON)
//	GET /metrics                           Prometheus text exposition
//
// The handler holds the current build behind an atomic pointer: Swap
// publishes a fresh build (e.g. a daily sliding-window rebuild) with zero
// downtime. Each request loads one consistent snapshot at entry, so a swap
// mid-request cannot mix two builds in one response.
//
// Every request passes through the obs middleware: per-route latency
// histograms, status-class counters, an in-flight gauge and the swap
// generation observed at completion, all allocation-free per request.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shoal/internal/catcorr"
	"shoal/internal/core"
	"shoal/internal/model"
	"shoal/internal/obs"
	"shoal/internal/taxonomy"
)

// Handler serves the current build snapshot and supports hot swaps.
type Handler struct {
	cur atomic.Pointer[snapshot]
	// swapMu serializes Swap so concurrent publishers cannot lose a swap
	// count; request handlers never take it.
	swapMu sync.Mutex
	mux    *http.ServeMux
	// wrapped is the instrumented mux ServeHTTP dispatches to; reg and
	// metrics are the observability surface behind /metrics and the
	// "http" section of /api/stats.
	wrapped http.Handler
	reg     *obs.Registry
	metrics *obs.HTTPMetrics
	// droppedStale mirrors the published build's window counter of
	// stale (already-evicted-day) click events dropped at ingestion —
	// the clicks the delta tracker refuses to double-count. Updated on
	// every publish, exported via /metrics.
	droppedStale *obs.Gauge
}

// snapshot pairs a build with the swap count that published it, so one
// atomic load yields a fully consistent /api/stats payload.
// droppedStale is captured from the build's click window at publish
// time: the window keeps ingesting after the build is published, so
// request handlers must not read it live.
type snapshot struct {
	build        *core.Build
	swaps        int64
	droppedStale int64
}

// NewHandler wraps a completed build. The build must not be mutated after
// it is handed over; publish updates with Swap instead.
func NewHandler(b *core.Build) (*Handler, error) {
	if err := checkBuild(b); err != nil {
		return nil, err
	}
	h := &Handler{mux: http.NewServeMux(), reg: obs.NewRegistry()}
	h.droppedStale = h.reg.Gauge("shoal_window_dropped_stale_events", "",
		"stale click events (already-evicted days) dropped at window ingestion, as of the published build")
	h.cur.Store(h.newSnapshot(b, 0))
	m := obs.NewHTTPMetrics(h.reg)
	m.Generation = h.Swaps
	h.metrics = m
	h.mux.HandleFunc("GET /api/search", m.Route("/api/search", h.search))
	h.mux.HandleFunc("GET /api/topics/{id}", m.Route("/api/topics/{id}", h.topic))
	h.mux.HandleFunc("GET /api/topics/{id}/items", m.Route("/api/topics/{id}/items", h.topicItems))
	h.mux.HandleFunc("GET /api/categories/{id}/related", m.Route("/api/categories/{id}/related", h.related))
	h.mux.HandleFunc("GET /api/stats", m.Route("/api/stats", h.stats))
	h.mux.HandleFunc("GET /api/trace", m.Route("/api/trace", h.trace))
	metricsHandler := h.reg.Handler()
	h.mux.HandleFunc("GET /metrics", m.Route("/metrics", func(w http.ResponseWriter, r *http.Request) {
		metricsHandler.ServeHTTP(w, r)
	}))
	h.wrapped = m.WrapMux(h.mux)
	return h, nil
}

func checkBuild(b *core.Build) error {
	if b == nil || b.Taxonomy == nil {
		return fmt.Errorf("serve: nil build")
	}
	// Handlers dereference these on every request; rejecting a partial
	// build here keeps Swap's zero-downtime promise.
	if b.Corpus == nil || b.Entities == nil {
		return fmt.Errorf("serve: build missing corpus or entities")
	}
	return nil
}

// Swap atomically publishes a new build. In-flight requests finish against
// the snapshot they started with; subsequent requests see the new build.
func (h *Handler) Swap(b *core.Build) error {
	if err := checkBuild(b); err != nil {
		return err
	}
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	h.cur.Store(h.newSnapshot(b, h.cur.Load().swaps+1))
	return nil
}

// newSnapshot captures the publish-time window state alongside the
// build and refreshes the gauges derived from it. Publishers call this
// before the window resumes ingesting, so the read is race-free.
func (h *Handler) newSnapshot(b *core.Build, swaps int64) *snapshot {
	s := &snapshot{build: b, swaps: swaps}
	if b.Clicks != nil {
		s.droppedStale = b.Clicks.Stats().DroppedStale
	}
	h.droppedStale.Set(s.droppedStale)
	return s
}

// Current returns the build snapshot requests are being served from.
func (h *Handler) Current() *core.Build { return h.cur.Load().build }

// Swaps returns how many times a new build has been published.
func (h *Handler) Swaps() int64 { return h.cur.Load().swaps }

// Registry exposes the handler's metrics registry so the process can
// register more instruments (shoal-serve's runtime sampler) into the
// same /metrics surface.
func (h *Handler) Registry() *obs.Registry { return h.reg }

// ServeHTTP implements http.Handler; every request passes through the
// obs middleware.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.wrapped.ServeHTTP(w, r) }

// Bare returns the uninstrumented mux — identical routing with the
// middleware layer skipped. It exists for the obs-overhead benchmark
// (instrumented vs. bare request cost); production callers want
// ServeHTTP.
func (h *Handler) Bare() http.Handler { return h.mux }

// TopicSummary is the wire form of a topic reference.
type TopicSummary struct {
	ID          model.TopicID `json:"id"`
	Description string        `json:"description"`
	Level       int           `json:"level"`
	Items       int           `json:"items"`
	Categories  int           `json:"categories"`
	Score       float64       `json:"score,omitempty"`
}

// TopicDetail is the wire form of one topic (scenario B).
type TopicDetail struct {
	TopicSummary
	Queries    []string       `json:"queries"`
	SubTopics  []TopicSummary `json:"subTopics"`
	Categories []CategoryRef  `json:"categoryRefs"`
}

// CategoryRef names a category.
type CategoryRef struct {
	ID   model.CategoryID `json:"id"`
	Name string           `json:"name"`
}

// ItemRef is the wire form of an item.
type ItemRef struct {
	ID       model.ItemID     `json:"id"`
	Title    string           `json:"title"`
	Category model.CategoryID `json:"category"`
}

// RelatedCategory is one Eq. 5 correlation edge (scenario D).
type RelatedCategory struct {
	CategoryRef
	Strength int `json:"strength"`
}

// StageStat is one pipeline stage's timing in the stats payload. Start is
// the offset from pipeline start, so overlap between concurrently executed
// stages is visible.
type StageStat struct {
	Stage     string  `json:"stage"`
	StartMs   float64 `json:"startMs"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// BSPStat is the BSP engine profile in the stats payload, present when
// clustering diffusion ran on the shard-native BSP engine (core
// Config.BSP): total supersteps and message counts across rounds, the
// sender-side combiner hit rate, the per-superstep active-vertex
// trajectory (vote-to-halt makes it collapse as regions converge), and
// the engine-reuse counters — runs served, seeded partial-activation
// runs, rebinds, and the peak bytes of scratch retained across rounds
// by the persistent engine.
type BSPStat struct {
	Supersteps        int     `json:"supersteps"`
	Messages          int64   `json:"messages"`
	Sends             int64   `json:"sends"`
	CombinerHits      int64   `json:"combinerHits"`
	CombinerHitRate   float64 `json:"combinerHitRate"`
	ActivePerStep     []int   `json:"activePerStep"`
	RunsServed        int     `json:"runsServed"`
	SeededRuns        int     `json:"seededRuns"`
	Rebinds           int     `json:"rebinds"`
	PeakRetainedBytes int64   `json:"peakRetainedBytes"`
}

// DeltaStat is the incremental-rebuild section of the stats payload,
// present when the published build came from the delta-driven daily
// path (core Config.Incremental): how much of the window changed and
// how much of the pipeline was actually recomputed.
type DeltaStat struct {
	DirtyItems    int `json:"dirtyItems"`
	DirtyEntities int `json:"dirtyEntities"`
	ChangedEdges  int `json:"changedEdges"`
	DirtyRows     int `json:"dirtyRows"`
	SeededRows    int `json:"seededRows"`
	// ReplayedRounds/ReplayedMerges count the clustering merge rounds
	// (and merges) replayed from the previous build's trajectory;
	// ClusterCold names why clustering ignored the cross-build memo
	// (empty when the warm start engaged).
	ReplayedRounds int    `json:"replayedRounds"`
	ReplayedMerges int    `json:"replayedMerges"`
	ClusterCold    string `json:"clusterCold,omitempty"`
	DenseFallback  bool   `json:"denseFallback"`
	// DroppedStale is the window's cumulative count of stale
	// (already-evicted-day) events dropped at ingestion.
	DroppedStale int64 `json:"droppedStale"`
}

// Stats is the /api/stats payload.
type Stats struct {
	Items        int `json:"items"`
	Queries      int `json:"queries"`
	Categories   int `json:"categories"`
	Entities     int `json:"entities"`
	Topics       int `json:"topics"`
	RootTopics   int `json:"rootTopics"`
	Correlations int `json:"correlations"`
	// Shards is the row-range shard count the build's graph substrate
	// was partitioned into (core.Config.Shards); Workers the resolved
	// clustering worker count and FrontierDensity the resolved
	// frontier-pruning gate — the build configuration that explains the
	// stage timings next to it.
	Shards          int     `json:"shards"`
	Workers         int     `json:"workers"`
	FrontierDensity float64 `json:"frontierDensity"`
	Swaps           int64   `json:"swaps"`
	// BSP reports whether clustering diffusion ran on the BSP engine;
	// the engine profile itself is BSPStats.
	BSP      bool     `json:"bsp"`
	BSPStats *BSPStat `json:"bspStats,omitempty"`
	// Delta is present when the build came from an incremental rebuild.
	Delta  *DeltaStat      `json:"delta,omitempty"`
	Stages []StageStat     `json:"stages"`
	HTTP   obs.HTTPSummary `json:"http"`
}

func (h *Handler) search(w http.ResponseWriter, r *http.Request) {
	b := h.cur.Load().build
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	k := 5
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 || v > 100 {
			httpError(w, http.StatusBadRequest, "k must be an integer in [1,100]")
			return
		}
		k = v
	}
	var hits []taxonomy.Hit
	if b.Searcher != nil {
		hits = b.Searcher.Search(q, k)
	}
	out := make([]TopicSummary, 0, len(hits))
	for _, hit := range hits {
		t := &b.Taxonomy.Topics[hit.Topic]
		out = append(out, summarize(t, hit.Score))
	}
	writeJSON(w, out)
}

func (h *Handler) topic(w http.ResponseWriter, r *http.Request) {
	b := h.cur.Load().build
	t, ok := topicFromPath(w, r, b)
	if !ok {
		return
	}
	detail := TopicDetail{
		TopicSummary: summarize(t, 0),
		Queries:      t.DescQueries,
	}
	for _, c := range t.Children {
		detail.SubTopics = append(detail.SubTopics, summarize(&b.Taxonomy.Topics[c], 0))
	}
	for _, cat := range t.Categories {
		detail.Categories = append(detail.Categories, CategoryRef{
			ID: cat, Name: b.Corpus.Categories[cat].Name,
		})
	}
	writeJSON(w, detail)
}

func (h *Handler) topicItems(w http.ResponseWriter, r *http.Request) {
	b := h.cur.Load().build
	t, ok := topicFromPath(w, r, b)
	if !ok {
		return
	}
	items := t.Items
	if cs := r.URL.Query().Get("category"); cs != "" {
		cat, err := strconv.Atoi(cs)
		if err != nil || cat < 0 || cat >= len(b.Corpus.Categories) {
			httpError(w, http.StatusBadRequest, "unknown category")
			return
		}
		filtered, err := b.Taxonomy.ItemsInCategory(t.ID, model.CategoryID(cat), b.Corpus)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		items = filtered
	}
	out := make([]ItemRef, 0, len(items))
	for _, it := range items {
		item := &b.Corpus.Items[it]
		out = append(out, ItemRef{ID: it, Title: item.Title, Category: item.Category})
	}
	writeJSON(w, out)
}

func (h *Handler) related(w http.ResponseWriter, r *http.Request) {
	b := h.cur.Load().build
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= len(b.Corpus.Categories) {
		httpError(w, http.StatusNotFound, "unknown category")
		return
	}
	var rel []catcorr.Correlation
	if b.Correlations != nil {
		rel = b.Correlations.Related(model.CategoryID(id))
	}
	out := make([]RelatedCategory, 0, len(rel))
	for _, c := range rel {
		other := c.A
		if other == model.CategoryID(id) {
			other = c.B
		}
		out = append(out, RelatedCategory{
			CategoryRef: CategoryRef{ID: other, Name: b.Corpus.Categories[other].Name},
			Strength:    c.Strength,
		})
	}
	writeJSON(w, out)
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	snap := h.cur.Load()
	b := snap.build
	out := Stats{
		Items:           len(b.Corpus.Items),
		Queries:         len(b.Corpus.Queries),
		Categories:      len(b.Corpus.Categories),
		Entities:        len(b.Entities.Entities),
		Topics:          len(b.Taxonomy.Topics),
		RootTopics:      len(b.Taxonomy.Roots()),
		Shards:          b.Shards,
		Workers:         b.Workers,
		FrontierDensity: b.FrontierDensity,
		Swaps:           snap.swaps,
		BSP:             b.BSPEnabled,
		HTTP:            h.metrics.Summary(),
	}
	if b.Correlations != nil {
		out.Correlations = len(b.Correlations.Pairs())
	}
	if b.Delta != nil {
		out.Delta = &DeltaStat{
			DirtyItems:     b.Delta.DirtyItems,
			DirtyEntities:  b.Delta.DirtyEntities,
			ChangedEdges:   b.Delta.ChangedEdges,
			DirtyRows:      b.Delta.DirtyRows,
			SeededRows:     b.Delta.SeededRows,
			ReplayedRounds: b.Delta.ReplayedRounds,
			ReplayedMerges: b.Delta.ReplayedMerges,
			ClusterCold:    b.Delta.ClusterCold,
			DenseFallback:  b.Delta.DenseFallback,
		}
		out.Delta.DroppedStale = snap.droppedStale
	}
	if b.BSPStats != nil {
		out.BSPStats = &BSPStat{
			Supersteps:      b.BSPStats.Supersteps,
			Messages:        b.BSPStats.Messages,
			Sends:           b.BSPStats.Sends,
			CombinerHits:    b.BSPStats.CombinerHits,
			CombinerHitRate: b.BSPStats.CombinerHitRate(),
			ActivePerStep:   b.BSPStats.ActivePerStep,

			RunsServed:        b.BSPStats.RunsServed,
			SeededRuns:        b.BSPStats.SeededRuns,
			Rebinds:           b.BSPStats.Rebinds,
			PeakRetainedBytes: b.BSPStats.PeakRetainedBytes,
		}
	}
	for _, st := range b.StageTimings {
		out.Stages = append(out.Stages, StageStat{
			Stage:     st.Stage,
			StartMs:   float64(st.Start) / float64(time.Millisecond),
			ElapsedMs: float64(st.Elapsed) / float64(time.Millisecond),
		})
	}
	writeJSON(w, out)
}

// trace serves the current build's execution trace as Chrome trace-event
// JSON (load it in chrome://tracing or Perfetto). Swaps change which
// build's trace is served, like every other endpoint.
func (h *Handler) trace(w http.ResponseWriter, r *http.Request) {
	b := h.cur.Load().build
	if b.Trace == nil {
		httpError(w, http.StatusNotFound, "build has no trace")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = b.Trace.WriteChrome(w)
}

func topicFromPath(w http.ResponseWriter, r *http.Request, b *core.Build) (*taxonomy.Topic, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "topic id must be an integer")
		return nil, false
	}
	t, err := b.Taxonomy.Topic(model.TopicID(id))
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return nil, false
	}
	return t, true
}

func summarize(t *taxonomy.Topic, score float64) TopicSummary {
	return TopicSummary{
		ID: t.ID, Description: t.Description, Level: t.Level,
		Items: len(t.Items), Categories: len(t.Categories), Score: score,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers already sent; nothing more we can do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
