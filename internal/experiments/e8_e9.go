package experiments

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"shoal/internal/bsp"
	"shoal/internal/eval"
	"shoal/internal/model"
	"shoal/internal/modularity"
	"shoal/internal/phac"
)

// E8Linkage ablates the Eq. 4 √-size normalization against two alternative
// merge-update rules. The paper asserts the √ normalization ("embedding
// nodes into a two-dimensional space") without measurement; this table
// supplies the comparison.
func E8Linkage(sc Scale, seed uint64) (*Table, error) {
	_, b, err := buildSystem(sc, seed)
	if err != nil {
		return nil, err
	}
	g := b.Graph
	sizes := make([]int, len(b.Entities.Entities))
	truth := make([]model.ScenarioID, len(b.Entities.Entities))
	for i := range sizes {
		sizes[i] = b.Entities.Entities[i].Size()
		truth[i] = b.Entities.Entities[i].Scenario
	}
	t := &Table{
		ID:         "E8",
		Title:      "Linkage ablation: Eq. 4 sqrt-size vs alternatives",
		PaperClaim: "Eq. 4 uses sqrt normalization (no measured comparison in the paper)",
		Header:     []string{"linkage", "merges", "rounds", "modularity", "NMI", "purity"},
	}
	for _, linkage := range []phac.Linkage{
		phac.LinkageSqrtSize, phac.LinkageUnweighted, phac.LinkageSizeProportional,
	} {
		res, err := phac.Cluster(context.Background(), g, sizes, phac.Config{
			StopThreshold: stopTh, DiffusionRounds: 2, Linkage: linkage,
		})
		if err != nil {
			return nil, err
		}
		labels := res.Dendrogram.CutAt(stopTh)
		q, err := modularity.Compute(g, labels)
		if err != nil {
			return nil, err
		}
		part, err := eval.LabelsPartition(labels, truth)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			linkage.String(), itoa(len(res.Dendrogram.Merges)), itoa(len(res.Rounds)),
			f3(q), f3(part.NMI()), f3(part.Purity()),
		})
	}
	t.Notes = append(t.Notes, "extension: this ablation is not in the paper (DESIGN.md 4)")
	return t, nil
}

// E9BSP verifies and profiles the ODPS substitution: the diffusion
// protocol must produce identical matchings on the shared-memory backend
// and the Pregel-style BSP engine, including under chaotic delivery.
func E9BSP(sc Scale, seed uint64) (*Table, error) {
	_, b, err := buildSystem(sc, seed)
	if err != nil {
		return nil, err
	}
	g := b.Graph
	t := &Table{
		ID:         "E9",
		Title:      "BSP engine vs shared-memory diffusion (ODPS substitution check)",
		PaperClaim: "Parallel HAC deployed on the Alibaba distributed graph platform (ODPS)",
		Header:     []string{"r", "backend", "selected", "wall", "identical"},
	}
	for _, r := range []int{0, 1, 2, 3} {
		start := time.Now()
		direct, err := phac.Diffuse(g, r, stopTh, 0)
		if err != nil {
			return nil, err
		}
		directWall := time.Since(start)

		start = time.Now()
		viaBSP, err := phac.DiffuseBSP(g, r, stopTh, bsp.Config{})
		if err != nil {
			return nil, err
		}
		bspWall := time.Since(start)

		chaotic, err := phac.DiffuseBSP(g, r, stopTh, bsp.Config{
			Chaos: &bsp.Chaos{Seed: seed, ShuffleInbox: true},
		})
		if err != nil {
			return nil, err
		}
		same := reflect.DeepEqual(direct, viaBSP) && reflect.DeepEqual(direct, chaotic)
		t.Rows = append(t.Rows,
			[]string{itoa(r), "shared-memory", itoa(len(direct)), directWall.Round(time.Microsecond).String(), ""},
			[]string{itoa(r), "bsp(+chaos)", itoa(len(viaBSP)), bspWall.Round(time.Microsecond).String(), fmt.Sprintf("%v", same)},
		)
		if !same {
			t.Notes = append(t.Notes, fmt.Sprintf("MISMATCH at r=%d", r))
		}
	}
	t.Notes = append(t.Notes, "identical: BSP (with and without chaotic delivery) equals shared-memory result")
	return t, nil
}
