// Beachtrip replays the paper's motivating example (Fig. 1): a user
// searching "beach dress" should not be confined to the Dress category —
// SHOAL's "trip to the beach" topic also surfaces Swimwear, Beach pants,
// Sunglasses and Sunblock, while the ontology-driven taxonomy keeps those
// categories apart.
package main

import (
	"fmt"
	"log"

	"shoal"
)

func main() {
	log.SetFlags(0)

	corpus := shoal.CuratedCorpus()
	cfg := shoal.DefaultConfig()
	cfg.Word2Vec.Epochs = 4
	cfg.Word2Vec.MinCount = 1
	cfg.Graph.MinSimilarity = 0.2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.35, 0.6}
	cfg.CatCorr.MinStrength = 0
	sys, err := shoal.Build(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}

	const query = "beach dress"
	fmt.Printf("user query: %q\n\n", query)

	// Ontology-driven answer (Fig. 1(a)): only the Dress category.
	fmt.Println("ontology-driven taxonomy answers with the Dress category:")
	for _, it := range corpus.Items {
		if corpus.Categories[it.Category].Name == "Dress" {
			fmt.Printf("  - %s\n", it.Title)
		}
	}

	// SHOAL's answer (Fig. 1(b)): the whole shopping scenario.
	hits := sys.SearchTopics(query, 1)
	if len(hits) == 0 {
		log.Fatal("no topic matched the query")
	}
	topic, err := sys.Topic(hits[0].Topic)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSHOAL topic %q spans %d categories:\n", topic.Description, len(topic.Categories))
	for _, cat := range topic.Categories {
		items, err := sys.TopicItems(topic.ID, cat)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s:\n", corpus.Categories[cat].Name)
		for _, it := range items {
			fmt.Printf("    - %s\n", corpus.Items[it].Title)
		}
	}

	// Scenario D: the correlations this topic induces between categories.
	fmt.Println("\ncategory correlations mined from root topics (Eq. 5):")
	for _, p := range sys.CategoryCorrelations() {
		fmt.Printf("  %s <-> %s (strength %d)\n",
			corpus.Categories[p.A].Name, corpus.Categories[p.B].Name, p.Strength)
	}
}
