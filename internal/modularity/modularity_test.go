package modularity

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"shoal/internal/wgraph"
)

// twoTriangles builds two unit-weight triangles joined by one bridge.
func twoTriangles(t testing.TB) *wgraph.Graph {
	t.Helper()
	g := wgraph.New(6)
	edges := [][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}}
	for _, e := range edges {
		if err := g.SetEdge(e[0], e[1], 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestComputeHandValue(t *testing.T) {
	g := twoTriangles(t)
	labels := []int32{0, 0, 0, 1, 1, 1}
	got, err := Compute(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	// m = 7. Cluster 0: within=3, degree=2+2+3=7. Same for cluster 1.
	// Q = 2*(3/7 - (7/14)^2) = 6/7 - 1/2 = 5/14.
	want := 5.0 / 14.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Q = %f, want %f", got, want)
	}
}

func TestComputeAllOneCluster(t *testing.T) {
	g := twoTriangles(t)
	labels := []int32{9, 9, 9, 9, 9, 9}
	got, err := Compute(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Single cluster: Q = m/m - (2m/2m)^2 = 0.
	if math.Abs(got) > 1e-12 {
		t.Fatalf("Q(single cluster) = %f, want 0", got)
	}
}

func TestComputeSingletons(t *testing.T) {
	g := twoTriangles(t)
	labels := []int32{0, 1, 2, 3, 4, 5}
	got, err := Compute(g, labels)
	if err != nil {
		t.Fatal(err)
	}
	if got >= 0 {
		t.Fatalf("Q(singletons) = %f, want negative", got)
	}
}

func TestGoodPartitionBeatsBad(t *testing.T) {
	g := twoTriangles(t)
	good, err := Compute(g, []int32{0, 0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	bad, err := Compute(g, []int32{0, 1, 0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if good <= bad {
		t.Fatalf("good partition Q=%f not above bad Q=%f", good, bad)
	}
}

func TestComputeWeighted(t *testing.T) {
	g := wgraph.New(4)
	_ = g.SetEdge(0, 1, 10)
	_ = g.SetEdge(2, 3, 10)
	_ = g.SetEdge(1, 2, 0.1)
	q, err := Compute(g, []int32{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.4 {
		t.Fatalf("strongly separated weighted graph Q = %f, want > 0.4", q)
	}
}

func TestComputeErrors(t *testing.T) {
	g := twoTriangles(t)
	if _, err := Compute(g, []int32{0, 0}); err == nil {
		t.Fatal("wrong label length accepted")
	}
	empty := wgraph.New(3)
	if _, err := Compute(empty, []int32{0, 1, 2}); err == nil {
		t.Fatal("edgeless graph accepted")
	}
}

// Property: Q is always within [-1, 1] for random graphs and labelings.
func TestComputeBoundedProperty(t *testing.T) {
	f := func(seed uint64, k uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		const n = 20
		g := wgraph.New(n)
		for v := 1; v < n; v++ {
			_ = g.SetEdge(int32(rng.IntN(v)), int32(v), rng.Float64()+0.01)
		}
		labels := make([]int32, n)
		groups := int32(k%5) + 1
		for i := range labels {
			labels[i] = int32(rng.IntN(int(groups)))
		}
		q, err := Compute(g, labels)
		return err == nil && q >= -1 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
