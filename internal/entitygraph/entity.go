// Package entitygraph builds the item entity graph of paper §2.1.
//
// Items with near-equivalent attribute labels and price are grouped into
// *item entities* (the graph's vertices). Edges carry the blended
// similarity of Eq. 3: S = α·Sq + (1−α)·Sc, where Sq is the Jaccard
// similarity of the entities' query sets (Eq. 1) and Sc is the
// content-driven similarity of their title word embeddings (Eq. 2).
// Low-similarity edges are filtered out, which is exactly why downstream
// HAC must cope with a sparse similarity matrix (the paper's Challenge 1).
package entitygraph

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"shoal/internal/model"
	"shoal/internal/textutil"
)

// Entity is one vertex of the item entity graph: a group of items with the
// same category, attribute labels and price band.
type Entity struct {
	ID    model.EntityID
	Items []model.ItemID
	// Category is the (shared) leaf category of the member items.
	Category model.CategoryID
	// Scenario is the majority ground-truth label of members, or
	// model.NoScenario when unknown. Used only by evaluation.
	Scenario model.ScenarioID
	// Tokens is the multiset of title tokens across member items.
	Tokens []string
}

// Size returns the number of member items (the n_A of Eq. 4).
func (e *Entity) Size() int { return len(e.Items) }

// EntitySet is the result of entity formation: entities plus the
// item-to-entity mapping.
type EntitySet struct {
	Entities []Entity
	// ItemEntity maps every item id to its entity id.
	ItemEntity []model.EntityID
}

// priceBandWidth controls "near-equivalent price": prices within the same
// multiplicative band of width 2x group together (band = floor(log2(price
// in dollars))). Quantization necessarily splits some near pairs at band
// boundaries; a 2x width keeps that rare.
const priceBandWidth = 2.0

func priceBand(cents int64) int {
	if cents < 100 {
		return 0
	}
	band := 1
	v := float64(cents)
	for v >= priceBandWidth*100 {
		v /= priceBandWidth
		band++
	}
	return band
}

// BuildEntities groups corpus items into entities by (category, sorted
// attribute labels, price band). Singleton groups are normal: entity
// formation is a dedup step, not clustering. Cancellation is checked
// between grouping passes.
func BuildEntities(ctx context.Context, c *model.Corpus) (*EntitySet, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("entitygraph: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	type key struct {
		cat   model.CategoryID
		attrs string
		band  int
	}
	groups := make(map[key][]model.ItemID)
	for i := range c.Items {
		it := &c.Items[i]
		attrs := append([]string(nil), it.Attrs...)
		sort.Strings(attrs)
		k := key{cat: it.Category, attrs: strings.Join(attrs, "\x1f"), band: priceBand(it.PriceCents)}
		groups[k] = append(groups[k], it.ID)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Deterministic entity ids: sort groups by their smallest item id.
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return groups[keys[a]][0] < groups[keys[b]][0] })

	es := &EntitySet{ItemEntity: make([]model.EntityID, len(c.Items))}
	for _, k := range keys {
		items := groups[k]
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		id := model.EntityID(len(es.Entities))
		ent := Entity{ID: id, Items: items, Category: k.cat}
		scen := make(map[model.ScenarioID]int)
		for _, it := range items {
			es.ItemEntity[it] = id
			ent.Tokens = append(ent.Tokens, textutil.Tokenize(c.Items[it].Title)...)
			scen[c.Items[it].Scenario]++
		}
		ent.Scenario = majorityScenario(scen)
		es.Entities = append(es.Entities, ent)
	}
	return es, nil
}

func majorityScenario(counts map[model.ScenarioID]int) model.ScenarioID {
	best, bestN := model.NoScenario, 0
	ids := make([]model.ScenarioID, 0, len(counts))
	for s := range counts {
		ids = append(ids, s)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, s := range ids {
		if s == model.NoScenario {
			continue
		}
		if counts[s] > bestN {
			best, bestN = s, counts[s]
		}
	}
	return best
}
