package shard

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"testing"

	"shoal/internal/wgraph"
)

// randomSegGraph builds a random canonical edge list over n nodes.
func randomSegGraph(t testing.TB, n, m int, seed uint64) *wgraph.CSR {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, 0xE))
	g := wgraph.New(n)
	for i := 0; i < m; i++ {
		u := int32(rng.IntN(n))
		v := int32(rng.IntN(n))
		if u == v {
			continue
		}
		if err := g.SetEdge(u, v, 0.05+0.95*rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return g.Freeze()
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7} {
		sc := Partition(randomSegGraph(t, 60, 240, uint64(shards)), shards)
		segs := sc.Segments()
		if len(segs) != sc.NumShards() {
			t.Fatalf("shards=%d: %d segments", shards, len(segs))
		}
		for i, seg := range segs {
			data := seg.Encode()
			dec, err := DecodeSegment(data)
			if err != nil {
				t.Fatalf("shards=%d seg %d: decode: %v", shards, i, err)
			}
			if !reflect.DeepEqual(normalize(seg), normalize(dec)) {
				t.Fatalf("shards=%d seg %d: decoded segment differs", shards, i)
			}
			re := dec.Encode()
			if !bytes.Equal(data, re) {
				t.Fatalf("shards=%d seg %d: re-encoding differs (%d vs %d bytes)", shards, i, len(data), len(re))
			}
			// Encoding is deterministic: a second encode of the original
			// is byte-identical too.
			if !bytes.Equal(data, seg.Encode()) {
				t.Fatalf("shards=%d seg %d: Encode is not deterministic", shards, i)
			}
		}
	}
}

// normalize maps nil and empty slices together: the wire format cannot
// distinguish them and DeepEqual should not either.
func normalize(s *Segment) *Segment {
	c := *s
	if len(c.Nbrs) == 0 {
		c.Nbrs = nil
	}
	if len(c.Wts) == 0 {
		c.Wts = nil
	}
	if len(c.Ghosts) == 0 {
		c.Ghosts = nil
	}
	return &c
}

// Segments must agree with the base CSR row for row, and ghost tables
// must name exactly the foreign neighbors.
func TestSegmentsMatchBase(t *testing.T) {
	base := randomSegGraph(t, 80, 300, 9)
	sc := Partition(base, 4)
	offsets, nbrs, wts := base.Adj()
	for _, seg := range sc.Segments() {
		for u := seg.Lo(); u < seg.Hi(); u++ {
			sn, sw := seg.Row(u)
			wantN := nbrs[offsets[u]:offsets[u+1]]
			wantW := wts[offsets[u]:offsets[u+1]]
			if !reflect.DeepEqual(append([]int32{}, sn...), append([]int32{}, wantN...)) {
				t.Fatalf("row %d neighbors differ", u)
			}
			if !reflect.DeepEqual(append([]float64{}, sw...), append([]float64{}, wantW...)) {
				t.Fatalf("row %d weights differ", u)
			}
			for _, v := range sn {
				foreign := v < seg.Lo() || v >= seg.Hi()
				inGhosts := false
				for _, g := range seg.Ghosts {
					if g == v {
						inGhosts = true
					}
				}
				if foreign != inGhosts {
					t.Fatalf("row %d neighbor %d: foreign=%v ghost=%v", u, v, foreign, inGhosts)
				}
			}
		}
	}
}

func TestDecodeSegmentRejectsCorrupt(t *testing.T) {
	sc := Partition(randomSegGraph(t, 30, 90, 3), 3)
	good := sc.Segments()[1].Encode()
	if _, err := DecodeSegment(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := DecodeSegment(good[:len(good)-3]); err == nil {
		t.Fatal("truncated input accepted")
	}
	if _, err := DecodeSegment(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := DecodeSegment(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Flip the shard id past the plan width.
	bad = append([]byte{}, good...)
	bad[4] = 0xFF
	if _, err := DecodeSegment(bad); err == nil {
		t.Fatal("out-of-range shard id accepted")
	}
}

// FuzzSegmentDecode drives DecodeSegment with arbitrary bytes: it must
// never panic, and any input it accepts must re-encode byte-identically
// (the round-trip invariant the BSP placement layer relies on).
func FuzzSegmentDecode(f *testing.F) {
	for _, shards := range []int{1, 2, 4} {
		sc := Partition(randomSegGraph(f, 40, 160, uint64(shards)+11), shards)
		for _, seg := range sc.Segments() {
			f.Add(seg.Encode())
		}
	}
	f.Add([]byte{'S', 'S', 'G', '1'})
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := DecodeSegment(data)
		if err != nil {
			return
		}
		if !bytes.Equal(seg.Encode(), data) {
			t.Fatalf("accepted input does not round-trip byte-identically")
		}
	})
}
