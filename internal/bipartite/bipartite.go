// Package bipartite implements the query-item bipartite click graph of
// paper Fig. 2. It ingests click events, retains a sliding window of the
// last W days (the production system uses seven), and answers the two
// questions SHOAL asks of it:
//
//   - which queries are associated with an item (for Eq. 1's Jaccard), and
//   - which item pairs share at least one query (candidate generation, so
//     the entity graph never considers all O(V²) pairs).
package bipartite

import (
	"fmt"
	"sort"

	"shoal/internal/model"
)

// Graph is the bipartite click graph over a sliding day window.
type Graph struct {
	windowDays int32
	maxDay     int32
	// clicks[day] holds the events ingested for that day, keyed by day
	// modulo nothing (sparse map: day -> events) so eviction is O(events
	// of the evicted days).
	byDay map[int32][]model.ClickEvent

	// Aggregated state over the current window.
	queryItems map[model.QueryID]map[model.ItemID]int32
	itemQuery  map[model.ItemID]map[model.QueryID]int32
	dirty      bool

	// changed accumulates items whose query-set MEMBERSHIP changed since
	// the last TakeChangedItems drain: an (item, query) pair count crossed
	// zero in either direction, from ingestion or eviction. Count-only
	// changes (a pair going 3 -> 5 clicks) do not alter QuerySet and are
	// deliberately not tracked — nothing downstream of the click graph
	// reads raw counts.
	changed map[model.ItemID]struct{}

	// droppedStale counts clicks discarded because they arrived for a day
	// already evicted from the window (late-arriving data). Diagnostic
	// only: it never affects aggregate state.
	droppedStale int64
}

// New creates a click graph retaining the most recent windowDays days.
// windowDays <= 0 means unlimited retention.
func New(windowDays int) *Graph {
	return &Graph{
		windowDays: int32(windowDays),
		maxDay:     -1,
		byDay:      make(map[int32][]model.ClickEvent),
		queryItems: make(map[model.QueryID]map[model.ItemID]int32),
		itemQuery:  make(map[model.ItemID]map[model.QueryID]int32),
		changed:    make(map[model.ItemID]struct{}),
	}
}

// Add ingests one click event and evicts days that fall out of the window.
func (g *Graph) Add(ev model.ClickEvent) error {
	if ev.Count <= 0 {
		return fmt.Errorf("bipartite: non-positive click count %d", ev.Count)
	}
	if ev.Day < 0 {
		return fmt.Errorf("bipartite: negative day %d", ev.Day)
	}
	if g.windowDays > 0 && g.maxDay >= 0 && ev.Day <= g.maxDay-g.windowDays {
		// Click older than the window: late-arriving data for a day
		// already evicted. Dropping it is correct (replaying it would
		// resurrect an expired day) but operators need to see it happen.
		g.droppedStale++
		return nil
	}
	g.byDay[ev.Day] = append(g.byDay[ev.Day], ev)
	g.apply(ev, +1)
	if ev.Day > g.maxDay {
		g.maxDay = ev.Day
		g.evict()
	}
	return nil
}

// AddAll ingests a batch of events with a single eviction pass at the end,
// instead of re-running the evict scan on every per-event max-day bump.
// The batch is validated up front, so on error no event has been applied
// (stricter than the old per-event loop, which applied a prefix). Events
// older than the window implied by the batch's own newest day are dropped
// before application; the final aggregate state is identical to sequential
// Add calls (eviction removes whole days either way), though droppedStale
// may count transiently-applied-then-evicted events that a sequential
// replay would have silently aged out instead.
func (g *Graph) AddAll(evs []model.ClickEvent) error {
	batchMax := int32(-1)
	for i := range evs {
		ev := &evs[i]
		if ev.Count <= 0 {
			return fmt.Errorf("bipartite: non-positive click count %d", ev.Count)
		}
		if ev.Day < 0 {
			return fmt.Errorf("bipartite: negative day %d", ev.Day)
		}
		if ev.Day > batchMax {
			batchMax = ev.Day
		}
	}
	if len(evs) == 0 {
		return nil
	}
	effMax := g.maxDay
	if batchMax > effMax {
		effMax = batchMax
	}
	cutoff := int32(-1)
	if g.windowDays > 0 && effMax >= 0 {
		cutoff = effMax - g.windowDays
	}
	for _, ev := range evs {
		if g.windowDays > 0 && ev.Day <= cutoff {
			g.droppedStale++
			continue
		}
		g.byDay[ev.Day] = append(g.byDay[ev.Day], ev)
		g.apply(ev, +1)
	}
	if batchMax > g.maxDay {
		g.maxDay = batchMax
		g.evict()
	}
	return nil
}

func (g *Graph) apply(ev model.ClickEvent, sign int32) {
	qi := g.queryItems[ev.Query]
	if qi == nil {
		qi = make(map[model.ItemID]int32)
		g.queryItems[ev.Query] = qi
	}
	qi[ev.Item] += sign * ev.Count
	if qi[ev.Item] <= 0 {
		delete(qi, ev.Item)
		if len(qi) == 0 {
			delete(g.queryItems, ev.Query)
		}
	}
	iq := g.itemQuery[ev.Item]
	if iq == nil {
		iq = make(map[model.QueryID]int32)
		g.itemQuery[ev.Item] = iq
	}
	before := len(iq)
	iq[ev.Query] += sign * ev.Count
	if iq[ev.Query] <= 0 {
		delete(iq, ev.Query)
		if len(iq) == 0 {
			delete(g.itemQuery, ev.Item)
		}
	}
	if len(iq) != before {
		// The item's query set gained or lost a member: its downstream
		// similarity rows may change.
		g.changed[ev.Item] = struct{}{}
	}
}

// TakeChangedItems drains and returns the set of items whose query sets
// changed membership since the previous drain (or since New), sorted.
// Callers use it to scope incremental rebuilds; a freshly drained graph
// accumulates from empty again.
func (g *Graph) TakeChangedItems() []model.ItemID {
	if len(g.changed) == 0 {
		return nil
	}
	out := make([]model.ItemID, 0, len(g.changed))
	for it := range g.changed {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	g.changed = make(map[model.ItemID]struct{})
	return out
}

// WindowStats is a point-in-time summary of the sliding window.
type WindowStats struct {
	Queries      int   // queries with at least one in-window click
	Items        int   // items with at least one in-window click
	MaxDay       int32 // newest day seen, -1 if empty
	DroppedStale int64 // late clicks discarded for already-evicted days
}

// Stats returns the current window summary.
func (g *Graph) Stats() WindowStats {
	return WindowStats{
		Queries:      len(g.queryItems),
		Items:        len(g.itemQuery),
		MaxDay:       g.maxDay,
		DroppedStale: g.droppedStale,
	}
}

// evict drops whole days that fell out of the window.
func (g *Graph) evict() {
	if g.windowDays <= 0 {
		return
	}
	cutoff := g.maxDay - g.windowDays // days <= cutoff are expired
	for day, evs := range g.byDay {
		if day <= cutoff {
			for _, ev := range evs {
				g.apply(ev, -1)
			}
			delete(g.byDay, day)
		}
	}
}

// MaxDay returns the newest day seen, or -1 if empty.
func (g *Graph) MaxDay() int32 { return g.maxDay }

// Queries returns the number of queries with at least one in-window click.
func (g *Graph) Queries() int { return len(g.queryItems) }

// Items returns the number of items with at least one in-window click.
func (g *Graph) Items() int { return len(g.itemQuery) }

// QuerySet returns the ids of queries that clicked into item, sorted.
func (g *Graph) QuerySet(item model.ItemID) []model.QueryID {
	m := g.itemQuery[item]
	out := make([]model.QueryID, 0, len(m))
	for q := range m {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ItemSet returns the ids of items clicked from query, sorted.
func (g *Graph) ItemSet(query model.QueryID) []model.ItemID {
	m := g.queryItems[query]
	out := make([]model.ItemID, 0, len(m))
	for it := range m {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClickCount returns the in-window click mass between query and item.
func (g *Graph) ClickCount(query model.QueryID, item model.ItemID) int32 {
	return g.queryItems[query][item]
}

// QueryDegree returns |items| clicked from the query.
func (g *Graph) QueryDegree(query model.QueryID) int { return len(g.queryItems[query]) }

// ItemDegree returns |queries| that clicked into the item.
func (g *Graph) ItemDegree(item model.ItemID) int { return len(g.itemQuery[item]) }

// Jaccard computes Eq. 1: |Qu ∩ Qv| / |Qu ∪ Qv| over the query sets of two
// items. Items with no queries yield 0.
func (g *Graph) Jaccard(u, v model.ItemID) float64 {
	qu, qv := g.itemQuery[u], g.itemQuery[v]
	if len(qu) == 0 || len(qv) == 0 {
		return 0
	}
	if len(qv) < len(qu) {
		qu, qv = qv, qu
	}
	inter := 0
	for q := range qu {
		if _, ok := qv[q]; ok {
			inter++
		}
	}
	union := len(qu) + len(qv) - inter
	return float64(inter) / float64(union)
}

// Pair is an unordered item pair with its query-set intersection size.
type Pair struct {
	U, V  model.ItemID // U < V
	Inter int32        // |Qu ∩ Qv|
}

// CoClickPairs enumerates all item pairs that share at least one query,
// with intersection counts — the candidate edges of the entity graph.
// Queries whose item fan-out exceeds maxFanout are skipped (head queries
// like "dress" would otherwise contribute O(fanout²) pairs while carrying
// little discriminative signal); maxFanout <= 0 disables the cap.
// The result is sorted by (U, V).
func (g *Graph) CoClickPairs(maxFanout int) []Pair {
	counts := make(map[[2]model.ItemID]int32)
	for _, items := range g.queryItems {
		if maxFanout > 0 && len(items) > maxFanout {
			continue
		}
		ids := make([]model.ItemID, 0, len(items))
		for it := range items {
			ids = append(ids, it)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				counts[[2]model.ItemID{ids[i], ids[j]}]++
			}
		}
	}
	out := make([]Pair, 0, len(counts))
	for k, c := range counts {
		out = append(out, Pair{U: k[0], V: k[1], Inter: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
