package core

import (
	"reflect"
	"testing"

	"shoal/internal/eval"
	"shoal/internal/model"
	"shoal/internal/synth"
	"shoal/internal/taxonomy"
	"shoal/internal/word2vec"
)

// testConfig is a fast pipeline configuration for small corpora.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Word2Vec.Epochs = 2
	cfg.Word2Vec.Dim = 16
	cfg.Word2Vec.MinCount = 1
	cfg.Graph.MinSimilarity = 0.25
	return cfg
}

func smallCorpus(t *testing.T) *model.Corpus {
	t.Helper()
	gen := synth.DefaultConfig()
	gen.Scenarios = 8
	gen.ItemsPerScenario = 60
	gen.QueriesPerScenario = 15
	gen.NoiseItems = 30
	gen.HeadQueries = 6
	c, err := synth.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunEndToEnd(t *testing.T) {
	corpus := smallCorpus(t)
	b, err := Run(corpus, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b.Graph.NumEdges() == 0 {
		t.Fatal("entity graph has no edges")
	}
	if len(b.Dendrogram.Merges) == 0 {
		t.Fatal("no merges")
	}
	if len(b.Taxonomy.Topics) == 0 {
		t.Fatal("no topics")
	}
	if err := b.Taxonomy.Validate(); err != nil {
		t.Fatalf("invalid taxonomy: %v", err)
	}
	if len(b.StageTimings) < 7 {
		t.Fatalf("stage timings = %v, want >= 7 stages", b.StageTimings)
	}
	// The taxonomy should recover scenarios with high precision.
	res, err := eval.Precision(b.Taxonomy, corpus, eval.PrecisionConfig{
		SampleTopics: 0, ItemsPerTopic: 0, MinTopicItems: 3, RootTopicsOnly: true, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision < 0.9 {
		t.Fatalf("precision = %.3f, want >= 0.9 on easy synthetic corpus", res.Precision)
	}
}

func TestRunDescriptionsPopulated(t *testing.T) {
	corpus := smallCorpus(t)
	b, err := Run(corpus, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	withDesc := 0
	for i := range b.Taxonomy.Topics {
		if b.Taxonomy.Topics[i].Description != "" {
			withDesc++
		}
	}
	if withDesc < len(b.Taxonomy.Topics)/2 {
		t.Fatalf("only %d/%d topics described", withDesc, len(b.Taxonomy.Topics))
	}
}

func TestRunSearchFindsScenarioTopic(t *testing.T) {
	corpus := smallCorpus(t)
	b, err := Run(corpus, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b.Searcher == nil {
		t.Fatal("no searcher built")
	}
	// Search with a scenario query; the top hit should be a topic whose
	// majority scenario matches.
	checked := 0
	correct := 0
	for qi := range corpus.Queries {
		q := &corpus.Queries[qi]
		if q.Scenario == model.NoScenario {
			continue
		}
		hits := b.Searcher.Search(q.Text, 1)
		if len(hits) == 0 {
			continue
		}
		checked++
		tp := &b.Taxonomy.Topics[hits[0].Topic]
		counts := map[model.ScenarioID]int{}
		for _, it := range tp.Items {
			counts[corpus.Items[it].Scenario]++
		}
		best, bestN := model.NoScenario, -1
		for s, n := range counts {
			if n > bestN {
				best, bestN = s, n
			}
		}
		if best == q.Scenario {
			correct++
		}
		if checked >= 60 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no queries produced hits")
	}
	if float64(correct)/float64(checked) < 0.7 {
		t.Fatalf("query->topic accuracy %d/%d below 0.7", correct, checked)
	}
}

func TestRunWithoutEmbeddings(t *testing.T) {
	corpus := smallCorpus(t)
	cfg := testConfig()
	cfg.TrainEmbeddings = false
	b, err := Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Embeddings != nil {
		t.Fatal("embeddings trained despite TrainEmbeddings=false")
	}
	if len(b.Taxonomy.Topics) == 0 {
		t.Fatal("no topics without embeddings")
	}
}

func TestRunInvalidCorpus(t *testing.T) {
	bad := &model.Corpus{Items: []model.Item{{ID: 3}}}
	if _, err := Run(bad, testConfig()); err == nil {
		t.Fatal("invalid corpus accepted")
	}
}

func TestRunInvalidStageConfigSurfacesStage(t *testing.T) {
	corpus := smallCorpus(t)
	cfg := testConfig()
	cfg.Word2Vec = word2vec.Config{} // invalid: zero Dim
	if _, err := Run(corpus, cfg); err == nil {
		t.Fatal("invalid word2vec config accepted")
	}
}

func TestRunCuratedBeachScenario(t *testing.T) {
	// The Fig. 1(b) case: on the curated corpus the beach topic must
	// span multiple ontology categories.
	corpus := synth.Curated()
	cfg := testConfig()
	cfg.Graph.MinSimilarity = 0.2
	cfg.HAC.StopThreshold = 0.25
	cfg.Taxonomy.Levels = []float64{0.25, 0.5}
	b, err := Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, root := range b.Taxonomy.Roots() {
		tp := &b.Taxonomy.Topics[root]
		counts := map[model.ScenarioID]int{}
		for _, it := range tp.Items {
			counts[corpus.Items[it].Scenario]++
		}
		if counts[0] >= 6 && len(tp.Categories) >= 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no cross-category beach topic found; roots: %v", b.Taxonomy.Roots())
	}
	_ = taxonomy.NoTopic
}

// Routing diffusion through the BSP engine (Config.BSP) must leave the
// build byte-identical and record the engine profile.
func TestRunBSPPathIdentical(t *testing.T) {
	corpus := smallCorpus(t)
	cfg := testConfig()
	base, err := Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.BSPStats != nil {
		t.Fatal("shared-memory build reported BSP stats")
	}
	cfg.BSP = true
	viaBSP, err := Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if viaBSP.BSPStats == nil || viaBSP.BSPStats.Supersteps == 0 {
		t.Fatalf("BSP build did not record engine stats: %+v", viaBSP.BSPStats)
	}
	if !reflect.DeepEqual(base.Dendrogram, viaBSP.Dendrogram) {
		t.Fatal("BSP path changed the dendrogram")
	}
	if !reflect.DeepEqual(base.Taxonomy, viaBSP.Taxonomy) {
		t.Fatal("BSP path changed the taxonomy")
	}
	if !reflect.DeepEqual(base.Rounds, viaBSP.Rounds) {
		t.Fatal("BSP path changed the round stats")
	}
}
