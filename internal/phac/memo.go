package phac

import (
	"context"

	"shoal/internal/wgraph"
)

// Memo is the cross-build clustering cache behind incremental daily
// rebuilds. Its head is a snapshot of round 0's fully-diffused state —
// every node's per-level best-known edge, per-row edge count and best
// incident edge — taken over the original (pre-merge) graph; a later
// clustering over a graph that differs from the snapshot's only in a
// known set of rows seeds its round 0 from the memo and recomputes just
// those rows plus the ripple of value changes. Its tail is the build's
// merge trajectory (see memoRound): per merge round, the selected
// matching, the post-merge contracted CSR and the next round's diffused
// cascade, which lets the warm build prove-and-replay the whole merge
// prefix for subtrees the delta never touches instead of recomputing
// it. A Memo is immutable once returned and safe to retain (and reuse)
// after the clustering that produced it ends.
type Memo struct {
	n         int
	rounds    int
	threshold float64
	levels    [][]edgeRef
	edgeCnt   []int64
	bests     []edgeRef
	// Trajectory-replay fields: the merge prefix depends on the linkage
	// rule and the leaf sizes (diffusion does not), so both are part of
	// the replay eligibility check — a mismatch degrades to the
	// round-0-only seed, never to a wrong replay.
	linkage Linkage
	sizes   []float64
	traj    []memoRound
}

// Compatible reports whether the memo can seed a clustering of an
// n-node graph under cfg: same node count, diffusion rounds and stop
// threshold — the three inputs the snapshotted values depend on beyond
// the graph itself (adjacency drift is what dirtyRows declares). UseBSP
// is deliberately not part of the key: both execution paths produce
// byte-identical diffusion state, so a memo captured by either warms
// the other.
func (m *Memo) Compatible(n int, cfg Config) bool {
	return m.IncompatibleReason(n, cfg) == ""
}

// IncompatibleReason reports why the memo cannot seed a clustering of
// an n-node graph under cfg — the empty string when it can. The reasons
// ("no-memo", "node-count", "diffusion-rounds", "stop-threshold") are
// stable identifiers surfaced through core.Build.Delta and the refresh
// log, so an always-cold production rebuild loop is diagnosable instead
// of silently slow.
func (m *Memo) IncompatibleReason(n int, cfg Config) string {
	switch {
	case m == nil:
		return "no-memo"
	case m.n != n:
		return "node-count"
	case m.rounds != cfg.DiffusionRounds:
		return "diffusion-rounds"
	case m.threshold != cfg.StopThreshold:
		return "stop-threshold"
	}
	return ""
}

// ClusterWarm is Cluster with cross-build memoization: prev — captured
// by an earlier ClusterWarm over a graph differing from g only in
// dirtyRows' adjacency — seeds round 0's diffusion so only the dirty
// rows and the neighborhoods their value changes reach are recomputed,
// and replays the previous build's merge trajectory round by round for
// as long as taint propagation proves the selection unchanged (see the
// package comment's warm-start invariants). The returned Memo snapshots
// this build for the next one. An incompatible or nil prev runs the
// ordinary cold start (still capturing a Memo). The Result is
// byte-identical to Cluster's for every seed, locked by
// TestClusterWarmMatchesCold and TestClusterWarmDirtyShapes.
func ClusterWarm(ctx context.Context, g wgraph.View, sizes []int, cfg Config, prev *Memo, dirtyRows []int32) (*Result, *Memo, error) {
	return cluster(ctx, g, sizes, cfg, prev, dirtyRows, true)
}

// captureMemo deep-copies the first n rows of the diffusion cascade.
// Called right after round 0's diffusion+selection, before any merge
// mints ids or overwrites levels, so the snapshot describes the
// original graph — including on a warm build, where rows the seed left
// untouched hold exactly what a cold round 0 would have computed.
func (st *state) captureMemo(cfg Config) *Memo {
	n := st.total
	m := &Memo{
		n: n, rounds: cfg.DiffusionRounds, threshold: cfg.StopThreshold,
		levels:  make([][]edgeRef, len(st.exStates)),
		edgeCnt: append([]int64(nil), st.edgeCnt[:n]...),
		bests:   append([]edgeRef(nil), st.bests[:n]...),
		linkage: cfg.Linkage,
		sizes:   append([]float64(nil), st.size[:n]...),
	}
	for it := range st.exStates {
		m.levels[it] = append([]edgeRef(nil), st.exStates[it][:n]...)
	}
	return m
}

// seedFromMemo installs a compatible previous-build snapshot as the
// "last round" the memoized diffusion continues from: levels, edge
// counts and best-incident edges for every row, with dirtyRows as the
// explicit worklist — exactly the state a merge round leaves behind, so
// round 0 runs the existing dirty-list init and frontier-pruned
// exchange iterations unchanged. On the BSP path it additionally
// reconstructs the running aggregates RunFrom maintains incrementally —
// the edge total and the global-best heap — and forces the first
// selection dense: the sparse changed-rows contract ("an unchanged
// mutual pair was selected and retired last round") holds within one
// clustering but not across builds, where the previous build's merged
// pairs are alive again with unchanged final levels.
func (st *state) seedFromMemo(m *Memo, dirtyRows []int32, useBSP bool) {
	n := st.total
	for it := range st.exStates {
		copy(st.exStates[it][:n], m.levels[it])
	}
	copy(st.edgeCnt[:n], m.edgeCnt)
	copy(st.bests[:n], m.bests)
	st.haveCache = true
	if n > len(st.dirty) {
		// One sized re-slice; the appended stamps must be zero (clean),
		// which append-of-a-fresh-slice guarantees.
		st.dirty = append(st.dirty, make([]uint32, n-len(st.dirty))...)
	}
	st.dirtyList = append(st.dirtyList[:0], dirtyRows...)
	for _, u := range dirtyRows {
		st.dirty[u] = st.dirtyEpoch
	}
	if !useBSP {
		return
	}
	st.forceDense = true
	var total int64
	for u := int32(0); int(u) < n; u++ {
		total += st.edgeCnt[u]
		if st.bests[u] != noEdge {
			st.bspHeapPush(u)
		}
	}
	st.bspActiveEdges = total
}
