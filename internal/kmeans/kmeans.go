// Package kmeans implements spherical k-means over dense float32 vectors.
//
// The paper's Related Studies position SHOAL against clustering methods
// that "learn the representation of terms and then organize them into a
// structure based on the representation similarity" (TaxoGen and kin).
// This package is that family's representative baseline: cluster item
// entities purely by their title-embedding vectors, ignoring the query
// coalition signal. Experiment E10 compares it with Parallel HAC.
package kmeans

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Config controls clustering.
type Config struct {
	// K is the number of clusters.
	K int
	// MaxIters bounds Lloyd iterations.
	MaxIters int
	// Seed drives k-means++ initialization.
	Seed uint64
	// Tolerance stops early when the fraction of points changing
	// assignment drops below it.
	Tolerance float64
}

// DefaultConfig runs up to 50 iterations with a 0.1% movement tolerance.
func DefaultConfig(k int) Config {
	return Config{K: k, MaxIters: 50, Seed: 1, Tolerance: 0.001}
}

// Result is a clustering outcome.
type Result struct {
	// Assign[i] is the cluster of point i in [0, K).
	Assign []int32
	// Centroids are the final unit-normalized cluster centers.
	Centroids [][]float32
	// Iters is the number of Lloyd iterations executed.
	Iters int
}

// Cluster partitions points (each a vector of equal dimension) into K
// clusters by cosine similarity (spherical k-means with k-means++ seeding).
// Nil or zero vectors are assigned to cluster 0 and ignored during
// centroid updates.
func Cluster(points [][]float32, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("kmeans: no points")
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("kmeans: K=%d outside [1,%d]", cfg.K, n)
	}
	if cfg.MaxIters <= 0 {
		return nil, fmt.Errorf("kmeans: MaxIters must be positive")
	}
	dim := 0
	for _, p := range points {
		if p != nil {
			dim = len(p)
			break
		}
	}
	if dim == 0 {
		return nil, fmt.Errorf("kmeans: all points are nil")
	}
	for i, p := range points {
		if p != nil && len(p) != dim {
			return nil, fmt.Errorf("kmeans: point %d has dim %d, want %d", i, len(p), dim)
		}
	}

	// Unit-normalize a copy of the inputs.
	normed := make([][]float32, n)
	for i, p := range points {
		normed[i] = normalize(p)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x4B4D))
	centroids := seedPlusPlus(normed, cfg.K, rng)

	assign := make([]int32, n)
	res := &Result{Assign: assign}
	for iter := 0; iter < cfg.MaxIters; iter++ {
		res.Iters = iter + 1
		moved := 0
		for i, p := range normed {
			if p == nil {
				assign[i] = 0
				continue
			}
			best, bestSim := int32(0), math.Inf(-1)
			for c, cent := range centroids {
				s := dot(p, cent)
				if s > bestSim {
					best, bestSim = int32(c), s
				}
			}
			if assign[i] != best {
				moved++
				assign[i] = best
			}
		}
		// Update centroids.
		sums := make([][]float64, cfg.K)
		counts := make([]int, cfg.K)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range normed {
			if p == nil {
				continue
			}
			c := assign[i]
			counts[c]++
			for d, v := range p {
				sums[c][d] += float64(v)
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: reseed from a random point.
				centroids[c] = reseed(normed, rng)
				continue
			}
			nc := make([]float32, dim)
			for d := range nc {
				nc[d] = float32(sums[c][d] / float64(counts[c]))
			}
			centroids[c] = normalize(nc)
		}
		if float64(moved)/float64(n) < cfg.Tolerance {
			break
		}
	}
	res.Centroids = centroids
	return res, nil
}

// seedPlusPlus picks K initial centroids: the first uniformly, the rest
// weighted by squared cosine distance to the nearest chosen centroid.
func seedPlusPlus(points [][]float32, k int, rng *rand.Rand) [][]float32 {
	centroids := make([][]float32, 0, k)
	first := reseed(points, rng)
	centroids = append(centroids, first)
	dists := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			if p == nil {
				dists[i] = 0
				continue
			}
			best := math.Inf(1)
			for _, c := range centroids {
				d := 1 - dot(p, c)
				if d < best {
					best = d
				}
			}
			dists[i] = best * best
			total += dists[i]
		}
		if total == 0 {
			centroids = append(centroids, reseed(points, rng))
			continue
		}
		target := rng.Float64() * total
		var cum float64
		pick := -1
		for i, d := range dists {
			cum += d
			if cum >= target {
				pick = i
				break
			}
		}
		if pick < 0 || points[pick] == nil {
			centroids = append(centroids, reseed(points, rng))
			continue
		}
		centroids = append(centroids, normalize(points[pick]))
	}
	return centroids
}

// reseed returns a copy of a random non-nil point, or a unit vector if all
// points are nil.
func reseed(points [][]float32, rng *rand.Rand) []float32 {
	for tries := 0; tries < 4*len(points); tries++ {
		p := points[rng.IntN(len(points))]
		if p != nil {
			return normalize(p)
		}
	}
	for _, p := range points {
		if p != nil {
			out := make([]float32, len(p))
			out[0] = 1
			return out
		}
	}
	return []float32{1}
}

func normalize(p []float32) []float32 {
	if p == nil {
		return nil
	}
	var n float64
	for _, v := range p {
		n += float64(v) * float64(v)
	}
	if n == 0 {
		return nil
	}
	n = math.Sqrt(n)
	out := make([]float32, len(p))
	for i, v := range p {
		out[i] = float32(float64(v) / n)
	}
	return out
}

func dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}
