package describe

import (
	"context"
	"testing"

	"shoal/internal/bipartite"
	"shoal/internal/model"
)

// Popularity is monotone in click mass: boosting a query's clicks within a
// topic must not lower its rank there.
func TestMoreClicksNeverLowerRank(t *testing.T) {
	tx, corpus, clicks := fixture(t)
	before, err := Describe(context.Background(), tx, corpus, clicks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	beachTopic := topicByItem(tx, 0)
	rankOf := func(descs []Description, topic int, q string) int {
		for i, text := range descs[topic].Queries {
			if text == q {
				return i
			}
		}
		return len(descs[topic].Queries)
	}
	baseRank := rankOf(before, beachTopic, "beach towel")

	// Massively boost "beach towel" (query 3) clicks on beach items.
	boosted := bipartite.New(0)
	tx2, corpus2, _ := fixture(t)
	evs := []model.ClickEvent{
		{Query: 0, Item: 0, Day: 0, Count: 8},
		{Query: 0, Item: 1, Day: 0, Count: 6},
		{Query: 3, Item: 0, Day: 0, Count: 500},
		{Query: 3, Item: 1, Day: 0, Count: 500},
		{Query: 1, Item: 2, Day: 0, Count: 7},
		{Query: 1, Item: 3, Day: 0, Count: 5},
	}
	if err := boosted.AddAll(evs); err != nil {
		t.Fatal(err)
	}
	after, err := Describe(context.Background(), tx2, corpus2, boosted, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	newRank := rankOf(after, topicByItem(tx2, 0), "beach towel")
	if newRank > baseRank {
		t.Fatalf("boosting clicks worsened rank: %d -> %d", baseRank, newRank)
	}
	if newRank != 0 {
		t.Fatalf("dominant query not ranked first: rank %d", newRank)
	}
}

// Describe must be deterministic for identical inputs.
func TestDescribeDeterministic(t *testing.T) {
	tx1, corpus1, clicks1 := fixture(t)
	a, err := Describe(context.Background(), tx1, corpus1, clicks1, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tx2, corpus2, clicks2 := fixture(t)
	b, err := Describe(context.Background(), tx2, corpus2, clicks2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("description counts differ")
	}
	for i := range a {
		if len(a[i].Queries) != len(b[i].Queries) {
			t.Fatalf("topic %d: query counts differ", i)
		}
		for j := range a[i].Queries {
			if a[i].Queries[j] != b[i].Queries[j] || a[i].Scores[j] != b[i].Scores[j] {
				t.Fatalf("topic %d rank %d differs", i, j)
			}
		}
	}
}
