package bsp

import (
	"sync/atomic"
	"testing"

	"shoal/internal/shard"
)

// maxProg propagates the maximum seen value along a ring of n vertices.
// After enough supersteps every vertex knows the global max. It only
// sends when its value changed (the frontier contract), so converged
// regions go quiet and the run terminates by vote-to-halt.
type maxProg struct {
	n    int
	best []int64 // per-vertex current max; indexed by vertex id
}

func (p *maxProg) Compute(step int, v VertexID, inbox []int64, out *Outbox[int64]) bool {
	changed := step == 0
	for _, m := range inbox {
		if m > p.best[v] {
			p.best[v] = m
			changed = true
		}
	}
	if changed {
		next := VertexID((int(v) + 1) % p.n)
		prev := VertexID((int(v) - 1 + p.n) % p.n)
		out.Send(next, p.best[v])
		out.Send(prev, p.best[v])
		return false
	}
	return true
}

// combMaxProg is maxProg with the sender-side max combiner enabled.
type combMaxProg struct{ maxProg }

func (p *combMaxProg) Combine(acc, m int64) int64 {
	if m > acc {
		return m
	}
	return acc
}

func newMaxProg(n int) *maxProg {
	p := &maxProg{n: n, best: make([]int64, n)}
	for i := range p.best {
		p.best[i] = int64((i * 7919) % 104729) // deterministic pseudo-random values
	}
	return p
}

func ringMax(t *testing.T, n, workers int, chaos *Chaos) (*maxProg, *Stats) {
	t.Helper()
	p := newMaxProg(n)
	eng, err := New[int64](n, p, Config{Workers: workers, Chaos: chaos})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	return p, stats
}

func globalMax(vals []int64) int64 {
	m := vals[0]
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

func TestRingMaxConverges(t *testing.T) {
	p, stats := ringMax(t, 50, 4, nil)
	want := globalMax(p.best)
	for v, got := range p.best {
		if got != want {
			t.Fatalf("vertex %d converged to %d, want %d", v, got, want)
		}
	}
	if stats.Supersteps == 0 || stats.Messages == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if stats.Sends != stats.Messages+stats.CombinerHits {
		t.Fatalf("send accounting broken: %+v", stats)
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	p1, _ := ringMax(t, 37, 1, nil)
	for _, w := range []int{2, 3, 8} {
		pw, _ := ringMax(t, 37, w, nil)
		for v := range p1.best {
			if p1.best[v] != pw.best[v] {
				t.Fatalf("vertex %d: workers=1 gives %d, workers=%d gives %d", v, p1.best[v], w, pw.best[v])
			}
		}
	}
}

// An explicit shard.Plan placement must give the same fixed point as the
// engine's uniform split.
func TestPlanPlacementInvariance(t *testing.T) {
	p1, _ := ringMax(t, 41, 1, nil)
	counts := make([]int32, 41)
	for i := range counts {
		counts[i] = int32(1 + i%5) // skewed: plan bounds land unevenly
	}
	for _, shards := range []int{2, 3, 6} {
		p := newMaxProg(41)
		eng, err := New[int64](41, p, Config{Plan: shard.PlanCounts(counts, shards)})
		if err != nil {
			t.Fatal(err)
		}
		if eng.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", eng.Shards(), shards)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for v := range p1.best {
			if p1.best[v] != p.best[v] {
				t.Fatalf("plan shards=%d vertex %d: %d, want %d", shards, v, p.best[v], p1.best[v])
			}
		}
	}
}

func TestChaosInvariance(t *testing.T) {
	// Max-propagation is order-independent, so chaotic delivery — both
	// shuffled per-vertex order and stalled source batches — must not
	// change the fixed point.
	plain, _ := ringMax(t, 41, 4, nil)
	for seed := uint64(1); seed <= 3; seed++ {
		for _, chaos := range []*Chaos{
			{Seed: seed, ShuffleInbox: true},
			{Seed: seed, StallBatches: true},
			{Seed: seed, ShuffleInbox: true, StallBatches: true},
		} {
			chaotic, _ := ringMax(t, 41, 4, chaos)
			for v := range plain.best {
				if plain.best[v] != chaotic.best[v] {
					t.Fatalf("seed %d chaos %+v vertex %d: result %d -> %d",
						seed, chaos, v, plain.best[v], chaotic.best[v])
				}
			}
		}
	}
}

// The sender-side combiner must not change the fixed point, must absorb
// traffic, and must stay correct under chaos.
func TestCombinerInvariance(t *testing.T) {
	plain, base := ringMax(t, 53, 4, nil)
	p := &combMaxProg{*newMaxProg(53)}
	eng, err := New[int64](53, p, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	for v := range plain.best {
		if plain.best[v] != p.best[v] {
			t.Fatalf("vertex %d: combiner changed result %d -> %d", v, plain.best[v], p.best[v])
		}
	}
	if stats.CombinerHits == 0 {
		t.Fatal("combiner absorbed no sends on a ring with shared destinations")
	}
	if stats.Messages >= base.Messages {
		t.Fatalf("combiner did not cut traffic: %d vs %d delivered", stats.Messages, base.Messages)
	}
	if stats.Sends != base.Sends {
		t.Fatalf("combining changed the send count: %d vs %d", stats.Sends, base.Sends)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		pc := &combMaxProg{*newMaxProg(53)}
		eng, err := New[int64](53, pc, Config{Workers: 3, Chaos: &Chaos{Seed: seed, ShuffleInbox: true, StallBatches: true}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for v := range plain.best {
			if plain.best[v] != pc.best[v] {
				t.Fatalf("seed %d vertex %d: chaos+combiner changed result", seed, v)
			}
		}
	}
}

// Vote-to-halt must make converged regions go quiet: the active count
// per superstep shrinks and the last supersteps carry few messages.
func TestVoteToHaltQuiesces(t *testing.T) {
	_, stats := ringMax(t, 64, 4, nil)
	last := stats.ActivePerStep[len(stats.ActivePerStep)-1]
	if last >= 64 {
		t.Fatalf("final superstep still computed every vertex: %v", stats.ActivePerStep)
	}
	full := int64(0)
	for _, a := range stats.ActivePerStep {
		full += int64(a) * 2 // every computed vertex sending both ways
	}
	if stats.Sends >= int64(len(stats.ActivePerStep))*64*2 {
		t.Fatalf("no send was suppressed: sends=%d supersteps=%d", stats.Sends, stats.Supersteps)
	}
	if stats.Sends != full {
		// Every vertex that computes either changed (2 sends) or halts
		// (0 sends); halting vertices are re-computed only on message
		// receipt, so sends < 2*computed is expected — just sanity-check
		// the accounting is not wildly off.
		if stats.Sends > full {
			t.Fatalf("sends %d exceed 2*computed %d", stats.Sends, full)
		}
	}
}

// echoProg checks the inbox delivery order is canonical (sorted by sender).
type echoProg struct {
	n        int
	violated atomic.Bool
}

func (p *echoProg) Compute(step int, v VertexID, inbox []int64, out *Outbox[int64]) bool {
	switch step {
	case 0:
		// Everyone messages vertex 0, twice, payload = sender*10+seq.
		out.Send(0, int64(v)*10)
		out.Send(0, int64(v)*10+1)
		return true
	case 1:
		if v == 0 {
			if len(inbox) != 2*p.n {
				p.violated.Store(true)
			}
			for i := 1; i < len(inbox); i++ {
				if inbox[i] <= inbox[i-1] {
					p.violated.Store(true)
				}
			}
		}
		return true
	}
	return true
}

func TestCanonicalDeliveryOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 4, 9} {
		p := &echoProg{n: 9}
		eng, err := New[int64](9, p, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if p.violated.Load() {
			t.Fatalf("workers=%d: inbox was not delivered in (sender, seq) order", workers)
		}
	}
}

// haltProg halts immediately; the engine must terminate after one step.
type haltProg struct{}

func (haltProg) Compute(step int, v VertexID, inbox []struct{}, out *Outbox[struct{}]) bool {
	return true
}

func TestImmediateHalt(t *testing.T) {
	eng, err := New[struct{}](10, haltProg{}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 1 {
		t.Fatalf("supersteps = %d, want 1", stats.Supersteps)
	}
	if len(stats.ActivePerStep) != 1 || stats.ActivePerStep[0] != 10 {
		t.Fatalf("ActivePerStep = %v, want [10]", stats.ActivePerStep)
	}
}

// reactivateProg: vertex 0 halts but is reactivated by a message from 1.
type reactivateProg struct {
	wokeAt int32
}

func (p *reactivateProg) Compute(step int, v VertexID, inbox []int64, out *Outbox[int64]) bool {
	if v == 0 {
		if step > 0 && len(inbox) > 0 {
			atomic.StoreInt32(&p.wokeAt, int32(step))
		}
		return true // always votes to halt
	}
	if v == 1 && step == 2 {
		out.Send(0, 99)
	}
	return step >= 3
}

func TestMessageReactivatesHaltedVertex(t *testing.T) {
	p := &reactivateProg{}
	eng, err := New[int64](2, p, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if p.wokeAt != 3 {
		t.Fatalf("vertex 0 woke at step %d, want 3", p.wokeAt)
	}
}

// badProg sends to an out-of-range vertex.
type badProg struct{}

func (badProg) Compute(step int, v VertexID, inbox []int64, out *Outbox[int64]) bool {
	out.Send(10_000, 1)
	return true
}

func TestOutOfRangeSendFails(t *testing.T) {
	eng, err := New[int64](3, badProg{}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("Run() = nil error, want out-of-range send error")
	}
}

// spinProg never halts; MaxSupersteps must abort it.
type spinProg struct{}

func (spinProg) Compute(step int, v VertexID, inbox []int64, out *Outbox[int64]) bool {
	return false
}

func TestMaxSuperstepsAborts(t *testing.T) {
	for _, workers := range []int{1, 2} {
		eng, err := New[int64](3, spinProg{}, Config{Workers: workers, MaxSupersteps: 5})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err == nil {
			t.Fatal("Run() = nil error, want max-supersteps error")
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int64](0, spinProg{}, Config{}); err == nil {
		t.Fatal("New(n=0) accepted")
	}
	if _, err := New[int64](3, nil, Config{}); err == nil {
		t.Fatal("New(nil program) accepted")
	}
	// Workers > n is clamped, not an error.
	eng, err := New[int64](2, spinProg{}, Config{Workers: 64, MaxSupersteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Shards() != 2 {
		t.Fatalf("shards = %d, want clamped to 2", eng.Shards())
	}
	// A plan that does not cover the vertex range is rejected.
	if _, err := New[int64](10, spinProg{}, Config{Plan: shard.PlanCounts(make([]int32, 5), 2)}); err == nil {
		t.Fatal("short plan accepted")
	}
}

// pulseProg keeps a fixed message volume flowing for exactly `steps`
// supersteps: every vertex forwards one message around the ring.
type pulseProg struct {
	n, steps int
}

func (p *pulseProg) Compute(step int, v VertexID, inbox []int64, out *Outbox[int64]) bool {
	if step < p.steps {
		out.Send(VertexID((int(v)+1)%p.n), int64(step))
		return false
	}
	return true
}

// combPulseProg is pulseProg with a sender-side combiner, so a warmed
// run exercises the sparse combiner scratch (inbox accumulators,
// generation stamps, touched worklists) instead of the CSR layout.
type combPulseProg struct{ pulseProg }

func (p *combPulseProg) Combine(acc, m int64) int64 {
	if m > acc {
		return m
	}
	return acc
}

// TestSteadyStateAllocFree pins the engine's allocation contract: once
// an engine's buffers have grown (one warmup run), a subsequent run
// allocates no message-buffer memory per superstep — with or without a
// combiner, and across Rebind — so the allocation count of a warmed run
// must not scale with its superstep count (the few remaining
// allocations are the Stats value itself). The rebind case is the
// multi-round reuse contract: Rebind → Run on a warmed engine keeps the
// combiner scratch alive, so steady-state rounds stay alloc-free too.
func TestSteadyStateAllocFree(t *testing.T) {
	measure := func(steps int, combine, rebind bool) float64 {
		var prog Program[int64]
		if combine {
			prog = &combPulseProg{pulseProg{n: 32, steps: steps}}
		} else {
			prog = &pulseProg{n: 32, steps: steps}
		}
		eng, err := New[int64](32, prog, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Run(); err != nil { // warmup: grow every buffer
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			if rebind {
				if err := eng.Rebind(32, prog); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := eng.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Seeded (RunFrom) runs share the same contract: once the seed-routing
	// worklists have grown, a steady-state seeded run allocates no engine
	// memory beyond the Stats value either.
	measureSeeded := func(steps int) float64 {
		prog := &combPulseProg{pulseProg{n: 32, steps: steps}}
		eng, err := New[int64](32, prog, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		seed := []VertexID{3, 17, 3, 9} // duplicates on purpose
		if _, err := eng.RunFrom(seed); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(3, func() {
			if err := eng.Rebind(32, prog); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.RunFrom(seed); err != nil {
				t.Fatal(err)
			}
		})
	}
	for _, tc := range []struct {
		name            string
		combine, rebind bool
	}{
		{"messages", false, false},
		{"combiner", true, false},
		{"rebind-combiner", true, true},
	} {
		short, long := measure(16, tc.combine, tc.rebind), measure(256, tc.combine, tc.rebind)
		// 240 extra supersteps may only add the O(log) Stats.ActivePerStep
		// growth, never per-superstep message-buffer or combiner allocations.
		if long > short+8 {
			t.Errorf("%s: allocations scale with supersteps: %d steps -> %.0f allocs, %d steps -> %.0f allocs",
				tc.name, 16, short, 256, long)
		}
	}
	short, long := measureSeeded(16), measureSeeded(256)
	if long > short+8 {
		t.Errorf("seeded: allocations scale with supersteps: %d steps -> %.0f allocs, %d steps -> %.0f allocs",
			16, short, 256, long)
	}
}

// copyTransport exercises the multi-host seam: a transport that deep
// copies every batch (as a serializing network transport would) must
// produce the same fixed point as the zero-copy loopback.
type copyTransport struct {
	inner *Loopback[int64]
	sends atomic.Int64
}

func (c *copyTransport) Send(step, src, dst int, batch []Envelope[int64]) error {
	c.sends.Add(1)
	cp := make([]Envelope[int64], len(batch))
	copy(cp, batch)
	return c.inner.Send(step, src, dst, cp)
}

func (c *copyTransport) Recv(step, dst int) ([][]Envelope[int64], error) {
	return c.inner.Recv(step, dst)
}

func TestCustomTransport(t *testing.T) {
	plain, _ := ringMax(t, 29, 3, nil)
	p := newMaxProg(29)
	eng, err := New[int64](29, p, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := &copyTransport{inner: NewLoopback[int64](eng.Shards())}
	eng.SetTransport(tr)
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for v := range plain.best {
		if plain.best[v] != p.best[v] {
			t.Fatalf("vertex %d: copying transport changed result", v)
		}
	}
	if tr.sends.Load() == 0 {
		t.Fatal("custom transport saw no batches")
	}
}

// staleProg drives the transport-drain regression: in failing mode,
// shard 0's vertices send cross-shard and then shard 1 errors before the
// fill phase, stranding shard 0's batches in the transport. A later
// well-behaved run must never see them.
type staleProg struct {
	fail    bool
	phantom atomic.Bool
}

func (p *staleProg) Compute(step int, v VertexID, inbox []int64, out *Outbox[int64]) bool {
	if step >= 1 && len(inbox) > 0 {
		p.phantom.Store(true)
	}
	if p.fail && step == 0 {
		out.Send(VertexID((int(v)+2)%4), int64(v)) // cross-shard with workers=2
		if v == 3 {
			out.Send(9999, 0) // shard 1 aborts after shard 0 already sent
		}
		return false
	}
	return true
}

// An aborted run must not leave batches in the transport for the next
// run to deliver as phantom messages.
func TestAbortedRunLeavesNoStaleBatches(t *testing.T) {
	p := &staleProg{fail: true}
	eng, err := New[int64](4, p, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("failing run succeeded")
	}
	p.fail = false
	stats, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if p.phantom.Load() {
		t.Fatal("stale batches from the aborted run were delivered")
	}
	if stats.Messages != 0 {
		t.Fatalf("clean run delivered %d messages, want 0", stats.Messages)
	}
}

// Run must be repeatable on one engine (buffers are reused, state reset).
func TestRunReusable(t *testing.T) {
	p := &pulseProg{n: 16, steps: 8}
	eng, err := New[int64](16, p, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Supersteps != s2.Supersteps || s1.Messages != s2.Messages {
		t.Fatalf("repeated runs differ: %+v vs %+v", s1, s2)
	}
}

// Rebind must reject every invalid transition: bad vertex counts, nil
// programs, flipping combiner-ness on an initialized engine, and any use
// after Close. Close itself is idempotent.
func TestRebindValidation(t *testing.T) {
	p := newMaxProg(16)
	eng, err := New[int64](16, p, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Rebind(0, p); err == nil {
		t.Fatal("Rebind accepted zero vertex count")
	}
	if err := eng.Rebind(16, nil); err == nil {
		t.Fatal("Rebind accepted nil program")
	}
	if err := eng.Rebind(16, &combMaxProg{*newMaxProg(16)}); err == nil {
		t.Fatal("Rebind accepted a combiner-ness change on an initialized engine")
	}
	eng.Close()
	eng.Close() // idempotent
	if err := eng.Rebind(16, p); err == nil {
		t.Fatal("Rebind accepted a closed engine")
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("Run accepted a closed engine")
	}
}

// One engine rebound across a shrinking-and-growing sequence of
// topologies must produce exactly what a fresh engine produces for each,
// while the lifetime counters record the reuse: RunsServed counts every
// Run, Rebinds every swap, and the retained high-water mark is the
// buffer memory the reuse actually saved.
func TestRebindReuseMatchesFresh(t *testing.T) {
	var eng *Engine[int64]
	var err error
	for i, n := range []int{40, 25, 33, 12} {
		p := newMaxProg(n)
		if eng == nil {
			if eng, err = New[int64](n, p, Config{Workers: 3}); err != nil {
				t.Fatal(err)
			}
		} else if err = eng.Rebind(n, p); err != nil {
			t.Fatal(err)
		}
		stats, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		fresh := newMaxProg(n)
		feng, err := New[int64](n, fresh, Config{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := feng.Run(); err != nil {
			t.Fatal(err)
		}
		feng.Close()
		for v := range fresh.best {
			if p.best[v] != fresh.best[v] {
				t.Fatalf("n=%d vertex %d: rebound engine diverged from fresh: %d vs %d",
					n, v, p.best[v], fresh.best[v])
			}
		}
		if stats.RunsServed != i+1 {
			t.Fatalf("run %d: RunsServed = %d, want %d", i, stats.RunsServed, i+1)
		}
		if stats.Rebinds != i {
			t.Fatalf("run %d: Rebinds = %d, want %d", i, stats.Rebinds, i)
		}
		if stats.PeakRetainedBytes <= 0 {
			t.Fatalf("run %d: PeakRetainedBytes = %d, want > 0", i, stats.PeakRetainedBytes)
		}
	}
	eng.Close()
}

// RunFrom with every vertex in the seed is Run by another name: the
// same rows compute at superstep 0, so the trajectory and fixed point
// must match exactly — the engine-level memoized-vs-fresh equivalence.
func TestRunFromFullSeedMatchesRun(t *testing.T) {
	for _, workers := range []int{1, 3} {
		full, fstats := ringMax(t, 47, workers, nil)
		p := newMaxProg(47)
		eng, err := New[int64](47, p, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		seed := make([]VertexID, 47)
		for i := range seed {
			seed[i] = VertexID(46 - i) // order must not matter
		}
		stats, err := eng.RunFrom(seed)
		if err != nil {
			t.Fatal(err)
		}
		eng.Close()
		for v := range full.best {
			if full.best[v] != p.best[v] {
				t.Fatalf("workers=%d vertex %d: full-seed RunFrom diverged: %d vs %d",
					workers, v, p.best[v], full.best[v])
			}
		}
		if stats.Supersteps != fstats.Supersteps || stats.Messages != fstats.Messages {
			t.Fatalf("workers=%d: full-seed trajectory differs: %+v vs %+v", workers, stats, fstats)
		}
		if stats.SeededRuns != 1 {
			t.Fatalf("workers=%d: SeededRuns = %d, want 1", workers, stats.SeededRuns)
		}
		if fstats.SeededRuns != 0 {
			t.Fatalf("workers=%d: unseeded run reported SeededRuns = %d", workers, fstats.SeededRuns)
		}
	}
}

// A partial seed computes only the seeded rows at superstep 0 and lets
// vote-to-halt reactivation carry the ripple: seeding just the vertex
// holding the global max still converges the whole ring to it.
func TestRunFromPartialSeedRipples(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := newMaxProg(50)
		src := 0
		for v := range p.best {
			if p.best[v] > p.best[src] {
				src = v
			}
		}
		eng, err := New[int64](50, p, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		stats, err := eng.RunFrom([]VertexID{VertexID(src), VertexID(src)}) // dup deduped
		if err != nil {
			t.Fatal(err)
		}
		eng.Close()
		want := globalMax(p.best)
		for v, got := range p.best {
			if got != want {
				t.Fatalf("workers=%d vertex %d: converged to %d, want %d", workers, v, got, want)
			}
		}
		if stats.ActivePerStep[0] != 1 {
			t.Fatalf("workers=%d: superstep 0 computed %d rows, want only the seed", workers, stats.ActivePerStep[0])
		}
	}
}

func TestRunFromValidation(t *testing.T) {
	p := newMaxProg(8)
	eng, err := New[int64](8, p, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunFrom([]VertexID{8}); err == nil {
		t.Fatal("RunFrom accepted an out-of-range seed")
	}
	if _, err := eng.RunFrom([]VertexID{-1}); err == nil {
		t.Fatal("RunFrom accepted a negative seed")
	}
	// An empty seed is a zero-superstep no-op, not an error.
	stats, err := eng.RunFrom(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Supersteps != 0 {
		t.Fatalf("empty-seed run took %d supersteps, want 0", stats.Supersteps)
	}
	eng.Close()
	if _, err := eng.RunFrom([]VertexID{0}); err == nil {
		t.Fatal("RunFrom accepted a closed engine")
	}
}
