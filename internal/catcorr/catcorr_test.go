package catcorr

import (
	"context"
	"reflect"
	"testing"

	"shoal/internal/model"
	"shoal/internal/taxonomy"
)

// makeTaxonomy builds a taxonomy whose root topics have prescribed
// category sets (topics are hand-assembled; only the fields catcorr reads
// are populated).
func makeTaxonomy(rootCats [][]model.CategoryID) *taxonomy.Taxonomy {
	tx := &taxonomy.Taxonomy{}
	for i, cats := range rootCats {
		tx.Topics = append(tx.Topics, taxonomy.Topic{
			ID:         model.TopicID(i),
			Parent:     taxonomy.NoTopic,
			Categories: cats,
		})
	}
	return tx
}

func TestMineCountsCoOccurrence(t *testing.T) {
	// Categories 1 and 2 co-occur in 3 root topics; 1 and 3 in 1.
	tx := makeTaxonomy([][]model.CategoryID{
		{1, 2}, {1, 2}, {1, 2, 3}, {2, 4},
	})
	g, err := Mine(context.Background(), tx, Config{MinStrength: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Strength(1, 2); got != 3 {
		t.Fatalf("Strength(1,2) = %d, want 3", got)
	}
	if got := g.Strength(2, 1); got != 3 {
		t.Fatalf("Strength is not symmetric: %d", got)
	}
	if got := g.Strength(1, 3); got != 1 {
		t.Fatalf("Strength(1,3) = %d, want 1", got)
	}
	if !g.Correlated(1, 2) || !g.Correlated(2, 1) {
		t.Fatal("pair above threshold not correlated")
	}
	if g.Correlated(1, 3) {
		t.Fatal("pair below threshold correlated")
	}
}

func TestMineThresholdIsStrict(t *testing.T) {
	// Paper: "there exists a correlation only if Sc > 10" — strictly
	// greater.
	rootCats := make([][]model.CategoryID, 10)
	for i := range rootCats {
		rootCats[i] = []model.CategoryID{7, 8}
	}
	tx := makeTaxonomy(rootCats)
	g, err := Mine(context.Background(), tx, Config{MinStrength: 10})
	if err != nil {
		t.Fatal(err)
	}
	if g.Correlated(7, 8) {
		t.Fatal("Sc == threshold must not correlate (strict inequality)")
	}
	// One more topic pushes it over.
	tx2 := makeTaxonomy(append(rootCats, []model.CategoryID{7, 8}))
	g2, err := Mine(context.Background(), tx2, Config{MinStrength: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Correlated(7, 8) {
		t.Fatal("Sc = 11 > 10 must correlate")
	}
}

func TestMineIgnoresNonRootTopics(t *testing.T) {
	tx := makeTaxonomy([][]model.CategoryID{{1, 2}})
	// Add a child topic with categories {3,4}: must not contribute.
	tx.Topics = append(tx.Topics, taxonomy.Topic{
		ID: 1, Parent: 0, Level: 1, Categories: []model.CategoryID{3, 4},
	})
	tx.Topics[0].Children = []model.TopicID{1}
	g, err := Mine(context.Background(), tx, Config{MinStrength: 0})
	if err != nil {
		t.Fatal(err)
	}
	if g.Strength(3, 4) != 0 {
		t.Fatal("child topic contributed to correlation")
	}
	if g.Strength(1, 2) != 1 {
		t.Fatal("root topic missing from correlation")
	}
}

func TestRelatedSortedByStrength(t *testing.T) {
	tx := makeTaxonomy([][]model.CategoryID{
		{0, 1}, {0, 1}, {0, 1}, // 0-1 x3
		{0, 2}, {0, 2}, // 0-2 x2
		{0, 3}, // 0-3 x1
	})
	g, err := Mine(context.Background(), tx, Config{MinStrength: 0})
	if err != nil {
		t.Fatal(err)
	}
	rel := g.Related(0)
	if len(rel) != 3 {
		t.Fatalf("Related(0) = %v, want 3 entries", rel)
	}
	if other(rel[0], 0) != 1 || rel[0].Strength != 3 {
		t.Fatalf("Related(0)[0] = %+v, want category 1 strength 3", rel[0])
	}
	if other(rel[1], 0) != 2 || other(rel[2], 0) != 3 {
		t.Fatalf("Related(0) order wrong: %v", rel)
	}
	if got := g.Related(99); len(got) != 0 {
		t.Fatalf("Related(unknown) = %v, want empty", got)
	}
}

func TestPairsSortedCanonical(t *testing.T) {
	tx := makeTaxonomy([][]model.CategoryID{
		{5, 2}, {5, 2}, {1, 9}, {1, 9},
	})
	// Note: taxonomy category lists are sorted in real use; emulate.
	for i := range tx.Topics {
		cats := tx.Topics[i].Categories
		if cats[0] > cats[1] {
			cats[0], cats[1] = cats[1], cats[0]
		}
	}
	g, err := Mine(context.Background(), tx, Config{MinStrength: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := g.Pairs()
	want := []Correlation{{A: 1, B: 9, Strength: 2}, {A: 2, B: 5, Strength: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Pairs() = %v, want %v", got, want)
	}
}

func TestMineValidation(t *testing.T) {
	tx := makeTaxonomy(nil)
	if _, err := Mine(context.Background(), tx, Config{MinStrength: -1}); err == nil {
		t.Fatal("negative threshold accepted")
	}
	g, err := Mine(context.Background(), tx, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Pairs()) != 0 {
		t.Fatal("empty taxonomy produced pairs")
	}
}
