//go:build !race

package word2vec

// raceEnabled reports whether the Go race detector is compiled in.
const raceEnabled = false
