package taxonomy

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"shoal/internal/dendrogram"
	"shoal/internal/entitygraph"
	"shoal/internal/model"
)

// fixture builds a small world: 6 entities (one item each), a dendrogram
// merging {0,1} and {2,3} tightly (0.8), then together loosely (0.5),
// with {4,5} a separate root pair (0.7).
func fixture(t *testing.T) (*dendrogram.Dendrogram, *entitygraph.EntitySet, *model.Corpus) {
	t.Helper()
	corpus := &model.Corpus{
		Categories: []model.Category{
			{ID: 0, Name: "Dress", Parent: model.RootCategory},
			{ID: 1, Name: "Sunblock", Parent: model.RootCategory},
			{ID: 2, Name: "Backpack", Parent: model.RootCategory},
		},
		Items: []model.Item{
			{ID: 0, Title: "beach dress", Category: 0, PriceCents: 100},
			{ID: 1, Title: "beach gown", Category: 0, PriceCents: 10000},
			{ID: 2, Title: "sunblock", Category: 1, PriceCents: 100},
			{ID: 3, Title: "sun spray", Category: 1, PriceCents: 10000},
			{ID: 4, Title: "trek pack", Category: 2, PriceCents: 100},
			{ID: 5, Title: "alpine pack", Category: 2, PriceCents: 10000},
		},
	}
	es, err := entitygraph.BuildEntities(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(es.Entities) != 6 {
		t.Fatalf("expected 6 singleton entities, got %d", len(es.Entities))
	}
	d := &dendrogram.Dendrogram{
		Leaves: 6,
		Merges: []dendrogram.Merge{
			{A: 0, B: 1, New: 6, Sim: 0.8, Round: 0},
			{A: 2, B: 3, New: 7, Sim: 0.8, Round: 0},
			{A: 4, B: 5, New: 8, Sim: 0.7, Round: 0},
			{A: 6, B: 7, New: 9, Sim: 0.5, Round: 1},
		},
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d, es, corpus
}

func build(t *testing.T, cfg Config) (*Taxonomy, *model.Corpus) {
	t.Helper()
	d, es, corpus := fixture(t)
	tx, err := Build(context.Background(), d, es, corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Validate(); err != nil {
		t.Fatalf("invalid taxonomy: %v", err)
	}
	return tx, corpus
}

func TestBuildTree(t *testing.T) {
	tx, _ := build(t, Config{Levels: []float64{0.4, 0.75}, MinTopicSize: 2})
	roots := tx.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots = %v, want 2 roots", roots)
	}
	// Root 0: entities {0,1,2,3}; its children should be {0,1} and {2,3}.
	var big *Topic
	for _, r := range roots {
		tp, err := tx.Topic(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(tp.Entities) == 4 {
			big = tp
		}
	}
	if big == nil {
		t.Fatalf("no 4-entity root found: %+v", tx.Topics)
	}
	if len(big.Children) != 2 {
		t.Fatalf("big root children = %v, want 2", big.Children)
	}
	for _, c := range big.Children {
		child := tx.Topics[c]
		if len(child.Entities) != 2 {
			t.Fatalf("child %d has %d entities, want 2", c, len(child.Entities))
		}
		if child.Parent != big.ID || child.Level != 1 {
			t.Fatalf("child %d parent/level wrong: %+v", c, child)
		}
	}
	// Categories of the big root span Dress and Sunblock.
	if !reflect.DeepEqual(big.Categories, []model.CategoryID{0, 1}) {
		t.Fatalf("big root categories = %v, want [0 1]", big.Categories)
	}
}

func TestBuildAssignsDeepestTopic(t *testing.T) {
	tx, _ := build(t, Config{Levels: []float64{0.4, 0.75}, MinTopicSize: 2})
	for e := 0; e < 4; e++ {
		tid := tx.EntityTopic[e]
		if tid == NoTopic {
			t.Fatalf("entity %d unassigned", e)
		}
		if tx.Topics[tid].Level != 1 {
			t.Fatalf("entity %d at level %d, want deepest level 1", e, tx.Topics[tid].Level)
		}
	}
	// Items inherit entity topics.
	for it := 0; it < 6; it++ {
		if tx.ItemTopic[it] != tx.EntityTopic[it] {
			t.Fatalf("item %d topic %d != entity topic %d", it, tx.ItemTopic[it], tx.EntityTopic[it])
		}
	}
}

func TestBuildSkipsIdenticalChild(t *testing.T) {
	// {4,5} cluster is identical at level 0 (0.4) and level 1 (0.65):
	// only one topic should exist for it.
	tx, _ := build(t, Config{Levels: []float64{0.4, 0.65}, MinTopicSize: 2})
	count := 0
	for i := range tx.Topics {
		if len(tx.Topics[i].Entities) == 2 && tx.Topics[i].Entities[0] == 4 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("pair {4,5} appears in %d topics, want 1", count)
	}
}

func TestBuildMinTopicSize(t *testing.T) {
	tx, _ := build(t, Config{Levels: []float64{0.9}, MinTopicSize: 2})
	// Nothing merges at 0.9, all clusters are singletons < 2.
	if len(tx.Topics) != 0 {
		t.Fatalf("topics = %d, want 0", len(tx.Topics))
	}
	for _, tid := range tx.EntityTopic {
		if tid != NoTopic {
			t.Fatal("entity assigned despite no topics")
		}
	}
}

func TestBuildConfigValidation(t *testing.T) {
	d, es, corpus := fixture(t)
	bad := []Config{
		{Levels: nil, MinTopicSize: 1},
		{Levels: []float64{0.5, 0.4}, MinTopicSize: 1},
		{Levels: []float64{0.5, 0.5}, MinTopicSize: 1},
		{Levels: []float64{-0.1}, MinTopicSize: 1},
		{Levels: []float64{1.2}, MinTopicSize: 1},
		{Levels: []float64{0.5}, MinTopicSize: 0},
	}
	for i, cfg := range bad {
		if _, err := Build(context.Background(), d, es, corpus, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Mismatched leaves.
	d2 := &dendrogram.Dendrogram{Leaves: 3}
	if _, err := Build(context.Background(), d2, es, corpus, DefaultConfig()); err == nil {
		t.Error("mismatched dendrogram accepted")
	}
}

func TestItemsInCategory(t *testing.T) {
	tx, corpus := build(t, Config{Levels: []float64{0.4}, MinTopicSize: 2})
	var big model.TopicID = NoTopic
	for _, r := range tx.Roots() {
		if len(tx.Topics[r].Entities) == 4 {
			big = r
		}
	}
	items, err := tx.ItemsInCategory(big, 1, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(items, []model.ItemID{2, 3}) {
		t.Fatalf("ItemsInCategory = %v, want [2 3]", items)
	}
	if _, err := tx.ItemsInCategory(99, 0, corpus); err == nil {
		t.Fatal("unknown topic accepted")
	}
}

func TestRootOf(t *testing.T) {
	tx, _ := build(t, Config{Levels: []float64{0.4, 0.75}, MinTopicSize: 2})
	for e := 0; e < 4; e++ {
		tid := tx.EntityTopic[e]
		root, err := tx.RootOf(tid)
		if err != nil {
			t.Fatal(err)
		}
		if tx.Topics[root].Parent != NoTopic {
			t.Fatal("RootOf returned a non-root")
		}
		if len(tx.Topics[root].Entities) != 4 {
			t.Fatalf("root of entity %d has %d entities, want 4", e, len(tx.Topics[root].Entities))
		}
	}
	if _, err := tx.RootOf(404); err == nil {
		t.Fatal("unknown topic accepted")
	}
}

func TestSearcher(t *testing.T) {
	tx, _ := build(t, Config{Levels: []float64{0.4}, MinTopicSize: 2})
	docs := make([][]string, len(tx.Topics))
	for i := range tx.Topics {
		if len(tx.Topics[i].Entities) == 4 {
			docs[i] = []string{"beach", "dress", "sunblock", "trip"}
		} else {
			docs[i] = []string{"mountain", "backpack", "trek"}
		}
	}
	s, err := NewSearcher(context.Background(), tx, docs)
	if err != nil {
		t.Fatal(err)
	}
	hits := s.Search("beach trip", 5)
	if len(hits) == 0 {
		t.Fatal("no hits for beach trip")
	}
	if got := tx.Topics[hits[0].Topic]; len(got.Entities) != 4 {
		t.Fatalf("top hit is wrong topic: %+v", got)
	}
	if len(s.Search("zzzz", 5)) != 0 {
		t.Fatal("nonsense query matched")
	}
	// Mismatched docs rejected.
	if _, err := NewSearcher(context.Background(), tx, docs[:1]); err == nil {
		t.Fatal("mismatched doc count accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tx, _ := build(t, Config{Levels: []float64{0.4, 0.75}, MinTopicSize: 2})
	var buf bytes.Buffer
	if err := tx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tx, got) {
		t.Fatal("gob round trip changed the taxonomy")
	}

	var jbuf bytes.Buffer
	if err := tx.SaveJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadJSON(&jbuf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tx, got2) {
		t.Fatal("JSON round trip changed the taxonomy")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not gob")); err == nil {
		t.Fatal("corrupt gob accepted")
	}
	if _, err := LoadJSON(bytes.NewBufferString("{")); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	// Structurally invalid but decodable taxonomy.
	bad := &Taxonomy{Topics: []Topic{{ID: 5}}}
	var buf bytes.Buffer
	if err := bad.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(&buf); err == nil {
		t.Fatal("invalid taxonomy accepted on load")
	}
}
