// Package serve exposes a built SHOAL system over HTTP/JSON. The deployed
// system "supports millions of searches for online shopping per day" (§1);
// this handler is that serving surface: read-only, safe for concurrent
// use, one endpoint per demo scenario (Fig. 5).
//
//	GET /api/search?q=beach+dress&k=5      scenario A: query → topics
//	GET /api/topics/{id}                   scenario B: topic + sub-topics
//	GET /api/topics/{id}/items?category=3  scenario C: topic → category → items
//	GET /api/categories/{id}/related       scenario D: category correlations
//	GET /api/stats                         build statistics
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"shoal/internal/catcorr"
	"shoal/internal/core"
	"shoal/internal/model"
	"shoal/internal/taxonomy"
)

// Handler serves a single immutable build.
type Handler struct {
	b   *core.Build
	mux *http.ServeMux
}

// NewHandler wraps a completed build. The build must not be mutated while
// the handler is in use.
func NewHandler(b *core.Build) (*Handler, error) {
	if b == nil || b.Taxonomy == nil {
		return nil, fmt.Errorf("serve: nil build")
	}
	h := &Handler{b: b, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /api/search", h.search)
	h.mux.HandleFunc("GET /api/topics/{id}", h.topic)
	h.mux.HandleFunc("GET /api/topics/{id}/items", h.topicItems)
	h.mux.HandleFunc("GET /api/categories/{id}/related", h.related)
	h.mux.HandleFunc("GET /api/stats", h.stats)
	return h, nil
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// TopicSummary is the wire form of a topic reference.
type TopicSummary struct {
	ID          model.TopicID `json:"id"`
	Description string        `json:"description"`
	Level       int           `json:"level"`
	Items       int           `json:"items"`
	Categories  int           `json:"categories"`
	Score       float64       `json:"score,omitempty"`
}

// TopicDetail is the wire form of one topic (scenario B).
type TopicDetail struct {
	TopicSummary
	Queries    []string       `json:"queries"`
	SubTopics  []TopicSummary `json:"subTopics"`
	Categories []CategoryRef  `json:"categoryRefs"`
}

// CategoryRef names a category.
type CategoryRef struct {
	ID   model.CategoryID `json:"id"`
	Name string           `json:"name"`
}

// ItemRef is the wire form of an item.
type ItemRef struct {
	ID       model.ItemID     `json:"id"`
	Title    string           `json:"title"`
	Category model.CategoryID `json:"category"`
}

// RelatedCategory is one Eq. 5 correlation edge (scenario D).
type RelatedCategory struct {
	CategoryRef
	Strength int `json:"strength"`
}

func (h *Handler) search(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing query parameter q")
		return
	}
	k := 5
	if ks := r.URL.Query().Get("k"); ks != "" {
		v, err := strconv.Atoi(ks)
		if err != nil || v <= 0 || v > 100 {
			httpError(w, http.StatusBadRequest, "k must be an integer in [1,100]")
			return
		}
		k = v
	}
	var hits []taxonomy.Hit
	if h.b.Searcher != nil {
		hits = h.b.Searcher.Search(q, k)
	}
	out := make([]TopicSummary, 0, len(hits))
	for _, hit := range hits {
		t := &h.b.Taxonomy.Topics[hit.Topic]
		out = append(out, h.summary(t, hit.Score))
	}
	writeJSON(w, out)
}

func (h *Handler) topic(w http.ResponseWriter, r *http.Request) {
	t, ok := h.topicFromPath(w, r)
	if !ok {
		return
	}
	detail := TopicDetail{
		TopicSummary: h.summary(t, 0),
		Queries:      t.DescQueries,
	}
	for _, c := range t.Children {
		detail.SubTopics = append(detail.SubTopics, h.summary(&h.b.Taxonomy.Topics[c], 0))
	}
	for _, cat := range t.Categories {
		detail.Categories = append(detail.Categories, CategoryRef{
			ID: cat, Name: h.b.Corpus.Categories[cat].Name,
		})
	}
	writeJSON(w, detail)
}

func (h *Handler) topicItems(w http.ResponseWriter, r *http.Request) {
	t, ok := h.topicFromPath(w, r)
	if !ok {
		return
	}
	items := t.Items
	if cs := r.URL.Query().Get("category"); cs != "" {
		cat, err := strconv.Atoi(cs)
		if err != nil || cat < 0 || cat >= len(h.b.Corpus.Categories) {
			httpError(w, http.StatusBadRequest, "unknown category")
			return
		}
		filtered, err := h.b.Taxonomy.ItemsInCategory(t.ID, model.CategoryID(cat), h.b.Corpus)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		items = filtered
	}
	out := make([]ItemRef, 0, len(items))
	for _, it := range items {
		item := &h.b.Corpus.Items[it]
		out = append(out, ItemRef{ID: it, Title: item.Title, Category: item.Category})
	}
	writeJSON(w, out)
}

func (h *Handler) related(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= len(h.b.Corpus.Categories) {
		httpError(w, http.StatusNotFound, "unknown category")
		return
	}
	var rel []catcorr.Correlation
	if h.b.Correlations != nil {
		rel = h.b.Correlations.Related(model.CategoryID(id))
	}
	out := make([]RelatedCategory, 0, len(rel))
	for _, c := range rel {
		other := c.A
		if other == model.CategoryID(id) {
			other = c.B
		}
		out = append(out, RelatedCategory{
			CategoryRef: CategoryRef{ID: other, Name: h.b.Corpus.Categories[other].Name},
			Strength:    c.Strength,
		})
	}
	writeJSON(w, out)
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]int{
		"items":        len(h.b.Corpus.Items),
		"queries":      len(h.b.Corpus.Queries),
		"categories":   len(h.b.Corpus.Categories),
		"entities":     len(h.b.Entities.Entities),
		"topics":       len(h.b.Taxonomy.Topics),
		"rootTopics":   len(h.b.Taxonomy.Roots()),
		"correlations": len(h.b.Correlations.Pairs()),
	})
}

func (h *Handler) topicFromPath(w http.ResponseWriter, r *http.Request) (*taxonomy.Topic, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "topic id must be an integer")
		return nil, false
	}
	t, err := h.b.Taxonomy.Topic(model.TopicID(id))
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return nil, false
	}
	return t, true
}

func (h *Handler) summary(t *taxonomy.Topic, score float64) TopicSummary {
	return TopicSummary{
		ID: t.ID, Description: t.Description, Level: t.Level,
		Items: len(t.Items), Categories: len(t.Categories), Score: score,
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers already sent; nothing more we can do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
