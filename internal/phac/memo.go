package phac

import (
	"context"

	"shoal/internal/wgraph"
)

// Memo is the cross-build diffusion cache behind incremental daily
// rebuilds: a snapshot of round 0's fully-diffused state — every node's
// per-level best-known edge, per-row edge count and best incident edge —
// taken over the original (pre-merge) graph. A later clustering over a
// graph that differs from the snapshot's only in a known set of rows
// seeds its round 0 from the memo and recomputes just those rows plus
// the ripple of value changes: the cross-round exStates memoization
// lifted one level up, across builds. A Memo is immutable once returned
// and safe to retain after the clustering that produced it ends.
type Memo struct {
	n         int
	rounds    int
	threshold float64
	levels    [][]edgeRef
	edgeCnt   []int64
	bests     []edgeRef
}

// Compatible reports whether the memo can seed a clustering of an
// n-node graph under cfg: same node count, diffusion rounds and stop
// threshold — the three inputs the snapshotted values depend on beyond
// the graph itself (adjacency drift is what dirtyRows declares). UseBSP
// is deliberately not part of the key: both execution paths produce
// byte-identical diffusion state, so a memo captured by either warms
// the other.
func (m *Memo) Compatible(n int, cfg Config) bool {
	return m != nil && m.n == n && m.rounds == cfg.DiffusionRounds &&
		m.threshold == cfg.StopThreshold
}

// ClusterWarm is Cluster with cross-build memoization: prev — captured
// by an earlier ClusterWarm over a graph differing from g only in
// dirtyRows' adjacency — seeds round 0's diffusion so only the dirty
// rows and the neighborhoods their value changes reach are recomputed,
// and the returned Memo snapshots this build for the next one. An
// incompatible or nil prev runs the ordinary cold start (still
// capturing a Memo). The Result is byte-identical to Cluster's for
// every seed, locked by TestClusterWarmMatchesCold.
func ClusterWarm(ctx context.Context, g wgraph.View, sizes []int, cfg Config, prev *Memo, dirtyRows []int32) (*Result, *Memo, error) {
	return cluster(ctx, g, sizes, cfg, prev, dirtyRows, true)
}

// captureMemo deep-copies the first n rows of the diffusion cascade.
// Called right after round 0's diffusion+selection, before any merge
// mints ids or overwrites levels, so the snapshot describes the
// original graph — including on a warm build, where rows the seed left
// untouched hold exactly what a cold round 0 would have computed.
func (st *state) captureMemo(cfg Config) *Memo {
	n := st.total
	m := &Memo{
		n: n, rounds: cfg.DiffusionRounds, threshold: cfg.StopThreshold,
		levels:  make([][]edgeRef, len(st.exStates)),
		edgeCnt: append([]int64(nil), st.edgeCnt[:n]...),
		bests:   append([]edgeRef(nil), st.bests[:n]...),
	}
	for it := range st.exStates {
		m.levels[it] = append([]edgeRef(nil), st.exStates[it][:n]...)
	}
	return m
}

// seedFromMemo installs a compatible previous-build snapshot as the
// "last round" the memoized diffusion continues from: levels, edge
// counts and best-incident edges for every row, with dirtyRows as the
// explicit worklist — exactly the state a merge round leaves behind, so
// round 0 runs the existing dirty-list init and frontier-pruned
// exchange iterations unchanged. On the BSP path it additionally
// reconstructs the running aggregates RunFrom maintains incrementally —
// the edge total and the global-best heap — and forces the first
// selection dense: the sparse changed-rows contract ("an unchanged
// mutual pair was selected and retired last round") holds within one
// clustering but not across builds, where the previous build's merged
// pairs are alive again with unchanged final levels.
func (st *state) seedFromMemo(m *Memo, dirtyRows []int32, useBSP bool) {
	n := st.total
	for it := range st.exStates {
		copy(st.exStates[it][:n], m.levels[it])
	}
	copy(st.edgeCnt[:n], m.edgeCnt)
	copy(st.bests[:n], m.bests)
	st.haveCache = true
	for len(st.dirty) < n {
		st.dirty = append(st.dirty, 0)
	}
	st.dirtyList = append(st.dirtyList[:0], dirtyRows...)
	for _, u := range dirtyRows {
		st.dirty[u] = st.dirtyEpoch
	}
	if !useBSP {
		return
	}
	st.forceDense = true
	var total int64
	for u := int32(0); int(u) < n; u++ {
		total += st.edgeCnt[u]
		if st.bests[u] != noEdge {
			st.bspHeapPush(u)
		}
	}
	st.bspActiveEdges = total
}
