package core

import (
	"testing"

	"shoal/internal/model"
	"shoal/internal/synth"
)

// dayCorpus generates a corpus whose click log spans 14 days, then splits
// the clicks by day for streaming.
func dayCorpus(t *testing.T) (*model.Corpus, [][]model.ClickEvent) {
	t.Helper()
	gen := synth.DefaultConfig()
	gen.Scenarios = 8
	gen.ItemsPerScenario = 50
	gen.QueriesPerScenario = 14
	gen.NoiseItems = 20
	gen.HeadQueries = 5
	gen.Days = 14
	corpus, err := synth.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	byDay := make([][]model.ClickEvent, gen.Days)
	for _, ev := range corpus.Clicks {
		byDay[ev.Day] = append(byDay[ev.Day], ev)
	}
	return corpus, byDay
}

func TestDailyPipelineRebuilds(t *testing.T) {
	corpus, byDay := dayCorpus(t)
	cfg := testConfig()
	cfg.WindowDays = 7
	p, err := NewDailyPipeline(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Last() != nil {
		t.Fatal("Last() non-nil before any rebuild")
	}
	var prev *Build
	for day := 0; day < len(byDay); day++ {
		if err := p.IngestDay(byDay[day]); err != nil {
			t.Fatal(err)
		}
		if day < 6 {
			continue // wait for a full window
		}
		b, err := p.Rebuild()
		if err != nil {
			t.Fatalf("day %d: %v", day, err)
		}
		if len(b.Taxonomy.Topics) == 0 {
			t.Fatalf("day %d: empty taxonomy", day)
		}
		if prev != nil {
			s, err := Stability(prev, b)
			if err != nil {
				t.Fatal(err)
			}
			// The catalog is static and the click distribution is
			// stationary, so consecutive builds must largely agree.
			// (Fine-grained topic boundaries churn as the window
			// slides, so pair-level stability sits well below 1.)
			if s < 0.5 {
				t.Fatalf("day %d: stability %.3f below 0.5", day, s)
			}
		}
		prev = b
	}
	if p.Days() != len(byDay) {
		t.Fatalf("Days() = %d, want %d", p.Days(), len(byDay))
	}
}

func TestDailyPipelineWindowEviction(t *testing.T) {
	corpus, byDay := dayCorpus(t)
	cfg := testConfig()
	cfg.WindowDays = 7
	p, err := NewDailyPipeline(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < len(byDay); day++ {
		if err := p.IngestDay(byDay[day]); err != nil {
			t.Fatal(err)
		}
	}
	_, _, maxDay := p.WindowStats()
	if maxDay != 13 {
		t.Fatalf("maxDay = %d, want 13", maxDay)
	}
	// Day-0 clicks must be gone: reconstruct the window mass and compare
	// with a graph fed only the last 7 days.
	q, items, _ := p.WindowStats()
	if q == 0 || items == 0 {
		t.Fatal("window empty after ingesting 14 days")
	}
}

func TestDailyPipelineRejectsBadEvents(t *testing.T) {
	corpus, _ := dayCorpus(t)
	p, err := NewDailyPipeline(corpus, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.IngestDay([]model.ClickEvent{{Query: 9999, Item: 0, Day: 0, Count: 1}}); err == nil {
		t.Fatal("unknown query accepted")
	}
	if err := p.IngestDay([]model.ClickEvent{{Query: 0, Item: 99999, Day: 0, Count: 1}}); err == nil {
		t.Fatal("unknown item accepted")
	}
	if err := p.IngestDay([]model.ClickEvent{{Query: 0, Item: 0, Day: 0, Count: 0}}); err == nil {
		t.Fatal("zero-count click accepted")
	}
}

func TestNewDailyPipelineValidatesCorpus(t *testing.T) {
	bad := &model.Corpus{Items: []model.Item{{ID: 4}}}
	if _, err := NewDailyPipeline(bad, testConfig()); err == nil {
		t.Fatal("invalid corpus accepted")
	}
}

func TestStabilityErrors(t *testing.T) {
	corpus, byDay := dayCorpus(t)
	cfg := testConfig()
	p, err := NewDailyPipeline(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, evs := range byDay {
		if err := p.IngestDay(evs); err != nil {
			t.Fatal(err)
		}
	}
	b, err := p.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stability(nil, b); err == nil {
		t.Fatal("nil prev accepted")
	}
	if _, err := Stability(b, nil); err == nil {
		t.Fatal("nil next accepted")
	}
	// Identical builds are perfectly stable.
	s, err := Stability(b, b)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Fatalf("self-stability = %f, want 1", s)
	}
}

func TestRunWithClicksNil(t *testing.T) {
	corpus, _ := dayCorpus(t)
	if _, err := RunWithClicks(corpus, nil, testConfig()); err == nil {
		t.Fatal("nil clicks accepted")
	}
}
