// Quickstart: generate a synthetic corpus, build the SHOAL taxonomy, and
// walk the public API — search topics by query, descend into sub-topics,
// and inspect category correlations.
package main

import (
	"fmt"
	"log"

	"shoal"
)

func main() {
	log.SetFlags(0)

	// 1. A corpus. Real deployments ingest click logs; here the
	//    synthetic generator stands in for them (DESIGN.md §1.3).
	gen := shoal.DefaultCorpusConfig()
	gen.Scenarios = 12
	gen.ItemsPerScenario = 80
	corpus, err := shoal.GenerateCorpus(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s\n", corpus.Stats())

	// 2. Build the taxonomy with the paper's settings (α=0.7, r=2).
	cfg := shoal.DefaultConfig()
	cfg.Word2Vec.Epochs = 2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3, 0.5}
	// The paper's Sc > 10 threshold is calibrated for ~10^6 root topics;
	// at this corpus size a smaller pivot count needs a smaller bar.
	cfg.CatCorr.MinStrength = 2
	sys, err := shoal.Build(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built:  %s\n\n", sys.Stats())

	// 3. Scenario A — search topics with a real user query.
	probe := corpus.Queries[0].Text
	fmt.Printf("query %q:\n", probe)
	for _, hit := range sys.SearchTopics(probe, 3) {
		t, err := sys.Topic(hit.Topic)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  topic [%d] %q  score=%.2f items=%d categories=%d\n",
			t.ID, t.Description, hit.Score, len(t.Items), len(t.Categories))
	}

	// 4. Scenario B — descend into the first root topic's hierarchy.
	roots := sys.RootTopics()
	fmt.Printf("\nroot topics: %d; first root's subtree:\n", len(roots))
	root, err := sys.Topic(roots[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  [%d] %q (%d items)\n", root.ID, root.Description, len(root.Items))
	subs, err := sys.SubTopics(root.ID)
	if err != nil {
		log.Fatal(err)
	}
	for _, sid := range subs {
		st, err := sys.Topic(sid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    [%d] %q (%d items)\n", st.ID, st.Description, len(st.Items))
	}

	// 5. Scenario D — categories correlated through root topics.
	pairs := sys.CategoryCorrelations()
	fmt.Printf("\ncategory correlations above threshold: %d\n", len(pairs))
	for i, p := range pairs {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s <-> %s (strength %d)\n",
			corpus.Categories[p.A].Name, corpus.Categories[p.B].Name, p.Strength)
	}
}
