// Package taxonomy assembles the SHOAL hierarchical topic taxonomy from a
// clustering dendrogram and provides the navigation the demo GUI exposes
// (paper Fig. 5): query→topic search, topic→sub-topic descent, and
// topic→category→item exploration.
//
// Topics are obtained by cutting the Parallel HAC dendrogram at a ladder of
// similarity thresholds: the loosest cut yields the root topics (conceptual
// shopping scenarios such as "trip to the beach"), tighter cuts yield
// nested sub-topics. Because cuts of one dendrogram are nested refinements,
// the result is a proper tree.
package taxonomy

import (
	"context"
	"fmt"
	"sort"

	"shoal/internal/dendrogram"
	"shoal/internal/entitygraph"
	"shoal/internal/model"
)

// NoTopic marks items/entities not placed under any topic (clusters below
// the minimum size).
const NoTopic model.TopicID = -1

// Topic is one node of the topic tree.
type Topic struct {
	ID     model.TopicID
	Parent model.TopicID // NoTopic for roots
	// Level is the depth: 0 for root topics.
	Level    int
	Children []model.TopicID
	// Entities are the member item entities, ascending.
	Entities []model.EntityID
	// Items are the member items, ascending.
	Items []model.ItemID
	// Categories are the distinct leaf categories of member items,
	// ascending — the category set Ck used by Eq. 5.
	Categories []model.CategoryID
	// Description is the most representative query (§2.3), set by the
	// description-matching stage.
	Description string
	// DescQueries are the top representative queries, best first.
	DescQueries []string
	// Sim is the dendrogram similarity at which this topic's cluster
	// was intact (the cut threshold of its level).
	Sim float64
}

// Taxonomy is the full topic tree plus item/entity placement.
type Taxonomy struct {
	Topics []Topic
	// EntityTopic maps each entity to its deepest topic, or NoTopic.
	EntityTopic []model.TopicID
	// ItemTopic maps each item to its deepest topic, or NoTopic.
	ItemTopic []model.TopicID
	// Levels are the cut thresholds, loosest first.
	Levels []float64
}

// Config controls taxonomy assembly.
type Config struct {
	// Levels are cut thresholds in ascending order. The first defines
	// root topics; each subsequent one adds a nesting level.
	Levels []float64
	// MinTopicSize is the minimum number of entities for a cluster to
	// become a topic; smaller clusters stay part of their parent (or are
	// unassigned at root level).
	MinTopicSize int
}

// DefaultConfig uses three levels above the default clustering threshold.
func DefaultConfig() Config {
	return Config{Levels: []float64{0.35, 0.5, 0.65}, MinTopicSize: 2}
}

func (c Config) validate() error {
	if len(c.Levels) == 0 {
		return fmt.Errorf("taxonomy: need at least one cut level")
	}
	prev := -1.0
	for _, l := range c.Levels {
		if l < 0 || l > 1 {
			return fmt.Errorf("taxonomy: level %f outside [0,1]", l)
		}
		if l <= prev {
			return fmt.Errorf("taxonomy: levels must be strictly ascending")
		}
		prev = l
	}
	if c.MinTopicSize < 1 {
		return fmt.Errorf("taxonomy: MinTopicSize must be >= 1")
	}
	return nil
}

// Build cuts the dendrogram at cfg.Levels and assembles the topic tree.
// Dendrogram leaves must be entity ids of es. Cancellation is checked
// between level cuts.
func Build(ctx context.Context, d *dendrogram.Dendrogram, es *entitygraph.EntitySet, corpus *model.Corpus, cfg Config) (*Taxonomy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if d.Leaves != len(es.Entities) {
		return nil, fmt.Errorf("taxonomy: dendrogram has %d leaves but entity set has %d", d.Leaves, len(es.Entities))
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("taxonomy: %w", err)
	}

	tx := &Taxonomy{
		EntityTopic: make([]model.TopicID, len(es.Entities)),
		ItemTopic:   make([]model.TopicID, len(corpus.Items)),
		Levels:      append([]float64(nil), cfg.Levels...),
	}
	for i := range tx.EntityTopic {
		tx.EntityTopic[i] = NoTopic
	}
	for i := range tx.ItemTopic {
		tx.ItemTopic[i] = NoTopic
	}

	// clusterTopic[level][label] -> topic id for clusters that became
	// topics at that level.
	prevAssign := make([]model.TopicID, len(es.Entities))
	for i := range prevAssign {
		prevAssign[i] = NoTopic
	}
	for level, threshold := range cfg.Levels {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		labels := d.CutAt(threshold)
		// Group entities by label.
		groups := make(map[int32][]model.EntityID)
		for ent, lab := range labels {
			groups[lab] = append(groups[lab], model.EntityID(ent))
		}
		labs := make([]int32, 0, len(groups))
		for lab := range groups {
			labs = append(labs, lab)
		}
		sort.Slice(labs, func(i, j int) bool { return labs[i] < labs[j] })

		assign := make([]model.TopicID, len(es.Entities))
		copy(assign, prevAssign)
		for _, lab := range labs {
			members := groups[lab]
			if len(members) < cfg.MinTopicSize {
				continue
			}
			// Parent topic: the (level-1) topic of the first member;
			// nested cuts guarantee all members share it.
			parent := NoTopic
			if level > 0 {
				parent = prevAssign[members[0]]
				if parent == NoTopic {
					continue // parent cluster was too small: skip subtree
				}
				// Skip clusters identical to their parent: no new
				// information, avoids single-child chains.
				if len(tx.Topics[parent].Entities) == len(members) {
					continue
				}
			}
			id := model.TopicID(len(tx.Topics))
			depth := 0
			if parent != NoTopic {
				depth = tx.Topics[parent].Level + 1
			}
			t := Topic{
				ID: id, Parent: parent, Level: depth, Sim: threshold,
				Entities: members,
			}
			if parent != NoTopic {
				tx.Topics[parent].Children = append(tx.Topics[parent].Children, id)
			}
			tx.Topics = append(tx.Topics, t)
			for _, e := range members {
				assign[e] = id
			}
		}
		prevAssign = assign
	}
	copy(tx.EntityTopic, prevAssign)

	// Fill items and categories per topic, bottom-up through ancestors.
	for e, tid := range tx.EntityTopic {
		if tid == NoTopic {
			continue
		}
		for _, it := range es.Entities[e].Items {
			tx.ItemTopic[it] = tid
		}
	}
	catSets := make([]map[model.CategoryID]bool, len(tx.Topics))
	for i := range catSets {
		catSets[i] = make(map[model.CategoryID]bool)
	}
	for e := range es.Entities {
		// Items/categories propagate to every ancestor topic of the
		// entity's deepest topic.
		for tid := tx.EntityTopic[e]; tid != NoTopic; tid = tx.Topics[tid].Parent {
			t := &tx.Topics[tid]
			t.Items = append(t.Items, es.Entities[e].Items...)
			catSets[tid][es.Entities[e].Category] = true
			if tid == tx.Topics[tid].Parent {
				return nil, fmt.Errorf("taxonomy: topic %d is its own parent", tid)
			}
		}
	}
	for i := range tx.Topics {
		t := &tx.Topics[i]
		sort.Slice(t.Items, func(a, b int) bool { return t.Items[a] < t.Items[b] })
		for c := range catSets[i] {
			t.Categories = append(t.Categories, c)
		}
		sort.Slice(t.Categories, func(a, b int) bool { return t.Categories[a] < t.Categories[b] })
	}
	return tx, nil
}

// Roots returns the root topic ids, ascending.
func (tx *Taxonomy) Roots() []model.TopicID {
	var out []model.TopicID
	for i := range tx.Topics {
		if tx.Topics[i].Parent == NoTopic {
			out = append(out, tx.Topics[i].ID)
		}
	}
	return out
}

// Topic returns the topic with the given id, or an error.
func (tx *Taxonomy) Topic(id model.TopicID) (*Topic, error) {
	if id < 0 || int(id) >= len(tx.Topics) {
		return nil, fmt.Errorf("taxonomy: topic %d out of range [0,%d)", id, len(tx.Topics))
	}
	return &tx.Topics[id], nil
}

// RootOf returns the root ancestor of topic id.
func (tx *Taxonomy) RootOf(id model.TopicID) (model.TopicID, error) {
	t, err := tx.Topic(id)
	if err != nil {
		return NoTopic, err
	}
	for t.Parent != NoTopic {
		t = &tx.Topics[t.Parent]
	}
	return t.ID, nil
}

// ItemsInCategory returns topic members restricted to one category — the
// Topic→Category→Item drill-down of demo scenario C.
func (tx *Taxonomy) ItemsInCategory(id model.TopicID, cat model.CategoryID, corpus *model.Corpus) ([]model.ItemID, error) {
	t, err := tx.Topic(id)
	if err != nil {
		return nil, err
	}
	var out []model.ItemID
	for _, it := range t.Items {
		if corpus.Items[it].Category == cat {
			out = append(out, it)
		}
	}
	return out, nil
}

// Validate checks structural invariants: parent/child consistency, nested
// member sets, item placement agreeing with entity placement.
func (tx *Taxonomy) Validate() error {
	for i := range tx.Topics {
		t := &tx.Topics[i]
		if t.ID != model.TopicID(i) {
			return fmt.Errorf("taxonomy: topic at index %d has id %d", i, t.ID)
		}
		if t.Parent != NoTopic {
			if int(t.Parent) >= len(tx.Topics) || t.Parent == t.ID {
				return fmt.Errorf("taxonomy: topic %d has bad parent %d", t.ID, t.Parent)
			}
			p := &tx.Topics[t.Parent]
			if p.Level != t.Level-1 {
				return fmt.Errorf("taxonomy: topic %d level %d under parent level %d", t.ID, t.Level, p.Level)
			}
			// Member sets nest.
			set := make(map[model.EntityID]bool, len(p.Entities))
			for _, e := range p.Entities {
				set[e] = true
			}
			for _, e := range t.Entities {
				if !set[e] {
					return fmt.Errorf("taxonomy: topic %d member %d missing from parent %d", t.ID, e, t.Parent)
				}
			}
			found := false
			for _, c := range p.Children {
				if c == t.ID {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("taxonomy: topic %d missing from parent %d children", t.ID, t.Parent)
			}
		} else if t.Level != 0 {
			return fmt.Errorf("taxonomy: root topic %d has level %d", t.ID, t.Level)
		}
	}
	for e, tid := range tx.EntityTopic {
		if tid == NoTopic {
			continue
		}
		if int(tid) >= len(tx.Topics) {
			return fmt.Errorf("taxonomy: entity %d assigned to unknown topic %d", e, tid)
		}
	}
	return nil
}
