package experiments

import (
	"fmt"

	"shoal/internal/abtest"
	"shoal/internal/eval"
	"shoal/internal/recommend"
)

// E1Precision reproduces the item-topic placement evaluation (§3): the
// paper's experts sampled 1000 topics × 100 items and judged 98% of
// placements correct. Here the judgment is mechanical against the
// generator's ground truth, repeated over several corpus seeds.
func E1Precision(sc Scale, seeds []uint64) (*Table, error) {
	t := &Table{
		ID:         "E1",
		Title:      "Item-topic placement precision (1000x100 sampling protocol)",
		PaperClaim: "precision > 98% by expert sampling evaluation",
		Header:     []string{"seed", "items", "topics-evaluated", "items-judged", "precision"},
	}
	var sum float64
	for _, seed := range seeds {
		corpus, b, err := buildSystem(sc, seed)
		if err != nil {
			return nil, err
		}
		res, err := eval.Precision(b.Taxonomy, corpus, eval.PrecisionConfig{
			SampleTopics:   1000,
			ItemsPerTopic:  100,
			MinTopicItems:  3,
			RootTopicsOnly: true,
			Seed:           seed,
		})
		if err != nil {
			return nil, err
		}
		sum += res.Precision
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", seed), itoa(len(corpus.Items)),
			itoa(res.TopicsEvaluated), itoa(res.ItemsJudged), pct(res.Precision),
		})
	}
	mean := sum / float64(len(seeds))
	t.Rows = append(t.Rows, []string{"mean", "", "", "", pct(mean)})
	t.Notes = append(t.Notes,
		"judgment: item's ground-truth scenario matches its topic's majority scenario",
		"the generator's scenario labels replace the paper's human experts (DESIGN.md 1.3)")
	return t, nil
}

// E2ABTest reproduces the online A/B test (§3, Fig. 4): control serves
// category-matched panels, experiment serves topic-matched panels; the
// paper reports a 5% CTR lift over 3M users.
func E2ABTest(sc Scale, users int, seeds []uint64) (*Table, error) {
	t := &Table{
		ID:         "E2",
		Title:      "Online A/B test simulation: category vs topic recommendations",
		PaperClaim: "SHOAL boosts CTR by 5% (3M-user online A/B test)",
		Header:     []string{"seed", "arm", "impressions", "clicks", "CTR", "lift", "z"},
	}
	var liftSum float64
	for _, seed := range seeds {
		corpus, b, err := buildSystem(sc, seed)
		if err != nil {
			return nil, err
		}
		ctl, err := recommend.NewCategoryRecommender(corpus)
		if err != nil {
			return nil, err
		}
		exp, err := recommend.NewTopicRecommender(corpus, b.Taxonomy)
		if err != nil {
			return nil, err
		}
		cfg := abtest.DefaultConfig()
		cfg.Users = users
		cfg.Seed = seed
		res, err := abtest.Run(corpus, ctl, exp, cfg)
		if err != nil {
			return nil, err
		}
		liftSum += res.Lift
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("%d", seed), res.Control.Name,
				i64toa(res.Control.Impressions), i64toa(res.Control.Clicks),
				f4(res.Control.CTR), "", ""},
			[]string{fmt.Sprintf("%d", seed), res.Experiment.Name,
				i64toa(res.Experiment.Impressions), i64toa(res.Experiment.Clicks),
				f4(res.Experiment.CTR), pct(res.Lift), f3(res.ZScore)},
		)
	}
	t.Rows = append(t.Rows, []string{"mean", "", "", "", "", pct(liftSum / float64(len(seeds))), ""})
	t.Notes = append(t.Notes,
		"user model: click prob rises when a recommendation serves the user's latent scenario",
		"lift is relative: (CTR_exp - CTR_ctl) / CTR_ctl")
	return t, nil
}
