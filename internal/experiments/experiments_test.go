package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// The experiment functions are exercised at Small scale with one seed so
// the suite stays fast; shape assertions check the paper's qualitative
// claims rather than absolute numbers.

func TestE1PrecisionHigh(t *testing.T) {
	tab, err := E1Precision(Small, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 { // one seed + mean
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	prec := parsePct(t, tab.Rows[0][4])
	if prec < 0.90 {
		t.Fatalf("E1 precision %.3f below 0.90", prec)
	}
}

func TestE2ABTestPositiveLift(t *testing.T) {
	tab, err := E2ABTest(Small, 20_000, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	// Last row is the mean lift.
	mean := tab.Rows[len(tab.Rows)-1]
	lift := parsePct(t, mean[5])
	if lift <= 0 {
		t.Fatalf("E2 mean lift %.4f not positive", lift)
	}
}

func TestE3ModularityAboveThreshold(t *testing.T) {
	tab, err := E3Modularity(Small, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		q, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if q <= 0.3 {
			t.Fatalf("modularity %f not above 0.3 (paper claim)", q)
		}
	}
}

func TestE4ScalingRuns(t *testing.T) {
	tab, err := E4Scaling(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("rows = %d, want sequential + >=1 parallel", len(tab.Rows))
	}
	if tab.Rows[0][0] != "sequential-hac" {
		t.Fatalf("first row = %v, want sequential baseline", tab.Rows[0])
	}
}

func TestE5DiffusionMonotone(t *testing.T) {
	tab, err := E5Diffusion(Small, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// round1-selected must be non-increasing in r (paper claim).
	prev := int(^uint(0) >> 1)
	for _, row := range tab.Rows {
		sel, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		if sel > prev {
			t.Fatalf("round1-selected increased with r: %v", tab.Rows)
		}
		prev = sel
	}
}

func TestE6AlphaSweep(t *testing.T) {
	tab, err := E6Alpha(Small, 1, []float64{0, 0.7, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// All NMI values must be valid numbers in [0,1].
	for _, row := range tab.Rows {
		nmi, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if nmi < 0 || nmi > 1 {
			t.Fatalf("NMI %f outside [0,1]", nmi)
		}
	}
}

func TestE7ThresholdMonotone(t *testing.T) {
	tab, err := E7CatCorr(Small, 1, []int{0, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	prev := int(^uint(0) >> 1)
	for _, row := range tab.Rows {
		kept, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		if kept > prev {
			t.Fatalf("pairs kept increased with threshold: %v", tab.Rows)
		}
		prev = kept
	}
}

func TestE8LinkageRows(t *testing.T) {
	tab, err := E8Linkage(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 linkages", len(tab.Rows))
	}
	names := map[string]bool{}
	for _, row := range tab.Rows {
		names[row[0]] = true
	}
	if !names["sqrt-size"] || !names["unweighted"] || !names["size-proportional"] {
		t.Fatalf("missing linkage rows: %v", names)
	}
}

func TestE9BSPIdentical(t *testing.T) {
	tab, err := E9BSP(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[1] == "bsp(+chaos)" && row[4] != "true" {
			t.Fatalf("BSP result differs from shared-memory: %v", row)
		}
	}
}

func TestF3Table(t *testing.T) {
	tab, err := F3LocalMaxima()
	if err != nil {
		t.Fatal(err)
	}
	// Row r=2 must list exactly AB and EF.
	var r2 string
	for _, row := range tab.Rows {
		if row[0] == "2" {
			r2 = row[1]
		}
	}
	if !strings.Contains(r2, "AB@0.90") || !strings.Contains(r2, "EF@0.91") {
		t.Fatalf("r=2 selection = %q, want AB@0.90 and EF@0.91", r2)
	}
	if strings.Count(r2, "@") != 2 {
		t.Fatalf("r=2 selected extra edges: %q", r2)
	}
}

func TestE10BaselineComparison(t *testing.T) {
	tab, err := E10Baseline(Small, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 methods", len(tab.Rows))
	}
	// The paper's qualitative claim: on items whose titles carry no
	// intent signal, query coalition must beat embedding-only
	// clustering.
	shoalAmb, err := strconv.ParseFloat(tab.Rows[0][4], 64)
	if err != nil {
		t.Fatal(err)
	}
	kmAmb, err := strconv.ParseFloat(tab.Rows[1][4], 64)
	if err != nil {
		t.Fatal(err)
	}
	if shoalAmb <= kmAmb {
		t.Fatalf("SHOAL ambiguous purity %.3f not above kmeans baseline %.3f", shoalAmb, kmAmb)
	}
}

func TestE11DailyRebuild(t *testing.T) {
	tab, err := E11Daily(Small, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // days 6..9
		t.Fatalf("rows = %d, want 4 rebuild days", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		p := parsePct(t, row[3])
		if p < 0.9 {
			t.Fatalf("day %s precision %.3f below 0.9", row[0], p)
		}
		if i > 0 {
			s, err := strconv.ParseFloat(row[4], 64)
			if err != nil {
				t.Fatal(err)
			}
			if s < 0.4 || s > 1 {
				t.Fatalf("stability %f outside sane range", s)
			}
		}
	}
}

func TestRunnerAllIDs(t *testing.T) {
	r := DefaultRunner(Small)
	ids := r.IDs()
	if len(ids) != 12 {
		t.Fatalf("IDs = %v, want 12 experiments", ids)
	}
	if _, err := r.Run("E99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// Smoke-run the cheapest one through the Runner.
	tab, err := r.Run("F3")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "F3") {
		t.Fatal("render missing experiment id")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "t", PaperClaim: "c",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"12345", "6"}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== X: t ==", "paper: c", "12345", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scale
	}{{"small", Small}, {"Medium", Medium}, {"LARGE", Large}} {
		got, err := ParseScale(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseScale(%q) = %v,%v", tc.in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v / 100
}
