// Package store persists corpora and taxonomies to disk. JSON is the
// interchange format between the cmd tools (shoal-gen → shoal-build →
// shoal-explore); gob is offered for faster reloads of large corpora.
package store

import (
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"shoal/internal/model"
)

// SaveCorpus writes a corpus to path. The encoding follows the extension:
// .json, .json.gz, or .gob (gob+gzip for anything else ending in .gz).
func SaveCorpus(c *model.Corpus, path string) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("store: refusing to save invalid corpus: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	var encErr error
	switch {
	case strings.Contains(filepath.Base(path), ".json"):
		enc := json.NewEncoder(w)
		encErr = enc.Encode(c)
	default:
		encErr = gob.NewEncoder(w).Encode(c)
	}
	if encErr != nil {
		return fmt.Errorf("store: encoding corpus: %w", encErr)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return f.Close()
}

// LoadCorpus reads a corpus written by SaveCorpus and validates it.
func LoadCorpus(path string) (*model.Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	var c model.Corpus
	var decErr error
	switch {
	case strings.Contains(filepath.Base(path), ".json"):
		decErr = json.NewDecoder(r).Decode(&c)
	default:
		decErr = gob.NewDecoder(r).Decode(&c)
	}
	if decErr != nil {
		return nil, fmt.Errorf("store: decoding corpus: %w", decErr)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("store: loaded corpus invalid: %w", err)
	}
	return &c, nil
}
