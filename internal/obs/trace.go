package obs

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// Trace records a hierarchy of timed spans — one build's execution
// tree: pipeline stages at the roots, clustering merge rounds under the
// parallel-hac stage, BSP engine runs under each round. It is safe for
// concurrent spans (stages run in parallel) and exports Chrome
// trace-event JSON loadable in chrome://tracing / Perfetto.
//
// All Span methods and Trace.StartSpan are nil-receiver-safe no-ops, so
// instrumented code runs untouched when no trace is installed.
type Trace struct {
	mu    sync.Mutex
	name  string
	start time.Time
	spans []spanData
}

// spanData is one recorded span. Start/End are offsets from the trace
// start; lanes map to Chrome tids: each root span opens a lane and its
// descendants inherit it, so concurrent roots render side by side while
// nesting within a lane follows time containment.
type spanData struct {
	name   string
	parent int // span index, -1 for roots
	lane   int
	start  time.Duration
	end    time.Duration // 0 while open
	attrs  []Attr
}

// Attr is one span attribute, emitted into the Chrome event's args.
type Attr struct {
	Key   string
	Value any // json-encodable; int/int64/float64 in practice
}

// Span is a handle to an open (or finished) span.
type Span struct {
	t  *Trace
	id int
}

// NewTrace starts an empty trace; the clock starts now.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// StartSpan opens a root-level span in its own lane. Nil-safe.
func (t *Trace) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return t.open(name, -1)
}

func (t *Trace) open(name string, parent int) *Span {
	now := time.Since(t.start)
	t.mu.Lock()
	id := len(t.spans)
	lane := 0
	if parent >= 0 {
		lane = t.spans[parent].lane
	} else {
		for _, s := range t.spans {
			if s.parent == -1 {
				lane++
			}
		}
	}
	t.spans = append(t.spans, spanData{name: name, parent: parent, lane: lane, start: now})
	t.mu.Unlock()
	return &Span{t: t, id: id}
}

// Child opens a sub-span. Nil-safe: a nil parent yields a nil child.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.open(name, s.id)
}

// SetAttr attaches a key/value attribute. Nil-safe.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.id]
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// End closes the span. Nil-safe; a second End keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Since(s.t.start)
	s.t.mu.Lock()
	if sp := &s.t.spans[s.id]; sp.end == 0 {
		sp.end = now
	}
	s.t.mu.Unlock()
}

// SpanCount returns how many spans have been recorded.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// chromeEvent is one Chrome trace-event ("X" complete event, ts/dur in
// microseconds). Args always carries the span's parent name so the
// hierarchy survives tools that ignore lane nesting.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"otherData,omitempty"`
}

// WriteChrome exports the trace as Chrome trace-event JSON. Spans still
// open are emitted with their duration up to now.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return nil
	}
	now := time.Since(t.start)
	t.mu.Lock()
	events := make([]chromeEvent, 0, len(t.spans))
	for _, sp := range t.spans {
		end := sp.end
		if end == 0 {
			end = now
		}
		ev := chromeEvent{
			Name: sp.name,
			Ph:   "X",
			Ts:   float64(sp.start) / 1e3,
			Dur:  float64(end-sp.start) / 1e3,
			Pid:  1,
			Tid:  sp.lane + 1,
		}
		if len(sp.attrs) > 0 || sp.parent >= 0 {
			ev.Args = make(map[string]any, len(sp.attrs)+1)
			if sp.parent >= 0 {
				ev.Args["parent"] = t.spans[sp.parent].name
			}
			for _, a := range sp.attrs {
				ev.Args[a.Key] = jsonSafe(a.Value)
			}
		}
		events = append(events, ev)
	}
	name := t.name
	t.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{
		TraceEvents: events,
		Metadata:    map[string]any{"trace": name},
	})
}

// jsonSafe maps attr values json.Marshal rejects — NaN and the
// infinities (e.g. a sentinel -Inf similarity) — to their string form,
// so one such attr cannot abort the whole export.
func jsonSafe(v any) any {
	if f, ok := v.(float64); ok && (math.IsNaN(f) || math.IsInf(f, 0)) {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return v
}

// spanCtxKey keys the current span in a context.
type spanCtxKey struct{}

// ContextWithSpan installs s as the context's current span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's current span, or nil — and nil
// composes: every Span method no-ops on nil, so callers never branch.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
