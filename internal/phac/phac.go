// Package phac implements Parallel Hierarchical Agglomerative Clustering,
// the core contribution of the paper (§2.2).
//
// Classic HAC merges one globally-best pair per iteration, which neither
// tolerates sparse similarity matrices (Challenge 1) nor scales (Challenge
// 2). Parallel HAC rounds do three things instead:
//
//  1. Diffusion — every node starts knowing its best incident edge; for r
//     iterations nodes exchange the best edge they know with their
//     neighbors and keep the maximum. Edges are totally ordered by
//     (similarity desc, canonical id asc) so ties are deterministic.
//  2. Selection — an edge is *locally maximal* if, after diffusion, both
//     of its endpoints still consider it the best edge they have heard
//     of. Locally maximal edges form a node-disjoint matching: they can
//     all be merged in parallel. Smaller r ⇒ more selected edges ⇒ more
//     parallelism (the paper fixes r = 2).
//  3. Merge + update — each selected pair becomes a new cluster; the
//     neighborhood similarities are recomputed with the √-normalized rule
//     of Eq. 4, treating missing edges as 0. When both endpoints of an old
//     edge merged in the same round the two Eq. 4 applications compose
//     multiplicatively.
//
// Rounds repeat until no edge reaches the stop threshold. The globally
// maximal edge is always locally maximal, so progress is guaranteed.
package phac

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"shoal/internal/dendrogram"
	"shoal/internal/wgraph"
)

// Linkage selects the similarity-update rule applied on merge. The paper
// uses SqrtSize (Eq. 4); the alternatives exist for the E8 ablation.
type Linkage int

const (
	// LinkageSqrtSize is Eq. 4: weights √nA/(√nA+√nB) and √nB/(√nA+√nB).
	LinkageSqrtSize Linkage = iota
	// LinkageUnweighted averages with weights 1/2 regardless of size.
	LinkageUnweighted
	// LinkageSizeProportional weights by nA/(nA+nB) (UPGMA-style).
	LinkageSizeProportional
)

func (l Linkage) String() string {
	switch l {
	case LinkageSqrtSize:
		return "sqrt-size"
	case LinkageUnweighted:
		return "unweighted"
	case LinkageSizeProportional:
		return "size-proportional"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// weights returns the (wA, wB) merge weights for sizes nA, nB.
func (l Linkage) weights(nA, nB float64) (float64, float64) {
	switch l {
	case LinkageUnweighted:
		return 0.5, 0.5
	case LinkageSizeProportional:
		den := nA + nB
		return nA / den, nB / den
	default:
		sa, sb := math.Sqrt(nA), math.Sqrt(nB)
		den := sa + sb
		return sa / den, sb / den
	}
}

// Config controls Parallel HAC.
type Config struct {
	// StopThreshold ends clustering when no edge reaches it.
	StopThreshold float64
	// DiffusionRounds is r, the number of max-exchange iterations per
	// round. The paper sets 2.
	DiffusionRounds int
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
	// MaxRounds caps clustering rounds; 0 means unlimited.
	MaxRounds int
	// Linkage is the merge update rule; zero value is the paper's Eq. 4.
	Linkage Linkage
}

// DefaultConfig mirrors the paper: r=2, threshold 0.35.
func DefaultConfig() Config {
	return Config{StopThreshold: 0.35, DiffusionRounds: 2}
}

func (c *Config) validate() error {
	if c.StopThreshold < 0 || c.StopThreshold > 1 {
		return fmt.Errorf("phac: StopThreshold must be in [0,1], got %f", c.StopThreshold)
	}
	if c.DiffusionRounds < 0 {
		return fmt.Errorf("phac: DiffusionRounds must be non-negative, got %d", c.DiffusionRounds)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Linkage < LinkageSqrtSize || c.Linkage > LinkageSizeProportional {
		return fmt.Errorf("phac: unknown linkage %d", c.Linkage)
	}
	return nil
}

// RoundStat profiles one Parallel HAC round — the data behind experiment
// E5 (diffusion iterations vs. parallelism).
type RoundStat struct {
	Round int
	// ActiveClusters is the number of alive clusters entering the round.
	ActiveClusters int
	// ActiveEdges is the number of edges >= StopThreshold entering it.
	ActiveEdges int
	// Selected is the number of locally-maximal edges merged.
	Selected int
	// BestSim is the global maximum similarity entering the round.
	BestSim float64
}

// Result is the output of Parallel HAC.
type Result struct {
	Dendrogram *dendrogram.Dendrogram
	Rounds     []RoundStat
}

// edgeRef is a totally ordered reference to an edge: better means higher
// similarity, ties broken by smaller canonical (u,v).
type edgeRef struct {
	u, v int32 // canonical: u < v
	sim  float64
}

var noEdge = edgeRef{u: -1, v: -1, sim: math.Inf(-1)}

// better reports whether a beats b in the diffusion total order.
func better(a, b edgeRef) bool {
	if a.sim != b.sim {
		return a.sim > b.sim
	}
	if a.u != b.u {
		return a.u < b.u
	}
	return a.v < b.v
}

// Cluster runs Parallel HAC over a copy of g with initial cluster sizes
// (nil means all 1). Leaf ids in the dendrogram are graph node ids.
// The result is deterministic and independent of cfg.Workers.
// Cancellation is checked between clustering rounds.
func Cluster(ctx context.Context, g *wgraph.Graph, sizes []int, cfg Config) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("phac: empty graph")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sizes != nil && len(sizes) != n {
		return nil, fmt.Errorf("phac: sizes length %d != nodes %d", len(sizes), n)
	}

	st := newState(g, sizes, cfg)
	res := &Result{Dendrogram: &dendrogram.Dendrogram{Leaves: n}}

	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			break
		}
		selected, activeEdges, bestSim := st.selectLocalMaxima(cfg.DiffusionRounds, cfg.Workers, cfg.StopThreshold)
		stat := RoundStat{
			Round: round, ActiveClusters: st.aliveCount,
			ActiveEdges: activeEdges, BestSim: bestSim, Selected: len(selected),
		}
		if activeEdges == 0 || bestSim < cfg.StopThreshold {
			break
		}
		res.Rounds = append(res.Rounds, stat)
		if len(selected) == 0 {
			// Cannot happen while an edge >= threshold exists (the
			// global max is always mutual), but guard against it so a
			// bug cannot loop forever.
			return nil, fmt.Errorf("phac: round %d selected no edges with best sim %f", round, bestSim)
		}

		st.mergeSelected(selected, round, cfg, res.Dendrogram)
	}
	return res, nil
}

// state is the mutable clustering state. Cluster ids grow past n as merges
// mint new ids; alive marks current clusters.
type state struct {
	adj        []map[int32]float64
	size       []float64
	alive      []bool
	aliveCount int
	workers    int
	// know/next are the diffusion double buffers, reused across rounds.
	know, next []edgeRef
}

func newState(g *wgraph.Graph, sizes []int, cfg Config) *state {
	n := g.NumNodes()
	st := &state{
		adj:        make([]map[int32]float64, n, 2*n),
		size:       make([]float64, n, 2*n),
		alive:      make([]bool, n, 2*n),
		aliveCount: n,
		workers:    cfg.Workers,
	}
	for i := 0; i < n; i++ {
		st.alive[i] = true
		st.size[i] = 1
		if sizes != nil {
			st.size[i] = float64(sizes[i])
		}
	}
	for _, e := range g.Edges() {
		if st.adj[e.U] == nil {
			st.adj[e.U] = make(map[int32]float64)
		}
		if st.adj[e.V] == nil {
			st.adj[e.V] = make(map[int32]float64)
		}
		st.adj[e.U][e.V] = e.W
		st.adj[e.V][e.U] = e.W
	}
	return st
}

func (st *state) aliveList() []int32 {
	out := make([]int32, 0, st.aliveCount)
	for id := int32(0); int(id) < len(st.alive); id++ {
		if st.alive[id] {
			out = append(out, id)
		}
	}
	return out
}

// selectLocalMaxima runs the diffusion protocol and returns the selected
// node-disjoint matching (sorted canonically) along with the round's edge
// count and global best similarity, gathered during the same scan. Only
// edges >= threshold participate in diffusion.
func (st *state) selectLocalMaxima(rounds, workers int, threshold float64) ([]edgeRef, int, float64) {
	total := len(st.adj)
	for len(st.know) < total {
		st.know = append(st.know, noEdge)
		st.next = append(st.next, noEdge)
	}
	know, next := st.know, st.next
	nodes := st.aliveList()

	// Iteration 0: best incident edge per node, plus round statistics
	// (edge endpoints counted once, at the smaller id).
	degrees := make([]int64, len(nodes))
	bests := make([]edgeRef, len(nodes))
	parallelIdx(len(nodes), workers, func(i int) {
		u := nodes[i]
		best := noEdge
		edges := int64(0)
		bestAny := noEdge
		for v, w := range st.adj[u] {
			if u < v {
				edges++
			}
			cu, cv := canon(u, v)
			cand := edgeRef{u: cu, v: cv, sim: w}
			if better(cand, bestAny) {
				bestAny = cand
			}
			if w < threshold {
				continue
			}
			if better(cand, best) {
				best = cand
			}
		}
		know[u] = best
		degrees[i] = edges
		bests[i] = bestAny
	})
	var activeEdges int64
	globalBest := noEdge
	for i := range nodes {
		activeEdges += degrees[i]
		if better(bests[i], globalBest) {
			globalBest = bests[i]
		}
	}

	// r exchange iterations: take the max over own and neighbors' known
	// edges. Double-buffered so reads see only the previous iteration.
	for it := 0; it < rounds; it++ {
		parallelOver(nodes, workers, func(u int32) {
			best := know[u]
			for v := range st.adj[u] {
				if better(know[v], best) {
					best = know[v]
				}
			}
			next[u] = best
		})
		know, next = next, know
	}
	st.know, st.next = know, next

	// Selection: an edge whose both endpoints know it is locally maximal.
	var mu sync.Mutex
	var selected []edgeRef
	parallelOver(nodes, workers, func(u int32) {
		e := know[u]
		if e.u != u { // evaluate each edge once, at its smaller endpoint
			return
		}
		if e.sim < threshold {
			return
		}
		if know[e.v] == e {
			mu.Lock()
			selected = append(selected, e)
			mu.Unlock()
		}
	})
	sort.Slice(selected, func(i, j int) bool {
		if selected[i].u != selected[j].u {
			return selected[i].u < selected[j].u
		}
		return selected[i].v < selected[j].v
	})
	return selected, int(activeEdges), globalBest.sim
}

// contrib is one old-edge contribution to a new edge's Eq. 4 sum, tagged
// with its origin for deterministic summation order.
type contrib struct {
	key  [2]int32 // canonical new endpoints
	orig [2]int32 // canonical old endpoints
	val  float64
}

// mergeSelected applies a round's matching: mints new cluster ids, emits
// dendrogram merges, and rebuilds affected adjacency under the linkage
// rule. Deterministic regardless of worker count: contributions are
// aggregated in sorted origin order.
func (st *state) mergeSelected(selected []edgeRef, round int, cfg Config, d *dendrogram.Dendrogram) {
	base := int32(len(st.adj))
	// newID maps a merged old cluster to its new cluster id; weight maps
	// it to its Eq. 4 coefficient.
	newID := make(map[int32]int32, 2*len(selected))
	weight := make(map[int32]float64, 2*len(selected))
	for i, e := range selected {
		id := base + int32(i)
		wu, wv := cfg.Linkage.weights(st.size[e.u], st.size[e.v])
		newID[e.u] = id
		newID[e.v] = id
		weight[e.u] = wu
		weight[e.v] = wv
		d.Merges = append(d.Merges, dendrogram.Merge{
			A: e.u, B: e.v, New: id, Sim: e.sim, Round: int32(round),
		})
	}

	// Generate contributions from every old edge with >= 1 merged
	// endpoint. Each selected pair's owner scans its two members;
	// old edges between two merged nodes are emitted by the owner of the
	// smaller new id only (dedup).
	perOwner := make([][]contrib, len(selected))
	parallelIdx(len(selected), st.workers, func(i int) {
		e := selected[i]
		w := base + int32(i)
		var out []contrib
		for _, member := range [2]int32{e.u, e.v} {
			wm := weight[member]
			for nb, s := range st.adj[member] {
				mappedNb, merged := newID[nb]
				var q int32
				wq := 1.0
				if merged {
					if mappedNb == w {
						continue // internal edge of this merge
					}
					q = mappedNb
					wq = weight[nb]
					if q < w {
						continue // the other owner emits this one
					}
				} else {
					q = nb
				}
				a, b := canon(w, q)
				oa, ob := canon(member, nb)
				out = append(out, contrib{key: [2]int32{a, b}, orig: [2]int32{oa, ob}, val: wm * wq * s})
			}
		}
		perOwner[i] = out
	})

	// Aggregate: flatten in owner order, group by key, sum each group in
	// sorted origin order for exact determinism.
	var all []contrib
	for _, lst := range perOwner {
		all = append(all, lst...)
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].key != all[b].key {
			if all[a].key[0] != all[b].key[0] {
				return all[a].key[0] < all[b].key[0]
			}
			return all[a].key[1] < all[b].key[1]
		}
		if all[a].orig[0] != all[b].orig[0] {
			return all[a].orig[0] < all[b].orig[0]
		}
		return all[a].orig[1] < all[b].orig[1]
	})

	// Extend state for the minted clusters.
	for i, e := range selected {
		_ = i
		st.adj = append(st.adj, make(map[int32]float64))
		st.size = append(st.size, st.size[e.u]+st.size[e.v])
		st.alive = append(st.alive, true)
	}
	for _, e := range selected {
		st.alive[e.u] = false
		st.alive[e.v] = false
	}
	st.aliveCount -= len(selected)

	// Remove stale references to merged nodes from surviving neighbors.
	for _, e := range selected {
		for _, member := range [2]int32{e.u, e.v} {
			for nb := range st.adj[member] {
				if _, merged := newID[nb]; !merged {
					delete(st.adj[nb], member)
				}
			}
			st.adj[member] = nil
		}
	}

	// Apply aggregated new edges, pruning below threshold: Eq. 4 is a
	// convex combination, so a sub-threshold edge can never feed a
	// future >= threshold similarity.
	for i := 0; i < len(all); {
		j := i
		var sum float64
		for ; j < len(all) && all[j].key == all[i].key; j++ {
			sum += all[j].val
		}
		u, v := all[i].key[0], all[i].key[1]
		if sum >= cfg.StopThreshold {
			if st.adj[u] == nil {
				st.adj[u] = make(map[int32]float64)
			}
			if st.adj[v] == nil {
				st.adj[v] = make(map[int32]float64)
			}
			st.adj[u][v] = sum
			st.adj[v][u] = sum
		}
		i = j
	}
}

func canon(u, v int32) (int32, int32) {
	if u < v {
		return u, v
	}
	return v, u
}

// parallelOver runs fn over the node list with the given parallelism.
func parallelOver(nodes []int32, workers int, fn func(u int32)) {
	if workers <= 1 || len(nodes) < 64 {
		for _, u := range nodes {
			fn(u)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(nodes); i += workers {
				fn(nodes[i])
			}
		}(w)
	}
	wg.Wait()
}

// parallelIdx runs fn over [0,n) with the given parallelism.
func parallelIdx(n, workers int, fn func(i int)) {
	if workers <= 1 || n < 16 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
