// Package benchjson runs the graph-substrate micro-benchmarks at a
// fixed, larger-than-unit-test synthetic scale and emits machine-readable
// ns/op + allocs/op per benchmark. cmd/shoal-bench -benchjson uses it to
// write BENCH_<pr>.json files, giving the repo a benchmark trajectory
// across PRs that CI and future perf work can diff against.
package benchjson

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"shoal/internal/bipartite"
	"shoal/internal/bm25"
	"shoal/internal/core"
	"shoal/internal/entitygraph"
	"shoal/internal/hac"
	"shoal/internal/modularity"
	"shoal/internal/phac"
	"shoal/internal/synth"
	"shoal/internal/textutil"
	"shoal/internal/wgraph"
)

// Result is one benchmark's outcome at the fixed scale.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// fixedWorld builds the shared fixture: a synthetic corpus roughly 4x
// the unit-test bench scale, plus a full pipeline build over it. The
// scale is fixed (not flag-tunable) so BENCH_*.json files from
// different PRs are comparable.
func fixedWorld() (*core.Build, *bipartite.Graph, []int, error) {
	gen := synth.DefaultConfig()
	gen.Scenarios = 32
	gen.ItemsPerScenario = 150
	gen.QueriesPerScenario = 30
	gen.NoiseItems = 160
	gen.HeadQueries = 20
	corpus, err := synth.Generate(gen)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Word2Vec.Epochs = 2
	cfg.Word2Vec.Dim = 24
	cfg.Graph.MinSimilarity = 0.25
	cfg.Graph.MaxQueryFanout = 50
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3, 0.5}
	b, err := core.Run(corpus, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	clicks := bipartite.New(7)
	if err := clicks.AddAll(corpus.Clicks); err != nil {
		return nil, nil, nil, err
	}
	sizes := make([]int, len(b.Entities.Entities))
	for i := range sizes {
		sizes[i] = b.Entities.Entities[i].Size()
	}
	return b, clicks, sizes, nil
}

// Run executes every substrate benchmark once and returns the results
// sorted by name.
func Run() ([]Result, error) {
	b, clicks, sizes, err := fixedWorld()
	if err != nil {
		return nil, err
	}
	g := b.Graph
	labels := b.Dendrogram.CutAt(0.12)
	docs := make([][]string, 0, len(b.Corpus.Items))
	for i := range b.Corpus.Items {
		docs = append(docs, textutil.Tokenize(b.Corpus.Items[i].Title))
	}
	idx, err := bm25.Build(docs, bm25.DefaultConfig())
	if err != nil {
		return nil, err
	}
	query := textutil.Tokenize(b.Corpus.Queries[0].Text)
	edges := g.Edges() // materialized once: csr-from-edges times CSR construction only
	ctx := context.Background()

	var firstErr error
	record := func(op func() error) func(*testing.B) {
		return func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if err := op(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	benches := map[string]func(*testing.B){
		"diffuse-r2": record(func() error {
			_, err := phac.Diffuse(g, 2, 0.12, 0)
			return err
		}),
		"phac-cluster": record(func() error {
			_, err := phac.Cluster(ctx, g, sizes, phac.Config{StopThreshold: 0.12, DiffusionRounds: 2})
			return err
		}),
		"hac-sequential": record(func() error {
			_, err := hac.Cluster(g, sizes, hac.Config{StopThreshold: 0.12})
			return err
		}),
		"modularity": record(func() error {
			_, err := modularity.Compute(g, labels)
			return err
		}),
		"entitygraph-build": record(func() error {
			_, err := entitygraph.Build(ctx, b.Entities, clicks, b.Embeddings, entitygraph.DefaultConfig())
			return err
		}),
		"csr-from-edges": record(func() error {
			_, err := wgraph.FromEdges(g.NumNodes(), edges)
			return err
		}),
		"bm25-topk": record(func() error {
			idx.TopK(query, 10)
			return nil
		}),
	}

	out := make([]Result, 0, len(benches))
	for name, fn := range benches {
		r := testing.Benchmark(fn)
		if firstErr != nil {
			return nil, fmt.Errorf("benchjson: %s: %w", name, firstErr)
		}
		out = append(out, Result{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// WriteFile runs the suite and writes the results as indented JSON.
func WriteFile(path string) error {
	results, err := Run()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
