package benchjson

import (
	"strings"
	"testing"
)

func TestRegressions(t *testing.T) {
	oldRes := []Result{
		{Name: "a", NsPerOp: 1000},
		{Name: "b", NsPerOp: 1000},
		{Name: "c", NsPerOp: 1000},
		{Name: "gone", NsPerOp: 1000},
	}
	newRes := []Result{
		{Name: "a", NsPerOp: 1249}, // +24.9%: inside the gate
		{Name: "b", NsPerOp: 1300}, // +30%: regression
		{Name: "c", NsPerOp: 700},  // improvement
		{Name: "new", NsPerOp: 1},  // not in old: ignored
	}
	got := Regressions(oldRes, newRes, 0.25)
	if len(got) != 1 || !strings.HasPrefix(got[0], "b:") {
		t.Fatalf("Regressions = %v, want exactly one entry for b", got)
	}
	if got := Regressions(oldRes, oldRes, 0.25); len(got) != 0 {
		t.Fatalf("self-comparison regressed: %v", got)
	}
	// Tightening the threshold to zero flags any growth at all.
	if got := Regressions(oldRes, newRes, 0); len(got) != 2 {
		t.Fatalf("zero-threshold gate = %v, want a and b", got)
	}
}

// TestVsSerialCeiling pins the derived-ratio assertion: a *-vs-serial
// entry at or above VsSerialCeiling fails regardless of the relative
// threshold or whether the old file knew the name, while ratios under
// the ceiling only answer to the normal relative comparison.
func TestVsSerialCeiling(t *testing.T) {
	oldRes := []Result{
		{Name: "csr-from-edges-shards2-vs-serial", NsPerOp: 1.0},
	}
	newRes := []Result{
		{Name: "csr-from-edges-shards2-vs-serial", NsPerOp: 1.05}, // noisy parity: allowed
		{Name: "csr-from-edges-shards4-vs-serial", NsPerOp: 1.10}, // at ceiling: lost to serial
		{Name: "csr-from-edges-shards8-vs-serial", NsPerOp: 1.58}, // the PR-3 regression shape
	}
	got := Regressions(oldRes, newRes, 0.05) // tight relative gate: baseline ceiling applies
	if len(got) != 2 {
		t.Fatalf("Regressions = %v, want the two above-ceiling ratios", got)
	}
	for _, line := range got {
		if !strings.Contains(line, "lost to serial") {
			t.Fatalf("unexpected report line %q", line)
		}
	}
	// A wide runner-side threshold widens the ceiling proportionally
	// (1 + threshold): the at-ceiling parity case passes, the PR-3
	// regression shape still fails.
	got = Regressions(oldRes, newRes, 0.5)
	if len(got) != 1 || !strings.Contains(got[0], "shards8") {
		t.Fatalf("wide-threshold gate = %v, want only the shards8 regression", got)
	}
	// A ratio jumping past the relative threshold but under the ceiling
	// is still a trajectory regression.
	got = Regressions(
		[]Result{{Name: "csr-from-edges-shards2-vs-serial", NsPerOp: 0.95}},
		[]Result{{Name: "csr-from-edges-shards2-vs-serial", NsPerOp: 1.09}}, 0.1)
	if len(got) != 1 || !strings.Contains(got[0], "ns/op") {
		t.Fatalf("relative gate on sub-ceiling ratio = %v, want one trajectory entry", got)
	}
}

// TestBspVsSharedCeiling pins the BSP-gap assertions: a
// bsp-diffuse-*-vs-shared entry at or above BspVsSharedCeiling and a
// phac-cluster-bsp-vs-shared entry at or above
// ClusterBspVsSharedCeiling fail outright — even when the old file
// never recorded the name — while sub-ceiling ratios answer only to
// the normal relative comparison and a wide runner-side threshold
// widens every ceiling to 1 + threshold.
func TestBspVsSharedCeiling(t *testing.T) {
	var oldRes []Result // ratio names brand new in this trajectory
	newRes := []Result{
		{Name: "bsp-diffuse-r2-vs-shared", NsPerOp: 1.25},   // post-PR-6 shape: allowed
		{Name: "bsp-diffuse-r6-vs-shared", NsPerOp: 1.45},   // at ceiling: gap reopened
		{Name: "bsp-diffuse-r4-vs-shared", NsPerOp: 2.02},   // the PR-5 gap shape
		{Name: "phac-cluster-bsp-vs-shared", NsPerOp: 2.52}, // the pre-memoization shape
	}
	got := Regressions(oldRes, newRes, 0.25)
	if len(got) != 3 {
		t.Fatalf("Regressions = %v, want the three above-ceiling ratios", got)
	}
	for _, line := range got {
		if strings.Contains(line, "phac-cluster-bsp") {
			if !strings.Contains(line, "cross-round memoization") {
				t.Fatalf("cluster ratio reported against the wrong ceiling: %q", line)
			}
			continue
		}
		if !strings.Contains(line, "fell behind the shared-memory path") {
			t.Fatalf("unexpected report line %q", line)
		}
	}
	// Runner-side slack: a 60% threshold widens the diffusion ceiling to
	// 1.6 (the cluster ceiling already sits at 1.8), so the at-ceiling r6
	// parity case passes while the 2x diffusion shape and the 2.5x
	// cluster shape still fail.
	got = Regressions(oldRes, newRes, 0.6)
	if len(got) != 2 || !strings.Contains(got[0], "bsp-diffuse-r4") ||
		!strings.Contains(got[1], "phac-cluster-bsp") {
		t.Fatalf("wide-threshold gate = %v, want the r4 and cluster ratios", got)
	}
	// The post-PR-10 paired cluster shape (~1.46 after the shared-memory
	// denominator's in-place-CSR speedup) sits under its ceiling even
	// with noise on top; a ratio at the ceiling fails outright.
	got = Regressions(nil, []Result{{Name: "phac-cluster-bsp-vs-shared", NsPerOp: 1.60}}, 0.25)
	if len(got) != 0 {
		t.Fatalf("memoized cluster shape gated: %v", got)
	}
	got = Regressions(nil, []Result{{Name: "phac-cluster-bsp-vs-shared", NsPerOp: 1.80}}, 0.25)
	if len(got) != 1 || !strings.Contains(got[0], "cross-round memoization") {
		t.Fatalf("at-ceiling cluster ratio = %v, want one hard-gate entry", got)
	}
	// Under the ceiling, the relative trajectory comparison still bites.
	got = Regressions(
		[]Result{{Name: "bsp-diffuse-r2-vs-shared", NsPerOp: 1.10}},
		[]Result{{Name: "bsp-diffuse-r2-vs-shared", NsPerOp: 1.40}}, 0.25)
	if len(got) != 1 || !strings.Contains(got[0], "ns/op") {
		t.Fatalf("relative gate on sub-ceiling ratio = %v, want one trajectory entry", got)
	}
}

// TestObsOverheadCeiling pins the observability budget: an
// obs-overhead-vs-bare entry at or above ObsOverheadCeiling fails
// outright — even when the old file never recorded the name — while a
// sub-ceiling ratio answers only to the normal relative comparison and
// a wide runner-side threshold widens the ceiling to 1 + threshold.
func TestObsOverheadCeiling(t *testing.T) {
	var oldRes []Result // ratio brand new in this trajectory
	got := Regressions(oldRes, []Result{{Name: "obs-overhead-vs-bare", NsPerOp: 1.03}}, 0.25)
	if len(got) != 0 {
		t.Fatalf("near-free instrumentation gated: %v", got)
	}
	got = Regressions(oldRes, []Result{{Name: "obs-overhead-vs-bare", NsPerOp: 1.10}}, 0.05)
	if len(got) != 1 || !strings.Contains(got[0], "hot-path budget") {
		t.Fatalf("at-ceiling overhead = %v, want one hard-gate entry", got)
	}
	// Runner-side slack: a 50% threshold widens the ceiling to 1.5, so a
	// noisy 1.2 passes while a middleware gone quadratic still fails.
	got = Regressions(oldRes, []Result{
		{Name: "obs-overhead-vs-bare", NsPerOp: 1.2},
	}, 0.5)
	if len(got) != 0 {
		t.Fatalf("wide-threshold gate = %v, want none", got)
	}
	got = Regressions(oldRes, []Result{{Name: "obs-overhead-vs-bare", NsPerOp: 1.62}}, 0.5)
	if len(got) != 1 || !strings.Contains(got[0], "hot-path budget") {
		t.Fatalf("wide-threshold blown budget = %v, want one hard-gate entry", got)
	}
	// Under the ceiling, the relative trajectory comparison still bites.
	got = Regressions(
		[]Result{{Name: "obs-overhead-vs-bare", NsPerOp: 1.00}},
		[]Result{{Name: "obs-overhead-vs-bare", NsPerOp: 1.08}}, 0.05)
	if len(got) != 1 || !strings.Contains(got[0], "ns/op") {
		t.Fatalf("relative gate on sub-ceiling ratio = %v, want one trajectory entry", got)
	}
}

// TestIncrementalVsFullCeiling pins the delta-rebuild margin: an
// incremental-vs-full entry at or above IncrementalVsFullCeiling fails
// outright — even when the old file never recorded the name — and,
// unlike every other ceiling, this one does NOT widen with the gate's
// relative threshold: the ratio's whole budget sits below 1.0, so the
// 0.6 line holds even on wide-tolerance runner-side gates.
func TestIncrementalVsFullCeiling(t *testing.T) {
	var oldRes []Result // ratio brand new in this trajectory
	got := Regressions(oldRes, []Result{{Name: "incremental-vs-full", NsPerOp: 0.49}}, 0.25)
	if len(got) != 0 {
		t.Fatalf("reference-shape margin gated: %v", got)
	}
	got = Regressions(oldRes, []Result{{Name: "incremental-vs-full", NsPerOp: 0.60}}, 0.25)
	if len(got) != 1 || !strings.Contains(got[0], "lost its margin") {
		t.Fatalf("at-ceiling ratio = %v, want one hard-gate entry", got)
	}
	// The runner-side 50% threshold widens the >1 ceilings to 1.5 —
	// but not this one: 0.60 still fails at any tolerance.
	got = Regressions(oldRes, []Result{{Name: "incremental-vs-full", NsPerOp: 0.60}}, 0.5)
	if len(got) != 1 || !strings.Contains(got[0], "lost its margin") {
		t.Fatalf("wide-threshold at-ceiling ratio = %v, want one hard-gate entry", got)
	}
	// Under the ceiling, the relative trajectory comparison still bites:
	// a margin eroding from 0.40 to 0.55 is a regression even though
	// both sides beat the hard line.
	got = Regressions(
		[]Result{{Name: "incremental-vs-full", NsPerOp: 0.40}},
		[]Result{{Name: "incremental-vs-full", NsPerOp: 0.55}}, 0.25)
	if len(got) != 1 || !strings.Contains(got[0], "ns/op") {
		t.Fatalf("relative gate on sub-ceiling ratio = %v, want one trajectory entry", got)
	}
}

// TestClusterWarmVsColdCeiling pins the warm-start sign gate: a
// cluster-warm-vs-cold entry at or above ClusterWarmVsColdCeiling
// fails outright — even when the old file never recorded the name —
// and, like the incremental-vs-full ceiling, it does NOT widen with
// the gate's relative threshold: the line sits exactly at parity, so
// any widening would admit a warm start that loses to cold.
func TestClusterWarmVsColdCeiling(t *testing.T) {
	var oldRes []Result // ratio brand new in this trajectory
	got := Regressions(oldRes, []Result{{Name: "cluster-warm-vs-cold", NsPerOp: 0.96}}, 0.25)
	if len(got) != 0 {
		t.Fatalf("reference-shape warm win gated: %v", got)
	}
	got = Regressions(oldRes, []Result{{Name: "cluster-warm-vs-cold", NsPerOp: 1.00}}, 0.25)
	if len(got) != 1 || !strings.Contains(got[0], "lost to cold") {
		t.Fatalf("at-ceiling ratio = %v, want one hard-gate entry", got)
	}
	// Runner-side slack widens the >1 ceilings — but not this one: a
	// warm start at parity fails at any tolerance.
	got = Regressions(oldRes, []Result{{Name: "cluster-warm-vs-cold", NsPerOp: 1.00}}, 0.5)
	if len(got) != 1 || !strings.Contains(got[0], "lost to cold") {
		t.Fatalf("wide-threshold at-ceiling ratio = %v, want one hard-gate entry", got)
	}
	// Under the ceiling, the relative trajectory comparison still bites:
	// the win eroding from 0.80 to 0.99 is a regression even though both
	// sides beat parity.
	got = Regressions(
		[]Result{{Name: "cluster-warm-vs-cold", NsPerOp: 0.80}},
		[]Result{{Name: "cluster-warm-vs-cold", NsPerOp: 0.99}}, 0.2)
	if len(got) != 1 || !strings.Contains(got[0], "ns/op") {
		t.Fatalf("relative gate on sub-ceiling ratio = %v, want one trajectory entry", got)
	}
}

// The committed-trajectory comparison itself (BENCH_3.json vs
// BENCH_4.json at 25%) lives in CI as the dedicated bench-gate step
// (`shoal-bench -benchgate`), so it is deliberately not duplicated
// here — one check, one threshold, one report. A second runner-side
// step re-runs the suite fresh and gates it against the committed file
// at a wider 50% tolerance, catching machine-visible regressions the
// committed trajectory misses.
