// Command shoal-serve builds a SHOAL taxonomy and serves it over HTTP —
// the online counterpart of the deployed system, which answers millions of
// topic searches per day (paper §1, §3).
//
// Usage:
//
//	shoal-serve -addr :8080                       # curated mini corpus
//	shoal-serve -addr :8080 -corpus corpus.json.gz
//
// Endpoints: /api/search?q=..., /api/topics/{id},
// /api/topics/{id}/items[?category=N], /api/categories/{id}/related,
// /api/stats.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"shoal/internal/core"
	"shoal/internal/serve"
	"shoal/internal/store"
	"shoal/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoal-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	corpusPath := flag.String("corpus", "", "corpus to build from (empty: curated mini corpus)")
	flag.Parse()

	corpus := synth.Curated()
	cfg := core.DefaultConfig()
	cfg.Word2Vec.Epochs = 2
	cfg.Word2Vec.MinCount = 1
	cfg.Graph.MinSimilarity = 0.2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3, 0.5}
	cfg.CatCorr.MinStrength = 0
	if *corpusPath != "" {
		var err error
		corpus, err = store.LoadCorpus(*corpusPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.CatCorr.MinStrength = 2
	}

	start := time.Now()
	b, err := core.Run(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built taxonomy in %v: topics=%d roots=%d\n",
		time.Since(start).Round(time.Millisecond),
		len(b.Taxonomy.Topics), len(b.Taxonomy.Roots()))

	h, err := serve.NewHandler(b)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:         *addr,
		Handler:      h,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	fmt.Printf("serving on %s (try /api/search?q=beach+dress)\n", *addr)
	log.Fatal(srv.ListenAndServe())
}
