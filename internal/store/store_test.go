package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"shoal/internal/model"
	"shoal/internal/synth"
)

func TestSaveLoadRoundTrips(t *testing.T) {
	corpus := synth.Curated()
	dir := t.TempDir()
	for _, name := range []string{"c.json", "c.json.gz", "c.gob", "c.gob.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveCorpus(corpus, path); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := LoadCorpus(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !reflect.DeepEqual(corpus, got) {
			t.Fatalf("%s: round trip changed corpus", name)
		}
	}
}

func TestGzipActuallyCompresses(t *testing.T) {
	corpus := synth.Curated()
	dir := t.TempDir()
	plain := filepath.Join(dir, "c.json")
	zipped := filepath.Join(dir, "c.json.gz")
	if err := SaveCorpus(corpus, plain); err != nil {
		t.Fatal(err)
	}
	if err := SaveCorpus(corpus, zipped); err != nil {
		t.Fatal(err)
	}
	ps, err := os.Stat(plain)
	if err != nil {
		t.Fatal(err)
	}
	zs, err := os.Stat(zipped)
	if err != nil {
		t.Fatal(err)
	}
	if zs.Size() >= ps.Size() {
		t.Fatalf("gzip file (%d) not smaller than plain (%d)", zs.Size(), ps.Size())
	}
}

func TestSaveRejectsInvalidCorpus(t *testing.T) {
	bad := &model.Corpus{Items: []model.Item{{ID: 7}}}
	if err := SaveCorpus(bad, filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Fatal("invalid corpus saved")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadCorpus(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	garbage := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(garbage, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(garbage); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	notGz := filepath.Join(dir, "bad.json.gz")
	if err := os.WriteFile(notGz, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(notGz); err == nil {
		t.Fatal("non-gzip .gz accepted")
	}
}
