package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestBuildTraceCoverage locks the build-trace contract: every executed
// stage opens exactly one root span, clustering merge rounds nest under
// the parallel-hac stage, and the whole tree exports as parseable
// Chrome trace-event JSON.
func TestBuildTraceCoverage(t *testing.T) {
	corpus := smallCorpus(t)
	b, err := Run(corpus, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b.Trace == nil {
		t.Fatal("build carries no trace")
	}

	var buf bytes.Buffer
	if err := b.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome JSON does not parse: %v", err)
	}

	spans := map[string]map[string]any{}
	for _, ev := range f.TraceEvents {
		spans[ev.Name] = ev.Args
	}
	for _, st := range b.StageTimings {
		if _, ok := spans[st.Stage]; !ok {
			t.Errorf("stage %q has no trace span", st.Stage)
		}
	}
	round0, ok := spans["round-0"]
	if !ok {
		t.Fatal("no merge-round span under the clustering stage")
	}
	if round0["parent"] != "parallel-hac" {
		t.Fatalf("round-0 parent = %v, want parallel-hac", round0["parent"])
	}
	for _, key := range []string{"aliveRows", "activeEdges", "selected", "frontierSize"} {
		if _, ok := round0[key]; !ok {
			t.Errorf("round-0 span missing attribute %q", key)
		}
	}
}

// TestBuildTraceBSPRuns pins the third trace level: with clustering on
// the BSP engine, each merge round records its engine runs beneath it.
func TestBuildTraceBSPRuns(t *testing.T) {
	corpus := smallCorpus(t)
	cfg := testConfig()
	cfg.BSP = true
	b, err := Run(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := b.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	runs := 0
	for _, ev := range f.TraceEvents {
		if ev.Name != "bsp-run" && ev.Name != "bsp-run-seeded" {
			continue
		}
		runs++
		if _, ok := ev.Args["supersteps"]; !ok {
			t.Fatalf("bsp run span missing supersteps: %+v", ev.Args)
		}
	}
	if b.BSPStats == nil {
		t.Fatal("BSP build carries no engine stats")
	}
	if runs != b.BSPStats.RunsServed {
		t.Fatalf("trace records %d bsp runs, engine served %d", runs, b.BSPStats.RunsServed)
	}

	// The resolved configuration travels on the build for /api/stats.
	if !b.BSPEnabled || b.Workers <= 0 || b.FrontierDensity <= 0 {
		t.Fatalf("resolved config not recorded: workers=%d density=%f bsp=%v",
			b.Workers, b.FrontierDensity, b.BSPEnabled)
	}
}
