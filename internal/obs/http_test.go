package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestMux(m *HTTPMetrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ok", m.Route("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	mux.HandleFunc("GET /bad", m.Route("/bad", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	mux.HandleFunc("GET /boom", m.Route("/boom", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	return m.WrapMux(mux)
}

func TestHTTPMetricsCounting(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg)
	gen := int64(0)
	m.Generation = func() int64 { return gen }
	h := newTestMux(m)
	srv := httptest.NewServer(h)
	defer srv.Close()

	do := func(method, path string, want int) {
		t.Helper()
		req, _ := http.NewRequest(method, srv.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s %s = %d, want %d", method, path, resp.StatusCode, want)
		}
	}
	for i := 0; i < 3; i++ {
		do("GET", "/ok", 200)
	}
	do("GET", "/bad", 400)
	do("GET", "/boom", 500)
	do("GET", "/missing", 404)  // mux-answered: unmatched
	do("POST", "/ok", 405)      // wrong method: unmatched
	gen = 7
	do("GET", "/ok", 200)

	sum := m.Summary()
	if sum.Generation != 7 {
		t.Fatalf("generation = %d, want 7", sum.Generation)
	}
	if sum.InFlight != 0 {
		t.Fatalf("in-flight = %d, want 0 at rest", sum.InFlight)
	}
	byRoute := map[string]RouteSummary{}
	for _, r := range sum.Routes {
		byRoute[r.Route] = r
	}
	if r := byRoute["/ok"]; r.Requests != 4 || r.ByClass["2xx"] != 4 {
		t.Fatalf("/ok summary wrong: %+v", r)
	}
	if r := byRoute["/bad"]; r.Requests != 1 || r.ByClass["4xx"] != 1 {
		t.Fatalf("/bad summary wrong: %+v", r)
	}
	if r := byRoute["/boom"]; r.Requests != 1 || r.ByClass["5xx"] != 1 {
		t.Fatalf("/boom summary wrong: %+v", r)
	}
	if r := byRoute[UnmatchedRoute]; r.Requests != 2 || r.ByClass["4xx"] != 2 {
		t.Fatalf("unmatched summary wrong: %+v", r)
	}
	if r := byRoute["/ok"]; r.P50Ms <= 0 || r.P99Ms < r.P50Ms {
		t.Fatalf("implausible latency quantiles: %+v", r)
	}

	// The same numbers must surface in the Prometheus text.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`shoal_http_requests_total{route="/ok"} 4`,
		`shoal_http_responses_total{route="/bad",class="4xx"} 1`,
		`shoal_http_responses_total{route="unmatched",class="4xx"} 2`,
		`shoal_build_generation 7`,
		`shoal_http_request_duration_seconds_count{route="/ok"} 4`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

// nopWriter is the zero-overhead ResponseWriter for the alloc test.
type nopWriter struct{ h http.Header }

func (w nopWriter) Header() http.Header         { return w.h }
func (w nopWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w nopWriter) WriteHeader(int)             {}

// TestMiddlewareAllocFree locks the middleware's own per-request cost
// at zero allocations: pooled status writer, atomic updates only. The
// inner handler here does nothing, so anything measured is ours.
func TestMiddlewareAllocFree(t *testing.T) {
	m := NewHTTPMetrics(NewRegistry())
	m.Generation = func() int64 { return 3 }
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ping", m.Route("/ping", func(w http.ResponseWriter, r *http.Request) {}))
	h := m.WrapMux(mux)
	req := httptest.NewRequest("GET", "/ping", nil)
	w := nopWriter{h: make(http.Header)}
	h.ServeHTTP(w, req) // warm the pool
	if n := testing.AllocsPerRun(500, func() {
		h.ServeHTTP(w, req)
	}); n > 0 {
		t.Fatalf("instrumented request allocated %.1f times per run, want 0", n)
	}
}
