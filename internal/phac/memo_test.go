package phac

import (
	"context"
	"math/rand/v2"
	"reflect"
	"slices"
	"testing"

	"shoal/internal/wgraph"
)

// perturbGraph returns a copy of g with a handful of edges reweighted,
// removed and added, plus the sorted list of every row whose adjacency
// it touched — the dirtyRows contract ClusterWarm expects.
func perturbGraph(g *wgraph.Graph, n int, seed uint64) (*wgraph.Graph, []int32) {
	rng := rand.New(rand.NewPCG(seed, 101))
	type key struct{ u, v int32 }
	em := map[key]float64{}
	for _, e := range g.Edges() {
		em[key{e.U, e.V}] = e.W
	}
	edges := g.Edges()
	dirty := map[int32]bool{}
	touch := func(u, v int32) { dirty[u], dirty[v] = true, true }
	for i := 0; i < 3; i++ {
		e := edges[rng.IntN(len(edges))]
		em[key{e.U, e.V}] = 0.05 + 0.9*rng.Float64()
		touch(e.U, e.V)
	}
	for i := 0; i < 2; i++ {
		e := edges[rng.IntN(len(edges))]
		if _, ok := em[key{e.U, e.V}]; ok {
			delete(em, key{e.U, e.V})
			touch(e.U, e.V)
		}
	}
	for i := 0; i < 3; i++ {
		u, v := int32(rng.IntN(n)), int32(rng.IntN(n))
		if u == v {
			continue
		}
		if v < u {
			u, v = v, u
		}
		em[key{u, v}] = 0.05 + 0.9*rng.Float64()
		touch(u, v)
	}
	ng := wgraph.New(n)
	for k, w := range em {
		_ = ng.SetEdge(k.u, k.v, w)
	}
	out := make([]int32, 0, len(dirty))
	for u := range dirty {
		out = append(out, u)
	}
	slices.Sort(out)
	return ng, out
}

// TestClusterWarmMatchesCold locks the cross-build memo contract: a
// warm clustering seeded from the previous build's Memo with the
// perturbed rows declared dirty is byte-identical — dendrogram and
// per-round statistics — to a cold Cluster over the same graph, across
// the shared-memory and BSP paths, chained over several perturbations.
func TestClusterWarmMatchesCold(t *testing.T) {
	ctx := context.Background()
	const n = 90
	for seed := uint64(1); seed <= 4; seed++ {
		for _, tc := range []struct {
			name    string
			useBSP  bool
			workers int
		}{
			{"shared-w1", false, 1},
			{"shared-w3", false, 3},
			{"bsp-w1", true, 1},
			{"bsp-w3", true, 3},
		} {
			cfg := Config{
				StopThreshold: 0.3, DiffusionRounds: 2,
				Workers: tc.workers, Shards: tc.workers, UseBSP: tc.useBSP,
			}
			g := randomGraph(n, 220, seed)
			warm, memo, err := ClusterWarm(ctx, g, nil, cfg, nil, nil)
			if err != nil {
				t.Fatalf("seed %d %s: cold capture: %v", seed, tc.name, err)
			}
			cold, err := Cluster(ctx, g, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(warm.Dendrogram, cold.Dendrogram) {
				t.Fatalf("seed %d %s: capturing run diverged from Cluster", seed, tc.name)
			}
			if memo == nil || !memo.Compatible(n, cfg) {
				t.Fatalf("seed %d %s: cold run did not capture a usable memo", seed, tc.name)
			}
			for step := uint64(0); step < 3; step++ {
				ng, dirty := perturbGraph(g, n, seed*31+step)
				warm, nextMemo, err := ClusterWarm(ctx, ng, nil, cfg, memo, dirty)
				if err != nil {
					t.Fatalf("seed %d %s step %d: warm: %v", seed, tc.name, step, err)
				}
				cold, err := Cluster(ctx, ng, nil, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(warm.Dendrogram, cold.Dendrogram) {
					t.Fatalf("seed %d %s step %d: warm dendrogram diverged from cold", seed, tc.name, step)
				}
				if !reflect.DeepEqual(warm.Rounds, cold.Rounds) {
					t.Fatalf("seed %d %s step %d: warm round stats diverged: %+v vs %+v",
						seed, tc.name, step, warm.Rounds, cold.Rounds)
				}
				g, memo = ng, nextMemo
			}
		}
	}
}

// TestClusterWarmMemoCrossesExecutionPaths: UseBSP is not part of the
// memo key — a memo captured by the shared-memory path must warm the
// BSP path and vice versa, still byte-identical to cold.
func TestClusterWarmMemoCrossesExecutionPaths(t *testing.T) {
	ctx := context.Background()
	const n = 80
	g := randomGraph(n, 180, 7)
	shared := Config{StopThreshold: 0.3, DiffusionRounds: 2, Workers: 2, Shards: 2}
	bspCfg := shared
	bspCfg.UseBSP = true

	_, memoShared, err := ClusterWarm(ctx, g, nil, shared, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, memoBSP, err := ClusterWarm(ctx, g, nil, bspCfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ng, dirty := perturbGraph(g, n, 99)
	cold, err := Cluster(ctx, ng, nil, shared)
	if err != nil {
		t.Fatal(err)
	}
	warmBSP, _, err := ClusterWarm(ctx, ng, nil, bspCfg, memoShared, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmBSP.Dendrogram, cold.Dendrogram) {
		t.Fatal("shared-captured memo diverged on the BSP path")
	}
	warmShared, _, err := ClusterWarm(ctx, ng, nil, shared, memoBSP, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmShared.Dendrogram, cold.Dendrogram) {
		t.Fatal("BSP-captured memo diverged on the shared path")
	}
}

// TestClusterWarmIncompatibleMemo: a stale memo (wrong size or changed
// clustering parameters) must be ignored, not misapplied.
func TestClusterWarmIncompatibleMemo(t *testing.T) {
	ctx := context.Background()
	cfg := Config{StopThreshold: 0.3, DiffusionRounds: 2, Workers: 2}
	g := randomGraph(60, 120, 3)
	_, memo, err := ClusterWarm(ctx, g, nil, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if (*Memo)(nil).Compatible(60, cfg) {
		t.Fatal("nil memo must be incompatible")
	}
	cfg2 := cfg
	cfg2.StopThreshold = 0.25
	if memo.Compatible(60, cfg2) {
		t.Fatal("changed threshold must invalidate the memo")
	}
	cold, err := Cluster(ctx, g, nil, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := ClusterWarm(ctx, g, nil, cfg2, memo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Dendrogram, cold.Dendrogram) {
		t.Fatal("incompatible memo changed the clustering result")
	}

	// Out-of-range dirty rows with a compatible memo are a caller bug.
	if _, _, err := ClusterWarm(ctx, g, nil, cfg, memo, []int32{999}); err == nil {
		t.Fatal("out-of-range dirty row must error")
	}
}
