// Package phac implements Parallel Hierarchical Agglomerative Clustering,
// the core contribution of the paper (§2.2).
//
// Classic HAC merges one globally-best pair per iteration, which neither
// tolerates sparse similarity matrices (Challenge 1) nor scales (Challenge
// 2). Parallel HAC rounds do three things instead:
//
//  1. Diffusion — every node starts knowing its best incident edge; for r
//     iterations nodes exchange the best edge they know with their
//     neighbors and keep the maximum. Edges are totally ordered by
//     (similarity desc, canonical id asc) so ties are deterministic.
//  2. Selection — an edge is *locally maximal* if, after diffusion, both
//     of its endpoints still consider it the best edge they have heard
//     of. Locally maximal edges form a node-disjoint matching: they can
//     all be merged in parallel. Smaller r ⇒ more selected edges ⇒ more
//     parallelism (the paper fixes r = 2).
//  3. Merge + update — each selected pair becomes a new cluster; the
//     neighborhood similarities are recomputed with the √-normalized rule
//     of Eq. 4, treating missing edges as 0. When both endpoints of an old
//     edge merged in the same round the two Eq. 4 applications compose
//     multiplicatively.
//
// Rounds repeat until no edge reaches the stop threshold. The globally
// maximal edge is always locally maximal, so progress is guaranteed.
//
// The clustering state is held in compressed-sparse-row form: each merge
// round sort-merges the coalesced edge contributions into the next
// round's CSR (double-buffered, scratch reused across rounds), so the
// diffusion inner loop never allocates and never chases map buckets.
package phac

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"shoal/internal/dendrogram"
	"shoal/internal/wgraph"
)

// Linkage selects the similarity-update rule applied on merge. The paper
// uses SqrtSize (Eq. 4); the alternatives exist for the E8 ablation.
type Linkage int

const (
	// LinkageSqrtSize is Eq. 4: weights √nA/(√nA+√nB) and √nB/(√nA+√nB).
	LinkageSqrtSize Linkage = iota
	// LinkageUnweighted averages with weights 1/2 regardless of size.
	LinkageUnweighted
	// LinkageSizeProportional weights by nA/(nA+nB) (UPGMA-style).
	LinkageSizeProportional
)

func (l Linkage) String() string {
	switch l {
	case LinkageSqrtSize:
		return "sqrt-size"
	case LinkageUnweighted:
		return "unweighted"
	case LinkageSizeProportional:
		return "size-proportional"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// weights returns the (wA, wB) merge weights for sizes nA, nB.
func (l Linkage) weights(nA, nB float64) (float64, float64) {
	switch l {
	case LinkageUnweighted:
		return 0.5, 0.5
	case LinkageSizeProportional:
		den := nA + nB
		return nA / den, nB / den
	default:
		sa, sb := math.Sqrt(nA), math.Sqrt(nB)
		den := sa + sb
		return sa / den, sb / den
	}
}

// Config controls Parallel HAC.
type Config struct {
	// StopThreshold ends clustering when no edge reaches it.
	StopThreshold float64
	// DiffusionRounds is r, the number of max-exchange iterations per
	// round. The paper sets 2.
	DiffusionRounds int
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
	// Shards is the partition-parallel width: the diffusion scans split
	// the alive rows into this many edge-balanced ranges, and the
	// per-round contracted-CSR rebuild counts and fills that many row
	// ranges concurrently. 0 means Workers. Results are byte-identical
	// for every shard count.
	Shards int
	// MaxRounds caps clustering rounds; 0 means unlimited.
	MaxRounds int
	// Linkage is the merge update rule; zero value is the paper's Eq. 4.
	Linkage Linkage
}

// DefaultConfig mirrors the paper: r=2, threshold 0.35.
func DefaultConfig() Config {
	return Config{StopThreshold: 0.35, DiffusionRounds: 2}
}

func (c *Config) validate() error {
	if c.StopThreshold < 0 || c.StopThreshold > 1 {
		return fmt.Errorf("phac: StopThreshold must be in [0,1], got %f", c.StopThreshold)
	}
	if c.DiffusionRounds < 0 {
		return fmt.Errorf("phac: DiffusionRounds must be non-negative, got %d", c.DiffusionRounds)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards <= 0 {
		c.Shards = c.Workers
	}
	if c.Linkage < LinkageSqrtSize || c.Linkage > LinkageSizeProportional {
		return fmt.Errorf("phac: unknown linkage %d", c.Linkage)
	}
	return nil
}

// RoundStat profiles one Parallel HAC round — the data behind experiment
// E5 (diffusion iterations vs. parallelism).
type RoundStat struct {
	Round int
	// ActiveClusters is the number of alive clusters entering the round.
	ActiveClusters int
	// ActiveEdges is the number of edges >= StopThreshold entering it.
	ActiveEdges int
	// Selected is the number of locally-maximal edges merged.
	Selected int
	// BestSim is the global maximum similarity entering the round.
	BestSim float64
}

// Result is the output of Parallel HAC.
type Result struct {
	Dendrogram *dendrogram.Dendrogram
	Rounds     []RoundStat
}

// edgeRef is a totally ordered reference to an edge: better means higher
// similarity, ties broken by smaller canonical (u,v). The endpoints are
// packed into one uint64 key (u<<32 | v, canonical u < v) so the ref is
// 16 bytes — the diffusion exchange loop streams these, and the packing
// makes the tie-break a single integer compare with the same order as
// (u asc, v asc).
type edgeRef struct {
	sim float64
	key uint64 // canonical u<<32 | v
}

// mkEdgeRef builds the canonical ref for the edge (u,v).
func mkEdgeRef(u, v int32, sim float64) edgeRef {
	if v < u {
		u, v = v, u
	}
	return edgeRef{sim: sim, key: uint64(uint32(u))<<32 | uint64(uint32(v))}
}

// U and V unpack the canonical endpoints.
func (e edgeRef) U() int32 { return int32(e.key >> 32) }
func (e edgeRef) V() int32 { return int32(uint32(e.key)) }

var noEdge = edgeRef{sim: math.Inf(-1), key: ^uint64(0)}

// better reports whether a beats b in the diffusion total order.
func better(a, b edgeRef) bool {
	if a.sim != b.sim {
		return a.sim > b.sim
	}
	return a.key < b.key
}

// Cluster runs Parallel HAC over g with initial cluster sizes (nil means
// all 1); g is read once (frozen to CSR if mutable) and never modified.
// Leaf ids in the dendrogram are graph node ids.
// The result is deterministic and independent of cfg.Workers, and
// identical for a mutable graph and its frozen CSR.
// Cancellation is checked between clustering rounds.
func Cluster(ctx context.Context, g wgraph.View, sizes []int, cfg Config) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("phac: empty graph")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sizes != nil && len(sizes) != n {
		return nil, fmt.Errorf("phac: sizes length %d != nodes %d", len(sizes), n)
	}

	st := newState(wgraph.AsCSR(g), sizes, cfg)
	res := &Result{Dendrogram: &dendrogram.Dendrogram{Leaves: n}}

	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			break
		}
		selected, activeEdges, bestSim := st.selectLocalMaxima(cfg.DiffusionRounds, cfg.Workers, cfg.StopThreshold)
		stat := RoundStat{
			Round: round, ActiveClusters: st.aliveCount,
			ActiveEdges: activeEdges, BestSim: bestSim, Selected: len(selected),
		}
		if activeEdges == 0 || bestSim < cfg.StopThreshold {
			break
		}
		res.Rounds = append(res.Rounds, stat)
		if len(selected) == 0 {
			// Cannot happen while an edge >= threshold exists (the
			// global max is always mutual), but guard against it so a
			// bug cannot loop forever.
			return nil, fmt.Errorf("phac: round %d selected no edges with best sim %f", round, bestSim)
		}

		st.mergeSelected(selected, round, cfg, res.Dendrogram)
	}
	return res, nil
}

// state is the mutable clustering state. Cluster ids grow past n as merges
// mint new ids; alive marks current clusters. The current graph is a CSR
// over all minted ids (dead rows are empty); each merge round builds the
// next CSR into the spare buffers and swaps, so no per-node maps exist
// anywhere on the clustering path.
type state struct {
	total   int       // minted ids; CSR rows
	offsets []int32   // current CSR: len total+1
	nbrs    []int32   // neighbor ids, ascending within each row
	wts     []float64 // parallel weights
	// ownsCur is false while the current CSR aliases the caller's frozen
	// graph (round 0); those arrays are never written.
	ownsCur    bool
	bOffsets   []int32 // spare CSR buffers for the next round
	bNbrs      []int32
	bWts       []float64
	size       []float64
	alive      []bool
	aliveCount int
	workers    int
	shards     int       // partition-parallel width (cfg.Shards)
	know, next []edgeRef // diffusion double buffers
	nodes      []int32   // aliveList scratch
	edgeCnt    []int64   // per-alive-node edge count scratch
	bests      []edgeRef // per-alive-node best-any scratch
	selected   []edgeRef // selection output, reused per round
	mergeTo    []int32   // id -> new id this round, -1 otherwise
	coef       []float64 // id -> Eq. 4 coefficient this round
	deg        []int32   // degree/cursor scratch for CSR rebuild
	dirty      []bool    // id -> adjacency changed this round (rebuild)
	perOwner   [][]contrib
	bounds     []int32       // edge-balanced range scratch (diffusion + rebuild)
	hp         []int32       // k-way merge heap scratch (owner indices)
	hpPos      []int32       // k-way merge per-owner cursor scratch
	newEdges   []wgraph.Edge // aggregated >= threshold edges
}

func newState(c *wgraph.CSR, sizes []int, cfg Config) *state {
	n := c.NumNodes()
	offsets, nbrs, wts := c.Adj()
	// Normalize here too so direct constructions (tests) get sane widths
	// without going through validate.
	if cfg.Shards <= 0 {
		cfg.Shards = cfg.Workers
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	st := &state{
		total:      n,
		offsets:    offsets,
		nbrs:       nbrs,
		wts:        wts,
		ownsCur:    false,
		size:       make([]float64, n, 2*n),
		alive:      make([]bool, n, 2*n),
		aliveCount: n,
		workers:    cfg.Workers,
		shards:     cfg.Shards,
		know:       make([]edgeRef, n, 2*n),
		next:       make([]edgeRef, n, 2*n),
		mergeTo:    make([]int32, n, 2*n),
	}
	for i := 0; i < n; i++ {
		st.alive[i] = true
		st.size[i] = 1
		if sizes != nil {
			st.size[i] = float64(sizes[i])
		}
		st.know[i] = noEdge
		st.next[i] = noEdge
		st.mergeTo[i] = -1
	}
	return st
}

// aliveList fills the reusable node scratch with the alive cluster ids.
func (st *state) aliveList() []int32 {
	out := st.nodes[:0]
	for id := int32(0); int(id) < st.total; id++ {
		if st.alive[id] {
			out = append(out, id)
		}
	}
	st.nodes = out
	return out
}

// selectLocalMaxima runs the diffusion protocol and returns the selected
// node-disjoint matching (sorted canonically) along with the round's edge
// count and global best similarity, gathered during the same scan. Only
// edges >= threshold participate in diffusion. The scan reads the CSR
// arrays directly: no allocation per diffusion iteration.
func (st *state) selectLocalMaxima(rounds, workers int, threshold float64) ([]edgeRef, int, float64) {
	nodes := st.aliveList()
	serial := workers <= 1 || len(nodes) < 64

	// Iteration 0: best incident edge per node, plus round statistics
	// (edge endpoints counted once, at the smaller id).
	for len(st.edgeCnt) < len(nodes) {
		st.edgeCnt = append(st.edgeCnt, 0)
		st.bests = append(st.bests, noEdge)
	}
	know, next := st.know, st.next
	var bounds []int32
	if !serial {
		bounds = st.nodeRangeBounds(nodes)
	}
	if serial {
		st.diffuseInit(nodes, 0, len(nodes), threshold, know)
	} else {
		k := know // fresh binding: closure captures by value, not the reassigned loop var
		runRanges(bounds, func(lo, hi int) {
			st.diffuseInit(nodes, lo, hi, threshold, k)
		})
	}
	var activeEdges int64
	globalBest := noEdge
	for i := range nodes {
		activeEdges += st.edgeCnt[i]
		if better(st.bests[i], globalBest) {
			globalBest = st.bests[i]
		}
	}

	// r exchange iterations: take the max over own and neighbors' known
	// edges. Double-buffered so reads see only the previous iteration.
	for it := 0; it < rounds; it++ {
		if serial {
			st.diffuseExchange(nodes, 0, len(nodes), know, next)
		} else {
			k, nx := know, next
			runRanges(bounds, func(lo, hi int) {
				st.diffuseExchange(nodes, lo, hi, k, nx)
			})
		}
		know, next = next, know
	}
	st.know, st.next = know, next

	// Selection: an edge whose both endpoints know it is locally maximal.
	var selected []edgeRef
	if serial {
		selected = st.diffuseSelectSerial(nodes, threshold, know, st.selected[:0])
	} else {
		sink := &selectSink{buf: st.selected[:0]}
		k := know
		runRanges(bounds, func(lo, hi int) {
			st.diffuseSelectInto(nodes, lo, hi, threshold, k, sink)
		})
		selected = sink.buf
	}
	slices.SortFunc(selected, func(a, b edgeRef) int {
		// Keys are unique (node-disjoint matching), so this is the
		// canonical (u,v) order.
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	st.selected = selected
	return selected, int(activeEdges), globalBest.sim
}

// nodeRangeBounds fills the reusable bounds scratch with st.shards+1 cut
// points into the alive node list, balanced by adjacency entries rather
// than node count (each node weighs its degree plus one), so skewed
// degree distributions still split into even per-worker work. Bounds
// only partition work — results are identical for any split.
func (st *state) nodeRangeBounds(nodes []int32) []int32 {
	shards := st.shards
	if shards < 1 {
		shards = 1
	}
	for len(st.bounds) < shards+1 {
		st.bounds = append(st.bounds, 0)
	}
	bounds := st.bounds[:shards+1]
	offsets := st.offsets
	var total int64
	for _, u := range nodes {
		total += int64(offsets[u+1]-offsets[u]) + 1
	}
	bounds[0] = 0
	bounds[shards] = int32(len(nodes))
	var prefix int64
	next := 1
	for i, u := range nodes {
		if next >= shards {
			break
		}
		prefix += int64(offsets[u+1]-offsets[u]) + 1
		for next < shards && prefix*int64(shards) >= total*int64(next) {
			bounds[next] = int32(i + 1)
			next++
		}
	}
	for ; next < shards; next++ {
		bounds[next] = int32(len(nodes))
	}
	return bounds
}

// runRanges runs fn over each non-empty range [bounds[i], bounds[i+1])
// in its own goroutine and waits for all of them. Callers on the
// zero-alloc path must only construct the fn closure inside their
// parallel branch (and capture fresh bindings, not variables reassigned
// later), so the serial branch stays allocation-free.
func runRanges(bounds []int32, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := int(bounds[i]), int(bounds[i+1])
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// diffuseInit is diffusion iteration 0 over nodes[lo:hi]: each node's
// best incident >= threshold edge, plus the round's edge count and
// unconditional best edge for the round statistics. Pure CSR array
// scans — no allocation.
func (st *state) diffuseInit(nodes []int32, lo, hi int, threshold float64, know []edgeRef) {
	offsets, nbrs, wts := st.offsets, st.nbrs, st.wts
	for i := lo; i < hi; i++ {
		u := nodes[i]
		best := noEdge
		edges := int64(0)
		bestAny := noEdge
		for j := offsets[u]; j < offsets[u+1]; j++ {
			v, w := nbrs[j], wts[j]
			if u < v {
				edges++
			}
			cand := mkEdgeRef(u, v, w)
			if better(cand, bestAny) {
				bestAny = cand
			}
			if w < threshold {
				continue
			}
			if better(cand, best) {
				best = cand
			}
		}
		know[u] = best
		st.edgeCnt[i] = edges
		st.bests[i] = bestAny
	}
}

// diffuseExchange is one max-exchange iteration over nodes[lo:hi],
// reading know and writing next.
func (st *state) diffuseExchange(nodes []int32, lo, hi int, know, next []edgeRef) {
	offsets, nbrs := st.offsets, st.nbrs
	for i := lo; i < hi; i++ {
		u := nodes[i]
		best := know[u]
		for j := offsets[u]; j < offsets[u+1]; j++ {
			if v := nbrs[j]; better(know[v], best) {
				best = know[v]
			}
		}
		next[u] = best
	}
}

// diffuseSelectSerial appends the locally-maximal edges (each edge
// evaluated once, at its smaller endpoint) to buf and returns it. Kept
// free of shared state so the single-worker path allocates nothing.
func (st *state) diffuseSelectSerial(nodes []int32, threshold float64, know []edgeRef, buf []edgeRef) []edgeRef {
	for _, u := range nodes {
		e := know[u]
		if e.U() != u || e.sim < threshold {
			continue
		}
		if know[e.V()] == e {
			buf = append(buf, e)
		}
	}
	return buf
}

// selectSink is the shared selection output for the parallel path.
type selectSink struct {
	mu  sync.Mutex
	buf []edgeRef
}

// diffuseSelectInto is diffuseSelectSerial over nodes[lo:hi] appending
// into the shared sink.
func (st *state) diffuseSelectInto(nodes []int32, lo, hi int, threshold float64, know []edgeRef, sink *selectSink) {
	for i := lo; i < hi; i++ {
		u := nodes[i]
		e := know[u]
		if e.U() != u || e.sim < threshold {
			continue
		}
		if know[e.V()] == e {
			sink.mu.Lock()
			sink.buf = append(sink.buf, e)
			sink.mu.Unlock()
		}
	}
}

// contrib is one old-edge contribution to a new edge's Eq. 4 sum, tagged
// with its origin for deterministic summation order.
type contrib struct {
	key  [2]int32 // canonical new endpoints
	orig [2]int32 // canonical old endpoints
	val  float64
}

// mergeSelected applies a round's matching: mints new cluster ids, emits
// dendrogram merges, and sort-merges the surviving and coalesced edges
// into the next round's CSR. Deterministic regardless of worker count:
// contributions are aggregated in sorted origin order.
func (st *state) mergeSelected(selected []edgeRef, round int, cfg Config, d *dendrogram.Dendrogram) {
	base := int32(st.total)
	newTotal := st.total + len(selected)

	// Extend the per-id arrays for the minted clusters; mergeTo/coef map
	// a merged old cluster to its new id and Eq. 4 coefficient.
	for len(st.mergeTo) < newTotal {
		st.mergeTo = append(st.mergeTo, -1)
		st.know = append(st.know, noEdge)
		st.next = append(st.next, noEdge)
	}
	for len(st.coef) < newTotal {
		st.coef = append(st.coef, 0)
	}
	for i, e := range selected {
		id := base + int32(i)
		eu, ev := e.U(), e.V()
		wu, wv := cfg.Linkage.weights(st.size[eu], st.size[ev])
		st.mergeTo[eu] = id
		st.mergeTo[ev] = id
		st.coef[eu] = wu
		st.coef[ev] = wv
		st.size = append(st.size, st.size[eu]+st.size[ev])
		st.alive = append(st.alive, true)
		d.Merges = append(d.Merges, dendrogram.Merge{
			A: eu, B: ev, New: id, Sim: e.sim, Round: int32(round),
		})
	}

	// Generate contributions from every old edge with >= 1 merged
	// endpoint. Each selected pair's owner scans its two members;
	// old edges between two merged nodes are emitted by the owner of the
	// smaller new id only (dedup).
	offsets, nbrs, wts := st.offsets, st.nbrs, st.wts
	for len(st.perOwner) < len(selected) {
		st.perOwner = append(st.perOwner, nil)
	}
	perOwner := st.perOwner
	parallelIdx(len(selected), st.workers, func(i int) {
		e := selected[i]
		w := base + int32(i)
		out := perOwner[i][:0]
		for _, member := range [2]int32{e.U(), e.V()} {
			wm := st.coef[member]
			for j := offsets[member]; j < offsets[member+1]; j++ {
				nb, s := nbrs[j], wts[j]
				mappedNb := st.mergeTo[nb]
				var q int32
				wq := 1.0
				if mappedNb >= 0 {
					if mappedNb == w {
						continue // internal edge of this merge
					}
					q = mappedNb
					wq = st.coef[nb]
					if q < w {
						continue // the other owner emits this one
					}
				} else {
					q = nb
				}
				a, b := canon(w, q)
				oa, ob := canon(member, nb)
				out = append(out, contrib{key: [2]int32{a, b}, orig: [2]int32{oa, ob}, val: wm * wq * s})
			}
		}
		perOwner[i] = out
	})

	// Aggregate: per-owner pre-sort (parallel) + k-way merge with inline
	// group summation, replacing the former flatten + O(E log E) global
	// re-sort each round. Every old edge contributes exactly once, so
	// (key, orig) pairs are unique across owners and the merge pops
	// contributions in the exact global (key, orig) order the old sort
	// produced — float summation per key is byte-identical.
	parallelIdx(len(selected), st.workers, func(i int) {
		slices.SortFunc(perOwner[i], cmpContrib)
	})
	newEdges := st.kwayMergeSum(perOwner[:len(selected)], cfg.StopThreshold)

	// Build the next round's CSR into the spare buffers: surviving old
	// edges (both endpoints unmerged) in row-major order, then the
	// coalesced edges in canonical order. Every row under construction
	// receives its neighbors in ascending order (old ids < base first,
	// minted ids >= base after), so no per-row sort is needed.
	//
	// Rows are counted and filled row-wise (countRange/fillRange): a row
	// only dirty — adjacent to this round's merges, or minted — is
	// re-filtered entry by entry; a clean row's adjacency is provably
	// unchanged, so its degree is the old row length and its content one
	// span copy. Late rounds merge few pairs, so most of the graph moves
	// by memmove instead of per-entry branches. With Shards > 1 the two
	// passes run one worker per edge-balanced row range; each range
	// writes only its own rows, so the layout is identical
	// partition-parallel.
	for len(st.deg) < newTotal {
		st.deg = append(st.deg, 0)
	}
	deg := st.deg[:newTotal]
	for len(st.bOffsets) < newTotal+1 {
		st.bOffsets = append(st.bOffsets, 0)
	}
	bOffsets := st.bOffsets[:newTotal+1]
	for len(st.dirty) < newTotal {
		st.dirty = append(st.dirty, false)
	}
	dirty := st.dirty[:newTotal]
	clear(dirty)
	for _, e := range selected {
		for _, member := range [2]int32{e.U(), e.V()} {
			for j := offsets[member]; j < offsets[member+1]; j++ {
				dirty[nbrs[j]] = true
			}
		}
	}
	for i := range selected {
		dirty[base+int32(i)] = true // minted rows are always fresh
	}

	sharded := st.shards > 1 && newTotal >= 256
	if sharded {
		// Count per row range, balanced by old-row entries (minted rows
		// weigh one entry; their degrees come from the newEdges scan
		// every worker performs anyway).
		cb := st.rangeBoundsByPrefix(st.offsets, st.total, newTotal)
		runRanges32(cb, func(lo, hi int32) {
			st.countRange(lo, hi, deg, newEdges)
		})
	} else {
		st.countRange(0, int32(newTotal), deg, newEdges)
	}

	bOffsets[0] = 0
	for i := 0; i < newTotal; i++ {
		bOffsets[i+1] = bOffsets[i] + deg[i]
	}
	half := int(bOffsets[newTotal])
	for len(st.bNbrs) < half {
		st.bNbrs = append(st.bNbrs, 0)
		st.bWts = append(st.bWts, 0)
	}
	bNbrs, bWts := st.bNbrs[:half], st.bWts[:half]

	if sharded {
		fb := st.rangeBoundsByPrefix(bOffsets, newTotal, newTotal)
		runRanges32(fb, func(lo, hi int32) {
			st.fillRange(lo, hi, deg, bOffsets, bNbrs, bWts, newEdges)
		})
	} else {
		st.fillRange(0, int32(newTotal), deg, bOffsets, bNbrs, bWts, newEdges)
	}

	// Retire the merged clusters and clear this round's merge map.
	for _, e := range selected {
		st.alive[e.U()] = false
		st.alive[e.V()] = false
		st.mergeTo[e.U()] = -1
		st.mergeTo[e.V()] = -1
	}
	st.aliveCount -= len(selected)

	// Swap the new CSR in; the old buffers become the next spare unless
	// they alias the caller's graph.
	if st.ownsCur {
		st.offsets, st.bOffsets = bOffsets, st.offsets
		st.nbrs, st.bNbrs = bNbrs, st.nbrs
		st.wts, st.bWts = bWts, st.wts
	} else {
		st.offsets, st.nbrs, st.wts = bOffsets, bNbrs, bWts
		st.bOffsets, st.bNbrs, st.bWts = nil, nil, nil
		st.ownsCur = true
	}
	st.total = newTotal
}

// cmpContrib orders contributions by (key, orig) — the deterministic
// global summation order.
func cmpContrib(x, y contrib) int {
	if x.key[0] != y.key[0] {
		return int(x.key[0] - y.key[0])
	}
	if x.key[1] != y.key[1] {
		return int(x.key[1] - y.key[1])
	}
	if x.orig[0] != y.orig[0] {
		return int(x.orig[0] - y.orig[0])
	}
	return int(x.orig[1] - y.orig[1])
}

// kwayMergeSum merges the pre-sorted per-owner contribution lists in
// global (key, orig) order via a binary min-heap of owner cursors,
// summing each key group inline and keeping groups >= threshold (Eq. 4
// is a convex combination, so a sub-threshold edge can never feed a
// future >= threshold similarity). Output arrives sorted by canonical
// key. Heap, cursor and output scratch are reused across rounds.
func (st *state) kwayMergeSum(lists [][]contrib, threshold float64) []wgraph.Edge {
	for len(st.hpPos) < len(lists) {
		st.hpPos = append(st.hpPos, 0)
	}
	pos := st.hpPos[:len(lists)]
	hp := st.hp[:0]
	for i := range lists {
		pos[i] = 0
		if len(lists[i]) > 0 {
			hp = append(hp, int32(i))
		}
	}
	st.hp = hp[:0] // persist a grown backing for the next round
	less := func(a, b int32) bool {
		return cmpContrib(lists[a][pos[a]], lists[b][pos[b]]) < 0
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(hp) && less(hp[l], hp[m]) {
				m = l
			}
			if r < len(hp) && less(hp[r], hp[m]) {
				m = r
			}
			if m == i {
				return
			}
			hp[i], hp[m] = hp[m], hp[i]
			i = m
		}
	}
	for i := len(hp)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}

	newEdges := st.newEdges[:0]
	var curKey [2]int32
	var sum float64
	have := false
	for len(hp) > 0 {
		o := hp[0]
		c := lists[o][pos[o]]
		pos[o]++
		if int(pos[o]) == len(lists[o]) {
			hp[0] = hp[len(hp)-1]
			hp = hp[:len(hp)-1]
		}
		siftDown(0)
		if !have || c.key != curKey {
			if have && sum >= threshold {
				newEdges = append(newEdges, wgraph.Edge{U: curKey[0], V: curKey[1], W: sum})
			}
			curKey, sum, have = c.key, 0, true
		}
		sum += c.val
	}
	if have && sum >= threshold {
		newEdges = append(newEdges, wgraph.Edge{U: curKey[0], V: curKey[1], W: sum})
	}
	st.newEdges = newEdges
	return newEdges
}

// rangeBoundsByPrefix fills the bounds scratch with st.shards+1 cut
// points over the row space [0,nRows), balancing ranges by per-row
// weight derived from the prefix array off: rows below offRows weigh
// their entry count plus one, rows at or above it (e.g. freshly minted
// clusters with no old adjacency) weigh one. Bounds only partition work;
// results are identical for any split.
func (st *state) rangeBoundsByPrefix(off []int32, offRows, nRows int) []int32 {
	shards := st.shards
	for len(st.bounds) < shards+1 {
		st.bounds = append(st.bounds, 0)
	}
	bounds := st.bounds[:shards+1]
	if offRows > nRows {
		offRows = nRows
	}
	total := int64(off[offRows]) + int64(nRows)
	bounds[0] = 0
	bounds[shards] = int32(nRows)
	var prefix int64
	next := 1
	for u := 0; u < nRows && next < shards; u++ {
		if u < offRows {
			prefix += int64(off[u+1] - off[u])
		}
		prefix++
		for next < shards && prefix*int64(shards) >= total*int64(next) {
			bounds[next] = int32(u + 1)
			next++
		}
	}
	for ; next < shards; next++ {
		bounds[next] = int32(nRows)
	}
	return bounds
}

// runRanges32 is runRanges over int32 row bounds.
func runRanges32(bounds []int32, fn func(lo, hi int32)) {
	var wg sync.WaitGroup
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// countRange computes the next-round degrees of rows [lo,hi): surviving
// old neighbors from the row's own adjacency (a dead or merged row is
// skipped; dead rows are empty by construction) plus incident coalesced
// edges. A clean row — untouched by this round's merges — provably
// keeps its whole adjacency, so its count is the old row length.
// Writes only deg[lo:hi], so ranges run concurrently.
func (st *state) countRange(lo, hi int32, deg []int32, newEdges []wgraph.Edge) {
	offsets, nbrs := st.offsets, st.nbrs
	for u := lo; u < hi; u++ {
		var d int32
		if int(u) < st.total && st.mergeTo[u] < 0 {
			if !st.dirty[u] {
				d = offsets[u+1] - offsets[u]
			} else {
				for j := offsets[u]; j < offsets[u+1]; j++ {
					if st.mergeTo[nbrs[j]] < 0 {
						d++
					}
				}
			}
		}
		deg[u] = d
	}
	for _, e := range newEdges {
		if e.U >= lo && e.U < hi {
			deg[e.U]++
		}
		if e.V >= lo && e.V < hi {
			deg[e.V]++
		}
	}
}

// fillRange fills the next-round rows [lo,hi): each row's surviving old
// neighbors in its own adjacency order (ascending, all below base),
// then its coalesced edges in canonical order (minted partners above
// base) — the exact layout of the old canonical two-sided fill. Clean
// rows move as one span copy; only dirty rows pay the per-entry filter.
// Writes only its rows' entry ranges and cursors, so ranges run
// concurrently.
func (st *state) fillRange(lo, hi int32, deg, bOffsets, bNbrs []int32, bWts []float64, newEdges []wgraph.Edge) {
	offsets, nbrs, wts := st.offsets, st.nbrs, st.wts
	for u := lo; u < hi; u++ {
		deg[u] = bOffsets[u] // fill cursor
	}
	top := hi
	if int(top) > st.total {
		top = int32(st.total)
	}
	for u := lo; u < top; u++ {
		if st.mergeTo[u] >= 0 {
			continue
		}
		rl, rh := offsets[u], offsets[u+1]
		if !st.dirty[u] {
			if rl == rh {
				continue
			}
			n := int32(copy(bNbrs[deg[u]:deg[u]+rh-rl], nbrs[rl:rh]))
			copy(bWts[deg[u]:deg[u]+rh-rl], wts[rl:rh])
			deg[u] += n
			continue
		}
		for j := rl; j < rh; j++ {
			if v := nbrs[j]; st.mergeTo[v] < 0 {
				bNbrs[deg[u]], bWts[deg[u]] = v, wts[j]
				deg[u]++
			}
		}
	}
	for _, e := range newEdges {
		if e.U >= lo && e.U < hi {
			bNbrs[deg[e.U]], bWts[deg[e.U]] = e.V, e.W
			deg[e.U]++
		}
		if e.V >= lo && e.V < hi {
			bNbrs[deg[e.V]], bWts[deg[e.V]] = e.U, e.W
			deg[e.V]++
		}
	}
}

func canon(u, v int32) (int32, int32) {
	if u < v {
		return u, v
	}
	return v, u
}

// parallelOver runs fn over the node list with the given parallelism.
func parallelOver(nodes []int32, workers int, fn func(u int32)) {
	if workers <= 1 || len(nodes) < 64 {
		for _, u := range nodes {
			fn(u)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(nodes); i += workers {
				fn(nodes[i])
			}
		}(w)
	}
	wg.Wait()
}

// parallelIdx runs fn over [0,n) with the given parallelism.
func parallelIdx(n, workers int, fn func(i int)) {
	if workers <= 1 || n < 16 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
