package entitygraph

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"shoal/internal/word2vec"
)

// Eq. 2 of the paper is a double sum over word-vector pairs:
//
//	Sc(u,v) = (1/(|Vu||Vv|)) Σ_w1 Σ_w2 (1/2 + cos(w1,w2)/2)
//
// The implementation factors it to 1/2 + dot(μu, μv)/2 with μ the mean of
// normalized vectors. These tests pin the algebraic equivalence.

// literalEq2 computes the paper's formula verbatim.
func literalEq2(emb *word2vec.Model, u, v []string) (float64, bool) {
	var sum float64
	pairs := 0
	known := func(toks []string) [][]float32 {
		var out [][]float32
		for _, t := range toks {
			if vec, ok := emb.NormVector(t); ok {
				out = append(out, vec)
			}
		}
		return out
	}
	vu, vv := known(u), known(v)
	if len(vu) == 0 || len(vv) == 0 {
		return 0, false
	}
	for _, a := range vu {
		for _, b := range vv {
			var dot float64
			for i := range a {
				dot += float64(a[i]) * float64(b[i])
			}
			sum += 0.5 + 0.5*dot
			pairs++
		}
	}
	return sum / float64(pairs), true
}

// factoredEq2 is the production path: mean normalized vectors + one dot.
func factoredEq2(emb *word2vec.Model, u, v []string) (float64, bool) {
	mu := meanNormVector(emb, u)
	mv := meanNormVector(emb, v)
	if mu == nil || mv == nil {
		return 0, false
	}
	return 0.5 + 0.5*dot(mu, mv), true
}

func trainTiny(t testing.TB) *word2vec.Model {
	t.Helper()
	sents := [][]string{
		{"beach", "dress", "swim", "sun"},
		{"swim", "sun", "sand", "beach"},
		{"boot", "snow", "ski", "glove"},
		{"ski", "glove", "ice", "boot"},
		{"beach", "sand", "sun", "swim"},
	}
	cfg := word2vec.DefaultConfig()
	cfg.Dim = 12
	cfg.Epochs = 3
	cfg.MinCount = 1
	cfg.Workers = 1
	m, err := word2vec.Train(context.Background(), sents, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEq2FactoredMatchesLiteral(t *testing.T) {
	emb := trainTiny(t)
	cases := [][2][]string{
		{{"beach", "dress"}, {"swim", "sun"}},
		{{"beach"}, {"ski"}},
		{{"beach", "beach", "sand"}, {"snow", "glove", "ice", "boot"}},
		{{"sun", "unknownword", "swim"}, {"ski"}},
	}
	for _, tc := range cases {
		lit, lok := literalEq2(emb, tc[0], tc[1])
		fac, fok := factoredEq2(emb, tc[0], tc[1])
		if lok != fok {
			t.Fatalf("availability mismatch for %v", tc)
		}
		if !lok {
			continue
		}
		if math.Abs(lit-fac) > 1e-6 {
			t.Fatalf("Eq.2 mismatch for %v: literal=%.9f factored=%.9f", tc, lit, fac)
		}
	}
}

func TestEq2EquivalenceProperty(t *testing.T) {
	emb := trainTiny(t)
	vocabulary := []string{"beach", "dress", "swim", "sun", "sand", "boot", "snow", "ski", "glove", "ice", "zzz"}
	f := func(a, b []uint8) bool {
		pick := func(idx []uint8) []string {
			out := make([]string, 0, len(idx))
			for _, i := range idx {
				out = append(out, vocabulary[int(i)%len(vocabulary)])
			}
			return out
		}
		u, v := pick(a), pick(b)
		lit, lok := literalEq2(emb, u, v)
		fac, fok := factoredEq2(emb, u, v)
		if lok != fok {
			return false
		}
		if !lok {
			return true
		}
		return math.Abs(lit-fac) < 1e-6 && fac >= -1e-9 && fac <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
