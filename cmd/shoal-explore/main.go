// Command shoal-explore is the interactive counterpart of the paper's demo
// GUI (Fig. 5). It builds (or loads) a SHOAL system and exposes the four
// demonstration scenarios at a REPL prompt:
//
//	A  query <text>        — Query→Topic star graph
//	B  topic <id>          — Topic→Sub-topic descent
//	C  items <id> [cat]    — Topic→Category→Item drill-down
//	D  related <category>  — Category→Category correlations
//
// Usage:
//
//	shoal-explore                       # curated Fig. 1(b) corpus
//	shoal-explore -corpus corpus.json.gz
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"shoal"
	"shoal/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoal-explore: ")

	corpusPath := flag.String("corpus", "", "corpus to build from (empty: curated mini corpus)")
	flag.Parse()

	corpus := shoal.CuratedCorpus()
	cfg := shoal.DefaultConfig()
	cfg.Word2Vec.Epochs = 2
	cfg.Word2Vec.MinCount = 1
	cfg.Graph.MinSimilarity = 0.2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3, 0.5}
	cfg.CatCorr.MinStrength = 0
	if *corpusPath != "" {
		var err error
		corpus, err = store.LoadCorpus(*corpusPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.CatCorr.MinStrength = 2
	}
	fmt.Printf("building SHOAL over %s ...\n", corpus.Stats())
	sys, err := shoal.Build(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ready: %s\n", sys.Stats())
	fmt.Println(`commands: query <text> | topic <id> | items <id> [catID] | related <name|catID> | roots | help | quit`)

	repl(sys, os.Stdin)
}

func repl(sys *shoal.System, in *os.File) {
	corpus := sys.Corpus()
	sc := bufio.NewScanner(in)
	for {
		fmt.Print("shoal> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		switch cmd {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("query <text>   scenario A: topics matching a free-text query")
			fmt.Println("topic <id>     scenario B: a topic and its sub-topics")
			fmt.Println("items <id> [c] scenario C: items of a topic, optionally one category")
			fmt.Println("related <c>    scenario D: categories correlated with a category")
			fmt.Println("roots          list root topics")
		case "roots":
			for _, id := range sys.RootTopics() {
				t, _ := sys.Topic(id)
				fmt.Printf("  [%d] %-30q items=%d categories=%d\n", id, t.Description, len(t.Items), len(t.Categories))
			}
		case "query":
			hits := sys.SearchTopics(strings.Join(args, " "), 5)
			if len(hits) == 0 {
				fmt.Println("  no matching topics")
				continue
			}
			for _, h := range hits {
				t, _ := sys.Topic(h.Topic)
				fmt.Printf("  [%d] %-30q score=%.2f items=%d\n", h.Topic, t.Description, h.Score, len(t.Items))
			}
		case "topic":
			id, ok := parseID(args)
			if !ok {
				fmt.Println("  usage: topic <id>")
				continue
			}
			t, err := sys.Topic(shoal.TopicID(id))
			if err != nil {
				fmt.Printf("  %v\n", err)
				continue
			}
			fmt.Printf("  topic [%d] %q level=%d items=%d\n", t.ID, t.Description, t.Level, len(t.Items))
			fmt.Printf("  queries: %s\n", strings.Join(t.DescQueries, " | "))
			subs, _ := sys.SubTopics(t.ID)
			for _, s := range subs {
				st, _ := sys.Topic(s)
				fmt.Printf("    sub [%d] %-30q items=%d\n", s, st.Description, len(st.Items))
			}
			if len(subs) == 0 {
				fmt.Println("    (no sub-topics)")
			}
		case "items":
			if len(args) == 0 {
				fmt.Println("  usage: items <topicID> [categoryID]")
				continue
			}
			id, ok := parseID(args[:1])
			if !ok {
				fmt.Println("  usage: items <topicID> [categoryID]")
				continue
			}
			cat := shoal.RootCategory
			if len(args) > 1 {
				if c, ok := parseID(args[1:]); ok {
					cat = shoal.CategoryID(c)
				}
			}
			t, err := sys.Topic(shoal.TopicID(id))
			if err != nil {
				fmt.Printf("  %v\n", err)
				continue
			}
			fmt.Printf("  categories of topic [%d]:", t.ID)
			for _, c := range t.Categories {
				fmt.Printf(" %d=%s", c, corpus.Categories[c].Name)
			}
			fmt.Println()
			items, err := sys.TopicItems(t.ID, cat)
			if err != nil {
				fmt.Printf("  %v\n", err)
				continue
			}
			max := 12
			for i, it := range items {
				if i >= max {
					fmt.Printf("    ... %d more\n", len(items)-max)
					break
				}
				fmt.Printf("    #%d [%s] %s\n", it, corpus.Categories[corpus.Items[it].Category].Name, corpus.Items[it].Title)
			}
		case "related":
			if len(args) == 0 {
				fmt.Println("  usage: related <categoryID|name>")
				continue
			}
			cat := findCategory(corpus, strings.Join(args, " "))
			if cat == shoal.RootCategory {
				fmt.Println("  unknown category")
				continue
			}
			rel := sys.RelatedCategories(cat)
			if len(rel) == 0 {
				fmt.Println("  no correlated categories (try a lower -catcorr threshold)")
				continue
			}
			fmt.Printf("  %s correlates with:\n", corpus.Categories[cat].Name)
			for _, r := range rel {
				otherID := r.A
				if otherID == cat {
					otherID = r.B
				}
				fmt.Printf("    %-24s strength=%d\n", corpus.Categories[otherID].Name, r.Strength)
			}
		default:
			fmt.Printf("  unknown command %q (try help)\n", cmd)
		}
	}
}

func parseID(args []string) (int, bool) {
	if len(args) == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(args[0])
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// findCategory resolves a numeric id or a (case-insensitive) name.
func findCategory(corpus *shoal.Corpus, s string) shoal.CategoryID {
	if v, err := strconv.Atoi(s); err == nil {
		if v >= 0 && v < len(corpus.Categories) {
			return shoal.CategoryID(v)
		}
		return shoal.RootCategory
	}
	for i := range corpus.Categories {
		if strings.EqualFold(corpus.Categories[i].Name, s) {
			return corpus.Categories[i].ID
		}
	}
	return shoal.RootCategory
}
