// Package benchjson runs the graph-substrate micro-benchmarks at a
// fixed, larger-than-unit-test synthetic scale and emits machine-readable
// ns/op + allocs/op per benchmark. cmd/shoal-bench -benchjson uses it to
// write BENCH_<pr>.json files, giving the repo a benchmark trajectory
// across PRs that CI diffs with the regression gate (Gate /
// cmd/shoal-bench -benchgate): any benchmark name shared between two
// BENCH files whose ns/op regresses past the threshold fails the build.
//
// Methodology note: BENCH_3.json onward records the best of three runs
// per benchmark (the minimum ns/op is the least noise-contaminated
// estimate); BENCH_2.json and earlier were single runs, so comparisons
// against them carry the old files' scheduler noise in addition to real
// deltas.
package benchjson

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"sort"
	"strings"
	"testing"

	"shoal/internal/bm25"
	"shoal/internal/bsp"
	"shoal/internal/describe"
	"shoal/internal/entitygraph"
	"shoal/internal/hac"
	"shoal/internal/modularity"
	"shoal/internal/phac"
	"shoal/internal/serve"
	"shoal/internal/shard"
	"shoal/internal/textutil"
	"shoal/internal/wgraph"
)

// Result is one benchmark's outcome at the fixed scale.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Run executes every substrate benchmark once and returns the results
// sorted by name. The shared fixture comes from FixedWorld (see
// fixture.go), so a process that already built it — or a CI step that
// cached it on disk — does not pay for it again.
func Run() ([]Result, error) {
	b, clicks, sizes, err := FixedWorld()
	if err != nil {
		return nil, err
	}
	g := b.Graph
	labels := b.Dendrogram.CutAt(0.12)
	docs := make([][]string, 0, len(b.Corpus.Items))
	for i := range b.Corpus.Items {
		docs = append(docs, textutil.Tokenize(b.Corpus.Items[i].Title))
	}
	idx, err := bm25.Build(docs, bm25.DefaultConfig())
	if err != nil {
		return nil, err
	}
	query := textutil.Tokenize(b.Corpus.Queries[0].Text)
	edges := g.Edges() // materialized once: csr-from-edges times CSR construction only
	ctx := context.Background()

	var firstErr error
	record := func(op func() error) func(*testing.B) {
		return func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if err := op(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	base := g.BaseCSR()
	benches := map[string]func(*testing.B){
		// Single-worker, single-shard baseline — comparable across every
		// BENCH_*.json generation.
		"diffuse-r2": record(func() error {
			_, err := phac.Diffuse(base, 2, 0.12, 0)
			return err
		}),
		"phac-cluster": record(func() error {
			_, err := phac.Cluster(ctx, g, sizes, phac.Config{StopThreshold: 0.12, DiffusionRounds: 2})
			return err
		}),
		"hac-sequential": record(func() error {
			_, err := hac.Cluster(g, sizes, hac.Config{StopThreshold: 0.12})
			return err
		}),
		"modularity": record(func() error {
			_, err := modularity.Compute(g, labels)
			return err
		}),
		"entitygraph-build": record(func() error {
			_, err := entitygraph.Build(ctx, b.Entities, clicks, b.Embeddings, entitygraph.DefaultConfig())
			return err
		}),
		"csr-from-edges": record(func() error {
			_, err := wgraph.FromEdges(g.NumNodes(), edges)
			return err
		}),
		"bm25-topk": record(func() error {
			idx.TopK(query, 10)
			return nil
		}),
		// Deeper exchange budget than the paper's r=2: late iterations
		// converge, so this point tracks what frontier pruning saves once
		// the changed set collapses.
		"diffuse-r6": record(func() error {
			_, err := phac.Diffuse(base, 6, 0.12, 0)
			return err
		}),
		// Serving-side rebuild cost of topic descriptions — the batch
		// BM25 scorer path (one scratch checkout + cached idf).
		"describe": record(func() error {
			_, err := describe.Describe(ctx, b.Taxonomy, b.Corpus, clicks, describe.DefaultConfig())
			return err
		}),
		// Diffusion on the shard-native BSP engine — the distributed
		// execution model. Tracked next to diffuse-r{2,6} so the derived
		// bsp-diffuse-r{2,6}-vs-shared ratios record the gap to the
		// shared-memory path across PRs.
		"bsp-diffuse-r2": record(func() error {
			_, err := phac.DiffuseBSP(base, 2, 0.12, bsp.Config{})
			return err
		}),
		"bsp-diffuse-r6": record(func() error {
			_, err := phac.DiffuseBSP(base, 6, 0.12, bsp.Config{})
			return err
		}),
		// Full clustering on the BSP engine (core -bsp): every merge
		// round's diffusion served by one persistent engine rebound to
		// each round's contracted CSR. Tracked next to phac-cluster so
		// the derived phac-cluster-bsp-vs-shared ratio records the
		// end-to-end cost of the distributed execution model, not just
		// the standalone-diffusion gap.
		"phac-cluster-bsp": record(func() error {
			_, err := phac.Cluster(ctx, g, sizes, phac.Config{
				StopThreshold: 0.12, DiffusionRounds: 2, UseBSP: true,
			})
			return err
		}),
	}
	// Serving hot path through the full instrumented handler (middleware,
	// per-route histograms, status-class counters) versus the same mux
	// with the instrumentation bypassed. The derived obs-overhead-vs-bare
	// ratio below is what the gate watches: request telemetry must stay
	// under ObsOverheadCeiling on the search path.
	handler, err := serve.NewHandler(b)
	if err != nil {
		return nil, err
	}
	bareMux := handler.Bare()
	searchTarget := "/api/search?q=" + url.QueryEscape(b.Corpus.Queries[0].Text) + "&k=10"
	sink := nopWriter{h: make(http.Header)}
	benches["serve-search"] = record(func() error {
		handler.ServeHTTP(&sink, httptest.NewRequest("GET", searchTarget, nil))
		return nil
	})
	benches["serve-search-bare"] = record(func() error {
		bareMux.ServeHTTP(&sink, httptest.NewRequest("GET", searchTarget, nil))
		return nil
	})
	benches["serve-stats"] = record(func() error {
		handler.ServeHTTP(&sink, httptest.NewRequest("GET", "/api/stats", nil))
		return nil
	})
	// One-day window slide, rebuilt both ways from identical precomputed
	// inputs: daily-rebuild runs the from-scratch graph construction +
	// cold clustering the pre-incremental pipeline paid every day;
	// incremental-rebuild sort-merges the slide's dirty rows into the
	// retained CSR and warm-starts clustering from the previous build's
	// diffusion memo. The derived incremental-vs-full ratio below is what
	// the gate watches (IncrementalVsFullCeiling).
	sw, err := buildSlideWorld(b, sizes)
	if err != nil {
		return nil, err
	}
	benches["daily-rebuild"] = record(func() error {
		res, err := entitygraph.Build(ctx, b.Entities, sw.window, b.Embeddings, sw.gcfg)
		if err != nil {
			return err
		}
		_, err = phac.Cluster(ctx, res.Graph, sizes, sw.hcfg)
		return err
	})
	benches["incremental-rebuild"] = record(func() error {
		res, _, d, err := entitygraph.BuildIncremental(ctx, b.Entities, sw.window, b.Embeddings, sw.gcfg, sw.st, sw.dirty)
		if err != nil {
			return err
		}
		_, _, err = phac.ClusterWarm(ctx, res.Graph, sizes, sw.hcfg, sw.memo, d.DirtyRows)
		return err
	})
	// Segment wire format: encode + decode every shard of a 4-way
	// partition (the multi-host placement cost per shard hand-off).
	segSrc := shard.Partition(base, 4)
	segs := segSrc.Segments()
	benches["segment-roundtrip"] = record(func() error {
		for _, seg := range segs {
			if _, err := shard.DecodeSegment(seg.Encode()); err != nil {
				return err
			}
		}
		return nil
	})
	// Shard-count sweep: the same diffusion / clustering / construction
	// work at increasing partition widths, so each BENCH_*.json records
	// how the partition-parallel paths scale on the fixed corpus.
	for _, s := range []int{2, 4, 8} {
		sg := shard.Partition(base, s)
		benches[fmt.Sprintf("diffuse-r2-shards%d", s)] = record(func() error {
			_, err := phac.Diffuse(sg, 2, 0.12, 0)
			return err
		})
		shards := s
		benches[fmt.Sprintf("phac-cluster-shards%d", s)] = record(func() error {
			_, err := phac.Cluster(ctx, g, sizes, phac.Config{
				StopThreshold: 0.12, DiffusionRounds: 2, Workers: shards, Shards: shards,
			})
			return err
		})
		benches[fmt.Sprintf("csr-from-edges-shards%d", s)] = record(func() error {
			_, err := shard.FromEdges(g.NumNodes(), edges, shards)
			return err
		})
	}

	out := make([]Result, 0, len(benches))
	byName := make(map[string]Result, len(benches))
	for name, fn := range benches {
		// Best of three: the minimum ns/op is the least scheduler-noise
		// contaminated estimate, which keeps the committed trajectory
		// (and the CI regression gate over it) stable run to run.
		var best Result
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(fn)
			if firstErr != nil {
				return nil, fmt.Errorf("benchjson: %s: %w", name, firstErr)
			}
			cand := Result{
				Name:        name,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
			}
			if rep == 0 || cand.NsPerOp < best.NsPerOp {
				best = cand
			}
		}
		out = append(out, best)
		byName[name] = best
	}
	// Derived speedup metrics: NsPerOp holds the dimensionless
	// sharded/serial construction time ratio (lower is better, < 1 means
	// the parallel build wins). Machine-speed-independent, so the gate
	// can assert "parallel construction never loses to serial" across
	// runners (see VsSerialCeiling) without chasing absolute ns.
	serial := byName["csr-from-edges"]
	for _, s := range []int{2, 4, 8} {
		name := fmt.Sprintf("csr-from-edges-shards%d", s)
		if sh, ok := byName[name]; ok && serial.NsPerOp > 0 {
			out = append(out, Result{
				Name:    name + "-vs-serial",
				NsPerOp: sh.NsPerOp / serial.NsPerOp,
			})
		}
	}
	// bsp-vs-shared: BSP-engine diffusion time over shared-memory
	// diffusion time at the same exchange budget (dimensionless, lower
	// is better; 1.0 means the distributed twin matches the shared path).
	// Committed in the trajectory so the gap is tracked PR over PR.
	for _, pair := range [][2]string{
		{"bsp-diffuse-r2", "diffuse-r2"},
		{"bsp-diffuse-r6", "diffuse-r6"},
		{"phac-cluster-bsp", "phac-cluster"},
	} {
		if bb, ok := byName[pair[0]]; ok {
			if sh, ok := byName[pair[1]]; ok && sh.NsPerOp > 0 {
				out = append(out, Result{
					Name:    pair[0] + "-vs-shared",
					NsPerOp: bb.NsPerOp / sh.NsPerOp,
				})
			}
		}
	}
	// incremental-vs-full: delta-driven slide rebuild time over the
	// from-scratch rebuild of the same window (dimensionless, lower is
	// better; 1.0 means incrementality saves nothing). Hard-gated at
	// IncrementalVsFullCeiling so the delta path must keep a real margin.
	if inc, ok := byName["incremental-rebuild"]; ok {
		if fullB, ok := byName["daily-rebuild"]; ok && fullB.NsPerOp > 0 {
			out = append(out, Result{
				Name:    "incremental-vs-full",
				NsPerOp: inc.NsPerOp / fullB.NsPerOp,
			})
		}
	}
	// obs-overhead-vs-bare: instrumented search serving time over the same
	// handler with the middleware bypassed (dimensionless, lower is
	// better; 1.0 means the telemetry is free). Hard-gated at
	// ObsOverheadCeiling so the request instrumentation can never quietly
	// grow past its <10% budget on the search hot path.
	if inst, ok := byName["serve-search"]; ok {
		if bare, ok := byName["serve-search-bare"]; ok && bare.NsPerOp > 0 {
			out = append(out, Result{
				Name:    "obs-overhead-vs-bare",
				NsPerOp: inst.NsPerOp / bare.NsPerOp,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// nopWriter is the serving benchmarks' response sink: headers land in a
// reused map, bodies are counted and dropped. It keeps the benchmark on
// the handler + instrumentation cost instead of response buffering.
type nopWriter struct{ h http.Header }

func (w *nopWriter) Header() http.Header         { return w.h }
func (w *nopWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopWriter) WriteHeader(int)             {}

// WriteFile runs the suite and writes the results as indented JSON.
func WriteFile(path string) error {
	results, err := Run()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a BENCH_*.json results file.
func ReadFile(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return out, nil
}

// VsSerialCeiling is the baseline hard ceiling for the *-vs-serial
// derived ratios: a sharded construction measuring above it has lost to
// the serial build, which the gate fails regardless of what the old
// trajectory recorded. The effective ceiling widens with the gate's
// relative threshold (1 + threshold when that is larger), so the
// runner-side re-run — noisy shared hardware, wider tolerance — gets
// the same proportional slack as its ns/op comparisons while the
// committed-trajectory gate stays strict. Either way the PR-3
// regression shape (parallel FromEdges 1.6-2.0x slower than serial)
// can never come back silently.
const VsSerialCeiling = 1.10

// BspVsSharedCeiling is the hard ceiling for the bsp-diffuse-*-vs-shared
// derived ratios: BSP-engine diffusion time over shared-memory diffusion
// time at the same exchange budget. A ratio at or above it means the
// distributed execution model has fallen behind the shared path by more
// than the accepted envelope, which the gate fails outright — the PR-6
// gap-closing work (persistent engines across rounds, O(frontier)
// combiner scratch, dense-mode inbox scans) brought the ratios to
// ~1.2-1.25, and this ceiling keeps the gap from silently reopening
// toward the ~2x it started at. Like VsSerialCeiling, the effective
// ceiling widens to 1 + threshold when the gate runs with a larger
// relative tolerance (noisy shared runners), while the
// committed-trajectory gate stays strict.
const BspVsSharedCeiling = 1.45

// ClusterBspVsSharedCeiling is the hard ceiling for the end-to-end
// phac-cluster-bsp-vs-shared ratio. It is looser than the standalone
// diffusion ceiling because the full clustering run also pays the
// engine Rebind/remap tax every merge round, but since the PR-7
// cross-round memoization work (seeded supersteps over the previous
// round's fixed point, changed-rows selection, incremental round
// stats) the ratio sits at ~1.26, so anything at or above this ceiling
// means the vertex program has fallen back to recomputing whole rounds
// from scratch — the ~2.5x shape this gate exists to keep out. Widens
// to 1 + threshold on wide-tolerance gates, like the other ceilings.
const ClusterBspVsSharedCeiling = 1.6

// ObsOverheadCeiling is the hard ceiling for the obs-overhead-vs-bare
// derived ratio: instrumented search serving time over the bare-mux
// time. At or above it the request telemetry (middleware, per-route
// histogram, status-class counters) costs 10%+ of the search hot path,
// which the gate fails outright — the observability layer's contract is
// that measuring the serving tier never becomes a tax worth turning
// off. Widens to 1 + threshold on wide-tolerance gates, like the other
// ceilings.
const ObsOverheadCeiling = 1.10

// IncrementalVsFullCeiling is the hard ceiling for the derived
// incremental-vs-full ratio: delta-driven slide rebuild time over a
// from-scratch rebuild of the same window. At or above it the
// incremental path has lost its reason to exist — the sort-merge CSR
// patch plus the warm-started clustering must beat recomputing
// yesterday's taxonomy by a real margin, not round-off. Unlike the
// >1 ceilings above, this one does NOT widen with the gate's relative
// threshold: the ratio's whole budget sits below 1.0, so adding the
// threshold on top would let the win silently evaporate on
// wide-tolerance runners.
const IncrementalVsFullCeiling = 0.7

// Regressions compares two result sets and reports every benchmark name
// present in both whose ns/op grew by more than threshold (a fraction:
// 0.25 means "fail past +25%"). Benchmarks only in one set are ignored —
// the gate constrains the shared trajectory, it does not force every PR
// to keep the same suite — except the derived ratios in the new set:
// *-vs-serial additionally fails outright above VsSerialCeiling,
// bsp-diffuse-*-vs-shared above BspVsSharedCeiling,
// phac-cluster-bsp-vs-shared above ClusterBspVsSharedCeiling,
// obs-overhead-vs-bare above ObsOverheadCeiling, and
// incremental-vs-full above IncrementalVsFullCeiling (which never
// widens). The report is sorted by name.
func Regressions(oldRes, newRes []Result, threshold float64) []string {
	prev := make(map[string]Result, len(oldRes))
	for _, r := range oldRes {
		prev[r.Name] = r
	}
	ceiling := VsSerialCeiling
	if 1+threshold > ceiling {
		ceiling = 1 + threshold
	}
	bspCeiling := BspVsSharedCeiling
	if 1+threshold > bspCeiling {
		bspCeiling = 1 + threshold
	}
	clusterCeiling := ClusterBspVsSharedCeiling
	if 1+threshold > clusterCeiling {
		clusterCeiling = 1 + threshold
	}
	obsCeiling := ObsOverheadCeiling
	if 1+threshold > obsCeiling {
		obsCeiling = 1 + threshold
	}
	var out []string
	for _, n := range newRes {
		if strings.HasSuffix(n.Name, "-vs-serial") && n.NsPerOp >= ceiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — parallel construction lost to serial",
				n.Name, n.NsPerOp, ceiling))
			continue
		}
		if strings.HasPrefix(n.Name, "bsp-diffuse-") && strings.HasSuffix(n.Name, "-vs-shared") && n.NsPerOp >= bspCeiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — BSP engine fell behind the shared-memory path",
				n.Name, n.NsPerOp, bspCeiling))
			continue
		}
		if n.Name == "phac-cluster-bsp-vs-shared" && n.NsPerOp >= clusterCeiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — BSP clustering lost its cross-round memoization win",
				n.Name, n.NsPerOp, clusterCeiling))
			continue
		}
		if n.Name == "obs-overhead-vs-bare" && n.NsPerOp >= obsCeiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — request instrumentation blew its search hot-path budget",
				n.Name, n.NsPerOp, obsCeiling))
			continue
		}
		if n.Name == "incremental-vs-full" && n.NsPerOp >= IncrementalVsFullCeiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — the delta-driven rebuild lost its margin over recomputing from scratch",
				n.Name, n.NsPerOp, IncrementalVsFullCeiling))
			continue
		}
		o, ok := prev[n.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		if n.NsPerOp > o.NsPerOp*(1+threshold) {
			out = append(out, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, gate %+.0f%%)",
				n.Name, o.NsPerOp, n.NsPerOp, 100*(n.NsPerOp/o.NsPerOp-1), 100*threshold))
		}
	}
	sort.Strings(out)
	return out
}

// Gate loads two BENCH_*.json files and returns the regression report
// (empty when the gate passes).
func Gate(oldPath, newPath string, threshold float64) ([]string, error) {
	oldRes, err := ReadFile(oldPath)
	if err != nil {
		return nil, err
	}
	newRes, err := ReadFile(newPath)
	if err != nil {
		return nil, err
	}
	return Regressions(oldRes, newRes, threshold), nil
}
