// Command shoal-bench regenerates the paper's evaluation: one table per
// experiment id (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	shoal-bench                      # run everything at medium scale
//	shoal-bench -run E1,E3 -scale small
//	shoal-bench -run E2 -users 1000000
//	shoal-bench -benchjson BENCH_3.json             # substrate benchmarks -> JSON
//	shoal-bench -benchgate BENCH_2.json,BENCH_3.json # regression gate
//
// -benchjson runs the graph-substrate micro-benchmarks at a fixed larger
// synthetic scale (including the shard-count sweep) and writes ns/op +
// allocs/op per benchmark, so each PR can record a comparable
// BENCH_<pr>.json trajectory point. -benchgate compares two such files
// and exits non-zero when any shared benchmark's ns/op regressed past
// -gate-threshold — the CI regression gate.
package main

import (
	"flag"
	"log"
	"os"
	"strconv"
	"strings"

	"shoal/internal/benchjson"
	"shoal/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoal-bench: ")

	var (
		run       = flag.String("run", "all", "comma-separated experiment ids (E1..E9,F3) or 'all'")
		scale     = flag.String("scale", "medium", "corpus scale: small|medium|large")
		users     = flag.Int("users", 200_000, "simulated users for E2")
		seeds     = flag.String("seeds", "1,2,3", "comma-separated corpus seeds")
		noFail    = flag.Bool("keep-going", true, "continue after a failing experiment")
		benchJSON = flag.String("benchjson", "", "run substrate benchmarks at a fixed scale and write JSON results to this path")
		benchGate = flag.String("benchgate", "", "compare two benchjson files OLD,NEW and fail on ns/op regressions in shared benchmarks")
		gateTol   = flag.Float64("gate-threshold", 0.25, "fractional ns/op regression tolerated by -benchgate")
	)
	flag.Parse()

	if *benchJSON != "" {
		if err := benchjson.WriteFile(*benchJSON); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *benchJSON)
		return
	}
	if *benchGate != "" {
		parts := strings.Split(*benchGate, ",")
		if len(parts) != 2 {
			log.Fatalf("-benchgate wants OLD.json,NEW.json, got %q", *benchGate)
		}
		regs, err := benchjson.Gate(strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), *gateTol)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range regs {
			log.Printf("regression: %s", r)
		}
		if len(regs) > 0 {
			os.Exit(1)
		}
		log.Printf("bench gate passed: %s vs %s within %+.0f%%", parts[0], parts[1], 100**gateTol)
		return
	}

	sc, err := experiments.ParseScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	runner := experiments.DefaultRunner(sc)
	runner.ABUsers = *users
	runner.Seeds = runner.Seeds[:0]
	for _, s := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", s, err)
		}
		runner.Seeds = append(runner.Seeds, v)
	}

	ids := runner.IDs()
	if *run != "all" {
		ids = strings.Split(strings.ToUpper(*run), ",")
	}
	exit := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		tab, err := runner.Run(id)
		if err != nil {
			log.Printf("%s failed: %v", id, err)
			exit = 1
			if !*noFail {
				os.Exit(1)
			}
			continue
		}
		if err := tab.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	os.Exit(exit)
}
