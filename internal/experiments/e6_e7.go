package experiments

import (
	"context"
	"fmt"

	"shoal/internal/bipartite"
	"shoal/internal/catcorr"
	"shoal/internal/entitygraph"
	"shoal/internal/eval"
	"shoal/internal/model"
	"shoal/internal/phac"
	"shoal/internal/synth"
	"shoal/internal/taxonomy"
	"shoal/internal/textutil"
	"shoal/internal/word2vec"
)

// E6Alpha ablates the Eq. 3 similarity blend: the paper sets α = 0.7
// (query-driven weight). The sweep measures clustering quality (NMI and
// placement precision) as α moves from pure content (0) to pure query (1).
func E6Alpha(sc Scale, seed uint64, alphas []float64) (*Table, error) {
	corpus, err := synth.Generate(corpusConfig(sc, seed))
	if err != nil {
		return nil, err
	}
	es, err := entitygraph.BuildEntities(context.Background(), corpus)
	if err != nil {
		return nil, err
	}
	clicks := bipartite.New(7)
	if err := clicks.AddAll(corpus.Clicks); err != nil {
		return nil, err
	}
	sentences := make([][]string, 0, len(corpus.Items))
	for i := range corpus.Items {
		sentences = append(sentences, textutil.Tokenize(corpus.Items[i].Title))
	}
	w2v := word2vec.DefaultConfig()
	w2v.Epochs = 2
	w2v.Dim = 24
	emb, err := word2vec.Train(context.Background(), sentences, w2v)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:         "E6",
		Title:      "Similarity blend ablation: alpha sweep (Eq. 3)",
		PaperClaim: "alpha is set to 0.7 for the demonstration",
		Header:     []string{"alpha", "edges", "NMI", "purity", "precision"},
	}
	sizes := func(es *entitygraph.EntitySet) []int {
		out := make([]int, len(es.Entities))
		for i := range out {
			out[i] = es.Entities[i].Size()
		}
		return out
	}
	for _, alpha := range alphas {
		gcfg := entitygraph.DefaultConfig()
		gcfg.Alpha = alpha
		gcfg.MinSimilarity = 0.25
		res, err := entitygraph.Build(context.Background(), es, clicks, emb, gcfg)
		if err != nil {
			return nil, err
		}
		cres, err := phac.Cluster(context.Background(), res.Graph, sizes(es), phac.Config{StopThreshold: stopTh, DiffusionRounds: 2})
		if err != nil {
			return nil, err
		}
		tx, err := taxonomy.Build(context.Background(), cres.Dendrogram, es, corpus, taxonomy.Config{
			Levels: []float64{stopTh}, MinTopicSize: 2,
		})
		if err != nil {
			return nil, err
		}
		row := []string{f3(alpha), itoa(res.Graph.NumEdges())}
		labels := cres.Dendrogram.CutAt(stopTh)
		truth := make([]model.ScenarioID, len(es.Entities))
		for i := range es.Entities {
			truth[i] = es.Entities[i].Scenario
		}
		part, err := eval.LabelsPartition(labels, truth)
		if err != nil {
			return nil, err
		}
		row = append(row, f3(part.NMI()), f3(part.Purity()))
		prec, err := eval.Precision(tx, corpus, eval.PrecisionConfig{
			MinTopicItems: 3, RootTopicsOnly: true, Seed: seed,
		})
		if err != nil {
			row = append(row, "n/a")
		} else {
			row = append(row, pct(prec.Precision))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "NMI/purity: entity-level cut at the stop threshold vs ground-truth scenarios")
	return t, nil
}

// E7CatCorr reproduces the §2.4 correlation threshold choice: pairs are
// kept iff their root-topic co-occurrence exceeds the threshold (paper:
// 10). Correlation precision is judged against the generator: a pair is
// correct when some ground-truth scenario uses both categories.
func E7CatCorr(sc Scale, seed uint64, thresholds []int) (*Table, error) {
	corpus, b, err := buildSystem(sc, seed)
	if err != nil {
		return nil, err
	}
	// Ground truth: category pairs co-used by a scenario.
	scenCats := make(map[model.ScenarioID]map[model.CategoryID]bool)
	for i := range corpus.Items {
		s := corpus.Items[i].Scenario
		if s == model.NoScenario {
			continue
		}
		if scenCats[s] == nil {
			scenCats[s] = make(map[model.CategoryID]bool)
		}
		scenCats[s][corpus.Items[i].Category] = true
	}
	truth := make(map[[2]model.CategoryID]bool)
	for _, cats := range scenCats {
		var list []model.CategoryID
		for c := range cats {
			list = append(list, c)
		}
		for i := 0; i < len(list); i++ {
			for j := 0; j < len(list); j++ {
				if list[i] < list[j] {
					truth[[2]model.CategoryID{list[i], list[j]}] = true
				}
			}
		}
	}

	t := &Table{
		ID:         "E7",
		Title:      "Category correlation threshold sweep (Eq. 5)",
		PaperClaim: "a correlation exists only if Sc(Ci,Cj) > 10",
		Header:     []string{"threshold", "pairs-kept", "correct", "precision"},
	}
	for _, th := range thresholds {
		g, err := catcorr.Mine(context.Background(), b.Taxonomy, catcorr.Config{MinStrength: th})
		if err != nil {
			return nil, err
		}
		pairs := g.Pairs()
		correct := 0
		for _, p := range pairs {
			if truth[[2]model.CategoryID{p.A, p.B}] {
				correct++
			}
		}
		prec := "n/a"
		if len(pairs) > 0 {
			prec = pct(float64(correct) / float64(len(pairs)))
		}
		t.Rows = append(t.Rows, []string{itoa(th), itoa(len(pairs)), itoa(correct), prec})
	}
	t.Notes = append(t.Notes,
		"correct: both categories are used by at least one common ground-truth scenario",
		fmt.Sprintf("root topics available as pivots: %d", len(b.Taxonomy.Roots())))
	return t, nil
}
