package phac

import (
	"context"
	"math/rand/v2"
	"reflect"
	"slices"
	"testing"

	"shoal/internal/wgraph"
)

// perturbGraph returns a copy of g with a handful of edges reweighted,
// removed and added, plus the sorted list of every row whose adjacency
// it touched — the dirtyRows contract ClusterWarm expects.
func perturbGraph(g *wgraph.Graph, n int, seed uint64) (*wgraph.Graph, []int32) {
	rng := rand.New(rand.NewPCG(seed, 101))
	type key struct{ u, v int32 }
	em := map[key]float64{}
	for _, e := range g.Edges() {
		em[key{e.U, e.V}] = e.W
	}
	edges := g.Edges()
	dirty := map[int32]bool{}
	touch := func(u, v int32) { dirty[u], dirty[v] = true, true }
	for i := 0; i < 3; i++ {
		e := edges[rng.IntN(len(edges))]
		em[key{e.U, e.V}] = 0.05 + 0.9*rng.Float64()
		touch(e.U, e.V)
	}
	for i := 0; i < 2; i++ {
		e := edges[rng.IntN(len(edges))]
		if _, ok := em[key{e.U, e.V}]; ok {
			delete(em, key{e.U, e.V})
			touch(e.U, e.V)
		}
	}
	for i := 0; i < 3; i++ {
		u, v := int32(rng.IntN(n)), int32(rng.IntN(n))
		if u == v {
			continue
		}
		if v < u {
			u, v = v, u
		}
		em[key{u, v}] = 0.05 + 0.9*rng.Float64()
		touch(u, v)
	}
	ng := wgraph.New(n)
	for k, w := range em {
		_ = ng.SetEdge(k.u, k.v, w)
	}
	out := make([]int32, 0, len(dirty))
	for u := range dirty {
		out = append(out, u)
	}
	slices.Sort(out)
	return ng, out
}

// TestClusterWarmMatchesCold locks the cross-build memo contract: a
// warm clustering seeded from the previous build's Memo with the
// perturbed rows declared dirty is byte-identical — dendrogram and
// per-round statistics — to a cold Cluster over the same graph, across
// the shared-memory and BSP paths, chained over several perturbations.
func TestClusterWarmMatchesCold(t *testing.T) {
	ctx := context.Background()
	const n = 90
	for seed := uint64(1); seed <= 4; seed++ {
		for _, tc := range []struct {
			name    string
			useBSP  bool
			workers int
		}{
			{"shared-w1", false, 1},
			{"shared-w3", false, 3},
			{"bsp-w1", true, 1},
			{"bsp-w3", true, 3},
		} {
			cfg := Config{
				StopThreshold: 0.3, DiffusionRounds: 2,
				Workers: tc.workers, Shards: tc.workers, UseBSP: tc.useBSP,
			}
			g := randomGraph(n, 220, seed)
			warm, memo, err := ClusterWarm(ctx, g, nil, cfg, nil, nil)
			if err != nil {
				t.Fatalf("seed %d %s: cold capture: %v", seed, tc.name, err)
			}
			cold, err := Cluster(ctx, g, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(warm.Dendrogram, cold.Dendrogram) {
				t.Fatalf("seed %d %s: capturing run diverged from Cluster", seed, tc.name)
			}
			if memo == nil || !memo.Compatible(n, cfg) {
				t.Fatalf("seed %d %s: cold run did not capture a usable memo", seed, tc.name)
			}
			for step := uint64(0); step < 3; step++ {
				ng, dirty := perturbGraph(g, n, seed*31+step)
				warm, nextMemo, err := ClusterWarm(ctx, ng, nil, cfg, memo, dirty)
				if err != nil {
					t.Fatalf("seed %d %s step %d: warm: %v", seed, tc.name, step, err)
				}
				cold, err := Cluster(ctx, ng, nil, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(warm.Dendrogram, cold.Dendrogram) {
					t.Fatalf("seed %d %s step %d: warm dendrogram diverged from cold", seed, tc.name, step)
				}
				if !reflect.DeepEqual(warm.Rounds, cold.Rounds) {
					t.Fatalf("seed %d %s step %d: warm round stats diverged: %+v vs %+v",
						seed, tc.name, step, warm.Rounds, cold.Rounds)
				}
				g, memo = ng, nextMemo
			}
		}
	}
}

// TestClusterWarmMemoCrossesExecutionPaths: UseBSP is not part of the
// memo key — a memo captured by the shared-memory path must warm the
// BSP path and vice versa, still byte-identical to cold.
func TestClusterWarmMemoCrossesExecutionPaths(t *testing.T) {
	ctx := context.Background()
	const n = 80
	g := randomGraph(n, 180, 7)
	shared := Config{StopThreshold: 0.3, DiffusionRounds: 2, Workers: 2, Shards: 2}
	bspCfg := shared
	bspCfg.UseBSP = true

	_, memoShared, err := ClusterWarm(ctx, g, nil, shared, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, memoBSP, err := ClusterWarm(ctx, g, nil, bspCfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ng, dirty := perturbGraph(g, n, 99)
	cold, err := Cluster(ctx, ng, nil, shared)
	if err != nil {
		t.Fatal(err)
	}
	warmBSP, _, err := ClusterWarm(ctx, ng, nil, bspCfg, memoShared, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmBSP.Dendrogram, cold.Dendrogram) {
		t.Fatal("shared-captured memo diverged on the BSP path")
	}
	warmShared, _, err := ClusterWarm(ctx, ng, nil, shared, memoBSP, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warmShared.Dendrogram, cold.Dendrogram) {
		t.Fatal("BSP-captured memo diverged on the shared path")
	}
}

// TestClusterWarmDirtyShapes fuzzes the shape of the dirty set — empty,
// a single reweighted edge, a hub row's neighborhood, the full graph —
// against a cold Cluster, with every memo captured on a different
// execution path than the one it warms (shared→shared parallel,
// shared→BSP, BSP→shared). Two shapes have provable replay counts: an
// empty delta must replay the entire trajectory, and an all-rows-dirty
// delta must trip the taint density gate before the first round and
// replay nothing.
func TestClusterWarmDirtyShapes(t *testing.T) {
	ctx := context.Background()
	const n = 120
	base := Config{StopThreshold: 0.3, DiffusionRounds: 2}
	configs := []struct {
		name string
		cfg  Config
	}{
		{"shared-w1", base},
		{"shared-w3", base},
		{"bsp-w2", base},
	}
	configs[1].cfg.Workers, configs[1].cfg.Shards = 3, 3
	configs[2].cfg.Workers, configs[2].cfg.Shards, configs[2].cfg.UseBSP = 2, 2, true

	reweightOne := func(g *wgraph.Graph, rng *rand.Rand) (*wgraph.Graph, []int32) {
		edges := g.Edges()
		e := edges[rng.IntN(len(edges))]
		ng := wgraph.New(n)
		for _, o := range edges {
			_ = ng.SetEdge(o.U, o.V, o.W)
		}
		_ = ng.SetEdge(e.U, e.V, 0.05+0.9*rng.Float64())
		dirty := []int32{e.U, e.V}
		slices.Sort(dirty)
		return ng, dirty
	}
	reweightHub := func(g *wgraph.Graph, rng *rand.Rand) (*wgraph.Graph, []int32) {
		deg := make([]int, n)
		edges := g.Edges()
		for _, e := range edges {
			deg[e.U]++
			deg[e.V]++
		}
		hub := int32(0)
		for u := 1; u < n; u++ {
			if deg[u] > deg[hub] {
				hub = int32(u)
			}
		}
		ng := wgraph.New(n)
		for _, o := range edges {
			_ = ng.SetEdge(o.U, o.V, o.W)
		}
		dirty := map[int32]bool{hub: true}
		touched := 0
		for _, e := range edges {
			if touched >= 5 || (e.U != hub && e.V != hub) {
				continue
			}
			_ = ng.SetEdge(e.U, e.V, 0.05+0.9*rng.Float64())
			dirty[e.U], dirty[e.V] = true, true
			touched++
		}
		out := make([]int32, 0, len(dirty))
		for u := range dirty {
			out = append(out, u)
		}
		slices.Sort(out)
		return ng, out
	}

	partialReplays := 0
	for seed := uint64(1); seed <= 3; seed++ {
		g := randomGraph(n, 300, seed)
		for i, tc := range configs {
			// The memo always comes from a different path/parallelism
			// than the warm run consuming it.
			capCfg := configs[(i+1)%len(configs)].cfg
			_, memo, err := ClusterWarm(ctx, g, nil, capCfg, nil, nil)
			if err != nil {
				t.Fatalf("seed %d %s: capture: %v", seed, tc.name, err)
			}
			rng := rand.New(rand.NewPCG(seed, uint64(i)*13+5))
			full, fullDirty := perturbGraph(g, n, seed*17+uint64(i))
			allRows := make([]int32, n)
			for u := range allRows {
				allRows[u] = int32(u)
			}
			_ = fullDirty
			shapes := []struct {
				name       string
				g          *wgraph.Graph
				dirty      []int32
				wantRounds int // -1: no constraint; -2: all rounds
			}{
				{"empty", g, nil, -2},
				{"full", full, allRows, 0},
			}
			sg, sd := reweightOne(g, rng)
			shapes = append(shapes, struct {
				name       string
				g          *wgraph.Graph
				dirty      []int32
				wantRounds int
			}{"singleton", sg, sd, -1})
			hg, hd := reweightHub(g, rng)
			shapes = append(shapes, struct {
				name       string
				g          *wgraph.Graph
				dirty      []int32
				wantRounds int
			}{"hub", hg, hd, -1})

			for _, sh := range shapes {
				warm, _, err := ClusterWarm(ctx, sh.g, nil, tc.cfg, memo, sh.dirty)
				if err != nil {
					t.Fatalf("seed %d %s %s: warm: %v", seed, tc.name, sh.name, err)
				}
				cold, err := Cluster(ctx, sh.g, nil, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(warm.Dendrogram, cold.Dendrogram) {
					t.Fatalf("seed %d %s %s: warm dendrogram diverged from cold", seed, tc.name, sh.name)
				}
				if !reflect.DeepEqual(warm.Rounds, cold.Rounds) {
					t.Fatalf("seed %d %s %s: warm round stats diverged", seed, tc.name, sh.name)
				}
				switch sh.wantRounds {
				case -2:
					// A clean delta replays every round the memo's
					// capped trajectory holds, and all merges in them.
					wantR := min(len(warm.Rounds), replayCaptureDepth)
					wantM := 0
					for _, rs := range warm.Rounds[:wantR] {
						wantM += rs.Selected
					}
					if warm.ReplayedRounds != wantR || warm.ReplayedMerges != wantM {
						t.Fatalf("seed %d %s %s: clean delta replayed %d/%d rounds, %d/%d merges",
							seed, tc.name, sh.name, warm.ReplayedRounds, wantR,
							warm.ReplayedMerges, wantM)
					}
				case -1:
					partialReplays += warm.ReplayedRounds
				default:
					if warm.ReplayedRounds != sh.wantRounds {
						t.Fatalf("seed %d %s %s: replayed %d rounds, want %d",
							seed, tc.name, sh.name, warm.ReplayedRounds, sh.wantRounds)
					}
				}
			}
		}
	}
	if partialReplays == 0 {
		t.Fatal("no singleton/hub delta replayed any round — taint replay never engages on small deltas")
	}
}

// TestClusterWarmIncompatibleMemo: a stale memo (wrong size or changed
// clustering parameters) must be ignored, not misapplied.
func TestClusterWarmIncompatibleMemo(t *testing.T) {
	ctx := context.Background()
	cfg := Config{StopThreshold: 0.3, DiffusionRounds: 2, Workers: 2}
	g := randomGraph(60, 120, 3)
	_, memo, err := ClusterWarm(ctx, g, nil, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if (*Memo)(nil).Compatible(60, cfg) {
		t.Fatal("nil memo must be incompatible")
	}
	cfg2 := cfg
	cfg2.StopThreshold = 0.25
	if memo.Compatible(60, cfg2) {
		t.Fatal("changed threshold must invalidate the memo")
	}
	cold, err := Cluster(ctx, g, nil, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := ClusterWarm(ctx, g, nil, cfg2, memo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.Dendrogram, cold.Dendrogram) {
		t.Fatal("incompatible memo changed the clustering result")
	}

	// Out-of-range dirty rows with a compatible memo are a caller bug.
	if _, _, err := ClusterWarm(ctx, g, nil, cfg, memo, []int32{999}); err == nil {
		t.Fatal("out-of-range dirty row must error")
	}
}
