// Daily demonstrates the production operating mode (paper §3): SHOAL is
// built from a sliding window over the last seven days of search queries
// and refreshed as new days of click logs arrive. The example streams two
// weeks of synthetic clicks through the window with Config.Incremental
// set, so each day's rebuild recomputes only what the window slide
// changed (byte-identical to from-scratch), and reports the per-day
// delta alongside topics and day-over-day structural stability.
package main

import (
	"fmt"
	"log"

	"shoal"
)

func main() {
	log.SetFlags(0)

	gen := shoal.DefaultCorpusConfig()
	gen.Scenarios = 12
	gen.ItemsPerScenario = 80
	gen.Days = 14
	corpus, err := shoal.GenerateCorpus(gen)
	if err != nil {
		log.Fatal(err)
	}
	// Replay the clicks as a production-shaped stream: head demand — the
	// vast majority of (query, item) pairs — recurs every day, while a 2%
	// rotating tail lives on a single day each. A window slide then
	// perturbs only the small tail set, the regime the delta-driven
	// rebuild exploits; higher churn trips the patch density gate and
	// falls back to a full build (still byte-identical, just not cheap).
	byDay := make([][]shoal.ClickEvent, gen.Days)
	for i, ev := range corpus.Clicks {
		if i%50 == 0 { // churning tail: one day each
			ev.Day = int32(i/50) % int32(gen.Days)
			byDay[ev.Day] = append(byDay[ev.Day], ev)
			continue
		}
		for d := int32(0); d < int32(gen.Days); d++ { // recurring head
			ev.Day = d
			byDay[d] = append(byDay[d], ev)
		}
	}

	cfg := shoal.DefaultConfig()
	cfg.WindowDays = 7
	cfg.Word2Vec.Epochs = 2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3, 0.5}
	cfg.Incremental = true
	pipeline, err := shoal.NewDailyPipeline(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d days of clicks through a %d-day window (incremental rebuilds)\n\n", gen.Days, cfg.WindowDays)
	fmt.Printf("%-5s %-16s %-8s %-10s %s\n", "day", "window-queries", "topics", "stability", "delta (dirty-rows/seeded)")
	var prev *shoal.DailyBuild
	for day := 0; day < gen.Days; day++ {
		if err := pipeline.IngestDay(byDay[day]); err != nil {
			log.Fatal(err)
		}
		if day < cfg.WindowDays-1 {
			continue // wait until the window is full
		}
		build, err := pipeline.Rebuild()
		if err != nil {
			log.Fatal(err)
		}
		stability := "   -"
		if prev != nil {
			s, err := shoal.BuildStability(prev, build)
			if err != nil {
				log.Fatal(err)
			}
			stability = fmt.Sprintf("%.3f", s)
		}
		queries, _, _ := pipeline.WindowStats()
		delta := "-"
		if d := build.Delta; d != nil {
			if d.DenseFallback {
				delta = fmt.Sprintf("%d/%d (dense fallback)", d.DirtyRows, d.SeededRows)
			} else {
				delta = fmt.Sprintf("%d/%d", d.DirtyRows, d.SeededRows)
			}
		}
		fmt.Printf("%-5d %-16d %-8d %-10s %s\n", day, queries, len(build.Taxonomy.Topics), stability, delta)
		prev = build
	}
	fmt.Println("\nstability = fraction of root-topic item pairs preserved by the next build")
}
