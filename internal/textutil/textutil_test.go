package textutil

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Beach Dress", []string{"beach", "dress"}},
		{"sunblock SPF-50!", []string{"sunblock", "spf", "50"}},
		{"  ", nil},
		{"", nil},
		{"men's wear", []string{"men", "s", "wear"}},
		{"防晒霜 spf50", []string{"防", "晒", "霜", "spf50"}},
		{"trip-to-the-beach", []string{"trip", "to", "the", "beach"}},
	}
	for _, tc := range cases {
		got := Tokenize(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestTokenizeLowercases(t *testing.T) {
	got := Tokenize("BEACH")
	if len(got) != 1 || got[0] != "beach" {
		t.Fatalf("Tokenize(BEACH) = %v, want [beach]", got)
	}
}

func TestTokenizeFiltered(t *testing.T) {
	got := TokenizeFiltered("trip to the beach")
	want := []string{"trip", "beach"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TokenizeFiltered = %v, want %v", got, want)
	}
}

func TestTokenizeFilteredAllStopwords(t *testing.T) {
	// A query made entirely of stopwords must not be emptied.
	got := TokenizeFiltered("for the")
	want := []string{"for", "the"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TokenizeFiltered(all stopwords) = %v, want %v", got, want)
	}
}

func TestStopword(t *testing.T) {
	if !Stopword("the") {
		t.Error("Stopword(the) = false, want true")
	}
	if Stopword("beach") {
		t.Error("Stopword(beach) = true, want false")
	}
}

// Property: every token produced by Tokenize is non-empty and lowercase
// (re-tokenizing a token yields itself).
func TestTokenizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			rt := Tokenize(tok)
			if len(rt) != 1 || rt[0] != tok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVocabAddAndLookup(t *testing.T) {
	v := NewVocab()
	a := v.Add("beach")
	b := v.Add("dress")
	a2 := v.Add("beach")
	if a != a2 {
		t.Fatalf("Add(beach) twice gave ids %d and %d", a, a2)
	}
	if a == b {
		t.Fatal("distinct words got the same id")
	}
	if v.Size() != 2 {
		t.Fatalf("Size() = %d, want 2", v.Size())
	}
	if v.Total() != 3 {
		t.Fatalf("Total() = %d, want 3", v.Total())
	}
	if v.Count(a) != 2 {
		t.Fatalf("Count(beach) = %d, want 2", v.Count(a))
	}
	if got := v.Word(a); got != "beach" {
		t.Fatalf("Word(%d) = %q, want beach", a, got)
	}
	if id, ok := v.ID("dress"); !ok || id != b {
		t.Fatalf("ID(dress) = %d,%v want %d,true", id, ok, b)
	}
	if _, ok := v.ID("unknown"); ok {
		t.Fatal("ID(unknown) reported ok")
	}
}

func TestVocabAddAll(t *testing.T) {
	v := NewVocab()
	ids := v.AddAll([]string{"a", "b", "a"})
	if len(ids) != 3 || ids[0] != ids[2] || ids[0] == ids[1] {
		t.Fatalf("AddAll ids = %v", ids)
	}
}

func TestVocabTopK(t *testing.T) {
	v := NewVocab()
	for i := 0; i < 3; i++ {
		v.Add("beach")
	}
	for i := 0; i < 2; i++ {
		v.Add("dress")
	}
	v.Add("alpenstock")
	v.Add("backpack")
	got := v.TopK(3)
	want := []string{"beach", "dress", "alpenstock"} // tie alpenstock<backpack
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopK(3) = %v, want %v", got, want)
	}
	if n := len(v.TopK(100)); n != 4 {
		t.Fatalf("TopK(100) returned %d words, want 4", n)
	}
}

func TestVocabWordPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Word(-1) did not panic")
		}
	}()
	NewVocab().Word(-1)
}

func TestVocabCountOutOfRange(t *testing.T) {
	if got := NewVocab().Count(5); got != 0 {
		t.Fatalf("Count(5) on empty vocab = %d, want 0", got)
	}
}
