// Package eval measures clustering quality against the synthetic
// generator's ground-truth scenarios.
//
// The paper evaluated item-topic placement by having domain experts sample
// 1000 topics, inspect 100 random items under each, and judge whether the
// item belongs — reporting 98% precision (§3). With ground-truth labels we
// can run the same protocol mechanically: an item "belongs" to a topic when
// its scenario matches the topic's majority scenario. The package also
// provides normalized mutual information and purity for the α-sweep
// ablation (E6).
package eval

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"shoal/internal/model"
	"shoal/internal/taxonomy"
)

// PrecisionConfig mirrors the paper's sampling protocol.
type PrecisionConfig struct {
	// SampleTopics is the number of topics sampled (paper: 1000). 0
	// means all topics.
	SampleTopics int
	// ItemsPerTopic is the number of items sampled per topic (paper:
	// 100). 0 means all items.
	ItemsPerTopic int
	// MinTopicItems skips topics with fewer labeled items than this
	// (tiny topics have no meaningful majority).
	MinTopicItems int
	// RootTopicsOnly evaluates root topics (the conceptual shopping
	// scenarios) rather than the deepest topics.
	RootTopicsOnly bool
	// Seed drives sampling.
	Seed uint64
}

// DefaultPrecisionConfig is the paper's 1000×100 protocol.
func DefaultPrecisionConfig() PrecisionConfig {
	return PrecisionConfig{SampleTopics: 1000, ItemsPerTopic: 100, MinTopicItems: 3, RootTopicsOnly: true, Seed: 1}
}

// PrecisionResult is the outcome of the sampling evaluation.
type PrecisionResult struct {
	// Precision is correct/judged.
	Precision float64
	// TopicsEvaluated is the number of sampled topics.
	TopicsEvaluated int
	// ItemsJudged is the number of item judgments.
	ItemsJudged int
}

// Precision runs the sampling protocol: for each sampled topic, the
// majority ground-truth scenario is the topic's intended meaning, and a
// sampled item is correct when its scenario matches.
func Precision(tx *taxonomy.Taxonomy, corpus *model.Corpus, cfg PrecisionConfig) (*PrecisionResult, error) {
	if cfg.SampleTopics < 0 || cfg.ItemsPerTopic < 0 {
		return nil, fmt.Errorf("eval: negative sample sizes")
	}
	var topics []model.TopicID
	if cfg.RootTopicsOnly {
		topics = tx.Roots()
	} else {
		for i := range tx.Topics {
			if len(tx.Topics[i].Children) == 0 {
				topics = append(topics, tx.Topics[i].ID)
			}
		}
	}
	if len(topics) == 0 {
		return nil, fmt.Errorf("eval: taxonomy has no topics to evaluate")
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xE7A1))
	if cfg.SampleTopics > 0 && cfg.SampleTopics < len(topics) {
		rng.Shuffle(len(topics), func(i, j int) { topics[i], topics[j] = topics[j], topics[i] })
		topics = topics[:cfg.SampleTopics]
		sort.Slice(topics, func(i, j int) bool { return topics[i] < topics[j] })
	}

	res := &PrecisionResult{}
	correct := 0
	for _, tid := range topics {
		t := &tx.Topics[tid]
		labeled := make([]model.ItemID, 0, len(t.Items))
		counts := make(map[model.ScenarioID]int)
		for _, it := range t.Items {
			s := corpus.Items[it].Scenario
			if s == model.NoScenario {
				continue
			}
			labeled = append(labeled, it)
			counts[s]++
		}
		if len(labeled) < cfg.MinTopicItems {
			continue
		}
		majority := majorityLabel(counts)
		sample := labeled
		if cfg.ItemsPerTopic > 0 && cfg.ItemsPerTopic < len(labeled) {
			rng.Shuffle(len(labeled), func(i, j int) { labeled[i], labeled[j] = labeled[j], labeled[i] })
			sample = labeled[:cfg.ItemsPerTopic]
		}
		for _, it := range sample {
			res.ItemsJudged++
			if corpus.Items[it].Scenario == majority {
				correct++
			}
		}
		res.TopicsEvaluated++
	}
	if res.ItemsJudged == 0 {
		return nil, fmt.Errorf("eval: no labeled items judged")
	}
	res.Precision = float64(correct) / float64(res.ItemsJudged)
	return res, nil
}

func majorityLabel(counts map[model.ScenarioID]int) model.ScenarioID {
	labels := make([]model.ScenarioID, 0, len(counts))
	for s := range counts {
		labels = append(labels, s)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	best, bestN := model.NoScenario, -1
	for _, s := range labels {
		if counts[s] > bestN {
			best, bestN = s, counts[s]
		}
	}
	return best
}

// Partition pairs predicted cluster labels with ground-truth labels for
// the agreement metrics below. Items without ground truth are excluded by
// the constructors.
type Partition struct {
	pred  []int
	truth []int
}

// TopicPartition builds a Partition from item→root-topic placement against
// item scenarios, excluding unassigned and unlabeled items.
func TopicPartition(tx *taxonomy.Taxonomy, corpus *model.Corpus) (*Partition, error) {
	p := &Partition{}
	for it := range corpus.Items {
		s := corpus.Items[it].Scenario
		tid := tx.ItemTopic[it]
		if s == model.NoScenario || tid == taxonomy.NoTopic {
			continue
		}
		root, err := tx.RootOf(tid)
		if err != nil {
			return nil, err
		}
		p.pred = append(p.pred, int(root))
		p.truth = append(p.truth, int(s))
	}
	if len(p.pred) == 0 {
		return nil, fmt.Errorf("eval: no overlapping labeled items")
	}
	return p, nil
}

// LabelsPartition builds a Partition from parallel label slices (used for
// graph-level evaluation where predictions are per-entity labels).
func LabelsPartition(pred []int32, truth []model.ScenarioID) (*Partition, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("eval: pred length %d != truth length %d", len(pred), len(truth))
	}
	p := &Partition{}
	for i := range pred {
		if truth[i] == model.NoScenario {
			continue
		}
		p.pred = append(p.pred, int(pred[i]))
		p.truth = append(p.truth, int(truth[i]))
	}
	if len(p.pred) == 0 {
		return nil, fmt.Errorf("eval: no labeled points")
	}
	return p, nil
}

// N returns the number of labeled points.
func (p *Partition) N() int { return len(p.pred) }

// NMI returns normalized mutual information (arithmetic-mean
// normalization) between prediction and truth, in [0,1].
func (p *Partition) NMI() float64 {
	n := float64(len(p.pred))
	joint := make(map[[2]int]float64)
	pc := make(map[int]float64)
	tc := make(map[int]float64)
	for i := range p.pred {
		joint[[2]int{p.pred[i], p.truth[i]}]++
		pc[p.pred[i]]++
		tc[p.truth[i]]++
	}
	var mi float64
	for k, nij := range joint {
		pij := nij / n
		mi += pij * math.Log(pij/((pc[k[0]]/n)*(tc[k[1]]/n)))
	}
	hp := entropy(pc, n)
	ht := entropy(tc, n)
	if hp == 0 && ht == 0 {
		return 1 // both partitions trivial and identical
	}
	den := (hp + ht) / 2
	if den == 0 {
		return 0
	}
	v := mi / den
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Purity returns the fraction of points whose cluster's majority truth
// label matches their own.
func (p *Partition) Purity() float64 {
	byCluster := make(map[int]map[int]int)
	for i := range p.pred {
		if byCluster[p.pred[i]] == nil {
			byCluster[p.pred[i]] = make(map[int]int)
		}
		byCluster[p.pred[i]][p.truth[i]]++
	}
	var correct int
	for _, counts := range byCluster {
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(p.pred))
}

func entropy(counts map[int]float64, n float64) float64 {
	var h float64
	for _, c := range counts {
		p := c / n
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}
