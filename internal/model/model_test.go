package model

import (
	"strings"
	"testing"
)

func tinyCorpus() *Corpus {
	return &Corpus{
		Items: []Item{
			{ID: 0, Title: "beach dress", Category: 1, PriceCents: 1999},
			{ID: 1, Title: "sunblock spf50", Category: 2, PriceCents: 899},
		},
		Queries: []Query{
			{ID: 0, Text: "beach dress"},
			{ID: 1, Text: "trip to the beach"},
		},
		Categories: []Category{
			{ID: 0, Name: "Ladies' wear", Parent: RootCategory},
			{ID: 1, Name: "Dress", Parent: 0},
			{ID: 2, Name: "Sunblock", Parent: RootCategory},
		},
		Clicks: []ClickEvent{
			{Query: 0, Item: 0, Day: 0, Count: 3},
			{Query: 1, Item: 1, Day: 1, Count: 1},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := tinyCorpus().Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateNil(t *testing.T) {
	var c *Corpus
	if err := c.Validate(); err == nil {
		t.Fatal("Validate() on nil corpus = nil, want error")
	}
}

func TestValidateDetectsSparseItemIDs(t *testing.T) {
	c := tinyCorpus()
	c.Items[1].ID = 7
	err := c.Validate()
	if err == nil || !strings.Contains(err.Error(), "dense") {
		t.Fatalf("Validate() = %v, want dense-ID error", err)
	}
}

func TestValidateDetectsUnknownCategory(t *testing.T) {
	c := tinyCorpus()
	c.Items[0].Category = 99
	if err := c.Validate(); err == nil {
		t.Fatal("Validate() = nil, want unknown-category error")
	}
}

func TestValidateDetectsSelfParent(t *testing.T) {
	c := tinyCorpus()
	c.Categories[2].Parent = 2
	if err := c.Validate(); err == nil {
		t.Fatal("Validate() = nil, want self-parent error")
	}
}

func TestValidateDetectsBadClicks(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Corpus)
	}{
		{"unknown query", func(c *Corpus) { c.Clicks[0].Query = 55 }},
		{"unknown item", func(c *Corpus) { c.Clicks[0].Item = 55 }},
		{"zero count", func(c *Corpus) { c.Clicks[0].Count = 0 }},
		{"negative day", func(c *Corpus) { c.Clicks[0].Day = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tinyCorpus()
			tc.mutate(c)
			if err := c.Validate(); err == nil {
				t.Fatalf("Validate() = nil, want error for %s", tc.name)
			}
		})
	}
}

func TestStats(t *testing.T) {
	s := tinyCorpus().Stats()
	want := Stats{Items: 2, Queries: 2, Categories: 3, Clicks: 2, ClickMass: 4}
	if s != want {
		t.Fatalf("Stats() = %+v, want %+v", s, want)
	}
	if !strings.Contains(s.String(), "items=2") {
		t.Fatalf("Stats.String() = %q, want it to mention items=2", s)
	}
}

func TestCategoryPath(t *testing.T) {
	c := tinyCorpus()
	got, err := c.CategoryPath(1)
	if err != nil {
		t.Fatalf("CategoryPath(1) error: %v", err)
	}
	if len(got) != 2 || got[0] != "Ladies' wear" || got[1] != "Dress" {
		t.Fatalf("CategoryPath(1) = %v, want [Ladies' wear Dress]", got)
	}
}

func TestCategoryPathCycle(t *testing.T) {
	c := tinyCorpus()
	c.Categories[0].Parent = 1 // 0 -> 1 -> 0 cycle
	if _, err := c.CategoryPath(1); err == nil {
		t.Fatal("CategoryPath on cyclic parents = nil error, want cycle error")
	}
}

func TestCategoryPathUnknown(t *testing.T) {
	c := tinyCorpus()
	if _, err := c.CategoryPath(42); err == nil {
		t.Fatal("CategoryPath(42) = nil error, want unknown-category error")
	}
}
