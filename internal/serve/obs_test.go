package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"shoal/internal/obs"
)

// newInstrumentedServer returns both the server and its handler so tests
// can inspect the metrics behind the HTTP surface.
func newInstrumentedServer(t *testing.T) (*httptest.Server, *Handler) {
	t.Helper()
	h, err := NewHandler(getBuild(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, h
}

// TestErrorPathsCounted drives every handler error branch and asserts
// both the status code and that the response landed in the right route's
// status-class counters — including mux-answered 404/405s, which no
// handler ever sees.
func TestErrorPathsCounted(t *testing.T) {
	srv, h := newInstrumentedServer(t)

	cases := []struct {
		name   string
		method string
		path   string
		status int
		route  string // route label the response must be counted under
		class  string
	}{
		{"missing q", "GET", "/api/search", 400, "/api/search", "4xx"},
		{"k zero", "GET", "/api/search?q=x&k=0", 400, "/api/search", "4xx"},
		{"k too large", "GET", "/api/search?q=x&k=101", 400, "/api/search", "4xx"},
		{"k not a number", "GET", "/api/search?q=x&k=boom", 400, "/api/search", "4xx"},
		{"topic id not a number", "GET", "/api/topics/boom", 400, "/api/topics/{id}", "4xx"},
		{"unknown topic", "GET", "/api/topics/99999", 404, "/api/topics/{id}", "4xx"},
		{"unknown filter category", "GET", "/api/topics/0/items?category=99999", 400, "/api/topics/{id}/items", "4xx"},
		{"unknown related category", "GET", "/api/categories/99999/related", 404, "/api/categories/{id}/related", "4xx"},
		{"wrong method", "POST", "/api/search?q=x", 405, "unmatched", "4xx"},
		{"unknown path", "GET", "/api/nope", 404, "unmatched", "4xx"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := classCount(h, tc.route, tc.class)
			req, err := http.NewRequest(tc.method, srv.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
			}
			if after := classCount(h, tc.route, tc.class); after != before+1 {
				t.Fatalf("route %q class %s count went %d -> %d, want +1", tc.route, tc.class, before, after)
			}
		})
	}
}

// classCount reads one route's status-class counter from the summary.
func classCount(h *Handler, route, class string) uint64 {
	for _, r := range h.metrics.Summary().Routes {
		if r.Route == route {
			return r.ByClass[class]
		}
	}
	return 0
}

// TestMetricsEndpoint checks /metrics speaks the Prometheus text format
// and carries the request telemetry plus the route's own scrape.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newInstrumentedServer(t)
	if code := getJSON(t, srv.URL+"/api/search?q=beach+dress", nil); code != http.StatusOK {
		t.Fatalf("search status = %d", code)
	}
	// First scrape makes the request counters visible; it is observed
	// only after its response is written, so a second scrape sees it.
	for range 2 {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type = %q", ct)
		}
		text := string(body)
		for _, want := range []string{
			"# TYPE shoal_http_request_duration_seconds histogram",
			"# TYPE shoal_http_requests_total counter",
			`shoal_http_requests_total{route="/api/search"} 1`,
			`shoal_http_request_duration_seconds_count{route="/api/search"} 1`,
			"shoal_http_in_flight 1", // the scrape itself is in flight
		} {
			if !strings.Contains(text, want+"\n") {
				t.Fatalf("missing %q in metrics output:\n%s", want, text)
			}
		}
	}
}

// TestTraceEndpoint checks /api/trace serves the current build's trace
// as parseable Chrome trace-event JSON covering the pipeline stages.
func TestTraceEndpoint(t *testing.T) {
	srv, _ := newInstrumentedServer(t)
	resp, err := http.Get(srv.URL + "/api/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d: %s", resp.StatusCode, body)
	}
	var f struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range f.TraceEvents {
		names[ev.Name] = true
	}
	for _, st := range getBuild(t).StageTimings {
		if !names[st.Stage] {
			t.Fatalf("trace missing stage span %q", st.Stage)
		}
	}
}

// TestStatsHTTPSection checks the serving telemetry lands in /api/stats:
// per-route latency digests, the resolved build configuration, and the
// bsp-enabled marker.
func TestStatsHTTPSection(t *testing.T) {
	srv, _ := newInstrumentedServer(t)
	for i := 0; i < 3; i++ {
		if code := getJSON(t, srv.URL+"/api/search?q=beach+dress", nil); code != http.StatusOK {
			t.Fatalf("search status = %d", code)
		}
	}
	var stats Stats
	if code := getJSON(t, srv.URL+"/api/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status = %d", code)
	}
	if stats.Workers <= 0 {
		t.Fatalf("workers = %d, want > 0", stats.Workers)
	}
	if stats.FrontierDensity <= 0 {
		t.Fatalf("frontierDensity = %f, want > 0", stats.FrontierDensity)
	}
	var search *obs.RouteSummary
	for i := range stats.HTTP.Routes {
		if stats.HTTP.Routes[i].Route == "/api/search" {
			search = &stats.HTTP.Routes[i]
		}
	}
	if search == nil {
		t.Fatalf("no /api/search digest in %+v", stats.HTTP.Routes)
	}
	if search.Requests != 3 || search.ByClass["2xx"] != 3 {
		t.Fatalf("search digest wrong: %+v", search)
	}
	if search.P50Ms <= 0 || search.P99Ms < search.P50Ms {
		t.Fatalf("implausible latency quantiles: %+v", search)
	}
}

// TestMetricsUnderSwap hammers the instrumented handler from several
// goroutines while builds are repeatedly hot-swapped (run with -race).
// Afterwards every request must be accounted exactly once — histogram
// totals equal request counters equal requests actually served — and
// the generation gauge must have settled on the final swap count.
func TestMetricsUnderSwap(t *testing.T) {
	srv, h := newInstrumentedServer(t)
	b := getBuild(t)

	const workers = 4
	var served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	urls := []string{
		srv.URL + "/api/search?q=beach+dress",
		srv.URL + "/metrics",
		srv.URL + "/api/stats",
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(urls[(w+i)%len(urls)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				served.Add(1)
			}
		}(w)
	}
	for s := 0; s < 50; s++ {
		if err := h.Swap(b); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// One quiet request so the generation gauge observes the final swap
	// count; the scrape below is not included in its own output (requests
	// are observed after the response is written).
	if code := getJSON(t, srv.URL+"/api/search?q=beach+dress", nil); code != http.StatusOK {
		t.Fatalf("post-swap search status = %d", code)
	}
	want := served.Load() + 1

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	requests := map[string]int64{}
	histCounts := map[string]int64{}
	var total int64
	for _, line := range strings.Split(string(body), "\n") {
		var v int64
		switch {
		case strings.HasPrefix(line, "shoal_http_requests_total{"):
			if _, err := fmt.Sscanf(afterBrace(line), "%d", &v); err != nil {
				t.Fatalf("unparseable line %q", line)
			}
			requests[routeLabel(line)] = v
			total += v
		case strings.HasPrefix(line, "shoal_http_request_duration_seconds_count{"):
			if _, err := fmt.Sscanf(afterBrace(line), "%d", &v); err != nil {
				t.Fatalf("unparseable line %q", line)
			}
			histCounts[routeLabel(line)] = v
		}
	}
	if total != want {
		t.Fatalf("counted %d requests across routes, served %d", total, want)
	}
	for route, n := range requests {
		if histCounts[route] != n {
			t.Fatalf("route %q: histogram count %d != request counter %d", route, histCounts[route], n)
		}
	}

	sum := h.metrics.Summary()
	if sum.Generation != h.Swaps() {
		t.Fatalf("generation gauge = %d, want final swap count %d", sum.Generation, h.Swaps())
	}
	if sum.InFlight != 0 {
		t.Fatalf("in-flight = %d at rest, want 0", sum.InFlight)
	}
}

// routeLabel extracts the route="..." label value from a sample line.
func routeLabel(line string) string {
	_, rest, ok := strings.Cut(line, `route="`)
	if !ok {
		return ""
	}
	route, _, _ := strings.Cut(rest, `"`)
	return route
}

// afterBrace returns the sample value text following the label set.
func afterBrace(line string) string {
	_, rest, _ := strings.Cut(line, "} ")
	return rest
}
