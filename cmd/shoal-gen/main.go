// Command shoal-gen emits a synthetic Taobao-like corpus with ground-truth
// scenario labels (the stand-in for the paper's closed click logs).
//
// Usage:
//
//	shoal-gen -out corpus.json.gz -scenarios 30 -items 200 -seed 1
//	shoal-gen -curated -out beach.json     # the Fig. 1(b) mini corpus
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"shoal/internal/model"
	"shoal/internal/store"
	"shoal/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoal-gen: ")

	var (
		out       = flag.String("out", "corpus.json.gz", "output path (.json, .json.gz, .gob, .gob.gz)")
		curated   = flag.Bool("curated", false, "emit the curated Fig. 1(b) mini corpus instead of generating")
		seed      = flag.Uint64("seed", 1, "generator seed")
		scenarios = flag.Int("scenarios", 30, "number of ground-truth shopping scenarios")
		items     = flag.Int("items", 200, "items per scenario")
		queries   = flag.Int("queries", 40, "queries per scenario")
		noise     = flag.Int("noise", 150, "unlabeled noise items")
		days      = flag.Int("days", 7, "click-log day span")
	)
	flag.Parse()

	var corpus *model.Corpus
	if *curated {
		corpus = synth.Curated()
	} else {
		cfg := synth.DefaultConfig()
		cfg.Seed = *seed
		cfg.Scenarios = *scenarios
		cfg.ItemsPerScenario = *items
		cfg.QueriesPerScenario = *queries
		cfg.NoiseItems = *noise
		cfg.Days = *days
		var err error
		corpus, err = synth.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := store.SaveCorpus(corpus, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stdout, "wrote %s: %s\n", *out, corpus.Stats())
}
