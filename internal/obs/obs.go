// Package obs is the observability subsystem: an allocation-free metrics
// registry (counters, gauges, fixed-bucket latency histograms), HTTP
// serving instrumentation, a runtime sampler, and a hierarchical span
// recorder for build traces. It has no dependencies outside the standard
// library and no dependencies on the rest of the repo, so every layer —
// serving, pipeline, clustering, the BSP engine — can report into it.
//
// Three pillars:
//
//   - Metrics core: Registry owns named Counter/Gauge/Histogram series.
//     Updates on hot paths (Counter.Inc, Gauge.Set, Histogram.Observe)
//     are lock-free atomics and allocate nothing (locked by
//     TestSteadyStateAllocFree); registration and snapshotting are the
//     slow paths and may allocate. Histograms use fixed log-spaced
//     bounds, and their snapshots merge and interpolate p50/p90/p99.
//
//   - Serving instrumentation: HTTPMetrics wraps an http.ServeMux with
//     per-route latency histograms, status-class counters, an in-flight
//     gauge and the snapshot generation at observation time, exposed as
//     Prometheus text format (WritePrometheus) and as a JSON summary
//     (Summary). RuntimeSampler feeds heap / GC-pause / goroutine
//     gauges. PprofMux bundles the net/http/pprof handlers for a side
//     listener.
//
//   - Build tracing: Trace records a tree of Spans (one per pipeline
//     stage, per clustering merge round, per BSP engine run) and exports
//     Chrome trace-event JSON loadable in chrome://tracing / Perfetto.
//     Span methods are nil-safe, so instrumented code pays nothing when
//     no trace is installed.
package obs

import (
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are
// lock-free and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an integer-valued metric that can go up and down. All
// methods are lock-free and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed upper-bound buckets (the
// last bucket is implicit +Inf). Observe is lock-free and
// allocation-free; concurrent observers never block each other.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v: log-spaced bounds keep
	// this a handful of compares, with no allocation.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sum.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Snapshot copies the histogram's current state. The copy is not
// atomic across buckets — observations racing the copy may be split —
// but every completed Observe before the call is included.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds, // immutable after registration; shared
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram, mergeable with
// snapshots sharing the same bounds and queryable for quantiles.
type HistSnapshot struct {
	Bounds []float64 // upper bounds; Counts has one extra +Inf bucket
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Merge adds another snapshot's observations into s. The two must have
// identical bounds (merging mismatched layouts silently corrupts
// quantiles, so it panics instead).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	if len(s.Bounds) != len(o.Bounds) {
		panic("obs: merging histogram snapshots with different bucket layouts")
	}
	for i, b := range s.Bounds {
		if b != o.Bounds[i] {
			panic("obs: merging histogram snapshots with different bucket bounds")
		}
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Quantile returns the q-th quantile (q in [0,1]) by locating the
// bucket holding the target rank and interpolating linearly inside it —
// exact to within one bucket's resolution, which the log-spaced bounds
// keep proportional to the value. Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		if i == len(s.Bounds) {
			// +Inf bucket: no upper bound to interpolate toward; the
			// highest finite bound is the best defensible answer.
			return s.Bounds[len(s.Bounds)-1]
		}
		upper := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lower + (upper-lower)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// ExpBuckets returns n log-spaced upper bounds starting at start and
// growing by factor — the standard latency-histogram layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default request-latency layout: 28 log-spaced
// bounds from 50µs to ~28s (factor 1.6), in seconds. Sub-millisecond
// cache hits and multi-second rebuild stalls land in distinct buckets.
func LatencyBuckets() []float64 { return ExpBuckets(50e-6, 1.6, 28) }

// Registry owns named metric series. Registration is locked and may
// allocate; the returned metric handles are updated lock-free. Series
// are identified by (name, labels): registering the same pair twice
// returns the same handle, so idempotent wiring is safe.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byKey    map[string]any // "name\xfflabels" -> *Counter/*Gauge/*Histogram
}

// family groups series sharing a metric name, emitted under one # TYPE
// header in registration order.
type family struct {
	name string
	typ  string // "counter" | "gauge" | "histogram"
	help string
	series []*series
}

type series struct {
	labels string // `k="v",k2="v2"` form, no braces; may be empty
	metric any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]any)}
}

func (r *Registry) register(name, labels, typ, help string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + "\xff" + labels
	if m, ok := r.byKey[key]; ok {
		return m
	}
	var fam *family
	for _, f := range r.families {
		if f.name == name {
			if f.typ != typ {
				panic("obs: metric " + name + " registered as both " + f.typ + " and " + typ)
			}
			fam = f
			break
		}
	}
	if fam == nil {
		fam = &family{name: name, typ: typ, help: help}
		r.families = append(r.families, fam)
	}
	m := mk()
	// All series of one histogram family must share a bucket layout, or
	// their snapshots would not merge and the summed _bucket lines would
	// lie. Checked against the family's first series.
	if h, ok := m.(*Histogram); ok && len(fam.series) > 0 {
		first := fam.series[0].metric.(*Histogram)
		if !slices.Equal(first.bounds, h.bounds) {
			panic("obs: histogram " + name + " registered with a different bucket layout")
		}
	}
	fam.series = append(fam.series, &series{labels: labels, metric: m})
	r.byKey[key] = m
	return m
}

// Counter registers (or returns the existing) counter series. labels is
// the label set in `k="v",k2="v2"` form, or empty.
func (r *Registry) Counter(name, labels, help string) *Counter {
	return r.register(name, labels, "counter", help, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	return r.register(name, labels, "gauge", help, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or returns the existing) histogram series with
// the given upper bounds (ascending; +Inf is implicit). Series of one
// family must share a layout for their snapshots to merge.
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obs: histogram " + name + " bounds must ascend")
	}
	return r.register(name, labels, "histogram", help, func() any {
		return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}).(*Histogram)
}
