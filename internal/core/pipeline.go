// Package core orchestrates the SHOAL framework end to end (paper §2):
// click logs → item entity graph → Parallel HAC → hierarchical topics →
// topic descriptions → category correlations. Each stage is an internal
// package; this package owns the stage graph, configuration and timing.
//
// Stages are declared as a dependency graph (see pipelineStages) and
// executed by the Engine: independent stages — e.g. word2vec next to the
// click-graph and entity formation — run concurrently, while every
// read-after-write relation is an explicit edge, so the concurrent
// schedule produces output identical to the sequential one.
//
// DailyPipeline maintains the production sliding-window operation, and
// Config.Incremental (shoal-build/shoal-serve -incremental) switches its
// rebuilds to the delta-driven path: the window's changed items are
// drained each rebuild, the entity graph is patched rather than rebuilt,
// clustering warm-starts from the previous build's diffusion memo, and
// Build.Delta reports what was actually recomputed — with output
// byte-identical to a from-scratch rebuild of the same window.
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"shoal/internal/bipartite"
	"shoal/internal/bsp"
	"shoal/internal/catcorr"
	"shoal/internal/dendrogram"
	"shoal/internal/describe"
	"shoal/internal/entitygraph"
	"shoal/internal/model"
	"shoal/internal/obs"
	"shoal/internal/phac"
	"shoal/internal/shard"
	"shoal/internal/taxonomy"
	"shoal/internal/textutil"
	"shoal/internal/word2vec"
)

// Config bundles per-stage configuration.
type Config struct {
	// WindowDays is the click-log sliding window (paper: 7). <= 0 keeps
	// every click.
	WindowDays int
	// TrainEmbeddings enables the word2vec content signal. When false,
	// similarity is query-driven only (entitygraph handles the blend).
	TrainEmbeddings bool
	// Sequential forces stages to run one at a time in topological order
	// instead of concurrently. Output is identical either way; this is
	// the debugging / benchmark baseline.
	Sequential bool
	// Shards is the row-range shard count of the graph substrate: the
	// entity graph is emitted as that many edge-balanced CSR shards and
	// the partition-parallel clustering paths (diffusion, contracted
	// rebuild) schedule one worker per shard. 0 means GOMAXPROCS.
	// Results are byte-identical for every value; recorded in
	// /api/stats. Per-stage overrides (Graph.Shards, HAC.Shards) win
	// when set.
	Shards int
	// BSP routes clustering diffusion through the shard-native BSP
	// engine (internal/bsp) — the distributed execution model — instead
	// of the shared-memory scans. Output is byte-identical either way;
	// the engine profile is recorded in Build.BSPStats and /api/stats.
	// Equivalent to setting HAC.UseBSP.
	BSP      bool
	Word2Vec word2vec.Config
	Graph    entitygraph.Config
	// Incremental makes DailyPipeline.Rebuild reuse the previous build:
	// the entity graph is patched from the window's changed items
	// (entitygraph.BuildIncremental) and clustering warm-starts from the
	// previous build's diffusion memo (phac.ClusterWarm), recomputing
	// only what the slide touched. Output is byte-identical to a
	// from-scratch rebuild at every step (locked by the determinism
	// suite in incremental_test.go) — modulo embeddings, which are
	// trained once and reused; with TrainEmbeddings and Workers > 1 the
	// Hogwild trainer itself is not reproducible, so neither is the
	// from-scratch baseline. Per-rebuild savings are reported in
	// Build.Delta and /api/stats. Only DailyPipeline consults this knob;
	// one-shot Run ignores it.
	Incremental bool
	// HAC also carries the frontier-pruned diffusion knob
	// (HAC.FrontierDensity, surfaced as shoal-build/-serve -frontier):
	// clustering recomputes only changed diffusion frontiers when the
	// changed fraction stays under it, with byte-identical output for
	// every setting.
	HAC      phac.Config
	Taxonomy taxonomy.Config
	Describe describe.Config
	CatCorr  catcorr.Config
	// SearchDocTokenCap bounds tokens contributed per topic to the
	// search index.
	SearchDocTokenCap int
}

// DefaultConfig mirrors the paper's demonstration settings (α=0.7, r=2,
// 7-day window, correlation threshold 10).
func DefaultConfig() Config {
	return Config{
		WindowDays:        7,
		TrainEmbeddings:   true,
		Word2Vec:          word2vec.DefaultConfig(),
		Graph:             entitygraph.DefaultConfig(),
		HAC:               phac.DefaultConfig(),
		Taxonomy:          taxonomy.DefaultConfig(),
		Describe:          describe.DefaultConfig(),
		CatCorr:           catcorr.DefaultConfig(),
		SearchDocTokenCap: 256,
	}
}

// Build is the fully assembled SHOAL system for one corpus.
type Build struct {
	Corpus    *model.Corpus
	Clicks    *bipartite.Graph
	Entities  *entitygraph.EntitySet
	Graph     *shard.CSR
	QuerySets [][]model.QueryID
	// Shards is the shard count the graph substrate was actually built
	// with (Graph.NumShards() — per-stage overrides and tiny-graph
	// clamping included), recorded by the entity-graph stage.
	Shards int
	// Workers is the resolved clustering worker count (HAC.Workers
	// after defaulting), FrontierDensity the resolved frontier-pruning
	// density gate, and BSPEnabled whether clustering diffusion ran on
	// the BSP engine — the build configuration that explains the
	// numbers next to it in /api/stats and shoal-build -v.
	Workers         int
	FrontierDensity float64
	BSPEnabled      bool
	Embeddings      *word2vec.Model
	Dendrogram *dendrogram.Dendrogram
	Rounds     []phac.RoundStat
	// BSPStats is the aggregated BSP engine profile across clustering
	// rounds when the BSP path ran (Config.BSP / HAC.UseBSP); nil
	// otherwise. Carries the persistent-engine reuse counters
	// (RunsServed, Rebinds, PeakRetainedBytes) alongside the message
	// totals. Reported by /api/stats.
	BSPStats *bsp.Stats
	// Delta summarizes what an incremental rebuild actually recomputed;
	// nil on from-scratch builds. Reported by /api/stats.
	Delta        *DeltaStats
	Taxonomy     *taxonomy.Taxonomy
	Descriptions []describe.Description
	Correlations *catcorr.Graph
	Searcher     *taxonomy.Searcher
	// StageTimings records wall time per pipeline stage, in stage
	// declaration order.
	StageTimings []StageTiming
	// Trace is the build's hierarchical execution trace: one span per
	// pipeline stage, one per clustering merge round beneath the
	// parallel-hac stage, one per BSP engine run beneath each round.
	// Exported as Chrome trace-event JSON by shoal-build -trace and
	// GET /api/trace.
	Trace *obs.Trace
}

// StageTiming is one stage's wall-clock cost. Start is the offset from
// pipeline start, so overlapping stages are visible in the timings.
type StageTiming struct {
	Stage   string
	Start   time.Duration
	Elapsed time.Duration
}

// Run executes the full pipeline over the corpus, ingesting the corpus's
// click log into a fresh sliding-window graph.
func Run(corpus *model.Corpus, cfg Config) (*Build, error) {
	return RunContext(context.Background(), corpus, cfg)
}

// RunContext is Run with cancellation: canceling ctx aborts in-flight
// stages and returns the context error.
func RunContext(ctx context.Context, corpus *model.Corpus, cfg Config) (*Build, error) {
	return run(ctx, corpus, nil, cfg)
}

// RunWithClicks executes the pipeline over an externally maintained click
// graph (e.g. the daily sliding-window pipeline); corpus.Clicks is ignored.
func RunWithClicks(corpus *model.Corpus, clicks *bipartite.Graph, cfg Config) (*Build, error) {
	return RunWithClicksContext(context.Background(), corpus, clicks, cfg)
}

// RunWithClicksContext is RunWithClicks with cancellation.
func RunWithClicksContext(ctx context.Context, corpus *model.Corpus, clicks *bipartite.Graph, cfg Config) (*Build, error) {
	if clicks == nil {
		return nil, fmt.Errorf("core: nil click graph")
	}
	return run(ctx, corpus, clicks, cfg)
}

func run(ctx context.Context, corpus *model.Corpus, clicks *bipartite.Graph, cfg Config) (*Build, error) {
	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg = resolveConfig(cfg)
	density := cfg.HAC.FrontierDensity
	if density == 0 {
		density = phac.DefaultFrontierDensity
	}
	b := &Build{
		Corpus: corpus, Clicks: clicks,
		Workers:         cfg.HAC.Workers,
		FrontierDensity: density,
		BSPEnabled:      cfg.HAC.UseBSP,
		Trace:           obs.NewTrace("shoal-build"),
	}
	eng, err := NewEngine(pipelineStages(cfg, clicks != nil)...)
	if err != nil {
		return nil, err
	}
	maxConcurrent := 0 // full graph parallelism
	if cfg.Sequential {
		maxConcurrent = 1
	}
	timings, err := eng.Execute(ctx, b, maxConcurrent)
	if err != nil {
		return nil, err
	}
	b.StageTimings = timings
	return b, nil
}

// resolveConfig resolves the defaulted knobs once so every stage (and
// /api/stats) sees the same widths — shared by the from-scratch and
// incremental drivers, which must resolve identically for the cross-
// build caches to stay compatible.
func resolveConfig(cfg Config) Config {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.Graph.Shards <= 0 {
		cfg.Graph.Shards = cfg.Shards
	}
	if cfg.HAC.Shards <= 0 {
		cfg.HAC.Shards = cfg.Shards
	}
	if cfg.BSP {
		cfg.HAC.UseBSP = true
	}
	if cfg.HAC.Workers <= 0 {
		cfg.HAC.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg
}

// pipelineStages declares the SHOAL build graph. Dependency edges encode
// every read-after-write relation between stages:
//
//	click-graph ─┬─▶ entity-graph ─▶ parallel-hac ─▶ taxonomy ─┬─▶ describe ─▶ search-index
//	entities ────┤                                             └─▶ category-correlation
//	word2vec ────┘
//
// click-graph is omitted when the caller supplies an external click graph,
// and word2vec when embeddings are disabled.
func pipelineStages(cfg Config, externalClicks bool) []Stage {
	var stages []Stage
	graphDeps := []string{"entities"}

	if !externalClicks {
		stages = append(stages, StageFunc("click-graph", nil, func(ctx context.Context, b *Build) error {
			b.Clicks = bipartite.New(cfg.WindowDays)
			return b.Clicks.AddAll(b.Corpus.Clicks)
		}))
		graphDeps = append(graphDeps, "click-graph")
	}

	stages = append(stages, StageFunc("entities", nil, func(ctx context.Context, b *Build) error {
		es, err := entitygraph.BuildEntities(ctx, b.Corpus)
		b.Entities = es
		return err
	}))

	if cfg.TrainEmbeddings {
		stages = append(stages, StageFunc("word2vec", nil, func(ctx context.Context, b *Build) error {
			sentences := make([][]string, 0, len(b.Corpus.Items))
			for i := range b.Corpus.Items {
				sentences = append(sentences, textutil.Tokenize(b.Corpus.Items[i].Title))
			}
			m, err := word2vec.Train(ctx, sentences, cfg.Word2Vec)
			b.Embeddings = m
			return err
		}))
		graphDeps = append(graphDeps, "word2vec")
	}

	stages = append(stages,
		StageFunc("entity-graph", graphDeps, func(ctx context.Context, b *Build) error {
			res, err := entitygraph.Build(ctx, b.Entities, b.Clicks, b.Embeddings, cfg.Graph)
			if err != nil {
				return err
			}
			b.Graph = res.Graph
			b.QuerySets = res.QuerySets
			b.Shards = res.Graph.NumShards()
			return nil
		}),
		StageFunc("parallel-hac", []string{"entity-graph"}, func(ctx context.Context, b *Build) error {
			sizes := make([]int, len(b.Entities.Entities))
			for i := range sizes {
				sizes[i] = b.Entities.Entities[i].Size()
			}
			res, err := phac.Cluster(ctx, b.Graph, sizes, cfg.HAC)
			if err != nil {
				return err
			}
			b.Dendrogram = res.Dendrogram
			b.Rounds = res.Rounds
			b.BSPStats = res.BSP
			return nil
		}),
	)
	return append(stages, downstreamStages(cfg)...)
}

// downstreamStages declares the post-clustering half of the build graph
// — taxonomy assembly onward — shared verbatim by the from-scratch and
// incremental drivers (both publish their dendrogram under the
// "parallel-hac" stage name these depend on).
func downstreamStages(cfg Config) []Stage {
	return []Stage{
		StageFunc("taxonomy", []string{"parallel-hac"}, func(ctx context.Context, b *Build) error {
			tx, err := taxonomy.Build(ctx, b.Dendrogram, b.Entities, b.Corpus, cfg.Taxonomy)
			b.Taxonomy = tx
			return err
		}),
		// describe writes Topic.Description/DescQueries while
		// category-correlation reads only Topic.Categories, so the two can
		// share the taxonomy concurrently.
		StageFunc("describe", []string{"taxonomy"}, func(ctx context.Context, b *Build) error {
			descs, err := describe.Describe(ctx, b.Taxonomy, b.Corpus, b.Clicks, cfg.Describe)
			b.Descriptions = descs
			return err
		}),
		StageFunc("category-correlation", []string{"taxonomy"}, func(ctx context.Context, b *Build) error {
			g, err := catcorr.Mine(ctx, b.Taxonomy, cfg.CatCorr)
			b.Correlations = g
			return err
		}),
		StageFunc("search-index", []string{"describe"}, func(ctx context.Context, b *Build) error {
			if len(b.Taxonomy.Topics) == 0 {
				return nil
			}
			s, err := taxonomy.NewSearcher(ctx, b.Taxonomy, b.searchDocs(cfg.SearchDocTokenCap))
			b.Searcher = s
			return err
		}),
	}
}

// SearchDocs builds the per-topic search documents exactly as the
// search-index stage does — exported for callers that reconstruct a
// Searcher outside the pipeline (e.g. the bench fixture cache).
func (b *Build) SearchDocs(tokenCap int) [][]string { return b.searchDocs(tokenCap) }

// searchDocs builds the per-topic search documents: description queries,
// member query texts, category names, and member title tokens, each doc
// capped at tokenCap tokens.
func (b *Build) searchDocs(tokenCap int) [][]string {
	if tokenCap <= 0 {
		tokenCap = 256
	}
	docs := make([][]string, len(b.Taxonomy.Topics))
	for i := range b.Taxonomy.Topics {
		t := &b.Taxonomy.Topics[i]
		var doc []string
		for _, q := range t.DescQueries {
			if len(doc) >= tokenCap {
				break
			}
			doc = appendCapped(doc, tokenCap, textutil.TokenizeFiltered(q))
		}
		for _, c := range t.Categories {
			if len(doc) >= tokenCap {
				break
			}
			doc = appendCapped(doc, tokenCap, textutil.Tokenize(b.Corpus.Categories[c].Name))
		}
		for _, e := range t.Entities {
			if len(doc) >= tokenCap {
				break
			}
			for _, q := range b.QuerySets[e] {
				doc = appendCapped(doc, tokenCap, textutil.TokenizeFiltered(b.Corpus.Queries[q].Text))
				if len(doc) >= tokenCap {
					break
				}
			}
		}
		for _, it := range t.Items {
			if len(doc) >= tokenCap {
				break
			}
			doc = appendCapped(doc, tokenCap, textutil.Tokenize(b.Corpus.Items[it].Title))
		}
		docs[i] = doc
	}
	return docs
}

// appendCapped appends tokens to doc without ever letting it exceed limit.
func appendCapped(doc []string, limit int, tokens []string) []string {
	if room := limit - len(doc); room < len(tokens) {
		if room <= 0 {
			return doc
		}
		tokens = tokens[:room]
	}
	return append(doc, tokens...)
}
