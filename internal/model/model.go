// Package model defines the domain types shared by every SHOAL subsystem:
// items, queries, categories, click events and their identifiers.
//
// The types mirror the entities in the paper's query-item bipartite graph
// (Fig. 2): users submit Queries, Queries lead to clicks on Items, Items
// belong to ontology Categories, and SHOAL groups Items into Topics.
package model

import (
	"errors"
	"fmt"
)

// ItemID identifies a single item (a product listing).
type ItemID int32

// QueryID identifies a distinct normalized query string.
type QueryID int32

// CategoryID identifies a leaf category of the ontology-driven taxonomy.
type CategoryID int32

// EntityID identifies an item entity: a group of items with near-equivalent
// attribute labels and price (paper §2.1). Entities are the vertices of the
// item entity graph.
type EntityID int32

// TopicID identifies a topic node in the SHOAL hierarchical taxonomy.
type TopicID int32

// ScenarioID identifies a ground-truth shopping scenario in synthetic
// corpora. Real logs have no such labels; the synthetic generator emits them
// so that clustering quality is measurable (DESIGN.md §1.3).
type ScenarioID int32

// NoScenario marks an item with no ground-truth label (e.g. noise items).
const NoScenario ScenarioID = -1

// Item is a single product listing.
type Item struct {
	ID       ItemID
	Title    string
	Category CategoryID
	// PriceCents is the listing price in integer cents; entities group
	// items within a price band.
	PriceCents int64
	// Attrs are normalized attribute labels ("color=red"). Items with
	// equal categories, attribute sets and price bands form one entity.
	Attrs []string
	// Scenario is the generator's ground-truth label, NoScenario for
	// real-world corpora.
	Scenario ScenarioID
	// TitleAmbiguous marks synthetic items whose titles carry no
	// scenario-specific words (generic "hot sale" listings): such items
	// are only placeable through the query signal. Always false for
	// real-world corpora.
	TitleAmbiguous bool
}

// Query is a distinct normalized search query.
type Query struct {
	ID   QueryID
	Text string
	// Scenario is the generator's ground-truth intent, NoScenario for
	// real-world corpora.
	Scenario ScenarioID
}

// Category is a node of the ontology-driven taxonomy (Fig. 1(a)).
type Category struct {
	ID   CategoryID
	Name string
	// Parent is the parent category, or -1 for a root.
	Parent CategoryID
}

// RootCategory is the Parent value of ontology roots.
const RootCategory CategoryID = -1

// ClickEvent is one (query, item) click observation with its day-of-log
// timestamp. SHOAL consumes a sliding window of the last seven days (§3).
type ClickEvent struct {
	Query QueryID
	Item  ItemID
	// Day is the log day the click happened on (0 = oldest).
	Day int32
	// Count collapses repeated identical clicks.
	Count int32
}

// Corpus is the full input to the SHOAL pipeline: the catalog, the query
// dictionary and the click log. It is the in-memory equivalent of the
// paper's seven-day Taobao snapshot.
type Corpus struct {
	Items      []Item
	Queries    []Query
	Categories []Category
	Clicks     []ClickEvent
	// Scenarios names the ground-truth scenarios when the corpus is
	// synthetic; empty otherwise.
	Scenarios []string
}

// Validate checks referential integrity: every click refers to an existing
// query and item, every item to an existing category, and IDs are dense
// (Items[i].ID == i, and likewise for queries and categories). Dense IDs let
// downstream stages use slices instead of maps.
func (c *Corpus) Validate() error {
	if c == nil {
		return errors.New("model: nil corpus")
	}
	for i := range c.Items {
		if c.Items[i].ID != ItemID(i) {
			return fmt.Errorf("model: item at index %d has ID %d (IDs must be dense)", i, c.Items[i].ID)
		}
		cat := c.Items[i].Category
		if int(cat) < 0 || int(cat) >= len(c.Categories) {
			return fmt.Errorf("model: item %d references unknown category %d", i, cat)
		}
	}
	for i := range c.Queries {
		if c.Queries[i].ID != QueryID(i) {
			return fmt.Errorf("model: query at index %d has ID %d (IDs must be dense)", i, c.Queries[i].ID)
		}
	}
	for i := range c.Categories {
		if c.Categories[i].ID != CategoryID(i) {
			return fmt.Errorf("model: category at index %d has ID %d (IDs must be dense)", i, c.Categories[i].ID)
		}
		p := c.Categories[i].Parent
		if p != RootCategory && (int(p) < 0 || int(p) >= len(c.Categories)) {
			return fmt.Errorf("model: category %d references unknown parent %d", i, p)
		}
		if p == c.Categories[i].ID {
			return fmt.Errorf("model: category %d is its own parent", i)
		}
	}
	for i, ev := range c.Clicks {
		if int(ev.Query) < 0 || int(ev.Query) >= len(c.Queries) {
			return fmt.Errorf("model: click %d references unknown query %d", i, ev.Query)
		}
		if int(ev.Item) < 0 || int(ev.Item) >= len(c.Items) {
			return fmt.Errorf("model: click %d references unknown item %d", i, ev.Item)
		}
		if ev.Count <= 0 {
			return fmt.Errorf("model: click %d has non-positive count %d", i, ev.Count)
		}
		if ev.Day < 0 {
			return fmt.Errorf("model: click %d has negative day %d", i, ev.Day)
		}
	}
	return nil
}

// Stats summarizes corpus sizes for logging and reports.
type Stats struct {
	Items      int
	Queries    int
	Categories int
	Clicks     int
	ClickMass  int64 // sum of Count over all clicks
}

// Stats computes corpus size statistics.
func (c *Corpus) Stats() Stats {
	s := Stats{
		Items:      len(c.Items),
		Queries:    len(c.Queries),
		Categories: len(c.Categories),
		Clicks:     len(c.Clicks),
	}
	for _, ev := range c.Clicks {
		s.ClickMass += int64(ev.Count)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("items=%d queries=%d categories=%d clicks=%d mass=%d",
		s.Items, s.Queries, s.Categories, s.Clicks, s.ClickMass)
}

// CategoryPath returns the names from root to the given category, following
// Parent pointers. It returns an error on dangling or cyclic parents.
func (c *Corpus) CategoryPath(id CategoryID) ([]string, error) {
	var rev []string
	seen := make(map[CategoryID]bool)
	for id != RootCategory {
		if int(id) < 0 || int(id) >= len(c.Categories) {
			return nil, fmt.Errorf("model: unknown category %d in path", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("model: category parent cycle at %d", id)
		}
		seen[id] = true
		rev = append(rev, c.Categories[id].Name)
		id = c.Categories[id].Parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}
