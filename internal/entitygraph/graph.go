package entitygraph

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"shoal/internal/bipartite"
	"shoal/internal/model"
	"shoal/internal/shard"
	"shoal/internal/wgraph"
	"shoal/internal/word2vec"
)

// Config controls entity-graph construction.
type Config struct {
	// Alpha is the Eq. 3 blend weight of query-driven similarity; the
	// paper uses 0.7.
	Alpha float64
	// MinSimilarity filters out edges with blended similarity below this
	// value — the sparsification of §2.2 Challenge 1.
	MinSimilarity float64
	// TopK keeps at most K strongest edges per entity ("one item entity
	// should have only a few neighbor entities"). 0 disables the cap.
	TopK int
	// MaxQueryFanout skips queries associated with more than this many
	// entities during candidate generation; 0 disables the cap.
	MaxQueryFanout int
	// Workers parallelizes similarity computation; 0 means GOMAXPROCS.
	Workers int
	// Shards is the row-range shard count of the emitted CSR (the
	// partition-parallel unit downstream clustering schedules on); 0
	// means Workers.
	Shards int
}

// DefaultConfig mirrors the paper's demonstration settings.
func DefaultConfig() Config {
	return Config{
		Alpha:          0.7,
		MinSimilarity:  0.35,
		TopK:           10,
		MaxQueryFanout: 400,
		Workers:        0,
	}
}

func (c *Config) validate() error {
	if c.Alpha < 0 || c.Alpha > 1 {
		return fmt.Errorf("entitygraph: Alpha must be in [0,1], got %f", c.Alpha)
	}
	if c.MinSimilarity < 0 || c.MinSimilarity > 1 {
		return fmt.Errorf("entitygraph: MinSimilarity must be in [0,1], got %f", c.MinSimilarity)
	}
	if c.TopK < 0 || c.MaxQueryFanout < 0 {
		return fmt.Errorf("entitygraph: TopK and MaxQueryFanout must be non-negative")
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards <= 0 {
		c.Shards = c.Workers
	}
	return nil
}

// Result bundles the entity graph with the entity metadata it was built
// over. The wgraph node ids equal entity ids. The graph is emitted
// directly in sharded frozen CSR form — the build path's sorted pair
// arrays are its natural input and the row-range shards are filled
// concurrently — so downstream clustering never touches a map and
// partition-parallel consumers get their shard plan for free.
type Result struct {
	Set   *EntitySet
	Graph *shard.CSR
	// QuerySets[e] is the sorted query-id set of entity e, the Qu of
	// Eq. 1. Exposed for description matching (§2.3).
	QuerySets [][]model.QueryID
}

// Build constructs the item entity graph:
//
//  1. union each entity's member-item query sets (from the bipartite
//     click graph),
//  2. enumerate candidate entity pairs through shared queries,
//  3. score Eq. 1 (Jaccard), Eq. 2 (embedding similarity via the trained
//     word2vec model; entities with no known words fall back to Sq), and
//     blend with Eq. 3,
//  4. filter by MinSimilarity and keep the TopK strongest edges per node.
//
// The embedding model may be nil, in which case Alpha is effectively 1.
// Cancellation is checked between construction phases and inside the
// scoring workers.
func Build(ctx context.Context, es *EntitySet, clicks *bipartite.Graph, emb *word2vec.Model, cfg Config) (*Result, error) {
	res, _, err := BuildWithState(ctx, es, clicks, emb, cfg)
	return res, err
}

// BuildWithState is Build, additionally returning the retained
// intermediate state (candidate pairs, scores, TopK side bits, query→
// entity index) that BuildIncremental patches on the next window slide.
// The state aliases the build's own arrays, so capturing it is free.
func BuildWithState(ctx context.Context, es *EntitySet, clicks *bipartite.Graph, emb *word2vec.Model, cfg Config) (*Result, *IncState, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if es == nil || len(es.Entities) == 0 {
		return nil, nil, fmt.Errorf("entitygraph: empty entity set")
	}
	n := len(es.Entities)

	// Entity query sets (dedup across member items): flat-sort-dedup —
	// member query lists are concatenated into a reusable buffer, sorted
	// and compacted, so no per-entity seen map exists. The query→entity
	// index is accumulated the same way: packed (query, entity)
	// associations in one flat slice, sorted into query groups below.
	querySets := make([][]model.QueryID, n)
	var qbuf []model.QueryID
	var assoc []uint64 // query<<32 | entity, one per (entity, query)
	for e := range es.Entities {
		qbuf = qbuf[:0]
		for _, it := range es.Entities[e].Items {
			qbuf = append(qbuf, clicks.QuerySet(it)...)
		}
		slices.Sort(qbuf)
		qs := make([]model.QueryID, 0, len(qbuf))
		for i, q := range qbuf {
			if i == 0 || q != qbuf[i-1] {
				qs = append(qs, q)
			}
		}
		querySets[e] = qs
		for _, q := range qs {
			assoc = append(assoc, uint64(uint32(q))<<32|uint64(uint32(e)))
		}
	}
	// Group the associations by query: after sorting, each query's
	// entities form a contiguous ascending run — the exact content the
	// former queryEntities map held, without the map.
	slices.Sort(assoc)
	qStart := make([]int32, 0, 64)
	for i := range assoc {
		if i == 0 || assoc[i]>>32 != assoc[i-1]>>32 {
			qStart = append(qStart, int32(i))
		}
	}
	qStart = append(qStart, int32(len(assoc)))

	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// Candidate pairs via shared queries, with fanout cap. Pairs are
	// generated as packed uint64 keys and counted inside each worker: a
	// worker sorts its own keys and run-length encodes them in place, so
	// duplicate pairs collapse before anything crosses a goroutine
	// boundary and the all-pairs concatenation+sort the old path
	// materialized is gone. A k-way merge of the sorted per-worker runs
	// then sums the counts — merge order is by key, so the result is
	// deterministic regardless of which worker saw which query.
	numQueries := len(qStart) - 1
	type pairRun struct {
		keys   []uint64
		counts []int32
	}
	runs := make([]pairRun, cfg.Workers)
	{
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var out []uint64
				var sinceCheck int
				for qi := w; qi < numQueries; qi += cfg.Workers {
					if sinceCheck++; sinceCheck >= 256 {
						sinceCheck = 0
						if ctx.Err() != nil {
							break
						}
					}
					ents := assoc[qStart[qi]:qStart[qi+1]]
					if cfg.MaxQueryFanout > 0 && len(ents) > cfg.MaxQueryFanout {
						continue
					}
					for i := 0; i < len(ents); i++ {
						for j := i + 1; j < len(ents); j++ {
							// Entities within a run ascend, so the pair
							// is already canonical.
							a := ents[i] & 0xffffffff
							b := ents[j] & 0xffffffff
							out = append(out, a<<32|b)
						}
					}
				}
				// Sort and run-length count in place: the write cursor
				// never passes the read cursor, so the key list reuses
				// the raw pair buffer.
				slices.Sort(out)
				keys := out[:0]
				var counts []int32
				for i := 0; i < len(out); {
					k := out[i]
					j := i
					for ; j < len(out) && out[j] == k; j++ {
					}
					keys = append(keys, k)
					counts = append(counts, int32(j-i))
					i = j
				}
				runs[w] = pairRun{keys: keys, counts: counts}
			}(w)
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	// Merge the sorted per-worker runs, summing counts of equal keys.
	// Workers partition queries, not pairs, so the same pair can appear
	// in several runs; the min-key sweep emits each unique pair once, in
	// ascending canonical order.
	total := 0
	for _, r := range runs {
		total += len(r.keys)
	}
	pairs := make([][2]int32, 0, total)
	counts := make([]int32, 0, total)
	idx := make([]int, len(runs))
	for {
		best := uint64(math.MaxUint64)
		found := false
		for w := range runs {
			if i := idx[w]; i < len(runs[w].keys) && (!found || runs[w].keys[i] < best) {
				best = runs[w].keys[i]
				found = true
			}
		}
		if !found {
			break
		}
		var c int32
		for w := range runs {
			if i := idx[w]; i < len(runs[w].keys) && runs[w].keys[i] == best {
				c += runs[w].counts[i]
				idx[w] = i + 1
			}
		}
		pairs = append(pairs, [2]int32{int32(best >> 32), int32(best & 0xffffffff)})
		counts = append(counts, c)
	}

	// Mean normalized word vectors per entity (Eq. 2 factored form).
	means := make([][]float32, n)
	if emb != nil {
		for e := range es.Entities {
			means[e] = meanNormVector(emb, es.Entities[e].Tokens)
		}
	}

	// Score all candidates in parallel; deterministic because each pair
	// is scored independently and written to its own slot.
	sims := make([]float64, len(pairs))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sinceCheck int
			for i := w; i < len(pairs); i += cfg.Workers {
				if sinceCheck++; sinceCheck >= 1024 {
					sinceCheck = 0
					if ctx.Err() != nil {
						return
					}
				}
				sims[i] = scorePair(querySets, means, emb != nil, cfg.Alpha,
					pairs[i][0], pairs[i][1], counts[i])
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Filter + TopK sparsification. An edge survives TopK if it ranks in
	// the top K of *either* endpoint (keeping it in only-one direction
	// would break symmetry). The per-side survival bits are kept (not just
	// the union) so the incremental path can re-rank one endpoint without
	// recomputing the other's verdict.
	perNode := make([][]scored, n)
	for i, p := range pairs {
		if sims[i] < cfg.MinSimilarity {
			continue
		}
		perNode[p[0]] = append(perNode[p[0]], scored{other: p[1], sim: sims[i], idx: i})
		perNode[p[1]] = append(perNode[p[1]], scored{other: p[0], sim: sims[i], idx: i})
	}
	topU := make([]bool, len(pairs))
	topV := make([]bool, len(pairs))
	for u := range perNode {
		rankNode(perNode[u], int32(u), pairs, topU, topV, cfg.TopK)
	}
	// Emit sharded CSR directly: pairs are already canonical and sorted,
	// so the kept subset is a valid FromEdges input, and the row-range
	// shards are counted and filled concurrently.
	kept := make([]wgraph.Edge, 0, len(pairs))
	for i, p := range pairs {
		if topU[i] || topV[i] {
			kept = append(kept, wgraph.Edge{U: p[0], V: p[1], W: sims[i]})
		}
	}
	g, err := shard.FromEdges(n, kept, cfg.Shards)
	if err != nil {
		return nil, nil, err
	}

	st := &IncState{
		cfg:       cfg,
		n:         n,
		hasEmb:    emb != nil,
		querySets: querySets,
		assoc:     assoc,
		pairs:     pairs,
		counts:    counts,
		sims:      sims,
		topU:      topU,
		topV:      topV,
		means:     means,
		graph:     g,
	}
	return &Result{Set: es, Graph: g, QuerySets: querySets}, st, nil
}

// scored is one incident candidate edge in a node's TopK ranking.
type scored struct {
	other int32
	sim   float64
	idx   int
}

// rankNode sorts node u's incident candidates (sim desc, then other asc —
// a total order, so the outcome is unique) and stamps the side bit of the
// pairs ranking in the top K. The list must already be filtered by
// MinSimilarity. Both the full build and the incremental re-rank go
// through here, so their verdicts cannot drift.
func rankNode(lst []scored, u int32, pairs [][2]int32, topU, topV []bool, k int) {
	slices.SortFunc(lst, func(a, b scored) int {
		if a.sim != b.sim {
			if a.sim > b.sim {
				return -1
			}
			return 1
		}
		return int(a.other) - int(b.other)
	})
	limit := len(lst)
	if k > 0 && k < limit {
		limit = k
	}
	for i := 0; i < limit; i++ {
		idx := lst[i].idx
		if pairs[idx][0] == u {
			topU[idx] = true
		} else {
			topV[idx] = true
		}
	}
}

// meanNormVector returns the mean of the L2-normalized embeddings of the
// known tokens, or nil if no token is in vocabulary.
func meanNormVector(emb *word2vec.Model, tokens []string) []float32 {
	var acc []float64
	known := 0
	for _, tok := range tokens {
		v, ok := emb.Vector(tok)
		if !ok {
			continue
		}
		if acc == nil {
			acc = make([]float64, len(v))
		}
		var norm float64
		for _, x := range v {
			norm += float64(x) * float64(x)
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		for i, x := range v {
			acc[i] += float64(x) / norm
		}
		known++
	}
	if known == 0 {
		return nil
	}
	out := make([]float32, len(acc))
	for i, x := range acc {
		out[i] = float32(x / float64(known))
	}
	return out
}

// scorePair computes the Eq. 3 blended similarity of one candidate pair
// from its shared-query count and the endpoint query-set sizes. Both the
// full build and the incremental rescore call it, so the float expression
// — and therefore every emitted bit — is shared between the two paths.
// With no content signal (no embeddings, or an endpoint with no known
// tokens) the score renormalizes to pure Sq so a query match can still
// reach 1.0.
func scorePair(querySets [][]model.QueryID, means [][]float32, hasEmb bool, alpha float64, u, v, count int32) float64 {
	ic := float64(count)
	union := float64(len(querySets[u])+len(querySets[v])) - ic
	sq := 0.0
	if union > 0 {
		sq = ic / union
	}
	s := alpha * sq
	if hasEmb && means[u] != nil && means[v] != nil {
		sc := 0.5 + 0.5*dot(means[u], means[v])
		s += (1 - alpha) * sc
	} else if alpha > 0 {
		s = sq
	}
	return s
}

func dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}
