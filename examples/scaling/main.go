// Scaling demonstrates why the paper needed Parallel HAC (§2.2): the
// sequential baseline merges one pair per iteration, while Parallel HAC
// merges every locally-maximal edge per round. The example times both on
// the same entity graph across worker counts and prints the round-level
// parallelism profile.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"shoal"
)

func main() {
	log.SetFlags(0)

	gen := shoal.DefaultCorpusConfig()
	gen.Scenarios = 40
	gen.ItemsPerScenario = 150
	corpus, err := shoal.GenerateCorpus(gen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %s\n", corpus.Stats())

	base := shoal.DefaultConfig()
	base.Word2Vec.Epochs = 2
	base.HAC.StopThreshold = 0.12
	base.Taxonomy.Levels = []float64{0.12, 0.3, 0.5}

	// Time the whole pipeline at increasing worker counts. The clustering
	// and similarity stages parallelize; generation and bookkeeping do
	// not, so expect sub-linear but clearly positive scaling.
	maxW := runtime.GOMAXPROCS(0)
	fmt.Printf("\n%-8s %-12s %-12s\n", "workers", "build-time", "speedup")
	var first time.Duration
	for w := 1; w <= maxW; w *= 2 {
		cfg := base
		cfg.HAC.Workers = w
		cfg.Graph.Workers = w
		cfg.Word2Vec.Workers = w
		start := time.Now()
		sys, err := shoal.Build(corpus, cfg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if first == 0 {
			first = elapsed
		}
		fmt.Printf("%-8d %-12v %.2fx   (%s)\n", w, elapsed.Round(time.Millisecond),
			first.Seconds()/elapsed.Seconds(), sys.Stats())
	}

	// Round-level profile: how much parallel work each round offered.
	sys, err := shoal.Build(corpus, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nParallel HAC round profile (diffusion r=2):")
	fmt.Printf("%-6s %-16s %-14s %-10s\n", "round", "active-clusters", "active-edges", "merged")
	for _, r := range sys.Rounds() {
		fmt.Printf("%-6d %-16d %-14d %-10d\n", r.Round, r.ActiveClusters, r.ActiveEdges, r.Selected)
	}
}
