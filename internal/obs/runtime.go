package obs

import (
	"context"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// RuntimeSampler feeds Go runtime health gauges — heap, GC pauses,
// goroutines — into a registry. Sampling calls runtime.ReadMemStats
// (a brief stop-the-world), so it is meant for a ticker at seconds
// granularity, not a per-request path.
type RuntimeSampler struct {
	heapAlloc   *Gauge
	heapSys     *Gauge
	heapObjects *Gauge
	goroutines  *Gauge
	gcPauseNs   *Gauge
	gcCycles    *Gauge
}

// NewRuntimeSampler registers the runtime gauge family in reg.
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	return &RuntimeSampler{
		heapAlloc:   reg.Gauge("shoal_runtime_heap_alloc_bytes", "", "bytes of allocated heap objects"),
		heapSys:     reg.Gauge("shoal_runtime_heap_sys_bytes", "", "heap memory obtained from the OS"),
		heapObjects: reg.Gauge("shoal_runtime_heap_objects", "", "number of allocated heap objects"),
		goroutines:  reg.Gauge("shoal_runtime_goroutines", "", "number of live goroutines"),
		gcPauseNs:   reg.Gauge("shoal_runtime_gc_pause_total_ns", "", "cumulative GC stop-the-world pause"),
		gcCycles:    reg.Gauge("shoal_runtime_gc_cycles", "", "completed GC cycles"),
	}
}

// Sample reads the runtime once and updates every gauge.
func (s *RuntimeSampler) Sample() {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.heapAlloc.Set(int64(m.HeapAlloc))
	s.heapSys.Set(int64(m.HeapSys))
	s.heapObjects.Set(int64(m.HeapObjects))
	s.goroutines.Set(int64(runtime.NumGoroutine()))
	s.gcPauseNs.Set(int64(m.PauseTotalNs))
	s.gcCycles.Set(int64(m.NumGC))
}

// Run samples immediately and then on every tick until ctx is done.
// Call it in its own goroutine.
func (s *RuntimeSampler) Run(ctx context.Context, every time.Duration) {
	s.Sample()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.Sample()
		}
	}
}

// PprofMux returns a mux with the standard net/http/pprof handlers
// mounted under /debug/pprof/ — the shared profiling surface for
// shoal-serve's side listener and shoal-build's -pprof flag, kept off
// the serving mux so production traffic never routes near the profiler.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
