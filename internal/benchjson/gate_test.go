package benchjson

import (
	"strings"
	"testing"
)

func TestRegressions(t *testing.T) {
	oldRes := []Result{
		{Name: "a", NsPerOp: 1000},
		{Name: "b", NsPerOp: 1000},
		{Name: "c", NsPerOp: 1000},
		{Name: "gone", NsPerOp: 1000},
	}
	newRes := []Result{
		{Name: "a", NsPerOp: 1249}, // +24.9%: inside the gate
		{Name: "b", NsPerOp: 1300}, // +30%: regression
		{Name: "c", NsPerOp: 700},  // improvement
		{Name: "new", NsPerOp: 1},  // not in old: ignored
	}
	got := Regressions(oldRes, newRes, 0.25)
	if len(got) != 1 || !strings.HasPrefix(got[0], "b:") {
		t.Fatalf("Regressions = %v, want exactly one entry for b", got)
	}
	if got := Regressions(oldRes, oldRes, 0.25); len(got) != 0 {
		t.Fatalf("self-comparison regressed: %v", got)
	}
	// Tightening the threshold to zero flags any growth at all.
	if got := Regressions(oldRes, newRes, 0); len(got) != 2 {
		t.Fatalf("zero-threshold gate = %v, want a and b", got)
	}
}

// The committed-trajectory comparison itself (BENCH_2.json vs
// BENCH_3.json at 25%) lives in CI as the dedicated bench-gate step
// (`shoal-bench -benchgate`), so it is deliberately not duplicated
// here — one check, one threshold, one report.
