package eval

import (
	"math"
	"testing"

	"shoal/internal/model"
	"shoal/internal/taxonomy"
)

// makeWorld builds a corpus of n items with scenario labels and a
// hand-assembled taxonomy placing them; placement[i] = root topic of item
// i (or -1 for unassigned).
func makeWorld(labels []model.ScenarioID, placement []model.TopicID, topicCount int) (*taxonomy.Taxonomy, *model.Corpus) {
	corpus := &model.Corpus{
		Categories: []model.Category{{ID: 0, Name: "X", Parent: model.RootCategory}},
	}
	for i, s := range labels {
		corpus.Items = append(corpus.Items, model.Item{
			ID: model.ItemID(i), Title: "t", Category: 0, PriceCents: 100, Scenario: s,
		})
	}
	tx := &taxonomy.Taxonomy{
		ItemTopic: make([]model.TopicID, len(labels)),
	}
	for t := 0; t < topicCount; t++ {
		tx.Topics = append(tx.Topics, taxonomy.Topic{ID: model.TopicID(t), Parent: taxonomy.NoTopic})
	}
	for i, p := range placement {
		tx.ItemTopic[i] = p
		if p != taxonomy.NoTopic {
			tx.Topics[p].Items = append(tx.Topics[p].Items, model.ItemID(i))
		}
	}
	return tx, corpus
}

func TestPrecisionPerfectPlacement(t *testing.T) {
	labels := []model.ScenarioID{0, 0, 0, 1, 1, 1}
	placement := []model.TopicID{0, 0, 0, 1, 1, 1}
	tx, corpus := makeWorld(labels, placement, 2)
	res, err := Precision(tx, corpus, PrecisionConfig{MinTopicItems: 1, Seed: 1, RootTopicsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != 1 {
		t.Fatalf("Precision = %f, want 1", res.Precision)
	}
	if res.TopicsEvaluated != 2 || res.ItemsJudged != 6 {
		t.Fatalf("evaluated %d topics %d items, want 2 and 6", res.TopicsEvaluated, res.ItemsJudged)
	}
}

func TestPrecisionWithImpurity(t *testing.T) {
	// Topic 0 holds 3 scenario-0 items and 1 scenario-1 item: majority 0,
	// precision 3/4.
	labels := []model.ScenarioID{0, 0, 0, 1}
	placement := []model.TopicID{0, 0, 0, 0}
	tx, corpus := makeWorld(labels, placement, 1)
	res, err := Precision(tx, corpus, PrecisionConfig{MinTopicItems: 1, Seed: 1, RootTopicsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Precision-0.75) > 1e-12 {
		t.Fatalf("Precision = %f, want 0.75", res.Precision)
	}
}

func TestPrecisionSkipsTinyAndUnlabeled(t *testing.T) {
	labels := []model.ScenarioID{0, 0, model.NoScenario, 1}
	placement := []model.TopicID{0, 0, 0, 1} // topic 1 has 1 labeled item
	tx, corpus := makeWorld(labels, placement, 2)
	res, err := Precision(tx, corpus, PrecisionConfig{MinTopicItems: 2, Seed: 1, RootTopicsOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopicsEvaluated != 1 {
		t.Fatalf("TopicsEvaluated = %d, want 1 (tiny topic skipped)", res.TopicsEvaluated)
	}
	if res.ItemsJudged != 2 {
		t.Fatalf("ItemsJudged = %d, want 2 (unlabeled item skipped)", res.ItemsJudged)
	}
}

func TestPrecisionSampling(t *testing.T) {
	// 10 topics of 20 items each; sample 4 topics × 5 items.
	var labels []model.ScenarioID
	var placement []model.TopicID
	for tpc := 0; tpc < 10; tpc++ {
		for i := 0; i < 20; i++ {
			labels = append(labels, model.ScenarioID(tpc))
			placement = append(placement, model.TopicID(tpc))
		}
	}
	tx, corpus := makeWorld(labels, placement, 10)
	res, err := Precision(tx, corpus, PrecisionConfig{
		SampleTopics: 4, ItemsPerTopic: 5, MinTopicItems: 1, Seed: 3, RootTopicsOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TopicsEvaluated != 4 {
		t.Fatalf("TopicsEvaluated = %d, want 4", res.TopicsEvaluated)
	}
	if res.ItemsJudged != 20 {
		t.Fatalf("ItemsJudged = %d, want 20", res.ItemsJudged)
	}
	if res.Precision != 1 {
		t.Fatalf("Precision = %f, want 1", res.Precision)
	}
}

func TestPrecisionErrors(t *testing.T) {
	tx, corpus := makeWorld([]model.ScenarioID{0}, []model.TopicID{taxonomy.NoTopic}, 0)
	if _, err := Precision(tx, corpus, DefaultPrecisionConfig()); err == nil {
		t.Fatal("empty taxonomy accepted")
	}
	tx2, corpus2 := makeWorld([]model.ScenarioID{model.NoScenario}, []model.TopicID{0}, 1)
	if _, err := Precision(tx2, corpus2, PrecisionConfig{MinTopicItems: 0, RootTopicsOnly: true}); err == nil {
		t.Fatal("all-unlabeled corpus accepted")
	}
	tx3, corpus3 := makeWorld([]model.ScenarioID{0}, []model.TopicID{0}, 1)
	if _, err := Precision(tx3, corpus3, PrecisionConfig{SampleTopics: -1}); err == nil {
		t.Fatal("negative sample accepted")
	}
}

func TestNMIPerfectAndIndependent(t *testing.T) {
	perfect, err := LabelsPartition([]int32{0, 0, 1, 1}, []model.ScenarioID{5, 5, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := perfect.NMI(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(perfect) = %f, want 1", got)
	}
	// One cluster holding everything: MI = 0.
	single, err := LabelsPartition([]int32{0, 0, 0, 0}, []model.ScenarioID{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := single.NMI(); got > 1e-9 {
		t.Fatalf("NMI(single cluster) = %f, want 0", got)
	}
}

func TestNMIBetterPartitionScoresHigher(t *testing.T) {
	truth := []model.ScenarioID{0, 0, 0, 1, 1, 1}
	good, err := LabelsPartition([]int32{0, 0, 0, 1, 1, 1}, truth)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := LabelsPartition([]int32{0, 1, 0, 1, 0, 1}, truth)
	if err != nil {
		t.Fatal(err)
	}
	if good.NMI() <= bad.NMI() {
		t.Fatalf("NMI good %f <= bad %f", good.NMI(), bad.NMI())
	}
}

func TestPurity(t *testing.T) {
	p, err := LabelsPartition([]int32{0, 0, 0, 1, 1}, []model.ScenarioID{7, 7, 8, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Cluster 0: majority 7 (2/3). Cluster 1: majority 9 (2/2). 4/5.
	if got := p.Purity(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Purity = %f, want 0.8", got)
	}
}

func TestLabelsPartitionFiltersUnlabeled(t *testing.T) {
	p, err := LabelsPartition([]int32{0, 1, 2}, []model.ScenarioID{0, model.NoScenario, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 2 {
		t.Fatalf("N = %d, want 2", p.N())
	}
	if _, err := LabelsPartition([]int32{0}, []model.ScenarioID{0, 1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := LabelsPartition([]int32{0}, []model.ScenarioID{model.NoScenario}); err == nil {
		t.Fatal("all-unlabeled accepted")
	}
}

func TestTopicPartition(t *testing.T) {
	labels := []model.ScenarioID{0, 0, 1, 1, model.NoScenario}
	placement := []model.TopicID{0, 0, 1, 1, taxonomy.NoTopic}
	tx, corpus := makeWorld(labels, placement, 2)
	p, err := TopicPartition(tx, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 4 {
		t.Fatalf("N = %d, want 4", p.N())
	}
	if got := p.NMI(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI = %f, want 1", got)
	}
}
