package main

import (
	"os"
	"path/filepath"
	"testing"

	"shoal"
)

func TestParseID(t *testing.T) {
	cases := []struct {
		in   []string
		want int
		ok   bool
	}{
		{[]string{"7"}, 7, true},
		{[]string{"0"}, 0, true},
		{[]string{"-3"}, 0, false},
		{[]string{"x"}, 0, false},
		{nil, 0, false},
	}
	for _, tc := range cases {
		got, ok := parseID(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseID(%v) = %d,%v want %d,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestFindCategory(t *testing.T) {
	corpus := shoal.CuratedCorpus()
	if got := findCategory(corpus, "Dress"); got == shoal.RootCategory {
		t.Fatal("Dress not found by name")
	}
	if got := findCategory(corpus, "dress"); got == shoal.RootCategory {
		t.Fatal("name lookup is not case-insensitive")
	}
	if got := findCategory(corpus, "0"); got != 0 {
		t.Fatalf("numeric lookup = %d, want 0", got)
	}
	if got := findCategory(corpus, "99999"); got != shoal.RootCategory {
		t.Fatal("out-of-range id accepted")
	}
	if got := findCategory(corpus, "no such category"); got != shoal.RootCategory {
		t.Fatal("unknown name accepted")
	}
}

// TestReplDoesNotPanic drives the REPL with every command against the
// curated corpus.
func TestReplDoesNotPanic(t *testing.T) {
	cfg := shoal.DefaultConfig()
	cfg.Word2Vec.Epochs = 1
	cfg.Word2Vec.MinCount = 1
	cfg.Graph.MinSimilarity = 0.2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.4}
	cfg.CatCorr.MinStrength = 0
	sys, err := shoal.Build(shoal.CuratedCorpus(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	script := "help\nroots\nquery beach dress\nquery\ntopic 0\ntopic notanumber\ntopic 9999\n" +
		"items 0\nitems 0 4\nitems\nitems x\nrelated Dress\nrelated\nrelated nosuch\n" +
		"bogus\n\nquit\n"
	path := filepath.Join(t.TempDir(), "script")
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Redirect stdout noise away from the test log.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	repl(sys, f)
}
