package word2vec

import (
	"encoding/gob"
	"fmt"
	"io"
)

// modelWire is the gob wire form of a Model. Production systems train
// embeddings offline and ship them to the taxonomy builder; Save/Load is
// that hand-off.
type modelWire struct {
	Dim   int
	Words []string
	Vecs  []float32
}

// Save writes the model in gob encoding.
func (m *Model) Save(w io.Writer) error {
	wire := modelWire{Dim: m.dim, Words: m.words, Vecs: m.vecs}
	if err := gob.NewEncoder(w).Encode(&wire); err != nil {
		return fmt.Errorf("word2vec: encoding model: %w", err)
	}
	return nil
}

// Load reads a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("word2vec: decoding model: %w", err)
	}
	if wire.Dim <= 0 {
		return nil, fmt.Errorf("word2vec: decoded model has dimension %d", wire.Dim)
	}
	if len(wire.Vecs) != len(wire.Words)*wire.Dim {
		return nil, fmt.Errorf("word2vec: decoded model has %d floats for %d words of dim %d",
			len(wire.Vecs), len(wire.Words), wire.Dim)
	}
	m := &Model{
		dim:   wire.Dim,
		words: wire.Words,
		vecs:  wire.Vecs,
		ids:   make(map[string]int, len(wire.Words)),
	}
	for i, w := range wire.Words {
		if _, dup := m.ids[w]; dup {
			return nil, fmt.Errorf("word2vec: decoded model has duplicate word %q", w)
		}
		m.ids[w] = i
	}
	return m, nil
}
