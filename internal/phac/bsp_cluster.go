package phac

import (
	"shoal/internal/bsp"
)

// clusterDiffusionProgram is one clustering round's diffusion+selection
// as a BSP vertex program over the contracted CSR (dead rows are empty
// and go quiet after superstep 0). It is the in-round twin of
// diffusionProgram: max-combiner, changed-only sends, vote-to-halt —
// plus the round-statistics side outputs (per-id edge counts and best
// incident edge regardless of threshold) that selectLocalMaxima computes
// during its init scan. One program value lives on the state and is
// re-pointed at each round's contracted CSR before the engine rebind.
type clusterDiffusionProgram struct {
	offsets   []int32
	nbrs      []int32
	wts       []float64
	rounds    int
	threshold float64
	know      []edgeRef
	edgeCnt   []int64
	bests     []edgeRef
}

// Combine is the sender-side max-fold (bsp.Combiner).
func (p *clusterDiffusionProgram) Combine(acc, m edgeRef) edgeRef {
	if better(m, acc) {
		return m
	}
	return acc
}

func (p *clusterDiffusionProgram) Compute(step int, v bsp.VertexID, inbox []edgeRef, out *bsp.Outbox[edgeRef]) bool {
	u := int32(v)
	rl, rh := p.offsets[u], p.offsets[u+1]
	changed := false
	if step == 0 {
		best, bestAny := noEdge, noEdge
		edges := int64(0)
		for j := rl; j < rh; j++ {
			nb, w := p.nbrs[j], p.wts[j]
			if u < nb {
				edges++
			}
			cand := mkEdgeRef(u, nb, w)
			if better(cand, bestAny) {
				bestAny = cand
			}
			if w < p.threshold {
				continue
			}
			if better(cand, best) {
				best = cand
			}
		}
		p.know[u] = best
		p.edgeCnt[u] = edges
		p.bests[u] = bestAny
		changed = best != noEdge
	} else {
		for _, m := range inbox {
			if better(m, p.know[u]) {
				p.know[u] = m
				changed = true
			}
		}
	}
	if changed && step < p.rounds {
		out.SendMany(p.nbrs[rl:rh], p.know[u])
		return false
	}
	return true
}

// selectLocalMaximaBSP is selectLocalMaxima routed through the BSP
// engine. One engine serves the whole clustering: the first round builds
// it, every later round rebinds it to the contracted CSR (the id space
// grows as merges mint ids), so workers, inbox accumulators and combiner
// scratch persist across rounds and steady-state rounds allocate no
// engine state. The selection, round edge count and best similarity are
// byte-identical to the shared-memory scans (max-exchange reaches the
// same fixed point under any execution order); agg accumulates the
// engine profile across rounds, carrying the lifetime reuse counters.
func (st *state) selectLocalMaximaBSP(rounds int, threshold float64, agg *bsp.Stats) ([]edgeRef, int, float64, error) {
	n := st.total
	for len(st.bspKnow) < n {
		st.bspKnow = append(st.bspKnow, noEdge)
	}
	if st.bspProg == nil {
		st.bspProg = &clusterDiffusionProgram{rounds: rounds, threshold: threshold}
	}
	prog := st.bspProg
	prog.offsets = st.offsets[:n+1]
	prog.nbrs = st.nbrs
	prog.wts = st.wts
	prog.know = st.bspKnow[:n]
	prog.edgeCnt = st.edgeCnt[:n]
	prog.bests = st.bests[:n]
	if st.bspEng == nil {
		eng, err := bsp.New[edgeRef](n, prog, bsp.Config{Workers: st.shards, Chaos: st.bspChaos})
		if err != nil {
			return nil, 0, 0, err
		}
		st.bspEng = eng
	} else if err := st.bspEng.Rebind(n, prog); err != nil {
		return nil, 0, 0, err
	}
	stats, err := st.bspEng.Run()
	if err != nil {
		return nil, 0, 0, err
	}
	agg.Add(stats)

	var activeEdges int64
	globalBest := noEdge
	for _, u := range st.aliveList() {
		activeEdges += st.edgeCnt[u]
		if better(st.bests[u], globalBest) {
			globalBest = st.bests[u]
		}
	}
	// Selection in ascending u order: keys come out canonically sorted
	// without the sort the shared-memory path needs.
	selected := st.selected[:0]
	know := prog.know
	for u := int32(0); int(u) < n; u++ {
		e := know[u]
		if e.U() != u || e.sim < threshold {
			continue
		}
		if know[e.V()] == e {
			selected = append(selected, e)
		}
	}
	st.selected = selected
	return selected, int(activeEdges), globalBest.sim, nil
}
