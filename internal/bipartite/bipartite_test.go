package bipartite

import (
	"math"
	"testing"
	"testing/quick"

	"shoal/internal/model"
)

func ev(q, it, day, n int) model.ClickEvent {
	return model.ClickEvent{Query: model.QueryID(q), Item: model.ItemID(it), Day: int32(day), Count: int32(n)}
}

func TestAddAndLookups(t *testing.T) {
	g := New(7)
	must := func(e model.ClickEvent) {
		t.Helper()
		if err := g.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	must(ev(0, 10, 0, 2))
	must(ev(0, 11, 0, 1))
	must(ev(1, 10, 1, 3))

	if g.Queries() != 2 || g.Items() != 2 {
		t.Fatalf("Queries=%d Items=%d, want 2,2", g.Queries(), g.Items())
	}
	if got := g.ClickCount(0, 10); got != 2 {
		t.Fatalf("ClickCount(0,10) = %d, want 2", got)
	}
	qs := g.QuerySet(10)
	if len(qs) != 2 || qs[0] != 0 || qs[1] != 1 {
		t.Fatalf("QuerySet(10) = %v, want [0 1]", qs)
	}
	is := g.ItemSet(0)
	if len(is) != 2 || is[0] != 10 || is[1] != 11 {
		t.Fatalf("ItemSet(0) = %v, want [10 11]", is)
	}
	if g.QueryDegree(0) != 2 || g.ItemDegree(10) != 2 {
		t.Fatalf("degrees wrong: qd=%d id=%d", g.QueryDegree(0), g.ItemDegree(10))
	}
	if g.MaxDay() != 1 {
		t.Fatalf("MaxDay = %d, want 1", g.MaxDay())
	}
}

func TestAddRejectsBadEvents(t *testing.T) {
	g := New(7)
	if err := g.Add(ev(0, 0, 0, 0)); err == nil {
		t.Fatal("Add(count=0) = nil error")
	}
	if err := g.Add(model.ClickEvent{Query: 0, Item: 0, Day: -1, Count: 1}); err == nil {
		t.Fatal("Add(day=-1) = nil error")
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	g := New(7)
	if err := g.AddAll([]model.ClickEvent{ev(0, 1, 0, 1), ev(1, 2, 3, 1)}); err != nil {
		t.Fatal(err)
	}
	// Day 0 clicks must survive through day 7 (window covers days 1..7
	// exclusive of day<=0? day > maxDay-window: 0 > 7-7=0 is false) —
	// precisely: with window=7 and maxDay=7, days <= 0 are evicted.
	if err := g.Add(ev(2, 3, 7, 1)); err != nil {
		t.Fatal(err)
	}
	if g.ClickCount(0, 1) != 0 {
		t.Fatal("day-0 click not evicted at day 7 with 7-day window")
	}
	if g.ClickCount(1, 2) != 1 {
		t.Fatal("day-3 click wrongly evicted")
	}
	// Late-arriving stale click is ignored.
	if err := g.Add(ev(5, 9, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if g.ClickCount(5, 9) != 0 {
		t.Fatal("stale click was ingested")
	}
}

func TestUnlimitedWindow(t *testing.T) {
	g := New(0)
	if err := g.AddAll([]model.ClickEvent{ev(0, 1, 0, 1), ev(1, 2, 1000, 1)}); err != nil {
		t.Fatal(err)
	}
	if g.ClickCount(0, 1) != 1 {
		t.Fatal("unlimited window evicted an event")
	}
}

func TestEvictionRemovesEmptyEntries(t *testing.T) {
	g := New(1)
	if err := g.Add(ev(0, 1, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(ev(1, 2, 5, 1)); err != nil {
		t.Fatal(err)
	}
	if g.Queries() != 1 || g.Items() != 1 {
		t.Fatalf("after eviction Queries=%d Items=%d, want 1,1", g.Queries(), g.Items())
	}
	if got := g.QuerySet(1); len(got) != 0 {
		t.Fatalf("QuerySet(evicted item) = %v, want empty", got)
	}
}

func TestJaccardHandComputed(t *testing.T) {
	g := New(0)
	// item 1: queries {0,1,2}; item 2: queries {1,2,3}; inter=2 union=4.
	evs := []model.ClickEvent{
		ev(0, 1, 0, 1), ev(1, 1, 0, 1), ev(2, 1, 0, 1),
		ev(1, 2, 0, 1), ev(2, 2, 0, 1), ev(3, 2, 0, 1),
	}
	if err := g.AddAll(evs); err != nil {
		t.Fatal(err)
	}
	if got := g.Jaccard(1, 2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Jaccard = %f, want 0.5", got)
	}
	if got := g.Jaccard(1, 99); got != 0 {
		t.Fatalf("Jaccard with unknown item = %f, want 0", got)
	}
}

// Properties of Jaccard: symmetric, in [0,1], self-similarity 1.
func TestJaccardProperties(t *testing.T) {
	g := New(0)
	f := func(edges []uint16) bool {
		g2 := New(0)
		for _, e := range edges {
			q := int(e >> 8)
			it := int(e & 0xff)
			if err := g2.Add(ev(q, it, 0, 1)); err != nil {
				return false
			}
		}
		for u := 0; u < 8; u++ {
			for v := 0; v < 8; v++ {
				juv := g2.Jaccard(model.ItemID(u), model.ItemID(v))
				jvu := g2.Jaccard(model.ItemID(v), model.ItemID(u))
				if juv != jvu || juv < 0 || juv > 1 {
					return false
				}
				if u == v && g2.ItemDegree(model.ItemID(u)) > 0 && juv != 1 {
					return false
				}
			}
		}
		return true
	}
	_ = g
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCoClickPairs(t *testing.T) {
	g := New(0)
	// query 0 clicks items {1,2,3}; query 1 clicks items {2,3}.
	evs := []model.ClickEvent{
		ev(0, 1, 0, 1), ev(0, 2, 0, 1), ev(0, 3, 0, 1),
		ev(1, 2, 0, 1), ev(1, 3, 0, 1),
	}
	if err := g.AddAll(evs); err != nil {
		t.Fatal(err)
	}
	pairs := g.CoClickPairs(0)
	want := map[[2]model.ItemID]int32{
		{1, 2}: 1, {1, 3}: 1, {2, 3}: 2,
	}
	if len(pairs) != len(want) {
		t.Fatalf("CoClickPairs returned %d pairs, want %d (%v)", len(pairs), len(want), pairs)
	}
	for _, p := range pairs {
		if p.U >= p.V {
			t.Fatalf("pair not canonical: %v", p)
		}
		if want[[2]model.ItemID{p.U, p.V}] != p.Inter {
			t.Fatalf("pair %v has inter=%d, want %d", p, p.Inter, want[[2]model.ItemID{p.U, p.V}])
		}
	}
	// Sorted by (U,V).
	for i := 1; i < len(pairs); i++ {
		a, b := pairs[i-1], pairs[i]
		if a.U > b.U || (a.U == b.U && a.V >= b.V) {
			t.Fatal("CoClickPairs not sorted")
		}
	}
}

func TestCoClickPairsFanoutCap(t *testing.T) {
	g := New(0)
	// Head query 0 clicks 5 items; tail query 1 clicks 2 of them.
	for it := 0; it < 5; it++ {
		if err := g.Add(ev(0, it, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddAll([]model.ClickEvent{ev(1, 0, 0, 1), ev(1, 1, 0, 1)}); err != nil {
		t.Fatal(err)
	}
	pairs := g.CoClickPairs(3) // head query skipped
	if len(pairs) != 1 || pairs[0].U != 0 || pairs[0].V != 1 {
		t.Fatalf("CoClickPairs(cap=3) = %v, want only (0,1)", pairs)
	}
}

func TestCoClickIntersectionMatchesJaccardNumerator(t *testing.T) {
	g := New(0)
	evs := []model.ClickEvent{
		ev(0, 1, 0, 1), ev(1, 1, 0, 1), ev(2, 1, 0, 1),
		ev(1, 2, 0, 1), ev(2, 2, 0, 1), ev(3, 2, 0, 1),
	}
	if err := g.AddAll(evs); err != nil {
		t.Fatal(err)
	}
	pairs := g.CoClickPairs(0)
	for _, p := range pairs {
		union := g.ItemDegree(p.U) + g.ItemDegree(p.V) - int(p.Inter)
		want := float64(p.Inter) / float64(union)
		if got := g.Jaccard(p.U, p.V); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Jaccard(%d,%d)=%f, want %f from pair counts", p.U, p.V, got, want)
		}
	}
}
