package phac

import (
	"fmt"
	"sort"

	"shoal/internal/bsp"
	"shoal/internal/wgraph"
)

// Edge is a selected locally-maximal edge (U < V).
type Edge struct {
	U, V int32
	Sim  float64
}

// Diffuse runs one diffusion+selection pass over a static graph and
// returns the locally-maximal matching, sorted by (U,V). This is the
// standalone form of Parallel HAC's step 1–2, exposed for experiment E5
// (iterations vs. parallelism) and the BSP equivalence check (E9).
// Edges below threshold do not participate. The graph is scanned in its
// CSR form (a mutable graph is frozen once up front), so the exchange
// iterations allocate nothing.
func Diffuse(g wgraph.View, rounds int, threshold float64, workers int) ([]Edge, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("phac: empty graph")
	}
	if rounds < 0 {
		return nil, fmt.Errorf("phac: negative diffusion rounds %d", rounds)
	}
	if workers <= 0 {
		workers = 1
	}
	c := wgraph.AsCSR(g)
	offsets, nbrs, wts := c.Adj()
	n := int32(c.NumNodes())
	know := make([]edgeRef, n)
	next := make([]edgeRef, n)
	nodes := make([]int32, n)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	parallelOver(nodes, workers, func(u int32) {
		best := noEdge
		for j := offsets[u]; j < offsets[u+1]; j++ {
			v, w := nbrs[j], wts[j]
			if w < threshold {
				continue
			}
			cu, cv := canon(u, v)
			cand := edgeRef{u: cu, v: cv, sim: w}
			if better(cand, best) {
				best = cand
			}
		}
		know[u] = best
	})
	for it := 0; it < rounds; it++ {
		parallelOver(nodes, workers, func(u int32) {
			best := know[u]
			for j := offsets[u]; j < offsets[u+1]; j++ {
				if v := nbrs[j]; better(know[v], best) {
					best = know[v]
				}
			}
			next[u] = best
		})
		know, next = next, know
	}
	return collectSelected(know, threshold), nil
}

// DiffuseBSP computes the same matching as Diffuse but runs the exchange
// protocol on the Pregel-style BSP engine (internal/bsp) — the execution
// model the paper deploys on ODPS. chaos may be nil.
func DiffuseBSP(g wgraph.View, rounds int, threshold float64, cfg bsp.Config) ([]Edge, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("phac: empty graph")
	}
	if rounds < 0 {
		return nil, fmt.Errorf("phac: negative diffusion rounds %d", rounds)
	}
	prog := &diffusionProgram{
		g:         wgraph.AsCSR(g),
		rounds:    rounds,
		threshold: threshold,
		know:      make([]edgeRef, g.NumNodes()),
	}
	eng, err := bsp.New[edgeRef](g.NumNodes(), prog, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	return collectSelected(prog.know, threshold), nil
}

// diffusionProgram is the vertex-centric formulation: superstep 0
// initializes each vertex with its best incident edge and broadcasts it;
// supersteps 1..rounds fold the inbox maximum and re-broadcast. The fold is
// order-independent, so the program is correct under chaotic delivery.
type diffusionProgram struct {
	g         *wgraph.CSR
	rounds    int
	threshold float64
	know      []edgeRef
}

func (p *diffusionProgram) Compute(step int, v bsp.VertexID, inbox []edgeRef, send func(bsp.VertexID, edgeRef)) bool {
	u := int32(v)
	nbrs, wts := p.g.Row(u)
	if step == 0 {
		best := noEdge
		for i, nb := range nbrs {
			w := wts[i]
			if w < p.threshold {
				continue
			}
			cu, cv := canon(u, nb)
			cand := edgeRef{u: cu, v: cv, sim: w}
			if better(cand, best) {
				best = cand
			}
		}
		p.know[u] = best
	} else {
		for _, m := range inbox {
			if better(m, p.know[u]) {
				p.know[u] = m
			}
		}
	}
	if step < p.rounds {
		for _, nb := range nbrs {
			send(bsp.VertexID(nb), p.know[u])
		}
		return false
	}
	return true
}

// collectSelected extracts the mutual locally-maximal edges from know.
func collectSelected(know []edgeRef, threshold float64) []Edge {
	var out []Edge
	for u := int32(0); int(u) < len(know); u++ {
		e := know[u]
		if e.u != u || e.sim < threshold {
			continue
		}
		if int(e.v) < len(know) && know[e.v] == e {
			out = append(out, Edge{U: e.u, V: e.v, Sim: e.sim})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
