// Package shard partitions the immutable CSR graph substrate into
// contiguous row-range shards — the scaling primitive for multi-worker
// (and, later, multi-host) clustering of larger corpora.
//
// A shard.CSR is a zero-copy view over one *wgraph.CSR: each shard owns
// the rows [lo,hi) of a Plan that balances shards by adjacency entries
// (edge count), not node count, so skewed degree distributions still
// yield even per-worker work. Per-shard aggregates (entry, edge and
// weight totals) are cached at construction. The whole thing satisfies
// wgraph.View and unwraps to its base CSR through wgraph.CSRBacked, so
// every existing consumer works unchanged while partition-parallel
// consumers (phac.Diffuse, phac.Cluster's contracted rebuild,
// entitygraph.Build) schedule one worker per shard.
//
// Determinism contract: sharding never changes any observable result.
// Every partition-parallel consumer produces output byte-identical to
// the single-shard run (see the TestShardedObservationallyIdentical
// family at the wgraph, phac and taxonomy levels).
package shard

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"shoal/internal/wgraph"
)

// Plan is a partition of the row space [0,n) into contiguous shards.
// Shard i covers rows [bounds[i], bounds[i+1]).
type Plan struct {
	bounds []int32
}

// NumShards returns the number of shards in the plan.
func (p Plan) NumShards() int {
	if len(p.bounds) == 0 {
		return 0
	}
	return len(p.bounds) - 1
}

// Bounds returns the row range [lo,hi) of shard i.
func (p Plan) Bounds(i int) (lo, hi int32) {
	return p.bounds[i], p.bounds[i+1]
}

// Find returns the shard owning row u.
func (p Plan) Find(u int32) int {
	// First bound strictly greater than u, minus one.
	i := sort.Search(len(p.bounds)-1, func(i int) bool { return p.bounds[i+1] > u })
	return i
}

// clampShards resolves a shard-count request: <= 0 means GOMAXPROCS, and
// a plan never has more shards than rows (plus at least one).
func clampShards(shards, n int) int {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// PlanCounts builds a plan over len(counts) rows balanced by the given
// per-row counts (adjacency entries, degrees, …): bound i is placed at
// the first row whose prefix count reaches i/shards of the total. The
// greedy prefix walk is deterministic and monotone, so equal inputs
// always produce equal plans.
func PlanCounts(counts []int32, shards int) Plan {
	n := len(counts)
	shards = clampShards(shards, n)
	var total int64
	for _, c := range counts {
		total += int64(c)
	}
	bounds := make([]int32, shards+1)
	bounds[shards] = int32(n)
	var prefix int64
	next := 1 // next bound to place
	for u := 0; u < n && next < shards; u++ {
		prefix += int64(counts[u])
		// Place every bound whose target the prefix has reached; a row
		// heavier than a whole target can consume several bounds (those
		// shards come out empty, which is fine — the plan stays valid).
		for next < shards && prefix*int64(shards) >= total*int64(next) {
			bounds[next] = int32(u + 1)
			next++
		}
	}
	for ; next < shards; next++ {
		bounds[next] = int32(n)
	}
	return Plan{bounds: bounds}
}

// PlanRows builds an edge-balanced plan over the rows of c: shard
// boundaries are chosen so each shard holds roughly the same number of
// adjacency entries rather than the same number of rows.
func PlanRows(c *wgraph.CSR, shards int) Plan {
	offsets, _, _ := c.Adj()
	n := c.NumNodes()
	shards = clampShards(shards, n)
	total := int64(offsets[n])
	bounds := make([]int32, shards+1)
	bounds[shards] = int32(n)
	for i := 1; i < shards; i++ {
		target := total * int64(i) / int64(shards)
		// First row whose prefix entry count reaches the target.
		j := sort.Search(n, func(u int) bool { return int64(offsets[u+1]) >= target })
		if j+1 > int(bounds[i-1]) {
			bounds[i] = int32(j + 1)
		} else {
			bounds[i] = bounds[i-1]
		}
		if bounds[i] > int32(n) {
			bounds[i] = int32(n)
		}
	}
	return Plan{bounds: bounds}
}

// Shard is one row-range partition of a CSR with its cached aggregates.
// The slices are zero-copy views into the base arrays; Offsets holds the
// base (global) offsets for rows [Lo,Hi] — index it as Offsets[u-Lo] —
// so Nbrs/Wts positions are Offsets[u-Lo]-Offsets[0] relative.
type Shard struct {
	Lo, Hi  int32     // row range [Lo, Hi)
	Offsets []int32   // global offsets of rows Lo..Hi (len Hi-Lo+1)
	Nbrs    []int32   // adjacency entries of the shard's rows
	Wts     []float64 // parallel weights
	// Entries is the number of directed adjacency entries in the shard
	// (== len(Nbrs)); the Plan balances this, not the row count.
	Entries int
	// Edges is the number of undirected edges owned by the shard under
	// the canonical owner rule: edge (u,v), u < v, belongs to u's shard.
	Edges int
	// DegTotal is the sum of weighted degrees over the shard's rows.
	DegTotal float64
	// Weight is the total weight of the shard's owned edges, accumulated
	// in canonical row-major order.
	Weight float64
}

// CSR is a sharded view of an immutable wgraph.CSR. It satisfies
// wgraph.View by delegating every observation to the base CSR — sharding
// is invisible to single-threaded consumers — while partition-parallel
// consumers iterate Shards() and schedule one worker per shard. The
// per-shard aggregate caches are computed on first access (they are
// diagnostics, not hot-path state, so construction never pays for them);
// the sync.Once guard keeps a shard.CSR safe for concurrent use.
type CSR struct {
	base   *wgraph.CSR
	plan   Plan
	once   sync.Once
	shards []Shard
	// segOnce/segs lazily cache the serializable per-shard Segments
	// (see segment.go) — derived immutable views, like shards above.
	segOnce sync.Once
	segs    []*Segment
}

var (
	_ wgraph.View      = (*CSR)(nil)
	_ wgraph.CSRBacked = (*CSR)(nil)
)

// Partition shards c by an edge-balanced row plan. shards <= 0 means
// GOMAXPROCS. The result shares c's arrays (zero copy).
func Partition(c *wgraph.CSR, shards int) *CSR {
	return WithPlan(c, PlanRows(c, shards))
}

// WithPlan shards c by an explicit plan. Per-shard aggregates are
// populated lazily on first Shards()/Shard() access.
func WithPlan(c *wgraph.CSR, p Plan) *CSR {
	return &CSR{base: c, plan: p}
}

// initShards computes the per-shard aggregate caches. Rows are ascending
// within each CSR row, so a row's owned entries (neighbors above the row
// id) are a suffix found by a short backward walk — the edge and weight
// caches cost O(rows + owned entries) instead of a branch on every
// adjacency entry. The weight accumulation order (row-major, ascending
// within each suffix) matches the historical full scan, so the cached
// floats are unchanged.
func (s *CSR) initShards() {
	c, p := s.base, s.plan
	offsets, nbrs, wts := c.Adj()
	s.shards = make([]Shard, p.NumShards())
	for i := range s.shards {
		lo, hi := p.Bounds(i)
		sh := &s.shards[i]
		sh.Lo, sh.Hi = lo, hi
		sh.Offsets = offsets[lo : hi+1]
		sh.Nbrs = nbrs[offsets[lo]:offsets[hi]]
		sh.Wts = wts[offsets[lo]:offsets[hi]]
		sh.Entries = len(sh.Nbrs)
		for u := lo; u < hi; u++ {
			sh.DegTotal += c.WeightedDegree(u)
			rl, rh := offsets[u], offsets[u+1]
			// The owned suffix boundary, found walking backward so only
			// owned entries (plus one probe) are touched.
			j := rh
			for j > rl && nbrs[j-1] > u {
				j--
			}
			sh.Edges += int(rh - j)
			for ; j < rh; j++ {
				sh.Weight += wts[j]
			}
		}
	}
}

// minChunkEdges is the smallest per-worker edge chunk worth spawning a
// goroutine for during construction; below it the serial fast path wins.
const minChunkEdges = 2048

// FromEdges builds a sharded CSR directly from a canonical edge list
// (every edge once with U < V, sorted by (U,V), no duplicates — exactly
// wgraph.FromEdges' contract, validated identically, with the same
// deterministic first-offender errors). Construction is fully
// partition-parallel: validation, row counting, the canonical weight
// total (a fixed-shape blocked reduction, see wgraph.SumEdgeWeights) and
// the fill all split the edge list into U-aligned chunks, and every
// chunk worker touches only its own edges — the V-side scatter lands on
// precomputed per-chunk cursors instead of re-scanning the whole list —
// so total work is O(E + W·n) for any worker count. The emitted arrays,
// cached aggregates and plan are byte-identical to the serial
// wgraph.FromEdges build for every shard and worker count.
func FromEdges(n int, edges []wgraph.Edge, shards int) (*CSR, error) {
	return fromEdges(n, edges, shards, 0)
}

// fromEdges is FromEdges with an explicit construction worker count
// (<= 0 picks min(GOMAXPROCS, plan width), clamped so no chunk drops
// below minChunkEdges; tests force > 1 to exercise the chunked path on
// any machine). Output is byte-identical for every worker count.
func fromEdges(n int, edges []wgraph.Edge, shards, workers int) (*CSR, error) {
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if pw := clampShards(shards, n); pw < w {
			w = pw
		}
		if maxW := len(edges) / minChunkEdges; w > maxW {
			w = maxW
		}
		// The chunked path's per-chunk V-side counters cost w·n int32s
		// and an O(w·n) stitch; cap w so that stays proportional to the
		// output arrays (4E entries) rather than core count on huge
		// sparse graphs.
		if n > 0 {
			if maxW := 4 * len(edges) / n; w > maxW {
				w = maxW
			}
		}
	}
	if w < 1 {
		w = 1
	}

	offsets := make([]int32, n+1)
	nbrs := make([]int32, 2*len(edges))
	wts := make([]float64, 2*len(edges))
	wdeg := make([]float64, n)
	var total float64
	var err error
	if w == 1 {
		total, err = fillSerial(n, edges, offsets, nbrs, wts, wdeg)
	} else {
		total, err = fillChunked(n, edges, w, offsets, nbrs, wts, wdeg)
	}
	if err != nil {
		return nil, err
	}
	base, err := wgraph.FromParts(offsets, nbrs, wts, wdeg, total)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	return WithPlan(base, planOffsets(offsets, shards)), nil
}

// CSRFromParts adopts prebuilt CSR arrays (wgraph.FromParts' contract:
// offsets/nbrs/wts/wdeg fully formed, total the canonical blocked weight
// sum) and wraps them in an edge-balanced plan identical to the one
// FromEdges would have produced for the same arrays. This is the patch
// path used by incremental rebuilds: a delta merge that materializes the
// next frozen CSR directly — untouched row spans copied wholesale from
// the previous build — lands here instead of re-running FromEdges.
func CSRFromParts(offsets, nbrs []int32, wts, wdeg []float64, total float64, shards int) (*CSR, error) {
	base, err := wgraph.FromParts(offsets, nbrs, wts, wdeg, total)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	return WithPlan(base, planOffsets(offsets, shards)), nil
}

// fillSerial is the one-worker construction. It beats the interleaved
// serial wgraph.FromEdges fill on one core by exploiting the U-sorted
// input: edges are scanned as U runs, so the count pass stores each U
// degree once per run instead of incrementing per edge, and the fill
// pass keeps the U-side cursor and the row's weighted-degree accumulator
// in registers. Per-row float orders are untouched — a row's V-side
// addends (ascending U) all land in runs before its own run starts, then
// its U-side addends follow in ascending V, the exact order of the
// interleaved serial fill — so every emitted float is byte-identical.
func fillSerial(n int, edges []wgraph.Edge, offsets, nbrs []int32, wts, wdeg []float64) (float64, error) {
	degV := make([]int32, n)
	degU := make([]int32, n)
	// The canonical blocked weight total (see wgraph sum.go).
	var sums []float64
	partial, bcnt := 0.0, 0
	// Validation is fused over run-tracked register values — within a run
	// only (V ascending, V > U, V in range) needs checking, run starts
	// additionally check U order and range. The checks are equivalent to
	// wgraph.ValidateEdgeAt at every index, which rebuilds the exact
	// deterministic first-offender error on the cold path.
	prevU := int32(-1)
	for i := 0; i < len(edges); {
		u := edges[i].U
		if u <= prevU || u < 0 {
			return 0, wgraph.ValidateEdgeAt(n, edges, i)
		}
		prevU = u
		prevV := u // canonical requires V > U
		run := int32(0)
		for ; i < len(edges) && edges[i].U == u; i++ {
			e := edges[i]
			if e.V <= prevV || int(e.V) >= n {
				return 0, wgraph.ValidateEdgeAt(n, edges, i)
			}
			prevV = e.V
			degV[e.V]++
			run++
			partial += e.W
			if bcnt++; bcnt == wgraph.WeightSumBlockSize {
				sums = append(sums, partial)
				partial, bcnt = 0, 0
			}
		}
		degU[u] = run
	}

	// Offsets, plus cursor repurposing: degV[u] becomes row u's V-side
	// fill cursor (row start — V-side entries lead every row) and
	// degU[u] its U-side base (row start + V-side width).
	off := int32(0)
	for u := 0; u < n; u++ {
		offsets[u] = off
		ubase := off + degV[u]
		degV[u] = off
		off = ubase + degU[u]
		degU[u] = ubase
	}
	offsets[n] = off

	// Single fused fill, iterated by row: row u's U-side run length is
	// offsets[u+1]-degU[u], so no per-edge run-boundary compare is
	// needed. By the time row u's run starts, every V-side entry and
	// weighted-degree contribution of the row has already been written
	// (their edges have U < u), so the run loads the row's weighted
	// degree into a register, appends its U-side entries sequentially,
	// and stores the final value once.
	i := 0
	for u := int32(0); i < len(edges); u++ {
		p := degU[u]
		rl := offsets[u+1] - p
		if rl == 0 {
			continue
		}
		s := wdeg[u]
		for ; rl > 0; rl-- {
			e := edges[i]
			i++
			nbrs[p] = e.V
			wts[p] = e.W
			p++
			s += e.W
			q := degV[e.V]
			nbrs[q] = e.U
			wts[q] = e.W
			degV[e.V] = q + 1
			wdeg[e.V] += e.W
		}
		wdeg[u] = s
	}
	if bcnt > 0 {
		sums = append(sums, partial)
	}
	return wgraph.FoldWeightBlocks(sums), nil
}

// fillChunked is the multi-worker construction over U-aligned contiguous
// edge chunks (no row is split across chunks, so U-side writes are
// chunk-exclusive). Four parallel passes — validate+V-count+block-sums,
// U-count, fill, weighted-degree fold — with one serial O(W·n) stitch
// computing offsets and per-chunk V-side cursor bases in between. All
// writes are owner-partitioned (per-chunk cursor arrays for the V-side
// scatter), so no atomics are needed and the layout is deterministic.
func fillChunked(n int, edges []wgraph.Edge, w int, offsets, nbrs []int32, wts, wdeg []float64) (float64, error) {
	// U-aligned chunk cuts: advance each tentative cut to the next U
	// change so chunk U-ranges are disjoint once sortedness is certified.
	cuts := make([]int, w+1)
	cuts[w] = len(edges)
	for c := 1; c < w; c++ {
		cut := c * len(edges) / w
		if cut < cuts[c-1] {
			cut = cuts[c-1]
		}
		for cut > 0 && cut < len(edges) && edges[cut].U == edges[cut-1].U {
			cut++
		}
		cuts[c] = cut
	}

	// Claim disjoint U intervals per chunk before any worker runs: on
	// valid input the clamps are no-ops (U-aligned cuts make the natural
	// intervals disjoint), on invalid input they only restrict where a
	// chunk may write shared U-side state — so the counting below is
	// race-free even before sortedness is certified, and wrong counts on
	// invalid input are discarded with the error anyway.
	uLo := make([]int32, w)
	uHi := make([]int32, w)
	claimed := int32(-1)
	for c := 0; c < w; c++ {
		lo, hi := cuts[c], cuts[c+1]
		if lo >= hi {
			uLo[c], uHi[c] = 0, -1
			continue
		}
		l, h := edges[lo].U, edges[hi-1].U
		if l <= claimed {
			l = claimed + 1
		}
		uLo[c], uHi[c] = l, h
		if h > claimed {
			claimed = h
		}
	}

	// Pass 1: per-chunk validation (stopping at the chunk's first
	// offender, register-fused like the serial path), per-chunk V-side
	// counts (chunk-local arrays), run-based U-side degrees (each chunk
	// writes only its claimed interval), and the canonical blocked
	// weight total (fixed WeightSumBlockSize blocks split by block
	// index, so the reduction shape — and the float result — never
	// depends on w).
	cntV := make([][]int32, w)
	cntBacking := make([]int32, w*n)
	for c := range cntV {
		cntV[c] = cntBacking[c*n : (c+1)*n]
	}
	degU := make([]int32, n)
	nb := (len(edges) + wgraph.WeightSumBlockSize - 1) / wgraph.WeightSumBlockSize
	blockSums := make([]float64, nb)
	badIdx := make([]int, w)
	badErr := make([]error, w)
	var wg sync.WaitGroup
	for c := 0; c < w; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			badIdx[c] = -1
			cv := cntV[c]
			lo, hi := cuts[c], cuts[c+1]
			prevU := int32(-1)
			if lo > 0 {
				prevU = edges[lo-1].U
			}
			for i := lo; i < hi; {
				u := edges[i].U
				if u <= prevU || u < 0 {
					// Cross-chunk boundary pairs are checked here too:
					// prevU seeds from the previous chunk's last edge.
					badIdx[c], badErr[c] = i, wgraph.ValidateEdgeAt(n, edges, i)
					return
				}
				prevU = u
				prevV := u // canonical requires V > U; cuts never split a U run
				run := int32(0)
				for ; i < hi && edges[i].U == u; i++ {
					e := edges[i]
					if e.V <= prevV || int(e.V) >= n {
						badIdx[c], badErr[c] = i, wgraph.ValidateEdgeAt(n, edges, i)
						return
					}
					prevV = e.V
					cv[e.V]++
					run++
				}
				if u >= uLo[c] && u <= uHi[c] {
					degU[u] = run
				}
			}
			for b := c * nb / w; b < (c+1)*nb/w; b++ {
				blo := b * wgraph.WeightSumBlockSize
				bhi := min(blo+wgraph.WeightSumBlockSize, len(edges))
				var s float64
				for _, e := range edges[blo:bhi] {
					s += e.W
				}
				blockSums[b] = s
			}
		}(c)
	}
	wg.Wait()
	firstBad := -1
	for c := 0; c < w; c++ {
		// Chunks cover ascending index ranges, so the first chunk with an
		// offender holds the globally first one — the serial error.
		if badIdx[c] >= 0 {
			firstBad = c
			break
		}
	}
	if firstBad >= 0 {
		return 0, badErr[firstBad]
	}
	total := wgraph.FoldWeightBlocks(blockSums)

	// Stitch: one serial O(w·n) walk computes the row offsets and turns
	// each cntV[c][u] into chunk c's starting V-side cursor for row u
	// (row start + the V-side width of all earlier chunks), and degU[u]
	// into the row's U-side fill base.
	off := int32(0)
	for u := 0; u < n; u++ {
		offsets[u] = off
		acc := off
		for c := 0; c < w; c++ {
			t := cntV[c][u]
			cntV[c][u] = acc
			acc += t
		}
		off = acc + degU[u]
		degU[u] = acc
	}
	offsets[n] = off

	// Pass 3: fill. V-side scatter through the per-chunk cursors, then
	// the run-sequential U-side append from each chunk's own rows. Every
	// write position is owner-unique, and chunk c's V-side entries for a
	// row land exactly after the entries of chunks < c — reproducing the
	// input-order (ascending U) V-side layout of the serial fill.
	for c := 0; c < w; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cur := cntV[c]
			for i := cuts[c]; i < cuts[c+1]; i++ {
				e := edges[i]
				p := cur[e.V]
				nbrs[p] = e.U
				wts[p] = e.W
				cur[e.V] = p + 1
			}
			for i := cuts[c]; i < cuts[c+1]; {
				u := edges[i].U
				p := degU[u]
				for ; i < cuts[c+1] && edges[i].U == u; i++ {
					nbrs[p] = edges[i].V
					wts[p] = edges[i].W
					p++
				}
			}
		}(c)
	}
	wg.Wait()

	// Pass 4: weighted degrees by streaming row folds over disjoint row
	// ranges. A finished row is V-side entries (ascending U) then U-side
	// entries (ascending V) — the exact addend order of the serial
	// interleaved accumulation, so the floats are byte-identical.
	for c := 0; c < w; c++ {
		lo, hi := int32(c*n/w), int32((c+1)*n/w)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			rowFoldWdeg(offsets, wts, wdeg, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return total, nil
}

// rowFoldWdeg fills wdeg[lo:hi) with the left fold of each row's weights.
func rowFoldWdeg(offsets []int32, wts, wdeg []float64, lo, hi int32) {
	for u := lo; u < hi; u++ {
		var s float64
		for j := offsets[u]; j < offsets[u+1]; j++ {
			s += wts[j]
		}
		wdeg[u] = s
	}
}

// planOffsets is PlanCounts reading per-row counts from a CSR offsets
// prefix (counts[u] = offsets[u+1]-offsets[u]); bound placement is
// identical, the intermediate counts array just never materializes.
func planOffsets(offsets []int32, shards int) Plan {
	n := len(offsets) - 1
	shards = clampShards(shards, n)
	total := int64(offsets[n])
	bounds := make([]int32, shards+1)
	bounds[shards] = int32(n)
	next := 1
	for u := 0; u < n && next < shards; u++ {
		prefix := int64(offsets[u+1])
		for next < shards && prefix*int64(shards) >= total*int64(next) {
			bounds[next] = int32(u + 1)
			next++
		}
	}
	for ; next < shards; next++ {
		bounds[next] = int32(n)
	}
	return Plan{bounds: bounds}
}

// BaseCSR returns the underlying frozen CSR (wgraph.CSRBacked).
func (s *CSR) BaseCSR() *wgraph.CSR { return s.base }

// Plan returns the row partition.
func (s *CSR) Plan() Plan { return s.plan }

// NumShards returns the number of shards.
func (s *CSR) NumShards() int { return s.plan.NumShards() }

// Shards returns the per-shard views with their cached aggregates,
// computing them on first call. Read-only.
func (s *CSR) Shards() []Shard {
	s.once.Do(s.initShards)
	return s.shards
}

// Shard returns shard i (aggregates computed on first access).
func (s *CSR) Shard(i int) Shard {
	s.once.Do(s.initShards)
	return s.shards[i]
}

// --- wgraph.View delegation ------------------------------------------

// NumNodes returns the number of nodes (including isolated ones).
func (s *CSR) NumNodes() int { return s.base.NumNodes() }

// NumEdges returns the number of undirected edges.
func (s *CSR) NumEdges() int { return s.base.NumEdges() }

// Weight returns the weight of edge (u,v) and whether it exists.
func (s *CSR) Weight(u, v int32) (float64, bool) { return s.base.Weight(u, v) }

// Degree returns the number of neighbors of u.
func (s *CSR) Degree(u int32) int { return s.base.Degree(u) }

// WeightedDegree returns the cached sum of incident edge weights of u.
func (s *CSR) WeightedDegree(u int32) float64 { return s.base.WeightedDegree(u) }

// TotalWeight returns the cached total edge weight.
func (s *CSR) TotalWeight() float64 { return s.base.TotalWeight() }

// Neighbors returns u's ascending neighbor ids as a zero-copy view.
func (s *CSR) Neighbors(u int32) []int32 { return s.base.Neighbors(u) }

// ForEachNeighbor calls fn for every neighbor of u in ascending order.
func (s *CSR) ForEachNeighbor(u int32, fn func(v int32, w float64)) {
	s.base.ForEachNeighbor(u, fn)
}

// Edges returns every edge once, sorted by (U,V).
func (s *CSR) Edges() []wgraph.Edge { return s.base.Edges() }

// Components returns the connected-component labeling.
func (s *CSR) Components() []int32 { return s.base.Components() }
