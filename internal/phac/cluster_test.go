package phac

import (
	"context"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"shoal/internal/bsp"
	"shoal/internal/dendrogram"
	"shoal/internal/hac"
	"shoal/internal/shard"
	"shoal/internal/wgraph"
)

func twoClusters(t testing.TB) *wgraph.Graph {
	g := wgraph.New(6)
	edges := []wgraph.Edge{
		{U: 0, V: 1, W: 0.9}, {U: 1, V: 2, W: 0.85}, {U: 0, V: 2, W: 0.88},
		{U: 3, V: 4, W: 0.8}, {U: 4, V: 5, W: 0.78}, {U: 3, V: 5, W: 0.82},
		{U: 2, V: 3, W: 0.2},
	}
	for _, e := range edges {
		if err := g.SetEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestClusterTwoCommunities(t *testing.T) {
	g := twoClusters(t)
	res, err := Cluster(context.Background(), g, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Dendrogram
	if err := d.Validate(); err != nil {
		t.Fatalf("invalid dendrogram: %v", err)
	}
	labels := d.CutAt(0.35)
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatalf("left triangle split: %v", labels)
	}
	if labels[3] != labels[4] || labels[4] != labels[5] {
		t.Fatalf("right triangle split: %v", labels)
	}
	if labels[0] == labels[3] {
		t.Fatalf("bridge merged: %v", labels)
	}
}

func TestClusterEq4Update(t *testing.T) {
	// A=0,B=1,C=2: S(A,B)=0.9, S(A,C)=0.6, S(B,C) missing.
	// Round 0 merges (A,B); S(AB,C) = 0.5*0.6 + 0.5*0 = 0.3.
	g := wgraph.New(3)
	if err := g.SetEdge(0, 1, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := g.SetEdge(0, 2, 0.6); err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.05, DiffusionRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dendrogram.Merges) != 2 {
		t.Fatalf("merges = %d, want 2", len(res.Dendrogram.Merges))
	}
	if math.Abs(res.Dendrogram.Merges[1].Sim-0.3) > 1e-12 {
		t.Fatalf("S(AB,C) = %f, want 0.3", res.Dendrogram.Merges[1].Sim)
	}
}

func TestClusterBothEndpointsMergedCompose(t *testing.T) {
	// Two pairs merge in the same round: (0,1) and (2,3), with cross
	// edges. Sequential Eq. 4 applied twice gives
	// S(01,23) = 0.5*0.5*(S02+S03+S12+S13).
	g := wgraph.New(4)
	edges := []wgraph.Edge{
		{U: 0, V: 1, W: 0.9}, {U: 2, V: 3, W: 0.88},
		{U: 0, V: 2, W: 0.4}, {U: 0, V: 3, W: 0.36},
		{U: 1, V: 2, W: 0.44}, {U: 1, V: 3, W: 0.4},
	}
	for _, e := range edges {
		if err := g.SetEdge(e.U, e.V, e.W); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.05, DiffusionRounds: 0})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Dendrogram
	if len(d.Merges) < 2 {
		t.Fatalf("merges = %d, want >= 2", len(d.Merges))
	}
	// Round 0 must select both pairs (each is mutually maximal).
	if d.Merges[0].Round != 0 || d.Merges[1].Round != 0 {
		t.Fatalf("first two merges not in round 0: %+v", d.Merges[:2])
	}
	want := 0.25 * (0.4 + 0.36 + 0.44 + 0.4)
	if len(d.Merges) != 3 {
		t.Fatalf("merges = %d, want 3", len(d.Merges))
	}
	if math.Abs(d.Merges[2].Sim-want) > 1e-12 {
		t.Fatalf("S(01,23) = %f, want %f", d.Merges[2].Sim, want)
	}
}

func TestClusterWeightedSizes(t *testing.T) {
	// nA=4, nB=1: weights 2/3, 1/3. S(AB,C) = 2/3*0.6 + 1/3*0.3 = 0.5.
	g := wgraph.New(3)
	_ = g.SetEdge(0, 1, 0.9)
	_ = g.SetEdge(0, 2, 0.6)
	_ = g.SetEdge(1, 2, 0.3)
	res, err := Cluster(context.Background(), g, []int{4, 1, 1}, Config{StopThreshold: 0.05, DiffusionRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Dendrogram
	if len(d.Merges) != 2 {
		t.Fatalf("merges = %d, want 2", len(d.Merges))
	}
	if math.Abs(d.Merges[1].Sim-0.5) > 1e-12 {
		t.Fatalf("S(AB,C) = %f, want 0.5", d.Merges[1].Sim)
	}
}

func TestClusterLinkageAblation(t *testing.T) {
	g := wgraph.New(3)
	_ = g.SetEdge(0, 1, 0.9)
	_ = g.SetEdge(0, 2, 0.6)
	_ = g.SetEdge(1, 2, 0.3)
	sizes := []int{4, 1, 1}
	cases := []struct {
		linkage Linkage
		want    float64
	}{
		{LinkageSqrtSize, 2.0/3*0.6 + 1.0/3*0.3},
		{LinkageUnweighted, 0.5*0.6 + 0.5*0.3},
		{LinkageSizeProportional, 0.8*0.6 + 0.2*0.3},
	}
	for _, tc := range cases {
		res, err := Cluster(context.Background(), g, sizes, Config{StopThreshold: 0.05, DiffusionRounds: 1, Linkage: tc.linkage})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Dendrogram.Merges[1].Sim
		if math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("%v: S(AB,C) = %f, want %f", tc.linkage, got, tc.want)
		}
	}
}

func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomGraph(120, 300, seed)
		var first *Result
		for _, workers := range []int{1, 2, 7} {
			cfg := Config{StopThreshold: 0.3, DiffusionRounds: 2, Workers: workers}
			res, err := Cluster(context.Background(), g, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = res
				continue
			}
			if !reflect.DeepEqual(first.Dendrogram, res.Dendrogram) {
				t.Fatalf("seed %d: workers=%d changed the dendrogram", seed, workers)
			}
		}
	}
}

func TestClusterStopThreshold(t *testing.T) {
	g := twoClusters(t)
	res, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.95, DiffusionRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dendrogram.Merges) != 0 {
		t.Fatalf("merged above threshold: %v", res.Dendrogram.Merges)
	}
}

func TestClusterMaxRounds(t *testing.T) {
	g := twoClusters(t)
	res, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.1, DiffusionRounds: 2, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1", len(res.Rounds))
	}
}

func TestClusterErrors(t *testing.T) {
	g := twoClusters(t)
	if _, err := Cluster(context.Background(), wgraph.New(0), nil, DefaultConfig()); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 2, DiffusionRounds: 1}); err == nil {
		t.Fatal("bad threshold accepted")
	}
	if _, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.3, DiffusionRounds: -1}); err == nil {
		t.Fatal("negative rounds accepted")
	}
	if _, err := Cluster(context.Background(), g, []int{1}, DefaultConfig()); err == nil {
		t.Fatal("bad sizes length accepted")
	}
	if _, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.3, DiffusionRounds: 1, Linkage: Linkage(9)}); err == nil {
		t.Fatal("unknown linkage accepted")
	}
}

func TestClusterDoesNotModifyInput(t *testing.T) {
	g := twoClusters(t)
	before := g.Edges()
	if _, err := Cluster(context.Background(), g, nil, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, g.Edges()) {
		t.Fatal("Cluster modified the input graph")
	}
}

// With many diffusion rounds on a small graph, Parallel HAC degenerates to
// selecting (almost) one global max per round — its dendrogram must then
// agree with sequential HAC's merge set.
func TestClusterAgreesWithSequentialAtHighR(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomGraph(24, 40, seed)
		pres, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.4, DiffusionRounds: 64})
		if err != nil {
			t.Fatal(err)
		}
		sres, err := hac.Cluster(g, nil, hac.Config{StopThreshold: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		// Compare partitions (merge order may differ; the flat cut at the
		// stop threshold must match).
		pl := pres.Dendrogram.CutAt(0.4)
		sl := sres.CutAt(0.4)
		if !samePartition(pl, sl) {
			t.Fatalf("seed %d: partitions differ\nparallel:   %v\nsequential: %v", seed, pl, sl)
		}
	}
}

// samePartition reports whether two labelings induce the same partition.
func samePartition(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int32]int32)
	bwd := make(map[int32]int32)
	for i := range a {
		if la, ok := fwd[a[i]]; ok && la != b[i] {
			return false
		}
		if lb, ok := bwd[b[i]]; ok && lb != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		bwd[b[i]] = a[i]
	}
	return true
}

// Property: every merge similarity is within [0,1] and dendrograms are
// always well-formed on random graphs.
func TestClusterWellFormedProperty(t *testing.T) {
	f := func(seed uint64, rRaw uint8) bool {
		g := randomGraph(40, 80, seed)
		r := int(rRaw % 5)
		res, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.25, DiffusionRounds: r})
		if err != nil {
			return false
		}
		if err := res.Dendrogram.Validate(); err != nil {
			return false
		}
		for _, m := range res.Dendrogram.Merges {
			if m.Sim < 0.25-1e-12 || m.Sim > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Round-0 selection of Cluster must agree with the standalone Diffuse on
// the same graph (integration between the two code paths).
func TestClusterFirstRoundMatchesDiffuse(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := randomGraph(60, 150, seed)
		sel, err := Diffuse(g, 2, 0.3, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.3, DiffusionRounds: 2, MaxRounds: 1})
		if err != nil {
			t.Fatal(err)
		}
		var got []Edge
		for _, m := range res.Dendrogram.Merges {
			got = append(got, Edge{U: m.A, V: m.B, Sim: m.Sim})
		}
		if !reflect.DeepEqual(sel, got) {
			t.Fatalf("seed %d: Diffuse=%v Cluster round 0=%v", seed, sel, got)
		}
	}
}

func TestDiffuseBSPUnderChaos(t *testing.T) {
	g := figure3(t)
	want, err := Diffuse(g, 2, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 4; seed++ {
		for _, chaos := range []*bsp.Chaos{
			{Seed: seed, ShuffleInbox: true},
			{Seed: seed, StallBatches: true},
			{Seed: seed, ShuffleInbox: true, StallBatches: true},
		} {
			got, err := DiffuseBSP(g, 2, 0.3, bsp.Config{Workers: 3, Chaos: chaos})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("chaos seed %d %+v changed diffusion result: %v vs %v", seed, chaos, got, want)
			}
		}
	}
}

// Combiner + vote-to-halt must keep DiffuseBSP byte-identical under
// adversarial delivery for every shard count × worker count × chaos seed
// combination on larger random graphs — the acceptance matrix of the
// shard-native engine.
func TestDiffuseBSPChaosMatrix(t *testing.T) {
	for gseed := uint64(1); gseed <= 3; gseed++ {
		g := randomGraph(60, 150, gseed)
		base := g.Freeze()
		want, err := Diffuse(base, 2, 0.3, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 5} {
			sc := shard.Partition(base, shards)
			for seed := uint64(1); seed <= 3; seed++ {
				got, err := DiffuseBSP(sc, 2, 0.3, bsp.Config{
					Chaos: &bsp.Chaos{Seed: seed, ShuffleInbox: true, StallBatches: true},
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("graph %d shards %d chaos %d: result changed", gseed, shards, seed)
				}
			}
		}
		// Worker dimension: a plain CSR is partitioned by cfg.Workers, so
		// this leg varies the engine width independently of the shard leg
		// above (and workers=1 exercises the pooled single-shard path).
		for _, workers := range []int{1, 3} {
			for seed := uint64(1); seed <= 2; seed++ {
				var chaos *bsp.Chaos
				if workers > 1 {
					chaos = &bsp.Chaos{Seed: seed, ShuffleInbox: true, StallBatches: true}
				}
				got, err := DiffuseBSP(base, 2, 0.3, bsp.Config{Workers: workers, Chaos: chaos})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("graph %d workers %d chaos seed %d: result changed", gseed, workers, seed)
				}
			}
		}
	}
}

// Repeated single-shard DiffuseBSP calls are served by pooled persistent
// engines rebound to each call's graph. Pooled reuse must be invisible
// in the output — every call byte-identical to the first — and visible
// in the stats: once a pooled engine is picked up again its lifetime
// RunsServed exceeds 1.
func TestDiffuseBSPPooledReuse(t *testing.T) {
	g := randomGraph(50, 120, 7)
	base := g.Freeze()
	want, stats, err := DiffuseBSPStats(base, 2, 0.3, bsp.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	maxRuns := stats.RunsServed
	for i := 0; i < 20; i++ {
		// Alternate graph sizes so reuse exercises the rebind path in
		// both directions, not just a same-shape rerun.
		gi := base
		wanti := want
		if i%2 == 1 {
			gi = randomGraph(30, 60, 9).Freeze()
			if wanti, err = Diffuse(gi, 2, 0.3, 1); err != nil {
				t.Fatal(err)
			}
		}
		got, stats, err := DiffuseBSPStats(gi, 2, 0.3, bsp.Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wanti, got) {
			t.Fatalf("call %d: pooled engine changed the result", i)
		}
		if stats.RunsServed > maxRuns {
			maxRuns = stats.RunsServed
		}
	}
	// The pool is a sync.Pool, so any single item can be GC-dropped; over
	// 21 sequential calls at least one reuse must have happened.
	if maxRuns < 2 {
		t.Fatalf("no pooled engine was ever reused: max RunsServed = %d", maxRuns)
	}
}

// Routing every clustering round's diffusion through the BSP engine must
// leave the clustering byte-identical, for any partition width and under
// adversarial delivery — and the whole clustering must be served by ONE
// persistent engine carried across merge rounds through Rebind, so the
// aggregated stats record rounds-1 rebinds and a run per round.
func TestClusterBSPMatches(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := randomGraph(70, 200, seed)
		want, err := Cluster(context.Background(), g, nil, Config{StopThreshold: 0.25, DiffusionRounds: 2})
		if err != nil {
			t.Fatal(err)
		}
		if want.BSP != nil {
			t.Fatalf("seed %d: shared-memory run reported BSP stats", seed)
		}
		for _, shards := range []int{1, 3} {
			for _, chaos := range []*bsp.Chaos{
				nil,
				{Seed: seed, ShuffleInbox: true, StallBatches: true},
			} {
				got, err := Cluster(context.Background(), g, nil, Config{
					StopThreshold: 0.25, DiffusionRounds: 2, Shards: shards,
					UseBSP: true, BSPChaos: chaos,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want.Dendrogram, got.Dendrogram) {
					t.Fatalf("seed %d shards %d chaos %v: BSP clustering dendrogram differs", seed, shards, chaos)
				}
				if !reflect.DeepEqual(want.Rounds, got.Rounds) {
					t.Fatalf("seed %d shards %d chaos %v: BSP round stats differ: %v vs %v",
						seed, shards, chaos, want.Rounds, got.Rounds)
				}
				if got.BSP == nil || got.BSP.Supersteps == 0 {
					t.Fatalf("seed %d shards %d: BSP stats not aggregated", seed, shards)
				}
				rounds := len(got.Rounds)
				if got.BSP.RunsServed < rounds {
					t.Fatalf("seed %d shards %d: engine served %d runs over %d rounds — a fresh engine per round",
						seed, shards, got.BSP.RunsServed, rounds)
				}
				if got.BSP.Rebinds < rounds-1 {
					t.Fatalf("seed %d shards %d: %d rebinds over %d rounds — rounds did not reuse the engine",
						seed, shards, got.BSP.Rebinds, rounds)
				}
				if rounds > 1 && got.BSP.PeakRetainedBytes <= 0 {
					t.Fatalf("seed %d shards %d: reused engine retained no buffers", seed, shards)
				}
				// Cross-round memoization: every run after the first is
				// seeded from the merge's dirty rows, the first superstep
				// is the only all-rows one, and the whole trajectory
				// computes strictly less than the recompute-everything
				// model (each run visiting every alive row for all
				// DiffusionRounds+1 supersteps).
				if got.BSP.SeededRuns != got.BSP.RunsServed-1 {
					t.Fatalf("seed %d shards %d: SeededRuns = %d over %d runs — every round after the first must seed",
						seed, shards, got.BSP.SeededRuns, got.BSP.RunsServed)
				}
				if got.BSP.ActivePerStep[0] != 70 {
					t.Fatalf("seed %d shards %d: first superstep computed %d rows, want all 70",
						seed, shards, got.BSP.ActivePerStep[0])
				}
				if rounds >= 2 {
					var computed int64
					for _, a := range got.BSP.ActivePerStep {
						computed += int64(a)
					}
					const per = 3 // DiffusionRounds+1 supersteps per run
					var naive int64
					for _, r := range got.Rounds {
						naive += int64(r.ActiveClusters) * per
					}
					last := got.Rounds[rounds-1]
					naive += int64(last.ActiveClusters-last.Selected) * per // final, non-merging run
					if computed >= naive {
						t.Fatalf("seed %d shards %d: %d rows computed >= %d of the all-rows model — trajectory did not shrink after round 1",
							seed, shards, computed, naive)
					}
				}
			}
		}
	}
}

func TestDiffuseErrors(t *testing.T) {
	g := figure3(t)
	if _, err := Diffuse(wgraph.New(0), 2, 0.3, 1); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := Diffuse(g, -1, 0.3, 1); err == nil {
		t.Fatal("negative rounds accepted")
	}
	if _, err := DiffuseBSP(wgraph.New(0), 2, 0.3, bsp.Config{}); err == nil {
		t.Fatal("empty graph accepted by BSP variant")
	}
	if _, err := DiffuseBSP(g, -2, 0.3, bsp.Config{}); err == nil {
		t.Fatal("negative rounds accepted by BSP variant")
	}
}

// Dendrogram sizes must equal the sum of initial sizes along merges.
func TestClusterSizeBookkeeping(t *testing.T) {
	g := twoClusters(t)
	sizes := []int{2, 3, 1, 5, 1, 2}
	res, err := Cluster(context.Background(), g, sizes, Config{StopThreshold: 0.1, DiffusionRounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Dendrogram
	var total int
	for _, root := range d.Roots() {
		for _, leaf := range d.Members(root) {
			total += sizes[leaf]
		}
	}
	want := 0
	for _, s := range sizes {
		want += s
	}
	if total != want {
		t.Fatalf("size mass = %d, want %d", total, want)
	}
}

var _ = dendrogram.Merge{} // keep import when tests shrink
