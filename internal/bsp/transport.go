package bsp

import "fmt"

// Envelope is one routed message: a destination vertex and its payload.
type Envelope[M any] struct {
	To  VertexID
	Msg M
}

// Transport moves one superstep's cross-shard message batches — the seam
// where a network transport plugs in once shards live on separate hosts
// (shard.Segment is the matching serializable placement unit).
//
// Contract: the engine calls Send during the compute phase, concurrently
// for distinct source shards, once per non-empty (source, dest) pair;
// then, after the superstep barrier, Recv concurrently for distinct
// destination shards. Recv must return dst's batches in ascending
// source-shard order (the engine's canonical delivery order) and forget
// them — a batch is delivered exactly once. Batches are owned by the
// engine and reused after the next barrier, so a remote implementation
// must copy or serialize inside Send. At the start of every Run the
// engine additionally calls Recv once per destination and discards the
// result, draining batches a previously aborted run may have left
// undelivered.
type Transport[M any] interface {
	Send(step, src, dst int, batch []Envelope[M]) error
	Recv(step, dst int) ([][]Envelope[M], error)
}

// Loopback is the in-process Transport: batches move by reference
// through a (source, dest) mailbox matrix. Send writes row src (each
// source worker owns its row); Recv drains column dst after the barrier.
// The per-destination collect buffers are reused, so steady-state
// supersteps allocate nothing.
type Loopback[M any] struct {
	shards int
	slots  [][][]Envelope[M] // [src][dst] -> batch
	recv   [][][]Envelope[M] // [dst] reusable collect scratch
}

// NewLoopback creates a loopback transport for the given shard count.
func NewLoopback[M any](shards int) *Loopback[M] {
	l := &Loopback[M]{shards: shards}
	l.slots = make([][][]Envelope[M], shards)
	l.recv = make([][][]Envelope[M], shards)
	for i := range l.slots {
		l.slots[i] = make([][]Envelope[M], shards)
		l.recv[i] = make([][]Envelope[M], 0, shards)
	}
	return l
}

// Send records src's batch for dst. Safe for concurrent use across
// distinct src values.
func (l *Loopback[M]) Send(step, src, dst int, batch []Envelope[M]) error {
	if src < 0 || src >= l.shards || dst < 0 || dst >= l.shards {
		return fmt.Errorf("bsp: loopback send %d->%d outside %d shards", src, dst, l.shards)
	}
	l.slots[src][dst] = batch
	return nil
}

// Recv drains and returns dst's batches in ascending source order. Safe
// for concurrent use across distinct dst values.
func (l *Loopback[M]) Recv(step, dst int) ([][]Envelope[M], error) {
	if dst < 0 || dst >= l.shards {
		return nil, fmt.Errorf("bsp: loopback recv for shard %d outside %d shards", dst, l.shards)
	}
	out := l.recv[dst][:0]
	for src := 0; src < l.shards; src++ {
		if b := l.slots[src][dst]; len(b) > 0 {
			out = append(out, b)
			l.slots[src][dst] = nil
		}
	}
	l.recv[dst] = out
	return out, nil
}
