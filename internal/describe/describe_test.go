package describe

import (
	"context"
	"strings"
	"testing"

	"shoal/internal/bipartite"
	"shoal/internal/dendrogram"
	"shoal/internal/entitygraph"
	"shoal/internal/model"
	"shoal/internal/taxonomy"
)

// fixture builds two topics: a "beach" topic (items 0,1) and a "mountain"
// topic (items 2,3), with queries whose click patterns make "beach trip"
// representative for the first and "mountain trek" for the second, plus a
// generic query "sale" that clicks everywhere (low concentration).
func fixture(t *testing.T) (*taxonomy.Taxonomy, *model.Corpus, *bipartite.Graph) {
	t.Helper()
	corpus := &model.Corpus{
		Categories: []model.Category{
			{ID: 0, Name: "Dress", Parent: model.RootCategory},
			{ID: 1, Name: "Backpack", Parent: model.RootCategory},
		},
		Items: []model.Item{
			{ID: 0, Title: "beach dress summer", Category: 0, PriceCents: 100},
			{ID: 1, Title: "beach swimwear sunny", Category: 0, PriceCents: 10000},
			{ID: 2, Title: "mountain backpack trek", Category: 1, PriceCents: 100},
			{ID: 3, Title: "mountain boots trail", Category: 1, PriceCents: 10000},
		},
		Queries: []model.Query{
			{ID: 0, Text: "beach trip"},
			{ID: 1, Text: "mountain trek"},
			{ID: 2, Text: "sale"},
			{ID: 3, Text: "beach towel"},
		},
	}
	clicks := bipartite.New(0)
	evs := []model.ClickEvent{
		{Query: 0, Item: 0, Day: 0, Count: 8},
		{Query: 0, Item: 1, Day: 0, Count: 6},
		{Query: 3, Item: 0, Day: 0, Count: 1},
		{Query: 1, Item: 2, Day: 0, Count: 7},
		{Query: 1, Item: 3, Day: 0, Count: 5},
		{Query: 2, Item: 0, Day: 0, Count: 2},
		{Query: 2, Item: 1, Day: 0, Count: 2},
		{Query: 2, Item: 2, Day: 0, Count: 2},
		{Query: 2, Item: 3, Day: 0, Count: 2},
	}
	if err := clicks.AddAll(evs); err != nil {
		t.Fatal(err)
	}
	es, err := entitygraph.BuildEntities(context.Background(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	d := &dendrogram.Dendrogram{
		Leaves: 4,
		Merges: []dendrogram.Merge{
			{A: 0, B: 1, New: 4, Sim: 0.9, Round: 0},
			{A: 2, B: 3, New: 5, Sim: 0.9, Round: 0},
		},
	}
	tx, err := taxonomy.Build(context.Background(), d, es, corpus, taxonomy.Config{Levels: []float64{0.5}, MinTopicSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tx.Topics) != 2 {
		t.Fatalf("topics = %d, want 2", len(tx.Topics))
	}
	return tx, corpus, clicks
}

func topicByItem(tx *taxonomy.Taxonomy, it model.ItemID) int {
	return int(tx.ItemTopic[it])
}

func TestDescribePicksRepresentativeQueries(t *testing.T) {
	tx, corpus, clicks := fixture(t)
	descs, err := Describe(context.Background(), tx, corpus, clicks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 2 {
		t.Fatalf("descriptions = %d, want 2", len(descs))
	}
	beach := descs[topicByItem(tx, 0)]
	mountain := descs[topicByItem(tx, 2)]
	if len(beach.Queries) == 0 || beach.Queries[0] != "beach trip" {
		t.Fatalf("beach topic description = %v, want 'beach trip' first", beach.Queries)
	}
	if len(mountain.Queries) == 0 || mountain.Queries[0] != "mountain trek" {
		t.Fatalf("mountain topic description = %v, want 'mountain trek' first", mountain.Queries)
	}
}

func TestDescribeWritesIntoTaxonomy(t *testing.T) {
	tx, corpus, clicks := fixture(t)
	if _, err := Describe(context.Background(), tx, corpus, clicks, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	for i := range tx.Topics {
		if tx.Topics[i].Description == "" {
			t.Fatalf("topic %d has empty description", i)
		}
		if len(tx.Topics[i].DescQueries) == 0 {
			t.Fatalf("topic %d has no desc queries", i)
		}
		if tx.Topics[i].DescQueries[0] != tx.Topics[i].Description {
			t.Fatal("Description != first DescQuery")
		}
	}
}

func TestDescribeGenericQueryRanksLow(t *testing.T) {
	tx, corpus, clicks := fixture(t)
	descs, err := Describe(context.Background(), tx, corpus, clicks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range descs {
		for rank, q := range d.Queries {
			if q == "sale" && rank == 0 {
				t.Fatalf("generic query 'sale' ranked first in topic %d: %v", d.Topic, d.Queries)
			}
		}
	}
}

func TestDescribeScoresSortedAndBounded(t *testing.T) {
	tx, corpus, clicks := fixture(t)
	descs, err := Describe(context.Background(), tx, corpus, clicks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range descs {
		for i, s := range d.Scores {
			if s < 0 || s > 1 {
				t.Fatalf("score %f outside [0,1]", s)
			}
			if i > 0 && s > d.Scores[i-1] {
				t.Fatalf("scores not descending: %v", d.Scores)
			}
		}
	}
}

func TestDescribeTopQueriesLimit(t *testing.T) {
	tx, corpus, clicks := fixture(t)
	cfg := DefaultConfig()
	cfg.TopQueries = 1
	descs, err := Describe(context.Background(), tx, corpus, clicks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range descs {
		if len(d.Queries) > 1 {
			t.Fatalf("TopQueries=1 but got %d queries", len(d.Queries))
		}
	}
}

func TestDescribeValidation(t *testing.T) {
	tx, corpus, clicks := fixture(t)
	cfg := DefaultConfig()
	cfg.TopQueries = 0
	if _, err := Describe(context.Background(), tx, corpus, clicks, cfg); err == nil {
		t.Fatal("TopQueries=0 accepted")
	}
}

func TestDescribeEmptyTaxonomy(t *testing.T) {
	_, corpus, clicks := fixture(t)
	empty := &taxonomy.Taxonomy{}
	descs, err := Describe(context.Background(), empty, corpus, clicks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(descs) != 0 {
		t.Fatalf("descriptions for empty taxonomy: %v", descs)
	}
}

func TestDescribeTopicWithNoQueries(t *testing.T) {
	tx, corpus, _ := fixture(t)
	// Click graph with no clicks at all: descriptions must be empty but
	// Describe must not fail.
	descs, err := Describe(context.Background(), tx, corpus, bipartite.New(0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range descs {
		if len(d.Queries) != 0 {
			t.Fatalf("queries from empty click graph: %v", d.Queries)
		}
	}
}

func TestDescribeDistinctTopicsGetDistinctTopQueries(t *testing.T) {
	tx, corpus, clicks := fixture(t)
	descs, err := Describe(context.Background(), tx, corpus, clicks, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if strings.EqualFold(descs[0].Queries[0], descs[1].Queries[0]) {
		t.Fatalf("both topics share top query %q", descs[0].Queries[0])
	}
}
