package phac

import (
	"slices"

	"shoal/internal/dendrogram"
)

// Trajectory replay: a warm build proves, round by round, that the
// previous build's merge decisions still hold, and replays them instead
// of recomputing. The proof obligation is discharged by running the
// real selection machinery every round — diffusion and locally-maximal
// matching are always recomputed over the live graph — and replaying
// only when the live selection equals the memoized one edge for edge
// (minted ids are positional, so any difference shifts every later id
// and the dendrograms diverge). What replay skips is the expensive part
// of the round: the contribution generation and k-way merge-sum of
// mergeSelected. Taint propagation over the dirty-row set bounds how
// much of that work is genuinely new:
//
//	T_0   = dirtyRows (symmetric: both endpoints of every changed entry)
//	T_k+1 = {survivors of T_k} ∪ {minted rows with a tainted member}
//
// The CSR stores each undirected edge twice with bit-identical weights,
// so a changed value always taints both endpoints and T stays
// symmetric; inductively, every row outside T_k is byte-identical to
// the memoized build's round-k row, which means clean rows the merge
// rewrites take their post-merge spans straight out of the memo's
// per-round patch (the patchCSR idiom) and only tainted rows pay a
// per-entry recompute. The memoized next round's diffusion cascade is
// installed wholesale with T_k+1 as the dirty worklist — exactly the
// round-0 warm-seed contract, one round deeper.
const replayTaintGate = 0.5

// replayCaptureDepth caps how many merge rounds of trajectory a build
// snapshots. Replay consumes the trajectory strictly in order and stops
// permanently at the first divergence, and under realistic deltas the
// selection diverges within a handful of rounds — while a long
// clustering can run a hundred-plus rounds whose tail snapshots would
// never be read. The early rounds are also where the contracted CSR
// (and hence both the snapshot cost and the replay win) is largest, so
// a short prefix keeps nearly all of the benefit at a bounded fraction
// of the capture cost.
const replayCaptureDepth = 4

// memoRound is one merge round of a captured build's trajectory: the
// canonical matching it selected, the CSR patch the merge applied — the
// alive rows it rewrote (ascending) with their post-merge spans packed
// in matching order — and the next round's diffused cascade over the
// post-merge row space (nil levels when the build terminated before
// diffusing again — replay then stops at this round).
type memoRound struct {
	selected []edgeRef
	newTotal int
	ids      []int32
	off      []int32 // len(ids)+1 prefix into nbrs/wts
	nbrs     []int32
	wts      []float64
	levels   [][]edgeRef
	edgeCnt  []int64
	bests    []edgeRef
}

// snapRound deep-copies the matching just applied and the CSR delta it
// produced: every alive row the merge rewrote (lastPatched filtered by
// alive — dead member rows carry no content) with its post-merge span.
// O(patched adjacency), not O(graph). The levels triple is captured
// later, by captureLevels, once the next round's diffusion has run over
// the post-merge rows.
func snapRound(st *state, selected []edgeRef) memoRound {
	ids := make([]int32, 0, len(st.lastPatched))
	for _, u := range st.lastPatched {
		if st.alive[u] {
			ids = append(ids, u)
		}
	}
	slices.Sort(ids)
	var total int32
	for _, u := range ids {
		total += st.deg[u]
	}
	off := make([]int32, 1, len(ids)+1)
	nbrs := make([]int32, 0, total)
	wts := make([]float64, 0, total)
	for _, u := range ids {
		lo, hi := st.offsets[u], st.offsets[u]+st.deg[u]
		nbrs = append(nbrs, st.nbrs[lo:hi]...)
		wts = append(wts, st.wts[lo:hi]...)
		off = append(off, int32(len(nbrs)))
	}
	return memoRound{
		selected: append([]edgeRef(nil), selected...),
		newTotal: st.total,
		ids:      ids,
		off:      off,
		nbrs:     nbrs,
		wts:      wts,
	}
}

// captureLevels deep-copies the diffusion cascade and per-row stats the
// selection that just ran computed over this round's CSR.
func (mr *memoRound) captureLevels(st *state) {
	n := st.total
	mr.levels = make([][]edgeRef, len(st.exStates))
	for it := range st.exStates {
		mr.levels[it] = append([]edgeRef(nil), st.exStates[it][:n]...)
	}
	mr.edgeCnt = append([]int64(nil), st.edgeCnt[:n]...)
	mr.bests = append([]edgeRef(nil), st.bests[:n]...)
}

// replayable reports whether the memo's trajectory may be replayed
// against the current build: Compatible already held (the memo seeded
// round 0), and additionally the linkage rule and leaf sizes — which
// merge coefficients, hence the trajectory, depend on but diffusion
// does not — match. A mismatch degrades to the round-0-only warm
// start.
func (m *Memo) replayable(st *state, cfg Config) bool {
	if m == nil || len(m.traj) == 0 || m.linkage != cfg.Linkage || len(m.sizes) != st.total {
		return false
	}
	for i, s := range m.sizes {
		if st.size[i] != s {
			return false
		}
	}
	return true
}

// replayRound applies round `round`'s matching by replaying mr instead
// of running mergeSelected, returning the propagated taint set and true
// on success. It refuses — leaving the state untouched, the caller then
// merges cold — when the live selection differs from the memoized one,
// when the trajectory has no diffused state to seed the next round
// with, or when the taint set has grown past replayTaintGate of the
// alive rows (the recompute would touch most of the graph anyway, and
// every later round inherits at least this taint).
//
// On success the post-merge state is byte-identical to mergeSelected's:
// the merge rewrites exactly the rows adjacent to a member plus the
// minted rows, and of those the clean ones take their post-merge spans
// from the memo patch while tainted ones are recomputed per entry, in
// place, in the exact contribution order of the cold path. The next
// round's diffusion is seeded from the memo cascade with the taint set
// as its dirty worklist.
func (st *state) replayRound(selected []edgeRef, round int, cfg Config, d *dendrogram.Dendrogram, mr *memoRound, taint, spare []int32) ([]int32, bool) {
	base := int32(st.total)
	newTotal := st.total + len(selected)
	if mr.levels == nil || mr.newTotal != newTotal {
		return nil, false
	}
	if !slices.Equal(selected, mr.selected) {
		return nil, false
	}
	if float64(len(taint)) > replayTaintGate*float64(st.aliveCount) {
		return nil, false
	}
	threshold := cfg.StopThreshold
	offsets, nbrs, wts, deg := st.offsets, st.nbrs, st.wts, st.deg

	// Collect the live patch worklist — every row this merge rewrites:
	// rows adjacent to a member in the live CSR (the members themselves
	// included, via the pair's internal edge), deduplicated with dirty
	// stamps; the minted rows join during the patch. Walked before any
	// bookkeeping so the verification below can still refuse the round
	// with the state untouched.
	st.dirtyEpoch++
	pe := st.dirtyEpoch
	ld := st.rpDirty[:0]
	for _, e := range selected {
		eu, ev := e.U(), e.V()
		for j, end := offsets[eu], offsets[eu]+deg[eu]; j < end; j++ {
			if nb := nbrs[j]; st.dirty[nb] != pe {
				st.dirty[nb] = pe
				ld = append(ld, nb)
			}
		}
		for j, end := offsets[ev], offsets[ev]+deg[ev]; j < end; j++ {
			if nb := nbrs[j]; st.dirty[nb] != pe {
				st.dirty[nb] = pe
				ld = append(ld, nb)
			}
		}
	}
	st.rpDirty = ld

	// Verify every clean row the patch will copy has a memoized span
	// that fits its storage. CSR symmetry guarantees presence — a clean
	// row adjacent to a member in the live graph held that member in the
	// memoized build too (its row is byte-identical), so that build
	// patched it and captured its span — and byte-identity guarantees
	// fit (the memo span is the row the cold merge would write here, and
	// a merge only ever shrinks a surviving row). The explicit check
	// keeps corruption structurally impossible rather than argued: any
	// miss refuses the round before the state is touched.
	st.epoch++
	me := st.epoch
	for _, e := range selected {
		st.afMark[e.U()] = me
		st.afMark[e.V()] = me
	}
	for _, u := range ld {
		if st.afMark[u] == me {
			continue // member: retires, carries no span
		}
		if _, tainted := slices.BinarySearch(taint, u); tainted {
			continue // recomputed, not copied
		}
		k, ok := slices.BinarySearch(mr.ids, u)
		if !ok || mr.off[k+1]-mr.off[k] > deg[u] {
			return nil, false
		}
	}
	for i, e := range selected {
		if _, t := slices.BinarySearch(taint, e.U()); t {
			continue
		}
		if _, t := slices.BinarySearch(taint, e.V()); t {
			continue
		}
		if _, ok := slices.BinarySearch(mr.ids, base+int32(i)); !ok {
			return nil, false
		}
	}

	// Per-id bookkeeping, exactly as mergeSelected.
	for len(st.mergeTo) < newTotal {
		st.mergeTo = append(st.mergeTo, -1)
		st.afMark = append(st.afMark, 0)
		st.edgeCnt = append(st.edgeCnt, 0)
		st.bests = append(st.bests, noEdge)
	}
	for it := range st.exStates {
		for len(st.exStates[it]) < newTotal {
			st.exStates[it] = append(st.exStates[it], noEdge)
		}
	}
	for len(st.coef) < newTotal {
		st.coef = append(st.coef, 0)
	}
	for len(st.deg) < newTotal {
		st.deg = append(st.deg, 0)
	}
	if newTotal > len(st.dirty) {
		st.dirty = append(st.dirty, make([]uint32, newTotal-len(st.dirty))...)
	}
	deg = st.deg
	for i, e := range selected {
		id := base + int32(i)
		eu, ev := e.U(), e.V()
		wu, wv := cfg.Linkage.weights(st.size[eu], st.size[ev])
		st.mergeTo[eu] = id
		st.mergeTo[ev] = id
		st.coef[eu] = wu
		st.coef[ev] = wv
		st.size = append(st.size, st.size[eu]+st.size[ev])
		st.alive = append(st.alive, true)
		d.Merges = append(d.Merges, dendrogram.Merge{
			A: eu, B: ev, New: id, Sim: e.sim, Round: int32(round),
		})
	}

	// Propagate taint: surviving tainted rows stay, a merged tainted
	// member taints its minted row. Survivors keep their ids (all below
	// base) and minted ids sort above them, so the concatenation stays
	// sorted and duplicate-free.
	nt := spare[:0]
	minted := st.rpMinted[:0]
	for _, u := range taint {
		if m := st.mergeTo[u]; m >= 0 {
			minted = append(minted, m)
		} else {
			nt = append(nt, u)
		}
	}
	slices.Sort(minted)
	minted = slices.Compact(minted)
	nt = append(nt, minted...)
	st.rpMinted = minted[:0]

	// Patch the surviving rows of the worklist in place: clean rows copy
	// their memoized post-merge spans, tainted rows recompute — reading
	// only their own span, so patch order is irrelevant.
	st.ensureOwned()
	offsets, nbrs, wts = st.offsets, st.nbrs, st.wts
	for len(st.rpMark) < len(selected) {
		st.rpMark = append(st.rpMark, 0)
	}
	for len(st.rpSums) < len(selected) {
		st.rpSums = append(st.rpSums, 0)
	}
	sums := st.rpSums
	for _, u := range ld {
		if st.mergeTo[u] >= 0 {
			continue // member: retires below
		}
		if _, tainted := slices.BinarySearch(taint, u); !tainted {
			k, _ := slices.BinarySearch(mr.ids, u)
			lo, hi := mr.off[k], mr.off[k+1]
			copy(nbrs[offsets[u]:], mr.nbrs[lo:hi])
			copy(wts[offsets[u]:], mr.wts[lo:hi])
			deg[u] = hi - lo
			continue
		}
		// Tainted survivor: walk its own span; the symmetric CSR holds
		// the same bits the cold path reads from the member side, and
		// ascending members reproduce the canonical origin order of the
		// per-partner sums. Kept survivors write at or before their read
		// position and partners append only after the whole span was
		// read, so the in-place rewrite is safe; the result can never
		// outgrow the span (every partner replaces at least one merged
		// neighbor).
		st.rpEpoch++
		rpe := st.rpEpoch
		partners := st.rpPart[:0]
		lo := offsets[u]
		wi := lo
		for j, end := lo, lo+deg[u]; j < end; j++ {
			v, w := nbrs[j], wts[j]
			m := st.mergeTo[v]
			if m < 0 {
				nbrs[wi], wts[wi] = v, w
				wi++
				continue
			}
			mi := m - base
			if st.rpMark[mi] != rpe {
				st.rpMark[mi] = rpe
				sums[mi] = 0
				partners = append(partners, m)
			}
			sums[mi] += st.coef[v] * w
		}
		slices.Sort(partners)
		for _, m := range partners {
			if s := sums[m-base]; s >= threshold {
				nbrs[wi], wts[wi] = m, s
				wi++
			}
		}
		st.rpPart = partners[:0]
		deg[u] = wi - lo
	}

	// Minted rows: lay out tail spans — a clean minted row takes its
	// memoized degree, a tainted one conservative capacity (a merge
	// cannot produce more entries than its members' combined adjacency;
	// the slack stays as dead storage, like any shrunk row) — then fill:
	// clean spans copy from the memo patch, tainted ones recompute via
	// the cold contribution pass's two-pointer walk over the members'
	// (dead, still intact) spans.
	for len(st.offsets) < newTotal+1 {
		st.offsets = append(st.offsets, 0)
	}
	offsets = st.offsets
	tail := offsets[st.total]
	for i, e := range selected {
		w := base + int32(i)
		offsets[w] = tail
		_, tU := slices.BinarySearch(taint, e.U())
		_, tV := slices.BinarySearch(taint, e.V())
		if tU || tV {
			tail += deg[e.U()] + deg[e.V()]
		} else {
			k, _ := slices.BinarySearch(mr.ids, w)
			tail += mr.off[k+1] - mr.off[k]
		}
	}
	offsets[newTotal] = tail
	if grow := int(tail) - len(st.nbrs); grow > 0 {
		st.nbrs = append(st.nbrs, make([]int32, grow)...)
		st.wts = append(st.wts, make([]float64, grow)...)
	}
	nbrs, wts = st.nbrs, st.wts
	for i, e := range selected {
		w := base + int32(i)
		eu, ev := e.U(), e.V()
		_, tU := slices.BinarySearch(taint, eu)
		_, tV := slices.BinarySearch(taint, ev)
		if !tU && !tV {
			k, _ := slices.BinarySearch(mr.ids, w)
			lo, hi := mr.off[k], mr.off[k+1]
			copy(nbrs[offsets[w]:], mr.nbrs[lo:hi])
			copy(wts[offsets[w]:], mr.wts[lo:hi])
			deg[w] = hi - lo
			continue
		}
		// Tainted minted row: two-pointer over both members' rows,
		// mirroring the cold contribution pass — ties to the smaller
		// member, surviving-neighbor sums accumulated in stream order,
		// merged-neighbor contributions into a sorted tail.
		wu, wv := st.coef[eu], st.coef[ev]
		jU, endU := offsets[eu], offsets[eu]+deg[eu]
		jV, endV := offsets[ev], offsets[ev]+deg[ev]
		mtail := st.rpTail[:0]
		lastNb := int32(-1)
		var pend float64
		havePend := false
		wi := offsets[w]
		for jU < endU || jV < endV {
			var member, nb int32
			var wm, s float64
			if jV >= endV || (jU < endU && nbrs[jU] <= nbrs[jV]) {
				member, nb, wm, s = eu, nbrs[jU], wu, wts[jU]
				jU++
			} else {
				member, nb, wm, s = ev, nbrs[jV], wv, wts[jV]
				jV++
			}
			m2 := st.mergeTo[nb]
			if m2 < 0 {
				if havePend && nb != lastNb {
					if pend >= threshold {
						nbrs[wi], wts[wi] = lastNb, pend
						wi++
					}
					havePend = false
				}
				if !havePend {
					lastNb, pend, havePend = nb, 0, true
				}
				pend += wm * s
				continue
			}
			if m2 == w {
				continue // the pair's internal edge
			}
			oa, ob := canon(member, nb)
			mtail = append(mtail, contrib{key: [2]int32{m2, 0}, orig: [2]int32{oa, ob}, val: wm * st.coef[nb] * s})
		}
		if havePend && pend >= threshold {
			nbrs[wi], wts[wi] = lastNb, pend
			wi++
		}
		slices.SortFunc(mtail, cmpContrib)
		for k := 0; k < len(mtail); {
			m2 := mtail[k].key[0]
			var sum float64
			for ; k < len(mtail) && mtail[k].key[0] == m2; k++ {
				sum += mtail[k].val
			}
			if sum >= threshold {
				nbrs[wi], wts[wi] = m2, sum
				wi++
			}
		}
		st.rpTail = mtail[:0]
		deg[w] = wi - offsets[w]
	}

	// Retire the merged clusters, exactly as mergeSelected; dead rows'
	// spans stay allocated but empty.
	for _, e := range selected {
		st.alive[e.U()] = false
		st.alive[e.V()] = false
		st.mergeTo[e.U()] = -1
		st.mergeTo[e.V()] = -1
		deg[e.U()] = 0
		deg[e.V()] = 0
	}
	st.aliveCount -= len(selected)
	st.retireNodes(base, int32(newTotal))
	for i := range selected {
		ld = append(ld, base+int32(i))
	}
	st.rpDirty = ld
	st.lastPatched = ld
	st.total = newTotal

	// Seed the next round's diffusion from the memo cascade with the
	// taint set as the dirty worklist — the cross-build round-0 seed,
	// one round deeper.
	for it := range st.exStates {
		copy(st.exStates[it][:newTotal], mr.levels[it])
	}
	copy(st.edgeCnt[:newTotal], mr.edgeCnt)
	copy(st.bests[:newTotal], mr.bests)
	st.haveCache = true
	st.dirtyEpoch++
	st.dirtyList = append(st.dirtyList[:0], nt...)
	for _, u := range nt {
		st.dirty[u] = st.dirtyEpoch
	}
	if cfg.UseBSP {
		// Rebuild the running aggregates the seeded engine rounds
		// maintain incrementally: memoized counts are current for every
		// clean alive row, and tainted rows' stale entries are
		// subtracted and recomputed by the next seeded run. st.selected
		// must not survive into that run's retire-subtraction — this
		// round's endpoints are already excluded by the alive filter
		// here. The sparse changed-rows selection contract is relative
		// to the memo build's last run, not this one, so the next
		// selection must scan densely.
		st.forceDense = true
		st.selected = st.selected[:0]
		st.bspHeap = st.bspHeap[:0]
		var total int64
		for u := int32(0); int(u) < newTotal; u++ {
			if !st.alive[u] {
				continue
			}
			total += st.edgeCnt[u]
			if st.bests[u] != noEdge {
				st.bspHeapPush(u)
			}
		}
		st.bspActiveEdges = total
	}
	return nt, true
}
