package taxonomy

import (
	"context"
	"fmt"
	"io"

	"encoding/gob"
	"encoding/json"

	"shoal/internal/bm25"
	"shoal/internal/model"
	"shoal/internal/textutil"
)

// Searcher answers Query→Topic lookups (demo scenario A) with BM25 over
// per-topic pseudo documents.
type Searcher struct {
	idx    *bm25.Index
	topics []model.TopicID
}

// NewSearcher indexes one token document per topic. topicDocs[i] is the
// document of tx.Topics[i] (typically: description queries + member query
// texts + category names). Topics with empty documents are searchable but
// never match.
func NewSearcher(ctx context.Context, tx *Taxonomy, topicDocs [][]string) (*Searcher, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(topicDocs) != len(tx.Topics) {
		return nil, fmt.Errorf("taxonomy: %d docs for %d topics", len(topicDocs), len(tx.Topics))
	}
	if len(topicDocs) == 0 {
		return nil, fmt.Errorf("taxonomy: no topics to index")
	}
	idx, err := bm25.Build(topicDocs, bm25.DefaultConfig())
	if err != nil {
		return nil, err
	}
	topics := make([]model.TopicID, len(tx.Topics))
	for i := range topics {
		topics[i] = tx.Topics[i].ID
	}
	return &Searcher{idx: idx, topics: topics}, nil
}

// Hit is a scored topic.
type Hit struct {
	Topic model.TopicID
	Score float64
}

// Search returns the k best-matching topics for a free-text query.
func (s *Searcher) Search(query string, k int) []Hit {
	toks := textutil.TokenizeFiltered(query)
	hits := s.idx.TopK(toks, k)
	out := make([]Hit, len(hits))
	for i, h := range hits {
		out[i] = Hit{Topic: s.topics[h.Doc], Score: h.Score}
	}
	return out
}

// Save writes the taxonomy in gob encoding.
func (tx *Taxonomy) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(tx)
}

// Load reads a gob-encoded taxonomy.
func Load(r io.Reader) (*Taxonomy, error) {
	var tx Taxonomy
	if err := gob.NewDecoder(r).Decode(&tx); err != nil {
		return nil, fmt.Errorf("taxonomy: decoding: %w", err)
	}
	if err := tx.Validate(); err != nil {
		return nil, err
	}
	return &tx, nil
}

// SaveJSON writes the taxonomy as indented JSON (the interchange format of
// cmd/shoal-build).
func (tx *Taxonomy) SaveJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tx)
}

// LoadJSON reads a JSON taxonomy.
func LoadJSON(r io.Reader) (*Taxonomy, error) {
	var tx Taxonomy
	if err := json.NewDecoder(r).Decode(&tx); err != nil {
		return nil, fmt.Errorf("taxonomy: decoding JSON: %w", err)
	}
	if err := tx.Validate(); err != nil {
		return nil, err
	}
	return &tx, nil
}
