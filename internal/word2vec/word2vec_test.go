package word2vec

import (
	"context"
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

// syntheticSentences builds a corpus with two disjoint topical clusters so
// embeddings must separate them: {beach, swim, sun, sand, surf} and
// {snow, ski, ice, boot, glove}.
func syntheticSentences(n int, seed uint64) [][]string {
	beach := []string{"beach", "swim", "sun", "sand", "surf"}
	snow := []string{"snow", "ski", "ice", "boot", "glove"}
	rng := rand.New(rand.NewPCG(seed, 0))
	var out [][]string
	for i := 0; i < n; i++ {
		pool := beach
		if i%2 == 1 {
			pool = snow
		}
		s := make([]string, 6)
		for j := range s {
			s[j] = pool[rng.IntN(len(pool))]
		}
		out = append(out, s)
	}
	return out
}

func trainTestModel(t *testing.T) *Model {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.Epochs = 8
	cfg.Workers = 2
	cfg.MinCount = 1
	m, err := Train(context.Background(), syntheticSentences(400, 7), cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return m
}

func TestTrainSeparatesClusters(t *testing.T) {
	m := trainTestModel(t)
	within, err := m.Cosine("beach", "swim")
	if err != nil {
		t.Fatal(err)
	}
	across, err := m.Cosine("beach", "ski")
	if err != nil {
		t.Fatal(err)
	}
	if within <= across {
		t.Fatalf("cosine(beach,swim)=%.3f not greater than cosine(beach,ski)=%.3f", within, across)
	}
}

func TestNearest(t *testing.T) {
	m := trainTestModel(t)
	nb, err := m.Nearest("ski", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(nb) != 4 {
		t.Fatalf("Nearest returned %d, want 4", len(nb))
	}
	snow := map[string]bool{"snow": true, "ice": true, "boot": true, "glove": true}
	hits := 0
	for _, n := range nb {
		if snow[n.Word] {
			hits++
		}
	}
	if hits < 3 {
		t.Fatalf("Nearest(ski) = %v, want >=3 snow-cluster words", nb)
	}
}

func TestNearestUnknown(t *testing.T) {
	m := trainTestModel(t)
	if _, err := m.Nearest("zebra", 3); err == nil {
		t.Fatal("Nearest(unknown) = nil error, want error")
	}
}

func TestCosineUnknown(t *testing.T) {
	m := trainTestModel(t)
	if _, err := m.Cosine("zebra", "beach"); err == nil {
		t.Fatal("Cosine(unknown,known) = nil error, want error")
	}
	if _, err := m.Cosine("beach", "zebra"); err == nil {
		t.Fatal("Cosine(known,unknown) = nil error, want error")
	}
}

func TestVectorShape(t *testing.T) {
	m := trainTestModel(t)
	v, ok := m.Vector("beach")
	if !ok {
		t.Fatal("Vector(beach) not found")
	}
	if len(v) != m.Dim() {
		t.Fatalf("len(Vector) = %d, want Dim %d", len(v), m.Dim())
	}
	if _, ok := m.Vector("zebra"); ok {
		t.Fatal("Vector(zebra) reported ok")
	}
}

func TestNormVectorUnitLength(t *testing.T) {
	m := trainTestModel(t)
	v, ok := m.NormVector("sun")
	if !ok {
		t.Fatal("NormVector(sun) not found")
	}
	var n float64
	for _, x := range v {
		n += float64(x) * float64(x)
	}
	if math.Abs(math.Sqrt(n)-1) > 1e-4 {
		t.Fatalf("NormVector length = %f, want 1", math.Sqrt(n))
	}
}

func TestTrainMinCountFiltering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinCount = 3
	cfg.Epochs = 1
	sents := [][]string{
		{"common", "common", "rare"},
		{"common", "common", "other"},
	}
	m, err := Train(context.Background(), sents, cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if _, ok := m.Vector("rare"); ok {
		t.Fatal("word below MinCount was embedded")
	}
	if _, ok := m.Vector("common"); !ok {
		t.Fatal("word above MinCount missing")
	}
}

func TestTrainEmptyInput(t *testing.T) {
	if _, err := Train(context.Background(), nil, DefaultConfig()); err == nil {
		t.Fatal("Train(nil) = nil error, want error")
	}
	cfg := DefaultConfig()
	cfg.MinCount = 100
	if _, err := Train(context.Background(), [][]string{{"a", "b"}}, cfg); err == nil {
		t.Fatal("Train with everything filtered = nil error, want error")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Dim: 0, Window: 1, Negative: 1, Epochs: 1, LR: 0.1},
		{Dim: 8, Window: 0, Negative: 1, Epochs: 1, LR: 0.1},
		{Dim: 8, Window: 1, Negative: -1, Epochs: 1, LR: 0.1},
		{Dim: 8, Window: 1, Negative: 1, Epochs: 0, LR: 0.1},
		{Dim: 8, Window: 1, Negative: 1, Epochs: 1, LR: 0},
	}
	for i, cfg := range bad {
		if _, err := Train(context.Background(), [][]string{{"a", "b"}}, cfg); err == nil {
			t.Errorf("case %d: Train accepted invalid config %+v", i, cfg)
		} else if !strings.Contains(err.Error(), "word2vec:") {
			t.Errorf("case %d: error %v lacks package prefix", i, err)
		}
	}
}

func TestUnigramTableCoversVocab(t *testing.T) {
	words := []string{"a", "b", "c"}
	counts := map[string]int64{"a": 100, "b": 10, "c": 1}
	table := buildUnigramTable(words, counts, 1000)
	seen := map[int32]int{}
	for _, id := range table {
		seen[id]++
	}
	for i := range words {
		if seen[int32(i)] == 0 {
			t.Fatalf("word %d missing from unigram table", i)
		}
	}
	if seen[0] <= seen[2] {
		t.Fatalf("frequent word should dominate table: a=%d c=%d", seen[0], seen[2])
	}
}

func TestSigmoidTable(t *testing.T) {
	s := newSigmoidTable()
	cases := []struct{ x, want float64 }{
		{-100, 0}, {100, 1}, {0, 0.5},
	}
	for _, tc := range cases {
		got := float64(s.at(tc.x))
		if math.Abs(got-tc.want) > 0.01 {
			t.Errorf("sigmoid(%f) = %f, want ~%f", tc.x, got, tc.want)
		}
	}
	// Monotone non-decreasing over the table range.
	prev := float64(-1)
	for x := -7.0; x <= 7.0; x += 0.05 {
		v := float64(s.at(x))
		if v < prev-1e-6 {
			t.Fatalf("sigmoid not monotone at %f: %f < %f", x, v, prev)
		}
		prev = v
	}
}
