package wgraph

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSetAndWeight(t *testing.T) {
	g := New(4)
	if err := g.SetEdge(0, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	w, ok := g.Weight(0, 1)
	if !ok || w != 0.5 {
		t.Fatalf("Weight(0,1) = %f,%v want 0.5,true", w, ok)
	}
	// Symmetric.
	w, ok = g.Weight(1, 0)
	if !ok || w != 0.5 {
		t.Fatalf("Weight(1,0) = %f,%v want 0.5,true", w, ok)
	}
	// Overwrite.
	if err := g.SetEdge(1, 0, 0.9); err != nil {
		t.Fatal(err)
	}
	if w, _ := g.Weight(0, 1); w != 0.9 {
		t.Fatalf("overwritten weight = %f, want 0.9", w)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestSetEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.SetEdge(1, 1, 0.5); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.SetEdge(0, 5, 0.5); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := g.SetEdge(-1, 0, 0.5); err == nil {
		t.Fatal("negative node accepted")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	if err := g.SetEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g.RemoveEdge(1, 0)
	if _, ok := g.Weight(0, 1); ok {
		t.Fatal("edge survived RemoveEdge")
	}
	g.RemoveEdge(0, 2)  // absent: no-op
	g.RemoveEdge(-1, 9) // out of range: no-op
}

func TestNeighborsSortedAndDegrees(t *testing.T) {
	g := New(5)
	for _, v := range []int32{3, 1, 4} {
		if err := g.SetEdge(0, v, float64(v)); err != nil {
			t.Fatal(err)
		}
	}
	nb := g.Neighbors(0)
	if len(nb) != 3 || nb[0] != 1 || nb[1] != 3 || nb[2] != 4 {
		t.Fatalf("Neighbors(0) = %v, want [1 3 4]", nb)
	}
	if g.Degree(0) != 3 {
		t.Fatalf("Degree(0) = %d, want 3", g.Degree(0))
	}
	if got := g.WeightedDegree(0); got != 8 {
		t.Fatalf("WeightedDegree(0) = %f, want 8", got)
	}
	if g.Degree(-1) != 0 || g.Neighbors(99) != nil {
		t.Fatal("out-of-range degree/neighbors not zero")
	}
}

func TestEdgesCanonicalSorted(t *testing.T) {
	g := New(4)
	edges := []Edge{{0, 1, 0.1}, {0, 3, 0.2}, {2, 3, 0.3}}
	for _, e := range edges {
		if err := g.SetEdge(e.V, e.U, e.W); err != nil { // insert reversed
			t.Fatal(err)
		}
	}
	got := g.Edges()
	if len(got) != 3 {
		t.Fatalf("Edges() len = %d, want 3", len(got))
	}
	for i, e := range got {
		if e != edges[i] {
			t.Fatalf("Edges()[%d] = %v, want %v", i, e, edges[i])
		}
	}
}

func TestTotalWeight(t *testing.T) {
	g := New(3)
	_ = g.SetEdge(0, 1, 0.25)
	_ = g.SetEdge(1, 2, 0.75)
	if got := g.TotalWeight(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("TotalWeight = %f, want 1.0", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(3)
	_ = g.SetEdge(0, 1, 1)
	c := g.Clone()
	c.RemoveEdge(0, 1)
	if _, ok := g.Weight(0, 1); !ok {
		t.Fatal("Clone shares storage with original")
	}
	if err := c.SetEdge(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Weight(1, 2); ok {
		t.Fatal("edge added to clone appeared in original")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	_ = g.SetEdge(0, 1, 1)
	_ = g.SetEdge(1, 2, 1)
	_ = g.SetEdge(4, 5, 1)
	comp := g.Components()
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatalf("nodes 0,1,2 not in one component: %v", comp)
	}
	if comp[4] != comp[5] {
		t.Fatalf("nodes 4,5 not in one component: %v", comp)
	}
	if comp[0] == comp[4] || comp[0] == comp[3] {
		t.Fatalf("distinct components share a label: %v", comp)
	}
	if comp[3] != 3 {
		t.Fatalf("isolated node label = %d, want 3", comp[3])
	}
}

// Property: ForEachNeighbor visits exactly Degree(u) nodes in ascending
// order, and edges are always symmetric.
func TestGraphSymmetryProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		const n = 12
		g := New(n)
		for _, p := range pairs {
			u := int32(p>>8) % n
			v := int32(p&0xff) % n
			if u == v {
				continue
			}
			if err := g.SetEdge(u, v, float64(p)); err != nil {
				return false
			}
		}
		for u := int32(0); u < n; u++ {
			prev := int32(-1)
			count := 0
			g.ForEachNeighbor(u, func(v int32, w float64) {
				if v <= prev {
					t.Errorf("neighbors of %d not ascending", u)
				}
				prev = v
				count++
				w2, ok := g.Weight(v, u)
				if !ok || w2 != w {
					t.Errorf("asymmetric edge (%d,%d)", u, v)
				}
			})
			if count != g.Degree(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
