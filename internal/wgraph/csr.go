package wgraph

import (
	"fmt"
	"sort"
)

// View is the read-only graph interface shared by every clustering
// consumer (phac, hac, modularity). Both the mutable *Graph builder and
// the frozen *CSR satisfy it, so algorithms accept either; the hot paths
// additionally type-switch to *CSR (see AsCSR) for allocation-free
// neighbor scans.
type View interface {
	NumNodes() int
	NumEdges() int
	Weight(u, v int32) (float64, bool)
	Degree(u int32) int
	WeightedDegree(u int32) float64
	TotalWeight() float64
	Neighbors(u int32) []int32
	ForEachNeighbor(u int32, fn func(v int32, w float64))
	Edges() []Edge
	Components() []int32
}

var (
	_ View = (*Graph)(nil)
	_ View = (*CSR)(nil)
)

// CSR is an immutable compressed-sparse-row snapshot of a weighted
// undirected graph. Row u's neighbors are nbrs[offsets[u]:offsets[u+1]]
// in ascending id order, with parallel weights in wts; every undirected
// edge appears in both endpoint rows. Weighted degrees and the total
// edge weight are cached at construction, so all observations are O(1)
// or a single contiguous scan — no per-call allocation anywhere.
//
// A CSR is safe for concurrent use: it is never mutated after Freeze /
// FromEdges return.
type CSR struct {
	offsets []int32
	nbrs    []int32
	wts     []float64
	wdeg    []float64
	total   float64
}

// Freeze snapshots the builder into its CSR form. The result is
// memoized on g and reused until the next mutation, so repeated freezes
// at a stage boundary are free.
func (g *Graph) Freeze() *CSR {
	if g.frozen != nil {
		return g.frozen
	}
	n := len(g.adj)
	c := &CSR{
		offsets: make([]int32, n+1),
		nbrs:    make([]int32, 0, 2*g.numEdges),
		wts:     make([]float64, 0, 2*g.numEdges),
		wdeg:    make([]float64, n),
	}
	var total weightSummer
	for u := 0; u < n; u++ {
		for _, v := range g.sortedNeighbors(int32(u)) {
			w := g.adj[u][v]
			c.nbrs = append(c.nbrs, v)
			c.wts = append(c.wts, w)
			c.wdeg[u] += w
			if int32(u) < v {
				total.add(w)
			}
		}
		c.offsets[u+1] = int32(len(c.nbrs))
	}
	c.total = total.total()
	g.frozen = c
	return c
}

// FromEdges builds a CSR directly from a canonical edge list: every
// edge once with U < V, sorted by (U, V), no duplicates. This is the
// zero-intermediate path for builders (entitygraph) that already
// produce sorted pairs; a single sequential fill leaves every row
// sorted because for any node x, pairs listing x as V (neighbors < x)
// all precede pairs listing x as U (neighbors > x) in the input order.
func FromEdges(n int, edges []Edge) (*CSR, error) {
	c := &CSR{
		offsets: make([]int32, n+1),
		nbrs:    make([]int32, 2*len(edges)),
		wts:     make([]float64, 2*len(edges)),
		wdeg:    make([]float64, n),
	}
	deg := make([]int32, n)
	// Validation is fused into the counting pass (same checks and error
	// text as ValidateEdges) so the hot construction path scans the
	// input exactly once.
	for i, e := range edges {
		if e.U >= e.V {
			return nil, fmt.Errorf("wgraph: FromEdges edge %d (%d,%d) not canonical", i, e.U, e.V)
		}
		if e.U < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("wgraph: FromEdges edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, n)
		}
		if i > 0 && (e.U < edges[i-1].U || (e.U == edges[i-1].U && e.V <= edges[i-1].V)) {
			return nil, fmt.Errorf("wgraph: FromEdges edges not sorted at %d", i)
		}
		deg[e.U]++
		deg[e.V]++
	}
	for u := 0; u < n; u++ {
		c.offsets[u+1] = c.offsets[u] + deg[u]
		deg[u] = c.offsets[u] // reuse as fill cursor
	}
	// The total accumulates through the canonical blocked summation (see
	// sum.go) so parallel builders can reproduce it byte for byte.
	var sums []float64
	partial, bcnt := 0.0, 0
	for _, e := range edges {
		c.nbrs[deg[e.U]] = e.V
		c.wts[deg[e.U]] = e.W
		deg[e.U]++
		c.nbrs[deg[e.V]] = e.U
		c.wts[deg[e.V]] = e.W
		deg[e.V]++
		c.wdeg[e.U] += e.W
		c.wdeg[e.V] += e.W
		partial += e.W
		if bcnt++; bcnt == WeightSumBlockSize {
			sums = append(sums, partial)
			partial, bcnt = 0, 0
		}
	}
	if bcnt > 0 {
		sums = append(sums, partial)
	}
	c.total = FoldWeightBlocks(sums)
	return c, nil
}

// ValidateEdgeAt checks the single edge at index i of a canonical edge
// list (canonical orientation, range, strict (U,V) order against its
// predecessor). Factoring the per-index check out lets fused or parallel
// validators (shard.FromEdges) cover disjoint index ranges while
// reporting the exact error text a serial scan would. The happy path is
// one fused condition with the error construction outlined, so the
// check inlines into per-edge construction loops.
func ValidateEdgeAt(n int, edges []Edge, i int) error {
	e := edges[i]
	if e.U >= e.V || e.U < 0 || int(e.V) >= n ||
		(i > 0 && (e.U < edges[i-1].U || (e.U == edges[i-1].U && e.V <= edges[i-1].V))) {
		return edgeErrorAt(n, edges, i)
	}
	return nil
}

// edgeErrorAt builds the deterministic error for the offending index i.
func edgeErrorAt(n int, edges []Edge, i int) error {
	e := edges[i]
	if e.U >= e.V {
		return fmt.Errorf("wgraph: FromEdges edge %d (%d,%d) not canonical", i, e.U, e.V)
	}
	if e.U < 0 || int(e.V) >= n {
		return fmt.Errorf("wgraph: FromEdges edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, n)
	}
	return fmt.Errorf("wgraph: FromEdges edges not sorted at %d", i)
}

// ValidateEdges checks that edges is a canonical edge list for n nodes:
// every edge once with U < V (so self-loops are rejected), endpoints in
// [0,n), strictly sorted by (U,V) (so duplicates are rejected). The
// error for a given input is deterministic: the first offending index is
// always reported.
func ValidateEdges(n int, edges []Edge) error {
	for i := range edges {
		if err := ValidateEdgeAt(n, edges, i); err != nil {
			return err
		}
	}
	return nil
}

// FromParts assembles a CSR from prebuilt arrays: offsets of length n+1,
// parallel nbrs/wts with every undirected edge in both endpoint rows in
// ascending id order, per-node weighted degrees, and the total edge
// weight. The arrays are adopted, not copied — the caller must never
// mutate them afterwards. This is the escape hatch for builders (see
// internal/shard) that fill the arrays themselves, e.g. concurrently per
// row range; only cheap structural length checks are performed here.
func FromParts(offsets []int32, nbrs []int32, wts []float64, wdeg []float64, total float64) (*CSR, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("wgraph: FromParts needs offsets of length n+1, got 0")
	}
	n := len(offsets) - 1
	if len(wdeg) != n {
		return nil, fmt.Errorf("wgraph: FromParts wdeg length %d != nodes %d", len(wdeg), n)
	}
	if len(nbrs) != len(wts) {
		return nil, fmt.Errorf("wgraph: FromParts nbrs length %d != wts length %d", len(nbrs), len(wts))
	}
	if int(offsets[n]) != len(nbrs) {
		return nil, fmt.Errorf("wgraph: FromParts offsets end %d != entries %d", offsets[n], len(nbrs))
	}
	return &CSR{offsets: offsets, nbrs: nbrs, wts: wts, wdeg: wdeg, total: total}, nil
}

// CSRBacked is implemented by read-only views that are thin wrappers
// around a frozen CSR (e.g. shard.CSR); AsCSR unwraps them for free.
type CSRBacked interface {
	BaseCSR() *CSR
}

// AsCSR returns g itself when already frozen, otherwise freezes the
// mutable builder; CSR-backed wrappers are unwrapped, and any other View
// is snapshotted through its edge list.
func AsCSR(g View) *CSR {
	switch v := g.(type) {
	case *CSR:
		return v
	case *Graph:
		return v.Freeze()
	case CSRBacked:
		return v.BaseCSR()
	default:
		edges := g.Edges()
		c, err := FromEdges(g.NumNodes(), edges)
		if err != nil {
			panic("wgraph: View returned non-canonical edge list: " + err.Error())
		}
		return c
	}
}

// NumNodes returns the number of nodes (including isolated ones).
func (c *CSR) NumNodes() int { return len(c.offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (c *CSR) NumEdges() int { return len(c.nbrs) / 2 }

// Row returns the neighbor ids and weights of u as zero-copy views into
// the CSR arrays. Callers must not modify them.
func (c *CSR) Row(u int32) ([]int32, []float64) {
	if u < 0 || int(u) >= c.NumNodes() {
		return nil, nil
	}
	lo, hi := c.offsets[u], c.offsets[u+1]
	return c.nbrs[lo:hi], c.wts[lo:hi]
}

// Adj exposes the raw CSR arrays for allocation-free inner loops
// (offsets has NumNodes()+1 entries). Read-only.
func (c *CSR) Adj() (offsets []int32, nbrs []int32, wts []float64) {
	return c.offsets, c.nbrs, c.wts
}

// Weight returns the weight of edge (u,v) and whether it exists, by
// binary search within u's sorted row.
func (c *CSR) Weight(u, v int32) (float64, bool) {
	nbrs, wts := c.Row(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	if i < len(nbrs) && nbrs[i] == v {
		return wts[i], true
	}
	return 0, false
}

// Degree returns the number of neighbors of u.
func (c *CSR) Degree(u int32) int {
	nbrs, _ := c.Row(u)
	return len(nbrs)
}

// WeightedDegree returns the cached sum of incident edge weights of u.
func (c *CSR) WeightedDegree(u int32) float64 {
	if u < 0 || int(u) >= len(c.wdeg) {
		return 0
	}
	return c.wdeg[u]
}

// TotalWeight returns the cached sum of all edge weights (each edge
// once).
func (c *CSR) TotalWeight() float64 { return c.total }

// Neighbors returns the neighbor ids of u in ascending order as a
// zero-copy view. Callers must not modify the result.
func (c *CSR) Neighbors(u int32) []int32 {
	nbrs, _ := c.Row(u)
	return nbrs
}

// ForEachNeighbor calls fn for every neighbor of u in ascending id
// order.
func (c *CSR) ForEachNeighbor(u int32, fn func(v int32, w float64)) {
	nbrs, wts := c.Row(u)
	for i, v := range nbrs {
		fn(v, wts[i])
	}
}

// Edges returns every edge once, sorted by (U,V).
func (c *CSR) Edges() []Edge {
	out := make([]Edge, 0, c.NumEdges())
	n := c.NumNodes()
	for u := 0; u < n; u++ {
		nbrs, wts := c.Row(int32(u))
		for i, v := range nbrs {
			if int32(u) < v {
				out = append(out, Edge{U: int32(u), V: v, W: wts[i]})
			}
		}
	}
	return out
}

// Components returns a partition id per node, labeling connected
// components; labels are the smallest node id in each component.
func (c *CSR) Components() []int32 {
	n := c.NumNodes()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		root := int32(s)
		stack = append(stack[:0], root)
		comp[s] = root
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nbrs, _ := c.Row(u)
			for _, v := range nbrs {
				if comp[v] == -1 {
					comp[v] = root
					stack = append(stack, v)
				}
			}
		}
	}
	return comp
}
