// Abtest reproduces the paper's §3 online experiment (Fig. 4): a control
// group served category-matched recommendation panels vs an experiment
// group served SHOAL topic-matched panels, measured by CTR. The paper
// reports a 5% relative lift over 3 million users; the simulator's user
// model derives the lift from scenario coverage rather than hard-coding it.
package main

import (
	"fmt"
	"log"

	"shoal"
)

func main() {
	log.SetFlags(0)

	gen := shoal.DefaultCorpusConfig()
	gen.Scenarios = 20
	gen.ItemsPerScenario = 120
	corpus, err := shoal.GenerateCorpus(gen)
	if err != nil {
		log.Fatal(err)
	}
	cfg := shoal.DefaultConfig()
	cfg.Word2Vec.Epochs = 2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3, 0.5}
	sys, err := shoal.Build(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("taxonomy: %s\n\n", sys.Stats())

	// Render both panels for one seed item, mirroring Fig. 4's side-by-
	// side comparison.
	ctl, err := sys.CategoryRecommender()
	if err != nil {
		log.Fatal(err)
	}
	exp, err := sys.TopicRecommender()
	if err != nil {
		log.Fatal(err)
	}
	var seed shoal.ItemID = -1
	for it := range corpus.Items {
		if sys.ItemTopic(shoal.ItemID(it)) != shoal.NoTopic {
			seed = shoal.ItemID(it)
			break
		}
	}
	if seed < 0 {
		log.Fatal("no placed item to seed the panels")
	}
	fmt.Printf("seed item #%d: %q [%s]\n", seed, corpus.Items[seed].Title,
		corpus.Categories[corpus.Items[seed].Category].Name)
	fmt.Println("\n(a) control group: category recommendation")
	for _, it := range shoal.Recommend(ctl, seed, 6, 42) {
		fmt.Printf("    %-40q [%s]\n", corpus.Items[it].Title,
			corpus.Categories[corpus.Items[it].Category].Name)
	}
	fmt.Println("(b) experiment group: topic recommendations")
	for _, it := range shoal.Recommend(exp, seed, 6, 42) {
		fmt.Printf("    %-40q [%s]\n", corpus.Items[it].Title,
			corpus.Categories[corpus.Items[it].Category].Name)
	}

	// Run the A/B simulation.
	ab := shoal.DefaultABConfig()
	ab.Users = 300_000
	res, err := sys.RunABTest(ab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nA/B test over %d users:\n", ab.Users)
	fmt.Printf("  control    (%s): CTR %.4f  (%d clicks / %d impressions)\n",
		res.Control.Name, res.Control.CTR, res.Control.Clicks, res.Control.Impressions)
	fmt.Printf("  experiment (%s): CTR %.4f  (%d clicks / %d impressions)\n",
		res.Experiment.Name, res.Experiment.CTR, res.Experiment.Clicks, res.Experiment.Impressions)
	fmt.Printf("  relative CTR lift: %+.1f%%  (z = %.1f)\n", 100*res.Lift, res.ZScore)
	fmt.Println("  paper reports: +5% CTR in a 3M-user online A/B test")
}
