package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", "test counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("c_total", "", "test counter"); again != c {
		t.Fatal("re-registration did not return the same handle")
	}
	g := r.Gauge("g", "", "test gauge")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	// Uniform bounds make interpolation exactly checkable.
	h := r.Histogram("h", "", "test", []float64{1, 2, 3, 4})
	for i := 0; i < 100; i++ {
		// 25 observations per unit bucket (0,1], (1,2], (2,3], (3,4].
		h.Observe(float64(i%4) + 0.5)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if want := 100 * 2.0; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("sum = %f, want %f", s.Sum, want)
	}
	// Rank 50 falls exactly at the end of bucket (1,2].
	if got := s.Quantile(0.50); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("p50 = %f, want 2.0", got)
	}
	// Rank 90 is 15/25 of the way through bucket (3,4].
	if got := s.Quantile(0.90); math.Abs(got-3.6) > 1e-9 {
		t.Fatalf("p90 = %f, want 3.6", got)
	}
	if got := s.Quantile(1.0); math.Abs(got-4.0) > 1e-9 {
		t.Fatalf("p100 = %f, want 4.0", got)
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %f, want 0", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", "test", []float64{1, 2})
	h.Observe(100) // lands in +Inf
	s := h.Snapshot()
	if s.Counts[2] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", s.Counts[2])
	}
	// Quantile inside the +Inf bucket reports the highest finite bound.
	if got := s.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %f, want 2", got)
	}
}

func TestSnapshotMerge(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 2, 3}
	a := r.Histogram("a", "", "test", bounds)
	b := r.Histogram("b", "", "test", bounds)
	a.Observe(0.5)
	a.Observe(1.5)
	b.Observe(2.5)
	b.Observe(9)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 4 {
		t.Fatalf("merged count = %d, want 4", sa.Count)
	}
	if want := 0.5 + 1.5 + 2.5 + 9; math.Abs(sa.Sum-want) > 1e-9 {
		t.Fatalf("merged sum = %f, want %f", sa.Sum, want)
	}
	for i, want := range []uint64{1, 1, 1, 1} {
		if sa.Counts[i] != want {
			t.Fatalf("merged bucket %d = %d, want %d", i, sa.Counts[i], want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched layouts did not panic")
		}
	}()
	c := r.Histogram("c", "", "test", []float64{5})
	sa.Merge(c.Snapshot())
}

// TestSteadyStateAllocFree locks the hot-path contract: metric updates
// allocate nothing. Counters, gauges and histogram observation are the
// operations every request and superstep pays for.
func TestSteadyStateAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", "t")
	g := r.Gauge("g", "", "t")
	h := r.Histogram("h_seconds", "", "t", LatencyBuckets())
	// Warm once so lazily grown state (none expected) exists.
	c.Inc()
	g.Set(1)
	h.Observe(0.001)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(42)
		g.Add(-1)
		h.Observe(0.00025)
		h.Observe(1.5)
	}); n != 0 {
		t.Fatalf("metric updates allocated %.1f times per run, want 0", n)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", "t", ExpBuckets(1e-6, 2, 20))
	const (
		workers = 8
		each    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(i%100) * 1e-5)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*each {
		t.Fatalf("count = %d, want %d", s.Count, workers*each)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
	lb := LatencyBuckets()
	for i := 1; i < len(lb); i++ {
		if lb[i] <= lb[i-1] {
			t.Fatalf("LatencyBuckets not ascending at %d: %v", i, lb)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", "t")
	mustPanic(t, "type conflict", func() { r.Gauge("m", "", "t") })
	mustPanic(t, "empty bounds", func() { r.Histogram("h", "", "t", nil) })
	mustPanic(t, "unsorted bounds", func() { r.Histogram("h2", "", "t", []float64{2, 1}) })
	r.Histogram("h3", "", "t", []float64{1, 2})
	mustPanic(t, "layout conflict", func() { r.Histogram("h3", `x="y"`, "t", []float64{1}) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

// TestPrometheusFormat hand-validates the exposition text: TYPE headers
// precede their series, histogram buckets are cumulative and end in a
// +Inf bucket equal to _count, and label sets render inside braces.
func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("shoal_reqs_total", `route="/api/search"`, "requests").Add(3)
	r.Gauge("shoal_inflight", "", "in flight").Set(2)
	h := r.Histogram("shoal_latency_seconds", `route="/api/search"`, "latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	typed := map[string]string{}
	var order []string
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		order = append(order, line)
	}
	if typed["shoal_reqs_total"] != "counter" || typed["shoal_inflight"] != "gauge" ||
		typed["shoal_latency_seconds"] != "histogram" {
		t.Fatalf("TYPE lines wrong: %v", typed)
	}
	wantLines := []string{
		`shoal_reqs_total{route="/api/search"} 3`,
		`shoal_inflight 2`,
		`shoal_latency_seconds_bucket{route="/api/search",le="0.001"} 1`,
		`shoal_latency_seconds_bucket{route="/api/search",le="0.01"} 2`,
		`shoal_latency_seconds_bucket{route="/api/search",le="+Inf"} 3`,
		`shoal_latency_seconds_count{route="/api/search"} 3`,
	}
	for _, want := range wantLines {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("missing line %q in:\n%s", want, text)
		}
	}
	// Sum line present with the float value.
	if !strings.Contains(text, `shoal_latency_seconds_sum{route="/api/search"} 5.0055`) {
		t.Fatalf("missing _sum line in:\n%s", text)
	}
	_ = order
}
