package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"shoal/internal/hac"
	"shoal/internal/modularity"
	"shoal/internal/phac"
)

// E3Modularity reproduces the clustering-quality claim of §2.2: Parallel
// HAC consistently produces clusters with modularity > 0.3, measured over
// several corpus seeds and scales.
func E3Modularity(sc Scale, seeds []uint64) (*Table, error) {
	t := &Table{
		ID:         "E3",
		Title:      "Modularity of Parallel HAC root-topic partitions",
		PaperClaim: "Parallel HAC consistently produces clusters with modularity > 0.3",
		Header:     []string{"seed", "entities", "edges", "root-clusters", "modularity"},
	}
	for _, seed := range seeds {
		_, b, err := buildSystem(sc, seed)
		if err != nil {
			return nil, err
		}
		labels := b.Dendrogram.CutAt(pipelineConfig().HAC.StopThreshold)
		q, err := modularity.Compute(b.Graph, labels)
		if err != nil {
			return nil, err
		}
		clusters := make(map[int32]bool)
		for _, l := range labels {
			clusters[l] = true
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", seed), itoa(b.Graph.NumNodes()), itoa(b.Graph.NumEdges()),
			itoa(len(clusters)), f3(q),
		})
	}
	t.Notes = append(t.Notes, "partition: dendrogram cut at the clustering stop threshold")
	return t, nil
}

// E4Scaling reproduces the scalability claim of §2.2: the paper clusters
// 200M item entities within 4 hours on ODPS. Here we measure Parallel HAC
// throughput against worker count and against the sequential baseline,
// then extrapolate single-machine time to the paper's scale.
func E4Scaling(sc Scale, seed uint64) (*Table, error) {
	corpus, b, err := buildSystem(sc, seed)
	if err != nil {
		return nil, err
	}
	_ = corpus
	g := b.Graph
	sizes := make([]int, len(b.Entities.Entities))
	for i := range sizes {
		sizes[i] = b.Entities.Entities[i].Size()
	}
	t := &Table{
		ID:         "E4",
		Title:      "Parallel HAC scaling vs sequential HAC",
		PaperClaim: "taxonomy for 200M item entities within 4 hours on ODPS",
		Header:     []string{"algorithm", "r", "workers", "entities", "wall", "entities/sec", "speedup-vs-seq"},
	}

	// Sequential baseline.
	seqStart := time.Now()
	if _, err := hac.Cluster(g, sizes, hac.Config{StopThreshold: stopTh}); err != nil {
		return nil, err
	}
	seqWall := time.Since(seqStart)
	n := float64(g.NumNodes())
	t.Rows = append(t.Rows, []string{
		"sequential-hac", "-", "1", itoa(g.NumNodes()), seqWall.Round(time.Microsecond).String(),
		fmt.Sprintf("%.0f", n/seqWall.Seconds()), "1.00x",
	})

	// Parallel HAC across diffusion depths and worker counts. r trades
	// merge-order fidelity for per-round parallelism: r=0 merges every
	// mutual-best pair, r=2 is the paper's setting.
	maxW := runtime.GOMAXPROCS(0)
	var bestThroughput float64
	for _, r := range []int{0, 2} {
		for w := 1; w <= maxW; w *= 2 {
			start := time.Now()
			if _, err := phac.Cluster(context.Background(), g, sizes, phac.Config{
				StopThreshold: stopTh, DiffusionRounds: r, Workers: w,
			}); err != nil {
				return nil, err
			}
			wall := time.Since(start)
			tput := n / wall.Seconds()
			if tput > bestThroughput {
				bestThroughput = tput
			}
			t.Rows = append(t.Rows, []string{
				"parallel-hac", itoa(r), itoa(w), itoa(g.NumNodes()), wall.Round(time.Microsecond).String(),
				fmt.Sprintf("%.0f", tput), fmt.Sprintf("%.2fx", seqWall.Seconds()/wall.Seconds()),
			})
		}
	}
	hours := 200e6 / bestThroughput / 3600
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS on this host: %d", maxW),
		fmt.Sprintf("extrapolation: 200M entities at best single-machine throughput = %.1f hours", hours),
		"the paper's 4h figure is on a production ODPS cluster; the shape to check is that",
		"parallel HAC distributes (per-round work is a data-parallel map) while sequential HAC cannot")
	return t, nil
}

// E5Diffusion reproduces the §2.2 parallelism trade-off: fewer diffusion
// iterations yield more locally-maximal edges (more parallel merges per
// round) at some cost in merge quality; the paper fixes r = 2.
func E5Diffusion(sc Scale, seed uint64, maxR int) (*Table, error) {
	_, b, err := buildSystem(sc, seed)
	if err != nil {
		return nil, err
	}
	g := b.Graph
	sizes := make([]int, len(b.Entities.Entities))
	for i := range sizes {
		sizes[i] = b.Entities.Entities[i].Size()
	}
	t := &Table{
		ID:         "E5",
		Title:      "Diffusion iterations vs parallelism (local maximal edges)",
		PaperClaim: "fewer diffusion iterations => more local maximal edges => higher parallelism (r=2 chosen)",
		Header:     []string{"r", "round1-selected", "rounds", "merges", "wall", "modularity"},
	}
	for r := 0; r <= maxR; r++ {
		start := time.Now()
		res, err := phac.Cluster(context.Background(), g, sizes, phac.Config{
			StopThreshold: stopTh, DiffusionRounds: r,
		})
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		labels := res.Dendrogram.CutAt(stopTh)
		q, err := modularity.Compute(g, labels)
		if err != nil {
			return nil, err
		}
		round1 := 0
		if len(res.Rounds) > 0 {
			round1 = res.Rounds[0].Selected
		}
		t.Rows = append(t.Rows, []string{
			itoa(r), itoa(round1), itoa(len(res.Rounds)),
			itoa(len(res.Dendrogram.Merges)), wall.Round(time.Microsecond).String(), f3(q),
		})
	}
	t.Notes = append(t.Notes, "round1-selected: node-disjoint merges available in the first round")
	return t, nil
}
