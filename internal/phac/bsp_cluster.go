package phac

import (
	"slices"
	"sync/atomic"

	"shoal/internal/bsp"
	"shoal/internal/obs"
)

// clusterDiffusionProgram is one clustering round's diffusion+selection
// as a BSP vertex program over the contracted CSR, memoized across merge
// rounds like the shared-memory path. It is the in-round twin of
// diffusionProgram — max-combiner, changed-only sends, vote-to-halt —
// plus the round-statistics side outputs (per-id edge counts and best
// incident edge regardless of threshold) that selectLocalMaxima computes
// during its init scan. One program value lives on the state and is
// re-pointed at each round's contracted CSR before the engine rebind.
type clusterDiffusionProgram struct {
	offsets   []int32
	deg       []int32 // live row lengths: row u spans offsets[u] .. offsets[u]+deg[u]
	nbrs      []int32
	wts       []float64
	rounds    int
	threshold float64
	// lvl aliases st.exStates: lvl[0] is the init state (best incident
	// >= threshold edge) and lvl[s] the state after exchange iteration
	// s, one level per superstep. Compute at superstep s pulls its
	// inputs from lvl[s-1] — frozen for the whole superstep, since
	// writes go to lvl[s] only — and messages carry no authoritative
	// state, just changed-value pings that reactivate the neighborhood.
	// Pulling keeps the memoized levels correct across rounds: a
	// cross-round decrease (a dominating edge retired by a merge) can
	// never be expressed as a max-folded message, but a recompute over
	// the current adjacency reads right past it.
	lvl     [][]edgeRef
	edgeCnt []int64
	bests   []edgeRef
	// Dirty rows (adjacency touched by the last merge) decline to halt
	// until the final superstep: their input SET changed, so every
	// level must be recomputed even where no input value changed yet.
	dirty      []uint32
	dirtyEpoch uint32
	// chRows collects the rows whose final-level value changed this run,
	// claimed via atomic cursor (order is scheduling-dependent, the id
	// set is not; the consumer sorts). It is the selection worklist: a
	// locally-maximal pair between alive rows always has an endpoint
	// whose final know changed this round, because an unchanged mutual
	// pair would have been selected — and retired — last round.
	chRows []int32
	chN    atomic.Int64
	// bcRows collects the rows whose best incident edge (bests) changed
	// at superstep 0, same claiming scheme as chRows. The global-best
	// heap pushes only these rows: an unchanged row's existing heap
	// entry is still its current value, so re-pushing it would only pile
	// duplicate entries onto the hot top of the heap.
	bcRows []int32
	bcN    atomic.Int64
}

// Combine is the sender-side max-fold (bsp.Combiner).
func (p *clusterDiffusionProgram) Combine(acc, m edgeRef) edgeRef {
	if better(m, acc) {
		return m
	}
	return acc
}

func (p *clusterDiffusionProgram) Compute(step int, v bsp.VertexID, _ []edgeRef, out *bsp.Outbox[edgeRef]) bool {
	u := int32(v)
	rl := p.offsets[u]
	rh := rl + p.deg[u]
	var next edgeRef
	if step == 0 {
		best, bestAny := noEdge, noEdge
		edges := int64(0)
		for j := rl; j < rh; j++ {
			nb, w := p.nbrs[j], p.wts[j]
			if u < nb {
				edges++
			}
			cand := mkEdgeRef(u, nb, w)
			if better(cand, bestAny) {
				bestAny = cand
			}
			if w < p.threshold {
				continue
			}
			if better(cand, best) {
				best = cand
			}
		}
		p.edgeCnt[u] = edges
		if bestAny != p.bests[u] {
			p.bests[u] = bestAny
			p.bcRows[p.bcN.Add(1)-1] = u
		}
		next = best
	} else {
		src := p.lvl[step-1]
		best := src[u]
		for j := rl; j < rh; j++ {
			if nb := p.nbrs[j]; better(src[nb], best) {
				best = src[nb]
			}
		}
		next = best
	}
	cur := p.lvl[step]
	changed := next != cur[u]
	if changed {
		cur[u] = next
	}
	if step >= p.rounds {
		if changed {
			p.chRows[p.chN.Add(1)-1] = u
		}
		return true
	}
	if changed {
		out.SendMany(p.nbrs[rl:rh], next)
		return false
	}
	return p.dirty[u] != p.dirtyEpoch
}

// bspBest is a lazy-deletion heap entry for the running global-best
// tracker: bests[u] as of the last superstep 0 that computed row u. An
// entry goes stale when u dies or bests[u] moves on; every recomputed
// row is re-pushed, so the current value of every alive row is always
// present and bspHeapBest pops stale tops until one surfaces.
type bspBest struct {
	e edgeRef
	u int32
}

// bspHeapPush pushes row u's current best incident edge.
func (st *state) bspHeapPush(u int32) {
	h := append(st.bspHeap, bspBest{st.bests[u], u})
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !better(h[i].e, h[p].e) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	st.bspHeap = h
}

// bspHeapBest returns the best incident edge over all alive rows,
// popping stale entries off the top. Deterministic even with duplicate
// values: `better` is a total order, so the maximum value is unique.
func (st *state) bspHeapBest() edgeRef {
	h := st.bspHeap
	for len(h) > 0 {
		top := h[0]
		if st.alive[top.u] && st.bests[top.u] == top.e {
			st.bspHeap = h
			return top.e
		}
		n := len(h) - 1
		h[0] = h[n]
		h = h[:n]
		for i := 0; ; {
			l, r, m := 2*i+1, 2*i+2, i
			if l < n && better(h[l].e, h[m].e) {
				m = l
			}
			if r < n && better(h[r].e, h[m].e) {
				m = r
			}
			if m == i {
				break
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	st.bspHeap = h
	return noEdge
}

// selectLocalMaximaBSP is selectLocalMaxima routed through the BSP
// engine, memoized across merge rounds like the shared path. One engine
// serves the whole clustering: the first round builds it and runs a full
// (all-rows) superstep 0; every later round rebinds it to the contracted
// CSR and seeds superstep 0 with the last merge's alive dirty rows
// (RunFrom), with changed-only pings carrying the ripple outward — so a
// late round costs O(frontier) per superstep, the engine twin of the
// shared path's dirtyList/chList worklists. Round statistics are
// maintained incrementally: a merge retires a known set of rows, so the
// running edge total subtracts exactly the retired and re-seeded rows,
// and the global best comes from a lazy-deletion heap instead of an
// O(alive) rescan. Selection walks the run's changed-rows worklist (an
// unchanged mutual pair would have been selected and retired last
// round), with the shared path's density-gated dense fallback. Every
// output stays byte-identical to the shared-memory scans (max-exchange
// over frozen levels reaches the same fixed point under any execution
// order); agg accumulates the engine profile across rounds, carrying the
// lifetime reuse counters.
//
// The changed-rows selection contract assumes strict select → merge
// alternation with a constant rounds/threshold, which is how Cluster
// drives it: every selected pair is retired before the next selection.
func (st *state) selectLocalMaximaBSP(rounds int, threshold float64, agg *bsp.Stats, span *obs.Span) ([]edgeRef, int, float64, error) {
	n := st.total
	// Diffusion before any merge must see an all-clean dirty map (fresh
	// zero stamps never equal a positive dirtyEpoch).
	for len(st.dirty) < n {
		st.dirty = append(st.dirty, 0)
	}
	if st.bspProg == nil {
		st.bspProg = &clusterDiffusionProgram{}
	}
	prog := st.bspProg
	// Config is re-read on every call, not just at program creation, so
	// a future per-round rounds/threshold change cannot silently reuse
	// the first round's values.
	prog.rounds, prog.threshold = rounds, threshold
	prog.offsets = st.offsets[:n]
	prog.deg = st.deg[:n]
	prog.nbrs, prog.wts = st.nbrs, st.wts
	prog.lvl = st.exStates
	prog.edgeCnt = st.edgeCnt[:n]
	prog.bests = st.bests[:n]
	prog.dirty = st.dirty[:n]
	prog.dirtyEpoch = st.dirtyEpoch
	if cap(prog.chRows) < n {
		// Like the level arrays, capacity 2n outlasts every mint.
		prog.chRows = make([]int32, n, 2*n)
		prog.bcRows = make([]int32, n, 2*n)
	} else {
		prog.chRows = prog.chRows[:n]
		prog.bcRows = prog.bcRows[:n]
	}
	prog.chN.Store(0)
	prog.bcN.Store(0)
	if st.bspEng == nil {
		eng, err := bsp.New[edgeRef](n, prog, bsp.Config{Workers: st.shards, Chaos: st.bspChaos})
		if err != nil {
			return nil, 0, 0, err
		}
		st.bspEng = eng
	} else if err := st.bspEng.Rebind(n, prog); err != nil {
		return nil, 0, 0, err
	}
	// Hang this round's engine run(s) beneath the round span (nil when
	// the build is untraced — the engine then skips span work entirely).
	st.bspEng.SetSpan(span)

	seeded := st.haveCache
	var stats *bsp.Stats
	var err error
	if seeded {
		// The last merge retired st.selected's endpoints, and the run is
		// about to recompute every seeded row's statistics: drop both
		// groups from the running edge total now, re-add the seeded rows
		// with their fresh counts after the run. Each edge is owned by
		// its smaller endpoint, and a clean alive row's adjacency — hence
		// its count — is unchanged by construction, so the total stays
		// exact without any O(alive) rescan.
		for _, e := range st.selected {
			st.bspActiveEdges -= st.edgeCnt[e.U()] + st.edgeCnt[e.V()]
		}
		seed := st.bspSeed[:0]
		for _, u := range st.dirtyList {
			if st.alive[u] { // dirtyList also names retired old neighbors
				st.bspActiveEdges -= st.edgeCnt[u]
				seed = append(seed, bsp.VertexID(u))
			}
		}
		st.bspSeed = seed
		stats, err = st.bspEng.RunFrom(seed)
	} else {
		st.bspActiveEdges = 0
		st.bspHeap = st.bspHeap[:0]
		stats, err = st.bspEng.Run()
	}
	if err != nil {
		return nil, 0, 0, err
	}
	st.haveCache = true
	agg.Add(stats)

	// Superstep 0 recomputed edgeCnt for exactly the seeded rows (or
	// every row on the first round): fold them back in, and push the
	// rows whose best incident edge moved onto the global-best heap.
	if seeded {
		for _, v := range st.bspSeed {
			st.bspActiveEdges += st.edgeCnt[v]
		}
		for _, u := range prog.bcRows[:prog.bcN.Load()] {
			st.bspHeapPush(u)
		}
	} else {
		// Unseeded runs start from an empty heap (the bcRows delta is
		// relative to whatever bests held before), so every alive row
		// with an incident edge is (re)pushed.
		for u := int32(0); int(u) < n; u++ {
			st.bspActiveEdges += st.edgeCnt[u]
			if st.alive[u] && st.bests[u] != noEdge {
				st.bspHeapPush(u)
			}
		}
	}
	activeEdges := st.bspActiveEdges
	globalBest := st.bspHeapBest()

	// Selection: an edge whose both endpoints know it is locally maximal.
	chN := int(prog.chN.Load())
	know := st.exStates[rounds]
	selected := st.selected[:0]
	// Dense fallback mirrors the shared path's density gate; the first
	// (unseeded) round has no changed-rows contract yet and scans densely,
	// as does the first round after a cross-build warm start (forceDense).
	dense := !seeded || st.forceDense || st.density < 0 ||
		float64(chN) > st.density*float64(st.aliveCount)
	st.forceDense = false
	if dense {
		for u := int32(0); int(u) < n; u++ {
			// Dead rows keep their stale fixed point (a retired pair
			// still mutually knows its merged edge): skip them.
			if !st.alive[u] {
				continue
			}
			e := know[u]
			if e.U() != u || e.sim < threshold {
				continue
			}
			if know[e.V()] == e {
				selected = append(selected, e)
			}
		}
	} else {
		ch := prog.chRows[:chN]
		st.epoch++
		mark := st.afMark
		for _, w := range ch {
			mark[w] = st.epoch
		}
		for _, w := range ch {
			e := know[w]
			if e.sim < threshold {
				continue
			}
			u, v := e.U(), e.V()
			// Emit at the smaller endpoint, or at the larger one when
			// the smaller endpoint didn't change this round — never both.
			if w != u && (w != v || mark[u] == st.epoch) {
				continue
			}
			if know[u] == e && know[v] == e {
				selected = append(selected, e)
			}
		}
		slices.SortFunc(selected, func(a, b edgeRef) int {
			// Keys are unique (node-disjoint matching), so this is the
			// canonical (u,v) order.
			switch {
			case a.key < b.key:
				return -1
			case a.key > b.key:
				return 1
			}
			return 0
		})
	}
	st.selected = selected
	return selected, int(activeEdges), globalBest.sim, nil
}
