package entitygraph

import (
	"context"
	"testing"

	"shoal/internal/bipartite"
	"shoal/internal/model"
	"shoal/internal/synth"
	"shoal/internal/textutil"
	"shoal/internal/word2vec"
)

// slideDays spreads the corpus clicks over `days` synthetic days with a
// production-shaped delta profile: most click pairs recur every day (the
// stable window mass — their counts shift on a slide but their membership
// does not), while a rotating tail of events exists on a single day each,
// so each slide perturbs a small set of items in both directions (the
// newly ingested day and the evicted one).
func slideDays(c *model.Corpus, days int32) [][]model.ClickEvent {
	out := make([][]model.ClickEvent, days)
	for d := int32(0); d < days; d++ {
		for i, ev := range c.Clicks {
			if i%7 == 0 && int32(i/7)%days != d {
				continue // rotating tail event, lives on one day only
			}
			ev.Day = d
			out[d] = append(out[d], ev)
		}
	}
	return out
}

// requireSameGraph asserts two sharded CSRs are byte-identical: arrays,
// cached floats and shard plan.
func requireSameGraph(t *testing.T, tag string, a, b *Result) {
	t.Helper()
	ao, an, aw := a.Graph.BaseCSR().Adj()
	bo, bn, bw := b.Graph.BaseCSR().Adj()
	if len(ao) != len(bo) || len(an) != len(bn) {
		t.Fatalf("%s: shape differs: %d/%d rows, %d/%d entries", tag, len(ao), len(bo), len(an), len(bn))
	}
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("%s: offsets[%d] = %d vs %d", tag, i, ao[i], bo[i])
		}
	}
	for i := range an {
		if an[i] != bn[i] || aw[i] != bw[i] {
			t.Fatalf("%s: entry %d = (%d,%v) vs (%d,%v)", tag, i, an[i], aw[i], bn[i], bw[i])
		}
	}
	if a.Graph.TotalWeight() != b.Graph.TotalWeight() {
		t.Fatalf("%s: total weight %v vs %v", tag, a.Graph.TotalWeight(), b.Graph.TotalWeight())
	}
	n := a.Graph.NumNodes()
	for u := 0; u < n; u++ {
		if a.Graph.WeightedDegree(int32(u)) != b.Graph.WeightedDegree(int32(u)) {
			t.Fatalf("%s: wdeg[%d] = %v vs %v", tag, u,
				a.Graph.WeightedDegree(int32(u)), b.Graph.WeightedDegree(int32(u)))
		}
	}
	ap, bp := a.Graph.Plan(), b.Graph.Plan()
	if ap.NumShards() != bp.NumShards() {
		t.Fatalf("%s: shard counts %d vs %d", tag, ap.NumShards(), bp.NumShards())
	}
	for i := 0; i < ap.NumShards(); i++ {
		alo, ahi := ap.Bounds(i)
		blo, bhi := bp.Bounds(i)
		if alo != blo || ahi != bhi {
			t.Fatalf("%s: shard %d bounds [%d,%d) vs [%d,%d)", tag, i, alo, ahi, blo, bhi)
		}
	}
	if len(a.QuerySets) != len(b.QuerySets) {
		t.Fatalf("%s: query-set counts differ", tag)
	}
	for e := range a.QuerySets {
		qa, qb := a.QuerySets[e], b.QuerySets[e]
		if len(qa) != len(qb) {
			t.Fatalf("%s: entity %d query set size %d vs %d", tag, e, len(qa), len(qb))
		}
		for i := range qa {
			if qa[i] != qb[i] {
				t.Fatalf("%s: entity %d query set differs at %d", tag, e, i)
			}
		}
	}
}

// TestIncrementalMatchesFullOverSlide is the package-level half of the
// tentpole invariant: sliding a multi-day window incrementally yields, at
// every step, a graph byte-identical to a from-scratch build over the
// same window — with and without embeddings, across worker/shard counts.
func TestIncrementalMatchesFullOverSlide(t *testing.T) {
	ctx := context.Background()
	c := synth.Curated()
	es, err := BuildEntities(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	days := slideDays(c, 10)
	const window = 4

	var sentences [][]string
	for _, it := range c.Items {
		sentences = append(sentences, textutil.Tokenize(it.Title))
	}
	w2vCfg := word2vec.DefaultConfig()
	w2vCfg.MinCount = 1
	w2vCfg.Workers = 1
	w2vCfg.Epochs = 2
	emb, err := word2vec.Train(ctx, sentences, w2vCfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name    string
		emb     *word2vec.Model
		workers int
		shards  int
	}{
		{"noemb-w1-s1", nil, 1, 1},
		{"noemb-w4-s3", nil, 4, 3},
		{"emb-w2-s2", emb, 2, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.MinSimilarity = 0.15
			cfg.Workers = tc.workers
			cfg.Shards = tc.shards

			inc := bipartite.New(window)
			if err := inc.AddAll(days[0]); err != nil {
				t.Fatal(err)
			}
			inc.TakeChangedItems()
			_, st, err := BuildWithState(ctx, es, inc, tc.emb, cfg)
			if err != nil {
				t.Fatal(err)
			}

			sawPatch, sawEdgeChange := false, false
			for d := 1; d < len(days); d++ {
				if err := inc.AddAll(days[d]); err != nil {
					t.Fatal(err)
				}
				dirty := inc.TakeChangedItems()
				resInc, nst, delta, err := BuildIncremental(ctx, es, inc, tc.emb, cfg, st, dirty)
				if err != nil {
					t.Fatal(err)
				}
				st = nst
				if !delta.DenseFallback {
					sawPatch = true
					if delta.ChangedEdges > 0 {
						sawEdgeChange = true
					}
				}

				fullClicks := bipartite.New(window)
				for fd := 0; fd <= d; fd++ {
					if err := fullClicks.AddAll(days[fd]); err != nil {
						t.Fatal(err)
					}
				}
				resFull, err := Build(ctx, es, fullClicks, tc.emb, cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireSameGraph(t, tc.name+"/day", resInc, resFull)
			}
			if !sawPatch {
				t.Fatal("every slide fell back to the dense path; the patch path was never exercised")
			}
			if !sawEdgeChange {
				t.Fatal("no slide patched a kept edge; the CSR patch path was never exercised")
			}
		})
	}
}

func TestIncrementalUnusableStateFallsBack(t *testing.T) {
	ctx := context.Background()
	c := synth.Curated()
	es, err := BuildEntities(ctx, c)
	if err != nil {
		t.Fatal(err)
	}
	clicks := bipartite.New(0)
	if err := clicks.AddAll(c.Clicks); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	res, st, delta, err := BuildIncremental(ctx, es, clicks, nil, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.DenseFallback {
		t.Fatal("nil state must force the dense fallback")
	}
	if res == nil || st == nil || res.Graph.NumEdges() == 0 {
		t.Fatal("fallback did not produce a usable build")
	}

	// Changed graph semantics also invalidate the state.
	cfg2 := cfg
	cfg2.MinSimilarity = cfg.MinSimilarity / 2
	_, _, delta2, err := BuildIncremental(ctx, es, clicks, nil, cfg2, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !delta2.DenseFallback {
		t.Fatal("semantic config change must force the dense fallback")
	}
}
