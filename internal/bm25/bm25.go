// Package bm25 implements an inverted index with Okapi BM25 relevance
// scoring. SHOAL's topic-description matching (paper §2.3) ranks candidate
// queries by rel(q, D_k), the BM25 relevance of query q to the pseudo
// document D_k formed by concatenating all item titles of topic k.
package bm25

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
)

// Config holds the standard Okapi parameters.
type Config struct {
	// K1 controls term-frequency saturation. Typical range 1.2–2.0.
	K1 float64
	// B controls document-length normalization in [0,1].
	B float64
}

// DefaultConfig returns k1=1.2, b=0.75.
func DefaultConfig() Config { return Config{K1: 1.2, B: 0.75} }

type posting struct {
	doc int32
	tf  int32
}

// Index is an immutable BM25 index over a document collection. Documents
// are token slices; tokens are arbitrary strings.
type Index struct {
	cfg      Config
	postings map[string][]posting
	docLen   []int
	avgLen   float64
	n        int
	// scratchPool recycles the dense per-query scoring state used by
	// TopK, so the serving hot path allocates only the result slice.
	scratchPool sync.Pool
}

// scratch is the pooled dense scoring state: a score per document, a
// touched marker per document, and the list of touched docs for O(hits)
// reset. Scores can legitimately be 0 (idf floors at 0), so marking is
// explicit rather than inferred from the score.
type scratch struct {
	scores  []float64
	marked  []bool
	touched []int32
	terms   []string
}

// Build indexes docs. Empty documents are permitted (they simply never
// match). Build returns an error for an empty collection or invalid config.
func Build(docs [][]string, cfg Config) (*Index, error) {
	if len(docs) == 0 {
		return nil, errors.New("bm25: empty document collection")
	}
	if cfg.K1 < 0 {
		return nil, fmt.Errorf("bm25: K1 must be non-negative, got %f", cfg.K1)
	}
	if cfg.B < 0 || cfg.B > 1 {
		return nil, fmt.Errorf("bm25: B must be in [0,1], got %f", cfg.B)
	}
	idx := &Index{
		cfg:      cfg,
		postings: make(map[string][]posting),
		docLen:   make([]int, len(docs)),
		n:        len(docs),
	}
	var total int
	for d, doc := range docs {
		idx.docLen[d] = len(doc)
		total += len(doc)
		tf := make(map[string]int32, len(doc))
		for _, tok := range doc {
			tf[tok]++
		}
		terms := make([]string, 0, len(tf))
		for tok := range tf {
			terms = append(terms, tok)
		}
		sort.Strings(terms) // deterministic posting order
		for _, tok := range terms {
			idx.postings[tok] = append(idx.postings[tok], posting{doc: int32(d), tf: tf[tok]})
		}
	}
	idx.avgLen = float64(total) / float64(len(docs))
	if idx.avgLen == 0 {
		idx.avgLen = 1
	}
	return idx, nil
}

// N returns the number of indexed documents.
func (idx *Index) N() int { return idx.n }

// idf is the BM25+ style idf, floored at 0 so scores are non-negative.
func (idx *Index) idf(term string) float64 {
	return idx.idfFromDF(len(idx.postings[term]))
}

// idfFromDF is idf computed from an already-known document frequency, so
// scoring loops that hold the posting list never look the term up twice.
func (idx *Index) idfFromDF(df int) float64 {
	if df == 0 {
		return 0
	}
	v := math.Log((float64(idx.n)-float64(df)+0.5)/(float64(df)+0.5) + 1)
	if v < 0 {
		return 0
	}
	return v
}

// Score returns the BM25 relevance of the query tokens to document doc.
// Unknown terms contribute zero. It returns an error for out-of-range doc.
func (idx *Index) Score(query []string, doc int) (float64, error) {
	if doc < 0 || doc >= idx.n {
		return 0, fmt.Errorf("bm25: document %d out of range [0,%d)", doc, idx.n)
	}
	var s float64
	for _, term := range dedup(query) {
		plist := idx.postings[term]
		if len(plist) == 0 {
			continue
		}
		i := sort.Search(len(plist), func(i int) bool { return plist[i].doc >= int32(doc) })
		if i == len(plist) || plist[i].doc != int32(doc) {
			continue
		}
		s += idx.termScore(term, plist[i])
	}
	return s, nil
}

// ScoreAll returns the BM25 relevance of the query against every document
// that shares at least one term, as hits in ascending document order.
// Documents sharing no term are absent (their score is exactly 0). This
// sparse form is what §2.3 needs: the concentration denominator adds
// exp(0)=1 for every untouched topic in closed form, and the ascending
// order fixes the float summation order without a per-call sort of map
// keys. Scoring runs through the pooled dense scratch + touched list the
// way TopK does, so the only allocation is the returned slice.
func (idx *Index) ScoreAll(query []string) []Hit {
	sc := idx.getScratch()
	defer idx.putScratch(sc)
	return idx.collectHits(sc, idx.scoreInto(sc, query, nil))
}

// scoreInto accumulates the query's BM25 scores into the dense scratch
// and returns the touched-document list (unordered). Callers must reset
// the touched entries before pooling the scratch. idfCache may be nil
// (idf recomputed per call) or a per-term cache to populate — cached
// values are exactly the recomputed ones (the index is immutable), so
// every caller scores byte-identically.
func (idx *Index) scoreInto(sc *scratch, query []string, idfCache map[string]float64) []int32 {
	touched := sc.touched[:0]
	for _, term := range dedupOrdered(query, &sc.terms) {
		plist := idx.postings[term]
		if len(plist) == 0 {
			continue
		}
		var idf float64
		if idfCache == nil {
			idf = idx.idfFromDF(len(plist))
		} else {
			var ok bool
			if idf, ok = idfCache[term]; !ok {
				idf = idx.idfFromDF(len(plist))
				idfCache[term] = idf
			}
		}
		for _, p := range plist {
			if !sc.marked[p.doc] {
				sc.marked[p.doc] = true
				touched = append(touched, p.doc)
			}
			tf := float64(p.tf)
			dl := float64(idx.docLen[p.doc])
			denom := tf + idx.cfg.K1*(1-idx.cfg.B+idx.cfg.B*dl/idx.avgLen)
			sc.scores[p.doc] += idf * tf * (idx.cfg.K1 + 1) / denom
		}
	}
	return touched
}

// collectHits turns the touched list into ascending-document hits and
// resets the scratch entries it read.
func (idx *Index) collectHits(sc *scratch, touched []int32) []Hit {
	slices.Sort(touched)
	hits := make([]Hit, 0, len(touched))
	for _, d := range touched {
		hits = append(hits, Hit{Doc: int(d), Score: sc.scores[d]})
		sc.scores[d] = 0
		sc.marked[d] = false
	}
	sc.touched = touched[:0]
	return hits
}

// TopK returns the k highest-scoring documents for the query, best first;
// ties break on lower document id. Scoring accumulates into a pooled
// dense array with a touched-doc list (no per-query map), and selection
// keeps a partial top-k instead of sorting every hit, so the only
// allocation on the hot path is the returned slice.
func (idx *Index) TopK(query []string, k int) []Hit {
	if k <= 0 {
		return nil
	}
	sc := idx.getScratch()
	defer idx.putScratch(sc)
	touched := idx.scoreInto(sc, query, nil)

	// Partial selection: keep the best k in a sorted prefix (best first,
	// ties on lower doc id). k is small on the serving path, so ordered
	// insertion beats a full sort of every touched doc.
	if k > len(touched) {
		k = len(touched)
	}
	hits := make([]Hit, 0, k)
	for _, d := range touched {
		h := Hit{Doc: int(d), Score: sc.scores[d]}
		if len(hits) == cap(hits) {
			worst := hits[len(hits)-1]
			if h.Score < worst.Score || (h.Score == worst.Score && h.Doc > worst.Doc) {
				continue
			}
			hits = hits[:len(hits)-1]
		}
		i := sort.Search(len(hits), func(i int) bool {
			if hits[i].Score != h.Score {
				return hits[i].Score < h.Score
			}
			return hits[i].Doc > h.Doc
		})
		hits = append(hits, Hit{})
		copy(hits[i+1:], hits[i:])
		hits[i] = h
	}

	// Reset only what this query touched before pooling the scratch.
	for _, d := range touched {
		sc.scores[d] = 0
		sc.marked[d] = false
	}
	sc.touched = touched[:0]
	return hits
}

// Scorer is a batch scoring session over one index: it checks a dense
// scratch out of the pool once for its whole lifetime and caches each
// term's idf, so callers scoring many queries back to back (describe's
// per-topic candidate sweeps) pay the pool round-trip once and the idf
// math once per distinct term instead of once per query. Scores are
// byte-identical to Index.ScoreAll — the accumulation order is the same
// and a cached idf is exactly the recomputed value (the index is
// immutable). Not safe for concurrent use; call Close when done to
// return the scratch to the pool.
type Scorer struct {
	idx *Index
	sc  *scratch
	idf map[string]float64
}

// NewScorer begins a batch scoring session.
func (idx *Index) NewScorer() *Scorer {
	return &Scorer{idx: idx, sc: idx.getScratch(), idf: make(map[string]float64)}
}

// ScoreAll is Index.ScoreAll through the session's scratch and idf
// cache: hits in ascending document order, absent documents score 0.
func (s *Scorer) ScoreAll(query []string) []Hit {
	return s.idx.collectHits(s.sc, s.idx.scoreInto(s.sc, query, s.idf))
}

// Close returns the session's scratch to the pool. The Scorer must not
// be used afterwards.
func (s *Scorer) Close() {
	if s.sc != nil {
		s.idx.putScratch(s.sc)
		s.sc = nil
	}
}

// getScratch pops (or builds) dense scoring state sized to the corpus.
func (idx *Index) getScratch() *scratch {
	if sc, ok := idx.scratchPool.Get().(*scratch); ok {
		return sc
	}
	return &scratch{
		scores: make([]float64, idx.n),
		marked: make([]bool, idx.n),
	}
}

func (idx *Index) putScratch(sc *scratch) { idx.scratchPool.Put(sc) }

// dedupOrdered is dedup preserving first-occurrence order (so score
// accumulation order — and therefore float rounding — matches Score and
// ScoreAll exactly) without allocating a set: query terms are few, so a
// quadratic scan into the pooled terms buffer wins.
func dedupOrdered(terms []string, buf *[]string) []string {
	out := (*buf)[:0]
	for _, t := range terms {
		dup := false
		for _, seen := range out {
			if seen == t {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, t)
		}
	}
	*buf = out
	return out
}

// Hit is a scored document.
type Hit struct {
	Doc   int
	Score float64
}

func (idx *Index) termScore(term string, p posting) float64 {
	idf := idx.idf(term)
	tf := float64(p.tf)
	dl := float64(idx.docLen[p.doc])
	denom := tf + idx.cfg.K1*(1-idx.cfg.B+idx.cfg.B*dl/idx.avgLen)
	return idf * tf * (idx.cfg.K1 + 1) / denom
}

func dedup(terms []string) []string {
	if len(terms) <= 1 {
		return terms
	}
	seen := make(map[string]bool, len(terms))
	out := terms[:0:0]
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
