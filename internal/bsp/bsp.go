// Package bsp implements a Pregel-style vertex-centric bulk-synchronous
// parallel engine. The paper runs Parallel HAC "on the Alibaba distributed
// graph platform (ODPS)"; this engine is the in-process stand-in
// (DESIGN.md §1.3) and the distributed twin of the shared-memory
// diffusion path: vertices are partitioned into contiguous row-range
// shards (shard.Plan is the unit of placement), compute proceeds in
// supersteps separated by barriers, and messages produced in superstep s
// are delivered at superstep s+1.
//
// Execution model:
//
//   - Placement: Config.Plan (or a uniform split into Config.Workers
//     ranges) assigns each shard's contiguous vertex rows to one worker.
//     One goroutine per shard; workers persist across supersteps and are
//     driven over channels, so steady-state supersteps spawn nothing.
//   - Message layout: messages live in a CSR-style flat layout — one
//     contiguous per-shard message array plus per-vertex offset segments,
//     double-buffered across supersteps and rebuilt with a counting pass
//     then a fill, so steady-state supersteps allocate no message-buffer
//     memory at all (locked by TestSteadyStateAllocFree).
//   - Transport: each worker batches its outgoing messages per
//     (source shard, dest shard) pair and hands them to a Transport at
//     the superstep barrier. The in-process Loopback transport moves the
//     batches by reference; a network transport plugs into the same seam
//     by serializing them (see transport.go).
//   - Determinism: each worker owns an ascending contiguous vertex range
//     and emits messages in (vertex, send order); destination shards fill
//     their inboxes from source batches in ascending source-shard order.
//     The concatenation is therefore the canonical (sender, seq) order —
//     no per-vertex sort anywhere. Chaos mode deliberately breaks this
//     order instead; programs whose results must not depend on delivery
//     order (like Parallel HAC's max-diffusion) are tested under chaos.
//   - Combining: a Program that also implements Combiner[M] opts into
//     sender-side folding — messages addressed to the same destination
//     vertex within one shard's superstep are folded into a single
//     envelope at the sender, cutting cross-shard traffic. The fold is a
//     left fold in emission order, so an associative combiner keeps the
//     engine deterministic.
//   - Vote-to-halt: a vertex that returns halt stops being scheduled
//     until a message arrives for it; the run ends when every vertex has
//     halted and no messages are in flight. Converged regions therefore
//     stop computing and sending entirely — the BSP mirror of the
//     shared-memory path's frontier pruning.
package bsp

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"

	"shoal/internal/shard"
)

// VertexID identifies a vertex; ids are dense 0..N-1.
type VertexID int32

// Program is the vertex computation. Compute runs once per eligible
// vertex per superstep. A vertex is eligible at superstep 0, and
// thereafter iff it received messages or declined to halt last time it
// ran.
type Program[M any] interface {
	// Compute processes vertex v at the given superstep. inbox holds the
	// messages sent to v during the previous superstep; the slice aliases
	// the engine's reused message buffers and is only valid for the
	// duration of the call — copy any payloads that must outlive it.
	// send enqueues a message for delivery next superstep. Returning true
	// votes to halt; an incoming message reactivates the vertex.
	Compute(superstep int, v VertexID, inbox []M, send func(to VertexID, m M)) (halt bool)
}

// Combiner is an optional Program upgrade: when the program implements
// it, the engine folds messages addressed to the same destination vertex
// at the sender side (one folded envelope per source shard per
// destination). Combine must be associative, and the program must not
// depend on message multiplicity — the engine may deliver one combined
// message where n were sent.
type Combiner[M any] interface {
	Combine(acc, m M) M
}

// Config controls engine execution.
type Config struct {
	// Workers is the number of shards (= worker goroutines) when no Plan
	// is given; 0 means GOMAXPROCS. Clamped to the vertex count.
	Workers int
	// Plan, when non-empty, is the row-range placement: shard i's worker
	// owns vertices [Plan.Bounds(i)). The plan must cover [0, n) exactly.
	// Workers is ignored when a plan is supplied.
	Plan shard.Plan
	// MaxSupersteps aborts runs that fail to converge; 0 means 1<<20.
	MaxSupersteps int
	// Chaos, when non-nil, enables failure injection.
	Chaos *Chaos
}

// Chaos injects distribution pathologies that a correct BSP program must
// tolerate: shuffled message delivery order and stalled (but eventually
// delivered) batches within a superstep boundary.
type Chaos struct {
	// Seed drives the shuffling.
	Seed uint64
	// ShuffleInbox randomizes per-vertex message order instead of the
	// canonical (sender, seq) order.
	ShuffleInbox bool
	// StallBatches delivers each destination's source-shard batches in a
	// random order within the barrier — emulating cross-host batches
	// arriving late — instead of ascending source order.
	StallBatches bool
}

// Stats reports one run's execution profile.
type Stats struct {
	Supersteps int
	// Messages is the total number of envelopes delivered (after any
	// sender-side combining).
	Messages int64
	// Sends is the total number of send() calls programs issued.
	Sends int64
	// CombinerHits counts sends folded into an existing envelope by the
	// sender-side combiner (Sends - CombinerHits envelopes were shipped).
	CombinerHits int64
	// ActivePerStep is the number of vertices computed per superstep.
	ActivePerStep []int
}

// CombinerHitRate is the fraction of sends absorbed by the combiner.
func (s *Stats) CombinerHitRate() float64 {
	if s.Sends == 0 {
		return 0
	}
	return float64(s.CombinerHits) / float64(s.Sends)
}

// Add accumulates another run's profile (used by callers that run one
// BSP job per clustering round and report the aggregate).
func (s *Stats) Add(o *Stats) {
	if o == nil {
		return
	}
	s.Supersteps += o.Supersteps
	s.Messages += o.Messages
	s.Sends += o.Sends
	s.CombinerHits += o.CombinerHits
	s.ActivePerStep = append(s.ActivePerStep, o.ActivePerStep...)
}

// inboxBuf is one shard's CSR-style inbox: msgs[off[v-lo]:off[v-lo+1]]
// are vertex v's messages. cur is the fill-cursor scratch. Two
// generations per shard alternate across supersteps.
type inboxBuf[M any] struct {
	off  []int32 // len rows+1
	cur  []int32 // len rows
	msgs []M
}

// workerState is one shard worker's mutable state.
type workerState[M any] struct {
	out [][]Envelope[M] // outgoing batch per destination shard
	// slot/slotEp implement the sender-side combiner: slotEp[v] == epoch
	// marks that out[owner[v]] already holds an envelope for v this
	// superstep, at index slot[v]. Allocated only when combining.
	slot   []int32
	slotEp []uint32
	epoch  uint32
	send   func(to VertexID, m M) // persistent closure (no per-step alloc)

	err       error
	sends     int64
	hits      int64
	computed  int
	delta     int // net change of active vertices this superstep
	delivered int64
}

// Engine executes a Program over a fixed set of vertices.
type Engine[M any] struct {
	n    int
	prog Program[M]
	comb Combiner[M]
	cfg  Config
	tr   Transport[M]

	bounds []int32 // shard row bounds, len S+1
	S      int
	owner  []int32 // vertex -> owning shard

	initialized bool
	active      []bool
	ws          []workerState[M]
	in, nxt     []inboxBuf[M]
	cmds        []chan wcmd
	done        chan struct{}
}

// wcmd drives a persistent shard worker through one phase.
type wcmd struct {
	step int32
	kind int8 // 0 compute+send, 1 recv+fill
}

// New creates an engine over n vertices. The topology lives inside the
// program (vertices send to whichever ids they know); the engine only
// validates destinations and owns placement, transport and delivery.
func New[M any](n int, prog Program[M], cfg Config) (*Engine[M], error) {
	if n <= 0 {
		return nil, errors.New("bsp: vertex count must be positive")
	}
	if prog == nil {
		return nil, errors.New("bsp: nil program")
	}
	if cfg.MaxSupersteps <= 0 {
		cfg.MaxSupersteps = 1 << 20
	}
	var bounds []int32
	if cfg.Plan.NumShards() > 0 {
		p := cfg.Plan
		S := p.NumShards()
		bounds = make([]int32, S+1)
		for i := 0; i < S; i++ {
			lo, hi := p.Bounds(i)
			if lo > hi {
				return nil, fmt.Errorf("bsp: plan shard %d has inverted bounds [%d,%d)", i, lo, hi)
			}
			bounds[i] = lo
			bounds[i+1] = hi
		}
		if bounds[0] != 0 || int(bounds[S]) != n {
			return nil, fmt.Errorf("bsp: plan covers [%d,%d), want [0,%d)", bounds[0], bounds[S], n)
		}
	} else {
		w := cfg.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		if w > n {
			w = n
		}
		bounds = make([]int32, w+1)
		for i := 0; i <= w; i++ {
			bounds[i] = int32(i * n / w)
		}
	}
	e := &Engine[M]{n: n, prog: prog, cfg: cfg, bounds: bounds, S: len(bounds) - 1}
	e.comb, _ = prog.(Combiner[M])
	return e, nil
}

// Shards returns the number of worker shards the engine runs with.
func (e *Engine[M]) Shards() int { return e.S }

// SetTransport replaces the default in-process Loopback with a custom
// transport (the multi-host seam). Must be called before Run. The
// batches handed to Send are owned by the engine and reused after the
// next superstep's barrier — a remote transport must copy or serialize
// them inside Send.
func (e *Engine[M]) SetTransport(t Transport[M]) { e.tr = t }

// init allocates the reusable engine state on first Run.
func (e *Engine[M]) init() {
	if e.initialized {
		return
	}
	e.initialized = true
	if e.tr == nil {
		e.tr = NewLoopback[M](e.S)
	}
	e.active = make([]bool, e.n)
	e.owner = make([]int32, e.n)
	for s := 0; s < e.S; s++ {
		for v := e.bounds[s]; v < e.bounds[s+1]; v++ {
			e.owner[v] = int32(s)
		}
	}
	e.ws = make([]workerState[M], e.S)
	e.in = make([]inboxBuf[M], e.S)
	e.nxt = make([]inboxBuf[M], e.S)
	for s := 0; s < e.S; s++ {
		rows := int(e.bounds[s+1] - e.bounds[s])
		e.in[s] = inboxBuf[M]{off: make([]int32, rows+1), cur: make([]int32, rows)}
		e.nxt[s] = inboxBuf[M]{off: make([]int32, rows+1), cur: make([]int32, rows)}
		ws := &e.ws[s]
		ws.out = make([][]Envelope[M], e.S)
		if e.comb != nil {
			ws.slot = make([]int32, e.n)
			ws.slotEp = make([]uint32, e.n)
		}
		ws.send = e.makeSend(ws)
	}
}

// makeSend builds worker ws's persistent send closure: destination
// validation, sender-side combining, and per-(source,dest) batching.
func (e *Engine[M]) makeSend(ws *workerState[M]) func(VertexID, M) {
	return func(to VertexID, m M) {
		if ws.err != nil {
			return
		}
		t := int32(to)
		if t < 0 || int(t) >= e.n {
			ws.err = fmt.Errorf("bsp: sent to out-of-range vertex %d", to)
			return
		}
		ws.sends++
		d := e.owner[t]
		if e.comb != nil {
			if ws.slotEp[t] == ws.epoch {
				b := ws.out[d]
				i := ws.slot[t]
				b[i].Msg = e.comb.Combine(b[i].Msg, m)
				ws.hits++
				return
			}
			ws.slotEp[t] = ws.epoch
			ws.slot[t] = int32(len(ws.out[d]))
		}
		ws.out[d] = append(ws.out[d], Envelope[M]{To: to, Msg: m})
	}
}

// Run executes supersteps until every vertex halts with no messages in
// flight, or MaxSupersteps is exceeded (an error). Run may be called
// repeatedly; the engine reuses its message buffers, so steady-state
// supersteps are allocation-free once capacities have grown.
func (e *Engine[M]) Run() (*Stats, error) {
	e.init()
	for v := range e.active {
		e.active[v] = true
	}
	for s := 0; s < e.S; s++ {
		ws := &e.ws[s]
		ws.err, ws.sends, ws.hits = nil, 0, 0
		clear(e.in[s].off)
		clear(e.nxt[s].off)
		// A previous Run that aborted between its send and fill phases
		// may have left undelivered batches in the transport; drain them
		// so they cannot surface as phantom superstep-0 messages.
		if _, err := e.tr.Recv(0, s); err != nil {
			return nil, err
		}
	}
	activeCnt := e.n
	pending := int64(0)

	if e.S > 1 {
		e.cmds = make([]chan wcmd, e.S)
		e.done = make(chan struct{}, e.S)
		for s := 0; s < e.S; s++ {
			e.cmds[s] = make(chan wcmd, 1)
			go e.worker(s)
		}
		defer func() {
			for s := 0; s < e.S; s++ {
				close(e.cmds[s])
			}
		}()
	}

	stats := &Stats{}
	for step := 0; ; step++ {
		if activeCnt == 0 && pending == 0 {
			break
		}
		if step >= e.cfg.MaxSupersteps {
			return stats, fmt.Errorf("bsp: exceeded %d supersteps without converging", e.cfg.MaxSupersteps)
		}
		e.phase(wcmd{step: int32(step), kind: 0})
		for s := 0; s < e.S; s++ {
			if err := e.ws[s].err; err != nil {
				return stats, err
			}
		}
		e.phase(wcmd{step: int32(step), kind: 1})
		var delivered int64
		computed := 0
		for s := 0; s < e.S; s++ {
			ws := &e.ws[s]
			if ws.err != nil {
				return stats, ws.err
			}
			delivered += ws.delivered
			computed += ws.computed
			activeCnt += ws.delta
		}
		e.in, e.nxt = e.nxt, e.in
		pending = delivered
		stats.Messages += delivered
		stats.ActivePerStep = append(stats.ActivePerStep, computed)
		stats.Supersteps++
	}
	for s := 0; s < e.S; s++ {
		stats.Sends += e.ws[s].sends
		stats.CombinerHits += e.ws[s].hits
	}
	return stats, nil
}

// phase runs one barrier-delimited phase on every shard — inline when
// single-sharded, via the persistent workers otherwise.
func (e *Engine[M]) phase(c wcmd) {
	if e.S == 1 {
		e.runPhase(0, c)
		return
	}
	for s := 0; s < e.S; s++ {
		e.cmds[s] <- c
	}
	for s := 0; s < e.S; s++ {
		<-e.done
	}
}

// worker is the persistent goroutine driving shard s, one phase per
// command. It exits when the command channel closes at the end of Run.
func (e *Engine[M]) worker(s int) {
	for c := range e.cmds[s] {
		e.runPhase(s, c)
		e.done <- struct{}{}
	}
}

func (e *Engine[M]) runPhase(s int, c wcmd) {
	if c.kind == 0 {
		e.computeShard(s, int(c.step))
	} else {
		e.fillShard(s, int(c.step))
	}
}

// computeShard runs the superstep's compute over shard s's rows and
// hands the resulting per-destination batches to the transport. Eligible
// vertices (active, or holding messages) are scanned in ascending row
// order, so the shard's emission stream is in canonical (sender, seq)
// order by construction.
func (e *Engine[M]) computeShard(s, step int) {
	ws := &e.ws[s]
	ws.epoch++
	ws.computed, ws.delta = 0, 0
	for d := range ws.out {
		ws.out[d] = ws.out[d][:0]
	}
	in := &e.in[s]
	lo, hi := e.bounds[s], e.bounds[s+1]
	chaos := e.cfg.Chaos
	for v := lo; v < hi; v++ {
		i0, i1 := in.off[v-lo], in.off[v-lo+1]
		if !e.active[v] && i0 == i1 {
			continue
		}
		inbox := in.msgs[i0:i1:i1]
		if chaos != nil && chaos.ShuffleInbox && len(inbox) > 1 {
			rng := rand.New(rand.NewPCG(chaos.Seed, uint64(step)<<32|uint64(uint32(v))))
			rng.Shuffle(len(inbox), func(i, j int) { inbox[i], inbox[j] = inbox[j], inbox[i] })
		}
		halt := e.prog.Compute(step, VertexID(v), inbox, ws.send)
		if ws.err != nil {
			return
		}
		if halt == e.active[v] { // state flips
			if halt {
				ws.delta--
			} else {
				ws.delta++
			}
		}
		e.active[v] = !halt
		ws.computed++
	}
	for d := 0; d < e.S; d++ {
		if len(ws.out[d]) == 0 {
			continue
		}
		if err := e.tr.Send(step, s, d, ws.out[d]); err != nil {
			ws.err = err
			return
		}
	}
}

// fillShard builds shard d's next-superstep inbox from the transport's
// batches: a counting pass over the envelopes, a prefix sum into the
// per-vertex offsets, then the fill — batches in ascending source-shard
// order, envelopes in emission order, which concatenates to the
// canonical (sender, seq) delivery order without any sort. All buffers
// are reused; steady-state supersteps allocate nothing here.
func (e *Engine[M]) fillShard(d, step int) {
	ws := &e.ws[d]
	ws.delivered = 0
	batches, err := e.tr.Recv(step, d)
	if err != nil {
		ws.err = err
		return
	}
	chaos := e.cfg.Chaos
	if chaos != nil && chaos.StallBatches && len(batches) > 1 {
		rng := rand.New(rand.NewPCG(chaos.Seed^0x57A11ED, uint64(step)<<32|uint64(uint32(d))))
		rng.Shuffle(len(batches), func(i, j int) { batches[i], batches[j] = batches[j], batches[i] })
	}
	nb := &e.nxt[d]
	lo := e.bounds[d]
	rows := int(e.bounds[d+1] - lo)
	off := nb.off
	clear(off)
	total := 0
	for _, bt := range batches {
		total += len(bt)
		for i := range bt {
			off[int32(bt[i].To)-lo+1]++
		}
	}
	for i := 0; i < rows; i++ {
		off[i+1] += off[i]
	}
	if cap(nb.msgs) < total {
		nb.msgs = make([]M, total)
	} else {
		nb.msgs = nb.msgs[:total]
	}
	cur := nb.cur
	copy(cur, off[:rows])
	for _, bt := range batches {
		for i := range bt {
			r := int32(bt[i].To) - lo
			nb.msgs[cur[r]] = bt[i].Msg
			cur[r]++
		}
	}
	ws.delivered = int64(total)
}
