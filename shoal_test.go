package shoal

import (
	"bytes"
	"reflect"
	"testing"
)

// fastConfig is a quick pipeline configuration for facade tests.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Word2Vec.Epochs = 2
	cfg.Word2Vec.Dim = 16
	cfg.Word2Vec.MinCount = 1
	cfg.Graph.MinSimilarity = 0.2
	cfg.HAC.StopThreshold = 0.25
	cfg.Taxonomy.Levels = []float64{0.25, 0.5}
	return cfg
}

func buildCurated(t *testing.T) *System {
	t.Helper()
	sys, err := Build(CuratedCorpus(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestBuildAndStats(t *testing.T) {
	sys := buildCurated(t)
	if sys.Topics() == 0 {
		t.Fatal("no topics built")
	}
	if sys.Stats() == "" {
		t.Fatal("empty stats")
	}
	if len(sys.RootTopics()) == 0 {
		t.Fatal("no root topics")
	}
	if sys.Corpus() == nil || sys.Taxonomy() == nil {
		t.Fatal("nil accessors")
	}
}

func TestScenarioAQueryToTopic(t *testing.T) {
	sys := buildCurated(t)
	hits := sys.SearchTopics("beach dress", 3)
	if len(hits) == 0 {
		t.Fatal("no topic hits for 'beach dress'")
	}
	topic, err := sys.Topic(hits[0].Topic)
	if err != nil {
		t.Fatal(err)
	}
	// The matched topic should be dominated by beach-trip items
	// (scenario 0).
	beach := 0
	for _, it := range topic.Items {
		if sys.Corpus().Items[it].Scenario == 0 {
			beach++
		}
	}
	if beach*2 < len(topic.Items) {
		t.Fatalf("top hit topic is not the beach topic: %d/%d beach items", beach, len(topic.Items))
	}
}

func TestScenarioBSubTopics(t *testing.T) {
	sys := buildCurated(t)
	for _, root := range sys.RootTopics() {
		subs, err := sys.SubTopics(root)
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range subs {
			st, err := sys.Topic(sub)
			if err != nil {
				t.Fatal(err)
			}
			if st.Parent != root {
				t.Fatalf("subtopic %d has parent %d, want %d", sub, st.Parent, root)
			}
		}
	}
	if _, err := sys.SubTopics(9999); err == nil {
		t.Fatal("unknown topic accepted")
	}
}

func TestScenarioCTopicCategoryItems(t *testing.T) {
	sys := buildCurated(t)
	hits := sys.SearchTopics("beach dress", 1)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	topic, err := sys.Topic(hits[0].Topic)
	if err != nil {
		t.Fatal(err)
	}
	all, err := sys.TopicItems(topic.ID, RootCategory)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(topic.Items) {
		t.Fatalf("TopicItems(all) = %d items, want %d", len(all), len(topic.Items))
	}
	if len(topic.Categories) == 0 {
		t.Fatal("topic has no categories")
	}
	sum := 0
	for _, cat := range topic.Categories {
		sub, err := sys.TopicItems(topic.ID, cat)
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range sub {
			if sys.Corpus().Items[it].Category != cat {
				t.Fatalf("item %d leaked into category %d listing", it, cat)
			}
		}
		sum += len(sub)
	}
	if sum != len(all) {
		t.Fatalf("category partitions sum to %d, want %d", sum, len(all))
	}
}

func TestScenarioDRelatedCategories(t *testing.T) {
	sys, err := Build(CuratedCorpus(), func() Config {
		cfg := fastConfig()
		cfg.CatCorr.MinStrength = 0 // tiny corpus: a single root topic per scenario
		return cfg
	}())
	if err != nil {
		t.Fatal(err)
	}
	pairs := sys.CategoryCorrelations()
	if len(pairs) == 0 {
		t.Fatal("no category correlations")
	}
	// The Dress category (id of "Dress" leaf) should be correlated with
	// other beach categories like Swimwear or Sunblock.
	var dress CategoryID = -1
	for i := range sys.Corpus().Categories {
		if sys.Corpus().Categories[i].Name == "Dress" {
			dress = sys.Corpus().Categories[i].ID
		}
	}
	rel := sys.RelatedCategories(dress)
	if len(rel) == 0 {
		t.Fatalf("Dress has no related categories; pairs=%v", pairs)
	}
}

func TestItemTopicBounds(t *testing.T) {
	sys := buildCurated(t)
	if sys.ItemTopic(-1) != NoTopic || sys.ItemTopic(99999) != NoTopic {
		t.Fatal("out-of-range item ids must map to NoTopic")
	}
}

func TestABTestTopicBeatsCategory(t *testing.T) {
	gen := DefaultCorpusConfig()
	gen.Scenarios = 10
	gen.ItemsPerScenario = 60
	gen.QueriesPerScenario = 15
	gen.NoiseItems = 30
	gen.HeadQueries = 5
	corpus, err := GenerateCorpus(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	sys, err := Build(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ab := DefaultABConfig()
	ab.Users = 30_000
	res, err := sys.RunABTest(ab)
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiment.CTR <= res.Control.CTR {
		t.Fatalf("topic arm CTR %.4f not above category arm %.4f", res.Experiment.CTR, res.Control.CTR)
	}
	if res.Lift <= 0 {
		t.Fatalf("lift = %f, want positive", res.Lift)
	}
}

func TestSaveLoadTaxonomy(t *testing.T) {
	sys := buildCurated(t)
	var buf bytes.Buffer
	if err := sys.SaveTaxonomy(&buf); err != nil {
		t.Fatal(err)
	}
	tx, err := LoadTaxonomy(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tx, sys.Taxonomy()) {
		t.Fatal("taxonomy changed across save/load")
	}
}

func TestRecommendHelper(t *testing.T) {
	sys := buildCurated(t)
	tr, err := sys.TopicRecommender()
	if err != nil {
		t.Fatal(err)
	}
	// Find a placed item.
	var seed ItemID = -1
	for it := range sys.Corpus().Items {
		if sys.ItemTopic(ItemID(it)) != NoTopic {
			seed = ItemID(it)
			break
		}
	}
	if seed == -1 {
		t.Fatal("no placed item")
	}
	recs := Recommend(tr, seed, 3, 7)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	again := Recommend(tr, seed, 3, 7)
	if !reflect.DeepEqual(recs, again) {
		t.Fatal("same rng seed gave different recommendations")
	}
}
