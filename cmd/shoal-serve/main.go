// Command shoal-serve builds a SHOAL taxonomy and serves it over HTTP —
// the online counterpart of the deployed system, which answers millions of
// topic searches per day (paper §1, §3).
//
// Usage:
//
//	shoal-serve -addr :8080                       # curated mini corpus
//	shoal-serve -addr :8080 -corpus corpus.json.gz
//	shoal-serve -addr :8080 -refresh 24h          # daily rebuild + hot swap
//	shoal-serve -addr :8080 -refresh 24h -incremental  # delta-driven rebuilds
//
// Endpoints: /api/search?q=..., /api/topics/{id},
// /api/topics/{id}/items[?category=N], /api/categories/{id}/related,
// /api/stats (stage timings, swap count, per-route latency digests),
// /api/trace (the serving build's Chrome trace-event JSON), and
// /metrics (Prometheus text, including runtime health gauges).
//
// With -refresh the server mirrors the production operation mode: the
// sliding-window pipeline rebuilds in the background and each finished
// build is atomically swapped into the running handler — requests in
// flight keep their snapshot, new requests see the new taxonomy, and the
// listener never goes down.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"shoal/internal/core"
	"shoal/internal/model"
	"shoal/internal/obs"
	"shoal/internal/serve"
	"shoal/internal/store"
	"shoal/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("shoal-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	corpusPath := flag.String("corpus", "", "corpus to build from (empty: curated mini corpus)")
	refresh := flag.Duration("refresh", 0, "interval between background rebuilds hot-swapped into the handler (0 disables)")
	pprofAddr := flag.String("pprof", "", "side listener address exposing net/http/pprof (e.g. localhost:6060; empty disables)")
	shards := flag.Int("shards", 0, "row-range shards of the graph substrate (0: GOMAXPROCS); reported in /api/stats")
	frontier := flag.Float64("frontier", 0, "frontier density of pruned diffusion (0: default 0.25, negative: dense); output is identical for any value")
	bspMode := flag.Bool("bsp", false, "route clustering diffusion through the shard-native BSP engine; output is identical, engine stats land in /api/stats")
	incremental := flag.Bool("incremental", false, "delta-driven rebuilds: each refresh recomputes only what the window slide changed (byte-identical output; delta stats land in /api/stats)")
	flag.Parse()

	// Profiling stays off the serving listener: a dedicated mux on a side
	// address, so production traffic never routes near the profiler and
	// the port can stay firewalled.
	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on %s (try /debug/pprof/)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, obs.PprofMux()); err != nil {
				log.Printf("pprof listener failed: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	corpus := synth.Curated()
	cfg := core.DefaultConfig()
	cfg.Word2Vec.Epochs = 2
	cfg.Word2Vec.MinCount = 1
	cfg.Graph.MinSimilarity = 0.2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3, 0.5}
	cfg.CatCorr.MinStrength = 0
	cfg.Shards = *shards
	cfg.HAC.FrontierDensity = *frontier
	cfg.BSP = *bspMode
	cfg.Incremental = *incremental
	if *corpusPath != "" {
		var err error
		corpus, err = store.LoadCorpus(*corpusPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.CatCorr.MinStrength = 2
	}

	// The daily pipeline owns the sliding click window; the first rebuild
	// is the build we start serving from.
	pipe, err := core.NewDailyPipeline(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe.IngestDay(corpus.Clicks); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	b, err := pipe.RebuildContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built taxonomy in %v: topics=%d roots=%d\n",
		time.Since(start).Round(time.Millisecond),
		len(b.Taxonomy.Topics), len(b.Taxonomy.Roots()))
	for _, st := range b.StageTimings {
		fmt.Printf("  %-22s start=%-8v elapsed=%v\n",
			st.Stage, st.Start.Round(time.Millisecond), st.Elapsed.Round(time.Millisecond))
	}

	h, err := serve.NewHandler(b)
	if err != nil {
		log.Fatal(err)
	}
	// Runtime health gauges (heap, GC pauses, goroutines) land in the
	// handler's registry, so /metrics serves them next to the request
	// telemetry.
	go obs.NewRuntimeSampler(h.Registry()).Run(ctx, 5*time.Second)
	if *refresh > 0 {
		go refreshLoop(ctx, pipe, h, *refresh, corpus.Clicks)
	}

	srv := &http.Server{
		Addr:         *addr,
		Handler:      h,
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("serving on %s (try /api/search?q=beach+dress)\n", *addr)

	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}

// refreshLoop periodically ingests the next day's clicks, rebuilds from
// the sliding window, and hot-swaps the result into the handler. A failed
// or canceled rebuild leaves the currently served build untouched.
func refreshLoop(ctx context.Context, pipe *core.DailyPipeline, h *serve.Handler, every time.Duration, clicks []model.ClickEvent) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		// Replay the same click stream shifted past the current window,
		// preserving per-event day offsets — a stand-in for the production
		// system's fresh logs. The shift keeps the window at a constant
		// click mass: the replayed span evicts the previous one.
		_, _, maxDay := pipe.WindowStats()
		shift := maxDay + 1
		next := make([]model.ClickEvent, len(clicks))
		for i, ev := range clicks {
			next[i] = ev
			next[i].Day = ev.Day + shift
		}
		if err := pipe.IngestDay(next); err != nil {
			log.Printf("refresh: ingest failed: %v", err)
			continue
		}
		prev := pipe.Last()
		start := time.Now()
		b, err := pipe.RebuildContext(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			log.Printf("refresh: rebuild failed: %v", err)
			continue
		}
		stability := -1.0
		if s, err := core.Stability(prev, b); err == nil {
			stability = s
		}
		if err := h.Swap(b); err != nil {
			log.Printf("refresh: swap rejected: %v", err)
			continue
		}
		log.Printf("refresh: swapped build #%d in %v (topics=%d stability=%.3f)",
			h.Swaps(), time.Since(start).Round(time.Millisecond),
			len(b.Taxonomy.Topics), stability)
		if d := b.Delta; d != nil {
			coldNote := ""
			if d.ClusterCold != "" {
				coldNote = " cluster-cold=" + d.ClusterCold
			}
			log.Printf("refresh: delta dirty-items=%d dirty-rows=%d changed-edges=%d seeded-rows=%d replayed-rounds=%d replayed-merges=%d dense-fallback=%v%s",
				d.DirtyItems, d.DirtyRows, d.ChangedEdges, d.SeededRows, d.ReplayedRounds, d.ReplayedMerges, d.DenseFallback, coldNote)
		}
	}
}
