package word2vec

import (
	"bytes"
	"encoding/gob"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := trainTestModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != m.Dim() || got.Words() != m.Words() {
		t.Fatalf("shape changed: dim %d->%d words %d->%d", m.Dim(), got.Dim(), m.Words(), got.Words())
	}
	// Cosines must be identical.
	a, err := m.Cosine("beach", "swim")
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Cosine("beach", "swim")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("cosine changed across round trip: %f vs %f", a, b)
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not gob")); err == nil {
		t.Fatal("garbage accepted")
	}
	encode := func(w modelWire) *bytes.Buffer {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if _, err := Load(encode(modelWire{Dim: 0})); err == nil {
		t.Fatal("zero dim accepted")
	}
	if _, err := Load(encode(modelWire{Dim: 4, Words: []string{"a"}, Vecs: make([]float32, 3)})); err == nil {
		t.Fatal("mismatched vector length accepted")
	}
	if _, err := Load(encode(modelWire{Dim: 1, Words: []string{"a", "a"}, Vecs: make([]float32, 2)})); err == nil {
		t.Fatal("duplicate words accepted")
	}
}
