// Package cmd_test builds the real binaries and drives them end to end:
// shoal-gen writes a corpus, shoal-build turns it into a taxonomy, and the
// artifacts round-trip through the store formats.
package cmd_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"shoal"
	"shoal/internal/store"
)

// buildTool compiles one command into dir and returns the binary path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./"+name)
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// Tests run in cmd/; the commands live here.
	return wd
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, buf.String())
	}
	return buf.String()
}

func TestGenBuildPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries; skipped in -short")
	}
	dir := t.TempDir()
	gen := buildTool(t, dir, "shoal-gen")
	build := buildTool(t, dir, "shoal-build")

	corpusPath := filepath.Join(dir, "corpus.json.gz")
	out := run(t, gen, "-out", corpusPath, "-scenarios", "6", "-items", "40", "-queries", "10", "-noise", "15")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("shoal-gen output: %q", out)
	}
	corpus, err := store.LoadCorpus(corpusPath)
	if err != nil {
		t.Fatalf("generated corpus unreadable: %v", err)
	}
	if len(corpus.Items) != 6*40+15 {
		t.Fatalf("items = %d, want %d", len(corpus.Items), 6*40+15)
	}

	taxPath := filepath.Join(dir, "tax.gob")
	out = run(t, build, "-corpus", corpusPath, "-out", taxPath, "-stop", "0.12", "-v")
	if !strings.Contains(out, "taxonomy:") {
		t.Fatalf("shoal-build output: %q", out)
	}
	f, err := os.Open(taxPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tx, err := shoal.LoadTaxonomy(f)
	if err != nil {
		t.Fatalf("built taxonomy unreadable: %v", err)
	}
	if len(tx.Topics) == 0 {
		t.Fatal("built taxonomy has no topics")
	}
	if len(tx.ItemTopic) != len(corpus.Items) {
		t.Fatalf("taxonomy covers %d items, corpus has %d", len(tx.ItemTopic), len(corpus.Items))
	}

	// The -bsp flag routes clustering diffusion through the BSP engine;
	// the built taxonomy must be identical and the engine stats printed.
	bspPath := filepath.Join(dir, "tax-bsp.gob")
	out = run(t, build, "-corpus", corpusPath, "-out", bspPath, "-stop", "0.12", "-bsp", "-v")
	if !strings.Contains(out, "bsp: supersteps=") {
		t.Fatalf("shoal-build -bsp -v did not report engine stats: %q", out)
	}
	bf, err := os.Open(bspPath)
	if err != nil {
		t.Fatal(err)
	}
	defer bf.Close()
	btx, err := shoal.LoadTaxonomy(bf)
	if err != nil {
		t.Fatalf("BSP-built taxonomy unreadable: %v", err)
	}
	if !reflect.DeepEqual(tx, btx) {
		t.Fatal("-bsp changed the built taxonomy")
	}
}

func TestGenCurated(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles binaries; skipped in -short")
	}
	dir := t.TempDir()
	gen := buildTool(t, dir, "shoal-gen")
	corpusPath := filepath.Join(dir, "beach.json")
	run(t, gen, "-curated", "-out", corpusPath)
	corpus, err := store.LoadCorpus(corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Scenarios) != 3 {
		t.Fatalf("curated scenarios = %d, want 3", len(corpus.Scenarios))
	}
}
