package synth

import (
	"reflect"
	"testing"

	"shoal/internal/model"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Scenarios = 6
	cfg.ItemsPerScenario = 40
	cfg.QueriesPerScenario = 10
	cfg.NoiseItems = 20
	cfg.HeadQueries = 5
	return cfg
}

func TestGenerateValidCorpus(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("generated corpus invalid: %v", err)
	}
	cfg := smallConfig()
	wantItems := cfg.Scenarios*cfg.ItemsPerScenario + cfg.NoiseItems
	if len(c.Items) != wantItems {
		t.Fatalf("items = %d, want %d", len(c.Items), wantItems)
	}
	wantQueries := cfg.Scenarios*cfg.QueriesPerScenario + cfg.HeadQueries
	if len(c.Queries) != wantQueries {
		t.Fatalf("queries = %d, want %d", len(c.Queries), wantQueries)
	}
	if len(c.Scenarios) != cfg.Scenarios {
		t.Fatalf("scenario names = %d, want %d", len(c.Scenarios), cfg.Scenarios)
	}
	if len(c.Clicks) == 0 {
		t.Fatal("no clicks generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different corpora")
	}
	cfg := smallConfig()
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Clicks, c.Clicks) {
		t.Fatal("different seeds produced identical click logs")
	}
}

func TestGenerateScenarioLabels(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	labeled := 0
	for _, it := range c.Items {
		if it.Scenario != model.NoScenario {
			labeled++
			if int(it.Scenario) < 0 || int(it.Scenario) >= cfg.Scenarios {
				t.Fatalf("item %d has out-of-range scenario %d", it.ID, it.Scenario)
			}
		}
	}
	if labeled != cfg.Scenarios*cfg.ItemsPerScenario {
		t.Fatalf("labeled items = %d, want %d", labeled, cfg.Scenarios*cfg.ItemsPerScenario)
	}
}

func TestGenerateScenariosSpanCategories(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cats := make(map[model.ScenarioID]map[model.CategoryID]bool)
	for _, it := range c.Items {
		if it.Scenario == model.NoScenario {
			continue
		}
		if cats[it.Scenario] == nil {
			cats[it.Scenario] = make(map[model.CategoryID]bool)
		}
		cats[it.Scenario][it.Category] = true
	}
	multi := 0
	for _, set := range cats {
		if len(set) > 1 {
			multi++
		}
	}
	if multi < len(cats)/2 {
		t.Fatalf("only %d/%d scenarios span multiple categories", multi, len(cats))
	}
}

func TestGenerateClicksMostlyInScenario(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var in, out int
	for _, ev := range c.Clicks {
		qs := c.Queries[ev.Query].Scenario
		if qs == model.NoScenario {
			continue
		}
		if c.Items[ev.Item].Scenario == qs {
			in++
		} else {
			out++
		}
	}
	if in == 0 || float64(out)/float64(in+out) > 0.15 {
		t.Fatalf("click noise too high: in=%d out=%d", in, out)
	}
}

func TestGenerateDaysWithinWindow(t *testing.T) {
	c, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range c.Clicks {
		if ev.Day < 0 || int(ev.Day) >= smallConfig().Days {
			t.Fatalf("click day %d outside [0,%d)", ev.Day, smallConfig().Days)
		}
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Scenarios = 0 },
		func(c *Config) { c.Departments = 0 },
		func(c *Config) { c.CategoriesPerScenario = 0 },
		func(c *Config) { c.ItemsPerScenario = 0 },
		func(c *Config) { c.VocabPerScenario = 1 },
		func(c *Config) { c.TitleLen = 1 },
		func(c *Config) { c.QueriesPerScenario = 0 },
		func(c *Config) { c.ClicksPerQuery = 0 },
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.ClickNoise = 1.5 },
		func(c *Config) { c.CrossDeptProb = -0.1 },
	}
	for i, mut := range mutations {
		cfg := smallConfig()
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("mutation %d: Generate accepted invalid config", i)
		}
	}
}

func TestCuratedCorpus(t *testing.T) {
	c := Curated()
	if err := c.Validate(); err != nil {
		t.Fatalf("curated corpus invalid: %v", err)
	}
	if len(c.Scenarios) != 3 {
		t.Fatalf("curated scenarios = %d, want 3", len(c.Scenarios))
	}
	// The beach scenario must span at least 4 leaf categories (Fig. 1(b)).
	cats := make(map[model.CategoryID]bool)
	for _, it := range c.Items {
		if it.Scenario == 0 {
			cats[it.Category] = true
		}
	}
	if len(cats) < 4 {
		t.Fatalf("beach scenario spans %d categories, want >=4", len(cats))
	}
	// Deterministic.
	if !reflect.DeepEqual(Curated(), Curated()) {
		t.Fatal("Curated not deterministic")
	}
}

func TestWordBankDistinct(t *testing.T) {
	b := newWordBank()
	seen := make(map[string]bool)
	for i := 0; i < 3000; i++ {
		w := b.word(i)
		if w == "" {
			t.Fatalf("word(%d) is empty", i)
		}
		if seen[w] {
			t.Fatalf("word(%d) = %q duplicates an earlier word", i, w)
		}
		seen[w] = true
	}
	if b.word(5) != b.word(5) {
		t.Fatal("word not stable")
	}
}
