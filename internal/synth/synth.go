// Package synth generates synthetic Taobao-like corpora with ground truth.
//
// The paper builds SHOAL from "hundreds of millions of items and a sliding
// window containing search queries in the last seven days" on Alibaba's
// platform — a closed dataset. This package is the substitution (DESIGN.md
// §1.3): a generative model whose latent variables are *shopping scenarios*
// (the very thing SHOAL tries to recover as topics). Each scenario spans
// several ontology categories, has its own vocabulary, and emits items,
// queries and clicks. Because the generator keeps the scenario labels, the
// reproduction can *measure* what the paper had to ask human experts:
// whether items land in the right topics.
package synth

import (
	"fmt"
	"math/rand/v2"

	"shoal/internal/model"
)

// Config parameterizes corpus generation. The zero value is invalid; start
// from DefaultConfig.
type Config struct {
	// Seed drives every random choice; equal seeds give equal corpora.
	Seed uint64
	// Scenarios is the number of ground-truth shopping scenarios.
	Scenarios int
	// Departments is the number of ontology roots (capped by the name
	// bank; extra departments get numbered names).
	Departments int
	// LeavesPerDepartment is the number of leaf categories per root.
	LeavesPerDepartment int
	// CategoriesPerScenario is how many leaf categories one scenario
	// spans. Values >1 make topics cross-category, the property Fig. 1(b)
	// illustrates.
	CategoriesPerScenario int
	// CrossDeptProb is the probability that a scenario's category is
	// drawn from a different department than its first one.
	CrossDeptProb float64
	// ItemsPerScenario is the number of items emitted per scenario.
	ItemsPerScenario int
	// NoiseItems is the number of extra items with no scenario.
	NoiseItems int
	// VocabPerScenario is the number of scenario-specific words.
	VocabPerScenario int
	// TitleLen is the number of words in an item title.
	TitleLen int
	// QueriesPerScenario is the number of distinct queries per scenario.
	QueriesPerScenario int
	// HeadQueries is the number of generic queries spanning scenarios.
	HeadQueries int
	// ClicksPerQuery is the mean number of distinct items a query clicks.
	ClicksPerQuery int
	// ClickNoise is the probability that a click lands on a uniformly
	// random item instead of a same-scenario item.
	ClickNoise float64
	// Days is the click-log span (paper: seven).
	Days int
	// AttrsPerItem is the number of attribute labels per item.
	AttrsPerItem int
	// AmbiguousTitleRate is the fraction of scenario items whose titles
	// are generic boilerplate ("hot sale gift ...") with no scenario
	// vocabulary. Those items exercise the paper's core argument: search
	// queries capture intent that item content does not.
	AmbiguousTitleRate float64
}

// DefaultConfig returns a laptop-scale corpus: ~6k items, ~1.5k queries.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		Scenarios:             30,
		Departments:           8,
		LeavesPerDepartment:   12,
		CategoriesPerScenario: 4,
		CrossDeptProb:         0.45,
		ItemsPerScenario:      200,
		NoiseItems:            150,
		VocabPerScenario:      18,
		TitleLen:              7,
		QueriesPerScenario:    40,
		HeadQueries:           25,
		ClicksPerQuery:        14,
		ClickNoise:            0.04,
		Days:                  7,
		AttrsPerItem:          2,
		AmbiguousTitleRate:    0.2,
	}
}

func (c Config) validate() error {
	switch {
	case c.Scenarios <= 0:
		return fmt.Errorf("synth: Scenarios must be positive, got %d", c.Scenarios)
	case c.Departments <= 0 || c.LeavesPerDepartment <= 0:
		return fmt.Errorf("synth: need positive Departments and LeavesPerDepartment")
	case c.CategoriesPerScenario <= 0:
		return fmt.Errorf("synth: CategoriesPerScenario must be positive")
	case c.ItemsPerScenario <= 0:
		return fmt.Errorf("synth: ItemsPerScenario must be positive")
	case c.VocabPerScenario < 2:
		return fmt.Errorf("synth: VocabPerScenario must be >= 2")
	case c.TitleLen < 2:
		return fmt.Errorf("synth: TitleLen must be >= 2")
	case c.QueriesPerScenario <= 0:
		return fmt.Errorf("synth: QueriesPerScenario must be positive")
	case c.ClicksPerQuery <= 0:
		return fmt.Errorf("synth: ClicksPerQuery must be positive")
	case c.Days <= 0:
		return fmt.Errorf("synth: Days must be positive")
	case c.ClickNoise < 0 || c.ClickNoise > 1:
		return fmt.Errorf("synth: ClickNoise must be in [0,1]")
	case c.CrossDeptProb < 0 || c.CrossDeptProb > 1:
		return fmt.Errorf("synth: CrossDeptProb must be in [0,1]")
	case c.AmbiguousTitleRate < 0 || c.AmbiguousTitleRate > 1:
		return fmt.Errorf("synth: AmbiguousTitleRate must be in [0,1]")
	}
	return nil
}

// scenario is the generator's latent state for one shopping scenario.
type scenario struct {
	name       string
	categories []model.CategoryID
	vocab      []string // scenario-specific words
	nameWords  []string // the 2 words that name the scenario
}

// Generate builds a corpus from cfg. The result passes model.Validate and
// carries ground-truth scenario labels on items and queries.
func Generate(cfg Config) (*model.Corpus, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5104A1))
	bank := newWordBank()

	corpus := &model.Corpus{}

	// --- Ontology ------------------------------------------------------
	// Root categories (departments) then leaves. Dense ids: roots first.
	var leafIDs []model.CategoryID
	for d := 0; d < cfg.Departments; d++ {
		name := fmt.Sprintf("Department %d", d)
		if d < len(departmentNames) {
			name = departmentNames[d]
		}
		root := model.CategoryID(len(corpus.Categories))
		corpus.Categories = append(corpus.Categories, model.Category{
			ID: root, Name: name, Parent: model.RootCategory,
		})
		for l := 0; l < cfg.LeavesPerDepartment; l++ {
			// Leaf names reuse bank words so titles can mention them.
			leaf := model.CategoryID(len(corpus.Categories))
			w := bank.word(d*cfg.LeavesPerDepartment + l)
			corpus.Categories = append(corpus.Categories, model.Category{
				ID: leaf, Name: w, Parent: root,
			})
			leafIDs = append(leafIDs, leaf)
		}
	}
	// leafDept[i] is the department index of leafIDs[i].
	leafDept := func(i int) int { return i / cfg.LeavesPerDepartment }

	// --- Scenarios -----------------------------------------------------
	// Scenario vocabularies start after the leaf-name words in the bank.
	vocabBase := cfg.Departments * cfg.LeavesPerDepartment
	scenarios := make([]scenario, cfg.Scenarios)
	for s := range scenarios {
		sc := &scenarios[s]
		// Vocabulary: a disjoint block per scenario.
		for w := 0; w < cfg.VocabPerScenario; w++ {
			sc.vocab = append(sc.vocab, bank.word(vocabBase+s*cfg.VocabPerScenario+w))
		}
		sc.nameWords = sc.vocab[:2]
		sc.name = sc.nameWords[0] + " " + sc.nameWords[1]
		// Categories: first uniform, rest same-department unless the
		// cross-department coin flips.
		first := rng.IntN(len(leafIDs))
		chosen := map[int]bool{first: true}
		sc.categories = append(sc.categories, leafIDs[first])
		for len(sc.categories) < cfg.CategoriesPerScenario && len(chosen) < len(leafIDs) {
			var cand int
			if rng.Float64() < cfg.CrossDeptProb {
				cand = rng.IntN(len(leafIDs))
			} else {
				d := leafDept(first)
				cand = d*cfg.LeavesPerDepartment + rng.IntN(cfg.LeavesPerDepartment)
			}
			if chosen[cand] {
				continue
			}
			chosen[cand] = true
			sc.categories = append(sc.categories, leafIDs[cand])
		}
		corpus.Scenarios = append(corpus.Scenarios, sc.name)
	}

	// --- Items ---------------------------------------------------------
	// itemsByScenario collects ids for click targeting.
	itemsByScenario := make([][]model.ItemID, cfg.Scenarios)
	emitItem := func(sid model.ScenarioID, cat model.CategoryID, title string, attrs []string, price int64, ambiguous bool) model.ItemID {
		id := model.ItemID(len(corpus.Items))
		corpus.Items = append(corpus.Items, model.Item{
			ID: id, Title: title, Category: cat, PriceCents: price,
			Attrs: attrs, Scenario: sid, TitleAmbiguous: ambiguous,
		})
		return id
	}
	// Items are emitted per product family: sellers list several
	// variants of one model with near-equivalent attribute labels and
	// price, which is exactly what entity formation groups (paper §2.1).
	// Families are scenario-local, so grouping by (category, attrs,
	// price band) never collapses items across scenarios — as in a real
	// catalog, where one SKU belongs to one product line.
	for s := range scenarios {
		sc := &scenarios[s]
		emitted := 0
		family := 0
		for emitted < cfg.ItemsPerScenario {
			family++
			cat := sc.categories[rng.IntN(len(sc.categories))]
			variants := 1 + rng.IntN(3)
			if rem := cfg.ItemsPerScenario - emitted; variants > rem {
				variants = rem
			}
			attrs := make([]string, 0, cfg.AttrsPerItem)
			attrs = append(attrs, fmt.Sprintf("model=s%d-f%d", s, family))
			for a := 1; a < cfg.AttrsPerItem; a++ {
				attrs = append(attrs, fmt.Sprintf("a%d=%d", a, rng.IntN(6)))
			}
			basePrice := int64(500 + rng.IntN(20000))
			// A whole family is either descriptive or generic: sellers
			// write one listing style per product line.
			ambiguous := rng.Float64() < cfg.AmbiguousTitleRate
			for v := 0; v < variants; v++ {
				title := make([]string, 0, cfg.TitleLen)
				if ambiguous {
					// Generic boilerplate: category word only; no
					// scenario vocabulary. Query clicks remain the
					// sole evidence of intent.
					title = append(title, corpus.Categories[cat].Name)
					for len(title) < cfg.TitleLen {
						title = append(title, genericTitleWords[rng.IntN(len(genericTitleWords))])
					}
				} else {
					// Title = scenario name word + category word + vocab.
					title = append(title, sc.nameWords[rng.IntN(2)])
					title = append(title, corpus.Categories[cat].Name)
					for len(title) < cfg.TitleLen {
						title = append(title, sc.vocab[rng.IntN(len(sc.vocab))])
					}
				}
				// Variant prices jitter within ~10% of the family base.
				price := basePrice + int64(rng.IntN(int(basePrice/10)+1))
				id := emitItem(model.ScenarioID(s), cat, joinWords(title), attrs, price, ambiguous)
				itemsByScenario[s] = append(itemsByScenario[s], id)
				emitted++
			}
		}
	}
	for i := 0; i < cfg.NoiseItems; i++ {
		cat := leafIDs[rng.IntN(len(leafIDs))]
		title := make([]string, cfg.TitleLen)
		for w := range title {
			title[w] = bank.word(rng.IntN(vocabBase + cfg.Scenarios*cfg.VocabPerScenario))
		}
		emitItem(model.NoScenario, cat, joinWords(title), nil, int64(500+rng.IntN(20000)), false)
	}

	// --- Queries ---------------------------------------------------------
	queriesByScenario := make([][]model.QueryID, cfg.Scenarios)
	emitQuery := func(sid model.ScenarioID, text string) model.QueryID {
		id := model.QueryID(len(corpus.Queries))
		corpus.Queries = append(corpus.Queries, model.Query{ID: id, Text: text, Scenario: sid})
		return id
	}
	for s := range scenarios {
		sc := &scenarios[s]
		for q := 0; q < cfg.QueriesPerScenario; q++ {
			n := 1 + rng.IntN(3)
			words := make([]string, 0, n+1)
			// Queries usually carry a scenario name word, mirroring
			// how "beach dress" signals "trip to the beach".
			if rng.Float64() < 0.8 {
				words = append(words, sc.nameWords[rng.IntN(2)])
			}
			for len(words) < n {
				words = append(words, sc.vocab[rng.IntN(len(sc.vocab))])
			}
			queriesByScenario[s] = append(queriesByScenario[s], emitQuery(model.ScenarioID(s), joinWords(words)))
		}
	}
	var headQueries []model.QueryID
	for h := 0; h < cfg.HeadQueries; h++ {
		// Head queries use leaf-category names: generic intent.
		w := bank.word(rng.IntN(vocabBase))
		headQueries = append(headQueries, emitQuery(model.NoScenario, w))
	}

	// --- Clicks ----------------------------------------------------------
	totalItems := len(corpus.Items)
	for s := range scenarios {
		for _, q := range queriesByScenario[s] {
			n := 1 + rng.IntN(2*cfg.ClicksPerQuery) // mean ~ClicksPerQuery
			for k := 0; k < n; k++ {
				var item model.ItemID
				if rng.Float64() < cfg.ClickNoise {
					item = model.ItemID(rng.IntN(totalItems))
				} else {
					own := itemsByScenario[s]
					item = own[rng.IntN(len(own))]
				}
				corpus.Clicks = append(corpus.Clicks, model.ClickEvent{
					Query: q, Item: item,
					Day:   int32(rng.IntN(cfg.Days)),
					Count: 1 + int32(rng.IntN(3)),
				})
			}
		}
	}
	for _, q := range headQueries {
		n := 2 * cfg.ClicksPerQuery // head queries click broadly
		for k := 0; k < n; k++ {
			corpus.Clicks = append(corpus.Clicks, model.ClickEvent{
				Query: q, Item: model.ItemID(rng.IntN(totalItems)),
				Day:   int32(rng.IntN(cfg.Days)),
				Count: 1 + int32(rng.IntN(3)),
			})
		}
	}

	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated corpus invalid: %w", err)
	}
	return corpus, nil
}

func joinWords(ws []string) string {
	out := ""
	for i, w := range ws {
		if i > 0 {
			out += " "
		}
		out += w
	}
	return out
}
