// Daily demonstrates the production operating mode (paper §3): SHOAL is
// built from a sliding window over the last seven days of search queries
// and refreshed as new days of click logs arrive. The example streams two
// weeks of synthetic clicks through the window, rebuilding each day and
// reporting placement precision plus day-over-day structural stability.
package main

import (
	"fmt"
	"log"

	"shoal"
)

func main() {
	log.SetFlags(0)

	gen := shoal.DefaultCorpusConfig()
	gen.Scenarios = 12
	gen.ItemsPerScenario = 80
	gen.Days = 14
	corpus, err := shoal.GenerateCorpus(gen)
	if err != nil {
		log.Fatal(err)
	}
	byDay := make([][]shoal.ClickEvent, gen.Days)
	for _, ev := range corpus.Clicks {
		byDay[ev.Day] = append(byDay[ev.Day], ev)
	}

	cfg := shoal.DefaultConfig()
	cfg.WindowDays = 7
	cfg.Word2Vec.Epochs = 2
	cfg.HAC.StopThreshold = 0.12
	cfg.Taxonomy.Levels = []float64{0.12, 0.3, 0.5}
	pipeline, err := shoal.NewDailyPipeline(corpus, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d days of clicks through a %d-day window\n\n", gen.Days, cfg.WindowDays)
	fmt.Printf("%-5s %-16s %-8s %-10s\n", "day", "window-queries", "topics", "stability")
	var prev *shoal.DailyBuild
	for day := 0; day < gen.Days; day++ {
		if err := pipeline.IngestDay(byDay[day]); err != nil {
			log.Fatal(err)
		}
		if day < cfg.WindowDays-1 {
			continue // wait until the window is full
		}
		build, err := pipeline.Rebuild()
		if err != nil {
			log.Fatal(err)
		}
		stability := "   -"
		if prev != nil {
			s, err := shoal.BuildStability(prev, build)
			if err != nil {
				log.Fatal(err)
			}
			stability = fmt.Sprintf("%.3f", s)
		}
		queries, _, _ := pipeline.WindowStats()
		fmt.Printf("%-5d %-16d %-8d %-10s\n", day, queries, len(build.Taxonomy.Topics), stability)
		prev = build
	}
	fmt.Println("\nstability = fraction of root-topic item pairs preserved by the next build")
}
