package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"shoal/internal/core"
	"shoal/internal/synth"
)

var (
	buildOnce sync.Once
	testBuild *core.Build
	buildErr  error
)

func getBuild(t *testing.T) *core.Build {
	t.Helper()
	buildOnce.Do(func() {
		cfg := core.DefaultConfig()
		cfg.Word2Vec.Epochs = 1
		cfg.Word2Vec.MinCount = 1
		cfg.Graph.MinSimilarity = 0.2
		cfg.HAC.StopThreshold = 0.12
		cfg.Taxonomy.Levels = []float64{0.12, 0.4}
		cfg.CatCorr.MinStrength = 0
		testBuild, buildErr = core.Run(synth.Curated(), cfg)
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return testBuild
}

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	h, err := NewHandler(getBuild(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestNewHandlerValidation(t *testing.T) {
	if _, err := NewHandler(nil); err == nil {
		t.Fatal("nil build accepted")
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv := newServer(t)
	var hits []TopicSummary
	code := getJSON(t, srv.URL+"/api/search?q=beach+dress&k=3", &hits)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(hits) == 0 {
		t.Fatal("no hits for beach dress")
	}
	if hits[0].Score <= 0 || hits[0].Items == 0 {
		t.Fatalf("bad hit payload: %+v", hits[0])
	}
}

func TestSearchValidation(t *testing.T) {
	srv := newServer(t)
	if code := getJSON(t, srv.URL+"/api/search", nil); code != http.StatusBadRequest {
		t.Fatalf("missing q: status = %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/api/search?q=x&k=0", nil); code != http.StatusBadRequest {
		t.Fatalf("k=0: status = %d, want 400", code)
	}
	if code := getJSON(t, srv.URL+"/api/search?q=x&k=boom", nil); code != http.StatusBadRequest {
		t.Fatalf("k=boom: status = %d, want 400", code)
	}
}

func TestTopicEndpoint(t *testing.T) {
	srv := newServer(t)
	b := getBuild(t)
	root := b.Taxonomy.Roots()[0]
	var detail TopicDetail
	code := getJSON(t, fmt.Sprintf("%s/api/topics/%d", srv.URL, root), &detail)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if detail.ID != root {
		t.Fatalf("detail.ID = %d, want %d", detail.ID, root)
	}
	if len(detail.Categories) == 0 {
		t.Fatal("no category refs")
	}
	for _, sub := range detail.SubTopics {
		if sub.Level != detail.Level+1 {
			t.Fatalf("subtopic level %d under level %d", sub.Level, detail.Level)
		}
	}
}

func TestTopicNotFound(t *testing.T) {
	srv := newServer(t)
	if code := getJSON(t, srv.URL+"/api/topics/9999", nil); code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/api/topics/abc", nil); code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
}

func TestTopicItemsEndpoint(t *testing.T) {
	srv := newServer(t)
	b := getBuild(t)
	root := b.Taxonomy.Roots()[0]
	var all []ItemRef
	if code := getJSON(t, fmt.Sprintf("%s/api/topics/%d/items", srv.URL, root), &all); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(all) == 0 {
		t.Fatal("no items")
	}
	// Filter by the first category of the topic.
	cat := b.Taxonomy.Topics[root].Categories[0]
	var filtered []ItemRef
	if code := getJSON(t, fmt.Sprintf("%s/api/topics/%d/items?category=%d", srv.URL, root, cat), &filtered); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(filtered) == 0 || len(filtered) > len(all) {
		t.Fatalf("filtered = %d, all = %d", len(filtered), len(all))
	}
	for _, it := range filtered {
		if it.Category != cat {
			t.Fatalf("item %d leaked from category %d", it.ID, it.Category)
		}
	}
	if code := getJSON(t, fmt.Sprintf("%s/api/topics/%d/items?category=999", srv.URL, root), nil); code != http.StatusBadRequest {
		t.Fatalf("bad category: status = %d, want 400", code)
	}
}

func TestRelatedEndpoint(t *testing.T) {
	srv := newServer(t)
	b := getBuild(t)
	// Find a category with correlations.
	pairs := b.Correlations.Pairs()
	if len(pairs) == 0 {
		t.Skip("no correlations in fixture")
	}
	var rel []RelatedCategory
	code := getJSON(t, fmt.Sprintf("%s/api/categories/%d/related", srv.URL, pairs[0].A), &rel)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(rel) == 0 {
		t.Fatal("no related categories")
	}
	if rel[0].Name == "" || rel[0].Strength <= 0 {
		t.Fatalf("bad payload: %+v", rel[0])
	}
	if code := getJSON(t, srv.URL+"/api/categories/9999/related", nil); code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := newServer(t)
	var stats map[string]int
	if code := getJSON(t, srv.URL+"/api/stats", &stats); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, key := range []string{"items", "topics", "rootTopics", "entities"} {
		if stats[key] <= 0 {
			t.Fatalf("stats[%s] = %d, want positive", key, stats[key])
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	srv := newServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := srv.URL + "/api/search?q=beach+dress"
			if i%3 == 1 {
				url = srv.URL + "/api/stats"
			}
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d for %s", resp.StatusCode, url)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := newServer(t)
	resp, err := http.Post(srv.URL+"/api/search?q=x", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}
