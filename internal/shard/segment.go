package shard

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"
	"sort"
)

// Segment is a self-contained, serializable unit of one shard: the
// shard's local CSR rows, the ghost-neighbor id table (every neighbor id
// owned by another shard), and the placement header (shard id plus the
// full plan bounds). A segment carries everything a remote host needs to
// run vertex programs over its rows — local topology, the global row
// partition for routing messages, and the ghost table naming the foreign
// vertices it will message — so shard.Plan is the unit of BSP placement
// (ROADMAP "Multi-host BSP over shards").
//
// Encode/Decode is a deterministic binary format: encoding the same
// segment always yields the same bytes, and Encode(Decode(b)) == b for
// every valid b (locked by TestSegmentRoundTrip and FuzzSegmentDecode).
type Segment struct {
	// ShardID is this segment's index in the plan.
	ShardID int32
	// Bounds is the full plan header: row bounds of every shard
	// (len NumShards+1, Bounds[0] == 0, last == total rows). Kept whole
	// so a segment alone can route any destination vertex to its owner.
	Bounds []int32
	// Offsets are the local row offsets: Offsets[0] == 0 and row u
	// (global id, Lo() <= u < Hi()) spans entries
	// [Offsets[u-Lo()], Offsets[u-Lo()+1]).
	Offsets []int32
	// Nbrs holds global neighbor ids, ascending within each row.
	Nbrs []int32
	// Wts are the parallel edge weights (bit-exact across round trips).
	Wts []float64
	// Ghosts is the sorted, de-duplicated table of neighbor ids owned by
	// other shards — the vertices this shard sends cross-shard messages
	// to. Every out-of-range id in Nbrs appears here.
	Ghosts []int32
}

// NumShards returns the plan width recorded in the header.
func (s *Segment) NumShards() int { return len(s.Bounds) - 1 }

// Lo returns the first row owned by the segment.
func (s *Segment) Lo() int32 { return s.Bounds[s.ShardID] }

// Hi returns one past the last row owned by the segment.
func (s *Segment) Hi() int32 { return s.Bounds[s.ShardID+1] }

// NumNodes returns the global row count recorded in the plan header.
func (s *Segment) NumNodes() int { return int(s.Bounds[len(s.Bounds)-1]) }

// Plan reconstructs the placement plan from the header.
func (s *Segment) Plan() Plan { return Plan{bounds: s.Bounds} }

// Row returns the adjacency of global row u, which must be owned by the
// segment (Lo() <= u < Hi()). Zero-copy views.
func (s *Segment) Row(u int32) ([]int32, []float64) {
	lo := s.Lo()
	j0, j1 := s.Offsets[u-lo], s.Offsets[u-lo+1]
	return s.Nbrs[j0:j1], s.Wts[j0:j1]
}

// Segments returns one self-contained Segment per shard of the plan.
// Nbrs/Wts alias the base CSR arrays (zero copy); Offsets are localized
// and Ghosts computed on first call, then cached — segments are
// immutable views, safe for concurrent use like the CSR itself.
func (s *CSR) Segments() []*Segment {
	s.segOnce.Do(s.initSegments)
	return s.segs
}

func (s *CSR) initSegments() {
	offsets, nbrs, wts := s.base.Adj()
	p := s.plan
	s.segs = make([]*Segment, p.NumShards())
	bounds := append([]int32(nil), p.bounds...) // one shared immutable copy
	for i := range s.segs {
		lo, hi := p.Bounds(i)
		var local []int32
		if offsets[lo] == 0 {
			// Shard 0 (and a single-shard plan in particular): the local
			// offsets are the base offsets verbatim — alias, don't copy.
			local = offsets[lo : hi+1]
		} else {
			local = make([]int32, hi-lo+1)
			for u := lo; u <= hi; u++ {
				local[u-lo] = offsets[u] - offsets[lo]
			}
		}
		seg := &Segment{
			ShardID: int32(i),
			Bounds:  bounds,
			Offsets: local,
			Nbrs:    nbrs[offsets[lo]:offsets[hi]],
			Wts:     wts[offsets[lo]:offsets[hi]],
		}
		if p.NumShards() > 1 {
			// A single-shard plan owns every id; no neighbor can be a ghost.
			var ghosts []int32
			for _, v := range seg.Nbrs {
				if v < lo || v >= hi {
					ghosts = append(ghosts, v)
				}
			}
			slices.Sort(ghosts)
			seg.Ghosts = slices.Compact(ghosts)
		}
		s.segs[i] = seg
	}
}

// segMagic identifies the segment wire format; the trailing byte is the
// format version (bump for incompatible changes).
var segMagic = [4]byte{'S', 'S', 'G', '1'}

// Encode serializes the segment into the deterministic little-endian
// binary form. The layout is fixed — magic, shard id, plan bounds, local
// offsets, neighbor ids, weight bits, ghost table — so equal segments
// always encode to equal bytes and Encode∘Decode is the identity on
// valid encodings.
func (s *Segment) Encode() []byte {
	rows := int(s.Hi() - s.Lo())
	size := 4 + 4 + 4 + len(s.Bounds)*4 + // magic, shardID, numShards, bounds
		4 + (rows+1)*4 + // rows, offsets
		4 + len(s.Nbrs)*4 + len(s.Wts)*8 + // entries, nbrs, wts
		4 + len(s.Ghosts)*4 // nghosts, ghosts
	out := make([]byte, 0, size)
	out = append(out, segMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, uint32(s.ShardID))
	out = binary.LittleEndian.AppendUint32(out, uint32(s.NumShards()))
	for _, b := range s.Bounds {
		out = binary.LittleEndian.AppendUint32(out, uint32(b))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(rows))
	for _, o := range s.Offsets {
		out = binary.LittleEndian.AppendUint32(out, uint32(o))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Nbrs)))
	for _, v := range s.Nbrs {
		out = binary.LittleEndian.AppendUint32(out, uint32(v))
	}
	for _, w := range s.Wts {
		out = binary.LittleEndian.AppendUint64(out, math.Float64bits(w))
	}
	out = binary.LittleEndian.AppendUint32(out, uint32(len(s.Ghosts)))
	for _, g := range s.Ghosts {
		out = binary.LittleEndian.AppendUint32(out, uint32(g))
	}
	return out
}

// segReader is a bounds-checked little-endian cursor over an encoding.
type segReader struct {
	data []byte
	pos  int
}

func (r *segReader) u32() (uint32, error) {
	if r.pos+4 > len(r.data) {
		return 0, fmt.Errorf("shard: truncated segment at byte %d", r.pos)
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

// i32s reads n int32 values; n has already been validated against the
// remaining length by count().
func (r *segReader) i32s(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.data[r.pos:]))
		r.pos += 4
	}
	return out
}

// count reads a u32 element count and verifies the remaining buffer can
// hold that many elements of the given width — so a hostile count can
// never drive an allocation past the input size.
func (r *segReader) count(width int, what string) (int, error) {
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n < 0 || n > (len(r.data)-r.pos)/width {
		return 0, fmt.Errorf("shard: segment %s count %d exceeds input", what, n)
	}
	return n, nil
}

// DecodeSegment parses and validates one encoded segment. Every
// structural invariant is checked — magic, plan monotonicity, shard id
// range, offset monotonicity, neighbor ids in range and ascending per
// row, ghost table sorted/unique/foreign and covering every out-of-range
// neighbor — so a decoded segment is safe to compute over. Weights
// round-trip bit-exactly.
func DecodeSegment(data []byte) (*Segment, error) {
	r := &segReader{data: data}
	if len(data) < 4 || [4]byte(data[:4]) != segMagic {
		return nil, fmt.Errorf("shard: bad segment magic")
	}
	r.pos = 4
	shardID32, err := r.u32()
	if err != nil {
		return nil, err
	}
	shardID := int32(shardID32)
	nShards, err := r.count(4, "shard")
	if err != nil {
		return nil, err
	}
	if nShards < 1 {
		return nil, fmt.Errorf("shard: segment plan has %d shards", nShards)
	}
	if len(data)-r.pos < (nShards+1)*4 {
		return nil, fmt.Errorf("shard: truncated plan bounds")
	}
	bounds := r.i32s(nShards + 1)
	if bounds[0] != 0 {
		return nil, fmt.Errorf("shard: plan bounds start at %d, want 0", bounds[0])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] < bounds[i-1] {
			return nil, fmt.Errorf("shard: plan bounds not monotone at %d", i)
		}
	}
	if shardID < 0 || int(shardID) >= nShards {
		return nil, fmt.Errorf("shard: segment shard id %d out of range [0,%d)", shardID, nShards)
	}
	lo, hi := bounds[shardID], bounds[shardID+1]
	n := bounds[nShards]

	rows, err := r.count(4, "row")
	if err != nil {
		return nil, err
	}
	if int32(rows) != hi-lo {
		return nil, fmt.Errorf("shard: segment row count %d != plan range %d", rows, hi-lo)
	}
	if len(data)-r.pos < (rows+1)*4 {
		return nil, fmt.Errorf("shard: truncated offsets")
	}
	offsets := r.i32s(rows + 1)
	if offsets[0] != 0 {
		return nil, fmt.Errorf("shard: segment offsets start at %d, want 0", offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("shard: segment offsets not monotone at row %d", i-1)
		}
	}

	entries, err := r.count(4+8, "entry")
	if err != nil {
		return nil, err
	}
	if int32(entries) != offsets[rows] {
		return nil, fmt.Errorf("shard: segment entry count %d != offsets total %d", entries, offsets[rows])
	}
	nbrs := r.i32s(entries)
	wts := make([]float64, entries)
	for i := range wts {
		wts[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[r.pos:]))
		r.pos += 8
	}
	nGhosts, err := r.count(4, "ghost")
	if err != nil {
		return nil, err
	}
	ghosts := r.i32s(nGhosts)
	if r.pos != len(data) {
		return nil, fmt.Errorf("shard: %d trailing bytes after segment", len(data)-r.pos)
	}

	for i := 1; i < len(ghosts); i++ {
		if ghosts[i] <= ghosts[i-1] {
			return nil, fmt.Errorf("shard: ghost table not strictly ascending at %d", i)
		}
	}
	for _, g := range ghosts {
		if g < 0 || g >= n || (g >= lo && g < hi) {
			return nil, fmt.Errorf("shard: ghost %d is not a foreign vertex", g)
		}
	}
	for u := 0; u < rows; u++ {
		prev := int32(-1)
		for j := offsets[u]; j < offsets[u+1]; j++ {
			v := nbrs[j]
			if v < 0 || v >= n {
				return nil, fmt.Errorf("shard: row %d neighbor %d out of range [0,%d)", int32(u)+lo, v, n)
			}
			if v <= prev {
				return nil, fmt.Errorf("shard: row %d adjacency not strictly ascending", int32(u)+lo)
			}
			prev = v
			if v < lo || v >= hi {
				k := sort.Search(len(ghosts), func(i int) bool { return ghosts[i] >= v })
				if k == len(ghosts) || ghosts[k] != v {
					return nil, fmt.Errorf("shard: foreign neighbor %d missing from ghost table", v)
				}
			}
		}
	}
	return &Segment{
		ShardID: shardID,
		Bounds:  bounds,
		Offsets: offsets,
		Nbrs:    nbrs,
		Wts:     wts,
		Ghosts:  ghosts,
	}, nil
}
