//go:build race

package word2vec

// raceEnabled reports whether the Go race detector is compiled in. The
// Hogwild trainer's lock-free weight updates are benign-by-design data
// races, which the detector would (correctly) flag; race builds therefore
// clamp training to one worker. See Config.validate.
const raceEnabled = true
