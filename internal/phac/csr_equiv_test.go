package phac

import (
	"bytes"
	"context"
	"encoding/gob"
	"reflect"
	"testing"

	"shoal/internal/modularity"
)

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClusteringIdenticalOnCSR is the clustering half of the CSR
// equivalence property: Diffuse, Cluster, and modularity.Compute must
// produce byte-identical results whether fed the mutable builder or its
// frozen CSR.
func TestClusteringIdenticalOnCSR(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := randomGraph(90, 200, seed)
		c := g.Clone().Freeze() // independent snapshot: no shared memo

		for _, r := range []int{0, 1, 2, 4} {
			selG, err := Diffuse(g, r, 0.1, 4)
			if err != nil {
				t.Fatal(err)
			}
			selC, err := Diffuse(c, r, 0.1, 4)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(selG, selC) {
				t.Fatalf("seed %d r=%d: Diffuse differs on CSR", seed, r)
			}
		}

		cfg := Config{StopThreshold: 0.15, DiffusionRounds: 2, Workers: 4}
		resG, err := Cluster(context.Background(), g, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		resC, err := Cluster(context.Background(), c, nil, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gobBytes(t, resG), gobBytes(t, resC)) {
			t.Fatalf("seed %d: Cluster result differs on CSR", seed)
		}

		labels := resG.Dendrogram.CutAt(0.15)
		qG, err := modularity.Compute(g, labels)
		if err != nil {
			t.Fatal(err)
		}
		qC, err := modularity.Compute(c, labels)
		if err != nil {
			t.Fatal(err)
		}
		if qG != qC {
			t.Fatalf("seed %d: modularity %v on Graph != %v on CSR", seed, qG, qC)
		}
	}
}

// TestClusterZeroAllocDiffusion locks in the tentpole win: once the
// state CSR is built, a diffusion pass over it must not allocate.
func TestClusterZeroAllocDiffusion(t *testing.T) {
	g := randomGraph(512, 1024, 3)
	c := g.Freeze()
	st := newState(c, nil, Config{StopThreshold: 0.1, DiffusionRounds: 2, Workers: 1})
	// Warm the scratch buffers once.
	st.selectLocalMaxima(2, 1, 0.1)
	allocs := testing.AllocsPerRun(20, func() {
		st.selectLocalMaxima(2, 1, 0.1)
	})
	if allocs > 0 {
		t.Fatalf("diffusion+selection allocated %.1f objects per round, want 0", allocs)
	}
}
