package experiments

import (
	"context"
	"fmt"

	"shoal/internal/eval"
	"shoal/internal/kmeans"
	"shoal/internal/model"
	"shoal/internal/textutil"
	"shoal/internal/word2vec"
)

// E10Baseline compares SHOAL's graph-based query coalition against the
// embedding-clustering family the paper's Related Studies cite (TaxoGen
// and kin): cluster item entities purely by their title-embedding vectors
// with spherical k-means, ignoring the query-item graph.
//
// The decisive slice is the *ambiguous-title* subset — items whose
// listings are generic boilerplate, so clicks are the only evidence of
// intent. That is precisely the paper's motivating argument: "search
// queries can effectively express user's intention" where content cannot.
func E10Baseline(sc Scale, seed uint64) (*Table, error) {
	corpus, b, err := buildSystem(sc, seed)
	if err != nil {
		return nil, err
	}
	entities := b.Entities.Entities
	truth := make([]model.ScenarioID, len(entities))
	ambiguous := make([]bool, len(entities))
	for i := range entities {
		truth[i] = entities[i].Scenario
		// An entity is ambiguous when all member items are (families
		// share a listing style, so mixed entities are rare).
		amb := true
		for _, it := range entities[i].Items {
			if !corpus.Items[it].TitleAmbiguous {
				amb = false
				break
			}
		}
		ambiguous[i] = amb
	}

	t := &Table{
		ID:         "E10",
		Title:      "SHOAL vs embedding-clustering baseline (Related Studies)",
		PaperClaim: "SHOAL considers both structural and textual similarities (vs term-embedding clustering)",
		Header:     []string{"method", "clusters", "NMI", "purity", "purity-ambiguous"},
	}

	// SHOAL: Parallel HAC over the blended entity graph.
	shoalLabels := b.Dendrogram.CutAt(stopTh)
	if err := appendMethodRow(t, "shoal-parallel-hac", shoalLabels, truth, ambiguous); err != nil {
		return nil, err
	}

	// Baseline: spherical k-means over mean title embeddings, with K set
	// to the ground-truth scenario count (a generous oracle the real
	// baseline would not have).
	emb := b.Embeddings
	if emb == nil {
		var sentences [][]string
		for i := range corpus.Items {
			sentences = append(sentences, textutil.Tokenize(corpus.Items[i].Title))
		}
		w2v := word2vec.DefaultConfig()
		w2v.Epochs = 2
		emb, err = word2vec.Train(context.Background(), sentences, w2v)
		if err != nil {
			return nil, err
		}
	}
	points := make([][]float32, len(entities))
	for i := range entities {
		points[i] = meanVector(emb, entities[i].Tokens)
	}
	k := len(corpus.Scenarios)
	if k < 2 {
		k = 2
	}
	km, err := kmeans.Cluster(points, kmeans.DefaultConfig(k))
	if err != nil {
		return nil, err
	}
	if err := appendMethodRow(t, "kmeans-embeddings", km.Assign, truth, ambiguous); err != nil {
		return nil, err
	}

	ambCount := 0
	for _, a := range ambiguous {
		if a {
			ambCount++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("ambiguous entities (generic titles, query signal only): %d of %d", ambCount, len(entities)),
		"kmeans gets K = true scenario count (an oracle advantage)",
		"NMI penalizes SHOAL's finer granularity; the ambiguous-purity column isolates the query signal",
		"extension: the paper asserts this comparison qualitatively; see DESIGN.md 4")
	return t, nil
}

// appendMethodRow computes cluster count, NMI, purity, and purity on the
// ambiguous subset for one labeling.
func appendMethodRow(t *Table, name string, labels []int32, truth []model.ScenarioID, ambiguous []bool) error {
	part, err := eval.LabelsPartition(labels, truth)
	if err != nil {
		return err
	}
	clusters := make(map[int32]bool)
	for _, l := range labels {
		clusters[l] = true
	}
	// Ambiguous-subset purity: majority votes are taken over the full
	// clusters (the system's output), but only ambiguous entities are
	// judged.
	majority := majorityByCluster(labels, truth)
	var amb, ambOK int
	for i := range labels {
		if !ambiguous[i] || truth[i] == model.NoScenario {
			continue
		}
		amb++
		if majority[labels[i]] == truth[i] {
			ambOK++
		}
	}
	ambP := "n/a"
	if amb > 0 {
		ambP = f3(float64(ambOK) / float64(amb))
	}
	t.Rows = append(t.Rows, []string{name, itoa(len(clusters)), f3(part.NMI()), f3(part.Purity()), ambP})
	return nil
}

// majorityByCluster returns each cluster's majority ground-truth label.
func majorityByCluster(labels []int32, truth []model.ScenarioID) map[int32]model.ScenarioID {
	counts := make(map[int32]map[model.ScenarioID]int)
	for i := range labels {
		if truth[i] == model.NoScenario {
			continue
		}
		if counts[labels[i]] == nil {
			counts[labels[i]] = make(map[model.ScenarioID]int)
		}
		counts[labels[i]][truth[i]]++
	}
	out := make(map[int32]model.ScenarioID, len(counts))
	for l, cs := range counts {
		best, bestN := model.NoScenario, -1
		for s, n := range cs {
			if n > bestN || (n == bestN && s < best) {
				best, bestN = s, n
			}
		}
		out[l] = best
	}
	return out
}

// meanVector averages the raw embeddings of known tokens (nil when none).
func meanVector(emb *word2vec.Model, tokens []string) []float32 {
	var acc []float64
	known := 0
	for _, tok := range tokens {
		v, ok := emb.Vector(tok)
		if !ok {
			continue
		}
		if acc == nil {
			acc = make([]float64, len(v))
		}
		for i, x := range v {
			acc[i] += float64(x)
		}
		known++
	}
	if known == 0 {
		return nil
	}
	out := make([]float32, len(acc))
	for i, x := range acc {
		out[i] = float32(x / float64(known))
	}
	return out
}
