package synth

import (
	"fmt"
	"math/rand/v2"
)

// The generator needs an unbounded supply of distinct, pronounceable words
// so that scenario vocabularies stay disjoint-ish at any scale. Words are
// built from syllables; a small curated e-commerce lexicon seeds the most
// common positions so small corpora still read naturally.

var onsets = []string{"b", "br", "c", "ch", "d", "dr", "f", "fl", "g", "gl",
	"h", "j", "k", "kr", "l", "m", "n", "p", "pl", "pr", "r", "s", "sh",
	"sk", "sl", "sn", "st", "t", "tr", "v", "w", "z"}

var nuclei = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou", "oo"}

var codas = []string{"", "n", "r", "l", "s", "t", "k", "m", "nd", "st"}

// lexicon are real e-commerce tokens used for the first word ids, so tiny
// corpora produce readable titles and queries.
var lexicon = []string{
	"beach", "dress", "swimwear", "sunblock", "sunglasses", "pants",
	"backpack", "alpenstock", "hiking", "boots", "bottle", "jacket",
	"waterproof", "tent", "camping", "lantern", "stove", "sleeping",
	"bag", "fitness", "dumbbell", "yoga", "mat", "protein", "running",
	"shoes", "snack", "nuts", "coffee", "breakfast", "cereal", "milk",
	"router", "keyboard", "mouse", "monitor", "headphones", "charger",
	"tripod", "camera", "lens", "drone", "skincare", "serum", "cream",
	"cleanser", "mask", "lipstick", "perfume", "shampoo", "stroller",
	"diaper", "crib", "puzzle", "doll", "balloon", "chopsticks",
	"kettle", "wok", "knife", "cutting", "board", "blender", "vacuum",
	"sofa", "curtain", "pillow", "blanket", "lamp", "desk", "chair",
	"notebook", "pencil", "marker", "easel", "canvas", "guitar",
	"ukulele", "piano", "violin", "soccer", "ball", "racket", "net",
	"helmet", "gloves", "scarf", "sweater", "hoodie", "jeans", "skirt",
	"blouse", "tie", "suit", "watch", "bracelet", "necklace", "ring",
	"wallet", "umbrella", "towel", "swimsuit", "goggles", "flippers",
}

// wordBank deterministically yields distinct words: the curated lexicon
// first, then generated syllable words ("w" + composition) with an id
// suffix only on collision-prone high indices.
type wordBank struct {
	cache []string
}

func newWordBank() *wordBank { return &wordBank{} }

// word returns the i-th word of the bank (i >= 0).
func (b *wordBank) word(i int) string {
	for len(b.cache) <= i {
		b.cache = append(b.cache, b.make(len(b.cache)))
	}
	return b.cache[i]
}

func (b *wordBank) make(i int) string {
	if i < len(lexicon) {
		return lexicon[i]
	}
	// Derive syllables from the index itself so the mapping is pure.
	n := i - len(lexicon)
	rng := rand.New(rand.NewPCG(uint64(n), 0xABCD))
	syls := 2 + rng.IntN(2)
	w := ""
	for s := 0; s < syls; s++ {
		w += onsets[rng.IntN(len(onsets))] + nuclei[rng.IntN(len(nuclei))]
	}
	w += codas[rng.IntN(len(codas))]
	// Guarantee global uniqueness across the generated range.
	return fmt.Sprintf("%s%d", w, n)
}

// genericTitleWords are commerce boilerplate for ambiguous titles: they
// carry no scenario signal whatsoever.
var genericTitleWords = []string{
	"new", "hot", "sale", "gift", "premium", "quality", "2026", "fashion",
	"free", "shipping", "style", "classic", "portable", "deluxe", "value",
	"bestseller", "limited", "edition", "official", "original",
}

// departmentNames are ontology roots, echoing Fig. 4's left-hand menu.
var departmentNames = []string{
	"Ladies' wear", "Men's wear", "Shoes", "Electronics", "Commodities",
	"Foods", "Beauty care", "Outdoor", "Sports", "Home", "Toys", "Books",
}
