package phac

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"shoal/internal/bsp"
	"shoal/internal/shard"
	"shoal/internal/wgraph"
)

// Edge is a selected locally-maximal edge (U < V).
type Edge struct {
	U, V int32
	Sim  float64
}

// DefaultFrontierDensity is the changed-node fraction of the scanned set
// above which an exchange iteration recomputes every node (dense)
// instead of only the frontier. Below it, the scatter+span-copy overhead
// of pruning is provably cheaper than the skipped neighbor scans.
// Exported so callers reporting the resolved configuration (core.Build,
// /api/stats) can name the default without duplicating the constant.
const DefaultFrontierDensity = 0.25

// Diffuse runs one diffusion+selection pass over a static graph and
// returns the locally-maximal matching, sorted by (U,V). This is the
// standalone form of Parallel HAC's step 1–2, exposed for experiment E5
// (iterations vs. parallelism) and the BSP equivalence check (E9).
// Edges below threshold do not participate. The graph is scanned in its
// CSR form (a mutable graph is frozen once up front). Late exchange
// iterations are frontier-pruned: a node is recomputed only when a
// neighbor's known edge changed in the previous iteration, the stable
// majority moves by whole-span copy, and an empty frontier ends the
// loop — all without changing a single output byte (see
// TestFrontierMatchesDense). With workers <= 0 ("pick for me") a
// *shard.CSR input takes the partition-parallel path — one worker per
// shard, with a selection merge that is byte-identical to the
// single-shard result for any shard count; an explicit workers count is
// always honored (workers == 1 stays serial even on sharded input).
func Diffuse(g wgraph.View, rounds int, threshold float64, workers int) ([]Edge, error) {
	return diffuse(g, rounds, threshold, workers, 0)
}

// diffuse is Diffuse with an explicit frontier density (0 = default,
// negative = pruning disabled; the dense/pruned property tests pin the
// two byte-identical).
func diffuse(g wgraph.View, rounds int, threshold float64, workers int, density float64) ([]Edge, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("phac: empty graph")
	}
	if rounds < 0 {
		return nil, fmt.Errorf("phac: negative diffusion rounds %d", rounds)
	}
	if sc, ok := g.(*shard.CSR); ok && sc.NumShards() > 1 && workers <= 0 {
		return diffuseSharded(sc, rounds, threshold, density), nil
	}
	if workers <= 0 {
		workers = 1
	}
	c := wgraph.AsCSR(g)
	offsets, nbrs, wts := c.Adj()
	n := int32(c.NumNodes())
	know := make([]edgeRef, n)
	next := make([]edgeRef, n)
	var bounds []int32
	if workers > 1 && int(n) >= 64 {
		bounds = rowBoundsByEntries(offsets, int(n), workers)
	} else {
		bounds = []int32{0, n}
	}
	initRange := func(lo, hi int32) {
		for u := lo; u < hi; u++ {
			best := noEdge
			for j := offsets[u]; j < offsets[u+1]; j++ {
				v, w := nbrs[j], wts[j]
				if w < threshold {
					continue
				}
				cand := mkEdgeRef(u, v, w)
				if better(cand, best) {
					best = cand
				}
			}
			know[u] = best
		}
	}
	if len(bounds) == 2 {
		initRange(0, n)
	} else {
		runRanges32(bounds, initRange)
	}
	know = exchangeRows(offsets, nbrs, know, next, bounds, rounds, density)
	return collectSelected(know, threshold), nil
}

// rowBoundsByEntries splits the rows [0,n) into k contiguous ranges
// balanced by adjacency entries (each row weighs its degree plus one).
func rowBoundsByEntries(offsets []int32, n, k int) []int32 {
	bounds := make([]int32, k+1)
	bounds[k] = int32(n)
	total := int64(offsets[n]) + int64(n)
	next := 1
	var prefix int64
	for u := 0; u < n && next < k; u++ {
		prefix += int64(offsets[u+1]-offsets[u]) + 1
		for next < k && prefix*int64(k) >= total*int64(next) {
			bounds[next] = int32(u + 1)
			next++
		}
	}
	for ; next < k; next++ {
		bounds[next] = int32(n)
	}
	return bounds
}

// exchangeRows runs `rounds` max-exchange iterations over all rows,
// splitting each phase by the given row bounds, and returns the buffer
// holding the final known edges. Iteration 1 is always dense (everything
// just changed during init); iteration t+1 recomputes only rows with a
// neighbor whose know entry changed in iteration t — every skipped row's
// result is provably identical (its own entry already dominates its
// unchanged neighborhood by the monotonicity of max-exchange), so the
// output is byte-identical to the dense loop. An empty frontier ends the
// loop early: every remaining iteration would be the identity.
func exchangeRows(offsets, nbrs []int32, know, next []edgeRef, bounds []int32, rounds int, density float64) []edgeRef {
	if rounds == 0 {
		return know
	}
	if density == 0 {
		density = DefaultFrontierDensity
	}
	n := int(bounds[len(bounds)-1])
	chMark := make([]uint32, n)
	afMark := make([]uint32, n)
	serial := len(bounds) == 2
	prev := -1 // changed count of the previous iteration; -1 forces dense
	var epoch uint32
	for it := 0; it < rounds; it++ {
		if prev == 0 {
			break
		}
		epoch++
		dense := prev < 0 || density < 0 || float64(prev) > density*float64(n)
		var changed int64
		if dense {
			if serial {
				changed = denseExchangeRows(offsets, nbrs, know, next, 0, int32(n), chMark, epoch)
			} else {
				e := epoch
				k, nx := know, next
				runRanges32(bounds, func(lo, hi int32) {
					atomic.AddInt64(&changed, denseExchangeRows(offsets, nbrs, k, nx, lo, hi, chMark, e))
				})
			}
		} else {
			if serial {
				scatterRows(offsets, nbrs, chMark, afMark, 0, int32(n), epoch)
				changed = prunedExchangeRows(offsets, nbrs, know, next, 0, int32(n), chMark, afMark, epoch)
			} else {
				e := epoch
				runRanges32(bounds, func(lo, hi int32) {
					scatterRowsAtomic(offsets, nbrs, chMark, afMark, lo, hi, e)
				})
				k, nx := know, next
				runRanges32(bounds, func(lo, hi int32) {
					atomic.AddInt64(&changed, prunedExchangeRows(offsets, nbrs, k, nx, lo, hi, chMark, afMark, e))
				})
			}
		}
		know, next = next, know
		prev = int(changed)
	}
	return know
}

// denseExchangeRows recomputes every row in [lo,hi), stamping chMark for
// rows whose known edge changed and returning the change count.
func denseExchangeRows(offsets, nbrs []int32, know, next []edgeRef, lo, hi int32, chMark []uint32, epoch uint32) int64 {
	var cnt int64
	for u := lo; u < hi; u++ {
		best := know[u]
		for j := offsets[u]; j < offsets[u+1]; j++ {
			if v := nbrs[j]; better(know[v], best) {
				best = know[v]
			}
		}
		next[u] = best
		if best != know[u] {
			chMark[u] = epoch
			cnt++
		}
	}
	return cnt
}

// scatterRows marks the neighbors of every row that changed in the
// previous iteration (chMark == epoch-1) for recomputation.
func scatterRows(offsets, nbrs []int32, chMark, afMark []uint32, lo, hi int32, epoch uint32) {
	for u := lo; u < hi; u++ {
		if chMark[u] != epoch-1 {
			continue
		}
		for j := offsets[u]; j < offsets[u+1]; j++ {
			afMark[nbrs[j]] = epoch
		}
	}
}

// scatterRowsAtomic is scatterRows with atomic mark stores: concurrent
// range workers may mark the same neighbor, and the stores all carry the
// same epoch value, so the marks are deterministic.
func scatterRowsAtomic(offsets, nbrs []int32, chMark, afMark []uint32, lo, hi int32, epoch uint32) {
	for u := lo; u < hi; u++ {
		if chMark[u] != epoch-1 {
			continue
		}
		for j := offsets[u]; j < offsets[u+1]; j++ {
			atomic.StoreUint32(&afMark[nbrs[j]], epoch)
		}
	}
}

// prunedExchangeRows whole-span-copies the stable majority and
// recomputes only the marked rows of [lo,hi).
func prunedExchangeRows(offsets, nbrs []int32, know, next []edgeRef, lo, hi int32, chMark, afMark []uint32, epoch uint32) int64 {
	copy(next[lo:hi], know[lo:hi])
	var cnt int64
	for u := lo; u < hi; u++ {
		if afMark[u] != epoch {
			continue
		}
		best := know[u]
		for j := offsets[u]; j < offsets[u+1]; j++ {
			if v := nbrs[j]; better(know[v], best) {
				best = know[v]
			}
		}
		if best != know[u] {
			next[u] = best
			chMark[u] = epoch
			cnt++
		}
	}
	return cnt
}

// diffuseSharded is the partition-parallel Diffuse: every phase — the
// init scan, each exchange iteration, and the selection — runs one
// worker per shard over that shard's row range (the exchange iterations
// through the same frontier-pruned engine as every other path).
// know/next entries are written only by the owner of their row, and
// per-shard selection lists (ascending u within a shard) concatenate in
// shard order into the globally sorted matching, so the merged output is
// byte-identical to the serial path for any shard count.
func diffuseSharded(sc *shard.CSR, rounds int, threshold float64, density float64) []Edge {
	c := sc.BaseCSR()
	offsets, nbrs, wts := c.Adj()
	n := c.NumNodes()
	know := make([]edgeRef, n)
	next := make([]edgeRef, n)
	plan := sc.Plan()
	bounds := make([]int32, plan.NumShards()+1)
	for i := 0; i < plan.NumShards(); i++ {
		bounds[i], _ = plan.Bounds(i)
	}
	bounds[plan.NumShards()] = int32(n)

	runRanges32(bounds, func(lo, hi int32) {
		for u := lo; u < hi; u++ {
			best := noEdge
			for j := offsets[u]; j < offsets[u+1]; j++ {
				v, w := nbrs[j], wts[j]
				if w < threshold {
					continue
				}
				cand := mkEdgeRef(u, v, w)
				if better(cand, best) {
					best = cand
				}
			}
			know[u] = best
		}
	})
	know = exchangeRows(offsets, nbrs, know, next, bounds, rounds, density)

	// Per-shard selection, merged in shard order. A node contributes at
	// most one edge (its know entry, evaluated at the smaller endpoint),
	// so each shard's list is strictly ascending in U and the
	// concatenation needs no sort.
	parts := make([][]Edge, plan.NumShards())
	var wg sync.WaitGroup
	for i := 0; i < plan.NumShards(); i++ {
		lo, hi := plan.Bounds(i)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(i int, lo, hi int32) {
			defer wg.Done()
			var out []Edge
			for u := lo; u < hi; u++ {
				e := know[u]
				if e.U() != u || e.sim < threshold {
					continue
				}
				if know[e.V()] == e {
					out = append(out, Edge{U: e.U(), V: e.V(), Sim: e.sim})
				}
			}
			parts[i] = out
		}(i, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total == 0 {
		return nil // match the serial path's nil for an empty matching
	}
	out := make([]Edge, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// DiffuseBSP computes the same matching as Diffuse but runs the exchange
// protocol on the shard-native BSP engine (internal/bsp) — the execution
// model the paper deploys on ODPS. The graph is partitioned by its
// shard.Plan (a *shard.CSR keeps its own plan; anything else is
// partitioned by cfg.Workers), each shard's topology is consumed through
// its self-contained shard.Segment, and the program uses a max-combiner
// with changed-only sends — yet the output is byte-identical to Diffuse
// for every shard count, worker count and chaos seed (E9 and the
// TestDiffuseBSP* family).
func DiffuseBSP(g wgraph.View, rounds int, threshold float64, cfg bsp.Config) ([]Edge, error) {
	sel, _, err := DiffuseBSPStats(g, rounds, threshold, cfg)
	return sel, err
}

// pooledDiffusion is a (program, engine) pair kept in bspDiffusePool so
// repeated single-shard DiffuseBSP calls reuse one persistent engine —
// inbox accumulators, generation stamps, worklists and the know array
// survive across calls, re-bound to each call's graph. The pool holds
// only single-shard engines (no worker goroutines, safe for the GC to
// drop) built from a default Config, so a pooled engine is
// interchangeable with a fresh one for every call that qualifies.
type pooledDiffusion struct {
	prog diffusionProgram
	eng  *bsp.Engine[edgeRef]
}

var bspDiffusePool sync.Pool

// DiffuseBSPStats is DiffuseBSP surfacing the engine's execution profile
// (supersteps, messages, per-step active counts, combiner hit rate, and
// the lifetime reuse counters — a pooled engine reports RunsServed > 1).
func DiffuseBSPStats(g wgraph.View, rounds int, threshold float64, cfg bsp.Config) ([]Edge, *bsp.Stats, error) {
	if g.NumNodes() == 0 {
		return nil, nil, fmt.Errorf("phac: empty graph")
	}
	if rounds < 0 {
		return nil, nil, fmt.Errorf("phac: negative diffusion rounds %d", rounds)
	}
	sc, ok := g.(*shard.CSR)
	if !ok {
		sc = shard.Partition(wgraph.AsCSR(g), cfg.Workers)
	}
	if cfg.Plan.NumShards() == 0 {
		cfg.Plan = sc.Plan()
	}
	segs := sc.Segments()
	plan := sc.Plan()
	bounds := make([]int32, plan.NumShards()+1)
	for i := 0; i < plan.NumShards(); i++ {
		bounds[i], bounds[i+1] = plan.Bounds(i)
	}
	n := g.NumNodes()
	poolable := plan.NumShards() == 1 && cfg.Chaos == nil && cfg.MaxSupersteps <= 0
	var pd *pooledDiffusion
	if poolable {
		pd, _ = bspDiffusePool.Get().(*pooledDiffusion)
	}
	if pd == nil {
		pd = &pooledDiffusion{}
	}
	prog := &pd.prog
	prog.segs = segs
	prog.bounds = bounds
	prog.rounds = rounds
	prog.threshold = threshold
	if cap(prog.know) < n {
		prog.know = make([]edgeRef, n)
	} else {
		prog.know = prog.know[:n] // stale entries: superstep 0 writes every row
	}
	var err error
	if pd.eng == nil {
		if pd.eng, err = bsp.New[edgeRef](n, prog, cfg); err != nil {
			return nil, nil, err
		}
	} else if err = pd.eng.Rebind(n, prog); err != nil {
		pd.eng.Close()
		return nil, nil, err
	}
	stats, err := pd.eng.Run()
	if err != nil {
		pd.eng.Close()
		return nil, nil, err
	}
	sel := collectSelected(prog.know, threshold)
	if poolable {
		prog.segs = nil // the pool keeps scratch alive, never the graph
		bspDiffusePool.Put(pd)
	} else {
		pd.eng.Close()
	}
	return sel, stats, nil
}

// diffusionProgram is the vertex-centric formulation over per-shard
// segments: superstep 0 initializes each vertex with its best incident
// >= threshold edge and broadcasts it; supersteps 1..rounds fold the
// inbox maximum and re-broadcast only when the fold changed the vertex's
// known edge (every neighbor already folded the old value, and
// max-exchange is monotone, so suppressed resends are provably
// absorbing). A vertex with nothing new votes to halt and is reactivated
// by the next incoming message. The fold is order-independent, so the
// program is correct under chaotic delivery, and Combine gives the
// engine the sender-side max-fold.
type diffusionProgram struct {
	segs      []*shard.Segment
	bounds    []int32 // plan row bounds, len shards+1 (hand-rolled Find)
	rounds    int
	threshold float64
	know      []edgeRef
}

// Combine is the sender-side max-fold (bsp.Combiner).
func (p *diffusionProgram) Combine(acc, m edgeRef) edgeRef {
	if better(m, acc) {
		return m
	}
	return acc
}

// seg returns the segment owning row u: an inlined branchless-probe
// binary search over the plan bounds — plan.Find's sort.Search closure
// was a measurable cost at one lookup per vertex per superstep.
func (p *diffusionProgram) seg(u int32) *shard.Segment {
	if len(p.segs) == 1 {
		return p.segs[0]
	}
	b := p.bounds
	lo, hi := 0, len(b)-1
	for hi-lo > 1 {
		if mid := (lo + hi) >> 1; u >= b[mid] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return p.segs[lo]
}

func (p *diffusionProgram) Compute(step int, v bsp.VertexID, inbox []edgeRef, out *bsp.Outbox[edgeRef]) bool {
	u := int32(v)
	nbrs, wts := p.seg(u).Row(u)
	changed := false
	if step == 0 {
		best := noEdge
		for i, nb := range nbrs {
			w := wts[i]
			if w < p.threshold {
				continue
			}
			cand := mkEdgeRef(u, nb, w)
			if better(cand, best) {
				best = cand
			}
		}
		p.know[u] = best
		changed = best != noEdge
	} else {
		for _, m := range inbox {
			if better(m, p.know[u]) {
				p.know[u] = m
				changed = true
			}
		}
	}
	if changed && step < p.rounds {
		out.SendMany(nbrs, p.know[u])
		return false
	}
	return true
}

// collectSelected extracts the mutual locally-maximal edges from know.
func collectSelected(know []edgeRef, threshold float64) []Edge {
	var out []Edge
	for u := int32(0); int(u) < len(know); u++ {
		e := know[u]
		if e.U() != u || e.sim < threshold {
			continue
		}
		if int(e.V()) < len(know) && know[e.V()] == e {
			out = append(out, Edge{U: e.U(), V: e.V(), Sim: e.sim})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}
