package experiments

import (
	"fmt"

	"shoal/internal/phac"
	"shoal/internal/wgraph"
)

// Figure3Graph reconstructs the 13-node worked example of paper Fig. 3
// (node names A..M map to ids 0..12). The exact adjacency is not published
// machine-readably; this reconstruction uses the figure's weight vocabulary
// and reproduces the described behaviour.
func Figure3Graph() (*wgraph.Graph, error) {
	g := wgraph.New(13)
	edges := []wgraph.Edge{
		{U: 0, V: 1, W: 0.90},   // A-B
		{U: 4, V: 5, W: 0.91},   // E-F
		{U: 10, V: 1, W: 0.74},  // K-B
		{U: 0, V: 2, W: 0.70},   // A-C
		{U: 0, V: 3, W: 0.67},   // A-D
		{U: 2, V: 3, W: 0.62},   // C-D
		{U: 7, V: 1, W: 0.65},   // H-B
		{U: 7, V: 8, W: 0.61},   // H-I
		{U: 3, V: 8, W: 0.58},   // D-I
		{U: 2, V: 9, W: 0.64},   // C-J
		{U: 4, V: 6, W: 0.68},   // E-G
		{U: 5, V: 6, W: 0.65},   // F-G
		{U: 5, V: 9, W: 0.61},   // F-J
		{U: 6, V: 11, W: 0.68},  // G-L
		{U: 11, V: 12, W: 0.63}, // L-M
		{U: 9, V: 11, W: 0.58},  // J-L
		{U: 9, V: 6, W: 0.53},   // J-G
	}
	for _, e := range edges {
		if err := g.SetEdge(e.U, e.V, e.W); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// F3LocalMaxima replays the paper's Fig. 3 narrative: after two diffusion
// iterations, (A,B) and (E,F) are the locally-maximal edges and merge in
// parallel.
func F3LocalMaxima() (*Table, error) {
	g, err := Figure3Graph()
	if err != nil {
		return nil, err
	}
	names := "ABCDEFGHIJKLM"
	t := &Table{
		ID:         "F3",
		Title:      "Fig. 3 worked example: local maximal edges per diffusion depth",
		PaperClaim: "edges (A,B) and (E,F) are the two local maximal edges after two diffusion iterations",
		Header:     []string{"r", "selected-edges"},
	}
	for r := 0; r <= 3; r++ {
		sel, err := phac.Diffuse(g, r, 0.3, 1)
		if err != nil {
			return nil, err
		}
		var cells string
		for i, e := range sel {
			if i > 0 {
				cells += " "
			}
			cells += fmt.Sprintf("%c%c@%.2f", names[e.U], names[e.V], e.Sim)
		}
		t.Rows = append(t.Rows, []string{itoa(r), cells})
	}
	t.Notes = append(t.Notes, "reconstructed graph; see internal/experiments/figures.go")
	return t, nil
}

// Runner executes experiments by id.
type Runner struct {
	// Scale selects corpus sizes.
	Scale Scale
	// Seeds are the corpus seeds for multi-seed experiments.
	Seeds []uint64
	// ABUsers is the simulated user count for E2.
	ABUsers int
}

// DefaultRunner uses three seeds at the given scale.
func DefaultRunner(sc Scale) *Runner {
	return &Runner{Scale: sc, Seeds: []uint64{1, 2, 3}, ABUsers: 100_000}
}

// IDs lists the experiment ids in execution order.
func (r *Runner) IDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "F3"}
}

// Run executes one experiment by id.
func (r *Runner) Run(id string) (*Table, error) {
	switch id {
	case "E1":
		return E1Precision(r.Scale, r.Seeds)
	case "E2":
		return E2ABTest(r.Scale, r.ABUsers, r.Seeds)
	case "E3":
		return E3Modularity(r.Scale, r.Seeds)
	case "E4":
		return E4Scaling(r.Scale, r.Seeds[0])
	case "E5":
		return E5Diffusion(r.Scale, r.Seeds[0], 5)
	case "E6":
		return E6Alpha(r.Scale, r.Seeds[0], []float64{0, 0.25, 0.5, 0.7, 0.9, 1})
	case "E7":
		return E7CatCorr(r.Scale, r.Seeds[0], []int{0, 2, 5, 10, 20})
	case "E8":
		return E8Linkage(r.Scale, r.Seeds[0])
	case "E9":
		return E9BSP(r.Scale, r.Seeds[0])
	case "E10":
		return E10Baseline(r.Scale, r.Seeds[0])
	case "E11":
		return E11Daily(r.Scale, r.Seeds[0], 14)
	case "F3":
		return F3LocalMaxima()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
}
