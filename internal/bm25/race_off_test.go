//go:build !race

package bm25

// raceEnabled mirrors the word2vec pattern: allocation assertions are
// meaningless under the race detector (sync.Pool drops items randomly
// there to surface races).
const raceEnabled = false
