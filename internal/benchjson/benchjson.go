// Package benchjson runs the graph-substrate micro-benchmarks at a
// fixed, larger-than-unit-test synthetic scale and emits machine-readable
// ns/op + allocs/op per benchmark. cmd/shoal-bench -benchjson uses it to
// write BENCH_<pr>.json files, giving the repo a benchmark trajectory
// across PRs that CI diffs with the regression gate (Gate /
// cmd/shoal-bench -benchgate): any benchmark name shared between two
// BENCH files whose ns/op regresses past the threshold fails the build.
//
// Methodology note: BENCH_3.json onward records the best of three runs
// per benchmark (the minimum ns/op is the least noise-contaminated
// estimate); BENCH_2.json and earlier were single runs, so comparisons
// against them carry the old files' scheduler noise in addition to real
// deltas. BENCH_10.json onward measures the two gated sub-unity ratios
// (incremental-vs-full, cluster-warm-vs-cold) as paired interleaved
// ratios — both sides alternate inside one timing window, so slow
// machine-speed drift cancels out of the quotient — instead of dividing
// two best-of-three entries measured minutes apart, which let ±8%
// drift swamp a structural gap of the same size. The absolute ns/op
// entries for the four underlying operations are still best-of-three.
package benchjson

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"shoal/internal/bm25"
	"shoal/internal/bsp"
	"shoal/internal/describe"
	"shoal/internal/entitygraph"
	"shoal/internal/hac"
	"shoal/internal/modularity"
	"shoal/internal/phac"
	"shoal/internal/serve"
	"shoal/internal/shard"
	"shoal/internal/textutil"
	"shoal/internal/wgraph"
)

// Result is one benchmark's outcome at the fixed scale.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Run executes every substrate benchmark once and returns the results
// sorted by name. The shared fixture comes from FixedWorld (see
// fixture.go), so a process that already built it — or a CI step that
// cached it on disk — does not pay for it again.
func Run() ([]Result, error) {
	b, clicks, sizes, err := FixedWorld()
	if err != nil {
		return nil, err
	}
	g := b.Graph
	labels := b.Dendrogram.CutAt(0.12)
	docs := make([][]string, 0, len(b.Corpus.Items))
	for i := range b.Corpus.Items {
		docs = append(docs, textutil.Tokenize(b.Corpus.Items[i].Title))
	}
	idx, err := bm25.Build(docs, bm25.DefaultConfig())
	if err != nil {
		return nil, err
	}
	query := textutil.Tokenize(b.Corpus.Queries[0].Text)
	edges := g.Edges() // materialized once: csr-from-edges times CSR construction only
	ctx := context.Background()

	var firstErr error
	record := func(op func() error) func(*testing.B) {
		return func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if err := op(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
	}
	base := g.BaseCSR()
	sharedClusterOp := func() error {
		_, err := phac.Cluster(ctx, g, sizes, phac.Config{StopThreshold: 0.12, DiffusionRounds: 2})
		return err
	}
	bspClusterOp := func() error {
		_, err := phac.Cluster(ctx, g, sizes, phac.Config{
			StopThreshold: 0.12, DiffusionRounds: 2, UseBSP: true,
		})
		return err
	}
	benches := map[string]func(*testing.B){
		// Single-worker, single-shard baseline — comparable across every
		// BENCH_*.json generation.
		"diffuse-r2": record(func() error {
			_, err := phac.Diffuse(base, 2, 0.12, 0)
			return err
		}),
		"phac-cluster": record(sharedClusterOp),
		"hac-sequential": record(func() error {
			_, err := hac.Cluster(g, sizes, hac.Config{StopThreshold: 0.12})
			return err
		}),
		"modularity": record(func() error {
			_, err := modularity.Compute(g, labels)
			return err
		}),
		"entitygraph-build": record(func() error {
			_, err := entitygraph.Build(ctx, b.Entities, clicks, b.Embeddings, entitygraph.DefaultConfig())
			return err
		}),
		"csr-from-edges": record(func() error {
			_, err := wgraph.FromEdges(g.NumNodes(), edges)
			return err
		}),
		"bm25-topk": record(func() error {
			idx.TopK(query, 10)
			return nil
		}),
		// Deeper exchange budget than the paper's r=2: late iterations
		// converge, so this point tracks what frontier pruning saves once
		// the changed set collapses.
		"diffuse-r6": record(func() error {
			_, err := phac.Diffuse(base, 6, 0.12, 0)
			return err
		}),
		// Serving-side rebuild cost of topic descriptions — the batch
		// BM25 scorer path (one scratch checkout + cached idf).
		"describe": record(func() error {
			_, err := describe.Describe(ctx, b.Taxonomy, b.Corpus, clicks, describe.DefaultConfig())
			return err
		}),
		// Diffusion on the shard-native BSP engine — the distributed
		// execution model. Tracked next to diffuse-r{2,6} so the derived
		// bsp-diffuse-r{2,6}-vs-shared ratios record the gap to the
		// shared-memory path across PRs.
		"bsp-diffuse-r2": record(func() error {
			_, err := phac.DiffuseBSP(base, 2, 0.12, bsp.Config{})
			return err
		}),
		"bsp-diffuse-r6": record(func() error {
			_, err := phac.DiffuseBSP(base, 6, 0.12, bsp.Config{})
			return err
		}),
		// Full clustering on the BSP engine (core -bsp): every merge
		// round's diffusion served by one persistent engine rebound to
		// each round's contracted CSR. Tracked next to phac-cluster so
		// the derived phac-cluster-bsp-vs-shared ratio records the
		// end-to-end cost of the distributed execution model, not just
		// the standalone-diffusion gap.
		"phac-cluster-bsp": record(bspClusterOp),
	}
	// Serving hot path through the full instrumented handler (middleware,
	// per-route histograms, status-class counters) versus the same mux
	// with the instrumentation bypassed. The derived obs-overhead-vs-bare
	// ratio below is what the gate watches: request telemetry must stay
	// under ObsOverheadCeiling on the search path.
	handler, err := serve.NewHandler(b)
	if err != nil {
		return nil, err
	}
	bareMux := handler.Bare()
	searchTarget := "/api/search?q=" + url.QueryEscape(b.Corpus.Queries[0].Text) + "&k=10"
	sink := nopWriter{h: make(http.Header)}
	benches["serve-search"] = record(func() error {
		handler.ServeHTTP(&sink, httptest.NewRequest("GET", searchTarget, nil))
		return nil
	})
	benches["serve-search-bare"] = record(func() error {
		bareMux.ServeHTTP(&sink, httptest.NewRequest("GET", searchTarget, nil))
		return nil
	})
	benches["serve-stats"] = record(func() error {
		handler.ServeHTTP(&sink, httptest.NewRequest("GET", "/api/stats", nil))
		return nil
	})
	// One-day window slide, rebuilt both ways from identical precomputed
	// inputs: daily-rebuild runs the from-scratch graph construction +
	// cold clustering the pre-incremental pipeline paid every day;
	// incremental-rebuild sort-merges the slide's dirty rows into the
	// retained CSR and warm-starts clustering from the previous build's
	// diffusion memo. The derived incremental-vs-full ratio below is what
	// the gate watches (IncrementalVsFullCeiling).
	sw, err := buildSlideWorld(b, sizes)
	if err != nil {
		return nil, err
	}
	dailyOp := func() error {
		res, err := entitygraph.Build(ctx, b.Entities, sw.window, b.Embeddings, sw.gcfg)
		if err != nil {
			return err
		}
		_, err = phac.Cluster(ctx, res.Graph, sizes, sw.hcfg)
		return err
	}
	incOp := func() error {
		res, _, d, err := entitygraph.BuildIncremental(ctx, b.Entities, sw.window, b.Embeddings, sw.gcfg, sw.st, sw.dirty)
		if err != nil {
			return err
		}
		_, _, err = phac.ClusterWarm(ctx, res.Graph, sizes, sw.hcfg, sw.memo, d.DirtyRows)
		return err
	}
	benches["daily-rebuild"] = record(dailyOp)
	benches["incremental-rebuild"] = record(incOp)
	// Clustering-only warm-vs-cold pair over the identical post-slide
	// graph: cluster-cold is the from-scratch phac.Cluster the daily path
	// pays, cluster-warm the memo-seeded round-0 warm start plus
	// trajectory replay the incremental pipeline runs (including the cost
	// of capturing the next build's memo). The derived
	// cluster-warm-vs-cold ratio below is hard-gated at
	// ClusterWarmVsColdCeiling.
	coldOp := func() error {
		_, err := phac.Cluster(ctx, sw.post, sizes, sw.hcfg)
		return err
	}
	warmOp := func() error {
		_, _, err := phac.ClusterWarm(ctx, sw.post, sizes, sw.hcfg, sw.memo, sw.postDirty)
		return err
	}
	// The gated ratio's cold side: a cold start that still captures the
	// next build's memo, which every build in the incremental pipeline's
	// steady state must do. Pairing warmOp against this isolates the one
	// decision the gate guards — consume yesterday's memo or ignore it,
	// all else equal — while the capture-free cold path (what the daily
	// full pipeline actually runs) keeps its own absolute entry above and
	// is charged against the warm path in incremental-vs-full.
	coldSteadyOp := func() error {
		_, _, err := phac.ClusterWarm(ctx, sw.post, sizes, sw.hcfg, nil, nil)
		return err
	}
	benches["cluster-cold"] = record(coldOp)
	benches["cluster-warm"] = record(warmOp)
	// Segment wire format: encode + decode every shard of a 4-way
	// partition (the multi-host placement cost per shard hand-off).
	segSrc := shard.Partition(base, 4)
	segs := segSrc.Segments()
	benches["segment-roundtrip"] = record(func() error {
		for _, seg := range segs {
			if _, err := shard.DecodeSegment(seg.Encode()); err != nil {
				return err
			}
		}
		return nil
	})
	// Shard-count sweep: the same diffusion / clustering / construction
	// work at increasing partition widths, so each BENCH_*.json records
	// how the partition-parallel paths scale on the fixed corpus.
	for _, s := range []int{2, 4, 8} {
		sg := shard.Partition(base, s)
		benches[fmt.Sprintf("diffuse-r2-shards%d", s)] = record(func() error {
			_, err := phac.Diffuse(sg, 2, 0.12, 0)
			return err
		})
		shards := s
		benches[fmt.Sprintf("phac-cluster-shards%d", s)] = record(func() error {
			_, err := phac.Cluster(ctx, g, sizes, phac.Config{
				StopThreshold: 0.12, DiffusionRounds: 2, Workers: shards, Shards: shards,
			})
			return err
		})
		benches[fmt.Sprintf("csr-from-edges-shards%d", s)] = record(func() error {
			_, err := shard.FromEdges(g.NumNodes(), edges, shards)
			return err
		})
	}

	// The paired gated ratios are measured before the best-of-three sweep,
	// on the same small live heap every run (fixture + slide world only):
	// the sweep leaves a large heap behind, and GC assists over it
	// systematically inflate the allocation-heavier side of each pair by a
	// few percent — real money for gates whose margin is single-digit
	// percent.
	incRatio, err := pairedRatio(dailyOp, incOp)
	if err != nil {
		return nil, err
	}
	warmRatio, err := pairedRatio(coldSteadyOp, warmOp)
	if err != nil {
		return nil, err
	}
	bspRatio, err := pairedRatio(sharedClusterOp, bspClusterOp)
	if err != nil {
		return nil, err
	}

	out := make([]Result, 0, len(benches))
	byName := make(map[string]Result, len(benches))
	for name, fn := range benches {
		// Best of three: the minimum ns/op is the least scheduler-noise
		// contaminated estimate, which keeps the committed trajectory
		// (and the CI regression gate over it) stable run to run.
		var best Result
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(fn)
			if firstErr != nil {
				return nil, fmt.Errorf("benchjson: %s: %w", name, firstErr)
			}
			cand := Result{
				Name:        name,
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
			}
			if rep == 0 || cand.NsPerOp < best.NsPerOp {
				best = cand
			}
		}
		out = append(out, best)
		byName[name] = best
	}
	// Derived speedup metrics: NsPerOp holds the dimensionless
	// sharded/serial construction time ratio (lower is better, < 1 means
	// the parallel build wins). Machine-speed-independent, so the gate
	// can assert "parallel construction never loses to serial" across
	// runners (see VsSerialCeiling) without chasing absolute ns.
	serial := byName["csr-from-edges"]
	for _, s := range []int{2, 4, 8} {
		name := fmt.Sprintf("csr-from-edges-shards%d", s)
		if sh, ok := byName[name]; ok && serial.NsPerOp > 0 {
			out = append(out, Result{
				Name:    name + "-vs-serial",
				NsPerOp: sh.NsPerOp / serial.NsPerOp,
			})
		}
	}
	// bsp-vs-shared: BSP-engine diffusion time over shared-memory
	// diffusion time at the same exchange budget (dimensionless, lower
	// is better; 1.0 means the distributed twin matches the shared path).
	// Committed in the trajectory so the gap is tracked PR over PR.
	for _, pair := range [][2]string{
		{"bsp-diffuse-r2", "diffuse-r2"},
		{"bsp-diffuse-r6", "diffuse-r6"},
	} {
		if bb, ok := byName[pair[0]]; ok {
			if sh, ok := byName[pair[1]]; ok && sh.NsPerOp > 0 {
				out = append(out, Result{
					Name:    pair[0] + "-vs-shared",
					NsPerOp: bb.NsPerOp / sh.NsPerOp,
				})
			}
		}
	}
	// The end-to-end cluster gap is measured paired like the sub-unity
	// ratios: its ceiling leaves little slack above the structural value,
	// so the drift between two independently timed windows — harmless on
	// the roomy diffusion ratios above — is enough to flake the gate.
	out = append(out, Result{Name: "phac-cluster-bsp-vs-shared", NsPerOp: bspRatio})
	// incremental-vs-full: delta-driven slide rebuild time over the
	// from-scratch rebuild of the same window (dimensionless, lower is
	// better; 1.0 means incrementality saves nothing). Hard-gated at
	// IncrementalVsFullCeiling so the delta path must keep a real margin.
	// Measured paired (see pairedRatio), not by dividing the best-of-three
	// entries above: the quotient of two windows minutes apart carries the
	// machine's drift between them, the quotient of one interleaved window
	// does not.
	out = append(out, Result{Name: "incremental-vs-full", NsPerOp: incRatio})
	// cluster-warm-vs-cold: memo-seeded clustering time over a
	// memo-ignoring cold start of the identical post-slide graph, both
	// sides capturing the next build's memo as every steady-state
	// incremental build must (dimensionless, lower is better; 1.0 means
	// consuming the memo saves nothing). Hard-gated at
	// ClusterWarmVsColdCeiling so dendrogram-prefix reuse must keep
	// clustering itself — not just the graph patch — cheaper than
	// recomputing. Paired for the same reason as incremental-vs-full, and
	// more urgently: this ratio's structural gap is about the size of the
	// drift.
	out = append(out, Result{Name: "cluster-warm-vs-cold", NsPerOp: warmRatio})
	// obs-overhead-vs-bare: instrumented search serving time over the same
	// handler with the middleware bypassed (dimensionless, lower is
	// better; 1.0 means the telemetry is free). Hard-gated at
	// ObsOverheadCeiling so the request instrumentation can never quietly
	// grow past its <10% budget on the search hot path.
	if inst, ok := byName["serve-search"]; ok {
		if bare, ok := byName["serve-search-bare"]; ok && bare.NsPerOp > 0 {
			out = append(out, Result{
				Name:    "obs-overhead-vs-bare",
				NsPerOp: inst.NsPerOp / bare.NsPerOp,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// pairedRatio measures the dimensionless cand/base time ratio for the
// gated sub-unity ratios by alternating the two operations inside one
// timing window: three reps, each running base/cand pairs back to back
// until the rep has at least minPairs pairs and minWindow of wall time
// (capped at maxPairs), with one untimed pair up front to warm both
// sides' caches. The reported value is the median of five reps.
// Interleaving makes slow machine-speed drift hit both sides of the
// quotient equally and cancel, where dividing two independently timed
// benchmarks lets drift between their windows masquerade as a
// structural change — fatal for a gate whose real margin is single-digit
// percent. Two further noise sources get neutralized explicitly: each
// rep starts from a collected heap (the ratio would otherwise inherit
// whatever garbage the preceding ten minutes of benchmarks left live,
// inflating GC assists unequally), and the order within a pair flips
// every iteration so GC debt triggered by one op but paid inside the
// other's timing window — first-order on a single-CPU runner — cancels
// across the rep instead of biasing whichever op runs second.
func pairedRatio(base, cand func() error) (float64, error) {
	const (
		minPairs  = 10
		maxPairs  = 40
		minWindow = 800 * time.Millisecond
	)
	var ratios [5]float64
	for rep := range ratios {
		runtime.GC()
		if err := base(); err != nil {
			return 0, err
		}
		if err := cand(); err != nil {
			return 0, err
		}
		var tBase, tCand time.Duration
		for pairs := 1; pairs <= maxPairs; pairs++ {
			first, second := base, cand
			if pairs%2 == 0 {
				first, second = cand, base
			}
			t0 := time.Now()
			if err := first(); err != nil {
				return 0, err
			}
			t1 := time.Now()
			if err := second(); err != nil {
				return 0, err
			}
			d1, d2 := t1.Sub(t0), time.Since(t1)
			if pairs%2 == 0 {
				d1, d2 = d2, d1
			}
			tBase += d1
			tCand += d2
			if pairs >= minPairs && tBase+tCand >= minWindow {
				break
			}
		}
		ratios[rep] = float64(tCand) / float64(tBase)
	}
	sorted := ratios[:]
	sort.Float64s(sorted)
	return sorted[len(sorted)/2], nil
}

// nopWriter is the serving benchmarks' response sink: headers land in a
// reused map, bodies are counted and dropped. It keeps the benchmark on
// the handler + instrumentation cost instead of response buffering.
type nopWriter struct{ h http.Header }

func (w *nopWriter) Header() http.Header         { return w.h }
func (w *nopWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopWriter) WriteHeader(int)             {}

// WriteFile runs the suite and writes the results as indented JSON.
func WriteFile(path string) error {
	results, err := Run()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a BENCH_*.json results file.
func ReadFile(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []Result
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return out, nil
}

// VsSerialCeiling is the baseline hard ceiling for the *-vs-serial
// derived ratios: a sharded construction measuring above it has lost to
// the serial build, which the gate fails regardless of what the old
// trajectory recorded. The effective ceiling widens with the gate's
// relative threshold (1 + threshold when that is larger), so the
// runner-side re-run — noisy shared hardware, wider tolerance — gets
// the same proportional slack as its ns/op comparisons while the
// committed-trajectory gate stays strict. Either way the PR-3
// regression shape (parallel FromEdges 1.6-2.0x slower than serial)
// can never come back silently.
const VsSerialCeiling = 1.10

// BspVsSharedCeiling is the hard ceiling for the bsp-diffuse-*-vs-shared
// derived ratios: BSP-engine diffusion time over shared-memory diffusion
// time at the same exchange budget. A ratio at or above it means the
// distributed execution model has fallen behind the shared path by more
// than the accepted envelope, which the gate fails outright — the PR-6
// gap-closing work (persistent engines across rounds, O(frontier)
// combiner scratch, dense-mode inbox scans) brought the ratios to
// ~1.2-1.25, and this ceiling keeps the gap from silently reopening
// toward the ~2x it started at. Like VsSerialCeiling, the effective
// ceiling widens to 1 + threshold when the gate runs with a larger
// relative tolerance (noisy shared runners), while the
// committed-trajectory gate stays strict.
const BspVsSharedCeiling = 1.45

// ClusterBspVsSharedCeiling is the hard ceiling for the end-to-end
// phac-cluster-bsp-vs-shared ratio. It is looser than the standalone
// diffusion ceiling because the full clustering run also pays the
// engine Rebind/remap tax every merge round. The PR-7 cross-round
// memoization work (seeded supersteps over the previous round's fixed
// point, changed-rows selection, incremental round stats) brought the
// ratio to ~1.26; PR-10's in-place contracted CSR then sped the
// shared-memory denominator ~31% while the BSP twin — which still
// rebuilds per-round segments for placement — kept only ~16%, moving
// the structural (paired) ratio to ~1.46, so the ceiling sits at 1.8:
// anything
// at or above it means the vertex program has fallen back to
// recomputing whole rounds from scratch — the ~2.5x shape this gate
// exists to keep out. Widens to 1 + threshold on wide-tolerance gates,
// like the other ceilings.
const ClusterBspVsSharedCeiling = 1.8

// ObsOverheadCeiling is the hard ceiling for the obs-overhead-vs-bare
// derived ratio: instrumented search serving time over the bare-mux
// time. At or above it the request telemetry (middleware, per-route
// histogram, status-class counters) costs 10%+ of the search hot path,
// which the gate fails outright — the observability layer's contract is
// that measuring the serving tier never becomes a tax worth turning
// off. Widens to 1 + threshold on wide-tolerance gates, like the other
// ceilings.
const ObsOverheadCeiling = 1.10

// IncrementalVsFullCeiling is the hard ceiling for the derived
// incremental-vs-full ratio: delta-driven slide rebuild time over a
// from-scratch rebuild of the same window. At or above it the
// incremental path has lost its reason to exist — the sort-merge CSR
// patch plus the warm-started clustering must beat recomputing
// yesterday's taxonomy by a real margin, not round-off. PR-10's
// dendrogram-prefix replay plus the reflection-free incremental graph
// merge brought the paired ratio to ~0.5, so the line sits at 0.6:
// enough headroom for runner noise, tight enough that giving back half
// the PR-10 win fails the gate. Unlike the >1 ceilings above, this one
// does NOT widen with the gate's relative threshold: the ratio's whole
// budget sits below 1.0, so adding the threshold on top would let the
// win silently evaporate on wide-tolerance runners.
const IncrementalVsFullCeiling = 0.6

// ClusterWarmVsColdCeiling is the hard ceiling for the derived
// cluster-warm-vs-cold ratio: memo-seeded clustering time over a
// memo-ignoring cold start of the identical post-slide graph, both
// sides paying the steady-state capture of the next build's memo. At or
// above it the warm start is no longer paying for itself — the round-0
// seed plus dendrogram-prefix replay must leave clustering strictly
// cheaper than recomputing with the memo thrown away. Unlike the
// incremental-vs-full budget (which bounds a
// whole-pipeline win and so sits well below 1), this gate guards the
// sign of the clustering-only win, so it sits exactly at parity. Like
// IncrementalVsFullCeiling it never widens with the gate's relative
// threshold: any tolerance added on top of 1.0 would permit a warm
// start that loses outright.
const ClusterWarmVsColdCeiling = 1.0

// Regressions compares two result sets and reports every benchmark name
// present in both whose ns/op grew by more than threshold (a fraction:
// 0.25 means "fail past +25%"). Benchmarks only in one set are ignored —
// the gate constrains the shared trajectory, it does not force every PR
// to keep the same suite — except the derived ratios in the new set:
// *-vs-serial additionally fails outright above VsSerialCeiling,
// bsp-diffuse-*-vs-shared above BspVsSharedCeiling,
// phac-cluster-bsp-vs-shared above ClusterBspVsSharedCeiling,
// obs-overhead-vs-bare above ObsOverheadCeiling,
// incremental-vs-full above IncrementalVsFullCeiling, and
// cluster-warm-vs-cold above ClusterWarmVsColdCeiling (the latter two
// never widen). The report is sorted by name.
func Regressions(oldRes, newRes []Result, threshold float64) []string {
	prev := make(map[string]Result, len(oldRes))
	for _, r := range oldRes {
		prev[r.Name] = r
	}
	ceiling := VsSerialCeiling
	if 1+threshold > ceiling {
		ceiling = 1 + threshold
	}
	bspCeiling := BspVsSharedCeiling
	if 1+threshold > bspCeiling {
		bspCeiling = 1 + threshold
	}
	clusterCeiling := ClusterBspVsSharedCeiling
	if 1+threshold > clusterCeiling {
		clusterCeiling = 1 + threshold
	}
	obsCeiling := ObsOverheadCeiling
	if 1+threshold > obsCeiling {
		obsCeiling = 1 + threshold
	}
	var out []string
	for _, n := range newRes {
		if strings.HasSuffix(n.Name, "-vs-serial") && n.NsPerOp >= ceiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — parallel construction lost to serial",
				n.Name, n.NsPerOp, ceiling))
			continue
		}
		if strings.HasPrefix(n.Name, "bsp-diffuse-") && strings.HasSuffix(n.Name, "-vs-shared") && n.NsPerOp >= bspCeiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — BSP engine fell behind the shared-memory path",
				n.Name, n.NsPerOp, bspCeiling))
			continue
		}
		if n.Name == "phac-cluster-bsp-vs-shared" && n.NsPerOp >= clusterCeiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — BSP clustering lost its cross-round memoization win",
				n.Name, n.NsPerOp, clusterCeiling))
			continue
		}
		if n.Name == "obs-overhead-vs-bare" && n.NsPerOp >= obsCeiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — request instrumentation blew its search hot-path budget",
				n.Name, n.NsPerOp, obsCeiling))
			continue
		}
		if n.Name == "incremental-vs-full" && n.NsPerOp >= IncrementalVsFullCeiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — the delta-driven rebuild lost its margin over recomputing from scratch",
				n.Name, n.NsPerOp, IncrementalVsFullCeiling))
			continue
		}
		if n.Name == "cluster-warm-vs-cold" && n.NsPerOp >= ClusterWarmVsColdCeiling {
			out = append(out, fmt.Sprintf("%s: ratio %.2f >= %.2f — the memo-seeded warm start lost to cold clustering",
				n.Name, n.NsPerOp, ClusterWarmVsColdCeiling))
			continue
		}
		o, ok := prev[n.Name]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		if n.NsPerOp > o.NsPerOp*(1+threshold) {
			out = append(out, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%, gate %+.0f%%)",
				n.Name, o.NsPerOp, n.NsPerOp, 100*(n.NsPerOp/o.NsPerOp-1), 100*threshold))
		}
	}
	sort.Strings(out)
	return out
}

// Gate loads two BENCH_*.json files and returns the regression report
// (empty when the gate passes).
func Gate(oldPath, newPath string, threshold float64) ([]string, error) {
	oldRes, err := ReadFile(oldPath)
	if err != nil {
		return nil, err
	}
	newRes, err := ReadFile(newPath)
	if err != nil {
		return nil, err
	}
	return Regressions(oldRes, newRes, threshold), nil
}
