// Package phac implements Parallel Hierarchical Agglomerative Clustering,
// the core contribution of the paper (§2.2).
//
// Classic HAC merges one globally-best pair per iteration, which neither
// tolerates sparse similarity matrices (Challenge 1) nor scales (Challenge
// 2). Parallel HAC rounds do three things instead:
//
//  1. Diffusion — every node starts knowing its best incident edge; for r
//     iterations nodes exchange the best edge they know with their
//     neighbors and keep the maximum. Edges are totally ordered by
//     (similarity desc, canonical id asc) so ties are deterministic.
//  2. Selection — an edge is *locally maximal* if, after diffusion, both
//     of its endpoints still consider it the best edge they have heard
//     of. Locally maximal edges form a node-disjoint matching: they can
//     all be merged in parallel. Smaller r ⇒ more selected edges ⇒ more
//     parallelism (the paper fixes r = 2).
//  3. Merge + update — each selected pair becomes a new cluster; the
//     neighborhood similarities are recomputed with the √-normalized rule
//     of Eq. 4, treating missing edges as 0. When both endpoints of an old
//     edge merged in the same round the two Eq. 4 applications compose
//     multiplicatively.
//
// Rounds repeat until no edge reaches the stop threshold. The globally
// maximal edge is always locally maximal, so progress is guaranteed.
//
// The clustering state is held in compressed-sparse-row form: each merge
// round sort-merges the coalesced edge contributions into the next
// round's CSR (double-buffered, scratch reused across rounds), so the
// diffusion inner loop never allocates and never chases map buckets.
package phac

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"

	"shoal/internal/dendrogram"
	"shoal/internal/wgraph"
)

// Linkage selects the similarity-update rule applied on merge. The paper
// uses SqrtSize (Eq. 4); the alternatives exist for the E8 ablation.
type Linkage int

const (
	// LinkageSqrtSize is Eq. 4: weights √nA/(√nA+√nB) and √nB/(√nA+√nB).
	LinkageSqrtSize Linkage = iota
	// LinkageUnweighted averages with weights 1/2 regardless of size.
	LinkageUnweighted
	// LinkageSizeProportional weights by nA/(nA+nB) (UPGMA-style).
	LinkageSizeProportional
)

func (l Linkage) String() string {
	switch l {
	case LinkageSqrtSize:
		return "sqrt-size"
	case LinkageUnweighted:
		return "unweighted"
	case LinkageSizeProportional:
		return "size-proportional"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// weights returns the (wA, wB) merge weights for sizes nA, nB.
func (l Linkage) weights(nA, nB float64) (float64, float64) {
	switch l {
	case LinkageUnweighted:
		return 0.5, 0.5
	case LinkageSizeProportional:
		den := nA + nB
		return nA / den, nB / den
	default:
		sa, sb := math.Sqrt(nA), math.Sqrt(nB)
		den := sa + sb
		return sa / den, sb / den
	}
}

// Config controls Parallel HAC.
type Config struct {
	// StopThreshold ends clustering when no edge reaches it.
	StopThreshold float64
	// DiffusionRounds is r, the number of max-exchange iterations per
	// round. The paper sets 2.
	DiffusionRounds int
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
	// MaxRounds caps clustering rounds; 0 means unlimited.
	MaxRounds int
	// Linkage is the merge update rule; zero value is the paper's Eq. 4.
	Linkage Linkage
}

// DefaultConfig mirrors the paper: r=2, threshold 0.35.
func DefaultConfig() Config {
	return Config{StopThreshold: 0.35, DiffusionRounds: 2}
}

func (c *Config) validate() error {
	if c.StopThreshold < 0 || c.StopThreshold > 1 {
		return fmt.Errorf("phac: StopThreshold must be in [0,1], got %f", c.StopThreshold)
	}
	if c.DiffusionRounds < 0 {
		return fmt.Errorf("phac: DiffusionRounds must be non-negative, got %d", c.DiffusionRounds)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Linkage < LinkageSqrtSize || c.Linkage > LinkageSizeProportional {
		return fmt.Errorf("phac: unknown linkage %d", c.Linkage)
	}
	return nil
}

// RoundStat profiles one Parallel HAC round — the data behind experiment
// E5 (diffusion iterations vs. parallelism).
type RoundStat struct {
	Round int
	// ActiveClusters is the number of alive clusters entering the round.
	ActiveClusters int
	// ActiveEdges is the number of edges >= StopThreshold entering it.
	ActiveEdges int
	// Selected is the number of locally-maximal edges merged.
	Selected int
	// BestSim is the global maximum similarity entering the round.
	BestSim float64
}

// Result is the output of Parallel HAC.
type Result struct {
	Dendrogram *dendrogram.Dendrogram
	Rounds     []RoundStat
}

// edgeRef is a totally ordered reference to an edge: better means higher
// similarity, ties broken by smaller canonical (u,v).
type edgeRef struct {
	u, v int32 // canonical: u < v
	sim  float64
}

var noEdge = edgeRef{u: -1, v: -1, sim: math.Inf(-1)}

// better reports whether a beats b in the diffusion total order.
func better(a, b edgeRef) bool {
	if a.sim != b.sim {
		return a.sim > b.sim
	}
	if a.u != b.u {
		return a.u < b.u
	}
	return a.v < b.v
}

// Cluster runs Parallel HAC over g with initial cluster sizes (nil means
// all 1); g is read once (frozen to CSR if mutable) and never modified.
// Leaf ids in the dendrogram are graph node ids.
// The result is deterministic and independent of cfg.Workers, and
// identical for a mutable graph and its frozen CSR.
// Cancellation is checked between clustering rounds.
func Cluster(ctx context.Context, g wgraph.View, sizes []int, cfg Config) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("phac: empty graph")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sizes != nil && len(sizes) != n {
		return nil, fmt.Errorf("phac: sizes length %d != nodes %d", len(sizes), n)
	}

	st := newState(wgraph.AsCSR(g), sizes, cfg)
	res := &Result{Dendrogram: &dendrogram.Dendrogram{Leaves: n}}

	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			break
		}
		selected, activeEdges, bestSim := st.selectLocalMaxima(cfg.DiffusionRounds, cfg.Workers, cfg.StopThreshold)
		stat := RoundStat{
			Round: round, ActiveClusters: st.aliveCount,
			ActiveEdges: activeEdges, BestSim: bestSim, Selected: len(selected),
		}
		if activeEdges == 0 || bestSim < cfg.StopThreshold {
			break
		}
		res.Rounds = append(res.Rounds, stat)
		if len(selected) == 0 {
			// Cannot happen while an edge >= threshold exists (the
			// global max is always mutual), but guard against it so a
			// bug cannot loop forever.
			return nil, fmt.Errorf("phac: round %d selected no edges with best sim %f", round, bestSim)
		}

		st.mergeSelected(selected, round, cfg, res.Dendrogram)
	}
	return res, nil
}

// state is the mutable clustering state. Cluster ids grow past n as merges
// mint new ids; alive marks current clusters. The current graph is a CSR
// over all minted ids (dead rows are empty); each merge round builds the
// next CSR into the spare buffers and swaps, so no per-node maps exist
// anywhere on the clustering path.
type state struct {
	total   int       // minted ids; CSR rows
	offsets []int32   // current CSR: len total+1
	nbrs    []int32   // neighbor ids, ascending within each row
	wts     []float64 // parallel weights
	// ownsCur is false while the current CSR aliases the caller's frozen
	// graph (round 0); those arrays are never written.
	ownsCur    bool
	bOffsets   []int32 // spare CSR buffers for the next round
	bNbrs      []int32
	bWts       []float64
	size       []float64
	alive      []bool
	aliveCount int
	workers    int
	know, next []edgeRef // diffusion double buffers
	nodes      []int32   // aliveList scratch
	edgeCnt    []int64   // per-alive-node edge count scratch
	bests      []edgeRef // per-alive-node best-any scratch
	selected   []edgeRef // selection output, reused per round
	mergeTo    []int32   // id -> new id this round, -1 otherwise
	coef       []float64 // id -> Eq. 4 coefficient this round
	deg        []int32   // degree/cursor scratch for CSR rebuild
	perOwner   [][]contrib
	all        []contrib
	newEdges   []wgraph.Edge // aggregated >= threshold edges
}

func newState(c *wgraph.CSR, sizes []int, cfg Config) *state {
	n := c.NumNodes()
	offsets, nbrs, wts := c.Adj()
	st := &state{
		total:      n,
		offsets:    offsets,
		nbrs:       nbrs,
		wts:        wts,
		ownsCur:    false,
		size:       make([]float64, n, 2*n),
		alive:      make([]bool, n, 2*n),
		aliveCount: n,
		workers:    cfg.Workers,
		know:       make([]edgeRef, n, 2*n),
		next:       make([]edgeRef, n, 2*n),
		mergeTo:    make([]int32, n, 2*n),
	}
	for i := 0; i < n; i++ {
		st.alive[i] = true
		st.size[i] = 1
		if sizes != nil {
			st.size[i] = float64(sizes[i])
		}
		st.know[i] = noEdge
		st.next[i] = noEdge
		st.mergeTo[i] = -1
	}
	return st
}

// aliveList fills the reusable node scratch with the alive cluster ids.
func (st *state) aliveList() []int32 {
	out := st.nodes[:0]
	for id := int32(0); int(id) < st.total; id++ {
		if st.alive[id] {
			out = append(out, id)
		}
	}
	st.nodes = out
	return out
}

// selectLocalMaxima runs the diffusion protocol and returns the selected
// node-disjoint matching (sorted canonically) along with the round's edge
// count and global best similarity, gathered during the same scan. Only
// edges >= threshold participate in diffusion. The scan reads the CSR
// arrays directly: no allocation per diffusion iteration.
func (st *state) selectLocalMaxima(rounds, workers int, threshold float64) ([]edgeRef, int, float64) {
	nodes := st.aliveList()
	serial := workers <= 1 || len(nodes) < 64

	// Iteration 0: best incident edge per node, plus round statistics
	// (edge endpoints counted once, at the smaller id).
	for len(st.edgeCnt) < len(nodes) {
		st.edgeCnt = append(st.edgeCnt, 0)
		st.bests = append(st.bests, noEdge)
	}
	know, next := st.know, st.next
	if serial {
		st.diffuseInit(nodes, 0, len(nodes), threshold, know)
	} else {
		k := know // fresh binding: closure captures by value, not the reassigned loop var
		runShards(len(nodes), workers, func(lo, hi int) {
			st.diffuseInit(nodes, lo, hi, threshold, k)
		})
	}
	var activeEdges int64
	globalBest := noEdge
	for i := range nodes {
		activeEdges += st.edgeCnt[i]
		if better(st.bests[i], globalBest) {
			globalBest = st.bests[i]
		}
	}

	// r exchange iterations: take the max over own and neighbors' known
	// edges. Double-buffered so reads see only the previous iteration.
	for it := 0; it < rounds; it++ {
		if serial {
			st.diffuseExchange(nodes, 0, len(nodes), know, next)
		} else {
			k, nx := know, next
			runShards(len(nodes), workers, func(lo, hi int) {
				st.diffuseExchange(nodes, lo, hi, k, nx)
			})
		}
		know, next = next, know
	}
	st.know, st.next = know, next

	// Selection: an edge whose both endpoints know it is locally maximal.
	var selected []edgeRef
	if serial {
		selected = st.diffuseSelectSerial(nodes, threshold, know, st.selected[:0])
	} else {
		sink := &selectSink{buf: st.selected[:0]}
		k := know
		runShards(len(nodes), workers, func(lo, hi int) {
			st.diffuseSelectInto(nodes, lo, hi, threshold, k, sink)
		})
		selected = sink.buf
	}
	slices.SortFunc(selected, func(a, b edgeRef) int {
		if a.u != b.u {
			return int(a.u - b.u)
		}
		return int(a.v - b.v)
	})
	st.selected = selected
	return selected, int(activeEdges), globalBest.sim
}

// shardBounds splits [0,n) into `shards` contiguous ranges and returns
// the i-th.
func shardBounds(n, shards, i int) (lo, hi int) {
	lo = n * i / shards
	hi = n * (i + 1) / shards
	return lo, hi
}

// runShards runs fn over [0,n) split contiguously across `workers`
// goroutines and waits for all of them. Callers on the zero-alloc path
// must only construct the fn closure inside their parallel branch (and
// capture fresh bindings, not variables reassigned later), so the serial
// branch stays allocation-free.
func runShards(n, workers int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := shardBounds(n, workers, w)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// diffuseInit is diffusion iteration 0 over nodes[lo:hi]: each node's
// best incident >= threshold edge, plus the round's edge count and
// unconditional best edge for the round statistics. Pure CSR array
// scans — no allocation.
func (st *state) diffuseInit(nodes []int32, lo, hi int, threshold float64, know []edgeRef) {
	offsets, nbrs, wts := st.offsets, st.nbrs, st.wts
	for i := lo; i < hi; i++ {
		u := nodes[i]
		best := noEdge
		edges := int64(0)
		bestAny := noEdge
		for j := offsets[u]; j < offsets[u+1]; j++ {
			v, w := nbrs[j], wts[j]
			if u < v {
				edges++
			}
			cu, cv := canon(u, v)
			cand := edgeRef{u: cu, v: cv, sim: w}
			if better(cand, bestAny) {
				bestAny = cand
			}
			if w < threshold {
				continue
			}
			if better(cand, best) {
				best = cand
			}
		}
		know[u] = best
		st.edgeCnt[i] = edges
		st.bests[i] = bestAny
	}
}

// diffuseExchange is one max-exchange iteration over nodes[lo:hi],
// reading know and writing next.
func (st *state) diffuseExchange(nodes []int32, lo, hi int, know, next []edgeRef) {
	offsets, nbrs := st.offsets, st.nbrs
	for i := lo; i < hi; i++ {
		u := nodes[i]
		best := know[u]
		for j := offsets[u]; j < offsets[u+1]; j++ {
			if v := nbrs[j]; better(know[v], best) {
				best = know[v]
			}
		}
		next[u] = best
	}
}

// diffuseSelectSerial appends the locally-maximal edges (each edge
// evaluated once, at its smaller endpoint) to buf and returns it. Kept
// free of shared state so the single-worker path allocates nothing.
func (st *state) diffuseSelectSerial(nodes []int32, threshold float64, know []edgeRef, buf []edgeRef) []edgeRef {
	for _, u := range nodes {
		e := know[u]
		if e.u != u || e.sim < threshold {
			continue
		}
		if know[e.v] == e {
			buf = append(buf, e)
		}
	}
	return buf
}

// selectSink is the shared selection output for the parallel path.
type selectSink struct {
	mu  sync.Mutex
	buf []edgeRef
}

// diffuseSelectInto is diffuseSelectSerial over nodes[lo:hi] appending
// into the shared sink.
func (st *state) diffuseSelectInto(nodes []int32, lo, hi int, threshold float64, know []edgeRef, sink *selectSink) {
	for i := lo; i < hi; i++ {
		u := nodes[i]
		e := know[u]
		if e.u != u || e.sim < threshold {
			continue
		}
		if know[e.v] == e {
			sink.mu.Lock()
			sink.buf = append(sink.buf, e)
			sink.mu.Unlock()
		}
	}
}

// contrib is one old-edge contribution to a new edge's Eq. 4 sum, tagged
// with its origin for deterministic summation order.
type contrib struct {
	key  [2]int32 // canonical new endpoints
	orig [2]int32 // canonical old endpoints
	val  float64
}

// mergeSelected applies a round's matching: mints new cluster ids, emits
// dendrogram merges, and sort-merges the surviving and coalesced edges
// into the next round's CSR. Deterministic regardless of worker count:
// contributions are aggregated in sorted origin order.
func (st *state) mergeSelected(selected []edgeRef, round int, cfg Config, d *dendrogram.Dendrogram) {
	base := int32(st.total)
	newTotal := st.total + len(selected)

	// Extend the per-id arrays for the minted clusters; mergeTo/coef map
	// a merged old cluster to its new id and Eq. 4 coefficient.
	for len(st.mergeTo) < newTotal {
		st.mergeTo = append(st.mergeTo, -1)
		st.know = append(st.know, noEdge)
		st.next = append(st.next, noEdge)
	}
	for len(st.coef) < newTotal {
		st.coef = append(st.coef, 0)
	}
	for i, e := range selected {
		id := base + int32(i)
		wu, wv := cfg.Linkage.weights(st.size[e.u], st.size[e.v])
		st.mergeTo[e.u] = id
		st.mergeTo[e.v] = id
		st.coef[e.u] = wu
		st.coef[e.v] = wv
		st.size = append(st.size, st.size[e.u]+st.size[e.v])
		st.alive = append(st.alive, true)
		d.Merges = append(d.Merges, dendrogram.Merge{
			A: e.u, B: e.v, New: id, Sim: e.sim, Round: int32(round),
		})
	}

	// Generate contributions from every old edge with >= 1 merged
	// endpoint. Each selected pair's owner scans its two members;
	// old edges between two merged nodes are emitted by the owner of the
	// smaller new id only (dedup).
	offsets, nbrs, wts := st.offsets, st.nbrs, st.wts
	for len(st.perOwner) < len(selected) {
		st.perOwner = append(st.perOwner, nil)
	}
	perOwner := st.perOwner
	parallelIdx(len(selected), st.workers, func(i int) {
		e := selected[i]
		w := base + int32(i)
		out := perOwner[i][:0]
		for _, member := range [2]int32{e.u, e.v} {
			wm := st.coef[member]
			for j := offsets[member]; j < offsets[member+1]; j++ {
				nb, s := nbrs[j], wts[j]
				mappedNb := st.mergeTo[nb]
				var q int32
				wq := 1.0
				if mappedNb >= 0 {
					if mappedNb == w {
						continue // internal edge of this merge
					}
					q = mappedNb
					wq = st.coef[nb]
					if q < w {
						continue // the other owner emits this one
					}
				} else {
					q = nb
				}
				a, b := canon(w, q)
				oa, ob := canon(member, nb)
				out = append(out, contrib{key: [2]int32{a, b}, orig: [2]int32{oa, ob}, val: wm * wq * s})
			}
		}
		perOwner[i] = out
	})

	// Aggregate: flatten in owner order, group by key, sum each group in
	// sorted origin order for exact determinism.
	all := st.all[:0]
	for _, lst := range perOwner[:len(selected)] {
		all = append(all, lst...)
	}
	st.all = all
	slices.SortFunc(all, func(x, y contrib) int {
		if x.key[0] != y.key[0] {
			return int(x.key[0] - y.key[0])
		}
		if x.key[1] != y.key[1] {
			return int(x.key[1] - y.key[1])
		}
		if x.orig[0] != y.orig[0] {
			return int(x.orig[0] - y.orig[0])
		}
		return int(x.orig[1] - y.orig[1])
	})

	// Sum each group; keep >= threshold: Eq. 4 is a convex combination,
	// so a sub-threshold edge can never feed a future >= threshold
	// similarity. Output arrives sorted by canonical key.
	newEdges := st.newEdges[:0]
	for i := 0; i < len(all); {
		j := i
		var sum float64
		for ; j < len(all) && all[j].key == all[i].key; j++ {
			sum += all[j].val
		}
		if sum >= cfg.StopThreshold {
			newEdges = append(newEdges, wgraph.Edge{U: all[i].key[0], V: all[i].key[1], W: sum})
		}
		i = j
	}
	st.newEdges = newEdges

	// Build the next round's CSR into the spare buffers: surviving old
	// edges (both endpoints unmerged) in row-major order, then the
	// coalesced edges in canonical order. Every row under construction
	// receives its neighbors in ascending order (old ids < base first,
	// minted ids >= base after), so no per-row sort is needed.
	for len(st.deg) < newTotal {
		st.deg = append(st.deg, 0)
	}
	deg := st.deg[:newTotal]
	clear(deg)
	for u := int32(0); int(u) < st.total; u++ {
		if !st.alive[u] || st.mergeTo[u] >= 0 {
			continue
		}
		for j := offsets[u]; j < offsets[u+1]; j++ {
			if v := nbrs[j]; u < v && st.mergeTo[v] < 0 {
				deg[u]++
				deg[v]++
			}
		}
	}
	for _, e := range newEdges {
		deg[e.U]++
		deg[e.V]++
	}
	for len(st.bOffsets) < newTotal+1 {
		st.bOffsets = append(st.bOffsets, 0)
	}
	bOffsets := st.bOffsets[:newTotal+1]
	bOffsets[0] = 0
	for i := 0; i < newTotal; i++ {
		bOffsets[i+1] = bOffsets[i] + deg[i]
		deg[i] = bOffsets[i] // reuse as fill cursor
	}
	half := int(bOffsets[newTotal])
	for len(st.bNbrs) < half {
		st.bNbrs = append(st.bNbrs, 0)
		st.bWts = append(st.bWts, 0)
	}
	bNbrs, bWts := st.bNbrs[:half], st.bWts[:half]
	for u := int32(0); int(u) < st.total; u++ {
		if !st.alive[u] || st.mergeTo[u] >= 0 {
			continue
		}
		for j := offsets[u]; j < offsets[u+1]; j++ {
			v, w := nbrs[j], wts[j]
			if u >= v || st.mergeTo[v] >= 0 {
				continue
			}
			bNbrs[deg[u]], bWts[deg[u]] = v, w
			deg[u]++
			bNbrs[deg[v]], bWts[deg[v]] = u, w
			deg[v]++
		}
	}
	for _, e := range newEdges {
		bNbrs[deg[e.U]], bWts[deg[e.U]] = e.V, e.W
		deg[e.U]++
		bNbrs[deg[e.V]], bWts[deg[e.V]] = e.U, e.W
		deg[e.V]++
	}

	// Retire the merged clusters and clear this round's merge map.
	for _, e := range selected {
		st.alive[e.u] = false
		st.alive[e.v] = false
		st.mergeTo[e.u] = -1
		st.mergeTo[e.v] = -1
	}
	st.aliveCount -= len(selected)

	// Swap the new CSR in; the old buffers become the next spare unless
	// they alias the caller's graph.
	if st.ownsCur {
		st.offsets, st.bOffsets = bOffsets, st.offsets
		st.nbrs, st.bNbrs = bNbrs, st.nbrs
		st.wts, st.bWts = bWts, st.wts
	} else {
		st.offsets, st.nbrs, st.wts = bOffsets, bNbrs, bWts
		st.bOffsets, st.bNbrs, st.bWts = nil, nil, nil
		st.ownsCur = true
	}
	st.total = newTotal
}

func canon(u, v int32) (int32, int32) {
	if u < v {
		return u, v
	}
	return v, u
}

// parallelOver runs fn over the node list with the given parallelism.
func parallelOver(nodes []int32, workers int, fn func(u int32)) {
	if workers <= 1 || len(nodes) < 64 {
		for _, u := range nodes {
			fn(u)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(nodes); i += workers {
				fn(nodes[i])
			}
		}(w)
	}
	wg.Wait()
}

// parallelIdx runs fn over [0,n) with the given parallelism.
func parallelIdx(n, workers int, fn func(i int)) {
	if workers <= 1 || n < 16 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(i)
			}
		}(w)
	}
	wg.Wait()
}
