// Package abtest simulates the paper's online A/B test (§3): 3 million
// users, control group served category-matched recommendations, experiment
// group served SHOAL topic-matched recommendations, outcome measured as
// Click Through Rate. The paper reports a 5% relative CTR lift.
//
// The simulation's user model encodes the mechanism the paper credits for
// the lift: a user browsing an item usually has a *shopping scenario* in
// mind (the generator's ground-truth label), and clicks a recommended item
// with much higher probability when it serves that scenario than when it
// merely shares a category. Category recommendations can only cover the
// scenario by accident; topic recommendations cover it by construction —
// so the lift emerges from coverage, not from a hard-coded answer.
package abtest

import (
	"fmt"
	"math"
	"math/rand/v2"

	"shoal/internal/model"
	"shoal/internal/recommend"
)

// Config controls the simulation.
type Config struct {
	// Users is the number of simulated users (the paper ran 3M).
	Users int
	// PanelSize is the number of recommendations shown per impression.
	PanelSize int
	// BaseCTR is the click probability for an irrelevant recommendation.
	BaseCTR float64
	// ScenarioCTR is the click probability for a recommendation that
	// matches the user's latent scenario.
	ScenarioCTR float64
	// CategoryCTR is the click probability for a recommendation that
	// shares the seed's category but not the scenario (categorical
	// relevance still attracts some clicks).
	CategoryCTR float64
	// Seed drives user sampling; fixed seed = reproducible experiment.
	Seed uint64
}

// DefaultConfig uses click probabilities in realistic e-commerce ranges.
// The category baseline is deliberately strong (CategoryCTR close to
// ScenarioCTR): users browsing a dress do click other dresses, which is
// what makes the paper's +5% a hard-won lift rather than a free one.
func DefaultConfig() Config {
	return Config{
		Users:       200_000,
		PanelSize:   8,
		BaseCTR:     0.04,
		ScenarioCTR: 0.13,
		CategoryCTR: 0.10,
		Seed:        1,
	}
}

func (c Config) validate() error {
	if c.Users <= 0 {
		return fmt.Errorf("abtest: Users must be positive, got %d", c.Users)
	}
	if c.PanelSize <= 0 {
		return fmt.Errorf("abtest: PanelSize must be positive, got %d", c.PanelSize)
	}
	for _, p := range []float64{c.BaseCTR, c.ScenarioCTR, c.CategoryCTR} {
		if p < 0 || p > 1 {
			return fmt.Errorf("abtest: click probabilities must be in [0,1]")
		}
	}
	return nil
}

// ArmResult is the outcome of one experiment arm.
type ArmResult struct {
	Name        string
	Impressions int64 // recommendations shown
	Clicks      int64
	// CTR is Clicks / Impressions.
	CTR float64
	// StdErr is the binomial standard error of CTR.
	StdErr float64
}

// Result is the outcome of an A/B run.
type Result struct {
	Control    ArmResult
	Experiment ArmResult
	// Lift is the relative CTR improvement: (exp − ctl) / ctl.
	Lift float64
	// ZScore is the two-proportion z statistic of the difference.
	ZScore float64
}

// Run simulates the A/B test. Each user samples a seed item (biased toward
// labeled items — users arrive with intent), adopts its scenario as their
// latent intent, is assigned 50/50 to an arm, sees one panel, and clicks
// each recommendation independently by relevance.
func Run(corpus *model.Corpus, control, experiment recommend.Recommender, cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if control == nil || experiment == nil {
		return nil, fmt.Errorf("abtest: nil recommender")
	}
	if len(corpus.Items) == 0 {
		return nil, fmt.Errorf("abtest: empty corpus")
	}
	// Seed pool: items with a ground-truth scenario (users with intent).
	var seeds []model.ItemID
	for i := range corpus.Items {
		if corpus.Items[i].Scenario != model.NoScenario {
			seeds = append(seeds, corpus.Items[i].ID)
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("abtest: corpus has no scenario-labeled items to seed users")
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0xAB))
	ctl := ArmResult{Name: control.Name()}
	exp := ArmResult{Name: experiment.Name()}
	for u := 0; u < cfg.Users; u++ {
		seed := seeds[rng.IntN(len(seeds))]
		intent := corpus.Items[seed].Scenario
		seedCat := corpus.Items[seed].Category

		arm := &ctl
		rec := control
		if u%2 == 1 {
			arm = &exp
			rec = experiment
		}
		panel := rec.Recommend(seed, cfg.PanelSize, rng)
		for _, it := range panel {
			arm.Impressions++
			p := cfg.BaseCTR
			switch {
			case corpus.Items[it].Scenario == intent:
				p = cfg.ScenarioCTR
			case corpus.Items[it].Category == seedCat:
				p = cfg.CategoryCTR
			}
			if rng.Float64() < p {
				arm.Clicks++
			}
		}
	}
	finish(&ctl)
	finish(&exp)
	res := &Result{Control: ctl, Experiment: exp}
	if ctl.CTR > 0 {
		res.Lift = (exp.CTR - ctl.CTR) / ctl.CTR
	}
	res.ZScore = twoProportionZ(ctl, exp)
	return res, nil
}

func finish(a *ArmResult) {
	if a.Impressions > 0 {
		a.CTR = float64(a.Clicks) / float64(a.Impressions)
		a.StdErr = math.Sqrt(a.CTR * (1 - a.CTR) / float64(a.Impressions))
	}
}

// twoProportionZ computes the pooled two-proportion z statistic.
func twoProportionZ(a, b ArmResult) float64 {
	n1, n2 := float64(a.Impressions), float64(b.Impressions)
	if n1 == 0 || n2 == 0 {
		return 0
	}
	p1, p2 := a.CTR, b.CTR
	pool := (float64(a.Clicks) + float64(b.Clicks)) / (n1 + n2)
	den := math.Sqrt(pool * (1 - pool) * (1/n1 + 1/n2))
	if den == 0 {
		return 0
	}
	return (p2 - p1) / den
}
