package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WritePrometheus writes every registered series in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE header per
// family, histograms expanded into cumulative _bucket series with le
// labels plus _sum and _count. Families appear in registration order,
// series within a family in registration order — stable output for
// tests and diffing. This is the read path; it allocates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range r.families {
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.typ + "\n")
		for _, s := range f.series {
			switch m := s.metric.(type) {
			case *Counter:
				writeSample(bw, f.name, s.labels, "", float64(m.Value()))
			case *Gauge:
				writeSample(bw, f.name, s.labels, "", float64(m.Value()))
			case *Histogram:
				snap := m.Snapshot()
				cum := uint64(0)
				for i, b := range snap.Bounds {
					cum += snap.Counts[i]
					writeSample(bw, f.name+"_bucket", s.labels,
						`le="`+formatFloat(b)+`"`, float64(cum))
				}
				writeSample(bw, f.name+"_bucket", s.labels, `le="+Inf"`, float64(snap.Count))
				writeSample(bw, f.name+"_sum", s.labels, "", snap.Sum)
				writeSample(bw, f.name+"_count", s.labels, "", float64(snap.Count))
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels,extra} value` line.
func writeSample(bw *bufio.Writer, name, labels, extra string, v float64) {
	bw.WriteString(name)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
