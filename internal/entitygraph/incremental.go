package entitygraph

// Incremental entity-graph rebuilds for the daily window slide.
//
// A one-day slide perturbs a small fraction of the click graph, so
// rebuilding the entity graph from scratch wastes almost all of its work.
// BuildWithState retains the full build's intermediates — candidate pairs
// with counts and scores, per-side TopK survival bits, the query→entity
// index, the frozen CSR — and BuildIncremental patches them:
//
//  1. dirty items → dirty entities; recompute only their query sets and
//     drop false positives (membership flagged but set unchanged),
//  2. the symmetric differences yield the changed queries; each changed
//     query's old and new entity lists produce signed candidate-pair
//     deltas (fanout-cap flips fall out naturally: a query whose list is
//     unchanged keeps its cap status),
//  3. a sort-merge walk folds the deltas into the retained pair arrays,
//     rescoring only pairs that were delta-touched or have a dirty
//     endpoint (everything else copies its score bit-for-bit — identical
//     integer inputs through the shared scorePair expression),
//  4. TopK is re-ranked only for nodes incident to an added, removed or
//     rescored pair, through the same rankNode as the full build,
//  5. the next frozen CSR is patched row-wise: untouched row spans are
//     copied wholesale from the previous CSR (including their cached
//     weighted-degree floats), only dirty rows are refilled, and the
//     canonical blocked weight total is recomputed over the kept edges in
//     (U,V) order — the exact summation shape of shard.FromEdges.
//
// Output is byte-identical to the from-scratch build; the determinism
// suite in internal/core locks this by gob-comparing whole taxonomies at
// every step of a multi-day slide. When the changed fraction of rows (or
// of entities) exceeds PatchDensityGate the patch degenerates, so the
// build falls back to the dense path — a full BuildWithState — which is
// trivially correct.

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sort"

	"shoal/internal/bipartite"
	"shoal/internal/model"
	"shoal/internal/shard"
	"shoal/internal/wgraph"
	"shoal/internal/word2vec"
)

// PatchDensityGate is the changed-fraction threshold above which an
// incremental rebuild abandons patching and re-runs the full build: when
// more than this fraction of entities (or of CSR rows) is dirty, the
// delta machinery costs more than it saves and the dense path is both
// faster and trivially correct.
const PatchDensityGate = 0.5

// IncState is the retained intermediate state of an entity-graph build,
// the input to BuildIncremental on the next window slide. It aliases the
// producing build's arrays (capture is free) and is immutable once
// returned: an incremental build emits a fresh IncState, sharing whatever
// it did not touch.
type IncState struct {
	cfg    Config
	n      int
	hasEmb bool
	// querySets[e] is entity e's sorted query set.
	querySets [][]model.QueryID
	// assoc is the sorted packed (query<<32 | entity) association list —
	// the query→entity index; a query's entities are one contiguous run.
	assoc []uint64
	// pairs/counts/sims are the candidate pairs (canonical, sorted by
	// packed key) with shared-query counts and blended similarities.
	pairs  [][2]int32
	counts []int32
	sims   []float64
	// topU/topV mark pairs ranking in the TopK of their U (resp. V)
	// endpoint; a pair is kept iff either bit is set.
	topU, topV []bool
	// means are the per-entity mean normalized word vectors (static:
	// they depend only on the corpus and the embedding model).
	means [][]float32
	graph *shard.CSR
}

// Delta summarizes what one incremental rebuild actually touched — the
// per-rebuild observability payload threaded into core.Build, /api/stats
// and the build trace.
type Delta struct {
	DirtyItems    int // items whose query-set membership changed
	DirtyEntities int // entities whose query set really changed
	ChangedPairs  int // candidate pairs added, removed or count-shifted
	ChangedEdges  int // kept edges added, removed or reweighted
	// DirtyRows are the CSR rows whose adjacency changed — the seed set
	// for warm-starting the clustering cascade. Sorted ascending.
	DirtyRows []int32
	// DenseFallback reports that the delta exceeded PatchDensityGate (or
	// the retained state was unusable) and a full rebuild ran instead.
	DenseFallback bool
}

// pairDelta is one signed candidate-pair count adjustment.
type pairDelta struct {
	key uint64 // packed canonical pair, U<<32 | V
	d   int32
}

// BuildIncremental patches the previous build's retained state by the
// dirty-item delta of a window slide, returning a Result byte-identical
// to a from-scratch Build over the same click graph. st may come from
// BuildWithState or a previous BuildIncremental. If st is unusable
// (nil, sized for a different entity set, built under different graph
// semantics or embedding presence) or the delta is too dense, the full
// build runs instead and Delta.DenseFallback reports it.
func BuildIncremental(ctx context.Context, es *EntitySet, clicks *bipartite.Graph, emb *word2vec.Model, cfg Config, st *IncState, dirtyItems []model.ItemID) (*Result, *IncState, *Delta, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, nil, err
	}
	d := &Delta{DirtyItems: len(dirtyItems)}
	full := func() (*Result, *IncState, *Delta, error) {
		res, nst, err := BuildWithState(ctx, es, clicks, emb, cfg)
		d.DenseFallback = true
		d.DirtyRows = nil
		return res, nst, d, err
	}
	if es == nil || st == nil || st.n != len(es.Entities) || st.hasEmb != (emb != nil) ||
		!sameGraphSemantics(st.cfg, cfg) {
		return full()
	}
	n := st.n

	// Dirty items → dirty entities.
	entDirty := make([]bool, n)
	var dirtyEnts []int32
	for _, it := range dirtyItems {
		if it < 0 || int(it) >= len(es.ItemEntity) {
			continue // item outside the entity set (e.g. unknown id)
		}
		e := int32(es.ItemEntity[it])
		if !entDirty[e] {
			entDirty[e] = true
			dirtyEnts = append(dirtyEnts, e)
		}
	}
	slices.Sort(dirtyEnts)
	if float64(len(dirtyEnts)) > PatchDensityGate*float64(n) {
		return full()
	}

	// Recompute dirty entities' query sets (the exact flat-sort-dedup of
	// the full build) and drop false positives: an item-level membership
	// change that another member item masks leaves the entity set equal.
	newQS := make(map[int32][]model.QueryID, len(dirtyEnts))
	realDirty := make([]int32, 0, len(dirtyEnts))
	var qbuf []model.QueryID
	for _, e := range dirtyEnts {
		qbuf = qbuf[:0]
		for _, it := range es.Entities[e].Items {
			qbuf = append(qbuf, clicks.QuerySet(it)...)
		}
		slices.Sort(qbuf)
		qs := make([]model.QueryID, 0, len(qbuf))
		for i, q := range qbuf {
			if i == 0 || q != qbuf[i-1] {
				qs = append(qs, q)
			}
		}
		if slices.Equal(qs, st.querySets[e]) {
			entDirty[e] = false
			continue
		}
		newQS[e] = qs
		realDirty = append(realDirty, e)
	}
	d.DirtyEntities = len(realDirty)
	if len(realDirty) == 0 {
		// Nothing really moved: the previous build is the current build.
		return &Result{Set: es, Graph: st.graph, QuerySets: st.querySets}, st, d, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Changed queries: per-query join/leave lists from the symmetric
	// differences, plus the packed association removals/additions for the
	// new query→entity index. realDirty ascends, so per-query lists do too.
	type qdelta struct{ leaves, joins []int32 }
	qd := make(map[model.QueryID]*qdelta)
	get := func(q model.QueryID) *qdelta {
		dq := qd[q]
		if dq == nil {
			dq = &qdelta{}
			qd[q] = dq
		}
		return dq
	}
	var assocRem, assocAdd []uint64
	for _, e := range realDirty {
		old, nw := st.querySets[e], newQS[e]
		i, j := 0, 0
		for i < len(old) || j < len(nw) {
			switch {
			case j >= len(nw) || (i < len(old) && old[i] < nw[j]):
				get(old[i]).leaves = append(get(old[i]).leaves, e)
				assocRem = append(assocRem, packAssoc(old[i], e))
				i++
			case i >= len(old) || nw[j] < old[i]:
				get(nw[j]).joins = append(get(nw[j]).joins, e)
				assocAdd = append(assocAdd, packAssoc(nw[j], e))
				j++
			default:
				i++
				j++
			}
		}
	}

	// Signed candidate-pair deltas: each changed query retracts its old
	// C(k,2) contribution and contributes its new one, each side subject
	// to the same fanout cap as the full build. Queries not in qd have
	// identical entity lists, hence identical contributions — including
	// their cap status.
	var pdCap int
	for q, dq := range qd {
		k := len(assocEntities(st.assoc, q))
		pdCap += k*(k-1)/2 + (k+len(dq.joins))*(k+len(dq.joins)-1)/2
	}
	pd := make([]pairDelta, 0, pdCap)
	for q, dq := range qd {
		old := assocEntities(st.assoc, q)
		nw := applyQDelta(old, dq.leaves, dq.joins)
		if !(cfg.MaxQueryFanout > 0 && len(old) > cfg.MaxQueryFanout) {
			pd = emitPairs(pd, old, -1)
		}
		if !(cfg.MaxQueryFanout > 0 && len(nw) > cfg.MaxQueryFanout) {
			pd = emitPairs(pd, nw, +1)
		}
	}
	// Order of equal keys is irrelevant (the run-length sum below is
	// commutative), so any unstable key sort yields the same pd.
	slices.SortFunc(pd, func(a, b pairDelta) int { return cmp.Compare(a.key, b.key) })
	// Run-length sum equal keys, dropping zero nets.
	w := 0
	for i := 0; i < len(pd); {
		k, s := pd[i].key, int32(0)
		for ; i < len(pd) && pd[i].key == k; i++ {
			s += pd[i].d
		}
		if s != 0 {
			pd[w] = pairDelta{key: k, d: s}
			w++
		}
	}
	pd = pd[:w]
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Updated query sets (copy-on-write: the previous build's Result still
	// aliases the old slice).
	qsNew := make([][]model.QueryID, n)
	copy(qsNew, st.querySets)
	for e, qs := range newQS {
		qsNew[e] = qs
	}

	// Sort-merge the deltas into the retained pair arrays. Pairs that are
	// delta-touched or have a dirty endpoint are rescored below; all
	// others copy their score verbatim (same integer inputs through the
	// same expression ⇒ same bits, so copying is exact and cheaper).
	P := len(st.pairs)
	newPairs := make([][2]int32, P+len(pd))
	newCounts := make([]int32, P+len(pd))
	newSims := make([]float64, P+len(pd))
	nTopU := make([]bool, P+len(pd))
	nTopV := make([]bool, P+len(pd))
	oldIdx := make([]int32, P+len(pd))
	touched := make([]bool, P+len(pd))
	rankDirtyB := make([]bool, n)
	csrDirtyB := make([]bool, n)
	markRank := func(u, v int32) {
		rankDirtyB[u] = true
		rankDirtyB[v] = true
	}
	pairKey := func(p [2]int32) uint64 {
		return uint64(uint32(p[0]))<<32 | uint64(uint32(p[1]))
	}
	di, w := 0, 0
	for i := 0; ; {
		var key uint64
		if i < P {
			key = pairKey(st.pairs[i])
		}
		for di < len(pd) && (i == P || pd[di].key < key) {
			// Brand-new candidate pair.
			u, v := int32(pd[di].key>>32), int32(pd[di].key&0xffffffff)
			if pd[di].d < 0 {
				return nil, nil, nil, fmt.Errorf("entitygraph: incremental delta removes unknown pair (%d,%d)", u, v)
			}
			d.ChangedPairs++
			newPairs[w] = [2]int32{u, v}
			newCounts[w] = pd[di].d
			oldIdx[w] = -1
			touched[w] = true
			w++
			markRank(u, v)
			di++
		}
		if i == P {
			break
		}
		if di < len(pd) && pd[di].key == key {
			u, v := st.pairs[i][0], st.pairs[i][1]
			c := st.counts[i] + pd[di].d
			di++
			if c < 0 {
				return nil, nil, nil, fmt.Errorf("entitygraph: incremental pair (%d,%d) count underflow", u, v)
			}
			d.ChangedPairs++
			if c == 0 {
				// Pair vanished. Its endpoints re-rank; if it was a kept
				// edge, both CSR rows change too.
				markRank(u, v)
				if st.topU[i] || st.topV[i] {
					d.ChangedEdges++
					csrDirtyB[u] = true
					csrDirtyB[v] = true
				}
				i++
				continue
			}
			newPairs[w] = st.pairs[i]
			newCounts[w] = c
			nTopU[w] = st.topU[i]
			nTopV[w] = st.topV[i]
			oldIdx[w] = int32(i)
			touched[w] = true
			w++
			i++
			continue
		}
		// Maximal delta-free run: every pair up to the next delta key
		// copies verbatim, so the five retained arrays move as block
		// copies and only oldIdx/touched fill per element.
		j := P
		if di < len(pd) {
			nk := pd[di].key
			for j = i + 1; j < P && pairKey(st.pairs[j]) < nk; j++ {
			}
		}
		copy(newPairs[w:], st.pairs[i:j])
		copy(newCounts[w:], st.counts[i:j])
		copy(newSims[w:], st.sims[i:j])
		copy(nTopU[w:], st.topU[i:j])
		copy(nTopV[w:], st.topV[i:j])
		for k := i; k < j; k++ {
			oldIdx[w] = int32(k)
			touched[w] = entDirty[st.pairs[k][0]] || entDirty[st.pairs[k][1]]
			w++
		}
		i = j
	}
	newPairs = newPairs[:w]
	newCounts = newCounts[:w]
	newSims = newSims[:w]
	nTopU = nTopU[:w]
	nTopV = nTopV[:w]
	oldIdx = oldIdx[:w]
	touched = touched[:w]

	// Rescore the touched pairs; a score that actually moved re-ranks
	// both endpoints (this also catches MinSimilarity boundary crossings:
	// an unchanged score cannot change filter status).
	for i := range newPairs {
		if !touched[i] {
			continue
		}
		u, v := newPairs[i][0], newPairs[i][1]
		s := scorePair(qsNew, st.means, st.hasEmb, cfg.Alpha, u, v, newCounts[i])
		newSims[i] = s
		if oi := oldIdx[i]; oi < 0 || s != st.sims[oi] {
			markRank(u, v)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Re-rank only the dirty nodes, through the full build's rankNode.
	// Incidence lists are collected unfiltered so stale side bits of
	// pairs that dropped below MinSimilarity get cleared too.
	var rankDirty []int32
	for u := int32(0); int(u) < n; u++ {
		if rankDirtyB[u] {
			rankDirty = append(rankDirty, u)
		}
	}
	if len(rankDirty) > 0 {
		incAll := make([][]int32, n)
		for i := range newPairs {
			u, v := newPairs[i][0], newPairs[i][1]
			if rankDirtyB[u] {
				incAll[u] = append(incAll[u], int32(i))
			}
			if rankDirtyB[v] {
				incAll[v] = append(incAll[v], int32(i))
			}
		}
		var lst []scored
		for _, u := range rankDirty {
			lst = lst[:0]
			for _, pi := range incAll[u] {
				if newPairs[pi][0] == u {
					nTopU[pi] = false
				} else {
					nTopV[pi] = false
				}
				if newSims[pi] < cfg.MinSimilarity {
					continue
				}
				other := newPairs[pi][0]
				if other == u {
					other = newPairs[pi][1]
				}
				lst = append(lst, scored{other: other, sim: newSims[pi], idx: int(pi)})
			}
			rankNode(lst, u, newPairs, nTopU, nTopV, cfg.TopK)
		}
	}

	// Kept-edge changes → dirty CSR rows; the same pass counts the next
	// CSR's row degrees so patchCSR never re-derives keep status.
	deg := make([]int32, n)
	for i := range newPairs {
		oi := oldIdx[i]
		oldKept := oi >= 0 && (st.topU[oi] || st.topV[oi])
		kn := nTopU[i] || nTopV[i]
		if kn {
			deg[newPairs[i][0]]++
			deg[newPairs[i][1]]++
		}
		if kn != oldKept || (kn && newSims[i] != st.sims[oi]) {
			d.ChangedEdges++
			csrDirtyB[newPairs[i][0]] = true
			csrDirtyB[newPairs[i][1]] = true
		}
	}
	var dirtyRows []int32
	for u := int32(0); int(u) < n; u++ {
		if csrDirtyB[u] {
			dirtyRows = append(dirtyRows, u)
		}
	}
	d.DirtyRows = dirtyRows
	if float64(len(dirtyRows)) > PatchDensityGate*float64(n) {
		return full()
	}

	// Updated association index (single merge: old minus removals, plus
	// additions, all three sorted).
	slices.Sort(assocRem)
	slices.Sort(assocAdd)
	newAssoc := mergeAssoc(st.assoc, assocRem, assocAdd)

	g := st.graph
	if len(dirtyRows) > 0 {
		var err error
		g, err = patchCSR(st.graph, n, newPairs, newSims, nTopU, nTopV, csrDirtyB, deg, cfg.Shards)
		if err != nil {
			return nil, nil, nil, err
		}
	}

	nst := &IncState{
		cfg:       st.cfg,
		n:         n,
		hasEmb:    st.hasEmb,
		querySets: qsNew,
		assoc:     newAssoc,
		pairs:     newPairs,
		counts:    newCounts,
		sims:      newSims,
		topU:      nTopU,
		topV:      nTopV,
		means:     st.means,
		graph:     g,
	}
	return &Result{Set: es, Graph: g, QuerySets: qsNew}, nst, d, nil
}

// patchCSR materializes the next frozen sharded CSR from the kept pairs,
// copying untouched row spans (adjacency, weights and the cached
// weighted-degree floats) wholesale from the previous CSR and refilling
// only dirty rows. The kept pairs arrive in canonical (U,V) order, so one
// ordered pass yields ascending neighbor lists, the canonical per-row
// weighted-degree fold order (a row's V-side addends precede its U-side
// addends) and the canonical blocked total-weight summation — every float
// byte-identical to shard.FromEdges over the same kept edges.
func patchCSR(prevG *shard.CSR, n int, pairs [][2]int32, sims []float64, topU, topV []bool, dirty []bool, deg []int32, shards int) (*shard.CSR, error) {
	prev := prevG.BaseCSR()
	pOff, pNbrs, pWts := prev.Adj()

	offsets := make([]int32, n+1)
	var off int32
	for u := 0; u < n; u++ {
		offsets[u] = off
		off += deg[u]
		if !dirty[u] && deg[u] != pOff[u+1]-pOff[u] {
			return nil, fmt.Errorf("entitygraph: clean row %d changed degree %d -> %d", u, pOff[u+1]-pOff[u], deg[u])
		}
	}
	offsets[n] = off

	nbrs := make([]int32, off)
	wts := make([]float64, off)
	wdeg := make([]float64, n)
	// Untouched row runs: one span copy per maximal clean run (the spans
	// are contiguous in both layouts and clean degrees are unchanged).
	for u := 0; u < n; {
		if dirty[u] {
			u++
			continue
		}
		v := u
		for v < n && !dirty[v] {
			v++
		}
		copy(nbrs[offsets[u]:offsets[v]], pNbrs[pOff[u]:pOff[v]])
		copy(wts[offsets[u]:offsets[v]], pWts[pOff[u]:pOff[v]])
		for r := u; r < v; r++ {
			wdeg[r] = prev.WeightedDegree(int32(r))
		}
		u = v
	}
	// Dirty-row fill and the canonical blocked weight total over all kept
	// edges (block boundaries shift with any edge insertion, so the total
	// is never incremental — but it is one streaming add per kept edge).
	cursor := deg // repurpose: fill cursor per dirty row
	for u := 0; u < n; u++ {
		cursor[u] = offsets[u]
	}
	var sums []float64
	partial, bcnt := 0.0, 0
	for i := range pairs {
		if !topU[i] && !topV[i] {
			continue
		}
		u, v := pairs[i][0], pairs[i][1]
		w := sims[i]
		partial += w
		if bcnt++; bcnt == wgraph.WeightSumBlockSize {
			sums = append(sums, partial)
			partial, bcnt = 0, 0
		}
		if dirty[u] {
			p := cursor[u]
			nbrs[p] = v
			wts[p] = w
			cursor[u] = p + 1
			wdeg[u] += w
		}
		if dirty[v] {
			p := cursor[v]
			nbrs[p] = u
			wts[p] = w
			cursor[v] = p + 1
			wdeg[v] += w
		}
	}
	total := wgraph.FoldWeightBlocks(sums)
	if bcnt > 0 {
		total += partial
	}
	return shard.CSRFromParts(offsets, nbrs, wts, wdeg, total, shards)
}

// sameGraphSemantics reports whether two configs produce the same graph
// (Workers is execution-only and deliberately excluded).
func sameGraphSemantics(a, b Config) bool {
	return a.Alpha == b.Alpha && a.MinSimilarity == b.MinSimilarity &&
		a.TopK == b.TopK && a.MaxQueryFanout == b.MaxQueryFanout &&
		a.Shards == b.Shards
}

func packAssoc(q model.QueryID, e int32) uint64 {
	return uint64(uint32(q))<<32 | uint64(uint32(e))
}

// assocEntities returns the ascending entity run of query q in the packed
// association index.
func assocEntities(assoc []uint64, q model.QueryID) []int32 {
	lo := sort.Search(len(assoc), func(i int) bool { return assoc[i] >= uint64(uint32(q))<<32 })
	hi := sort.Search(len(assoc), func(i int) bool { return assoc[i] >= (uint64(uint32(q))+1)<<32 })
	out := make([]int32, 0, hi-lo)
	for _, a := range assoc[lo:hi] {
		out = append(out, int32(a&0xffffffff))
	}
	return out
}

// applyQDelta returns old minus leaves plus joins, all ascending.
func applyQDelta(old, leaves, joins []int32) []int32 {
	out := make([]int32, 0, len(old)+len(joins))
	li, ji := 0, 0
	for _, e := range old {
		for ji < len(joins) && joins[ji] < e {
			out = append(out, joins[ji])
			ji++
		}
		if li < len(leaves) && leaves[li] == e {
			li++
			continue
		}
		out = append(out, e)
	}
	out = append(out, joins[ji:]...)
	return out
}

// emitPairs appends every C(len(ents),2) canonical pair of the ascending
// entity list with the given sign.
func emitPairs(pd []pairDelta, ents []int32, sign int32) []pairDelta {
	for i := 0; i < len(ents); i++ {
		for j := i + 1; j < len(ents); j++ {
			key := uint64(uint32(ents[i]))<<32 | uint64(uint32(ents[j]))
			pd = append(pd, pairDelta{key: key, d: sign})
		}
	}
	return pd
}

// mergeAssoc returns old minus rem plus add (all sorted ascending; rem is
// a subset of old, add is disjoint from old\rem).
func mergeAssoc(old, rem, add []uint64) []uint64 {
	out := make([]uint64, 0, len(old)-len(rem)+len(add))
	ri, ai := 0, 0
	for _, x := range old {
		for ai < len(add) && add[ai] < x {
			out = append(out, add[ai])
			ai++
		}
		if ri < len(rem) && rem[ri] == x {
			ri++
			continue
		}
		out = append(out, x)
	}
	out = append(out, add[ai:]...)
	return out
}
