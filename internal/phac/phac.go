// Package phac implements Parallel Hierarchical Agglomerative Clustering,
// the core contribution of the paper (§2.2).
//
// Classic HAC merges one globally-best pair per iteration, which neither
// tolerates sparse similarity matrices (Challenge 1) nor scales (Challenge
// 2). Parallel HAC rounds do three things instead:
//
//  1. Diffusion — every node starts knowing its best incident edge; for r
//     iterations nodes exchange the best edge they know with their
//     neighbors and keep the maximum. Edges are totally ordered by
//     (similarity desc, canonical id asc) so ties are deterministic.
//  2. Selection — an edge is *locally maximal* if, after diffusion, both
//     of its endpoints still consider it the best edge they have heard
//     of. Locally maximal edges form a node-disjoint matching: they can
//     all be merged in parallel. Smaller r ⇒ more selected edges ⇒ more
//     parallelism (the paper fixes r = 2).
//  3. Merge + update — each selected pair becomes a new cluster; the
//     neighborhood similarities are recomputed with the √-normalized rule
//     of Eq. 4, treating missing edges as 0. When both endpoints of an old
//     edge merged in the same round the two Eq. 4 applications compose
//     multiplicatively.
//
// Rounds repeat until no edge reaches the stop threshold. The globally
// maximal edge is always locally maximal, so progress is guaranteed.
//
// The clustering state is held in compressed-sparse-row form with
// explicit per-row degrees (a row's span is offsets[u] ..
// offsets[u]+deg[u]): each merge round sort-merges the coalesced edge
// contributions and patches them into the CSR in place — dirty
// surviving rows compact within their own spans (a merge only ever
// shrinks a row), minted rows append at the tail, dead rows keep their
// storage at degree zero — so a round costs O(touched adjacency), not
// O(alive edges), and the diffusion inner loop never allocates and
// never chases map buckets.
//
// # Warm-start invariants
//
// ClusterWarm seeds a build from the previous build's Memo and replays
// its merge trajectory for as long as the replay is provably safe. The
// proof has two independent layers. Selection is never assumed: every
// round diffuses and matches over the live graph, and a round is
// replayed only when its live matching equals the memoized one edge for
// edge — minted cluster ids are positional, so any difference would
// shift every later id, and the build instead continues with cold
// merges from that round on. What taint propagation proves is the
// cheaper claim that makes replay worthwhile: starting from the
// dirty-row set (symmetric, since the CSR stores both directions of a
// changed edge), each round's taint closure — surviving tainted rows
// plus minted rows with a tainted member — bounds exactly the rows
// whose CSR content can differ from the memoized build's, so every row
// outside it is span-copied from the memo and only tainted rows are
// recomputed entry by entry, in the cold path's contribution order, for
// byte-identical floats. The fallback triggers per round: a selection
// mismatch or a trajectory that ran out ends replay permanently, and a
// taint closure past half the alive rows (replayTaintGate) refuses the
// round — at round 0 that degrades to the round-0-only warm seed. A
// linkage or leaf-size change disables replay entirely (the trajectory
// depends on both; the diffusion seed does not).
package phac

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"

	"shoal/internal/bsp"
	"shoal/internal/dendrogram"
	"shoal/internal/obs"
	"shoal/internal/wgraph"
)

// Linkage selects the similarity-update rule applied on merge. The paper
// uses SqrtSize (Eq. 4); the alternatives exist for the E8 ablation.
type Linkage int

const (
	// LinkageSqrtSize is Eq. 4: weights √nA/(√nA+√nB) and √nB/(√nA+√nB).
	LinkageSqrtSize Linkage = iota
	// LinkageUnweighted averages with weights 1/2 regardless of size.
	LinkageUnweighted
	// LinkageSizeProportional weights by nA/(nA+nB) (UPGMA-style).
	LinkageSizeProportional
)

func (l Linkage) String() string {
	switch l {
	case LinkageSqrtSize:
		return "sqrt-size"
	case LinkageUnweighted:
		return "unweighted"
	case LinkageSizeProportional:
		return "size-proportional"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// weights returns the (wA, wB) merge weights for sizes nA, nB.
func (l Linkage) weights(nA, nB float64) (float64, float64) {
	switch l {
	case LinkageUnweighted:
		return 0.5, 0.5
	case LinkageSizeProportional:
		den := nA + nB
		return nA / den, nB / den
	default:
		sa, sb := math.Sqrt(nA), math.Sqrt(nB)
		den := sa + sb
		return sa / den, sb / den
	}
}

// Config controls Parallel HAC.
type Config struct {
	// StopThreshold ends clustering when no edge reaches it.
	StopThreshold float64
	// DiffusionRounds is r, the number of max-exchange iterations per
	// round. The paper sets 2.
	DiffusionRounds int
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
	// Shards is the partition-parallel width: the diffusion scans split
	// the alive rows into this many edge-balanced ranges, and the
	// per-round contracted-CSR rebuild counts and fills that many row
	// ranges concurrently. 0 means Workers. Results are byte-identical
	// for every shard count.
	Shards int
	// FrontierDensity tunes frontier-pruned diffusion: an exchange
	// iteration recomputes only nodes with a changed neighbor when the
	// previous iteration changed at most this fraction of the scanned
	// nodes, and falls back to the dense scan above it (the first
	// iteration is always dense). 0 means the default (0.25); a negative
	// value disables pruning entirely. Results are byte-identical for
	// every setting — pruning skips only provably unchanged recomputes.
	FrontierDensity float64
	// MaxRounds caps clustering rounds; 0 means unlimited.
	MaxRounds int
	// Linkage is the merge update rule; zero value is the paper's Eq. 4.
	Linkage Linkage
	// UseBSP routes every round's diffusion+selection through the
	// shard-native BSP engine (internal/bsp) instead of the shared-memory
	// scans — the execution model the paper deploys on ODPS. The
	// clustering result is byte-identical either way (locked by
	// TestClusterBSPMatches); Result.BSP carries the aggregated engine
	// profile.
	UseBSP bool
	// BSPChaos, when non-nil with UseBSP, injects the engine's failure
	// modes (shuffled delivery, stalled batches) into every clustering
	// round — exercising the rebind path under chaos. The dendrogram must
	// stay byte-identical (locked by TestClusterBSPMatches).
	BSPChaos *bsp.Chaos
}

// DefaultConfig mirrors the paper: r=2, threshold 0.35.
func DefaultConfig() Config {
	return Config{StopThreshold: 0.35, DiffusionRounds: 2}
}

func (c *Config) validate() error {
	if c.StopThreshold < 0 || c.StopThreshold > 1 {
		return fmt.Errorf("phac: StopThreshold must be in [0,1], got %f", c.StopThreshold)
	}
	if c.DiffusionRounds < 0 {
		return fmt.Errorf("phac: DiffusionRounds must be non-negative, got %d", c.DiffusionRounds)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Shards <= 0 {
		c.Shards = c.Workers
	}
	if c.FrontierDensity == 0 {
		c.FrontierDensity = DefaultFrontierDensity
	}
	if c.Linkage < LinkageSqrtSize || c.Linkage > LinkageSizeProportional {
		return fmt.Errorf("phac: unknown linkage %d", c.Linkage)
	}
	return nil
}

// RoundStat profiles one Parallel HAC round — the data behind experiment
// E5 (diffusion iterations vs. parallelism).
type RoundStat struct {
	Round int
	// ActiveClusters is the number of alive clusters entering the round.
	ActiveClusters int
	// ActiveEdges is the number of edges >= StopThreshold entering it.
	ActiveEdges int
	// Selected is the number of locally-maximal edges merged.
	Selected int
	// BestSim is the global maximum similarity entering the round.
	BestSim float64
}

// Result is the output of Parallel HAC.
type Result struct {
	Dendrogram *dendrogram.Dendrogram
	Rounds     []RoundStat
	// BSP is the aggregated engine profile across every clustering
	// round's diffusion when Config.UseBSP is set; nil otherwise.
	BSP *bsp.Stats
	// ReplayedRounds and ReplayedMerges count the merge rounds (and the
	// merges within them) a warm build replayed from the previous
	// build's trajectory instead of recomputing (see replay.go); both
	// are zero on a cold build.
	ReplayedRounds int
	ReplayedMerges int
}

// edgeRef is a totally ordered reference to an edge: better means higher
// similarity, ties broken by smaller canonical (u,v). The endpoints are
// packed into one uint64 key (u<<32 | v, canonical u < v) so the ref is
// 16 bytes — the diffusion exchange loop streams these, and the packing
// makes the tie-break a single integer compare with the same order as
// (u asc, v asc).
type edgeRef struct {
	sim float64
	key uint64 // canonical u<<32 | v
}

// mkEdgeRef builds the canonical ref for the edge (u,v).
func mkEdgeRef(u, v int32, sim float64) edgeRef {
	if v < u {
		u, v = v, u
	}
	return edgeRef{sim: sim, key: uint64(uint32(u))<<32 | uint64(uint32(v))}
}

// U and V unpack the canonical endpoints.
func (e edgeRef) U() int32 { return int32(e.key >> 32) }
func (e edgeRef) V() int32 { return int32(uint32(e.key)) }

var noEdge = edgeRef{sim: math.Inf(-1), key: ^uint64(0)}

// better reports whether a beats b in the diffusion total order.
func better(a, b edgeRef) bool {
	if a.sim != b.sim {
		return a.sim > b.sim
	}
	return a.key < b.key
}

// Cluster runs Parallel HAC over g with initial cluster sizes (nil means
// all 1); g is read once (frozen to CSR if mutable) and never modified.
// Leaf ids in the dendrogram are graph node ids.
// The result is deterministic and independent of cfg.Workers, and
// identical for a mutable graph and its frozen CSR.
// Cancellation is checked between clustering rounds.
func Cluster(ctx context.Context, g wgraph.View, sizes []int, cfg Config) (*Result, error) {
	res, _, err := cluster(ctx, g, sizes, cfg, nil, nil, false)
	return res, err
}

// cluster is the shared driver behind Cluster and ClusterWarm: a
// compatible prev Memo seeds round 0's diffusion (dirtyRows naming the
// rows whose adjacency changed since the build that captured it), and
// capture snapshots a new Memo right after round 0's diffusion for the
// next build.
func cluster(ctx context.Context, g wgraph.View, sizes []int, cfg Config, prev *Memo, dirtyRows []int32, capture bool) (*Result, *Memo, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, nil, fmt.Errorf("phac: empty graph")
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if sizes != nil && len(sizes) != n {
		return nil, nil, fmt.Errorf("phac: sizes length %d != nodes %d", len(sizes), n)
	}

	st := newState(wgraph.AsCSR(g), sizes, cfg)
	defer st.release()
	// replaying tracks whether the previous build's merge trajectory is
	// still eligible for round-by-round replay; taint is the current
	// round's sorted dirty-row closure (see replay.go), with taintSpare
	// as the double buffer the next closure is built into.
	replaying := false
	var taint, taintSpare []int32
	if prev.Compatible(n, cfg) {
		for _, u := range dirtyRows {
			if u < 0 || int(u) >= n {
				return nil, nil, fmt.Errorf("phac: dirty row %d out of range [0,%d)", u, n)
			}
		}
		st.seedFromMemo(prev, dirtyRows, cfg.UseBSP)
		if prev.replayable(st, cfg) {
			taint = append([]int32(nil), dirtyRows...)
			slices.Sort(taint)
			taint = slices.Compact(taint)
			replaying = true
		}
	}
	var memo *Memo
	res := &Result{Dendrogram: &dendrogram.Dendrogram{Leaves: n}}
	if cfg.UseBSP {
		res.BSP = &bsp.Stats{}
	}

	// One child span per merge round when the caller's context carries a
	// build-trace span; psp == nil composes through the nil-safe span
	// methods, so the untraced path runs untouched.
	psp := obs.SpanFromContext(ctx)
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if cfg.MaxRounds > 0 && round >= cfg.MaxRounds {
			break
		}
		var rsp *obs.Span
		if psp != nil {
			rsp = psp.Child("round-" + strconv.Itoa(round))
		}
		var selected []edgeRef
		var activeEdges int
		var bestSim float64
		if cfg.UseBSP {
			var err error
			selected, activeEdges, bestSim, err = st.selectLocalMaximaBSP(cfg.DiffusionRounds, cfg.StopThreshold, res.BSP, rsp)
			if err != nil {
				rsp.End()
				return nil, nil, err
			}
		} else {
			selected, activeEdges, bestSim = st.selectLocalMaxima(cfg.DiffusionRounds, cfg.Workers, cfg.StopThreshold)
		}
		if capture {
			if round == 0 {
				// Round 0's diffusion just ran over the original graph;
				// the merge below would overwrite levels and mint ids,
				// so this is the one point the cross-build snapshot can
				// be taken.
				memo = st.captureMemo(cfg)
			} else if round-1 < replayCaptureDepth {
				// The diffusion that just ran covers the previous
				// round's contracted CSR: snapshot it into that round's
				// trajectory entry so a future warm build can replay
				// the merge and seed this round's diffusion from it.
				memo.traj[round-1].captureLevels(st)
			}
		}
		stat := RoundStat{
			Round: round, ActiveClusters: st.aliveCount,
			ActiveEdges: activeEdges, BestSim: bestSim, Selected: len(selected),
		}
		rsp.SetAttr("aliveRows", stat.ActiveClusters)
		rsp.SetAttr("activeEdges", stat.ActiveEdges)
		rsp.SetAttr("selected", stat.Selected)
		rsp.SetAttr("bestSim", stat.BestSim)
		if activeEdges == 0 || bestSim < cfg.StopThreshold {
			rsp.End()
			break
		}
		res.Rounds = append(res.Rounds, stat)
		if len(selected) == 0 {
			rsp.End()
			// Cannot happen while an edge >= threshold exists (the
			// global max is always mutual), but guard against it so a
			// bug cannot loop forever.
			return nil, nil, fmt.Errorf("phac: round %d selected no edges with best sim %f", round, bestSim)
		}

		// Replay the memoized merge when the trajectory is still valid:
		// the live selection (recomputed above from the live graph)
		// must equal the memoized one, and the taint closure must stay
		// under the density gate. Any refusal permanently drops back to
		// cold merges — minted ids diverge from the memo from here on.
		replayed := false
		if replaying {
			if round < len(prev.traj) {
				if nt, ok := st.replayRound(selected, round, cfg, res.Dendrogram, &prev.traj[round], taint, taintSpare); ok {
					replayed = true
					taintSpare = taint[:0]
					taint = nt
					res.ReplayedRounds++
					res.ReplayedMerges += len(selected)
				}
			}
			if !replayed {
				replaying = false
			}
		}
		if !replayed {
			st.mergeSelected(selected, round, cfg, res.Dendrogram)
		}
		if capture && round < replayCaptureDepth {
			memo.traj = append(memo.traj, snapRound(st, selected))
		}
		rsp.SetAttr("replayed", replayed)
		// The merge just stamped next round's dirty worklist — the frontier
		// the memoized diffusion will start from.
		rsp.SetAttr("frontierSize", len(st.dirtyList))
		rsp.End()
	}
	return res, memo, nil
}

// state is the mutable clustering state. Cluster ids grow past n as merges
// mint new ids; alive marks current clusters. The current graph is a
// degree-explicit CSR over all minted ids: row u's live span is
// offsets[u] .. offsets[u]+deg[u], with offsets[total] the tail
// high-water mark. Spans never move once laid out — merges shrink
// surviving rows in place (deg drops, the slack stays as dead storage),
// zero dead rows' degrees, and append minted rows' spans at the tail —
// so no per-node maps and no per-round rebuild exist anywhere on the
// clustering path.
type state struct {
	total   int       // minted ids; CSR rows
	offsets []int32   // row span starts: len total+1, [total] = tail
	nbrs    []int32   // neighbor ids, ascending within each row
	wts     []float64 // parallel weights
	deg     []int32   // id -> live row length (0 for dead rows)
	// ownsCur is false while the current CSR aliases the caller's frozen
	// graph (round 0); those arrays are never written — ensureOwned
	// copies them on the first merge.
	ownsCur    bool
	size       []float64
	alive      []bool
	aliveCount int
	workers    int
	shards     int     // partition-parallel width (cfg.Shards)
	density    float64 // frontier density threshold (cfg.FrontierDensity)
	// exStates memoizes the full diffusion cascade across merge rounds:
	// exStates[0] holds every node's init state (best incident edge) and
	// exStates[it+1] the state after exchange iteration it. Between
	// rounds only rows whose adjacency the last merge touched (dirty)
	// and the neighborhoods of cross-round-changed values can differ, so
	// each phase recomputes just that frontier and reuses every other
	// entry as-is — the sparse-activation structure of late clustering
	// rounds, byte-identical to the dense recomputation. Each phase both
	// consumes and produces an explicit worklist (dirtyList in, chList
	// through, afList between scatter and recompute), so finding the
	// frontier costs O(frontier), not an O(alive) stamp scan per phase.
	exStates  [][]edgeRef
	haveCache bool // exStates/edgeCnt/bests hold the previous round
	// forceDense makes the next BSP selection scan every alive row once,
	// then clears itself: a cross-build warm start (seedFromMemo) seeds
	// valid levels but no changed-rows contract — the previous build's
	// selected pairs are alive again with unchanged finals, which the
	// sparse chRows walk would never visit.
	forceDense bool
	afMark     []uint32 // id -> epoch it was marked for recomputation
	epoch      uint32   // phase counter (never reset)
	changed    int64    // parallel-phase change counter (atomic; lives on
	// the state so closures capturing it never force a per-iteration
	// heap allocation on the serial zero-alloc path)
	nodes []int32 // aliveList scratch: the ascending alive ids when
	// nodesValid (maintained incrementally by the per-round retire
	// passes), arbitrary otherwise
	nodesValid bool
	edgeCnt    []int64   // id -> round-stat edge count (owned at min id)
	bests      []edgeRef // id -> best incident edge regardless of threshold
	selected   []edgeRef // selection output, reused per round
	mergeTo    []int32   // id -> new id this round, -1 otherwise
	coef       []float64 // id -> Eq. 4 coefficient this round
	// dirty stamps ids whose adjacency the current merge round changed:
	// dirty[id] == dirtyEpoch means dirty. Marks are written inside the
	// contribution-generation pass (which already walks every merged
	// member's adjacency), so no separate marking scan exists; the epoch
	// bump replaces the per-round clear.
	dirty      []uint32
	dirtyEpoch uint32
	// dirtyList is the explicit worklist matching the dirty stamps: the
	// ids stamped with the current dirtyEpoch, deduplicated at stamp time
	// (CAS winners append into per-worker buckets, concatenated after the
	// pass), so the memoized diffusion finds its work in O(|dirty|)
	// instead of scanning every alive row. Under parallel merges the
	// entry order is scheduling-dependent but the id set is not; every
	// consumer does per-id independent work, so results stay
	// byte-identical for any order.
	dirtyList []int32
	dirtyBkts [][]int32 // per-worker dirty collection scratch
	// chList/chNext are the per-phase changed-row worklists: each phase
	// (init or exchange iteration) appends the rows whose value it
	// changed to chNext, which becomes chList — the input frontier of the
	// next iteration's scatter. Duplicate-free by construction (each row
	// is recomputed once per phase). afList is the scatter output — the
	// rows the pruned iteration must recompute — deduplicated via the
	// afMark epoch stamps. The *Bkts slices are per-range collection
	// scratch for the parallel phases.
	chList []int32
	chNext []int32
	chBkts [][]int32
	afList []int32
	afBkts [][]int32
	// The UseBSP path's cross-round memoization scratch: bspSeed is the
	// alive dirty rows handed to RunFrom as the superstep-0 frontier,
	// bspActiveEdges the running Σ edgeCnt over alive rows (adjusted
	// only for retired and re-seeded rows each round), and bspHeap the
	// lazy-deletion heap behind the incremental global-best tracker.
	bspSeed        []bsp.VertexID
	bspHeap        []bspBest
	bspActiveEdges int64
	// bspEng/bspProg persist across merge rounds on the UseBSP path: one
	// engine per clustering, rebound to each round's contracted CSR.
	bspEng    *bsp.Engine[edgeRef]
	bspProg   *clusterDiffusionProgram
	bspChaos  *bsp.Chaos
	perOwner  [][]contrib
	perOwnerB [][]contrib   // minted-minted tail scratch per owner
	bounds    []int32       // edge-balanced range scratch (diffusion + rebuild)
	hp        []int32       // k-way merge heap scratch (owner indices)
	hpPos     []int32       // k-way merge per-owner cursor scratch
	newEdges  []wgraph.Edge // aggregated >= threshold edges
	// Trajectory-replay scratch (see replay.go): the propagated taint
	// set's minted ids, the round's live patch worklist, and the
	// per-partner coalescing state of a tainted row.
	rpMinted []int32
	rpDirty  []int32
	rpPart   []int32
	rpSums   []float64
	rpMark   []uint32
	rpEpoch  uint32
	rpTail   []contrib
	// lastPatched is the most recent merge round's patch worklist — every
	// row whose span that round rewrote (dead member rows included,
	// minted rows included) — aliasing dirtyList after a cold merge and
	// rpDirty after a replayed one. snapRound reads it to capture the
	// round's CSR delta.
	lastPatched []int32
}

func newState(c *wgraph.CSR, sizes []int, cfg Config) *state {
	n := c.NumNodes()
	offsets, nbrs, wts := c.Adj()
	// Normalize here too so direct constructions (tests) get sane widths
	// without going through validate.
	if cfg.Shards <= 0 {
		cfg.Shards = cfg.Workers
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.FrontierDensity == 0 {
		cfg.FrontierDensity = DefaultFrontierDensity
	}
	st := &state{
		total:   n,
		offsets: offsets,
		nbrs:    nbrs,
		wts:     wts,
		deg:     make([]int32, n, 2*n),
		ownsCur: false,
		// dirtyEpoch starts above the zero value of fresh dirty stamps:
		// before the first merge nothing is dirty, so round 0's frontier
		// scatter must not see every zero stamp as a match.
		dirtyEpoch: 1,
		size:       make([]float64, n, 2*n),
		alive:      make([]bool, n, 2*n),
		aliveCount: n,
		workers:    cfg.Workers,
		shards:     cfg.Shards,
		density:    cfg.FrontierDensity,
		bspChaos:   cfg.BSPChaos,
		exStates:   make([][]edgeRef, cfg.DiffusionRounds+1),
		afMark:     make([]uint32, n, 2*n),
		edgeCnt:    make([]int64, n, 2*n),
		bests:      make([]edgeRef, n, 2*n),
		mergeTo:    make([]int32, n, 2*n),
	}
	for it := range st.exStates {
		// Capacity 2n outlasts every mint: a clustering can never create
		// more than n-1 new ids, so these arrays are never reallocated.
		arr := make([]edgeRef, n, 2*n)
		for i := range arr {
			arr[i] = noEdge
		}
		st.exStates[it] = arr
	}
	for i := 0; i < n; i++ {
		st.alive[i] = true
		st.size[i] = 1
		if sizes != nil {
			st.size[i] = float64(sizes[i])
		}
		st.bests[i] = noEdge
		st.mergeTo[i] = -1
		st.deg[i] = offsets[i+1] - offsets[i]
	}
	return st
}

// ensureOwned copies the CSR out of the caller's frozen graph before the
// first in-place write. One copy per clustering: every later round
// patches the owned arrays directly.
func (st *state) ensureOwned() {
	if st.ownsCur {
		return
	}
	n := st.total
	half := int(st.offsets[n])
	// Row-start headroom for minted ids, entry headroom for their spans:
	// 2n+1 rows can never be exceeded, and minted spans are bounded by
	// the merged rows' combined (shrink-only) adjacency, so 3/2 entry
	// slack makes tail reallocation rare without doubling the footprint.
	offsets := make([]int32, n+1, 2*n+1)
	copy(offsets, st.offsets[:n+1])
	nbrs := make([]int32, half, half+half/2)
	copy(nbrs, st.nbrs[:half])
	wts := make([]float64, half, half+half/2)
	copy(wts, st.wts[:half])
	st.offsets, st.nbrs, st.wts = offsets, nbrs, wts
	st.ownsCur = true
}

// release retires any resources the state holds beyond its own memory —
// today the persistent BSP engine's shard workers.
func (st *state) release() {
	if st.bspEng != nil {
		st.bspEng.Close()
	}
}

// aliveList returns the ascending alive cluster ids. After the first
// full build the list is maintained incrementally by the merge/replay
// retire passes (compact the dead, append the minted — O(alive) per
// round, not O(total)), so this scan runs once per clustering.
func (st *state) aliveList() []int32 {
	if st.nodesValid {
		return st.nodes
	}
	out := st.nodes[:0]
	for id := int32(0); int(id) < st.total; id++ {
		if st.alive[id] {
			out = append(out, id)
		}
	}
	st.nodes = out
	st.nodesValid = true
	return out
}

// retireNodes drops the ids a retire pass just killed from the
// maintained alive list and appends the round's minted ids (all alive,
// all greater than every prior id, so the list stays ascending).
func (st *state) retireNodes(base, newTotal int32) {
	if !st.nodesValid {
		return
	}
	w := 0
	for _, u := range st.nodes {
		if st.alive[u] {
			st.nodes[w] = u
			w++
		}
	}
	nodes := st.nodes[:w]
	for id := base; id < newTotal; id++ {
		nodes = append(nodes, id)
	}
	st.nodes = nodes
}

// selectLocalMaxima runs the diffusion protocol and returns the selected
// node-disjoint matching (sorted canonically) along with the round's edge
// count and global best similarity. Only edges >= threshold participate
// in diffusion. The scan reads the CSR arrays directly and every phase
// is memoized across merge rounds (see state.exStates): after the first
// round, init recomputes only dirty rows and each exchange iteration
// only the frontier of cross-round changes — with a dense fallback when
// the frontier outgrows the density threshold. No allocation per
// diffusion iteration.
func (st *state) selectLocalMaxima(rounds, workers int, threshold float64) ([]edgeRef, int, float64) {
	nodes := st.aliveList()
	serial := workers <= 1 || len(nodes) < 64
	var bounds []int32
	if !serial {
		bounds = st.nodeRangeBounds(nodes)
	}
	// Repeated diffusion without an intervening merge (no dirty scratch
	// yet) must see an all-clean dirty map, not an out-of-range one —
	// fresh zero stamps never equal a positive dirtyEpoch.
	for len(st.dirty) < st.total {
		st.dirty = append(st.dirty, 0)
	}

	// Init phase: best incident >= threshold edge per node, plus the
	// round statistics (edge endpoints counted once, at the smaller id).
	// Cached entries are reused — only dirty rows (adjacency touched by
	// the last merge, minted rows included) can differ from last round,
	// and the last merge left them in dirtyList, so the phase iterates
	// the worklist instead of scanning every alive row for stamps.
	st.epoch++
	init := st.exStates[0]
	prevChanged := int64(-1) // unknown frontier: forces dense iterations
	if st.haveCache {
		ch := st.chNext[:0]
		if serial {
			ch, prevChanged = st.initDirtyList(st.dirtyList, threshold, init, ch)
		} else {
			st.ensureBkts()
			st.resetChBkts()
			st.changed = 0
			st.runListChunks(st.dirtyList, func(ci int, part []int32) {
				b, c := st.initDirtyList(part, threshold, init, st.chBkts[ci][:0])
				st.chBkts[ci] = b
				atomic.AddInt64(&st.changed, c)
			})
			ch = st.concatChBkts(ch)
			prevChanged = st.changed
		}
		st.chNext = ch
		st.chList, st.chNext = st.chNext, st.chList
	} else {
		if serial {
			st.initAll(nodes, 0, len(nodes), threshold, init)
		} else {
			runRanges(bounds, func(lo, hi int) {
				st.initAll(nodes, lo, hi, threshold, init)
			})
		}
		st.haveCache = true
	}
	var activeEdges int64
	globalBest := noEdge
	for _, u := range nodes {
		activeEdges += st.edgeCnt[u]
		if better(st.bests[u], globalBest) {
			globalBest = st.bests[u]
		}
	}

	// r exchange iterations: take the max over own and neighbors' known
	// edges, reading level it and writing level it+1 so reads only see
	// the previous level. A level entry is recomputed when the node is
	// dirty (its input set changed) or any input value changed cross-
	// round; everything else provably equals the memoized value. The
	// previous phase's changed rows arrive in chList; the scatter walks
	// that list (plus the dirty list) to build afList, and the pruned
	// recompute walks afList — no per-phase stamp scans anywhere.
	for it := 0; it < rounds; it++ {
		st.epoch++
		src, dst := st.exStates[it], st.exStates[it+1]
		dense := prevChanged < 0 || st.density < 0 ||
			float64(prevChanged) > st.density*float64(len(nodes))
		ch := st.chNext[:0]
		st.changed = 0
		switch {
		case dense && serial:
			ch, st.changed = st.denseIter(nodes, 0, len(nodes), src, dst, ch)
		case dense:
			st.ensureBkts()
			st.resetChBkts()
			runRangesIdx(bounds, func(ci, lo, hi int) {
				b, c := st.denseIter(nodes, lo, hi, src, dst, st.chBkts[ci][:0])
				st.chBkts[ci] = b
				atomic.AddInt64(&st.changed, c)
			})
			ch = st.concatChBkts(ch)
		case serial:
			af := st.scatterList(st.chList, st.dirtyList, st.afList[:0])
			st.afList = af
			ch, st.changed = st.prunedIterList(af, src, dst, ch)
		default:
			st.ensureBkts()
			af := st.scatterListAtomic(st.afList[:0])
			st.afList = af
			st.resetChBkts()
			st.runListChunks(af, func(ci int, part []int32) {
				b, c := st.prunedIterList(part, src, dst, st.chBkts[ci][:0])
				st.chBkts[ci] = b
				atomic.AddInt64(&st.changed, c)
			})
			ch = st.concatChBkts(ch)
		}
		st.chNext = ch
		st.chList, st.chNext = st.chNext, st.chList
		prevChanged = st.changed
	}
	final := st.exStates[rounds]

	// Selection: an edge whose both endpoints know it is locally maximal.
	var selected []edgeRef
	if serial {
		selected = st.diffuseSelectSerial(nodes, threshold, final, st.selected[:0])
	} else {
		sink := &selectSink{buf: st.selected[:0]}
		runRanges(bounds, func(lo, hi int) {
			st.diffuseSelectInto(nodes, lo, hi, threshold, final, sink)
		})
		selected = sink.buf
	}
	slices.SortFunc(selected, func(a, b edgeRef) int {
		// Keys are unique (node-disjoint matching), so this is the
		// canonical (u,v) order.
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
	st.selected = selected
	return selected, int(activeEdges), globalBest.sim
}

// nodeRangeBounds fills the reusable bounds scratch with st.shards+1 cut
// points into the alive node list, balanced by adjacency entries rather
// than node count (each node weighs its degree plus one), so skewed
// degree distributions still split into even per-worker work. Bounds
// only partition work — results are identical for any split.
func (st *state) nodeRangeBounds(nodes []int32) []int32 {
	shards := st.shards
	if shards < 1 {
		shards = 1
	}
	for len(st.bounds) < shards+1 {
		st.bounds = append(st.bounds, 0)
	}
	bounds := st.bounds[:shards+1]
	deg := st.deg
	var total int64
	for _, u := range nodes {
		total += int64(deg[u]) + 1
	}
	bounds[0] = 0
	bounds[shards] = int32(len(nodes))
	var prefix int64
	next := 1
	for i, u := range nodes {
		if next >= shards {
			break
		}
		prefix += int64(deg[u]) + 1
		for next < shards && prefix*int64(shards) >= total*int64(next) {
			bounds[next] = int32(i + 1)
			next++
		}
	}
	for ; next < shards; next++ {
		bounds[next] = int32(len(nodes))
	}
	return bounds
}

// runRanges runs fn over each non-empty range [bounds[i], bounds[i+1])
// in its own goroutine and waits for all of them. Callers on the
// zero-alloc path must only construct the fn closure inside their
// parallel branch (and capture fresh bindings, not variables reassigned
// later), so the serial branch stays allocation-free.
func runRanges(bounds []int32, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := int(bounds[i]), int(bounds[i+1])
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// runRangesIdx is runRanges passing each range's index to fn — for
// phases that collect into per-range buckets.
func runRangesIdx(bounds []int32, fn func(ci, lo, hi int)) {
	var wg sync.WaitGroup
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := int(bounds[i]), int(bounds[i+1])
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			fn(ci, lo, hi)
		}(i, lo, hi)
	}
	wg.Wait()
}

// initAll is the uncached init phase over nodes[lo:hi]: each node's
// best incident >= threshold edge into init, plus the per-id round
// statistics (edge endpoints counted once, at the smaller id). Pure CSR
// array scans — no allocation.
func (st *state) initAll(nodes []int32, lo, hi int, threshold float64, init []edgeRef) {
	offsets, nbrs, wts, deg := st.offsets, st.nbrs, st.wts, st.deg
	for i := lo; i < hi; i++ {
		u := nodes[i]
		best := noEdge
		edges := int64(0)
		bestAny := noEdge
		for j, end := offsets[u], offsets[u]+deg[u]; j < end; j++ {
			v, w := nbrs[j], wts[j]
			if u < v {
				edges++
			}
			cand := mkEdgeRef(u, v, w)
			if better(cand, bestAny) {
				bestAny = cand
			}
			if w < threshold {
				continue
			}
			if better(cand, best) {
				best = cand
			}
		}
		init[u] = best
		st.edgeCnt[u] = edges
		st.bests[u] = bestAny
	}
}

// initDirtyList is the memoized init phase over a slice of the dirty
// worklist: only those rows — whose adjacency the last merge changed —
// are recomputed; every other cached entry is provably identical to a
// full recomputation. Dead list entries (merged-away ids stamped as
// neighbors) are skipped. Rows whose init state actually changed append
// to out (the next iteration's frontier); returns out and the count.
func (st *state) initDirtyList(list []int32, threshold float64, init []edgeRef, out []int32) ([]int32, int64) {
	offsets, nbrs, wts, deg := st.offsets, st.nbrs, st.wts, st.deg
	var cnt int64
	for _, u := range list {
		if !st.alive[u] {
			continue
		}
		best := noEdge
		edges := int64(0)
		bestAny := noEdge
		for j, end := offsets[u], offsets[u]+deg[u]; j < end; j++ {
			v, w := nbrs[j], wts[j]
			if u < v {
				edges++
			}
			cand := mkEdgeRef(u, v, w)
			if better(cand, bestAny) {
				bestAny = cand
			}
			if w < threshold {
				continue
			}
			if better(cand, best) {
				best = cand
			}
		}
		st.edgeCnt[u] = edges
		st.bests[u] = bestAny
		if best != init[u] {
			init[u] = best
			out = append(out, u)
			cnt++
		}
	}
	return out, cnt
}

// denseIter recomputes level it+1 for every node of nodes[lo:hi] from
// level it, appending cross-round changes (new value differs from the
// memoized one) to out and returning out plus the change count.
func (st *state) denseIter(nodes []int32, lo, hi int, src, dst []edgeRef, out []int32) ([]int32, int64) {
	offsets, nbrs, deg := st.offsets, st.nbrs, st.deg
	var cnt int64
	for i := lo; i < hi; i++ {
		u := nodes[i]
		best := src[u]
		for j, end := offsets[u], offsets[u]+deg[u]; j < end; j++ {
			if v := nbrs[j]; better(src[v], best) {
				best = src[v]
			}
		}
		if best != dst[u] {
			dst[u] = best
			out = append(out, u)
			cnt++
		}
	}
	return out, cnt
}

// scatterList builds the recompute worklist for the current level: every
// node whose input set can differ from last round — the previous phase's
// changed rows (ch) and their neighbors, who read them, plus dirty rows
// (their neighbor set itself changed; dead list entries skipped). The
// afMark epoch stamps deduplicate; out receives each marked id once.
func (st *state) scatterList(ch, dirty []int32, out []int32) []int32 {
	offsets, nbrs, deg := st.offsets, st.nbrs, st.deg
	epoch := st.epoch
	af := st.afMark
	for _, u := range ch {
		if af[u] != epoch {
			af[u] = epoch
			out = append(out, u)
		}
		for j, end := offsets[u], offsets[u]+deg[u]; j < end; j++ {
			if v := nbrs[j]; af[v] != epoch {
				af[v] = epoch
				out = append(out, v)
			}
		}
	}
	for _, u := range dirty {
		if st.alive[u] && af[u] != epoch {
			af[u] = epoch
			out = append(out, u)
		}
	}
	return out
}

// scatterListAtomic is scatterList for the parallel path: list chunks
// race to stamp shared neighbors, the CAS winner appends to its chunk's
// bucket, and the buckets concatenate into out. The marked id set is
// deterministic (every worker stamps the same epoch); the order ids land
// in out is not, which is safe — the pruned recompute's work is per-id
// independent, so the diffusion result is byte-identical for any order.
func (st *state) scatterListAtomic(out []int32) []int32 {
	offsets, nbrs, deg := st.offsets, st.nbrs, st.deg
	epoch := st.epoch
	st.resetAfBkts()
	st.runListChunks(st.chList, func(ci int, part []int32) {
		bkt := st.afBkts[ci]
		for _, u := range part {
			if casMark32(&st.afMark[u], epoch) {
				bkt = append(bkt, u)
			}
			for j, end := offsets[u], offsets[u]+deg[u]; j < end; j++ {
				if v := nbrs[j]; casMark32(&st.afMark[v], epoch) {
					bkt = append(bkt, v)
				}
			}
		}
		st.afBkts[ci] = bkt
	})
	out = st.concatAfBkts(out)
	st.resetAfBkts()
	st.runListChunks(st.dirtyList, func(ci int, part []int32) {
		bkt := st.afBkts[ci]
		for _, u := range part {
			if st.alive[u] && casMark32(&st.afMark[u], epoch) {
				bkt = append(bkt, u)
			}
		}
		st.afBkts[ci] = bkt
	})
	return st.concatAfBkts(out)
}

// prunedIterList recomputes exactly the rows of the scatter worklist
// slice; every row not on the list keeps its memoized level value, which
// is provably what the dense recomputation would produce (identical
// inputs to last round). Cross-round changes append to out and are
// counted.
func (st *state) prunedIterList(list []int32, src, dst []edgeRef, out []int32) ([]int32, int64) {
	offsets, nbrs, deg := st.offsets, st.nbrs, st.deg
	var cnt int64
	for _, u := range list {
		best := src[u]
		for j, end := offsets[u], offsets[u]+deg[u]; j < end; j++ {
			if v := nbrs[j]; better(src[v], best) {
				best = src[v]
			}
		}
		if best != dst[u] {
			dst[u] = best
			out = append(out, u)
			cnt++
		}
	}
	return out, cnt
}

// casMark32 stamps *p with epoch and reports whether this caller won the
// stamp — exactly one concurrent marker of the same epoch wins, which
// keeps worklist entries duplicate-free without a second dedup pass.
func casMark32(p *uint32, epoch uint32) bool {
	for {
		cur := atomic.LoadUint32(p)
		if cur == epoch {
			return false
		}
		if atomic.CompareAndSwapUint32(p, cur, epoch) {
			return true
		}
	}
}

// ensureBkts sizes the per-range worklist collection buckets to the
// partition width. Parallel-only scratch: the serial path never touches
// it, keeping that path allocation-free.
func (st *state) ensureBkts() {
	for len(st.chBkts) < st.shards {
		st.chBkts = append(st.chBkts, nil)
	}
	for len(st.afBkts) < st.shards {
		st.afBkts = append(st.afBkts, nil)
	}
}

func (st *state) resetChBkts() {
	for i := range st.chBkts {
		st.chBkts[i] = st.chBkts[i][:0]
	}
}

func (st *state) resetAfBkts() {
	for i := range st.afBkts {
		st.afBkts[i] = st.afBkts[i][:0]
	}
}

// concatChBkts appends every chunk bucket to out in chunk order.
func (st *state) concatChBkts(out []int32) []int32 {
	for i := range st.chBkts {
		out = append(out, st.chBkts[i]...)
	}
	return out
}

func (st *state) concatAfBkts(out []int32) []int32 {
	for i := range st.afBkts {
		out = append(out, st.afBkts[i]...)
	}
	return out
}

// runListChunks splits list into up to st.shards contiguous chunks and
// runs fn(chunkIndex, chunk) concurrently over the non-empty ones.
// Chunks only partition work; consumers write per-id state and collect
// into per-chunk buckets, so results do not depend on the split.
func (st *state) runListChunks(list []int32, fn func(ci int, part []int32)) {
	k := st.shards
	if k < 1 {
		k = 1
	}
	if k == 1 || len(list) < 64 {
		fn(0, list)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		lo, hi := i*len(list)/k, (i+1)*len(list)/k
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(ci int, part []int32) {
			defer wg.Done()
			fn(ci, part)
		}(i, list[lo:hi])
	}
	wg.Wait()
}

// diffuseSelectSerial appends the locally-maximal edges (each edge
// evaluated once, at its smaller endpoint) to buf and returns it. Kept
// free of shared state so the single-worker path allocates nothing.
func (st *state) diffuseSelectSerial(nodes []int32, threshold float64, know []edgeRef, buf []edgeRef) []edgeRef {
	for _, u := range nodes {
		e := know[u]
		if e.U() != u || e.sim < threshold {
			continue
		}
		if know[e.V()] == e {
			buf = append(buf, e)
		}
	}
	return buf
}

// selectSink is the shared selection output for the parallel path.
type selectSink struct {
	mu  sync.Mutex
	buf []edgeRef
}

// diffuseSelectInto is diffuseSelectSerial over nodes[lo:hi] appending
// into the shared sink.
func (st *state) diffuseSelectInto(nodes []int32, lo, hi int, threshold float64, know []edgeRef, sink *selectSink) {
	for i := lo; i < hi; i++ {
		u := nodes[i]
		e := know[u]
		if e.U() != u || e.sim < threshold {
			continue
		}
		if know[e.V()] == e {
			sink.mu.Lock()
			sink.buf = append(sink.buf, e)
			sink.mu.Unlock()
		}
	}
}

// contrib is one old-edge contribution to a new edge's Eq. 4 sum, tagged
// with its origin for deterministic summation order.
type contrib struct {
	key  [2]int32 // canonical new endpoints
	orig [2]int32 // canonical old endpoints
	val  float64
}

// mergeSelected applies a round's matching: mints new cluster ids, emits
// dendrogram merges, and sort-merges the surviving and coalesced edges
// into the next round's CSR. Deterministic regardless of worker count:
// contributions are aggregated in sorted origin order.
func (st *state) mergeSelected(selected []edgeRef, round int, cfg Config, d *dendrogram.Dendrogram) {
	base := int32(st.total)
	newTotal := st.total + len(selected)

	// Extend the per-id arrays for the minted clusters; mergeTo/coef map
	// a merged old cluster to its new id and Eq. 4 coefficient.
	for len(st.mergeTo) < newTotal {
		st.mergeTo = append(st.mergeTo, -1)
		st.afMark = append(st.afMark, 0)
		st.edgeCnt = append(st.edgeCnt, 0)
		st.bests = append(st.bests, noEdge)
	}
	for it := range st.exStates {
		for len(st.exStates[it]) < newTotal {
			st.exStates[it] = append(st.exStates[it], noEdge)
		}
	}
	for len(st.coef) < newTotal {
		st.coef = append(st.coef, 0)
	}
	for i, e := range selected {
		id := base + int32(i)
		eu, ev := e.U(), e.V()
		wu, wv := cfg.Linkage.weights(st.size[eu], st.size[ev])
		st.mergeTo[eu] = id
		st.mergeTo[ev] = id
		st.coef[eu] = wu
		st.coef[ev] = wv
		st.size = append(st.size, st.size[eu]+st.size[ev])
		st.alive = append(st.alive, true)
		d.Merges = append(d.Merges, dendrogram.Merge{
			A: eu, B: ev, New: id, Sim: e.sim, Round: int32(round),
		})
	}

	// Generate contributions from every old edge with >= 1 merged
	// endpoint, pre-sorted per owner. Each selected pair's owner merges
	// its two members' ascending adjacency streams two-pointer style
	// (ties resolved to the smaller member, whose canonical origin sorts
	// first), so surviving-neighbor contributions — keys (nb, w), nb
	// below base — emerge already in (key, orig) order. Only the usually
	// tiny tail of minted-minted contributions — keys (w, q), q minted
	// above w, discovered in old-neighbor order rather than q order —
	// needs a sort, and every minted key sorts after every surviving key,
	// so the sorted tail appends after the merged prefix. This removes
	// the former full per-owner sort from the round. Old edges between
	// two merged nodes are emitted by the owner of the smaller new id
	// only (dedup).
	//
	// The pass also stamps the round's dirty rows for the rebuild and the
	// next round's memoized diffusion: every visited neighbor (the walk
	// covers both members' whole adjacency) plus the owner's minted row.
	// Shared neighbors may be raced for by several owners — the CAS
	// winner appends the id to its worker's bucket, so the buckets
	// concatenate into a duplicate-free dirtyList whose id set is
	// deterministic (order under parallel merges is not, which is safe:
	// every dirtyList consumer does per-id independent work).
	offsets, nbrs, wts, deg := st.offsets, st.nbrs, st.wts, st.deg
	for len(st.perOwner) < len(selected) {
		st.perOwner = append(st.perOwner, nil)
		st.perOwnerB = append(st.perOwnerB, nil)
	}
	for len(st.dirty) < newTotal {
		st.dirty = append(st.dirty, 0)
	}
	nw := st.workers
	if nw < 1 {
		nw = 1
	}
	for len(st.dirtyBkts) < nw {
		st.dirtyBkts = append(st.dirtyBkts, nil)
	}
	for i := range st.dirtyBkts {
		st.dirtyBkts[i] = st.dirtyBkts[i][:0]
	}
	st.dirtyEpoch++
	dirtyEpoch := st.dirtyEpoch
	perOwner, perOwnerB, dirtyBkts := st.perOwner, st.perOwnerB, st.dirtyBkts
	parallelIdxW(len(selected), st.workers, func(wid, i int) {
		e := selected[i]
		w := base + int32(i)
		eu, ev := e.U(), e.V()
		out := perOwner[i][:0]
		tail := perOwnerB[i][:0]
		bkt := dirtyBkts[wid]
		jU, endU := offsets[eu], offsets[eu]+deg[eu]
		jV, endV := offsets[ev], offsets[ev]+deg[ev]
		wu, wv := st.coef[eu], st.coef[ev]
		if casMark32(&st.dirty[w], dirtyEpoch) { // minted rows are always fresh
			bkt = append(bkt, w)
		}
		for jU < endU || jV < endV {
			var member, nb int32
			var wm, s float64
			// Pick the stream with the smaller neighbor; on a shared
			// neighbor the smaller member goes first (its canonical
			// origin precedes the other's for every neighbor position).
			if jV >= endV || (jU < endU && nbrs[jU] <= nbrs[jV]) {
				member, nb, wm, s = eu, nbrs[jU], wu, wts[jU]
				jU++
			} else {
				member, nb, wm, s = ev, nbrs[jV], wv, wts[jV]
				jV++
			}
			if casMark32(&st.dirty[nb], dirtyEpoch) {
				bkt = append(bkt, nb)
			}
			mappedNb := st.mergeTo[nb]
			if mappedNb < 0 {
				oa, ob := canon(member, nb)
				out = append(out, contrib{key: [2]int32{nb, w}, orig: [2]int32{oa, ob}, val: wm * s})
				continue
			}
			if mappedNb <= w {
				continue // internal edge, or the other owner emits it
			}
			oa, ob := canon(member, nb)
			tail = append(tail, contrib{key: [2]int32{w, mappedNb}, orig: [2]int32{oa, ob}, val: wm * st.coef[nb] * s})
		}
		slices.SortFunc(tail, cmpContrib)
		perOwner[i] = append(out, tail...)
		perOwnerB[i] = tail[:0]
		dirtyBkts[wid] = bkt
	})
	dl := st.dirtyList[:0]
	for i := range dirtyBkts {
		dl = append(dl, dirtyBkts[i]...)
	}
	st.dirtyList = dl

	// Aggregate via k-way merge with inline group summation, replacing
	// the former flatten + O(E log E) global re-sort each round. Every
	// old edge contributes exactly once, so (key, orig) pairs are unique
	// across owners and the merge pops contributions in the exact global
	// (key, orig) order the old sort produced — float summation per key
	// is byte-identical.
	newEdges := st.kwayMergeSum(perOwner[:len(selected)], cfg.StopThreshold)

	// Patch the contracted CSR in place. A clean row — untouched by this
	// round's merges — provably keeps its whole adjacency and is never
	// visited; a dirty surviving row's new adjacency (kept survivors in
	// its own order, then coalesced minted partners ascending) is never
	// longer than its old one, because every partner replaces at least
	// one merged neighbor and sub-threshold sums drop, so it compacts
	// within its own span; minted rows lay fresh spans at the tail. Dead
	// rows keep their storage at degree zero. Every row still receives
	// its neighbors ascending (old ids < base first, minted ids >= base
	// after) in exactly the order the former full rebuild produced, and
	// the round costs O(dirty adjacency + coalesced edges) instead of
	// O(alive edges).
	st.ensureOwned()
	for len(st.deg) < newTotal {
		st.deg = append(st.deg, 0)
	}
	offsets, nbrs, wts, deg = st.offsets, st.nbrs, st.wts, st.deg
	for _, u := range st.dirtyList {
		if u >= base || st.mergeTo[u] >= 0 {
			continue // minted rows fill below; members retire below
		}
		lo := offsets[u]
		wi := lo
		for j, end := lo, lo+deg[u]; j < end; j++ {
			if v := nbrs[j]; st.mergeTo[v] < 0 {
				nbrs[wi], wts[wi] = v, wts[j]
				wi++
			}
		}
		for k := searchEdgeU(newEdges, u); k < len(newEdges) && newEdges[k].U == u; k++ {
			nbrs[wi], wts[wi] = newEdges[k].V, newEdges[k].W
			wi++
		}
		deg[u] = wi - lo
	}

	// Minted rows: count their degrees (a coalesced edge's V endpoint is
	// always minted — canonical keys order minted ids last — and its U
	// endpoint may be), lay their spans out at the tail, then scatter the
	// (U,V)-sorted list once with per-row write cursors: a row's V-side
	// partners (ids below it) all precede its U-side run (ids above it),
	// ascending within each, so the single pass writes each minted row in
	// canonical ascending order.
	for i := range selected {
		deg[base+int32(i)] = 0
	}
	for _, e := range newEdges {
		deg[e.V]++
		if e.U >= base {
			deg[e.U]++
		}
	}
	for len(st.offsets) < newTotal+1 {
		st.offsets = append(st.offsets, 0)
	}
	offsets = st.offsets
	tail := offsets[st.total]
	for i := range selected {
		w := base + int32(i)
		offsets[w] = tail
		tail += deg[w]
	}
	offsets[newTotal] = tail
	if grow := int(tail) - len(st.nbrs); grow > 0 {
		st.nbrs = append(st.nbrs, make([]int32, grow)...)
		st.wts = append(st.wts, make([]float64, grow)...)
	}
	nbrs, wts = st.nbrs, st.wts
	for i := range selected {
		deg[base+int32(i)] = 0 // reused as the write cursor; restored by the fill
	}
	for _, e := range newEdges {
		w := e.V
		p := offsets[w] + deg[w]
		nbrs[p], wts[p] = e.U, e.W
		deg[w]++
		if e.U >= base {
			w = e.U
			p = offsets[w] + deg[w]
			nbrs[p], wts[p] = e.V, e.W
			deg[w]++
		}
	}

	// Retire the merged clusters and clear this round's merge map; dead
	// rows' spans stay allocated but empty.
	for _, e := range selected {
		st.alive[e.U()] = false
		st.alive[e.V()] = false
		st.mergeTo[e.U()] = -1
		st.mergeTo[e.V()] = -1
		deg[e.U()] = 0
		deg[e.V()] = 0
	}
	st.aliveCount -= len(selected)
	st.retireNodes(base, int32(newTotal))
	st.lastPatched = st.dirtyList
	st.total = newTotal
}

// cmpContrib orders contributions by (key, orig) — the deterministic
// global summation order.
func cmpContrib(x, y contrib) int {
	if x.key[0] != y.key[0] {
		return int(x.key[0] - y.key[0])
	}
	if x.key[1] != y.key[1] {
		return int(x.key[1] - y.key[1])
	}
	if x.orig[0] != y.orig[0] {
		return int(x.orig[0] - y.orig[0])
	}
	return int(x.orig[1] - y.orig[1])
}

// kwayMergeSum merges the pre-sorted per-owner contribution lists in
// global (key, orig) order via a binary min-heap of owner cursors,
// summing each key group inline and keeping groups >= threshold (Eq. 4
// is a convex combination, so a sub-threshold edge can never feed a
// future >= threshold similarity). Output arrives sorted by canonical
// key. Heap, cursor and output scratch are reused across rounds.
func (st *state) kwayMergeSum(lists [][]contrib, threshold float64) []wgraph.Edge {
	for len(st.hpPos) < len(lists) {
		st.hpPos = append(st.hpPos, 0)
	}
	pos := st.hpPos[:len(lists)]
	hp := st.hp[:0]
	for i := range lists {
		pos[i] = 0
		if len(lists[i]) > 0 {
			hp = append(hp, int32(i))
		}
	}
	st.hp = hp[:0] // persist a grown backing for the next round
	less := func(a, b int32) bool {
		return cmpContrib(lists[a][pos[a]], lists[b][pos[b]]) < 0
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(hp) && less(hp[l], hp[m]) {
				m = l
			}
			if r < len(hp) && less(hp[r], hp[m]) {
				m = r
			}
			if m == i {
				return
			}
			hp[i], hp[m] = hp[m], hp[i]
			i = m
		}
	}
	for i := len(hp)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}

	newEdges := st.newEdges[:0]
	var curKey [2]int32
	var sum float64
	have := false
	for len(hp) > 0 {
		o := hp[0]
		c := lists[o][pos[o]]
		pos[o]++
		if int(pos[o]) == len(lists[o]) {
			hp[0] = hp[len(hp)-1]
			hp = hp[:len(hp)-1]
		}
		siftDown(0)
		if !have || c.key != curKey {
			if have && sum >= threshold {
				newEdges = append(newEdges, wgraph.Edge{U: curKey[0], V: curKey[1], W: sum})
			}
			curKey, sum, have = c.key, 0, true
		}
		sum += c.val
	}
	if have && sum >= threshold {
		newEdges = append(newEdges, wgraph.Edge{U: curKey[0], V: curKey[1], W: sum})
	}
	st.newEdges = newEdges
	return newEdges
}

// runRanges32 is runRanges over int32 row bounds.
func runRanges32(bounds []int32, fn func(lo, hi int32)) {
	var wg sync.WaitGroup
	for i := 0; i+1 < len(bounds); i++ {
		lo, hi := bounds[i], bounds[i+1]
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int32) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// searchEdgeU returns the first index whose edge has U >= x (edges are
// sorted by canonical (U,V)). Hand-rolled so the zero-alloc serial
// rebuild path never builds a search closure.
func searchEdgeU(edges []wgraph.Edge, x int32) int {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if edges[mid].U >= x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func canon(u, v int32) (int32, int32) {
	if u < v {
		return u, v
	}
	return v, u
}

// parallelIdxW runs fn over [0,n) with the given parallelism, passing
// the executing worker's index (0..workers-1; always 0 on the serial
// path) so callers can collect into per-worker buckets without locks.
func parallelIdxW(n, workers int, fn func(w, i int)) {
	if workers <= 1 || n < 16 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
