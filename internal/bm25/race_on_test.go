//go:build race

package bm25

const raceEnabled = true
