module shoal

go 1.24
