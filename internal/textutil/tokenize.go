// Package textutil provides the text-processing substrate SHOAL depends on:
// a unicode-aware tokenizer, a stopword filter, and a vocabulary builder.
//
// The paper segments item titles into words before feeding them to word2vec
// (§2.1, Eq. 2) and tokenizes queries for description matching (§2.3). The
// production system uses Alibaba's internal segmenter; this package is the
// stdlib-only stand-in, adequate for space-separated synthetic corpora and
// for western-language text.
package textutil

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lowercase word tokens. Letters and digits form
// tokens; everything else separates them. CJK ideographs are emitted as
// single-rune tokens, which approximates character-level segmentation for
// Chinese titles.
func Tokenize(s string) []string {
	var toks []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			toks = append(toks, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.In(r, unicode.Han):
			flush()
			toks = append(toks, string(unicode.ToLower(r)))
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return toks
}

// defaultStopwords are high-frequency function words that carry no shopping
// intent. Kept deliberately small: over-aggressive stopping hurts short
// queries like "for breakfast" (Fig. 4).
var defaultStopwords = map[string]bool{
	"a": true, "an": true, "and": true, "at": true, "by": true,
	"for": true, "from": true, "in": true, "of": true, "on": true,
	"or": true, "the": true, "to": true, "with": true,
}

// Stopword reports whether tok is in the default stopword list.
func Stopword(tok string) bool { return defaultStopwords[tok] }

// TokenizeFiltered tokenizes s and drops stopwords. If every token is a
// stopword the unfiltered tokens are returned instead, so short queries are
// never emptied.
func TokenizeFiltered(s string) []string {
	toks := Tokenize(s)
	kept := toks[:0:0]
	for _, t := range toks {
		if !defaultStopwords[t] {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		return toks
	}
	return kept
}
